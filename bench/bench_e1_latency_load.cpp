// E1 -- Latency vs offered load: wormhole switching vs wave switching
// (CLRP), uniform traffic, 128-flit messages on an 8x8 torus.
//
// Paper claim (sections 1, 5, citing [10]): wave switching reduces latency
// and lifts saturation throughput substantially for long messages. The
// expected shape: the CLRP curve sits well below wormhole at every load
// and saturates later.
#include "bench_util.hpp"
#include "core/simulation.hpp"
#include "workload/generator.hpp"

namespace {

using namespace wavesim;

struct Point {
  double load = 0.0;
  double mean = 0.0;
  double p99 = 0.0;
  double throughput = 0.0;
  bool saturated = false;
};

Point run_point(sim::ProtocolKind protocol, double load) {
  sim::SimConfig config = sim::SimConfig::default_torus();
  config.protocol.protocol = protocol;
  if (protocol == sim::ProtocolKind::kWormholeOnly) {
    config.router.wave_switches = 0;
  }
  config.seed = 42;
  core::Simulation sim(config);
  load::UniformTraffic pattern(sim.topology());
  load::FixedSize sizes(128);
  const auto r = load::run_open_loop(sim, pattern, sizes, load,
                                     /*warmup=*/2000, /*measure=*/8000,
                                     /*drain_cap=*/250000, /*seed=*/7);
  Point p;
  p.load = load;
  p.mean = r.stats.latency_mean;
  p.p99 = r.stats.latency_p99;
  p.throughput = r.stats.throughput_flits_per_node_cycle;
  p.saturated = !r.drained;
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Cli cli("E1", "latency vs offered load (wormhole vs wave/CLRP)");
  if (!cli.parse(argc, argv)) return cli.exit_code();
  return cli.run([&] {
  bench::banner("E1", "latency vs offered load (wormhole vs wave/CLRP)",
                "8x8 torus, uniform traffic, 128-flit messages, w=2 VCs, "
                "k=2 wave switches, wave clock x4");
  std::vector<double> loads{0.05, 0.10, 0.15, 0.20, 0.30,
                            0.40, 0.50, 0.60};
  if (cli.quick()) loads = {0.05, 0.15};
  std::vector<Point> wormhole(loads.size());
  std::vector<Point> wave(loads.size());
  bench::parallel_for(loads.size() * 2, [&](std::size_t i) {
    const std::size_t li = i / 2;
    if (i % 2 == 0) {
      wormhole[li] = run_point(sim::ProtocolKind::kWormholeOnly, loads[li]);
    } else {
      wave[li] = run_point(sim::ProtocolKind::kClrp, loads[li]);
    }
  }, cli.threads());

  bench::Table table({"load", "wh-mean", "wh-p99", "wh-thru", "wave-mean",
                      "wave-p99", "wave-thru", "speedup"});
  for (std::size_t i = 0; i < loads.size(); ++i) {
    const auto& w = wormhole[i];
    const auto& v = wave[i];
    auto cell = [](const Point& p, double value) {
      return p.saturated ? "sat(" + bench::fmt(value, 0) + ")"
                         : bench::fmt(value, 1);
    };
    table.add_row({bench::fmt(loads[i], 2), cell(w, w.mean),
                   cell(w, w.p99), bench::fmt(w.throughput, 3),
                   cell(v, v.mean), cell(v, v.p99),
                   bench::fmt(v.throughput, 3),
                   bench::fmt(w.mean / (v.mean > 0 ? v.mean : 1), 2) + "x"});
  }
  cli.report(table, "e1_latency_load");
  std::printf("\n'sat' marks points past saturation (drain cap hit); their "
              "latencies are lower bounds.\n");

  // Observability opt-in: rerun one representative point (CLRP at the
  // lowest load) single-threaded with the observer attached.
  if (cli.observability_requested()) {
    sim::SimConfig config = sim::SimConfig::default_torus();
    config.protocol.protocol = sim::ProtocolKind::kClrp;
    config.seed = 42;
    core::Simulation sim(config);
    const auto observer = cli.observe(sim);
    load::UniformTraffic pattern(sim.topology());
    load::FixedSize sizes(128);
    load::run_open_loop(sim, pattern, sizes, loads.front(),
                        /*warmup=*/2000, /*measure=*/8000,
                        /*drain_cap=*/250000, /*seed=*/7);
    bench::require(cli.write_observability(*observer),
                   "E1: failed to write trace/metrics output");
  }
  return true;
  });
}
