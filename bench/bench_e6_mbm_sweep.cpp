// E6 -- MB-m misroute budget sweep (section 2: probes use "a misrouting
// backtracking protocol with a maximum of m misroutes (MB-m)").
//
// Under contention, a larger m lets probes detour around occupied channel
// pairs instead of giving up -- raising setup success at the cost of more
// probe work and longer (non-minimal) circuits.
#include "bench_util.hpp"
#include "core/simulation.hpp"
#include "workload/generator.hpp"

namespace {

using namespace wavesim;

struct Row {
  double probe_success = 0.0;
  double backtracks_per_probe = 0.0;
  double misroutes_per_probe = 0.0;
  double fallback_share = 0.0;
  double setup_msg_latency = 0.0;
};

Row run_point(std::int32_t m) {
  sim::SimConfig config = sim::SimConfig::default_torus();
  config.protocol.protocol = sim::ProtocolKind::kClrp;
  config.protocol.max_misroutes = m;
  config.router.wave_switches = 1;  // single switch: maximal contention
  config.seed = 77;
  core::Simulation sim(config);
  load::UniformTraffic pattern(sim.topology());
  load::FixedSize sizes(64);
  const auto r = load::run_open_loop(sim, pattern, sizes, /*load=*/0.12,
                                     /*warmup=*/2000, /*measure=*/10000,
                                     /*drain_cap=*/400000, /*seed=*/3);
  Row row;
  const auto& s = r.stats;
  const double probes = static_cast<double>(s.probes_launched);
  row.probe_success = s.setup_success_rate();
  row.backtracks_per_probe = probes > 0 ? s.probe_backtracks / probes : 0.0;
  row.misroutes_per_probe = probes > 0 ? s.probe_misroutes / probes : 0.0;
  const double total = static_cast<double>(s.messages_delivered);
  row.fallback_share = total > 0 ? s.fallback_count / total : 0.0;
  row.setup_msg_latency = s.circuit_setup_latency;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Cli cli("E6", "MB-m misroute budget sweep");
  if (!cli.parse(argc, argv)) return cli.exit_code();
  return cli.run([&] {
  bench::banner("E6", "MB-m misroute budget sweep",
                "8x8 torus, CLRP, k=1 (contended), uniform traffic, 64-flit "
                "messages, load 0.12; m = 0..4");
  std::vector<std::int32_t> ms{0, 1, 2, 3, 4};
  if (cli.quick()) ms = {0, 2};
  std::vector<Row> rows(ms.size());
  bench::parallel_for(ms.size(), [&](std::size_t i) { rows[i] = run_point(ms[i]); },
                      cli.threads());

  bench::Table table({"m", "probe-success", "backtracks/probe",
                      "misroutes/probe", "fallback-share", "setup-msg-lat"});
  for (std::size_t i = 0; i < ms.size(); ++i) {
    const Row& r = rows[i];
    table.add_row({bench::fmt_int(ms[i]), bench::fmt_pct(r.probe_success),
                   bench::fmt(r.backtracks_per_probe, 2),
                   bench::fmt(r.misroutes_per_probe, 2),
                   bench::fmt_pct(r.fallback_share),
                   bench::fmt(r.setup_msg_latency, 1)});
  }
  cli.report(table, "e6_mbm_sweep");
  std::printf("\nExpected shape: probe success rises with m while the "
              "wormhole-fallback share\nfalls; the price is more misroutes "
              "(longer probes and circuits).\n");
  return true;
  });
}
