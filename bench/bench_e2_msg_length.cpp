// E2 -- Message-length sensitivity: the paper's headline numbers.
//
// Claim (sections 1 and 5): wave switching improves latency/throughput "by
// a factor higher than three if messages are long enough (>= 128 flits),
// even if circuits are not reused. For short messages, wave switching can
// only improve performance if circuits are reused."
//
// Method: unloaded 8x8 torus, one src->dest pair at the typical distance
// (8 hops). For each message length we measure (a) wormhole latency,
// (b) wave latency including a fresh circuit setup (no reuse: the circuit
// is evicted between messages), and (c) wave latency on a reused circuit.
#include "bench_util.hpp"
#include "core/simulation.hpp"
#include "workload/generator.hpp"

namespace {

using namespace wavesim;

double wormhole_latency(std::int32_t length, NodeId src, NodeId dest) {
  core::Simulation sim(sim::SimConfig::wormhole_baseline());
  sim.send(src, dest, length);
  bench::require(sim.run_until_delivered(1'000'000),
                 "E2: wormhole reference message did not deliver");
  return sim.network().messages().at(0).latency();
}

/// {setup-latency (cold, no reuse), hit-latency (reused)}.
std::pair<double, double> wave_latency(std::int32_t length, NodeId src,
                                       NodeId dest) {
  sim::SimConfig config = sim::SimConfig::default_torus();
  config.protocol.protocol = sim::ProtocolKind::kClrp;
  core::Simulation sim(config);
  sim.send(src, dest, length);
  bench::require(sim.run_until_delivered(1'000'000),
                 "E2: cold wave message did not deliver");
  const double cold = sim.network().messages().at(0).latency();
  sim.send(src, dest, length);
  bench::require(sim.run_until_delivered(1'000'000),
                 "E2: warm wave message did not deliver");
  const double hit = sim.network().messages().at(1).latency();
  return {cold, hit};
}

/// Mean latency under uniform load (0.25 flits/node/cycle). With 63
/// possible destinations and an 8-entry cache, circuit reuse is rare --
/// this is the "even if circuits are not reused" regime of the claim.
double loaded_latency(sim::ProtocolKind protocol, std::int32_t length) {
  sim::SimConfig config = sim::SimConfig::default_torus();
  config.protocol.protocol = protocol;
  if (protocol == sim::ProtocolKind::kWormholeOnly) {
    config.router.wave_switches = 0;
  }
  config.seed = 4;
  core::Simulation sim(config);
  load::UniformTraffic pattern(sim.topology());
  load::FixedSize sizes(length);
  const auto r = load::run_open_loop(sim, pattern, sizes, /*load=*/0.25,
                                     /*warmup=*/2000, /*measure=*/8000,
                                     /*drain_cap=*/300000, /*seed=*/19);
  return r.stats.latency_mean;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Cli cli("E2", "message-length sensitivity (the >=128-flit, >3x claim)");
  if (!cli.parse(argc, argv)) return cli.exit_code();
  return cli.run([&] {
  bench::banner("E2", "message-length sensitivity (the >=128-flit, >3x claim)",
                "unloaded columns: single message (0,0)->(4,4), 8 hops; "
                "loaded column: uniform traffic at 0.25 flits/node/cycle "
                "(negligible reuse)");
  topo::KAryNCube topo({8, 8}, true);
  const NodeId src = topo.node_of({0, 0});
  const NodeId dest = topo.node_of({4, 4});

  std::vector<std::int32_t> lengths{8, 16, 32, 64, 128, 256, 512};
  if (cli.quick()) lengths = {8, 128};
  std::vector<double> wh_loaded(lengths.size());
  std::vector<double> wave_loaded(lengths.size());
  bench::parallel_for(lengths.size() * 2, [&](std::size_t i) {
    const std::size_t li = i / 2;
    if (i % 2 == 0) {
      wh_loaded[li] =
          loaded_latency(sim::ProtocolKind::kWormholeOnly, lengths[li]);
    } else {
      wave_loaded[li] = loaded_latency(sim::ProtocolKind::kClrp, lengths[li]);
    }
  }, cli.threads());

  bench::Table table({"flits", "wormhole", "wave-noreuse", "wave-reuse",
                      "gain-noreuse", "gain-reuse", "gain-loaded"});
  for (std::size_t i = 0; i < lengths.size(); ++i) {
    const std::int32_t length = lengths[i];
    const double wh = wormhole_latency(length, src, dest);
    const auto [cold, hit] = wave_latency(length, src, dest);
    table.add_row({bench::fmt_int(length), bench::fmt(wh, 0),
                   bench::fmt(cold, 0), bench::fmt(hit, 0),
                   bench::fmt(wh / cold, 2) + "x",
                   bench::fmt(wh / hit, 2) + "x",
                   bench::fmt(wh_loaded[i] / wave_loaded[i], 2) + "x"});
  }
  cli.report(table, "e2_msg_length");
  std::printf("\nExpected shape: the unloaded no-reuse gain grows with "
              "length (setup amortizes);\nunder load the gain exceeds 3x "
              "for >=128-flit messages even without reuse,\nwhile reuse "
              "(gain-reuse) is what rescues short messages.\n");
  return true;
  });
}
