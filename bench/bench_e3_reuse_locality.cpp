// E3 -- Temporal locality / circuit reuse: short messages only profit from
// wave switching when circuits are reused (sections 1 and 3).
//
// Working-set traffic: each node's messages go to a 4-destination working
// set with probability p (the locality knob). CLRP's circuit cache turns
// locality into hits; at p = 0 (uniform) short messages are better off on
// the wormhole plane.
#include "bench_util.hpp"
#include "core/simulation.hpp"
#include "workload/generator.hpp"

namespace {

using namespace wavesim;

struct Row {
  double hit_rate = 0.0;
  double mean = 0.0;
  double p99 = 0.0;
  double wormhole_mean = 0.0;
};

Row run_point(double p_in_set) {
  Row row;
  for (const bool use_clrp : {true, false}) {
    sim::SimConfig config = sim::SimConfig::default_torus();
    config.protocol.protocol = use_clrp ? sim::ProtocolKind::kClrp
                                        : sim::ProtocolKind::kWormholeOnly;
    // 4 wave switches so the circuit-channel supply can actually hold the
    // working sets (the paper's multi-chip design point).
    config.router.wave_switches = use_clrp ? 4 : 0;
    config.seed = 5;
    core::Simulation sim(config);
    load::WorkingSetTraffic pattern(sim.topology(), 2, p_in_set, sim::Rng{17});
    load::FixedSize sizes(16);  // short messages
    const auto r = load::run_open_loop(sim, pattern, sizes, /*load=*/0.10,
                                       /*warmup=*/3000, /*measure=*/10000,
                                       /*drain_cap=*/300000, /*seed=*/23);
    if (use_clrp) {
      row.hit_rate = r.stats.cache_hit_rate();
      row.mean = r.stats.latency_mean;
      row.p99 = r.stats.latency_p99;
    } else {
      row.wormhole_mean = r.stats.latency_mean;
    }
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Cli cli("E3", "circuit reuse vs temporal locality (short messages)");
  if (!cli.parse(argc, argv)) return cli.exit_code();
  return cli.run([&] {
  bench::banner("E3", "circuit reuse vs temporal locality (short messages)",
                "8x8 torus, k=4, 16-flit messages, load 0.10, working set of 2 "
                "destinations per node, locality p swept");
  std::vector<double> ps{0.0, 0.25, 0.5, 0.75, 0.9, 1.0};
  if (cli.quick()) ps = {0.0, 0.9};
  std::vector<Row> rows(ps.size());
  bench::parallel_for(ps.size(), [&](std::size_t i) { rows[i] = run_point(ps[i]); },
                      cli.threads());

  bench::Table table({"locality-p", "cache-hit", "clrp-mean", "clrp-p99",
                      "wormhole-mean", "clrp/wormhole"});
  for (std::size_t i = 0; i < ps.size(); ++i) {
    const Row& r = rows[i];
    table.add_row({bench::fmt(ps[i], 2), bench::fmt_pct(r.hit_rate),
                   bench::fmt(r.mean, 1), bench::fmt(r.p99, 1),
                   bench::fmt(r.wormhole_mean, 1),
                   bench::fmt(r.mean / r.wormhole_mean, 2)});
  }
  cli.report(table, "e3_reuse_locality");
  std::printf("\nExpected shape: at low locality CLRP pays setups it never "
              "amortizes\n(ratio near or above 1); as p grows the hit rate "
              "climbs and the ratio drops\nwell below 1 -- reuse is what "
              "makes circuits pay for short messages.\n");
  return true;
  });
}
