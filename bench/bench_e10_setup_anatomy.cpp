// E10 -- CLRP setup anatomy and the section-3.1 simplifications.
//
// "The CLRP protocol can be simplified in several ways. First, when a
//  circuit cannot be established by using Initial Switch, the Force bit
//  can be set without trying the remaining switches. ... Second, the Force
//  bit can be set when the probe is first sent ... The optimal protocol
//  depends on the number of physical switches per node, and on the
//  applications."
//
// Compares the full three-phase protocol against both simplifications
// under circuit-hungry traffic, reporting where the setup effort goes.
#include "bench_util.hpp"
#include "core/simulation.hpp"
#include "workload/generator.hpp"

namespace {

using namespace wavesim;

struct Row {
  double setup_success = 0.0;
  double probes_per_setup = 0.0;
  std::uint64_t force_waits = 0;
  std::uint64_t release_requests = 0;
  double fallback_share = 0.0;
  double mean = 0.0;
};

Row run_point(sim::ClrpVariant variant) {
  sim::SimConfig config = sim::SimConfig::default_torus();
  config.protocol.protocol = sim::ProtocolKind::kClrp;
  config.protocol.clrp_variant = variant;
  config.protocol.circuit_cache_entries = 4;
  config.seed = 8;
  core::Simulation sim(config);
  // Working set larger than the cache and bigger than the channel supply:
  // plenty of misses, evictions and Force-phase action.
  load::WorkingSetTraffic pattern(sim.topology(), 6, 0.8, sim::Rng{71});
  load::FixedSize sizes(48);
  const auto r = load::run_open_loop(sim, pattern, sizes, /*load=*/0.15,
                                     /*warmup=*/2000, /*measure=*/10000,
                                     /*drain_cap=*/400000, /*seed=*/61);
  Row row;
  std::uint64_t setups_started = 0;
  std::uint64_t setups_succeeded = 0;
  for (NodeId n = 0; n < sim.topology().num_nodes(); ++n) {
    const auto& s = sim.network().interface(n).stats();
    setups_started += s.setups_started;
    setups_succeeded += s.setups_succeeded;
  }
  const auto& s = r.stats;
  row.setup_success = setups_started > 0
      ? static_cast<double>(setups_succeeded) / setups_started
      : 0.0;
  row.probes_per_setup = setups_started > 0
      ? static_cast<double>(s.probes_launched) / setups_started
      : 0.0;
  if (const auto* cp = sim.network().control_plane(); cp != nullptr) {
    row.force_waits = cp->stats().force_waits;
    row.release_requests = cp->stats().release_requests_sent;
  }
  const double total = static_cast<double>(s.messages_delivered);
  row.fallback_share = total > 0 ? s.fallback_count / total : 0.0;
  row.mean = s.latency_mean;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Cli cli("E10", "CLRP setup anatomy: full protocol vs simplifications");
  if (!cli.parse(argc, argv)) return cli.exit_code();
  return cli.run([&] {
  bench::banner("E10", "CLRP setup anatomy: full protocol vs simplifications",
                "8x8 torus, k=2, cache 4 entries vs working set 6 (p=0.8), "
                "48-flit messages, load 0.15");
  std::vector<sim::ClrpVariant> variants{
      sim::ClrpVariant::kFull, sim::ClrpVariant::kForceFirst,
      sim::ClrpVariant::kSingleSwitch};
  if (cli.quick()) variants = {sim::ClrpVariant::kFull};
  std::vector<Row> rows(variants.size());
  bench::parallel_for(variants.size(),
                      [&](std::size_t i) { rows[i] = run_point(variants[i]); },
                      cli.threads());

  bench::Table table({"variant", "setup-ok", "probes/setup", "force-waits",
                      "release-reqs", "fallback", "mean-lat"});
  for (std::size_t i = 0; i < variants.size(); ++i) {
    const Row& r = rows[i];
    table.add_row({sim::to_string(variants[i]), bench::fmt_pct(r.setup_success),
                   bench::fmt(r.probes_per_setup, 2),
                   bench::fmt_int(r.force_waits),
                   bench::fmt_int(r.release_requests),
                   bench::fmt_pct(r.fallback_share), bench::fmt(r.mean, 1)});
  }
  cli.report(table, "e10_setup_anatomy");
  std::printf("\nExpected shape: the variants trade probe work against "
              "teardown pressure --\nforce-first spends the fewest probes "
              "per setup (it never searches politely)\nat the cost of more "
              "release requests; the full protocol searches all\nswitches "
              "first. The paper (section 3.1): the optimal variant is "
              "workload-\nand-k dependent, 'it can only be tuned by using "
              "traces from real applications'.\n");
  return true;
  });
}
