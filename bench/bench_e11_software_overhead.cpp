// E11 -- The software messaging layer (paper section 1): "Even for a very
// efficient messaging layer based on active messages, software overhead
// accounts for 50-70% of the total cost. Therefore, reducing the network
// hardware latency has a minimal impact on performance." And section 5:
// wave switching "allows to reduce the overhead of the software messaging
// layer ... message buffers can be allocated at both ends when the
// physical circuit is established. Those buffers will be reused."
//
// Two regimes:
//  * DSM: zero software overhead (hardware sends) -- hardware latency is
//    everything, wave switching shines directly;
//  * multicomputer: a heavy software send path for wormhole messages,
//    reduced to buffer-reuse cost for messages on an established circuit.
#include "bench_util.hpp"
#include "core/simulation.hpp"
#include "workload/generator.hpp"

namespace {

using namespace wavesim;

struct Row {
  double mean = 0.0;
  double p99 = 0.0;
  std::uint64_t reallocs = 0;
};

Row run_point(sim::ProtocolKind protocol, bool multicomputer) {
  sim::SimConfig config = sim::SimConfig::default_torus();
  config.protocol.protocol = protocol;
  if (protocol == sim::ProtocolKind::kWormholeOnly) {
    config.router.wave_switches = 0;
  }
  if (multicomputer) {
    // Software path ~2-3x the typical hardware latency (the paper's
    // 50-70% share), collapsing to a small reuse cost on circuits.
    config.software.wormhole_send_overhead = 250;
    config.software.circuit_first_send_overhead = 250;
    config.software.circuit_reuse_send_overhead = 25;
    config.software.buffer_realloc_penalty = 100;
    config.software.clrp_initial_buffer_flits = 64;
  }
  config.seed = 6;
  core::Simulation sim(config);
  load::WorkingSetTraffic pattern(sim.topology(), 2, 0.9, sim::Rng{37});
  load::BimodalSize sizes(8, 128, 0.3);
  if (protocol == sim::ProtocolKind::kCarp) {
    // The "compiler" pre-establishes circuits for each node's working set
    // and declares the longest message (128 flits) so the end-point
    // buffers never need re-allocation.
    for (NodeId src = 0; src < sim.topology().num_nodes(); ++src) {
      for (NodeId dest : pattern.working_set(src)) {
        sim.establish_circuit(src, dest, /*max_message_flits=*/128);
      }
    }
    sim.run(500);
  }
  const auto r = load::run_open_loop(sim, pattern, sizes, /*load=*/0.10,
                                     /*warmup=*/3000, /*measure=*/10000,
                                     /*drain_cap=*/400000, /*seed=*/43);
  return Row{r.stats.latency_mean, r.stats.latency_p99,
             r.stats.buffer_reallocs};
}

}  // namespace

int main(int argc, char** argv) {
  bench::Cli cli("E11", "software messaging-layer overhead");
  if (!cli.parse(argc, argv)) return cli.exit_code();
  return cli.run([&] {
  bench::banner("E11", "software messaging-layer overhead",
                "8x8 torus, working-set traffic (2 dests, p=0.9), bimodal "
                "8/128-flit messages, load 0.10; multicomputer regime adds "
                "a 250-cycle software send path that circuits amortize");
  bench::Table table({"regime", "protocol", "mean-lat", "p99", "reallocs"});
  struct Case {
    bool multicomputer;
    sim::ProtocolKind protocol;
  };
  std::vector<Case> cases;
  for (const bool multicomputer : {false, true}) {
    for (const auto protocol :
         {sim::ProtocolKind::kWormholeOnly, sim::ProtocolKind::kClrp,
          sim::ProtocolKind::kCarp}) {
      if (cli.quick() && protocol == sim::ProtocolKind::kCarp) continue;
      cases.push_back({multicomputer, protocol});
    }
  }
  std::vector<Row> rows(cases.size());
  bench::parallel_for(cases.size(), [&](std::size_t i) {
    rows[i] = run_point(cases[i].protocol, cases[i].multicomputer);
  }, cli.threads());
  for (std::size_t i = 0; i < cases.size(); ++i) {
    table.add_row({cases[i].multicomputer ? "multicomputer" : "DSM",
                   sim::to_string(cases[i].protocol), bench::fmt(rows[i].mean, 1),
                   bench::fmt(rows[i].p99, 1), bench::fmt_int(rows[i].reallocs)});
  }
  cli.report(table, "e11_software_overhead");
  std::printf("\nExpected shape: in the DSM regime the wave gain is the "
              "hardware gain; in the\nmulticomputer regime wormhole "
              "latency is dominated by the software send path\nwhile CLRP "
              "amortizes it across circuit reuse -- the paper's argument "
              "that\nbetter hardware support (pre-allocated buffers) beats "
              "a faster router alone.\n");
  return true;
  });
}
