// Micro-benchmarks (google-benchmark) for the hot components: MB-m
// decision, circuit-cache operations, CDG construction, router pipeline
// and whole-network cycle cost.
#include <benchmark/benchmark.h>

#include "core/circuit_cache.hpp"
#include "core/simulation.hpp"
#include "pcs/mbm.hpp"
#include "routing/cdg.hpp"
#include "routing/dor.hpp"
#include "routing/duato.hpp"
#include "workload/generator.hpp"

namespace {

using namespace wavesim;

void BM_MbmDecide(benchmark::State& state) {
  topo::KAryNCube topo({8, 8}, true);
  std::vector<pcs::PortView> view(topo.num_ports(), pcs::PortView::kAvailable);
  view[0] = pcs::PortView::kBusyPending;
  NodeId node = 0;
  for (auto _ : state) {
    auto d = pcs::decide(topo, node, 27, view, kInvalidPort, 0, 2, false);
    benchmark::DoNotOptimize(d);
    node = (node + 1) % 27;
  }
}
BENCHMARK(BM_MbmDecide);

void BM_CacheFindHit(benchmark::State& state) {
  core::CircuitCache cache(static_cast<std::int32_t>(state.range(0)),
                           sim::ReplacementPolicy::kLru, sim::Rng{1});
  for (std::int32_t d = 0; d < state.range(0); ++d) {
    cache.allocate(d + 1, d, nullptr)->ack_returned = true;
  }
  NodeId probe_dest = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.find(probe_dest));
    probe_dest = probe_dest % state.range(0) + 1;
  }
}
BENCHMARK(BM_CacheFindHit)->Arg(4)->Arg(8)->Arg(32);

void BM_CacheAllocateEvict(benchmark::State& state) {
  core::CircuitCache cache(8, sim::ReplacementPolicy::kLru, sim::Rng{1});
  Cycle now = 0;
  NodeId dest = 1;
  for (auto _ : state) {
    std::optional<core::CacheEntry> evicted;
    auto* e = cache.allocate(dest, now++, &evicted);
    e->ack_returned = true;
    benchmark::DoNotOptimize(e);
    dest = dest % 1000 + 1;
  }
}
BENCHMARK(BM_CacheAllocateEvict);

void BM_CdgBuildDorTorus(benchmark::State& state) {
  const auto r = static_cast<std::int32_t>(state.range(0));
  topo::KAryNCube topo({r, r}, true);
  route::DimensionOrderRouting dor(topo, 2);
  for (auto _ : state) {
    auto g = route::build_cdg(topo, dor, 2, false);
    benchmark::DoNotOptimize(g.num_edges());
  }
}
BENCHMARK(BM_CdgBuildDorTorus)->Arg(4)->Arg(8);

void BM_CdgEscapeCheckDuato(benchmark::State& state) {
  topo::KAryNCube topo({8, 8}, true);
  route::DuatoAdaptiveRouting duato(topo, 3);
  for (auto _ : state) {
    auto g = route::build_cdg(topo, duato, 3, true);
    benchmark::DoNotOptimize(g.acyclic());
  }
}
BENCHMARK(BM_CdgEscapeCheckDuato);

void BM_NetworkCycleIdle(benchmark::State& state) {
  core::Simulation sim(sim::SimConfig::default_torus());
  for (auto _ : state) sim.step();
}
BENCHMARK(BM_NetworkCycleIdle);

void BM_NetworkCycleLoaded(benchmark::State& state) {
  sim::SimConfig config = sim::SimConfig::default_torus();
  config.protocol.protocol = sim::ProtocolKind::kClrp;
  core::Simulation sim(config);
  load::UniformTraffic pattern(sim.topology());
  load::FixedSize sizes(32);
  load::OpenLoopGenerator gen(sim, pattern, sizes, 0.2, sim::Rng{3});
  for (auto _ : state) gen.tick();
}
BENCHMARK(BM_NetworkCycleLoaded);

void BM_WormholeCycleLoaded(benchmark::State& state) {
  core::Simulation sim(sim::SimConfig::wormhole_baseline());
  load::UniformTraffic pattern(sim.topology());
  load::FixedSize sizes(32);
  load::OpenLoopGenerator gen(sim, pattern, sizes, 0.2, sim::Rng{3});
  for (auto _ : state) gen.tick();
}
BENCHMARK(BM_WormholeCycleLoaded);

}  // namespace

BENCHMARK_MAIN();
