// E13 -- Saturation throughput per router configuration (capstone).
//
// The paper's bottom line is a *throughput* claim: wave switching lifts
// the sustainable load. This bench binary binary-searches the saturation
// point (largest offered load the network drains while delivering >= 90%
// of offered throughput) for the wormhole baseline and wave routers with
// increasing switch counts, plus the PCS-only router of section 2.
#include "bench_util.hpp"
#include "core/simulation.hpp"
#include "workload/generator.hpp"

namespace {

using namespace wavesim;

struct Variant {
  const char* name;
  sim::ProtocolKind protocol;
  std::int32_t k;
  bool pcs_only;
};

struct Row {
  load::SaturationSearch result;
};

Row run_point(const Variant& v, std::int32_t length) {
  sim::SimConfig config = sim::SimConfig::default_torus();
  config.protocol.protocol = v.protocol;
  config.router.wave_switches = v.k;
  config.protocol.pcs_only = v.pcs_only;
  config.seed = 14;
  return Row{load::find_saturation(config, "uniform", length,
                                   /*lo=*/0.02, /*hi=*/0.95,
                                   /*tolerance=*/0.03,
                                   /*warmup=*/800, /*measure=*/3000,
                                   /*seed=*/14)};
}

}  // namespace

int main(int argc, char** argv) {
  bench::Cli cli("E13", "saturation throughput per router configuration");
  if (!cli.parse(argc, argv)) return cli.exit_code();
  return cli.run([&] {
  bench::banner("E13", "saturation throughput per router configuration",
                "8x8 torus, uniform traffic, binary search for the largest "
                "offered load that drains with mean latency <= 5x the "
                "uncongested reference");
  std::vector<Variant> variants{
      {"wormhole (w=2)", sim::ProtocolKind::kWormholeOnly, 0, false},
      {"wave k=1 CLRP", sim::ProtocolKind::kClrp, 1, false},
      {"wave k=2 CLRP", sim::ProtocolKind::kClrp, 2, false},
      {"wave k=4 CLRP", sim::ProtocolKind::kClrp, 4, false},
      {"PCS-only k=2", sim::ProtocolKind::kClrp, 2, true},
  };
  if (cli.quick()) {
    variants = {{"wormhole (w=2)", sim::ProtocolKind::kWormholeOnly, 0, false},
                {"wave k=2 CLRP", sim::ProtocolKind::kClrp, 2, false}};
  }
  std::vector<std::int32_t> lengths{32, 128};
  if (cli.quick()) lengths = {32};
  for (const std::int32_t length : lengths) {
    std::printf("\n[%d-flit messages]\n", length);
    bench::Table table({"router", "saturation-load", "latency-at-load",
                        "points"});
    std::vector<Row> rows(variants.size());
    bench::parallel_for(variants.size(), [&](std::size_t i) {
      rows[i] = run_point(variants[i], length);
    }, cli.threads());
    for (std::size_t i = 0; i < variants.size(); ++i) {
      bench::require(rows[i].result.points_probed > 0,
                     "E13: saturation search probed no points");
      table.add_row({variants[i].name,
                     bench::fmt(rows[i].result.load, 3),
                     bench::fmt(rows[i].result.latency_at_load, 1),
                     bench::fmt_int(rows[i].result.points_probed)});
    }
    cli.report(table,
               length == 32 ? "e13_saturation_short" : "e13_saturation_long");
  }
  std::printf("\nExpected shape: every wave configuration saturates later "
              "than wormhole, with\nthe margin growing for long messages; "
              "k buys extra circuit capacity under\nuniform (low-reuse) "
              "traffic; the PCS-only router trades the wormhole safety\n"
              "net for simplicity and saturates earlier than the hybrid at "
              "equal k.\n");
  return true;
  });
}
