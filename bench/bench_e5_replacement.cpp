// E5 -- Circuit-cache replacement policy ablation (Fig. 5 "Replace" field;
// section 3.1: "a replacement algorithm selects the circuit to be torn
// down ... The meaning of this field depends on the replacement
// algorithm").
//
// Working set (6 destinations) deliberately exceeds the cache (4 entries)
// so the policy choice matters: every miss must evict a live circuit.
#include "bench_util.hpp"
#include "core/simulation.hpp"
#include "workload/generator.hpp"

namespace {

using namespace wavesim;

struct Row {
  double hit_rate = 0.0;
  double mean = 0.0;
  std::uint64_t evictions = 0;
  std::uint64_t teardowns = 0;
};

Row run_point(sim::ReplacementPolicy policy) {
  sim::SimConfig config = sim::SimConfig::default_torus();
  config.protocol.protocol = sim::ProtocolKind::kClrp;
  config.protocol.circuit_cache_entries = 3;
  config.protocol.replacement = policy;
  config.router.wave_switches = 4;  // ample channels: cache is the bottleneck
  config.seed = 3;
  core::Simulation sim(config);
  // Skewed reuse: a couple of hot destinations plus a cold tail, so
  // recency/frequency information is worth keeping.
  load::WorkingSetTraffic pattern(sim.topology(), /*set_size=*/6,
                                  /*p_in_set=*/0.9, sim::Rng{29},
                                  /*skew=*/0.6);
  load::FixedSize sizes(32);
  const auto r = load::run_open_loop(sim, pattern, sizes, /*load=*/0.08,
                                     /*warmup=*/3000, /*measure=*/12000,
                                     /*drain_cap=*/400000, /*seed=*/31);
  Row row;
  row.hit_rate = r.stats.cache_hit_rate();
  row.mean = r.stats.latency_mean;
  row.evictions = r.stats.cache_evictions;
  row.teardowns = r.stats.teardowns;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Cli cli("E5", "circuit-cache replacement policy ablation");
  if (!cli.parse(argc, argv)) return cli.exit_code();
  return cli.run([&] {
  bench::banner("E5", "circuit-cache replacement policy ablation",
                "8x8 torus, CLRP, k=4, cache 3 entries/node vs skewed working set "
                "of 6 (skew 0.6), locality 0.9, 32-flit messages, load 0.08");
  std::vector<sim::ReplacementPolicy> policies{
      sim::ReplacementPolicy::kLru, sim::ReplacementPolicy::kLfu,
      sim::ReplacementPolicy::kFifo, sim::ReplacementPolicy::kRandom};
  if (cli.quick()) policies = {sim::ReplacementPolicy::kLru,
                               sim::ReplacementPolicy::kRandom};
  std::vector<Row> rows(policies.size());
  bench::parallel_for(policies.size(),
                      [&](std::size_t i) { rows[i] = run_point(policies[i]); },
                      cli.threads());

  bench::Table table(
      {"policy", "cache-hit", "mean-lat", "evictions", "teardowns"});
  for (std::size_t i = 0; i < policies.size(); ++i) {
    table.add_row({sim::to_string(policies[i]),
                   bench::fmt_pct(rows[i].hit_rate),
                   bench::fmt(rows[i].mean, 1),
                   bench::fmt_int(rows[i].evictions),
                   bench::fmt_int(rows[i].teardowns)});
  }
  cli.report(table, "e5_replacement");
  std::printf("\nExpected shape: recency/frequency-aware policies (LRU/LFU) "
              "hold the hot set\nbetter than FIFO/random, showing higher hit"
              " rates and lower latency.\n");
  return true;
  });
}
