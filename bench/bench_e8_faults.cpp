// E8 -- Static-fault resilience (section 2: MB-m "is very resilient to
// static faults in the network"; section 5: "tolerance to static faults
// ... is guaranteed for all the messages using physical circuits").
//
// Sweeps the circuit-channel fault rate at two misroute budgets. Load is
// kept low so contention does not mask the fault effect. Delivery must be
// 100% at every fault rate (wormhole fallback).
#include "bench_util.hpp"
#include "core/simulation.hpp"
#include "verify/delivery.hpp"
#include "workload/generator.hpp"

namespace {

using namespace wavesim;

struct Row {
  double setup_success = 0.0;  ///< circuits established / setups started
  double fallback_share = 0.0;
  double mean = 0.0;
  bool all_delivered = false;
  std::int64_t faulty = 0;
};

Row run_point(double rate, std::int32_t m) {
  sim::SimConfig config = sim::SimConfig::default_torus();
  config.protocol.protocol = sim::ProtocolKind::kClrp;
  config.protocol.max_misroutes = m;
  config.faults.link_fault_rate = rate;
  config.seed = 1234;
  core::Simulation sim(config);
  load::UniformTraffic pattern(sim.topology());
  load::FixedSize sizes(64);
  const auto r = load::run_open_loop(sim, pattern, sizes, /*load=*/0.02,
                                     /*warmup=*/2000, /*measure=*/12000,
                                     /*drain_cap=*/600000, /*seed=*/55);
  Row row;
  std::uint64_t setups_started = 0;
  std::uint64_t setups_succeeded = 0;
  for (NodeId n = 0; n < sim.topology().num_nodes(); ++n) {
    const auto& s = sim.network().interface(n).stats();
    setups_started += s.setups_started;
    setups_succeeded += s.setups_succeeded;
  }
  row.setup_success = setups_started > 0
      ? static_cast<double>(setups_succeeded) / setups_started
      : 0.0;
  const double total = static_cast<double>(r.stats.messages_delivered);
  row.fallback_share = total > 0 ? r.stats.fallback_count / total : 0.0;
  row.mean = r.stats.latency_mean;
  row.all_delivered = r.drained && verify::check_delivery(sim.network()).ok();
  row.faulty = sim.network().faulty_channels();
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Cli cli("E8", "static-fault resilience of circuit setup");
  if (!cli.parse(argc, argv)) return cli.exit_code();
  return cli.run([&] {
  bench::banner("E8", "static-fault resilience of circuit setup",
                "8x8 torus, CLRP, uniform traffic, 64-flit messages, light "
                "load 0.02; fault rate on circuit channel pairs swept, "
                "m in {0, 2}");
  std::vector<double> rates{0.0, 0.05, 0.10, 0.20, 0.30, 0.40};
  if (cli.quick()) rates = {0.0, 0.20};
  std::vector<Row> m0(rates.size());
  std::vector<Row> m2(rates.size());
  bench::parallel_for(rates.size() * 2, [&](std::size_t i) {
    const std::size_t ri = i / 2;
    if (i % 2 == 0) {
      m0[ri] = run_point(rates[ri], 0);
    } else {
      m2[ri] = run_point(rates[ri], 2);
    }
  }, cli.threads());

  bench::Table table({"fault-rate", "faulty-chan", "setup-ok(m=0)",
                      "setup-ok(m=2)", "fallback(m=2)", "mean(m=2)",
                      "delivered"});
  for (std::size_t i = 0; i < rates.size(); ++i) {
    table.add_row({bench::fmt_pct(rates[i], 0), bench::fmt_int(m2[i].faulty),
                   bench::fmt_pct(m0[i].setup_success),
                   bench::fmt_pct(m2[i].setup_success),
                   bench::fmt_pct(m2[i].fallback_share),
                   bench::fmt(m2[i].mean, 1),
                   m0[i].all_delivered && m2[i].all_delivered ? "all"
                                                              : "LOST"});
  }
  cli.report(table, "e8_faults");
  std::printf("\nExpected shape: setup success degrades gracefully with the "
              "fault rate and\nis consistently higher with misrouting "
              "(m=2) than without (m=0); delivery\nstays at 100%% "
              "throughout thanks to the fault-free wormhole fallback.\n");
  bool all_delivered = true;
  for (std::size_t i = 0; i < rates.size(); ++i) {
    all_delivered = all_delivered && m0[i].all_delivered && m2[i].all_delivered;
  }
  if (!all_delivered) {
    std::fprintf(stderr, "E8: messages lost under faults (see table)\n");
  }
  return all_delivered;
  });
}
