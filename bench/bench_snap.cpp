// SNAP -- checkpoint/restore cost and warm-start speedup.
//
// Like bench_engine this measures the simulator, not the paper's
// protocols: a CLRP run on one large torus is (1) snapshotted and
// restored repeatedly to price the wavesim.snap.v1 round trip, (2)
// driven through a checkpoint-armed step loop (sliced advance(), no
// files written) to prove arming costs nothing on the steady path, and
// (3) re-run from a warmup/measure-boundary checkpoint to measure the
// warm-start win over cold replay (the mechanism wavesimd sweep jobs
// and the service's preemption slices stand on).
//
// Gates enforced here (not just reported):
//   * sliced advance() reproduces the one-shot run bit for bit
//     (checkpoint slicing can never perturb results), and its
//     accumulated-best rate stays within 1.05x of the unsliced loop;
//   * the warm-started run's result equals the cold replay's exactly.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "harness/sweep.hpp"
#include "sim/config.hpp"
#include "snap/runstate.hpp"
#include "snap/snapshot.hpp"

namespace {

using namespace wavesim;

snap::RunSpec make_spec(bool quick) {
  snap::RunSpec spec;
  const std::int32_t radix = quick ? 8 : 16;
  spec.config.topology.radix = {radix, radix};
  spec.config.topology.torus = true;
  spec.config.protocol.protocol = sim::ProtocolKind::kClrp;
  spec.config.seed = 9;
  spec.pattern = "uniform";
  spec.message_flits = 64;
  spec.offered_load = 0.12;
  // Warmup is a third of the run so the warm-start leg has something
  // real to skip; sweep jobs amortise this once per warm key.
  spec.warmup = quick ? 1500 : 4000;
  spec.measure = quick ? 3000 : 8'000;
  spec.drain_cap = 300'000;
  spec.seed = 33;
  return spec;
}

double seconds_since(const std::chrono::steady_clock::time_point& start) {
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return elapsed.count();
}

/// Drive to completion in `slice`-cycle chunks (0 = one shot); returns
/// the digest of the run's result + final state.
struct DrivenRun {
  double wall_seconds = 0.0;
  Cycle cycles = 0;
  std::uint64_t digest = 0;
};

DrivenRun drive(snap::CheckpointableRun& run, Cycle slice) {
  const auto start = std::chrono::steady_clock::now();
  const Cycle chunk =
      slice > 0 ? slice : std::numeric_limits<Cycle>::max();
  while (!run.done()) run.advance(chunk);
  DrivenRun out;
  out.wall_seconds = seconds_since(start);
  out.cycles = run.now();
  out.digest = run.checkpoint().digest();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Cli cli("SNAP",
                 "checkpoint/restore cost, armed-loop overhead, "
                 "warm-start speedup");
  if (!cli.parse(argc, argv)) return cli.exit_code();
  return cli.run([&] {
    const bool quick = cli.quick();
    const snap::RunSpec spec = make_spec(quick);
    bench::banner(
        "SNAP",
        "checkpoint/restore cost and warm-start speedup",
        (quick ? std::string("8x8") : std::string("16x16")) +
            " torus, CLRP, uniform load 0.12, 64-flit messages; sliced "
            "runs must be bit-identical to one-shot runs");

    auto krate = [](const DrivenRun& r) {
      return r.wall_seconds > 0.0
                 ? static_cast<double>(r.cycles) / r.wall_seconds / 1000.0
                 : 0.0;
    };

    // -- 1. snapshot/restore round-trip cost ------------------------------
    // Taken mid-measure, where the network is busiest and the snapshot
    // largest; best-of-N squeezes out scheduler noise.
    constexpr int kCostReps = 5;
    double snapshot_ms = 1e9, restore_ms = 1e9, save_load_ms = 1e9;
    std::size_t snapshot_bytes = 0;
    {
      snap::CheckpointableRun run(spec);
      run.advance(spec.warmup + spec.measure / 2);
      for (int rep = 0; rep < kCostReps; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        snap::Snapshot snapshot = run.checkpoint();
        const std::vector<std::uint8_t> encoded = snapshot.encode();
        snapshot_ms = std::min(snapshot_ms, seconds_since(t0) * 1e3);
        snapshot_bytes = encoded.size();

        const auto t1 = std::chrono::steady_clock::now();
        snap::CheckpointableRun restored(snapshot);
        restore_ms = std::min(restore_ms, seconds_since(t1) * 1e3);
        bench::require(restored.now() == run.now(),
                       "restored run is not at the snapshot cycle");

        const std::string path = "bench_snap.tmp.snap";
        const auto t2 = std::chrono::steady_clock::now();
        snapshot.save(path);
        const snap::Snapshot loaded = snap::Snapshot::load(path);
        save_load_ms = std::min(save_load_ms, seconds_since(t2) * 1e3);
        bench::require(loaded.digest() == snapshot.digest(),
                       "snapshot file round trip changed the digest");
        std::remove(path.c_str());
      }
    }
    bench::Table cost({"op", "ms", "bytes"});
    cost.add_row({"checkpoint+encode", bench::fmt(snapshot_ms, 2),
                  bench::fmt_int(snapshot_bytes)});
    cost.add_row({"restore", bench::fmt(restore_ms, 2), "-"});
    cost.add_row({"save+load", bench::fmt(save_load_ms, 2),
                  bench::fmt_int(snapshot_bytes)});
    cli.report(cost, "snap_cost");

    // -- 2. armed-but-unused step loop ------------------------------------
    // wavesim_cli --checkpoint-every C turns one advance(max) into
    // advance(C) slices. The slicing itself must be free: identical
    // digests (slicing invariance) and <= 1.05x accumulated-best rate.
    // Same interleaved-repetition scheme as bench_engine's fault-hook
    // gate: rates, not wall times, best-of until the gate clears.
    const Cycle armed_slice = quick ? 500 : 2000;
    constexpr int kMinOverheadReps = 3;
    constexpr int kMaxOverheadReps = 12;
    double plain_rate = 0.0, armed_rate = 0.0, armed_overhead = 0.0;
    std::uint64_t plain_digest = 0;
    for (int rep = 0; rep < kMaxOverheadReps; ++rep) {
      snap::CheckpointableRun plain(spec);
      const DrivenRun p = drive(plain, 0);
      snap::CheckpointableRun armed(spec);
      const DrivenRun a = drive(armed, armed_slice);
      bench::require(p.digest == a.digest,
                     "sliced advance() diverged from the one-shot run");
      bench::require(rep == 0 || p.digest == plain_digest,
                     "plain leg is not reproducible");
      plain_digest = p.digest;
      plain_rate = std::max(plain_rate, krate(p));
      armed_rate = std::max(armed_rate, krate(a));
      armed_overhead = armed_rate > 0.0 ? plain_rate / armed_rate : 0.0;
      if (rep + 1 >= kMinOverheadReps && armed_overhead <= 1.05) break;
    }
    bench::require(armed_overhead <= 1.05,
                   "checkpoint-armed step loop costs more than 5% "
                   "(plain/armed kcycles-per-s ratio " +
                       bench::fmt(armed_overhead, 3) + ")");
    bench::Table armed_table({"loop", "kcycles/s", "ratio", "identical"});
    armed_table.add_row(
        {"one-shot", bench::fmt(plain_rate, 1), "1.00", "-"});
    armed_table.add_row({"sliced-" + std::to_string(armed_slice),
                         bench::fmt(armed_rate, 1),
                         bench::fmt(armed_overhead, 3), "yes"});
    cli.report(armed_table, "snap_armed");

    // -- 3. warm start vs cold replay -------------------------------------
    // One warmup serves every measure window that shares the spec's warm
    // key. Cold: warmup + measure from scratch. Warm: restore the
    // boundary checkpoint, rebind, simulate only the measured span.
    snap::CheckpointableRun warmup_run(spec);
    warmup_run.advance(spec.warmup);
    bench::require(warmup_run.at_measure_boundary(),
                   "warmup did not stop at the measure boundary");
    const snap::Snapshot boundary = warmup_run.checkpoint();

    // Best-of-N on both legs: a single measured span is only a few ms
    // and a single unlucky scheduler tick would swamp the comparison.
    constexpr int kWarmReps = 5;
    double cold_seconds = 1e9, warm_seconds = 1e9;
    Cycle cold_cycles = 0, warm_cycles = 0;
    std::uint64_t cold_digest = 0;
    for (int rep = 0; rep < kWarmReps; ++rep) {
      snap::CheckpointableRun cold(spec);
      const DrivenRun cold_run = drive(cold, 0);
      bench::require(rep == 0 || cold_run.digest == cold_digest,
                     "cold replay is not reproducible");
      cold_digest = cold_run.digest;
      cold_seconds = std::min(cold_seconds, cold_run.wall_seconds);
      cold_cycles = cold_run.cycles;

      const auto warm_start = std::chrono::steady_clock::now();
      snap::CheckpointableRun warm(boundary);
      warm.rebind(spec.measure, spec.drain_cap);
      while (!warm.done()) {
        warm.advance(std::numeric_limits<Cycle>::max());
      }
      warm_seconds = std::min(warm_seconds, seconds_since(warm_start));
      bench::require(warm.checkpoint().digest() == cold_run.digest,
                     "warm-started run diverged from cold replay");
      warm_cycles = warm.now() - spec.warmup;
    }
    const double warmstart_speedup =
        warm_seconds > 0.0 ? cold_seconds / warm_seconds : 0.0;
    const double warm_rate =
        warm_seconds > 0.0
            ? static_cast<double>(warm_cycles) / warm_seconds / 1000.0
            : 0.0;
    bench::Table warm_table(
        {"run", "wall-s", "cycles", "speedup", "identical"});
    warm_table.add_row({"cold", bench::fmt(cold_seconds, 3),
                        bench::fmt_int(cold_cycles), "1.00", "-"});
    warm_table.add_row({"warm", bench::fmt(warm_seconds, 3),
                        bench::fmt_int(warm_cycles),
                        bench::fmt(warmstart_speedup, 2), "yes"});
    cli.report(warm_table, "snap_warmstart");

    cli.note("snapshot_ms", sim::JsonValue(snapshot_ms));
    cli.note("restore_ms", sim::JsonValue(restore_ms));
    cli.note("save_load_ms", sim::JsonValue(save_load_ms));
    cli.note("snapshot_bytes",
             sim::JsonValue(static_cast<std::uint64_t>(snapshot_bytes)));
    cli.note("plain_kcycles_per_s", sim::JsonValue(plain_rate));
    cli.note("armed_kcycles_per_s", sim::JsonValue(armed_rate));
    cli.note("armed_overhead_ratio", sim::JsonValue(armed_overhead));
    cli.note("warm_kcycles_per_s", sim::JsonValue(warm_rate));
    cli.note("warmstart_speedup", sim::JsonValue(warmstart_speedup));
    std::printf("\nsnapshot %.2f ms / restore %.2f ms (%s bytes); armed "
                "loop %.3fx; warm start %.2fx over cold replay; all legs "
                "bit-identical\n",
                snapshot_ms, restore_ms,
                bench::fmt_int(snapshot_bytes).c_str(), armed_overhead,
                warmstart_speedup);
    return true;
  });
}
