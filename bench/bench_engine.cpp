// ENGINE -- sharded parallel step engine: seq vs par wall time on one
// large torus, with the bit-identity contract enforced on every leg.
//
// Unlike the bench_e* experiments this measures the simulator, not the
// paper's protocols: the same CLRP run is timed under the sequential
// stepper and under the parallel engine at several shard counts, every
// parallel leg's full event-stream digest is required to equal the
// sequential one, and the speedups are exported (with the host thread
// count — the ratio is meaningless without it; on a single-core host the
// parallel engine cannot win). This driver sweeps engines itself, so the
// common --engine/--shards flags are not applied here.
#include <algorithm>
#include <chrono>

#include "bench_util.hpp"
#include "core/simulation.hpp"
#include "core/step_engine.hpp"
#include "engine/engine.hpp"
#include "engine/pool.hpp"
#include "harness/sweep.hpp"
#include "sim/rng.hpp"
#include "workload/generator.hpp"

namespace {

using namespace wavesim;

struct Leg {
  std::int32_t shards = 0;   ///< 0 = sequential stepper
  Cycle lookahead = 1;       ///< parallel engine barrier lookahead
  double wall_seconds = 0.0;
  std::string digest;        ///< stats + cycle (+ event fingerprint)
  Cycle cycles = 0;
  core::StepEngine::WindowStats windows;
};

sim::SimConfig make_config(bool quick) {
  sim::SimConfig config;
  const std::int32_t radix = quick ? 8 : 16;
  config.topology.radix = {radix, radix};
  config.topology.torus = true;
  config.protocol.protocol = sim::ProtocolKind::kClrp;
  config.seed = 9;
  return config;
}

sim::SimConfig make_wormhole_config(bool quick) {
  sim::SimConfig config = make_config(quick);
  config.protocol.protocol = sim::ProtocolKind::kWormholeOnly;
  config.router.wave_switches = 0;
  return config;
}

// The CLRP legs hash the full event stream into the digest; the lookahead
// legs drop the sink (an event sink counts as instrumentation, which
// disables the early-send fast path that lookahead exists to exercise)
// and compare stats + final cycle instead.
Leg run_leg(const sim::SimConfig& config, bool quick, std::int32_t shards,
            Cycle lookahead, double offered_load, bool with_sink,
            std::int32_t flits = 64, Cycle measure_override = 0) {
  core::Simulation sim(config);
  const core::StepEngine* installed = nullptr;
  if (shards > 0) {
    engine::EngineConfig engine_config;
    engine_config.kind = engine::EngineKind::kPar;
    engine_config.shards = shards;
    engine_config.lookahead = lookahead;
    auto eng = engine::make_engine(engine_config, sim.topology().num_nodes());
    installed = eng.get();
    sim.set_engine(std::move(eng));
  }
  std::uint64_t fingerprint = 0x77617665u;
  if (with_sink) {
    sim.set_event_sink([&](const core::Event& ev) {
      fingerprint = sim::hash_mix(fingerprint ^ ev.at);
      fingerprint =
          sim::hash_mix(fingerprint ^ static_cast<std::uint64_t>(ev.kind));
      fingerprint =
          sim::hash_mix(fingerprint ^ static_cast<std::uint64_t>(ev.node));
      fingerprint =
          sim::hash_mix(fingerprint ^ static_cast<std::uint64_t>(ev.msg));
      fingerprint =
          sim::hash_mix(fingerprint ^ static_cast<std::uint64_t>(ev.circuit));
      fingerprint =
          sim::hash_mix(fingerprint ^ static_cast<std::uint64_t>(ev.port));
    });
  }
  load::UniformTraffic pattern(sim.topology());
  load::FixedSize sizes(flits);
  const auto start = std::chrono::steady_clock::now();
  const Cycle measure =
      measure_override > 0 ? measure_override : (quick ? 1500 : 4000);
  const auto r = load::run_open_loop(
      sim, pattern, sizes, offered_load,
      /*warmup=*/quick ? 300 : 500, measure,
      /*drain_cap=*/300'000, /*seed=*/33);
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  Leg leg;
  leg.shards = shards;
  leg.lookahead = lookahead;
  leg.wall_seconds = elapsed.count();
  leg.cycles = sim.now();
  if (installed != nullptr) leg.windows = installed->window_stats();
  leg.digest = harness::stats_to_json(r.stats).dump() + "@" +
               std::to_string(sim.now()) + "@" + std::to_string(fingerprint);
  return leg;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Cli cli("ENGINE",
                 "sharded parallel engine: wall time vs the sequential "
                 "stepper, results bit-identical");
  if (!cli.parse(argc, argv)) return cli.exit_code();
  return cli.run([&] {
    const bool quick = cli.quick();
    const unsigned hw = engine::resolve_engine_threads(0);
    bench::banner(
        "ENGINE",
        "sharded parallel engine: wall time vs the sequential stepper",
        (quick ? std::string("8x8") : std::string("16x16")) +
            " torus, CLRP, uniform load 0.12, 64-flit messages; every "
            "parallel leg must reproduce the sequential event stream "
            "exactly (host threads: " +
            bench::fmt_int(hw) + ")");
    const sim::SimConfig config = make_config(quick);

    auto krate = [](const Leg& leg) {
      return leg.wall_seconds > 0.0
                 ? static_cast<double>(leg.cycles) / leg.wall_seconds / 1000.0
                 : 0.0;
    };

    const Leg seq = run_leg(config, quick, /*shards=*/0, /*lookahead=*/1,
                            /*offered_load=*/0.12, /*with_sink=*/true);
    std::vector<std::int32_t> shard_counts{2, 4, 8};
    bench::Table table(
        {"engine", "shards", "wall-s", "kcycles/s", "speedup", "identical"});
    table.add_row({"seq", "-", bench::fmt(seq.wall_seconds, 3),
                   bench::fmt(krate(seq), 1), "1.00", "-"});

    sim::JsonValue points = sim::JsonValue::array();
    double best_speedup = 0.0;
    for (const std::int32_t shards : shard_counts) {
      const Leg par = run_leg(config, quick, shards, /*lookahead=*/1,
                              /*offered_load=*/0.12, /*with_sink=*/true);
      bench::require(par.digest == seq.digest,
                     "parallel engine (shards=" + std::to_string(shards) +
                         ") diverged from the sequential stepper");
      const double speedup =
          par.wall_seconds > 0.0 ? seq.wall_seconds / par.wall_seconds : 0.0;
      best_speedup = std::max(best_speedup, speedup);
      table.add_row({"par", bench::fmt_int(shards),
                     bench::fmt(par.wall_seconds, 3), bench::fmt(krate(par), 1),
                     bench::fmt(speedup, 2), "yes"});
      points.push_back(sim::JsonValue::object()
                      .set("shards", shards)
                      .set("wall_seconds", par.wall_seconds)
                      .set("kcycles_per_s", krate(par))
                      .set("speedup", speedup)
                      .set("identical", true));
    }
    cli.report(table, "engine_speedup");

    // Lookahead sweep: wormhole-only, sparse load, short messages, where the static
    // window analysis can actually prove cross-shard quiet spans. No event
    // sink here (see run_leg); identity is stats + final cycle vs seq.
    const sim::SimConfig wh = make_wormhole_config(quick);
    // Per-node load scaled so the whole-network message rate (and hence
    // the cross-shard quiet-span distribution) matches across configs.
    const double wh_load = quick ? 0.01 : 0.0025;
    const std::int32_t wh_flits = 16;
    const Leg wh_seq = run_leg(wh, quick, /*shards=*/0, /*lookahead=*/1,
                               wh_load, /*with_sink=*/false, wh_flits);
    bench::Table latable({"engine", "shards", "lookahead", "wall-s",
                          "kcycles/s", "barriers", "cyc/barrier", "identical"});
    latable.add_row({"seq", "-", "-", bench::fmt(wh_seq.wall_seconds, 3),
                     bench::fmt(krate(wh_seq), 1), "-", "-", "-"});
    sim::JsonValue lapoints = sim::JsonValue::array();
    const std::int32_t la_shards = 4;
    for (const Cycle lookahead : {Cycle{1}, Cycle{8}, Cycle{32}}) {
      const Leg par =
          run_leg(wh, quick, la_shards, lookahead, wh_load, false, wh_flits);
      bench::require(par.digest == wh_seq.digest,
                     "lookahead engine (L=" + std::to_string(lookahead) +
                         ") diverged from the sequential stepper");
      const std::uint64_t barriers = par.windows.windows;
      const double cyc_per_barrier =
          barriers > 0
              ? static_cast<double>(par.windows.committed_cycles) /
                    static_cast<double>(barriers)
              : 0.0;
      latable.add_row({"par", bench::fmt_int(la_shards),
                       bench::fmt_int(lookahead),
                       bench::fmt(par.wall_seconds, 3),
                       bench::fmt(krate(par), 1), bench::fmt_int(barriers),
                       bench::fmt(cyc_per_barrier, 2), "yes"});
      lapoints.push_back(
          sim::JsonValue::object()
              .set("shards", la_shards)
              .set("lookahead", static_cast<std::int64_t>(lookahead))
              .set("wall_seconds", par.wall_seconds)
              .set("kcycles_per_s", krate(par))
              .set("cycles_per_barrier", cyc_per_barrier)
              .set("identical", true));
    }
    cli.report(latable, "engine_lookahead");

    // Fault legs: the same CLRP torus through a mid-run failure storm
    // (15% of links fail, then recover). Fault application lives in the
    // sequential prologue of every step, so the bit-identity contract
    // extends to faulty runs: each shard count must reproduce the
    // sequential event stream, fault events included.
    sim::SimConfig stormy = config;
    stormy.faults.storm.at = quick ? 400 : 600;
    stormy.faults.storm.fraction = 0.15;
    stormy.faults.storm.repair_after = quick ? 600 : 1000;
    const Leg fault_seq = run_leg(stormy, quick, /*shards=*/0, /*lookahead=*/1,
                                  /*offered_load=*/0.12, /*with_sink=*/true);
    bench::Table ftable(
        {"engine", "shards", "wall-s", "kcycles/s", "vs healthy", "identical"});
    auto vs_healthy = [&](const Leg& leg) {
      const double healthy = krate(seq);
      return healthy > 0.0 ? krate(leg) / healthy : 0.0;
    };
    ftable.add_row({"seq", "-", bench::fmt(fault_seq.wall_seconds, 3),
                    bench::fmt(krate(fault_seq), 1),
                    bench::fmt(vs_healthy(fault_seq), 2), "-"});
    sim::JsonValue fpoints = sim::JsonValue::array();
    fpoints.push_back(sim::JsonValue::object()
                          .set("shards", 0)
                          .set("wall_seconds", fault_seq.wall_seconds)
                          .set("kcycles_per_s", krate(fault_seq))
                          .set("identical", true));
    for (const std::int32_t shards : {2, 8}) {
      const Leg par = run_leg(stormy, quick, shards, /*lookahead=*/1,
                              /*offered_load=*/0.12, /*with_sink=*/true);
      bench::require(par.digest == fault_seq.digest,
                     "parallel engine (shards=" + std::to_string(shards) +
                         ") diverged from the sequential stepper under a "
                         "failure storm");
      ftable.add_row({"par", bench::fmt_int(shards),
                      bench::fmt(par.wall_seconds, 3),
                      bench::fmt(krate(par), 1), bench::fmt(vs_healthy(par), 2),
                      "yes"});
      fpoints.push_back(sim::JsonValue::object()
                            .set("shards", shards)
                            .set("wall_seconds", par.wall_seconds)
                            .set("kcycles_per_s", krate(par))
                            .set("identical", true));
    }
    cli.report(ftable, "engine_faults");

    // Healthy-path overhead: with no dynamic faults configured the fault
    // plane is never constructed and the per-step hook is a null check.
    // An "armed" run must build the plane and pay the per-cycle hook
    // (timeline scan, dormancy check, DV idle step) yet cost <= 5%. The
    // schedule is a link-up for an already-alive link: dynamic() is true
    // so the plane exists, but the transition is idempotence-filtered --
    // the plane never wakes and the timeline exhausts at cycle 0, so the
    // drain loop terminates exactly like the healthy run's (a genuinely
    // pending future event intentionally holds off drained()). Arming
    // also forks the workload rng, so the armed run is a different --
    // statistically identical -- sample of the same traffic
    // distribution, not digest-comparable to the healthy one; each
    // config must still reproduce itself bit for bit across repetitions.
    // The ratio compares accumulated-best kcycles/s (not wall time):
    // rates normalize the two runs' different drain lengths, and each
    // side's best repetition converges to that workload's true capacity
    // as repetitions accumulate, squeezing out scheduler noise that on a
    // loaded runner dwarfs the hook cost itself. Repetitions interleave
    // and keep coming (up to a cap) until the estimate clears the gate:
    // a noisy run needs a few extra samples, while a genuine >5% hook
    // regression can never clear it and fails at the cap. The legs also
    // run a 5x longer measure window than the speedup legs so a noise
    // burst is amortized instead of deciding the ratio.
    sim::SimConfig armed = config;
    armed.faults.events.push_back(
        sim::FaultEvent{/*at=*/0, sim::FaultEventKind::kLinkUp, 0, 0});
    const Cycle overhead_measure = quick ? 7500 : 20'000;
    constexpr int kMinOverheadReps = 3;
    constexpr int kMaxOverheadReps = 12;
    double healthy_rate = 0.0;
    double armed_rate = 0.0;
    double fault_overhead = 0.0;
    std::string healthy_digest;
    std::string armed_digest;
    for (int rep = 0; rep < kMaxOverheadReps; ++rep) {
      const Leg h = run_leg(config, quick, /*shards=*/0, /*lookahead=*/1,
                            /*offered_load=*/0.12, /*with_sink=*/false,
                            /*flits=*/64, overhead_measure);
      const Leg a = run_leg(armed, quick, /*shards=*/0, /*lookahead=*/1,
                            /*offered_load=*/0.12, /*with_sink=*/false,
                            /*flits=*/64, overhead_measure);
      healthy_rate = std::max(healthy_rate, krate(h));
      armed_rate = std::max(armed_rate, krate(a));
      bench::require(rep == 0 || h.digest == healthy_digest,
                     "healthy overhead leg is not reproducible");
      bench::require(rep == 0 || a.digest == armed_digest,
                     "armed-but-quiet overhead leg is not reproducible");
      healthy_digest = h.digest;
      armed_digest = a.digest;
      fault_overhead = armed_rate > 0.0 ? healthy_rate / armed_rate : 0.0;
      if (rep + 1 >= kMinOverheadReps && fault_overhead <= 1.05) break;
    }
    bench::require(fault_overhead <= 1.05,
                   "fault hook costs more than 5% on the healthy path "
                   "(healthy/armed kcycles-per-s ratio " +
                       bench::fmt(fault_overhead, 3) + ")");

    cli.note("fault_points", std::move(fpoints));
    cli.note("fault_overhead_ratio", sim::JsonValue(fault_overhead));
    cli.note("seq_wall_seconds", sim::JsonValue(seq.wall_seconds));
    cli.note("seq_kcycles_per_s", sim::JsonValue(krate(seq)));
    cli.note("engine_points", std::move(points));
    cli.note("lookahead_points", std::move(lapoints));
    cli.note("best_speedup", sim::JsonValue(best_speedup));
    std::printf("\nbest speedup %.2fx on %u host thread(s); all legs "
                "bit-identical to seq; fault hook healthy-path overhead "
                "%.3fx\n",
                best_speedup, hw, fault_overhead);
    return true;
  });
}
