// ENGINE -- sharded parallel step engine: seq vs par wall time on one
// large torus, with the bit-identity contract enforced on every leg.
//
// Unlike the bench_e* experiments this measures the simulator, not the
// paper's protocols: the same CLRP run is timed under the sequential
// stepper and under the parallel engine at several shard counts, every
// parallel leg's full event-stream digest is required to equal the
// sequential one, and the speedups are exported (with the host thread
// count — the ratio is meaningless without it; on a single-core host the
// parallel engine cannot win). This driver sweeps engines itself, so the
// common --engine/--shards flags are not applied here.
#include <chrono>

#include "bench_util.hpp"
#include "core/simulation.hpp"
#include "engine/engine.hpp"
#include "engine/pool.hpp"
#include "harness/sweep.hpp"
#include "sim/rng.hpp"
#include "workload/generator.hpp"

namespace {

using namespace wavesim;

struct Leg {
  std::int32_t shards = 0;  ///< 0 = sequential stepper
  double wall_seconds = 0.0;
  std::string digest;       ///< stats + cycle + event fingerprint
  Cycle cycles = 0;
};

sim::SimConfig make_config(bool quick) {
  sim::SimConfig config;
  const std::int32_t radix = quick ? 8 : 16;
  config.topology.radix = {radix, radix};
  config.topology.torus = true;
  config.protocol.protocol = sim::ProtocolKind::kClrp;
  config.seed = 9;
  return config;
}

Leg run_leg(const sim::SimConfig& config, bool quick, std::int32_t shards) {
  core::Simulation sim(config);
  if (shards > 0) {
    engine::EngineConfig engine_config;
    engine_config.kind = engine::EngineKind::kPar;
    engine_config.shards = shards;
    sim.set_engine(
        engine::make_engine(engine_config, sim.topology().num_nodes()));
  }
  std::uint64_t fingerprint = 0x77617665u;
  sim.set_event_sink([&](const core::Event& ev) {
    fingerprint = sim::hash_mix(fingerprint ^ ev.at);
    fingerprint =
        sim::hash_mix(fingerprint ^ static_cast<std::uint64_t>(ev.kind));
    fingerprint =
        sim::hash_mix(fingerprint ^ static_cast<std::uint64_t>(ev.node));
    fingerprint =
        sim::hash_mix(fingerprint ^ static_cast<std::uint64_t>(ev.msg));
    fingerprint =
        sim::hash_mix(fingerprint ^ static_cast<std::uint64_t>(ev.circuit));
  });
  load::UniformTraffic pattern(sim.topology());
  load::FixedSize sizes(64);
  const auto start = std::chrono::steady_clock::now();
  const auto r = load::run_open_loop(
      sim, pattern, sizes, /*offered_load=*/0.12,
      /*warmup=*/quick ? 300 : 500, /*measure=*/quick ? 1500 : 4000,
      /*drain_cap=*/300'000, /*seed=*/33);
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  Leg leg;
  leg.shards = shards;
  leg.wall_seconds = elapsed.count();
  leg.cycles = sim.now();
  leg.digest = harness::stats_to_json(r.stats).dump() + "@" +
               std::to_string(sim.now()) + "@" + std::to_string(fingerprint);
  return leg;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Cli cli("ENGINE",
                 "sharded parallel engine: wall time vs the sequential "
                 "stepper, results bit-identical");
  if (!cli.parse(argc, argv)) return cli.exit_code();
  return cli.run([&] {
    const bool quick = cli.quick();
    const unsigned hw = engine::resolve_engine_threads(0);
    bench::banner(
        "ENGINE",
        "sharded parallel engine: wall time vs the sequential stepper",
        (quick ? std::string("8x8") : std::string("16x16")) +
            " torus, CLRP, uniform load 0.12, 64-flit messages; every "
            "parallel leg must reproduce the sequential event stream "
            "exactly (host threads: " +
            bench::fmt_int(hw) + ")");
    const sim::SimConfig config = make_config(quick);

    const Leg seq = run_leg(config, quick, /*shards=*/0);
    std::vector<std::int32_t> shard_counts{2, 4, 8};
    bench::Table table(
        {"engine", "shards", "wall-s", "kcycles/s", "speedup", "identical"});
    auto krate = [](const Leg& leg) {
      return leg.wall_seconds > 0.0
                 ? static_cast<double>(leg.cycles) / leg.wall_seconds / 1000.0
                 : 0.0;
    };
    table.add_row({"seq", "-", bench::fmt(seq.wall_seconds, 3),
                   bench::fmt(krate(seq), 1), "1.00", "-"});

    sim::JsonValue points = sim::JsonValue::array();
    double best_speedup = 0.0;
    for (const std::int32_t shards : shard_counts) {
      const Leg par = run_leg(config, quick, shards);
      bench::require(par.digest == seq.digest,
                     "parallel engine (shards=" + std::to_string(shards) +
                         ") diverged from the sequential stepper");
      const double speedup =
          par.wall_seconds > 0.0 ? seq.wall_seconds / par.wall_seconds : 0.0;
      best_speedup = std::max(best_speedup, speedup);
      table.add_row({"par", bench::fmt_int(shards),
                     bench::fmt(par.wall_seconds, 3), bench::fmt(krate(par), 1),
                     bench::fmt(speedup, 2), "yes"});
      points.push_back(sim::JsonValue::object()
                      .set("shards", shards)
                      .set("wall_seconds", par.wall_seconds)
                      .set("speedup", speedup)
                      .set("identical", true));
    }
    cli.report(table, "engine_speedup");
    cli.note("seq_wall_seconds", sim::JsonValue(seq.wall_seconds));
    cli.note("engine_points", std::move(points));
    cli.note("best_speedup", sim::JsonValue(best_speedup));
    std::printf("\nbest speedup %.2fx on %u host thread(s); all legs "
                "bit-identical to seq\n",
                best_speedup, hw);
    return true;
  });
}
