#include "bench_util.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cinttypes>
#include <exception>
#include <thread>

namespace wavesim::bench {

void banner(const std::string& id, const std::string& title,
            const std::string& setup) {
  std::printf("\n================================================================\n");
  std::printf("%s: %s\n", id.c_str(), title.c_str());
  std::printf("%s\n", setup.c_str());
  std::printf("================================================================\n");
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

namespace {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

void Table::write_csv(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::fprintf(f, "%s%s", c == 0 ? "" : ",", csv_escape(row[c]).c_str());
    }
    std::fprintf(f, "\n");
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  std::fclose(f);
}

void Table::print(const std::string& csv_name) const {
  if (!csv_name.empty()) {
    if (const char* dir = std::getenv("WAVESIM_CSV_DIR"); dir != nullptr) {
      write_csv(std::string(dir) + "/" + csv_name + ".csv");
    }
  }
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::printf("%s%*s", c == 0 ? "" : "  ",
                  static_cast<int>(width[c]), row[c].c_str());
    }
    std::printf("\n");
  };
  print_row(header_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  std::printf("%s\n", std::string(total > 2 ? total - 2 : total, '-').c_str());
  for (const auto& row : rows_) print_row(row);
}

std::string fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string fmt_int(std::uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, value);
  return buf;
}

std::string fmt_pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  unsigned threads) {
  if (n == 0) return;
  unsigned workers = threads != 0 ? threads : std::thread::hardware_concurrency();
  workers = std::max(1u, std::min<unsigned>(workers, n));
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= n || failed.load()) return;
        try {
          fn(i);
        } catch (...) {
          if (!failed.exchange(true)) error = std::current_exception();
          return;
        }
      }
    });
  }
  for (auto& t : pool) t.join();
  if (error) std::rethrow_exception(error);
}

}  // namespace wavesim::bench
