#include "bench_util.hpp"

#include <algorithm>
#include <cstdlib>
#include <cinttypes>
#include <exception>
#include <stdexcept>
#include <thread>

#include "harness/runner.hpp"
#include "sim/build_info.hpp"

namespace wavesim::bench {

void banner(const std::string& id, const std::string& title,
            const std::string& setup) {
  std::printf("\n================================================================\n");
  std::printf("%s: %s\n", id.c_str(), title.c_str());
  std::printf("%s\n", setup.c_str());
  std::printf("================================================================\n");
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

namespace {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

void Table::write_csv(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::fprintf(f, "%s%s", c == 0 ? "" : ",", csv_escape(row[c]).c_str());
    }
    std::fprintf(f, "\n");
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  std::fclose(f);
}

void Table::print(const std::string& csv_name) const {
  if (!csv_name.empty()) {
    if (const char* dir = std::getenv("WAVESIM_CSV_DIR"); dir != nullptr) {
      write_csv(std::string(dir) + "/" + csv_name + ".csv");
    }
  }
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::printf("%s%*s", c == 0 ? "" : "  ",
                  static_cast<int>(width[c]), row[c].c_str());
    }
    std::printf("\n");
  };
  print_row(header_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  std::printf("%s\n", std::string(total > 2 ? total - 2 : total, '-').c_str());
  for (const auto& row : rows_) print_row(row);
}

sim::JsonValue Table::to_json(const std::string& name) const {
  sim::JsonValue header = sim::JsonValue::array();
  for (const auto& cell : header_) header.push_back(cell);
  sim::JsonValue rows = sim::JsonValue::array();
  for (const auto& row : rows_) {
    sim::JsonValue cells = sim::JsonValue::array();
    for (const auto& cell : row) cells.push_back(cell);
    rows.push_back(std::move(cells));
  }
  return sim::JsonValue::object()
      .set("name", name)
      .set("header", std::move(header))
      .set("rows", std::move(rows));
}

std::string fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string fmt_int(std::uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, value);
  return buf;
}

std::string fmt_pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

void require(bool ok, const std::string& message) {
  if (!ok) throw std::runtime_error(message);
}

// -------------------------------------------------------------------- Cli

Cli::Cli(std::string experiment, std::string title)
    : experiment_(std::move(experiment)), title_(std::move(title)),
      start_(std::chrono::steady_clock::now()) {}

void Cli::add_int_flag(std::string flag, std::int64_t* target,
                       std::string help) {
  int_flags_.push_back({std::move(flag), target, std::move(help)});
}

bool Cli::parse(int argc, char** argv) {
  auto need = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%s: missing value for %s\n", experiment_.c_str(),
                   argv[i]);
      exit_code_ = 2;
      return nullptr;
    }
    return argv[++i];
  };
  auto find_int_flag = [&](const std::string& arg) -> const IntFlag* {
    for (const IntFlag& f : int_flags_) {
      if (f.flag == arg) return &f;
    }
    return nullptr;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::printf(
          "%s -- %s\n\n"
          "  --json <path>     write metrics as JSON (schema wavesim.bench.v1)\n"
          "  --threads N       worker threads for the sweep (default: all cores)\n"
          "  --quick           tiny parameters for CI smoke runs\n"
          "  --trace <path>    Perfetto trace of one representative run\n"
          "  --metrics <path>  its counters/histograms (wavesim.metrics.v1)\n"
          "  --sample-every N  gauge sampling period for the observed run\n"
          "  --engine seq|par  step engine per simulation (default seq;\n"
          "                    par never changes results, only wall time)\n"
          "  --shards N        shard count for --engine par (default auto)\n"
          "  --lookahead L     barrier lookahead for --engine par (default 1)\n"
          "  --help            this text\n",
          experiment_.c_str(), title_.c_str());
      for (const IntFlag& f : int_flags_) {
        std::printf("  %-15s %s\n", (f.flag + " N").c_str(), f.help.c_str());
      }
      exit_code_ = 0;
      return false;
    } else if (const IntFlag* f = find_int_flag(arg); f != nullptr) {
      const char* v = need(i);
      if (v == nullptr) return false;
      *f->target = std::strtoll(v, nullptr, 10);
    } else if (arg == "--json") {
      const char* v = need(i);
      if (v == nullptr) return false;
      json_path_ = v;
    } else if (arg == "--trace") {
      const char* v = need(i);
      if (v == nullptr) return false;
      trace_path_ = v;
    } else if (arg == "--metrics") {
      const char* v = need(i);
      if (v == nullptr) return false;
      metrics_path_ = v;
    } else if (arg == "--sample-every") {
      const char* v = need(i);
      if (v == nullptr) return false;
      sample_every_ = std::strtoll(v, nullptr, 10);
    } else if (arg == "--threads") {
      const char* v = need(i);
      if (v == nullptr) return false;
      const long parsed = std::strtol(v, nullptr, 10);
      if (parsed < 0) {
        std::fprintf(stderr, "%s: --threads must be >= 0\n", experiment_.c_str());
        exit_code_ = 2;
        return false;
      }
      threads_ = static_cast<unsigned>(parsed);
    } else if (arg == "--quick") {
      quick_ = true;
    } else if (arg == "--engine" || arg.rfind("--engine=", 0) == 0) {
      std::string text;
      if (arg == "--engine") {
        const char* v = need(i);
        if (v == nullptr) return false;
        text = v;
      } else {
        text = arg.substr(std::string("--engine=").size());
      }
      const auto kind = engine::parse_engine_kind(text);
      if (!kind.has_value()) {
        std::fprintf(stderr, "%s: --engine must be seq or par (got '%s')\n",
                     experiment_.c_str(), text.c_str());
        exit_code_ = 2;
        return false;
      }
      engine_.kind = *kind;
    } else if (arg == "--shards") {
      const char* v = need(i);
      if (v == nullptr) return false;
      const long parsed = std::strtol(v, nullptr, 10);
      if (parsed < 1) {
        std::fprintf(stderr, "%s: --shards must be >= 1 (got %s)\n",
                     experiment_.c_str(), v);
        exit_code_ = 2;
        return false;
      }
      engine_.shards = static_cast<std::int32_t>(parsed);
    } else if (arg == "--lookahead") {
      const char* v = need(i);
      if (v == nullptr) return false;
      const long parsed = std::strtol(v, nullptr, 10);
      if (parsed < 1) {
        std::fprintf(stderr, "%s: --lookahead must be >= 1 (got %s)\n",
                     experiment_.c_str(), v);
        exit_code_ = 2;
        return false;
      }
      engine_.lookahead = static_cast<Cycle>(parsed);
    } else {
      std::fprintf(stderr, "%s: unknown flag %s (try --help)\n",
                   experiment_.c_str(), arg.c_str());
      exit_code_ = 2;
      return false;
    }
  }
  if (engine_.shards > 0 && !engine_.parallel()) {
    std::fprintf(stderr,
                 "%s: --shards only applies to --engine par "
                 "(the sequential engine is unsharded)\n",
                 experiment_.c_str());
    exit_code_ = 2;
    return false;
  }
  if (engine_.lookahead > 1 && !engine_.parallel()) {
    std::fprintf(stderr,
                 "%s: --lookahead only applies to --engine par "
                 "(the sequential engine has no barriers to amortize)\n",
                 experiment_.c_str());
    exit_code_ = 2;
    return false;
  }
  return true;
}

void Cli::report(const Table& table, const std::string& name) {
  table.print(name);
  tables_.push_back(table.to_json(name));
}

void Cli::note(const std::string& key, sim::JsonValue value) {
  extra_.set(key, std::move(value));
}

std::unique_ptr<obs::Observer> Cli::observe(core::Simulation& sim) const {
  if (!observability_requested()) return nullptr;
  obs::ObserverOptions options;
  options.trace = !trace_path_.empty();
  options.metrics = !metrics_path_.empty();
  options.sample_every =
      sample_every_ > 0 ? static_cast<Cycle>(sample_every_) : 0;
  return std::make_unique<obs::Observer>(sim, options);
}

void Cli::install_engine(core::Simulation& sim) const {
  engine_installed_ = true;
  if (!engine_.parallel()) return;
  sim.set_engine(engine::make_engine(engine_, sim.topology().num_nodes()));
}

bool Cli::write_observability(const obs::Observer& observer) {
  bool ok = true;
  if (!trace_path_.empty()) {
    ok = sim::write_json_file(observer.trace_json(), trace_path_) && ok;
  }
  if (!metrics_path_.empty()) {
    ok = sim::write_json_file(observer.metrics_json(), metrics_path_) && ok;
  }
  observability_written_ = true;
  return ok;
}

int Cli::finish(bool ok) {
  if (observability_requested() && !observability_written_) {
    std::fprintf(stderr,
                 "%s: warning: --trace/--metrics/--sample-every given but "
                 "this driver recorded no observed run\n",
                 experiment_.c_str());
  }
  if (engine_.parallel() && !engine_installed_) {
    std::fprintf(stderr,
                 "%s: warning: --engine par given but this driver installed "
                 "no step engine; runs were sequential\n",
                 experiment_.c_str());
  }
  if (!json_path_.empty()) {
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
            .count();
    sim::JsonValue doc =
        sim::JsonValue::object()
            .set("schema", "wavesim.bench.v1")
            .set("experiment", experiment_)
            .set("title", title_)
            .set("generated_by", sim::git_describe())
            .set("threads", harness::resolve_threads(threads_))
            .set("host_threads", std::thread::hardware_concurrency())
            .set("engine", engine_.to_json())
            .set("quick", quick_)
            .set("ok", ok)
            .set("wall_seconds", wall)
            .set("tables", std::move(tables_));
    if (extra_.size() > 0) doc.set("extra", std::move(extra_));
    if (!sim::write_json_file(doc, json_path_)) ok = false;
  }
  return ok ? 0 : 1;
}

int Cli::run(const std::function<bool()>& body) {
  try {
    return finish(body());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: error: %s\n", experiment_.c_str(), e.what());
    return 1;
  }
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  unsigned threads) {
  harness::run_indexed(n, fn, threads);
}

}  // namespace wavesim::bench
