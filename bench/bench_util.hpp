// Shared helpers for the experiment benches: aligned table printing, the
// common command-line surface (--json / --threads / --quick), and a
// parallel_for that fans independent sweep points across the harness
// thread pool (every point owns its Simulation; nothing is shared).
#pragma once

#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "obs/observer.hpp"
#include "sim/json.hpp"

namespace wavesim::bench {

/// Print an experiment banner: id, claim, and setup description.
void banner(const std::string& id, const std::string& title,
            const std::string& setup);

/// Fixed-width table. Column widths adapt to the widest cell.
/// When the WAVESIM_CSV_DIR environment variable is set, print(name)
/// additionally writes `$WAVESIM_CSV_DIR/<name>.csv` for plotting.
class Table {
 public:
  explicit Table(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);
  void print(const std::string& csv_name = "") const;
  void write_csv(const std::string& path) const;

  const std::vector<std::string>& header() const noexcept { return header_; }
  const std::vector<std::vector<std::string>>& rows() const noexcept {
    return rows_;
  }
  /// {"name": ..., "header": [...], "rows": [[...], ...]}
  sim::JsonValue to_json(const std::string& name) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

std::string fmt(double value, int precision = 1);
std::string fmt_int(std::uint64_t value);
std::string fmt_pct(double fraction, int precision = 1);

/// Throw std::runtime_error(message) when `ok` is false. Bench drivers use
/// this to turn silently-ignored failure paths into non-zero exit codes.
void require(bool ok, const std::string& message);

/// Common command-line surface of every bench_e* driver:
///   --json <path>     write a wavesim.bench.v1 metrics file
///   --threads N       worker threads for parallel_for (0/default = all cores)
///   --quick           shrink the experiment for CI smoke runs
///   --trace <path>    record one representative run as wavesim.trace.v1
///   --metrics <path>  record its counters/histograms as wavesim.metrics.v1
///   --sample-every N  gauge sampling period for the observed run
///   --engine seq|par  step engine for each simulation (default seq)
///   --shards N        shard count for --engine par (default: auto)
///   --lookahead L     barrier lookahead for --engine par (default 1)
///   --help            usage
/// After parse(), report() both prints a table and records it for export;
/// finish(ok) writes the JSON file and maps ok to the process exit code.
/// A driver supports --trace/--metrics by attaching observe(sim) to one
/// representative (single-threaded) run and calling write_observability()
/// when it completes; drivers that never do warn at finish().
class Cli {
 public:
  Cli(std::string experiment, std::string title);

  /// Register a driver-specific integer flag (e.g. "--replicas") that
  /// parse() will accept and store into *target. Call before parse().
  void add_int_flag(std::string flag, std::int64_t* target, std::string help);

  /// Returns false when the run should not proceed; exit_code() is then 0
  /// after --help and 2 after an unknown flag / missing value.
  bool parse(int argc, char** argv);
  int exit_code() const noexcept { return exit_code_; }

  unsigned threads() const noexcept { return threads_; }
  bool quick() const noexcept { return quick_; }
  bool json_enabled() const noexcept { return !json_path_.empty(); }

  /// True when --trace, --metrics, or --sample-every was given.
  bool observability_requested() const noexcept {
    return !trace_path_.empty() || !metrics_path_.empty() || sample_every_ > 0;
  }

  /// Attach an Observer (per the observability flags) to one
  /// representative simulation. Returns nullptr when no flag was given.
  /// The caller keeps the Observer alive for the run, then passes it to
  /// write_observability().
  std::unique_ptr<obs::Observer> observe(core::Simulation& sim) const;

  /// Write the trace/metrics files requested on the command line from an
  /// observer returned by observe(). Returns false if a write failed.
  bool write_observability(const obs::Observer& observer);

  /// The step engine selected by --engine/--shards (default sequential).
  const engine::EngineConfig& engine_config() const noexcept {
    return engine_;
  }

  /// Install the selected step engine on a simulation (no-op for seq;
  /// results never change either way — the engine only affects wall
  /// time). Drivers that never call this warn at finish() when a parallel
  /// engine was requested.
  void install_engine(core::Simulation& sim) const;

  /// Print the table (CSV side effect included) and record it for JSON
  /// export under `name`.
  void report(const Table& table, const std::string& name);

  /// Attach an extra datum to the export's "extra" object.
  void note(const std::string& key, sim::JsonValue value);

  /// Write the JSON export when --json was given; returns the driver exit
  /// code: 0 when `ok` and the write succeeded, 1 otherwise.
  int finish(bool ok = true);

  /// Run the experiment body and convert exceptions into exit code 1.
  /// The body returns whether the run succeeded; finish() is called on
  /// normal completion.
  int run(const std::function<bool()>& body);

 private:
  struct IntFlag {
    std::string flag;
    std::int64_t* target;
    std::string help;
  };

  std::string experiment_;
  std::string title_;
  std::string json_path_;
  std::string trace_path_;
  std::string metrics_path_;
  std::int64_t sample_every_ = 0;
  bool observability_written_ = false;
  engine::EngineConfig engine_;
  mutable bool engine_installed_ = false;
  std::vector<IntFlag> int_flags_;
  unsigned threads_ = 0;
  bool quick_ = false;
  int exit_code_ = 0;
  std::chrono::steady_clock::time_point start_;
  sim::JsonValue tables_ = sim::JsonValue::array();
  sim::JsonValue extra_ = sim::JsonValue::object();
};

/// Run fn(i) for i in [0, n) on up to `threads` workers (0 = hardware
/// concurrency); blocks until all complete. Exceptions propagate. Backed
/// by harness::run_indexed.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  unsigned threads = 0);

}  // namespace wavesim::bench
