// Shared helpers for the experiment benches: aligned table printing and a
// small thread pool for running independent sweep points in parallel
// (every point owns its Simulation; nothing is shared).
#pragma once

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

namespace wavesim::bench {

/// Print an experiment banner: id, claim, and setup description.
void banner(const std::string& id, const std::string& title,
            const std::string& setup);

/// Fixed-width table. Column widths adapt to the widest cell.
/// When the WAVESIM_CSV_DIR environment variable is set, print(name)
/// additionally writes `$WAVESIM_CSV_DIR/<name>.csv` for plotting.
class Table {
 public:
  explicit Table(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);
  void print(const std::string& csv_name = "") const;
  void write_csv(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

std::string fmt(double value, int precision = 1);
std::string fmt_int(std::uint64_t value);
std::string fmt_pct(double fraction, int precision = 1);

/// Run fn(i) for i in [0, n) on up to `threads` workers (0 = hardware
/// concurrency); blocks until all complete. Exceptions propagate.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  unsigned threads = 0);

}  // namespace wavesim::bench
