// E4 -- CLRP vs CARP on phase-structured applications (section 3: "the
// CARP protocol is able to achieve a higher performance because a circuit
// is only established when there is enough temporal communication
// locality").
//
// Two synthetic applications with compiler-visible communication:
//  * 5-point stencil (halo exchange with fixed neighbors every iteration)
//  * master/worker (requests in, data chunks out)
// Each runs identically under wormhole, CLRP (circuits discovered on
// demand) and CARP (circuits prefetched/released by the "compiler").
#include "bench_util.hpp"
#include "core/simulation.hpp"
#include "workload/trace.hpp"

namespace {

using namespace wavesim;

struct Row {
  double mean = 0.0;
  double p99 = 0.0;
  Cycle makespan = 0;
  double circuit_share = 0.0;
};

Row run_trace(sim::ProtocolKind protocol, const load::Trace& trace) {
  sim::SimConfig config = sim::SimConfig::default_torus();
  config.protocol.protocol = protocol;
  if (protocol == sim::ProtocolKind::kWormholeOnly) {
    config.router.wave_switches = 0;
  }
  core::Simulation sim(config);
  // Only CARP executes the establish/release instructions; the other
  // protocols replay the identical send sequence.
  if (protocol == sim::ProtocolKind::kCarp) {
    load::replay(trace, sim, 4'000'000);
  } else {
    load::replay(trace.without_circuit_ops(), sim, 4'000'000);
  }
  const auto stats = sim.stats();
  Row row;
  row.mean = stats.latency_mean;
  row.p99 = stats.latency_p99;
  row.makespan = sim.now();
  const double total = static_cast<double>(stats.messages_delivered);
  row.circuit_share =
      total > 0 ? (stats.circuit_hit_count + stats.circuit_setup_count) / total
                : 0.0;
  return row;
}

void run_app(bench::Cli& cli, const char* name, const char* csv,
             const load::Trace& trace) {
  std::printf("\n[%s]\n", name);
  bench::Table table(
      {"protocol", "mean-lat", "p99", "makespan", "circuit-share"});
  std::vector<Row> rows(3);
  const std::vector<sim::ProtocolKind> protocols{
      sim::ProtocolKind::kWormholeOnly, sim::ProtocolKind::kClrp,
      sim::ProtocolKind::kCarp};
  bench::parallel_for(protocols.size(), [&](std::size_t i) {
    rows[i] = run_trace(protocols[i], trace);
  }, cli.threads());
  for (std::size_t i = 0; i < protocols.size(); ++i) {
    const Row& row = rows[i];
    bench::require(row.mean > 0.0,
                   std::string("E4: no traffic delivered under ") +
                       sim::to_string(protocols[i]));
    table.add_row({sim::to_string(protocols[i]), bench::fmt(row.mean, 1),
                   bench::fmt(row.p99, 1), bench::fmt_int(row.makespan),
                   bench::fmt_pct(row.circuit_share)});
  }
  cli.report(table, csv);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Cli cli("E4", "CLRP vs CARP on compiler-visible workloads");
  if (!cli.parse(argc, argv)) return cli.exit_code();
  return cli.run([&] {
  bench::banner("E4", "CLRP vs CARP on compiler-visible workloads",
                "8x8 torus; stencil: 6 iterations x 64-flit halos to 4 "
                "neighbors; master/worker: 4 rounds, 4-flit requests, "
                "64-flit chunks");
  topo::KAryNCube topo({8, 8}, true);
  const std::int32_t iterations = cli.quick() ? 2 : 6;
  const std::int32_t rounds = cli.quick() ? 2 : 4;
  run_app(cli, "5-point stencil", "e4_stencil",
          load::make_stencil_trace(topo, iterations, 64, 300, /*carp=*/true));
  run_app(cli, "master/worker", "e4_master_worker",
          load::make_master_worker_trace(topo, topo.node_of({4, 4}), rounds, 4,
                                         64, 800, /*carp=*/true));
  std::printf("\nExpected shape: CARP matches or beats CLRP mean latency "
              "(setup prefetched\noff the critical path) and both beat "
              "wormhole decisively on these\nlocality-heavy apps.\n");
  return true;
  });
}
