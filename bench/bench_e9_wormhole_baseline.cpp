// E9 -- Wormhole baseline fidelity: the substrate must reproduce the
// classic results the paper builds on before the wave-switching
// comparison means anything.
//  (a) Virtual channels raise throughput (Dally [7], cited in section 1).
//  (b) Adaptive routing helps non-uniform traffic but needs care (Duato
//      [8,9], Gaughan & Yalamanchili [11]).
#include "bench_util.hpp"
#include "core/simulation.hpp"
#include "workload/generator.hpp"

namespace {

using namespace wavesim;

struct Point {
  double mean = 0.0;
  double throughput = 0.0;
  bool saturated = false;
};

Point run_point(std::int32_t vcs, sim::RoutingKind routing,
                const std::string& pattern_name, double load) {
  sim::SimConfig config = sim::SimConfig::wormhole_baseline();
  config.router.wormhole_vcs = vcs;
  config.router.routing = routing;
  config.seed = 21;
  core::Simulation sim(config);
  auto pattern = load::make_traffic(pattern_name, sim.topology(), sim::Rng{9});
  load::FixedSize sizes(32);
  const auto r = load::run_open_loop(sim, *pattern, sizes, load,
                                     /*warmup=*/2000, /*measure=*/8000,
                                     /*drain_cap=*/200000, /*seed=*/17);
  return Point{r.stats.latency_mean, r.stats.throughput_flits_per_node_cycle,
               !r.drained};
}

std::string cell(const Point& p) {
  return (p.saturated ? "sat " : "") + bench::fmt(p.mean, 1) + " / " +
         bench::fmt(p.throughput, 3);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Cli cli("E9", "wormhole substrate baselines (VCs, adaptive routing)");
  if (!cli.parse(argc, argv)) return cli.exit_code();
  return cli.run([&] {
  bench::banner("E9", "wormhole substrate baselines (VCs, adaptive routing)",
                "8x8 torus, wormhole only, 32-flit messages; cells are "
                "mean-latency / delivered-throughput");

  std::printf("\n(a) virtual channels vs offered load, DOR routing\n");
  std::vector<std::int32_t> vc_counts{2, 3, 4, 8};
  std::vector<double> loads{0.10, 0.20, 0.30, 0.40};
  if (cli.quick()) {
    vc_counts = {2, 4};
    loads = {0.10, 0.20};
  }
  std::vector<Point> grid(vc_counts.size() * loads.size());
  bench::parallel_for(grid.size(), [&](std::size_t i) {
    const auto vi = i / loads.size();
    const auto li = i % loads.size();
    grid[i] = run_point(vc_counts[vi], sim::RoutingKind::kDimensionOrder,
                        "uniform", loads[li]);
  }, cli.threads());
  std::vector<std::string> vc_header{"vcs"};
  for (const double load : loads) vc_header.push_back("load " + bench::fmt(load, 2));
  bench::Table vc_table(vc_header);
  for (std::size_t vi = 0; vi < vc_counts.size(); ++vi) {
    std::vector<std::string> row{bench::fmt_int(vc_counts[vi])};
    for (std::size_t li = 0; li < loads.size(); ++li) {
      row.push_back(cell(grid[vi * loads.size() + li]));
    }
    vc_table.add_row(row);
  }
  cli.report(vc_table, "e9_vc_sweep");

  std::printf("\n(b) DOR vs Duato fully-adaptive (3 VCs), load 0.20\n");
  bench::Table rt_table({"pattern", "dor", "duato"});
  std::vector<std::string> patterns{"uniform", "transpose", "tornado",
                                    "hotspot"};
  if (cli.quick()) patterns = {"uniform", "tornado"};
  std::vector<Point> dor(patterns.size());
  std::vector<Point> duato(patterns.size());
  bench::parallel_for(patterns.size() * 2, [&](std::size_t i) {
    const auto pi = i / 2;
    if (i % 2 == 0) {
      dor[pi] = run_point(3, sim::RoutingKind::kDimensionOrder, patterns[pi],
                          0.20);
    } else {
      duato[pi] = run_point(3, sim::RoutingKind::kDuatoAdaptive, patterns[pi],
                            0.20);
    }
  }, cli.threads());
  for (std::size_t pi = 0; pi < patterns.size(); ++pi) {
    rt_table.add_row({patterns[pi], cell(dor[pi]), cell(duato[pi])});
  }
  cli.report(rt_table, "e9_routing");

  std::printf("\nExpected shape: (a) more VCs sustain higher load before "
              "saturation;\n(b) adaptive routing wins on adversarial "
              "patterns (tornado/transpose),\nroughly ties on uniform.\n");
  return true;
  });
}
