// E7 -- Number of wave switches k and the channel-width question
// (section 2: "splitting physical channels into narrower physical
// channels shares bandwidth in a very inflexible way ... several switches
// per node can be used, each one being implemented in its own chip").
//
// k controls how many circuits can coexist per link direction. The
// multi-chip design (split=off) keeps full-width channels per switch; the
// single-chip design (split=on) divides the wave bandwidth by k.
#include "bench_util.hpp"
#include "core/simulation.hpp"
#include "workload/generator.hpp"

namespace {

using namespace wavesim;

struct Row {
  double mean = 0.0;
  double throughput = 0.0;
  double hit_rate = 0.0;
  double fallback_share = 0.0;
};

Row run_point(std::int32_t k, bool split) {
  sim::SimConfig config = sim::SimConfig::default_torus();
  config.protocol.protocol = sim::ProtocolKind::kClrp;
  config.router.wave_switches = k;
  config.router.split_channels = split;
  config.seed = 11;
  core::Simulation sim(config);
  load::WorkingSetTraffic pattern(sim.topology(), 4, 0.85, sim::Rng{41});
  load::FixedSize sizes(64);
  const auto r = load::run_open_loop(sim, pattern, sizes, /*load=*/0.15,
                                     /*warmup=*/2000, /*measure=*/10000,
                                     /*drain_cap=*/400000, /*seed=*/13);
  Row row;
  row.mean = r.stats.latency_mean;
  row.throughput = r.stats.throughput_flits_per_node_cycle;
  row.hit_rate = r.stats.cache_hit_rate();
  const double total = static_cast<double>(r.stats.messages_delivered);
  row.fallback_share = total > 0 ? r.stats.fallback_count / total : 0.0;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Cli cli("E7", "wave-switch count k and channel splitting");
  if (!cli.parse(argc, argv)) return cli.exit_code();
  return cli.run([&] {
  bench::banner("E7", "wave-switch count k and channel splitting",
                "8x8 torus, CLRP, working-set traffic (4 dests, p=0.85), "
                "64-flit messages, load 0.15");
  struct Config {
    std::int32_t k;
    bool split;
  };
  std::vector<Config> configs{{1, false}, {2, false}, {4, false},
                              {2, true},  {4, true}};
  if (cli.quick()) configs = {{1, false}, {2, true}};
  std::vector<Row> rows(configs.size());
  bench::parallel_for(configs.size(), [&](std::size_t i) {
    rows[i] = run_point(configs[i].k, configs[i].split);
  }, cli.threads());

  bench::Table table({"k", "channels", "circuit-bw", "mean-lat", "throughput",
                      "cache-hit", "fallback"});
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const auto& c = configs[i];
    const double bw = 4.0 / (c.split ? c.k : 1);
    table.add_row({bench::fmt_int(c.k),
                   c.split ? "split" : "full-width",
                   bench::fmt(bw, 1) + " f/c", bench::fmt(rows[i].mean, 1),
                   bench::fmt(rows[i].throughput, 3),
                   bench::fmt_pct(rows[i].hit_rate),
                   bench::fmt_pct(rows[i].fallback_share)});
  }
  cli.report(table, "e7_k_switches");
  std::printf("\nExpected shape: more full-width switches -> more coexisting"
              " circuits ->\nhigher hit rates and lower latency (the paper's "
              "multi-chip scalability\nargument); splitting claws those "
              "gains back by cutting circuit bandwidth.\n");
  return true;
  });
}
