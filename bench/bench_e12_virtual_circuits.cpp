// E12 -- Physical vs virtual circuits (paper footnote 1 and section 2).
//
// Wave switching's win decomposes into two effects:
//  1. circuit reuse: no per-hop routing, no contention, pre-allocated
//     buffers -- available to *virtual* circuits too;
//  2. wave pipelining: physical circuits have no flit buffers or link
//     flow control, so the clock runs ~4x faster -- physical-only.
// This ablation runs the identical CLRP workload over physical circuits
// (wave clock x4), virtual circuits (base clock) and plain wormhole to
// attribute the gain.
#include "bench_util.hpp"
#include "core/simulation.hpp"
#include "workload/generator.hpp"

namespace {

using namespace wavesim;

struct Row {
  double mean = 0.0;
  double p99 = 0.0;
  double throughput = 0.0;
};

Row run_point(bool circuits, bool virtual_circuits, std::int32_t length) {
  sim::SimConfig config = sim::SimConfig::default_torus();
  config.protocol.protocol =
      circuits ? sim::ProtocolKind::kClrp : sim::ProtocolKind::kWormholeOnly;
  if (!circuits) config.router.wave_switches = 0;
  config.router.virtual_circuits = virtual_circuits;
  config.seed = 9;
  core::Simulation sim(config);
  load::WorkingSetTraffic pattern(sim.topology(), 2, 0.9, sim::Rng{53});
  load::FixedSize sizes(length);
  const auto r = load::run_open_loop(sim, pattern, sizes, /*load=*/0.12,
                                     /*warmup=*/2000, /*measure=*/8000,
                                     /*drain_cap=*/400000, /*seed=*/29);
  return Row{r.stats.latency_mean, r.stats.latency_p99,
             r.stats.throughput_flits_per_node_cycle};
}

}  // namespace

int main(int argc, char** argv) {
  bench::Cli cli("E12", "physical vs virtual circuits (wave-pipelining ablation)");
  if (!cli.parse(argc, argv)) return cli.exit_code();
  return cli.run([&] {
  bench::banner("E12", "physical vs virtual circuits (wave-pipelining ablation)",
                "8x8 torus, CLRP, working-set traffic (2 dests, p=0.9), "
                "load 0.12; 'virtual' keeps circuit reuse but clocks the "
                "circuit at the base rate");
  struct Variant {
    const char* name;
    bool circuits;
    bool virt;
  };
  const std::vector<Variant> variants{{"wormhole", false, false},
                                      {"virtual-circuits", true, true},
                                      {"physical-circuits", true, false}};
  std::vector<std::int32_t> lengths{16, 128};
  if (cli.quick()) lengths = {16};
  for (const std::int32_t length : lengths) {
    std::printf("\n[%d-flit messages]\n", length);
    bench::Table table({"transport", "mean-lat", "p99", "throughput"});
    std::vector<Row> rows(variants.size());
    bench::parallel_for(variants.size(), [&](std::size_t i) {
      rows[i] = run_point(variants[i].circuits, variants[i].virt, length);
    }, cli.threads());
    for (std::size_t i = 0; i < variants.size(); ++i) {
      table.add_row({variants[i].name, bench::fmt(rows[i].mean, 1),
                     bench::fmt(rows[i].p99, 1),
                     bench::fmt(rows[i].throughput, 3)});
    }
    cli.report(table, length == 16 ? "e12_virtual_short" : "e12_virtual_long");
  }
  std::printf("\nExpected shape: for long messages virtual circuits already "
              "beat wormhole\n(routing and contention removed, setup "
              "amortized), and physical circuits\nadd the wave-clock factor "
              "on top. For short messages circuit setup and\nper-circuit "
              "serialization are not amortized at the base clock -- the "
              "faster\nclock of *physical* circuits is what keeps them "
              "competitive, which is why\nthe paper pairs circuit reuse "
              "with wave pipelining rather than using\nvirtual circuits.\n");
  return true;
  });
}
