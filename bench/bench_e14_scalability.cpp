// E14 -- Scalability with network size (paper section 2): "scalability is
// excellent because the number of switches (chips) per node can increase
// as network size increases, thus compensating the higher average
// distance traveled by messages."
//
// Sweep the torus size at fixed per-node load and compare (a) the wormhole
// baseline, (b) wave with fixed k=2, and (c) wave with k grown alongside
// the network (the multi-chip design point). The paper's claim is that (c)
// flattens the latency growth that distance alone would dictate.
#include "bench_util.hpp"
#include "core/simulation.hpp"
#include "workload/generator.hpp"

namespace {

using namespace wavesim;

struct Point {
  double mean = 0.0;
  double p99 = 0.0;
  double hit_rate = 0.0;
  bool saturated = false;
};

Point run_point(const bench::Cli& cli, std::int32_t radix,
                sim::ProtocolKind protocol, std::int32_t k) {
  sim::SimConfig config;
  config.topology.radix = {radix, radix};
  config.topology.torus = true;
  config.protocol.protocol = protocol;
  config.router.wave_switches =
      protocol == sim::ProtocolKind::kWormholeOnly ? 0 : k;
  config.seed = 18;
  core::Simulation sim(config);
  // The large tori here are the motivating case for --engine par: each
  // point's wall time shrinks while its statistics stay bit-identical.
  cli.install_engine(sim);
  load::WorkingSetTraffic pattern(sim.topology(), 3, 0.85, sim::Rng{67});
  load::FixedSize sizes(64);
  const auto r = load::run_open_loop(sim, pattern, sizes, /*load=*/0.12,
                                     /*warmup=*/1500, /*measure=*/6000,
                                     /*drain_cap=*/300000, /*seed=*/25);
  return Point{r.stats.latency_mean, r.stats.latency_p99,
               r.stats.cache_hit_rate(), !r.drained};
}

}  // namespace

int main(int argc, char** argv) {
  bench::Cli cli("E14", "scalability with network size (multi-chip argument)");
  if (!cli.parse(argc, argv)) return cli.exit_code();
  return cli.run([&] {
  bench::banner("E14", "scalability with network size (multi-chip argument)",
                "r x r torus sweep at fixed load 0.12, working-set traffic "
                "(3 dests, p=0.85), 64-flit messages; 'grown k' scales the "
                "switch count with the radix (k = r/4)");
  struct Size {
    std::int32_t radix;
    std::int32_t grown_k;
  };
  std::vector<Size> sizes{{4, 1}, {8, 2}, {16, 4}};
  if (cli.quick()) sizes = {{4, 1}, {8, 2}};
  bench::Table table({"torus", "avg-dist", "wormhole", "wave k=2",
                      "wave k=r/4", "hit k=2", "hit k=r/4"});
  std::vector<Point> wh(sizes.size()), fixed(sizes.size()), grown(sizes.size());
  bench::parallel_for(sizes.size() * 3, [&](std::size_t i) {
    const auto& sz = sizes[i / 3];
    switch (i % 3) {
      case 0:
        wh[i / 3] =
            run_point(cli, sz.radix, sim::ProtocolKind::kWormholeOnly, 0);
        break;
      case 1:
        fixed[i / 3] = run_point(cli, sz.radix, sim::ProtocolKind::kClrp, 2);
        break;
      case 2:
        grown[i / 3] =
            run_point(cli, sz.radix, sim::ProtocolKind::kClrp, sz.grown_k);
        break;
    }
  }, cli.threads());
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    auto cell = [](const Point& p) {
      return (p.saturated ? "sat " : "") + bench::fmt(p.mean, 1);
    };
    table.add_row({bench::fmt_int(sizes[i].radix) + "x" +
                       bench::fmt_int(sizes[i].radix),
                   bench::fmt(sizes[i].radix / 2.0, 1), cell(wh[i]),
                   cell(fixed[i]), cell(grown[i]),
                   bench::fmt_pct(fixed[i].hit_rate),
                   bench::fmt_pct(grown[i].hit_rate)});
  }
  cli.report(table, "e14_scalability");
  std::printf("\nExpected shape: wormhole latency grows with the average "
              "distance (r/2);\nwave latency grows far more slowly, and "
              "growing k with the network keeps\nthe circuit supply -- and "
              "hence the hit rate -- from eroding at scale,\nwhich is the "
              "paper's multi-chip scalability argument.\n");
  return true;
  });
}
