// SWEEP -- the parallel experiment-sweep harness exercised end to end.
//
// Runs a (protocol x offered-load) grid of config points, `--replicas`
// independent measurements per point, fanned across `--threads` workers
// with deterministic per-task seeding (seed = f(base_seed, point,
// replica)). The merged per-point statistics are bit-identical regardless
// of thread count; the printed digest makes that easy to check:
//
//   ./bench_sweep --threads 1 --json a.json
//   ./bench_sweep --threads $(nproc) --json b.json
//   # both print the same "points digest"; a.json/b.json "points" match.
#include "bench_util.hpp"
#include "harness/sweep.hpp"

namespace {

using namespace wavesim;

std::uint64_t fnv1a(const std::string& text) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Cli cli("SWEEP",
                 "parallel sweep harness: protocol x load grid with replicas");
  std::int64_t replicas = 4;
  std::int64_t base_seed = 1;
  cli.add_int_flag("--replicas", &replicas, "replicas per point (default 4)");
  cli.add_int_flag("--base-seed", &base_seed, "base RNG seed (default 1)");
  if (!cli.parse(argc, argv)) return cli.exit_code();
  return cli.run([&] {
  bench::banner("SWEEP", "parallel sweep harness (determinism + speedup)",
                "8x8 torus, uniform traffic, 64-flit messages; points = "
                "{wormhole, CLRP} x 4 loads, merged across replicas");

  const Cycle warmup = cli.quick() ? 300 : 2000;
  const Cycle measure = cli.quick() ? 1000 : 6000;
  const Cycle drain_cap = cli.quick() ? 60'000 : 300'000;
  const std::vector<double> loads =
      cli.quick() ? std::vector<double>{0.05, 0.15}
                  : std::vector<double>{0.05, 0.10, 0.15, 0.20};

  std::vector<harness::SweepPoint> points;
  for (const auto protocol :
       {sim::ProtocolKind::kWormholeOnly, sim::ProtocolKind::kClrp}) {
    for (const double load : loads) {
      harness::SweepPoint point;
      point.label = std::string(sim::to_string(protocol)) + "@" +
                    bench::fmt(load, 2);
      point.config = sim::SimConfig::default_torus();
      point.config.protocol.protocol = protocol;
      if (protocol == sim::ProtocolKind::kWormholeOnly) {
        point.config.router.wave_switches = 0;
      }
      point.pattern = "uniform";
      point.message_flits = 64;
      point.offered_load = load;
      point.warmup = warmup;
      point.measure = measure;
      point.drain_cap = drain_cap;
      points.push_back(std::move(point));
    }
  }

  harness::SweepOptions options;
  options.base_seed = static_cast<std::uint64_t>(base_seed);
  options.replicas = static_cast<std::int32_t>(replicas);
  options.threads = cli.threads();
  options.engine = cli.engine_config();
  const harness::SweepResult result = harness::run_sweep(points, options);

  bench::Table table({"point", "replicas", "mean-lat", "lat-stddev", "p99",
                      "throughput", "saturated"});
  for (const auto& p : result.points) {
    table.add_row({p.label, bench::fmt_int(p.replicas),
                   bench::fmt(p.metrics.latency_mean.mean(), 2),
                   bench::fmt(p.metrics.latency_mean.stddev(), 2),
                   bench::fmt(p.metrics.latency_p99.mean(), 1),
                   bench::fmt(p.metrics.throughput.mean(), 4),
                   bench::fmt_int(static_cast<std::uint64_t>(
                       p.saturated_replicas))});
  }
  cli.report(table, "sweep_grid");

  const std::string points_dump = harness::points_to_json(result).dump();
  std::printf("\n%zu runs (%zu points x %d replicas) on %u thread(s) in "
              "%.2fs\npoints digest: %016llx\n",
              result.runs, result.points.size(), result.replicas,
              result.threads_used, result.wall_seconds,
              static_cast<unsigned long long>(fnv1a(points_dump)));
  cli.note("sweep", harness::to_json(result));
  cli.note("points_digest", bench::fmt_int(fnv1a(points_dump)));

  bool delivered = true;
  for (const auto& p : result.points) {
    delivered = delivered && p.messages_delivered > 0;
  }
  bench::require(delivered, "SWEEP: a point delivered no messages");
  return true;
  });
}
