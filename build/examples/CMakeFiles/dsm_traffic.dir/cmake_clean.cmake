file(REMOVE_RECURSE
  "CMakeFiles/dsm_traffic.dir/dsm_traffic.cpp.o"
  "CMakeFiles/dsm_traffic.dir/dsm_traffic.cpp.o.d"
  "dsm_traffic"
  "dsm_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsm_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
