# Empty compiler generated dependencies file for dsm_traffic.
# This may be replaced when dependencies are built.
