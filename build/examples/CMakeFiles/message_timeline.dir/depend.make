# Empty dependencies file for message_timeline.
# This may be replaced when dependencies are built.
