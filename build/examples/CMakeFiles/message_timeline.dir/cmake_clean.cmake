file(REMOVE_RECURSE
  "CMakeFiles/message_timeline.dir/message_timeline.cpp.o"
  "CMakeFiles/message_timeline.dir/message_timeline.cpp.o.d"
  "message_timeline"
  "message_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/message_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
