file(REMOVE_RECURSE
  "CMakeFiles/wavesim_cli.dir/wavesim_cli.cpp.o"
  "CMakeFiles/wavesim_cli.dir/wavesim_cli.cpp.o.d"
  "wavesim_cli"
  "wavesim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavesim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
