# Empty compiler generated dependencies file for wavesim_cli.
# This may be replaced when dependencies are built.
