file(REMOVE_RECURSE
  "CMakeFiles/stencil_carp.dir/stencil_carp.cpp.o"
  "CMakeFiles/stencil_carp.dir/stencil_carp.cpp.o.d"
  "stencil_carp"
  "stencil_carp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stencil_carp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
