# Empty dependencies file for stencil_carp.
# This may be replaced when dependencies are built.
