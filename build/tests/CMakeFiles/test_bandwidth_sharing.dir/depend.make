# Empty dependencies file for test_bandwidth_sharing.
# This may be replaced when dependencies are built.
