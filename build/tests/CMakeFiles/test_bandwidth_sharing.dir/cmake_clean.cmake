file(REMOVE_RECURSE
  "CMakeFiles/test_bandwidth_sharing.dir/test_bandwidth_sharing.cpp.o"
  "CMakeFiles/test_bandwidth_sharing.dir/test_bandwidth_sharing.cpp.o.d"
  "test_bandwidth_sharing"
  "test_bandwidth_sharing.pdb"
  "test_bandwidth_sharing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bandwidth_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
