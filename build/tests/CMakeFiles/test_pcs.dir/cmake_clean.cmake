file(REMOVE_RECURSE
  "CMakeFiles/test_pcs.dir/test_pcs.cpp.o"
  "CMakeFiles/test_pcs.dir/test_pcs.cpp.o.d"
  "test_pcs"
  "test_pcs.pdb"
  "test_pcs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pcs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
