file(REMOVE_RECURSE
  "CMakeFiles/test_software_model.dir/test_software_model.cpp.o"
  "CMakeFiles/test_software_model.dir/test_software_model.cpp.o.d"
  "test_software_model"
  "test_software_model.pdb"
  "test_software_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_software_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
