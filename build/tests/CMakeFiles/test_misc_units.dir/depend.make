# Empty dependencies file for test_misc_units.
# This may be replaced when dependencies are built.
