file(REMOVE_RECURSE
  "CMakeFiles/test_segmentation.dir/test_segmentation.cpp.o"
  "CMakeFiles/test_segmentation.dir/test_segmentation.cpp.o.d"
  "test_segmentation"
  "test_segmentation.pdb"
  "test_segmentation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_segmentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
