file(REMOVE_RECURSE
  "CMakeFiles/test_wormhole_router.dir/test_wormhole_router.cpp.o"
  "CMakeFiles/test_wormhole_router.dir/test_wormhole_router.cpp.o.d"
  "test_wormhole_router"
  "test_wormhole_router.pdb"
  "test_wormhole_router[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wormhole_router.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
