# Empty dependencies file for test_wormhole_router.
# This may be replaced when dependencies are built.
