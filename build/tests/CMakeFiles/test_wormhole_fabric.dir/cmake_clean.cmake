file(REMOVE_RECURSE
  "CMakeFiles/test_wormhole_fabric.dir/test_wormhole_fabric.cpp.o"
  "CMakeFiles/test_wormhole_fabric.dir/test_wormhole_fabric.cpp.o.d"
  "test_wormhole_fabric"
  "test_wormhole_fabric.pdb"
  "test_wormhole_fabric[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wormhole_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
