file(REMOVE_RECURSE
  "CMakeFiles/test_deadlock_livelock.dir/test_deadlock_livelock.cpp.o"
  "CMakeFiles/test_deadlock_livelock.dir/test_deadlock_livelock.cpp.o.d"
  "test_deadlock_livelock"
  "test_deadlock_livelock.pdb"
  "test_deadlock_livelock[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_deadlock_livelock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
