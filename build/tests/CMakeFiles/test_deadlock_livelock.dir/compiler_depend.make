# Empty compiler generated dependencies file for test_deadlock_livelock.
# This may be replaced when dependencies are built.
