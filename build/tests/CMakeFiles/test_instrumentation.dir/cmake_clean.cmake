file(REMOVE_RECURSE
  "CMakeFiles/test_instrumentation.dir/test_instrumentation.cpp.o"
  "CMakeFiles/test_instrumentation.dir/test_instrumentation.cpp.o.d"
  "test_instrumentation"
  "test_instrumentation.pdb"
  "test_instrumentation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_instrumentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
