# Empty dependencies file for test_instrumentation.
# This may be replaced when dependencies are built.
