file(REMOVE_RECURSE
  "CMakeFiles/test_node_interface.dir/test_node_interface.cpp.o"
  "CMakeFiles/test_node_interface.dir/test_node_interface.cpp.o.d"
  "test_node_interface"
  "test_node_interface.pdb"
  "test_node_interface[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_node_interface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
