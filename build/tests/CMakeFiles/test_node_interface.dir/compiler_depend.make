# Empty compiler generated dependencies file for test_node_interface.
# This may be replaced when dependencies are built.
