# Empty dependencies file for test_westfirst.
# This may be replaced when dependencies are built.
