file(REMOVE_RECURSE
  "CMakeFiles/test_westfirst.dir/test_westfirst.cpp.o"
  "CMakeFiles/test_westfirst.dir/test_westfirst.cpp.o.d"
  "test_westfirst"
  "test_westfirst.pdb"
  "test_westfirst[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_westfirst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
