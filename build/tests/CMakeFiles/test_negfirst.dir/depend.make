# Empty dependencies file for test_negfirst.
# This may be replaced when dependencies are built.
