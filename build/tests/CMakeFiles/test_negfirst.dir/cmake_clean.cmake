file(REMOVE_RECURSE
  "CMakeFiles/test_negfirst.dir/test_negfirst.cpp.o"
  "CMakeFiles/test_negfirst.dir/test_negfirst.cpp.o.d"
  "test_negfirst"
  "test_negfirst.pdb"
  "test_negfirst[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_negfirst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
