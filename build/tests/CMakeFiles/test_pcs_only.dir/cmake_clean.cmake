file(REMOVE_RECURSE
  "CMakeFiles/test_pcs_only.dir/test_pcs_only.cpp.o"
  "CMakeFiles/test_pcs_only.dir/test_pcs_only.cpp.o.d"
  "test_pcs_only"
  "test_pcs_only.pdb"
  "test_pcs_only[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pcs_only.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
