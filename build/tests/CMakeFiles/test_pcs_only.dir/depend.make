# Empty dependencies file for test_pcs_only.
# This may be replaced when dependencies are built.
