file(REMOVE_RECURSE
  "CMakeFiles/test_circuit_cache.dir/test_circuit_cache.cpp.o"
  "CMakeFiles/test_circuit_cache.dir/test_circuit_cache.cpp.o.d"
  "test_circuit_cache"
  "test_circuit_cache.pdb"
  "test_circuit_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_circuit_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
