# Empty dependencies file for test_circuit_cache.
# This may be replaced when dependencies are built.
