# Empty compiler generated dependencies file for test_data_plane.
# This may be replaced when dependencies are built.
