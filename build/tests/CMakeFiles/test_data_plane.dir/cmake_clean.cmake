file(REMOVE_RECURSE
  "CMakeFiles/test_data_plane.dir/test_data_plane.cpp.o"
  "CMakeFiles/test_data_plane.dir/test_data_plane.cpp.o.d"
  "test_data_plane"
  "test_data_plane.pdb"
  "test_data_plane[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_data_plane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
