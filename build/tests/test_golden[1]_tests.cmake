add_test([=[Golden.ClrpWorkingSetScenario]=]  /root/repo/build/tests/test_golden [==[--gtest_filter=Golden.ClrpWorkingSetScenario]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[Golden.ClrpWorkingSetScenario]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  test_golden_TESTS Golden.ClrpWorkingSetScenario)
