file(REMOVE_RECURSE
  "libwavesim_routing.a"
)
