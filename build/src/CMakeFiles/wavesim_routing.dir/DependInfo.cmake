
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/cdg.cpp" "src/CMakeFiles/wavesim_routing.dir/routing/cdg.cpp.o" "gcc" "src/CMakeFiles/wavesim_routing.dir/routing/cdg.cpp.o.d"
  "/root/repo/src/routing/dor.cpp" "src/CMakeFiles/wavesim_routing.dir/routing/dor.cpp.o" "gcc" "src/CMakeFiles/wavesim_routing.dir/routing/dor.cpp.o.d"
  "/root/repo/src/routing/duato.cpp" "src/CMakeFiles/wavesim_routing.dir/routing/duato.cpp.o" "gcc" "src/CMakeFiles/wavesim_routing.dir/routing/duato.cpp.o.d"
  "/root/repo/src/routing/negfirst.cpp" "src/CMakeFiles/wavesim_routing.dir/routing/negfirst.cpp.o" "gcc" "src/CMakeFiles/wavesim_routing.dir/routing/negfirst.cpp.o.d"
  "/root/repo/src/routing/routing.cpp" "src/CMakeFiles/wavesim_routing.dir/routing/routing.cpp.o" "gcc" "src/CMakeFiles/wavesim_routing.dir/routing/routing.cpp.o.d"
  "/root/repo/src/routing/westfirst.cpp" "src/CMakeFiles/wavesim_routing.dir/routing/westfirst.cpp.o" "gcc" "src/CMakeFiles/wavesim_routing.dir/routing/westfirst.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wavesim_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wavesim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
