file(REMOVE_RECURSE
  "CMakeFiles/wavesim_routing.dir/routing/cdg.cpp.o"
  "CMakeFiles/wavesim_routing.dir/routing/cdg.cpp.o.d"
  "CMakeFiles/wavesim_routing.dir/routing/dor.cpp.o"
  "CMakeFiles/wavesim_routing.dir/routing/dor.cpp.o.d"
  "CMakeFiles/wavesim_routing.dir/routing/duato.cpp.o"
  "CMakeFiles/wavesim_routing.dir/routing/duato.cpp.o.d"
  "CMakeFiles/wavesim_routing.dir/routing/negfirst.cpp.o"
  "CMakeFiles/wavesim_routing.dir/routing/negfirst.cpp.o.d"
  "CMakeFiles/wavesim_routing.dir/routing/routing.cpp.o"
  "CMakeFiles/wavesim_routing.dir/routing/routing.cpp.o.d"
  "CMakeFiles/wavesim_routing.dir/routing/westfirst.cpp.o"
  "CMakeFiles/wavesim_routing.dir/routing/westfirst.cpp.o.d"
  "libwavesim_routing.a"
  "libwavesim_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavesim_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
