# Empty dependencies file for wavesim_routing.
# This may be replaced when dependencies are built.
