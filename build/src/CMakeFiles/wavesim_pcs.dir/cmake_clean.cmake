file(REMOVE_RECURSE
  "CMakeFiles/wavesim_pcs.dir/pcs/history.cpp.o"
  "CMakeFiles/wavesim_pcs.dir/pcs/history.cpp.o.d"
  "CMakeFiles/wavesim_pcs.dir/pcs/mbm.cpp.o"
  "CMakeFiles/wavesim_pcs.dir/pcs/mbm.cpp.o.d"
  "CMakeFiles/wavesim_pcs.dir/pcs/probe.cpp.o"
  "CMakeFiles/wavesim_pcs.dir/pcs/probe.cpp.o.d"
  "CMakeFiles/wavesim_pcs.dir/pcs/registers.cpp.o"
  "CMakeFiles/wavesim_pcs.dir/pcs/registers.cpp.o.d"
  "libwavesim_pcs.a"
  "libwavesim_pcs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavesim_pcs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
