file(REMOVE_RECURSE
  "libwavesim_pcs.a"
)
