
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pcs/history.cpp" "src/CMakeFiles/wavesim_pcs.dir/pcs/history.cpp.o" "gcc" "src/CMakeFiles/wavesim_pcs.dir/pcs/history.cpp.o.d"
  "/root/repo/src/pcs/mbm.cpp" "src/CMakeFiles/wavesim_pcs.dir/pcs/mbm.cpp.o" "gcc" "src/CMakeFiles/wavesim_pcs.dir/pcs/mbm.cpp.o.d"
  "/root/repo/src/pcs/probe.cpp" "src/CMakeFiles/wavesim_pcs.dir/pcs/probe.cpp.o" "gcc" "src/CMakeFiles/wavesim_pcs.dir/pcs/probe.cpp.o.d"
  "/root/repo/src/pcs/registers.cpp" "src/CMakeFiles/wavesim_pcs.dir/pcs/registers.cpp.o" "gcc" "src/CMakeFiles/wavesim_pcs.dir/pcs/registers.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wavesim_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wavesim_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wavesim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
