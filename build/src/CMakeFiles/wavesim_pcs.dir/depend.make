# Empty dependencies file for wavesim_pcs.
# This may be replaced when dependencies are built.
