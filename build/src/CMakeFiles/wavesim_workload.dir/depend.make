# Empty dependencies file for wavesim_workload.
# This may be replaced when dependencies are built.
