file(REMOVE_RECURSE
  "libwavesim_workload.a"
)
