file(REMOVE_RECURSE
  "CMakeFiles/wavesim_workload.dir/workload/generator.cpp.o"
  "CMakeFiles/wavesim_workload.dir/workload/generator.cpp.o.d"
  "CMakeFiles/wavesim_workload.dir/workload/size_dist.cpp.o"
  "CMakeFiles/wavesim_workload.dir/workload/size_dist.cpp.o.d"
  "CMakeFiles/wavesim_workload.dir/workload/trace.cpp.o"
  "CMakeFiles/wavesim_workload.dir/workload/trace.cpp.o.d"
  "CMakeFiles/wavesim_workload.dir/workload/traffic.cpp.o"
  "CMakeFiles/wavesim_workload.dir/workload/traffic.cpp.o.d"
  "libwavesim_workload.a"
  "libwavesim_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavesim_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
