# Empty compiler generated dependencies file for wavesim_verify.
# This may be replaced when dependencies are built.
