file(REMOVE_RECURSE
  "CMakeFiles/wavesim_verify.dir/verify/delivery.cpp.o"
  "CMakeFiles/wavesim_verify.dir/verify/delivery.cpp.o.d"
  "CMakeFiles/wavesim_verify.dir/verify/fsck.cpp.o"
  "CMakeFiles/wavesim_verify.dir/verify/fsck.cpp.o.d"
  "CMakeFiles/wavesim_verify.dir/verify/watchdog.cpp.o"
  "CMakeFiles/wavesim_verify.dir/verify/watchdog.cpp.o.d"
  "libwavesim_verify.a"
  "libwavesim_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavesim_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
