file(REMOVE_RECURSE
  "libwavesim_verify.a"
)
