file(REMOVE_RECURSE
  "CMakeFiles/wavesim_core.dir/core/circuit.cpp.o"
  "CMakeFiles/wavesim_core.dir/core/circuit.cpp.o.d"
  "CMakeFiles/wavesim_core.dir/core/circuit_cache.cpp.o"
  "CMakeFiles/wavesim_core.dir/core/circuit_cache.cpp.o.d"
  "CMakeFiles/wavesim_core.dir/core/control_plane.cpp.o"
  "CMakeFiles/wavesim_core.dir/core/control_plane.cpp.o.d"
  "CMakeFiles/wavesim_core.dir/core/data_plane.cpp.o"
  "CMakeFiles/wavesim_core.dir/core/data_plane.cpp.o.d"
  "CMakeFiles/wavesim_core.dir/core/instrumentation.cpp.o"
  "CMakeFiles/wavesim_core.dir/core/instrumentation.cpp.o.d"
  "CMakeFiles/wavesim_core.dir/core/network.cpp.o"
  "CMakeFiles/wavesim_core.dir/core/network.cpp.o.d"
  "CMakeFiles/wavesim_core.dir/core/node_interface.cpp.o"
  "CMakeFiles/wavesim_core.dir/core/node_interface.cpp.o.d"
  "CMakeFiles/wavesim_core.dir/core/protocols.cpp.o"
  "CMakeFiles/wavesim_core.dir/core/protocols.cpp.o.d"
  "CMakeFiles/wavesim_core.dir/core/simulation.cpp.o"
  "CMakeFiles/wavesim_core.dir/core/simulation.cpp.o.d"
  "libwavesim_core.a"
  "libwavesim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavesim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
