file(REMOVE_RECURSE
  "libwavesim_core.a"
)
