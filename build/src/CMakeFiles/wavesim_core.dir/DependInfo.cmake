
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/circuit.cpp" "src/CMakeFiles/wavesim_core.dir/core/circuit.cpp.o" "gcc" "src/CMakeFiles/wavesim_core.dir/core/circuit.cpp.o.d"
  "/root/repo/src/core/circuit_cache.cpp" "src/CMakeFiles/wavesim_core.dir/core/circuit_cache.cpp.o" "gcc" "src/CMakeFiles/wavesim_core.dir/core/circuit_cache.cpp.o.d"
  "/root/repo/src/core/control_plane.cpp" "src/CMakeFiles/wavesim_core.dir/core/control_plane.cpp.o" "gcc" "src/CMakeFiles/wavesim_core.dir/core/control_plane.cpp.o.d"
  "/root/repo/src/core/data_plane.cpp" "src/CMakeFiles/wavesim_core.dir/core/data_plane.cpp.o" "gcc" "src/CMakeFiles/wavesim_core.dir/core/data_plane.cpp.o.d"
  "/root/repo/src/core/instrumentation.cpp" "src/CMakeFiles/wavesim_core.dir/core/instrumentation.cpp.o" "gcc" "src/CMakeFiles/wavesim_core.dir/core/instrumentation.cpp.o.d"
  "/root/repo/src/core/network.cpp" "src/CMakeFiles/wavesim_core.dir/core/network.cpp.o" "gcc" "src/CMakeFiles/wavesim_core.dir/core/network.cpp.o.d"
  "/root/repo/src/core/node_interface.cpp" "src/CMakeFiles/wavesim_core.dir/core/node_interface.cpp.o" "gcc" "src/CMakeFiles/wavesim_core.dir/core/node_interface.cpp.o.d"
  "/root/repo/src/core/protocols.cpp" "src/CMakeFiles/wavesim_core.dir/core/protocols.cpp.o" "gcc" "src/CMakeFiles/wavesim_core.dir/core/protocols.cpp.o.d"
  "/root/repo/src/core/simulation.cpp" "src/CMakeFiles/wavesim_core.dir/core/simulation.cpp.o" "gcc" "src/CMakeFiles/wavesim_core.dir/core/simulation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wavesim_wormhole.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wavesim_pcs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wavesim_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wavesim_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wavesim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
