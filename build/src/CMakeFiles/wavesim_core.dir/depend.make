# Empty dependencies file for wavesim_core.
# This may be replaced when dependencies are built.
