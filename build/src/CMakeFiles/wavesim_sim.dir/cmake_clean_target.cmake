file(REMOVE_RECURSE
  "libwavesim_sim.a"
)
