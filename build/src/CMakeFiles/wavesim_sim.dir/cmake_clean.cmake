file(REMOVE_RECURSE
  "CMakeFiles/wavesim_sim.dir/sim/config.cpp.o"
  "CMakeFiles/wavesim_sim.dir/sim/config.cpp.o.d"
  "CMakeFiles/wavesim_sim.dir/sim/log.cpp.o"
  "CMakeFiles/wavesim_sim.dir/sim/log.cpp.o.d"
  "CMakeFiles/wavesim_sim.dir/sim/rng.cpp.o"
  "CMakeFiles/wavesim_sim.dir/sim/rng.cpp.o.d"
  "CMakeFiles/wavesim_sim.dir/sim/stats.cpp.o"
  "CMakeFiles/wavesim_sim.dir/sim/stats.cpp.o.d"
  "libwavesim_sim.a"
  "libwavesim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavesim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
