# Empty compiler generated dependencies file for wavesim_sim.
# This may be replaced when dependencies are built.
