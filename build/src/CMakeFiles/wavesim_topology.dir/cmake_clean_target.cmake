file(REMOVE_RECURSE
  "libwavesim_topology.a"
)
