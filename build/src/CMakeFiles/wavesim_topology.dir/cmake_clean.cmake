file(REMOVE_RECURSE
  "CMakeFiles/wavesim_topology.dir/topology/coord.cpp.o"
  "CMakeFiles/wavesim_topology.dir/topology/coord.cpp.o.d"
  "CMakeFiles/wavesim_topology.dir/topology/topology.cpp.o"
  "CMakeFiles/wavesim_topology.dir/topology/topology.cpp.o.d"
  "libwavesim_topology.a"
  "libwavesim_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavesim_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
