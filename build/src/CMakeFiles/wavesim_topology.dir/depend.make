# Empty dependencies file for wavesim_topology.
# This may be replaced when dependencies are built.
