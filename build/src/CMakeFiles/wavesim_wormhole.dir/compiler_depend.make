# Empty compiler generated dependencies file for wavesim_wormhole.
# This may be replaced when dependencies are built.
