file(REMOVE_RECURSE
  "CMakeFiles/wavesim_wormhole.dir/wormhole/allocator.cpp.o"
  "CMakeFiles/wavesim_wormhole.dir/wormhole/allocator.cpp.o.d"
  "CMakeFiles/wavesim_wormhole.dir/wormhole/fabric.cpp.o"
  "CMakeFiles/wavesim_wormhole.dir/wormhole/fabric.cpp.o.d"
  "CMakeFiles/wavesim_wormhole.dir/wormhole/input_unit.cpp.o"
  "CMakeFiles/wavesim_wormhole.dir/wormhole/input_unit.cpp.o.d"
  "CMakeFiles/wavesim_wormhole.dir/wormhole/router.cpp.o"
  "CMakeFiles/wavesim_wormhole.dir/wormhole/router.cpp.o.d"
  "libwavesim_wormhole.a"
  "libwavesim_wormhole.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavesim_wormhole.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
