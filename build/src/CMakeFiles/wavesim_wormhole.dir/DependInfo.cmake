
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wormhole/allocator.cpp" "src/CMakeFiles/wavesim_wormhole.dir/wormhole/allocator.cpp.o" "gcc" "src/CMakeFiles/wavesim_wormhole.dir/wormhole/allocator.cpp.o.d"
  "/root/repo/src/wormhole/fabric.cpp" "src/CMakeFiles/wavesim_wormhole.dir/wormhole/fabric.cpp.o" "gcc" "src/CMakeFiles/wavesim_wormhole.dir/wormhole/fabric.cpp.o.d"
  "/root/repo/src/wormhole/input_unit.cpp" "src/CMakeFiles/wavesim_wormhole.dir/wormhole/input_unit.cpp.o" "gcc" "src/CMakeFiles/wavesim_wormhole.dir/wormhole/input_unit.cpp.o.d"
  "/root/repo/src/wormhole/router.cpp" "src/CMakeFiles/wavesim_wormhole.dir/wormhole/router.cpp.o" "gcc" "src/CMakeFiles/wavesim_wormhole.dir/wormhole/router.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wavesim_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wavesim_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wavesim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
