file(REMOVE_RECURSE
  "libwavesim_wormhole.a"
)
