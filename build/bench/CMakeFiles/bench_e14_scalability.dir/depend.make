# Empty dependencies file for bench_e14_scalability.
# This may be replaced when dependencies are built.
