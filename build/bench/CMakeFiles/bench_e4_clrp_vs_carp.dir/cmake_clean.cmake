file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_clrp_vs_carp.dir/bench_e4_clrp_vs_carp.cpp.o"
  "CMakeFiles/bench_e4_clrp_vs_carp.dir/bench_e4_clrp_vs_carp.cpp.o.d"
  "bench_e4_clrp_vs_carp"
  "bench_e4_clrp_vs_carp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_clrp_vs_carp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
