# Empty dependencies file for bench_e4_clrp_vs_carp.
# This may be replaced when dependencies are built.
