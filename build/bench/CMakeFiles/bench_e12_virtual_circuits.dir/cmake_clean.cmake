file(REMOVE_RECURSE
  "CMakeFiles/bench_e12_virtual_circuits.dir/bench_e12_virtual_circuits.cpp.o"
  "CMakeFiles/bench_e12_virtual_circuits.dir/bench_e12_virtual_circuits.cpp.o.d"
  "bench_e12_virtual_circuits"
  "bench_e12_virtual_circuits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e12_virtual_circuits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
