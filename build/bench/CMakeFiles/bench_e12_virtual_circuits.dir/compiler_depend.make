# Empty compiler generated dependencies file for bench_e12_virtual_circuits.
# This may be replaced when dependencies are built.
