# Empty compiler generated dependencies file for bench_e10_setup_anatomy.
# This may be replaced when dependencies are built.
