file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_setup_anatomy.dir/bench_e10_setup_anatomy.cpp.o"
  "CMakeFiles/bench_e10_setup_anatomy.dir/bench_e10_setup_anatomy.cpp.o.d"
  "bench_e10_setup_anatomy"
  "bench_e10_setup_anatomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_setup_anatomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
