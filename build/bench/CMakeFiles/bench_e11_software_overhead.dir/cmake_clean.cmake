file(REMOVE_RECURSE
  "CMakeFiles/bench_e11_software_overhead.dir/bench_e11_software_overhead.cpp.o"
  "CMakeFiles/bench_e11_software_overhead.dir/bench_e11_software_overhead.cpp.o.d"
  "bench_e11_software_overhead"
  "bench_e11_software_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_software_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
