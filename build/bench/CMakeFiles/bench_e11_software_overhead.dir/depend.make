# Empty dependencies file for bench_e11_software_overhead.
# This may be replaced when dependencies are built.
