# Empty compiler generated dependencies file for bench_e7_k_switches.
# This may be replaced when dependencies are built.
