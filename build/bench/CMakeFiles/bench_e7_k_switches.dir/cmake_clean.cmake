file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_k_switches.dir/bench_e7_k_switches.cpp.o"
  "CMakeFiles/bench_e7_k_switches.dir/bench_e7_k_switches.cpp.o.d"
  "bench_e7_k_switches"
  "bench_e7_k_switches.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_k_switches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
