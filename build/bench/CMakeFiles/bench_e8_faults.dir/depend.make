# Empty dependencies file for bench_e8_faults.
# This may be replaced when dependencies are built.
