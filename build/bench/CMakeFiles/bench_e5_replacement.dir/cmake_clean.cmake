file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_replacement.dir/bench_e5_replacement.cpp.o"
  "CMakeFiles/bench_e5_replacement.dir/bench_e5_replacement.cpp.o.d"
  "bench_e5_replacement"
  "bench_e5_replacement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_replacement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
