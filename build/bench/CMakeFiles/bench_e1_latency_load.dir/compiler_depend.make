# Empty compiler generated dependencies file for bench_e1_latency_load.
# This may be replaced when dependencies are built.
