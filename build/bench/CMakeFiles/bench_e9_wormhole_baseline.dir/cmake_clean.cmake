file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_wormhole_baseline.dir/bench_e9_wormhole_baseline.cpp.o"
  "CMakeFiles/bench_e9_wormhole_baseline.dir/bench_e9_wormhole_baseline.cpp.o.d"
  "bench_e9_wormhole_baseline"
  "bench_e9_wormhole_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_wormhole_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
