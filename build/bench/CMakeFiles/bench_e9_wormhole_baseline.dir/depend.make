# Empty dependencies file for bench_e9_wormhole_baseline.
# This may be replaced when dependencies are built.
