file(REMOVE_RECURSE
  "../lib/libwavesim_bench_util.a"
  "../lib/libwavesim_bench_util.pdb"
  "CMakeFiles/wavesim_bench_util.dir/bench_util.cpp.o"
  "CMakeFiles/wavesim_bench_util.dir/bench_util.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavesim_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
