file(REMOVE_RECURSE
  "../lib/libwavesim_bench_util.a"
)
