# Empty dependencies file for wavesim_bench_util.
# This may be replaced when dependencies are built.
