# Empty dependencies file for bench_e3_reuse_locality.
# This may be replaced when dependencies are built.
