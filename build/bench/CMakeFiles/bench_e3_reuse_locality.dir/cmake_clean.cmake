file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_reuse_locality.dir/bench_e3_reuse_locality.cpp.o"
  "CMakeFiles/bench_e3_reuse_locality.dir/bench_e3_reuse_locality.cpp.o.d"
  "bench_e3_reuse_locality"
  "bench_e3_reuse_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_reuse_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
