file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_msg_length.dir/bench_e2_msg_length.cpp.o"
  "CMakeFiles/bench_e2_msg_length.dir/bench_e2_msg_length.cpp.o.d"
  "bench_e2_msg_length"
  "bench_e2_msg_length.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_msg_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
