# Empty compiler generated dependencies file for bench_e2_msg_length.
# This may be replaced when dependencies are built.
