file(REMOVE_RECURSE
  "CMakeFiles/bench_e13_saturation.dir/bench_e13_saturation.cpp.o"
  "CMakeFiles/bench_e13_saturation.dir/bench_e13_saturation.cpp.o.d"
  "bench_e13_saturation"
  "bench_e13_saturation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e13_saturation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
