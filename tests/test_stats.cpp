#include "sim/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace wavesim::sim {
namespace {

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(OnlineStats, KnownMoments) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic population-variance example
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, MergeMatchesSequential) {
  OnlineStats a;
  OnlineStats b;
  OnlineStats all;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10.0;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a;
  a.add(1.0);
  a.add(2.0);
  OnlineStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.5);
}

TEST(Sample, EmptyPercentileIsZero) {
  Sample s;
  EXPECT_EQ(s.percentile(50), 0.0);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(Sample, PercentilesOfKnownData) {
  Sample s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.median(), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(90), 90.0);
  EXPECT_DOUBLE_EQ(s.percentile(99), 99.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(Sample, AddAfterPercentileStillCorrect) {
  Sample s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.median(), 5.0);
  s.add(1.0);
  s.add(9.0);
  EXPECT_DOUBLE_EQ(s.median(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Sample, PercentileClamped) {
  Sample s;
  s.add(1.0);
  s.add(2.0);
  EXPECT_DOUBLE_EQ(s.percentile(-10), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(200), 2.0);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(0.0, 0.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 0.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, BinsAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  h.add(-1.0);   // underflow
  h.add(0.0);    // bin 0
  h.add(0.99);   // bin 0
  h.add(5.0);    // bin 5
  h.add(9.999);  // bin 9
  h.add(10.0);   // overflow (hi is exclusive)
  h.add(50.0);   // overflow
  EXPECT_EQ(h.total(), 7u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(5), 1u);
  EXPECT_EQ(h.bin_count(9), 1u);
  EXPECT_DOUBLE_EQ(h.bin_lo(5), 5.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(5), 6.0);
}

TEST(Histogram, RenderMentionsCounts) {
  Histogram h(0.0, 4.0, 4);
  h.add(1.5);
  h.add(1.6);
  const auto text = h.render();
  EXPECT_NE(text.find('#'), std::string::npos);
  EXPECT_NE(text.find('2'), std::string::npos);
}

}  // namespace
}  // namespace wavesim::sim
