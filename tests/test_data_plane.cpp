// Data-plane tests: wave-pipelined bandwidth, end-to-end windowing, and
// the In-use lifecycle.
#include "core/data_plane.hpp"

#include <gtest/gtest.h>

namespace wavesim::core {
namespace {

class DataPlaneTest : public ::testing::Test {
 protected:
  CircuitId make_circuit(std::int32_t hops) {
    const CircuitId c = circuits_.create(0, 1, 0);
    auto& rec = circuits_.at(c);
    rec.state = CircuitState::kEstablished;
    rec.path.assign(hops, 0);
    return c;
  }

  std::vector<TransferDone> run(DataPlane& plane, int cycles) {
    std::vector<TransferDone> done;
    for (int i = 0; i < cycles; ++i) {
      plane.step(now_++);
      for (const auto& t : plane.take_completed()) done.push_back(t);
    }
    return done;
  }

  CircuitTable circuits_;
  Cycle now_ = 0;
};

TEST_F(DataPlaneTest, RejectsBadParams) {
  EXPECT_THROW(DataPlane(circuits_, DataPlaneParams{0.0, 4.0, 32}),
               std::invalid_argument);
  EXPECT_THROW(DataPlane(circuits_, DataPlaneParams{4.0, 0.0, 32}),
               std::invalid_argument);
  EXPECT_THROW(DataPlane(circuits_, DataPlaneParams{4.0, 4.0, 0}),
               std::invalid_argument);
}

TEST_F(DataPlaneTest, PipeLatencyScalesWithHopsOverWaveClock) {
  DataPlane plane(circuits_, DataPlaneParams{4.0, 4.0, 32});
  EXPECT_EQ(plane.pipe_latency(1), 2u);   // ceil(1/4) + 1
  EXPECT_EQ(plane.pipe_latency(4), 2u);   // ceil(4/4) + 1
  EXPECT_EQ(plane.pipe_latency(8), 3u);   // ceil(8/4) + 1
  EXPECT_EQ(plane.pipe_latency(16), 5u);
  DataPlane slow(circuits_, DataPlaneParams{1.0, 1.0, 32});
  EXPECT_EQ(slow.pipe_latency(8), 9u);    // no wave pipelining: 8 + 1
}

TEST_F(DataPlaneTest, StartTransferValidation) {
  DataPlane plane(circuits_, DataPlaneParams{4.0, 4.0, 32});
  const CircuitId c = make_circuit(2);
  circuits_.at(c).state = CircuitState::kProbing;
  EXPECT_THROW(plane.start_transfer(1, c, 8, 0), std::logic_error);
  circuits_.at(c).state = CircuitState::kEstablished;
  EXPECT_THROW(plane.start_transfer(1, c, 0, 0), std::invalid_argument);
  plane.start_transfer(1, c, 8, 0);
  EXPECT_TRUE(circuits_.at(c).in_use);
  EXPECT_THROW(plane.start_transfer(2, c, 8, 0), std::logic_error);
}

TEST_F(DataPlaneTest, ShortMessageCompletesAtPipePlusAckTime) {
  DataPlane plane(circuits_, DataPlaneParams{4.0, 4.0, 32});
  const CircuitId c = make_circuit(4);  // pipe = 2
  plane.start_transfer(7, c, 4, now_);
  const auto done = run(plane, 20);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].msg, 7);
  // All 4 flits leave in cycle 0 (bw 4/cycle), arrive at 0+2, acked at 0+4.
  EXPECT_EQ(done[0].delivered_at, 2u);
  EXPECT_EQ(done[0].acked_at, 4u);
  EXPECT_FALSE(circuits_.at(c).in_use);
  EXPECT_EQ(plane.active_transfers(), 0u);
}

TEST_F(DataPlaneTest, LongMessageThroughputMatchesBandwidth) {
  DataPlane plane(circuits_, DataPlaneParams{4.0, 4.0, 64});
  const CircuitId c = make_circuit(4);
  const std::int32_t length = 256;
  plane.start_transfer(1, c, length, now_);
  const auto done = run(plane, 200);
  ASSERT_EQ(done.size(), 1u);
  // Serialization at 4 flits/cycle dominates: ~length/4 cycles + pipe.
  const Cycle expect_serialize = length / 4;
  EXPECT_NEAR(static_cast<double>(done[0].delivered_at),
              static_cast<double>(expect_serialize + 2), 3.0);
}

TEST_F(DataPlaneTest, SmallWindowThrottlesThroughput) {
  // Window 4 with round-trip 2*pipe: once the window fills, the sender
  // stalls until acks return.
  DataPlane plane(circuits_, DataPlaneParams{4.0, 4.0, 4});
  const CircuitId c = make_circuit(16);  // pipe = 5, rtt = 10
  plane.start_transfer(1, c, 64, now_);
  const auto done = run(plane, 400);
  ASSERT_EQ(done.size(), 1u);
  // Effective bandwidth = window / rtt = 0.4 flits/cycle << 4.
  EXPECT_GT(done[0].delivered_at, 64u / 4u + 5u + 50u);
}

TEST_F(DataPlaneTest, FractionalBandwidthAccumulates) {
  // 0.5 flits/cycle: one flit every other cycle.
  DataPlane plane(circuits_, DataPlaneParams{0.5, 1.0, 32});
  const CircuitId c = make_circuit(1);  // pipe = 2
  plane.start_transfer(1, c, 8, now_);
  const auto done = run(plane, 64);
  ASSERT_EQ(done.size(), 1u);
  // 8 flits at 0.5/cycle = 16 cycles serialization (+pipe+ack).
  EXPECT_GE(done[0].delivered_at, 15u);
  EXPECT_LE(done[0].delivered_at, 20u);
}

TEST_F(DataPlaneTest, ConcurrentTransfersOnDistinctCircuits) {
  DataPlane plane(circuits_, DataPlaneParams{4.0, 4.0, 32});
  const CircuitId a = make_circuit(2);
  const CircuitId b = make_circuit(6);
  plane.start_transfer(1, a, 64, now_);
  plane.start_transfer(2, b, 64, now_);
  EXPECT_EQ(plane.active_transfers(), 2u);
  const auto done = run(plane, 100);
  EXPECT_EQ(done.size(), 2u);
  EXPECT_EQ(plane.flits_delivered(), 128u);
}

TEST_F(DataPlaneTest, FlitsDeliveredCounts) {
  DataPlane plane(circuits_, DataPlaneParams{4.0, 4.0, 32});
  const CircuitId c = make_circuit(2);
  plane.start_transfer(1, c, 10, now_);
  run(plane, 50);
  EXPECT_EQ(plane.flits_delivered(), 10u);
}

}  // namespace
}  // namespace wavesim::core
