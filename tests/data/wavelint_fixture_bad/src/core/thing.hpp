// Deliberately broken fixture for the wavelint exit-code contract tests
// (tests/CMakeLists.txt): Thing::cursor_ is neither serialized in
// Thing::snap() nor tagged [snap: skip], and thing.cpp iterates an
// unordered container without a [det: local] escape. wavelint must exit
// 1 on this tree naming both. Not part of the build.
namespace wavesim::core {
class Thing {
 public:
  void snap(snap::Archive& ar);
  std::vector<int> sorted_keys() const;

 private:
  int count_ = 0;
  int cursor_ = 0;
  std::unordered_map<int, int> table_;
};
}  // namespace wavesim::core
