// See thing.hpp: deliberately violates both wavelint contracts.
#include "core/thing.hpp"
namespace wavesim::core {
std::vector<int> Thing::sorted_keys() const {
  std::vector<int> out;
  for (const auto& [k, v] : table_) out.push_back(k);
  return out;
}
void Thing::snap(snap::Archive& ar) {
  ar.pod(count_);
}
}  // namespace wavesim::core
