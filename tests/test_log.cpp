// Logger smoke tests: level gating and formatting round-trip.
#include "sim/log.hpp"

#include <gtest/gtest.h>

namespace wavesim::sim {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, SetAndGetLevel) {
  LogLevelGuard guard;
  for (auto level : {LogLevel::kError, LogLevel::kWarn, LogLevel::kInfo,
                     LogLevel::kDebug, LogLevel::kTrace}) {
    set_log_level(level);
    EXPECT_EQ(log_level(), level);
  }
}

TEST(Log, EmitAtEveryLevelDoesNotCrash) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kTrace);
  testing::internal::CaptureStderr();
  log_error("e ", 1);
  log_warn("w ", 2.5);
  log_info("i ", "str");
  log_debug("d ", 'c');
  log_trace("t ", 42);
  const std::string captured = testing::internal::GetCapturedStderr();
  EXPECT_NE(captured.find("[error] e 1"), std::string::npos);
  EXPECT_NE(captured.find("[trace] t 42"), std::string::npos);
}

TEST(Log, MessagesAboveThresholdAreDropped) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kError);
  testing::internal::CaptureStderr();
  log_warn("should not appear");
  log_info("nor this");
  log_error("only this");
  const std::string captured = testing::internal::GetCapturedStderr();
  EXPECT_EQ(captured.find("should not appear"), std::string::npos);
  EXPECT_EQ(captured.find("nor this"), std::string::npos);
  EXPECT_NE(captured.find("only this"), std::string::npos);
}

}  // namespace
}  // namespace wavesim::sim
