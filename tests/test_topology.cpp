#include "topology/topology.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

namespace wavesim::topo {
namespace {

using K = KAryNCube;

TEST(Coord, LinearizeRoundTrip) {
  const std::vector<std::int32_t> radix{4, 3, 2};
  for (NodeId id = 0; id < 24; ++id) {
    EXPECT_EQ(linearize(delinearize(id, radix), radix), id);
  }
}

TEST(Coord, LinearizeDimensionZeroFastest) {
  const std::vector<std::int32_t> radix{4, 3};
  EXPECT_EQ(linearize({1, 0}, radix), 1);
  EXPECT_EQ(linearize({0, 1}, radix), 4);
  EXPECT_EQ(linearize({3, 2}, radix), 11);
}

TEST(Coord, LinearizeRejectsBadInput) {
  const std::vector<std::int32_t> radix{4, 3};
  EXPECT_THROW(linearize({1}, radix), std::invalid_argument);
  EXPECT_THROW(linearize({4, 0}, radix), std::out_of_range);
  EXPECT_THROW(linearize({-1, 0}, radix), std::out_of_range);
  EXPECT_THROW(delinearize(12, radix), std::out_of_range);
}

TEST(Coord, ToString) {
  EXPECT_EQ(to_string({1, 2}), "(1, 2)");
  EXPECT_EQ(to_string({7}), "(7)");
}

TEST(Topology, ConstructionValidation) {
  EXPECT_THROW(K({}, false), std::invalid_argument);
  EXPECT_THROW(K({1, 4}, false), std::invalid_argument);
  EXPECT_NO_THROW(K({2}, true));
}

TEST(Topology, BasicCounts) {
  K mesh({4, 4}, false);
  EXPECT_EQ(mesh.num_nodes(), 16);
  EXPECT_EQ(mesh.num_dims(), 2);
  EXPECT_EQ(mesh.num_ports(), 4);
  EXPECT_EQ(mesh.num_channels(), 64);
  K cube({2, 2, 2, 2}, true);  // 4-d hypercube
  EXPECT_EQ(cube.num_nodes(), 16);
  EXPECT_EQ(cube.num_ports(), 8);
}

TEST(Topology, PortMath) {
  EXPECT_EQ(K::port_of(0, true), 0);
  EXPECT_EQ(K::port_of(0, false), 1);
  EXPECT_EQ(K::port_of(2, true), 4);
  EXPECT_EQ(K::dim_of(5), 2);
  EXPECT_TRUE(K::is_positive(4));
  EXPECT_FALSE(K::is_positive(5));
  EXPECT_EQ(K::opposite(4), 5);
  EXPECT_EQ(K::opposite(5), 4);
}

TEST(Topology, MeshNeighbors) {
  K mesh({4, 4}, false);
  const NodeId origin = mesh.node_of({0, 0});
  EXPECT_EQ(mesh.neighbor(origin, K::port_of(0, true)), mesh.node_of({1, 0}));
  EXPECT_EQ(mesh.neighbor(origin, K::port_of(0, false)), kInvalidNode);
  EXPECT_EQ(mesh.neighbor(origin, K::port_of(1, false)), kInvalidNode);
  const NodeId corner = mesh.node_of({3, 3});
  EXPECT_EQ(mesh.neighbor(corner, K::port_of(0, true)), kInvalidNode);
  EXPECT_EQ(mesh.neighbor(corner, K::port_of(1, false)), mesh.node_of({3, 2}));
}

TEST(Topology, TorusWraps) {
  K torus({4, 4}, true);
  const NodeId origin = torus.node_of({0, 0});
  EXPECT_EQ(torus.neighbor(origin, K::port_of(0, false)), torus.node_of({3, 0}));
  EXPECT_EQ(torus.neighbor(torus.node_of({3, 1}), K::port_of(0, true)),
            torus.node_of({0, 1}));
}

TEST(Topology, NeighborSymmetry) {
  for (bool torus : {false, true}) {
    K t({4, 3}, torus);
    for (NodeId n = 0; n < t.num_nodes(); ++n) {
      for (PortId p = 0; p < t.num_ports(); ++p) {
        const NodeId m = t.neighbor(n, p);
        if (m == kInvalidNode) continue;
        EXPECT_EQ(t.neighbor(m, K::opposite(p)), n)
            << "n=" << n << " p=" << p << " torus=" << torus;
      }
    }
  }
}

TEST(Topology, MinOffsetsMesh) {
  K mesh({8, 8}, false);
  const auto off = mesh.min_offsets(mesh.node_of({1, 6}), mesh.node_of({5, 2}));
  EXPECT_EQ(off[0], 4);
  EXPECT_EQ(off[1], -4);
}

TEST(Topology, MinOffsetsTorusTakesShortWay) {
  K torus({8, 8}, true);
  const auto off = torus.min_offsets(torus.node_of({0, 0}), torus.node_of({7, 5}));
  EXPECT_EQ(off[0], -1);  // wrap is shorter than +7
  EXPECT_EQ(off[1], -3);
}

TEST(Topology, MinOffsetsTorusTieGoesPositive) {
  K torus({8, 8}, true);
  const auto off = torus.min_offsets(torus.node_of({0, 0}), torus.node_of({4, 0}));
  EXPECT_EQ(off[0], 4);  // |4| == |-4|, positive wins
}

TEST(Topology, DistanceProperties) {
  for (bool torus : {false, true}) {
    K t({5, 4}, torus);
    for (NodeId a = 0; a < t.num_nodes(); ++a) {
      EXPECT_EQ(t.distance(a, a), 0);
      for (NodeId b = 0; b < t.num_nodes(); ++b) {
        EXPECT_EQ(t.distance(a, b), t.distance(b, a));
        if (a != b) {
          EXPECT_GE(t.distance(a, b), 1);
        }
      }
    }
  }
}

TEST(Topology, TorusDiameter) {
  K torus({8, 8}, true);
  std::int32_t diameter = 0;
  for (NodeId a = 0; a < torus.num_nodes(); ++a) {
    for (NodeId b = 0; b < torus.num_nodes(); ++b) {
      diameter = std::max(diameter, torus.distance(a, b));
    }
  }
  EXPECT_EQ(diameter, 8);  // 4 + 4
}

TEST(Topology, MinimalPortsReduceDistance) {
  for (bool torus : {false, true}) {
    K t({4, 4}, torus);
    for (NodeId a = 0; a < t.num_nodes(); ++a) {
      for (NodeId b = 0; b < t.num_nodes(); ++b) {
        if (a == b) {
          EXPECT_TRUE(t.minimal_ports(a, b).empty());
          continue;
        }
        const auto ports = t.minimal_ports(a, b);
        EXPECT_FALSE(ports.empty());
        for (PortId p : ports) {
          const NodeId next = t.neighbor(a, p);
          ASSERT_NE(next, kInvalidNode);
          EXPECT_EQ(t.distance(next, b), t.distance(a, b) - 1);
        }
      }
    }
  }
}

TEST(Topology, WalkingMinimalPortsReachesDestination) {
  K torus({4, 4, 4}, true);
  for (NodeId a = 0; a < torus.num_nodes(); a += 7) {
    for (NodeId b = 0; b < torus.num_nodes(); b += 5) {
      NodeId cur = a;
      int steps = 0;
      while (cur != b) {
        const auto ports = torus.minimal_ports(cur, b);
        ASSERT_FALSE(ports.empty());
        cur = torus.neighbor(cur, ports.front());
        ASSERT_LE(++steps, torus.distance(a, b));
      }
      EXPECT_EQ(steps, torus.distance(a, b));
    }
  }
}

TEST(Topology, DatelineOnlyAtWrapEdges) {
  K torus({4, 4}, true);
  EXPECT_TRUE(torus.crosses_dateline(torus.node_of({3, 1}), K::port_of(0, true)));
  EXPECT_TRUE(torus.crosses_dateline(torus.node_of({0, 1}), K::port_of(0, false)));
  EXPECT_FALSE(torus.crosses_dateline(torus.node_of({1, 1}), K::port_of(0, true)));
  EXPECT_FALSE(torus.crosses_dateline(torus.node_of({3, 1}), K::port_of(0, false)));
  K mesh({4, 4}, false);
  for (NodeId n = 0; n < mesh.num_nodes(); ++n) {
    for (PortId p = 0; p < mesh.num_ports(); ++p) {
      EXPECT_FALSE(mesh.crosses_dateline(n, p));
    }
  }
}

TEST(Topology, ChannelIndexDense) {
  K t({3, 3}, true);
  std::set<std::int32_t> seen;
  for (NodeId n = 0; n < t.num_nodes(); ++n) {
    for (PortId p = 0; p < t.num_ports(); ++p) {
      const auto idx = t.channel_index(n, p);
      EXPECT_GE(idx, 0);
      EXPECT_LT(idx, t.num_channels());
      seen.insert(idx);
    }
  }
  EXPECT_EQ(static_cast<std::int32_t>(seen.size()), t.num_channels());
}

TEST(Topology, HypercubeDistanceIsHamming) {
  K cube({2, 2, 2}, true);  // 3-cube; radix 2 wrap == same single link
  EXPECT_EQ(cube.distance(cube.node_of({0, 0, 0}), cube.node_of({1, 1, 1})), 3);
  EXPECT_EQ(cube.distance(cube.node_of({0, 1, 0}), cube.node_of({0, 1, 1})), 1);
}

}  // namespace
}  // namespace wavesim::topo
