// The static verifier (src/analysis/): extended dependency graph of
// Theorems 1-4, witness validity, livelock bounds, design-space
// enumeration and the wavesim.analysis.v1 report.
//
// The checker must be non-vacuous: for every blocking rule the theorems
// forbid, flipping that rule alone must produce a cycle whose witness is
// edge-by-edge real. The "runtime" direction (a mutated dateline breaks
// the escape CDG) is tested here with a stub routing that replicates the
// WAVESIM_MUTATE_ESCAPE mutation, and in CI against the actually mutated
// build via wavecheck's exit code.
#include "analysis/analyze.hpp"

#include <gtest/gtest.h>

#include <set>

#include "analysis/bounds.hpp"
#include "analysis/extended_graph.hpp"
#include "core/protocols.hpp"
#include "routing/cdg.hpp"
#include "verify/structural.hpp"

namespace wavesim::analysis {
namespace {

using topo::KAryNCube;

sim::SimConfig clrp_torus() {
  sim::SimConfig config = sim::SimConfig::default_torus();
  config.topology.radix = {4, 4};
  return config;
}

/// DOR-like minimal routing that ignores the torus dateline: every hop
/// uses VC class 0, exactly what the WAVESIM_MUTATE_ESCAPE build does to
/// the real algorithm. Its escape CDG is cyclic on any torus ring.
class BrokenDatelineRouting final : public route::RoutingAlgorithm {
 public:
  explicit BrokenDatelineRouting(const KAryNCube& topology)
      : topology_(topology) {}

  std::vector<route::RouteCandidate> route(NodeId node, PortId, VcId,
                                           NodeId dest) const override {
    const PortId port = topology_.minimal_ports(node, dest).front();
    return {route::RouteCandidate{port, 0, /*escape=*/true}};
  }
  std::int32_t min_vcs() const noexcept override { return 1; }
  bool minimal() const noexcept override { return true; }
  const char* name() const noexcept override { return "broken-dateline"; }

 private:
  const KAryNCube& topology_;
};

/// Every consecutive hop pair of the witness (including the wrap-around)
/// must be a real edge; each hop must decode back to its own vertex.
template <typename Graph>
void expect_valid_witness(const Graph& graph,
                          const verify::CycleWitness& witness) {
  ASSERT_FALSE(witness.hops.empty());
  for (std::size_t i = 0; i < witness.hops.size(); ++i) {
    const auto& hop = witness.hops[i];
    const auto& next = witness.hops[(i + 1) % witness.hops.size()];
    EXPECT_TRUE(graph.has_edge(hop.vertex, next.vertex))
        << witness.describe() << " breaks between " << hop.name << " and "
        << next.name;
    EXPECT_FALSE(hop.name.empty());
  }
}

TEST(ExtendedGraph, VertexDecodeRoundTrips) {
  KAryNCube torus({4, 4}, true);
  ExtendedGraph graph(torus, 2, 2);
  EXPECT_EQ(graph.num_vertices(), torus.num_channels() * (2 + 2 + 2));
  std::set<std::int32_t> seen;
  for (const Layer layer :
       {Layer::kWormhole, Layer::kControl, Layer::kCircuit}) {
    for (NodeId n = 0; n < torus.num_nodes(); ++n) {
      for (PortId p = 0; p < torus.num_ports(); ++p) {
        for (std::int32_t minor = 0; minor < 2; ++minor) {
          const std::int32_t v = graph.vertex(layer, n, p, minor);
          EXPECT_TRUE(seen.insert(v).second) << "vertex ids collide";
          const verify::WitnessHop hop = graph.decode(v);
          EXPECT_EQ(hop.vertex, v);
          EXPECT_EQ(hop.node, n);
          EXPECT_EQ(hop.port, p);
          EXPECT_EQ(hop.index, minor);
        }
      }
    }
  }
  EXPECT_EQ(static_cast<std::int32_t>(seen.size()), graph.num_vertices());
  EXPECT_THROW(graph.vertex(Layer::kWormhole, 0, 0, 2), std::out_of_range);
  EXPECT_THROW(graph.decode(graph.num_vertices()), std::out_of_range);
}

TEST(ExtendedGraph, HopNamesCarryTheLayer) {
  KAryNCube mesh({2, 2}, false);
  ExtendedGraph graph(mesh, 1, 1);
  EXPECT_EQ(graph.decode(graph.vertex(Layer::kWormhole, 1, 2, 0)).name,
            "wh n1:p2:vc0");
  EXPECT_EQ(graph.decode(graph.vertex(Layer::kControl, 1, 2, 0)).name,
            "ctl n1:p2:s0");
  EXPECT_EQ(graph.decode(graph.vertex(Layer::kCircuit, 1, 2, 0)).name,
            "est n1:p2:s0");
}

TEST(ExtendedGraph, NormalClrpRulesAreAcyclic) {
  const sim::SimConfig config = clrp_torus();
  KAryNCube torus(config.topology.radix, true);
  const auto routing = route::make_routing(config.router.routing, torus,
                                           config.router.wormhole_vcs);
  const auto graph =
      build_extended_graph(torus, *routing, config.router.wormhole_vcs,
                           config.router.wave_switches,
                           WaitRules::rules_for(config));
  EXPECT_GT(graph.num_edges(), 0);
  EXPECT_TRUE(graph.find_cycle().empty());
}

// Flipping any one forbidden rule must produce a cycle with a valid
// witness — the non-vacuity proof for the checker.
TEST(ExtendedGraph, EachForbiddenRuleProducesAWitnessedCycle) {
  const sim::SimConfig config = clrp_torus();
  KAryNCube torus(config.topology.radix, true);
  const auto routing = route::make_routing(config.router.routing, torus,
                                           config.router.wormhole_vcs);
  const auto broken_rules = [] {
    WaitRules probes_wait;
    probes_wait.probes_wait_on_control = true;
    WaitRules force_establishing;
    force_establishing.force_waits_on_established = true;
    force_establishing.force_waits_on_establishing = true;
    WaitRules releases;
    releases.force_waits_on_established = true;
    releases.releases_block = true;
    return std::vector<WaitRules>{probes_wait, force_establishing, releases};
  }();
  for (const WaitRules& rules : broken_rules) {
    const auto graph =
        build_extended_graph(torus, *routing, config.router.wormhole_vcs,
                             config.router.wave_switches, rules);
    const auto cycle = graph.find_cycle();
    ASSERT_FALSE(cycle.empty());
    expect_valid_witness(graph, graph.witness(cycle));
  }
}

TEST(ExtendedGraph, BrokenRuleViolationSurfacesInAnalyzeConfig) {
  WaitRules rules;
  rules.force_waits_on_established = true;
  rules.force_waits_on_establishing = true;
  const ConfigReport report = analyze_config(clrp_torus(), rules);
  EXPECT_FALSE(report.ok());
  bool wait_graph_violated = false;
  for (const auto& row : report.rows) {
    if (row.id == "wait-graph-acyclic" &&
        row.status == CheckStatus::kViolation) {
      wait_graph_violated = true;
      EXPECT_FALSE(row.witness.hops.empty());
      EXPECT_EQ(row.witness.graph, "extended");
    }
    if (row.id == "force-waits-only-on-acked") {
      EXPECT_EQ(row.status, CheckStatus::kViolation);
    }
  }
  EXPECT_TRUE(wait_graph_violated);
}

TEST(ExtendedGraph, MutatedDatelineYieldsWitnessInBothGraphs) {
  // The WAVESIM_MUTATE_ESCAPE mutation, replicated by a stub so the
  // normal build can exercise the witness path end to end.
  KAryNCube torus({4, 4}, true);
  BrokenDatelineRouting broken(torus);

  const auto cdg = route::build_cdg(torus, broken, 1, /*escape_only=*/true);
  const auto cdg_cycle = cdg.find_cycle();
  ASSERT_FALSE(cdg_cycle.empty());
  const verify::CycleWitness cdg_witness =
      verify::escape_cycle_witness(cdg, cdg_cycle);
  EXPECT_EQ(cdg_witness.graph, "escape-cdg");
  expect_valid_witness(cdg, cdg_witness);

  const auto extended = build_extended_graph(torus, broken, 1, 1,
                                             WaitRules{});
  const auto ext_cycle = extended.find_cycle();
  ASSERT_FALSE(ext_cycle.empty());
  expect_valid_witness(extended, extended.witness(ext_cycle));
}

TEST(StructuralWitness, ValidConfigsCarryNoWitness) {
  for (const sim::SimConfig& config :
       {sim::SimConfig::small_mesh(), sim::SimConfig::default_torus(),
        sim::SimConfig::wormhole_baseline()}) {
    const verify::CheckResult result = verify::check_escape_acyclic(config);
    EXPECT_TRUE(result.ok());
    EXPECT_TRUE(result.witnesses.empty());
  }
}

TEST(StructuralWitness, DescribeTruncatesLongCycles) {
  verify::CycleWitness witness;
  witness.graph = "escape-cdg";
  for (int i = 0; i < 6; ++i) {
    verify::WitnessHop hop;
    hop.vertex = i;
    hop.name = "v" + std::to_string(i);
    witness.hops.push_back(hop);
  }
  EXPECT_EQ(witness.describe(), "v0 -> v1 -> v2 -> v3 -> v4 -> v5 -> v0");
  EXPECT_EQ(witness.describe(2), "v0 -> v1 -> ... (4 more) -> v0");
}

TEST(Bounds, MatchTheSetupSequencerExactly) {
  // The attempt cap must equal what the protocol sequencer actually does:
  // run each variant's sequencer to exhaustion and compare.
  const KAryNCube torus({4, 4}, true);
  struct Case {
    sim::ProtocolKind protocol;
    sim::ClrpVariant variant;
    core::SetupSequencer::Mode mode;
  };
  for (const Case& c : {Case{sim::ProtocolKind::kClrp, sim::ClrpVariant::kFull,
                             core::SetupSequencer::Mode::kClrp},
                        Case{sim::ProtocolKind::kClrp,
                             sim::ClrpVariant::kForceFirst,
                             core::SetupSequencer::Mode::kClrp},
                        Case{sim::ProtocolKind::kClrp,
                             sim::ClrpVariant::kSingleSwitch,
                             core::SetupSequencer::Mode::kClrp},
                        Case{sim::ProtocolKind::kCarp, sim::ClrpVariant::kFull,
                             core::SetupSequencer::Mode::kCarp}}) {
    for (const std::int32_t k : {1, 2, 3}) {
      sim::SimConfig config = sim::SimConfig::default_torus();
      config.protocol.protocol = c.protocol;
      config.protocol.clrp_variant = c.variant;
      config.router.wave_switches = k;
      const LivelockBounds bounds = livelock_bounds(torus, config);
      core::SetupSequencer seq(c.mode, c.variant, k, 0);
      while (seq.advance()) {
      }
      EXPECT_EQ(bounds.attempt_cap, seq.attempts_made())
          << to_string(c.protocol) << "/" << to_string(c.variant)
          << " k=" << k;
      EXPECT_TRUE(bounds.attempts_bounded);
    }
  }
}

TEST(Bounds, MirrorTheRuntimeOracleCaps) {
  // src/check/oracle.cpp derives its per-attempt caps from these bounds;
  // the invariants it enforces are misroutes <= budget + backtracks and
  // backtracks <= directed channel count.
  const KAryNCube torus({8, 8}, true);
  sim::SimConfig config = sim::SimConfig::default_torus();
  config.protocol.max_misroutes = 3;
  const LivelockBounds bounds = livelock_bounds(torus, config);
  EXPECT_EQ(bounds.misroute_budget, 3);
  EXPECT_EQ(bounds.backtrack_cap, torus.num_channels());
  EXPECT_EQ(bounds.probe_step_cap, 2 * torus.num_channels());
}

TEST(Bounds, PcsOnlyIsHonestlyUnbounded) {
  const KAryNCube torus({4, 4}, true);
  sim::SimConfig config = sim::SimConfig::default_torus();
  config.protocol.pcs_only = true;
  const LivelockBounds bounds = livelock_bounds(torus, config);
  EXPECT_FALSE(bounds.attempts_bounded);
  EXPECT_NE(bounds.describe().find("unbounded"), std::string::npos);

  config.topology.radix = {4, 4};
  const ConfigReport report = analyze_config(config);
  EXPECT_TRUE(report.ok());
  for (const auto& row : report.rows) {
    if (row.id == "livelock-bounds") {
      EXPECT_EQ(row.status, CheckStatus::kSkipped);
      EXPECT_NE(row.detail.find("watchdog"), std::string::npos);
    }
  }
}

TEST(Analyze, CanonicalConfigsPass) {
  for (const sim::SimConfig& config :
       {sim::SimConfig::small_mesh(), sim::SimConfig::default_torus(),
        sim::SimConfig::wormhole_baseline()}) {
    const ConfigReport report = analyze_config(config);
    EXPECT_TRUE(report.ok()) << report.id;
    EXPECT_EQ(report.rows.size(), 7u);
    EXPECT_FALSE(report.id.empty());
  }
}

TEST(Analyze, WormholeBaselineSkipsProtocolRows) {
  const ConfigReport report =
      analyze_config(sim::SimConfig::wormhole_baseline());
  EXPECT_TRUE(report.ok());
  // Honest skips, not silent oks: the baseline has no probes to check.
  EXPECT_EQ(report.count(CheckStatus::kSkipped), 4u);
}

TEST(Analyze, EnumerationIsValidAndLabelsAreUnique) {
  const auto configs = enumerate_configs();
  ASSERT_GT(configs.size(), 100u);
  std::set<std::string> labels;
  for (const auto& config : configs) {
    EXPECT_NO_THROW(config.validate());
    EXPECT_TRUE(labels.insert(config_label(config)).second)
        << "duplicate label " << config_label(config);
  }
  EXPECT_EQ(labels.size(), configs.size());
}

TEST(Analyze, WholeDesignSpaceIsViolationFree) {
  for (const auto& config : enumerate_configs()) {
    const ConfigReport report = analyze_config(config);
    EXPECT_TRUE(report.ok()) << report.id;
  }
}

TEST(Analyze, EverySkippedRowNamesItsCoveringOracle) {
  // The no-silently-uncovered-premise contract: a skipped row must either
  // name the runtime oracle / BMC row that covers it, or say why the
  // premise is inapplicable; runtime-covered ok rows must also name their
  // exhaustive BMC counterpart.
  const std::vector<std::string> oracles = {"simcheck", "fsck", "watchdog",
                                            "bmc-", "MB-m event oracle"};
  const std::vector<std::string> inapplicable = {
      "no probes", "no circuits", "never sets Force", "nothing falls back"};
  for (const auto& config : enumerate_configs()) {
    const ConfigReport report = analyze_config(config);
    for (const auto& row : report.rows) {
      if (row.status != CheckStatus::kSkipped) continue;
      bool covered = false;
      for (const auto& needle : oracles) {
        covered = covered || row.detail.find(needle) != std::string::npos;
      }
      for (const auto& needle : inapplicable) {
        covered = covered || row.detail.find(needle) != std::string::npos;
      }
      EXPECT_TRUE(covered) << report.id << " row " << row.id
                           << " skipped without naming coverage: "
                           << row.detail;
    }
  }
}

TEST(Analyze, RuntimeCoveredRowsNameTheirBmcCounterpart) {
  // The three rows the BMC now closes exhaustively must say so wherever
  // they pass only by delegation to a runtime oracle.
  const sim::SimConfig config = clrp_torus();
  const ConfigReport report = analyze_config(config);
  for (const auto& row : report.rows) {
    if (row.id != "mbm-no-wait" && row.id != "force-waits-only-on-acked" &&
        row.id != "releases-wait-free") {
      continue;
    }
    EXPECT_EQ(row.status, CheckStatus::kOk) << row.id;
    EXPECT_NE(row.detail.find("bmc-"), std::string::npos)
        << row.id << ": " << row.detail;
  }
}

TEST(Analyze, BoundedOutHasItsOwnStatusString) {
  EXPECT_STREQ(to_string(CheckStatus::kBoundedOut), "bounded-out");
  EXPECT_STREQ(to_string(CheckStatus::kOk), "ok");
}

TEST(Analyze, ReportJsonHasTheV1Schema) {
  std::vector<ConfigReport> reports;
  reports.push_back(analyze_config(sim::SimConfig::small_mesh()));
  WaitRules broken;
  broken.force_waits_on_established = true;
  broken.force_waits_on_establishing = true;
  reports.push_back(analyze_config(clrp_torus(), broken));

  const sim::JsonValue doc = report_to_json(reports);
  EXPECT_EQ(doc.at("schema").as_string(), "wavesim.analysis.v1");
  EXPECT_EQ(doc.at("num_configs").as_int(), 2);
  EXPECT_EQ(doc.at("num_ok").as_int(), 1);
  EXPECT_GT(doc.at("num_violations").as_int(), 0);
  const sim::JsonValue& configs = doc.at("configs");
  ASSERT_EQ(configs.size(), 2u);
  const sim::JsonValue& good = configs.at(std::size_t{0});
  EXPECT_TRUE(good.at("ok").as_bool());
  EXPECT_EQ(good.at("rows").size(), 7u);
  EXPECT_TRUE(good.at("bounds").at("attempts_bounded").as_bool());
  const sim::JsonValue& bad = configs.at(std::size_t{1});
  EXPECT_FALSE(bad.at("ok").as_bool());
  bool found_witness = false;
  for (const auto& row : bad.at("rows").elements()) {
    if (const sim::JsonValue* witness = row.find("witness")) {
      found_witness = true;
      EXPECT_EQ(witness->at("graph").as_string(), "extended");
      EXPECT_GT(witness->at("hops").size(), 0u);
      const auto& hop = witness->at("hops").at(std::size_t{0});
      EXPECT_FALSE(hop.at("name").as_string().empty());
      EXPECT_GE(hop.at("node").as_int(), 0);
    }
  }
  EXPECT_TRUE(found_witness);

  // Round-trip: the document must survive its own serializer/parser.
  const sim::JsonValue reparsed = sim::JsonValue::parse(doc.dump(2));
  EXPECT_EQ(reparsed.dump(2), doc.dump(2));
}

TEST(Analyze, RulesForConfigMatchTheProtocols) {
  sim::SimConfig config = sim::SimConfig::default_torus();
  EXPECT_EQ(WaitRules::rules_for(config).force_waits_on_established, true);
  config.protocol.protocol = sim::ProtocolKind::kCarp;
  EXPECT_EQ(WaitRules::rules_for(config), WaitRules{});
  config.protocol.protocol = sim::ProtocolKind::kWormholeOnly;
  config.router.wave_switches = 0;
  EXPECT_EQ(WaitRules::rules_for(config), WaitRules{});
}

}  // namespace
}  // namespace wavesim::analysis
