// Structural deadlock-freedom checks: the premise of the paper's Theorems
// 1 and 2 is that the wormhole routing algorithm is deadlock-free. We
// verify it with channel-dependency-graph acyclicity (Dally & Seitz for
// deterministic routing; Duato's escape-subnetwork condition for adaptive).
#include "routing/cdg.hpp"

#include <gtest/gtest.h>

#include "routing/dor.hpp"
#include "routing/duato.hpp"

namespace wavesim::route {
namespace {

using topo::KAryNCube;

TEST(Cdg, GraphBasics) {
  KAryNCube mesh({2, 2}, false);
  ChannelDependencyGraph g(mesh, 2);
  EXPECT_EQ(g.num_vertices(), mesh.num_channels() * 2);
  EXPECT_TRUE(g.acyclic());
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_TRUE(g.acyclic());
  g.add_edge(2, 0);
  EXPECT_FALSE(g.acyclic());
  const auto cycle = g.find_cycle();
  EXPECT_EQ(cycle.size(), 3u);
}

TEST(Cdg, SelfLoopIsACycle) {
  KAryNCube mesh({2, 2}, false);
  ChannelDependencyGraph g(mesh, 1);
  g.add_edge(3, 3);
  EXPECT_FALSE(g.acyclic());
  EXPECT_EQ(g.find_cycle().size(), 1u);
}

TEST(Cdg, DorMeshIsAcyclic) {
  for (auto radix : {std::vector<std::int32_t>{4, 4},
                     std::vector<std::int32_t>{3, 3, 3},
                     std::vector<std::int32_t>{8, 2}}) {
    KAryNCube mesh(radix, false);
    DimensionOrderRouting dor(mesh, 1);
    const auto g = build_cdg(mesh, dor, 1, /*escape_only=*/false);
    EXPECT_GT(g.num_edges(), 0);
    EXPECT_TRUE(g.acyclic()) << "mesh radix[0]=" << radix[0];
  }
}

TEST(Cdg, DorTorusWithDatelinesIsAcyclic) {
  for (auto radix : {std::vector<std::int32_t>{4, 4},
                     std::vector<std::int32_t>{5, 3},
                     std::vector<std::int32_t>{3, 3, 3}}) {
    KAryNCube torus(radix, true);
    DimensionOrderRouting dor(torus, 2);
    const auto g = build_cdg(torus, dor, 2, /*escape_only=*/false);
    EXPECT_GT(g.num_edges(), 0);
    EXPECT_TRUE(g.acyclic()) << "torus radix[0]=" << radix[0];
  }
}

TEST(Cdg, TorusWithoutDatelinesHasCycle) {
  // Deliberately mis-configured routing: DOR on a torus where both VCs are
  // in the same class (simulated by a mesh-style DOR that ignores the
  // dateline). We emulate it by building a ring CDG by hand to document
  // why the dateline classes exist.
  KAryNCube ring({4}, true);
  ChannelDependencyGraph g(ring, 1);
  // All-positive traversal around the ring: channel at node i depends on
  // channel at node i+1 mod 4.
  for (NodeId n = 0; n < 4; ++n) {
    const auto from = g.vertex(n, KAryNCube::port_of(0, true), 0);
    const auto to =
        g.vertex(ring.neighbor(n, KAryNCube::port_of(0, true)),
                 KAryNCube::port_of(0, true), 0);
    g.add_edge(from, to);
  }
  EXPECT_FALSE(g.acyclic());
}

TEST(Cdg, DuatoEscapeSubnetIsAcyclicOnMesh) {
  KAryNCube mesh({4, 4}, false);
  DuatoAdaptiveRouting duato(mesh, 3);
  const auto escape = build_cdg(mesh, duato, 3, /*escape_only=*/true);
  EXPECT_GT(escape.num_edges(), 0);
  EXPECT_TRUE(escape.acyclic());
}

TEST(Cdg, DuatoEscapeSubnetIsAcyclicOnTorus) {
  for (auto radix : {std::vector<std::int32_t>{4, 4},
                     std::vector<std::int32_t>{5, 5},
                     std::vector<std::int32_t>{3, 3, 3}}) {
    KAryNCube torus(radix, true);
    DuatoAdaptiveRouting duato(torus, 4);
    const auto escape = build_cdg(torus, duato, 4, /*escape_only=*/true);
    EXPECT_GT(escape.num_edges(), 0);
    EXPECT_TRUE(escape.acyclic()) << "torus radix[0]=" << radix[0];
  }
}

TEST(Cdg, DuatoFullRelationHasCyclesOnTorus) {
  // The full adaptive relation is allowed to contain cycles; only the
  // escape subnetwork must be acyclic (Duato's theorem). This documents
  // that the escape_only restriction is what carries the proof.
  KAryNCube torus({4, 4}, true);
  DuatoAdaptiveRouting duato(torus, 3);
  const auto full = build_cdg(torus, duato, 3, /*escape_only=*/false);
  EXPECT_FALSE(full.acyclic());
}

TEST(Cdg, DorFullEqualsEscape) {
  // For a deterministic algorithm every candidate is an escape candidate,
  // so the two build modes agree.
  KAryNCube torus({4, 4}, true);
  DimensionOrderRouting dor(torus, 2);
  const auto full = build_cdg(torus, dor, 2, false);
  const auto escape = build_cdg(torus, dor, 2, true);
  EXPECT_EQ(full.num_edges(), escape.num_edges());
  EXPECT_TRUE(full.acyclic());
  EXPECT_TRUE(escape.acyclic());
}

TEST(Cdg, DuatoEscapeAcyclicOn3DMesh) {
  KAryNCube mesh({3, 3, 3}, false);
  DuatoAdaptiveRouting duato(mesh, 2);  // 1 escape + 1 adaptive on a mesh
  const auto escape = build_cdg(mesh, duato, 2, /*escape_only=*/true);
  EXPECT_GT(escape.num_edges(), 0);
  EXPECT_TRUE(escape.acyclic());
  // The *full* relation is cyclic even on a mesh: fully adaptive minimal
  // routing permits all turns, and opposing turn pairs close CDG cycles
  // without any wraparound (this is exactly why turn models prohibit
  // turns, and why Duato needs the escape channels the previous assertion
  // verified).
  const auto full = build_cdg(mesh, duato, 2, /*escape_only=*/false);
  EXPECT_FALSE(full.acyclic());
}

TEST(Cdg, DorOnHypercubeIsAcyclic) {
  KAryNCube cube({2, 2, 2, 2}, true);  // radix-2 "torus" == hypercube
  DimensionOrderRouting dor(cube, 2);
  const auto g = build_cdg(cube, dor, 2, false);
  EXPECT_GT(g.num_edges(), 0);
  EXPECT_TRUE(g.acyclic());
}

TEST(Cdg, LargerRadixStillAcyclic) {
  KAryNCube torus({8, 8}, true);
  DimensionOrderRouting dor(torus, 2);
  EXPECT_TRUE(build_cdg(torus, dor, 2, false).acyclic());
  DuatoAdaptiveRouting duato(torus, 3);
  EXPECT_TRUE(build_cdg(torus, duato, 3, true).acyclic());
}

}  // namespace
}  // namespace wavesim::route
