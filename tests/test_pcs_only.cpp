// PCS-only wave router (paper section 2: "The simplest version of wave
// router is obtained by setting k=1 and w=0. In this case, all the
// messages use PCS."). No wormhole fallback exists: failed setups retry
// after a backoff and every message ultimately rides a circuit.
#include <gtest/gtest.h>

#include "core/simulation.hpp"
#include "sim/rng.hpp"
#include "verify/delivery.hpp"
#include "verify/fsck.hpp"

namespace wavesim::core {
namespace {

sim::SimConfig pcs_only_config(std::int32_t k = 2) {
  sim::SimConfig cfg;
  cfg.topology.radix = {4, 4};
  cfg.topology.torus = true;
  cfg.protocol.protocol = sim::ProtocolKind::kClrp;
  cfg.protocol.pcs_only = true;
  cfg.router.wave_switches = k;
  return cfg;
}

TEST(PcsOnly, ConfigValidation) {
  sim::SimConfig cfg = pcs_only_config();
  EXPECT_NO_THROW(cfg.validate());
  cfg.protocol.protocol = sim::ProtocolKind::kCarp;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = pcs_only_config();
  cfg.protocol.min_circuit_message_flits = 8;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(PcsOnly, EveryMessageUsesACircuit) {
  Simulation sim(pcs_only_config());
  sim::Rng rng{3};
  std::uint64_t sent = 0;
  for (int i = 0; i < 60; ++i) {
    const NodeId s = static_cast<NodeId>(rng.next_below(16));
    NodeId d = static_cast<NodeId>(rng.next_below(16));
    if (d == s) d = (d + 1) % 16;
    sim.send(s, d, static_cast<std::int32_t>(4 + rng.next_below(60)));
    ++sent;
    sim.run(10);
  }
  ASSERT_TRUE(sim.run_until_delivered(2'000'000));
  const auto stats = sim.stats();
  EXPECT_EQ(stats.messages_delivered, sent);
  EXPECT_EQ(stats.wormhole_count, 0u);
  EXPECT_EQ(stats.fallback_count, 0u);
  EXPECT_EQ(stats.circuit_hit_count + stats.circuit_setup_count, sent);
}

TEST(PcsOnly, RetriesWhenCacheIsFull) {
  sim::SimConfig cfg = pcs_only_config();
  cfg.protocol.circuit_cache_entries = 1;  // every second dest must wait
  Simulation sim(cfg);
  // Two destinations from one source: the second setup must wait for the
  // first circuit to be evictable, then retry.
  sim.send(0, 5, 32);
  sim.send(0, 10, 32);
  ASSERT_TRUE(sim.run_until_delivered(2'000'000));
  EXPECT_EQ(sim.stats().messages_delivered, 2u);
  std::uint64_t retries = 0;
  for (NodeId n = 0; n < 16; ++n) {
    retries += sim.network().interface(n).stats().setup_retries;
  }
  EXPECT_GE(retries, 1u);
}

TEST(PcsOnly, SurvivesContentionStress) {
  sim::SimConfig cfg = pcs_only_config(/*k=*/1);  // single switch: brutal
  cfg.protocol.circuit_cache_entries = 2;
  Simulation sim(cfg);
  sim::Rng rng{11};
  std::uint64_t sent = 0;
  for (Cycle c = 0; c < 3000; ++c) {
    for (NodeId s = 0; s < 16; ++s) {
      if (!rng.chance(0.004)) continue;
      NodeId d = static_cast<NodeId>(rng.next_below(16));
      if (d == s) d = (d + 1) % 16;
      sim.send(s, d, static_cast<std::int32_t>(8 + rng.next_below(24)));
      ++sent;
    }
    sim.step();
  }
  ASSERT_TRUE(sim.run_until_delivered(4'000'000));
  EXPECT_EQ(sim.stats().messages_delivered, sent);
  const auto check = verify::check_delivery(sim.network());
  EXPECT_TRUE(check.ok()) << check.summary();
  const auto fsck = verify::check_control_state(sim.network());
  EXPECT_TRUE(fsck.ok()) << fsck.summary();
}

TEST(PcsOnly, InOrderPerPairByConstruction) {
  Simulation sim(pcs_only_config());
  for (int i = 0; i < 6; ++i) sim.send(0, 9, 16);
  ASSERT_TRUE(sim.run_until_delivered(1'000'000));
  const auto& log = sim.network().messages();
  for (MessageId id = 1; id < 6; ++id) {
    EXPECT_GT(log.at(id).delivered, log.at(id - 1).delivered);
  }
}

}  // namespace
}  // namespace wavesim::core
