// Wormhole message segmentation: packetization, multi-VC streaming and
// count-based reassembly at the destination.
#include <gtest/gtest.h>

#include "core/simulation.hpp"
#include "sim/rng.hpp"
#include "verify/delivery.hpp"

namespace wavesim::core {
namespace {

sim::SimConfig wormhole_with_packets(std::int32_t max_packet) {
  sim::SimConfig cfg = sim::SimConfig::wormhole_baseline();
  cfg.protocol.max_packet_flits = max_packet;
  return cfg;
}

std::uint64_t packets_sent(const Simulation& sim) {
  std::uint64_t total = 0;
  for (NodeId n = 0; n < sim.topology().num_nodes(); ++n) {
    total += sim.network().interface(n).stats().packets_sent;
  }
  return total;
}

TEST(Segmentation, RejectsNegativeConfig) {
  sim::SimConfig cfg = wormhole_with_packets(-1);
  EXPECT_THROW(Simulation{cfg}, std::invalid_argument);
}

TEST(Segmentation, SplitsLongMessages) {
  Simulation sim(wormhole_with_packets(16));
  sim.send(0, 9, 64);  // 4 packets
  sim.send(0, 9, 10);  // 1 packet (under the limit)
  sim.send(0, 9, 17);  // 2 packets (16 + 1)
  ASSERT_TRUE(sim.run_until_delivered(100000));
  EXPECT_EQ(packets_sent(sim), 7u);
  EXPECT_EQ(sim.stats().messages_delivered, 3u);
}

TEST(Segmentation, ZeroMeansWholeMessage) {
  Simulation sim(wormhole_with_packets(0));
  sim.send(0, 9, 200);
  ASSERT_TRUE(sim.run_until_delivered(100000));
  EXPECT_EQ(packets_sent(sim), 1u);
}

TEST(Segmentation, ExactMultipleProducesNoEmptyPacket) {
  Simulation sim(wormhole_with_packets(16));
  sim.send(0, 9, 32);
  ASSERT_TRUE(sim.run_until_delivered(100000));
  EXPECT_EQ(packets_sent(sim), 2u);
}

TEST(Segmentation, AllFlitsArriveExactlyOnce) {
  Simulation sim(wormhole_with_packets(8));
  sim.send(0, 27, 100);
  ASSERT_TRUE(sim.run_until_delivered(100000));
  const auto& rec = sim.network().messages().at(0);
  EXPECT_TRUE(rec.done);
  EXPECT_EQ(rec.flits_received, 100);
}

TEST(Segmentation, HeavyMixedTrafficConserved) {
  Simulation sim(wormhole_with_packets(12));
  sim::Rng rng{31};
  std::uint64_t sent = 0;
  for (Cycle c = 0; c < 3000; ++c) {
    for (NodeId s = 0; s < 64; ++s) {
      if (!rng.chance(0.005)) continue;
      NodeId d = static_cast<NodeId>(rng.next_below(64));
      if (d == s) d = (d + 1) % 64;
      sim.send(s, d, static_cast<std::int32_t>(1 + rng.next_below(96)));
      ++sent;
    }
    sim.step();
  }
  ASSERT_TRUE(sim.run_until_delivered(1'000'000));
  EXPECT_EQ(sim.stats().messages_delivered, sent);
  const auto check = verify::check_delivery(sim.network());
  EXPECT_TRUE(check.ok()) << check.summary();
}

TEST(Segmentation, PacketizationOverheadIsSmallOnAnIdleNetwork) {
  // The source link is the bottleneck (1 flit/cycle) either way, so
  // packetization must cost at most a few extra head-routing latencies.
  const std::int32_t length = 256;
  Simulation whole(wormhole_with_packets(0));
  whole.send(0, 4, length);  // 4 hops along x
  ASSERT_TRUE(whole.run_until_delivered(100000));
  Simulation packets(wormhole_with_packets(32));
  packets.send(0, 4, length);
  ASSERT_TRUE(packets.run_until_delivered(100000));
  EXPECT_LE(packets.network().messages().at(0).latency(),
            whole.network().messages().at(0).latency() + 30.0);
}

TEST(Segmentation, WorksUnderClrpForWormholeTraffic) {
  sim::SimConfig cfg = sim::SimConfig::default_torus();
  cfg.protocol.protocol = sim::ProtocolKind::kClrp;
  cfg.protocol.min_circuit_message_flits = 64;  // short ones go wormhole
  cfg.protocol.max_packet_flits = 8;
  Simulation sim(cfg);
  sim.send(0, 9, 32);   // wormhole, 4 packets
  sim.send(0, 9, 128);  // circuit
  ASSERT_TRUE(sim.run_until_delivered(100000));
  EXPECT_EQ(sim.stats().messages_delivered, 2u);
  EXPECT_EQ(packets_sent(sim), 4u);
}

}  // namespace
}  // namespace wavesim::core
