// End-to-end property sweep over topology shapes: every protocol must
// deliver randomized traffic on rings, meshes, asymmetric grids, 3-D tori
// and hypercubes, with all invariants intact.
#include <gtest/gtest.h>

#include "core/simulation.hpp"
#include "sim/rng.hpp"
#include "verify/delivery.hpp"
#include "verify/fsck.hpp"

namespace wavesim {
namespace {

struct TopoCase {
  const char* name;
  std::vector<std::int32_t> radix;
  bool torus;
  sim::ProtocolKind protocol;
};

std::string PrintCase(const ::testing::TestParamInfo<TopoCase>& info) {
  return info.param.name;
}

class TopologySweep : public ::testing::TestWithParam<TopoCase> {};

TEST_P(TopologySweep, RandomTrafficDeliversEverywhere) {
  const TopoCase& param = GetParam();
  sim::SimConfig cfg;
  cfg.topology.radix = param.radix;
  cfg.topology.torus = param.torus;
  cfg.protocol.protocol = param.protocol;
  if (param.protocol == sim::ProtocolKind::kWormholeOnly) {
    cfg.router.wave_switches = 0;
  }
  cfg.seed = 77;
  core::Simulation sim(cfg);
  const std::int32_t n = sim.topology().num_nodes();
  sim::Rng rng{1234};
  std::uint64_t sent = 0;
  for (int i = 0; i < 6 * n; ++i) {
    const NodeId s = static_cast<NodeId>(rng.next_below(n));
    NodeId d = static_cast<NodeId>(rng.next_below(n));
    if (d == s) d = (d + 1) % n;
    if (param.protocol == sim::ProtocolKind::kCarp && rng.chance(0.4)) {
      sim.establish_circuit(s, d);
    }
    sim.send(s, d, static_cast<std::int32_t>(2 + rng.next_below(30)));
    ++sent;
    sim.run(4);
  }
  ASSERT_TRUE(sim.run_until_delivered(2'000'000)) << param.name;
  EXPECT_EQ(sim.stats().messages_delivered, sent);
  const auto delivery = verify::check_delivery(sim.network());
  EXPECT_TRUE(delivery.ok()) << delivery.summary();
  const auto fsck = verify::check_control_state(sim.network());
  EXPECT_TRUE(fsck.ok()) << fsck.summary();
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TopologySweep,
    ::testing::Values(
        TopoCase{"ring8_clrp", {8}, true, sim::ProtocolKind::kClrp},
        TopoCase{"line8_wormhole", {8}, false, sim::ProtocolKind::kWormholeOnly},
        TopoCase{"mesh4x4_clrp", {4, 4}, false, sim::ProtocolKind::kClrp},
        TopoCase{"mesh4x4_carp", {4, 4}, false, sim::ProtocolKind::kCarp},
        TopoCase{"torus4x4_clrp", {4, 4}, true, sim::ProtocolKind::kClrp},
        TopoCase{"asym8x4_clrp", {8, 4}, true, sim::ProtocolKind::kClrp},
        TopoCase{"asym8x4mesh_wormhole", {8, 4}, false,
                 sim::ProtocolKind::kWormholeOnly},
        TopoCase{"torus3x3x3_clrp", {3, 3, 3}, true, sim::ProtocolKind::kClrp},
        TopoCase{"torus3x3x3_wormhole", {3, 3, 3}, true,
                 sim::ProtocolKind::kWormholeOnly},
        TopoCase{"hypercube16_clrp", {2, 2, 2, 2}, true,
                 sim::ProtocolKind::kClrp},
        TopoCase{"mesh2x2x2_carp", {2, 2, 2}, false, sim::ProtocolKind::kCarp}),
    PrintCase);

}  // namespace
}  // namespace wavesim
