// Golden regression: one fixed scenario with every counter pinned to its
// recorded value. The simulator is specified to be bit-deterministic for a
// given seed, so ANY change here is a behavior change -- if it is
// intentional (model improvement, protocol fix), update the constants in
// the same commit and say why.
#include <gtest/gtest.h>

#include "core/simulation.hpp"
#include "workload/generator.hpp"

namespace wavesim {
namespace {

TEST(Golden, ClrpWorkingSetScenario) {
  sim::SimConfig cfg = sim::SimConfig::default_torus();
  cfg.protocol.protocol = sim::ProtocolKind::kClrp;
  cfg.seed = 20260707;
  core::Simulation sim(cfg);
  load::WorkingSetTraffic pattern(sim.topology(), 3, 0.8, sim::Rng{99});
  load::BimodalSize sizes(8, 96, 0.4);
  const auto r = load::run_open_loop(sim, pattern, sizes, /*load=*/0.08,
                                     /*warmup=*/1000, /*measure=*/4000,
                                     /*drain_cap=*/300000, /*seed=*/12345);
  const auto& s = r.stats;
  EXPECT_TRUE(r.drained);
  EXPECT_EQ(s.messages_offered, 455u);
  EXPECT_EQ(s.messages_delivered, 455u);
  EXPECT_EQ(sim.now(), 5182u);
  EXPECT_NEAR(s.latency_mean, 69.400000, 1e-6);
  EXPECT_DOUBLE_EQ(s.latency_p50, 49.0);
  EXPECT_DOUBLE_EQ(s.latency_p99, 280.0);
  EXPECT_NEAR(s.throughput_flits_per_node_cycle, 0.07061572, 1e-8);
  EXPECT_EQ(s.cache_hits, 153u);
  EXPECT_EQ(s.cache_misses, 423u);
  EXPECT_EQ(s.cache_evictions, 0u);
  EXPECT_EQ(s.probes_launched, 872u);
  EXPECT_EQ(s.probes_succeeded, 423u);
  EXPECT_EQ(s.probe_backtracks, 4689u);
  EXPECT_EQ(s.probe_misroutes, 2134u);
  EXPECT_EQ(s.release_requests, 359u);
  EXPECT_EQ(s.teardowns, 350u);
}

}  // namespace
}  // namespace wavesim
