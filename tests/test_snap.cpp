// Deterministic checkpoint/restore (src/snap): restore(snapshot(S)) then
// stepping N cycles must be bit-identical to stepping S directly — same
// section bytes, same digests, same experiment results — across engines,
// shard counts and lookahead windows, through probe setup, teardown and
// fault storms.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "snap/runstate.hpp"
#include "snap/snapshot.hpp"

namespace {

using namespace wavesim;

snap::RunSpec small_clrp_spec() {
  snap::RunSpec spec;
  spec.config = sim::SimConfig::small_mesh();
  spec.pattern = "working-set";
  spec.message_flits = 16;
  spec.offered_load = 0.20;
  spec.warmup = 600;
  spec.measure = 1200;
  spec.drain_cap = 60'000;
  spec.seed = 7;
  return spec;
}

snap::RunSpec torus_carp_spec() {
  snap::RunSpec spec;
  spec.config = sim::SimConfig::default_torus();
  spec.config.protocol.protocol = sim::ProtocolKind::kCarp;
  spec.pattern = "transpose";
  spec.message_flits = 32;
  spec.offered_load = 0.15;
  spec.warmup = 500;
  spec.measure = 1000;
  spec.drain_cap = 80'000;
  spec.seed = 21;
  return spec;
}

snap::RunSpec storm_spec() {
  snap::RunSpec spec;
  spec.config = sim::SimConfig::default_torus();
  spec.config.faults.storm.at = 900;
  spec.config.faults.storm.fraction = 0.25;
  spec.config.faults.storm.repair_after = 700;
  spec.pattern = "uniform";
  spec.message_flits = 24;
  spec.offered_load = 0.12;
  spec.warmup = 600;
  spec.measure = 1500;
  spec.drain_cap = 100'000;
  spec.seed = 5;
  return spec;
}

std::unique_ptr<core::StepEngine> par_engine(std::int32_t nodes,
                                             std::int32_t shards,
                                             Cycle lookahead) {
  engine::EngineConfig cfg;
  cfg.kind = engine::EngineKind::kPar;
  cfg.shards = shards;
  cfg.lookahead = lookahead;
  return engine::make_engine(cfg, nodes);
}

/// Drive to completion and return the final full-state digest.
std::uint64_t finish(snap::CheckpointableRun& run) {
  while (!run.done()) run.advance(1'000'000);
  return run.checkpoint().digest();
}

void expect_same_result(const load::ExperimentResult& a,
                        const load::ExperimentResult& b) {
  EXPECT_EQ(a.offered_messages, b.offered_messages);
  EXPECT_EQ(a.drained, b.drained);
  EXPECT_EQ(a.cycles_total, b.cycles_total);
  EXPECT_EQ(a.max_stalled, b.max_stalled);
  EXPECT_EQ(a.watchdog_verdict, b.watchdog_verdict);
  EXPECT_EQ(a.stats.messages_delivered, b.stats.messages_delivered);
  EXPECT_EQ(a.stats.flits_delivered, b.stats.flits_delivered);
  // Latencies are deterministic sums of integers: bitwise equality.
  EXPECT_EQ(a.stats.latency_mean, b.stats.latency_mean);
  EXPECT_EQ(a.stats.latency_max, b.stats.latency_max);
  EXPECT_EQ(a.stats.probes_launched, b.stats.probes_launched);
  EXPECT_EQ(a.stats.cache_hits, b.stats.cache_hits);
  EXPECT_EQ(a.stats.links_failed, b.stats.links_failed);
  EXPECT_EQ(a.stats.transfers_aborted, b.stats.transfers_aborted);
}

/// The core property: checkpoint at `cut`, restore into a fresh run, and
/// both the uninterrupted original and the restored copy must agree on
/// every subsequent checkpoint digest and on the final result.
void check_round_trip(const snap::RunSpec& spec, Cycle cut) {
  snap::CheckpointableRun original(spec);
  original.advance(cut);
  snap::Snapshot at_cut = original.checkpoint();

  // Serialization itself must round-trip byte-exactly.
  snap::Snapshot decoded = snap::Snapshot::decode(at_cut.encode());
  EXPECT_EQ(decoded.digest(), at_cut.digest());

  snap::CheckpointableRun restored(decoded);
  EXPECT_EQ(restored.now(), original.now());
  EXPECT_EQ(restored.checkpoint().digest(), at_cut.digest());

  // March both in mismatched slice sizes: slicing must not matter.
  Cycle slice = 1;
  while (!original.done() || !restored.done()) {
    original.advance(slice);
    restored.advance(2 * slice + 1);
    restored.advance(0);
    while (restored.now() < original.now() && !restored.done()) {
      restored.advance(original.now() - restored.now());
    }
    while (original.now() < restored.now() && !original.done()) {
      original.advance(restored.now() - original.now());
    }
    ASSERT_EQ(original.now(), restored.now());
    ASSERT_EQ(original.checkpoint().digest(), restored.checkpoint().digest());
    slice = slice * 3 + 7;
  }
  expect_same_result(original.result(), restored.result());
}

TEST(SnapArchive, PodAndContainersRoundTrip) {
  snap::Archive w = snap::Archive::writer();
  std::uint64_t a = 0x1122334455667788ULL;
  bool flag = true;
  std::string s = "wavesim";
  std::vector<std::int32_t> v{3, 1, 4, 1, 5};
  w.pod(a);
  w.pod(flag);
  w.str(s);
  w.vec_pod(v);

  snap::Archive r = snap::Archive::reader(w.bytes());
  std::uint64_t a2 = 0;
  bool flag2 = false;
  std::string s2;
  std::vector<std::int32_t> v2;
  r.pod(a2);
  r.pod(flag2);
  r.str(s2);
  r.vec_pod(v2);
  EXPECT_EQ(a2, a);
  EXPECT_EQ(flag2, flag);
  EXPECT_EQ(s2, s);
  EXPECT_EQ(v2, v);
  EXPECT_TRUE(r.exhausted());

  // Truncation throws instead of reading garbage.
  snap::Archive t = snap::Archive::reader({1, 2, 3});
  std::uint64_t big = 0;
  EXPECT_THROW(t.pod(big), snap::ArchiveError);
}

TEST(SnapSnapshot, EncodeDecodeAndErrors) {
  snap::Snapshot snap;
  snap.set("alpha", {1, 2, 3});
  snap.set("beta", {});
  const auto bytes = snap.encode();
  const snap::Snapshot back = snap::Snapshot::decode(bytes);
  EXPECT_EQ(back.digest(), snap.digest());
  EXPECT_EQ(back.section("alpha"), (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_TRUE(back.has("beta"));
  EXPECT_FALSE(back.has("gamma"));
  EXPECT_THROW(back.section("gamma"), snap::ArchiveError);

  std::vector<std::uint8_t> corrupt = bytes;
  corrupt[2] ^= 0xff;  // clobber the magic
  EXPECT_THROW(snap::Snapshot::decode(corrupt), snap::ArchiveError);
  corrupt = bytes;
  corrupt.resize(corrupt.size() - 1);
  EXPECT_THROW(snap::Snapshot::decode(corrupt), snap::ArchiveError);
}

TEST(SnapSnapshot, SaveLoadAtomic) {
  snap::Snapshot snap;
  snap.set("data", {9, 8, 7, 6});
  const std::string path = "test_snap_saveload.snap";
  snap.save(path);
  const snap::Snapshot back = snap::Snapshot::load(path);
  EXPECT_EQ(back.digest(), snap.digest());
  // The tmp file must be gone after a successful save.
  std::FILE* tmp = std::fopen((path + ".tmp").c_str(), "rb");
  EXPECT_EQ(tmp, nullptr);
  if (tmp != nullptr) std::fclose(tmp);
  std::remove(path.c_str());
  EXPECT_THROW(snap::Snapshot::load(path), std::runtime_error);
}

TEST(SnapConfig, RoundTripsEveryField) {
  sim::SimConfig cfg = sim::SimConfig::default_torus();
  cfg.topology.radix = {4, 4, 2};
  cfg.router.routing = sim::RoutingKind::kDuatoAdaptive;
  cfg.router.wormhole_vcs = 3;
  cfg.protocol.protocol = sim::ProtocolKind::kCarp;
  cfg.protocol.replacement = sim::ReplacementPolicy::kLfu;
  cfg.software.wormhole_send_overhead = 12;
  cfg.faults.link_fault_rate = 0.05;
  cfg.faults.events.push_back(
      {100, sim::FaultEventKind::kLinkDown, 3, 2});
  cfg.faults.storm = {500, 0.1, 250};
  cfg.faults.churn = {0.001, 10, 2000, 300};
  cfg.seed = 99;

  snap::Archive w = snap::Archive::writer();
  snap::snap_config(w, cfg);
  snap::Archive r = snap::Archive::reader(w.bytes());
  sim::SimConfig back;
  snap::snap_config(r, back);
  EXPECT_TRUE(r.exhausted());

  snap::Archive w2 = snap::Archive::writer();
  snap::snap_config(w2, back);
  EXPECT_EQ(w2.bytes(), w.bytes());
  EXPECT_EQ(back.topology.radix, cfg.topology.radix);
  EXPECT_EQ(back.faults.events, cfg.faults.events);
  EXPECT_EQ(back.faults.storm, cfg.faults.storm);
}

TEST(SnapRestore, RejectsConfigMismatch) {
  snap::RunSpec spec = small_clrp_spec();
  snap::CheckpointableRun run(spec);
  run.advance(64);
  snap::Snapshot snap = run.checkpoint();

  sim::SimConfig other = spec.config;
  other.protocol.circuit_cache_entries += 1;
  core::Simulation sim(other);
  EXPECT_THROW(snap::restore_simulation(snap, sim), snap::ArchiveError);
}

// -- Round-trip determinism across scenarios and phases ----------------------

TEST(SnapRoundTrip, ClrpWorkingSetMidWarmup) {
  check_round_trip(small_clrp_spec(), 300);
}

TEST(SnapRoundTrip, ClrpWorkingSetMidMeasure) {
  // Cut mid-measurement: probes, teardowns and circuit transfers are all
  // in flight at a busy CLRP cut point.
  check_round_trip(small_clrp_spec(), 1100);
}

TEST(SnapRoundTrip, CarpTransposeMidMeasure) {
  check_round_trip(torus_carp_spec(), 900);
}

TEST(SnapRoundTrip, FaultStormMidStorm) {
  // Cut while a quarter of the links are down and the distance-vector
  // layer is converging: DV adverts, withdrawals and aborted transfers
  // must all survive the round trip.
  check_round_trip(storm_spec(), 1100);
}

TEST(SnapRoundTrip, FaultStormDuringRepair) {
  check_round_trip(storm_spec(), 1700);
}

TEST(SnapRoundTrip, DensePerCycleCutsCoverProbeAndTeardownWindows) {
  // Checkpoint at every cycle over a busy span: any mid-probe or
  // mid-teardown divergence shows up as a digest mismatch one cycle
  // after its cut.
  snap::RunSpec spec = small_clrp_spec();
  snap::CheckpointableRun original(spec);
  original.advance(640);
  for (int i = 0; i < 48; ++i) {
    snap::Snapshot snap = original.checkpoint();
    snap::CheckpointableRun restored(snap);
    restored.advance(1);
    original.advance(1);
    ASSERT_EQ(original.checkpoint().digest(), restored.checkpoint().digest())
        << "diverged after the cut at cycle " << (original.now() - 1);
  }
}

// -- Engine / shard / lookahead matrix ---------------------------------------

TEST(SnapEngines, RestoredRunContinuesUnderAnyEngine) {
  const snap::RunSpec spec = small_clrp_spec();
  const std::int32_t nodes = spec.config.num_nodes();

  snap::CheckpointableRun seq_run(spec);
  seq_run.advance(800);
  const snap::Snapshot cut = seq_run.checkpoint();
  const std::uint64_t want = finish(seq_run);
  const load::ExperimentResult& want_result = seq_run.result();

  struct Leg {
    std::int32_t shards;
    Cycle lookahead;
  };
  const std::vector<Leg> legs{{1, 1}, {2, 1}, {8, 1}, {2, 8}, {8, 8}};
  for (const Leg& leg : legs) {
    snap::CheckpointableRun run(cut);
    run.set_engine(par_engine(nodes, leg.shards, leg.lookahead));
    EXPECT_EQ(finish(run), want)
        << "shards=" << leg.shards << " lookahead=" << leg.lookahead;
    expect_same_result(run.result(), want_result);
  }
}

TEST(SnapEngines, ParCheckpointRestoresUnderSeq) {
  const snap::RunSpec spec = storm_spec();
  const std::int32_t nodes = spec.config.num_nodes();

  snap::CheckpointableRun par_run(spec);
  par_run.set_engine(par_engine(nodes, 4, 8));
  par_run.advance(1000);
  const snap::Snapshot cut = par_run.checkpoint();
  const std::uint64_t want = finish(par_run);

  snap::CheckpointableRun seq_run(cut);  // default sequential stepper
  EXPECT_EQ(finish(seq_run), want);
  expect_same_result(seq_run.result(), par_run.result());
}

// -- Warm start --------------------------------------------------------------

TEST(SnapWarmStart, SharedWarmupCheckpointSeedsLongerMeasurement) {
  snap::RunSpec spec = small_clrp_spec();

  // Park a run exactly at the warmup/measure boundary.
  snap::CheckpointableRun warm(spec);
  warm.advance(spec.warmup);
  ASSERT_TRUE(warm.at_measure_boundary());
  const snap::Snapshot boundary = warm.checkpoint();

  // Cold run of a sibling spec that differs only in the measured span.
  snap::RunSpec longer = spec;
  longer.measure = 2 * spec.measure;
  EXPECT_EQ(snap::warm_key(longer), snap::warm_key(spec));
  snap::CheckpointableRun cold(longer);
  const std::uint64_t want = finish(cold);

  // Warm start: restore the shared boundary, rebind the window.
  snap::CheckpointableRun warmed(boundary);
  ASSERT_TRUE(warmed.at_measure_boundary());
  warmed.rebind(longer.measure, longer.drain_cap);
  EXPECT_EQ(finish(warmed), want);
  expect_same_result(warmed.result(), cold.result());
}

TEST(SnapWarmStart, WarmKeySeparatesDifferentPrefixes) {
  const snap::RunSpec spec = small_clrp_spec();
  snap::RunSpec other = spec;
  other.offered_load += 0.01;
  EXPECT_NE(snap::warm_key(other), snap::warm_key(spec));
  other = spec;
  other.seed += 1;
  EXPECT_NE(snap::warm_key(other), snap::warm_key(spec));
  other = spec;
  other.drain_cap *= 2;  // not part of the warm prefix
  EXPECT_EQ(snap::warm_key(other), snap::warm_key(spec));
}

TEST(SnapWarmStart, RebindAwayFromBoundaryThrows) {
  snap::RunSpec spec = small_clrp_spec();
  snap::CheckpointableRun run(spec);
  run.advance(spec.warmup + 100);
  EXPECT_FALSE(run.at_measure_boundary());
  EXPECT_THROW(run.rebind(500, 50'000), std::logic_error);
}

}  // namespace
