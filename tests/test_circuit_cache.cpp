// Circuit Cache (paper Fig. 5) and circuit table unit tests, including the
// replacement policies selectable through the "Replace" field.
#include "core/circuit_cache.hpp"

#include <gtest/gtest.h>

#include "core/circuit.hpp"

namespace wavesim::core {
namespace {

CircuitCache make_cache(std::int32_t entries,
                        sim::ReplacementPolicy policy = sim::ReplacementPolicy::kLru) {
  return CircuitCache(entries, policy, sim::Rng{42});
}

TEST(CircuitTable, CreateAndRetire) {
  CircuitTable table;
  const CircuitId a = table.create(0, 5, 1);
  const CircuitId b = table.create(2, 7, 0);
  EXPECT_NE(a, b);
  EXPECT_TRUE(table.contains(a));
  EXPECT_EQ(table.at(a).src, 0);
  EXPECT_EQ(table.at(a).dest, 5);
  EXPECT_EQ(table.at(a).switch_index, 1);
  EXPECT_EQ(table.at(a).state, CircuitState::kProbing);
  EXPECT_EQ(table.active(), 2u);
  table.retire(a);
  EXPECT_FALSE(table.contains(a));
  EXPECT_THROW(table.at(a), std::out_of_range);
  EXPECT_EQ(table.active(), 1u);
}

TEST(CircuitTable, HopsTracksPath) {
  CircuitTable table;
  const CircuitId a = table.create(0, 5, 0);
  EXPECT_EQ(table.at(a).hops(), 0);
  table.at(a).path = {0, 0, 2};
  EXPECT_EQ(table.at(a).hops(), 3);
}

TEST(CircuitCache, RejectsBadCapacity) {
  EXPECT_THROW(make_cache(0), std::invalid_argument);
}

TEST(CircuitCache, FindMissesOnEmpty) {
  auto cache = make_cache(4);
  EXPECT_EQ(cache.find(3), nullptr);
  EXPECT_EQ(cache.valid_entries(), 0);
}

TEST(CircuitCache, AllocateAndFind) {
  auto cache = make_cache(2);
  std::optional<CacheEntry> evicted;
  CacheEntry* e = cache.allocate(7, 100, &evicted);
  ASSERT_NE(e, nullptr);
  EXPECT_FALSE(evicted.has_value());
  EXPECT_TRUE(e->valid);
  EXPECT_EQ(e->dest, 7);
  EXPECT_EQ(e->created, 100u);
  EXPECT_EQ(cache.find(7), e);
  EXPECT_EQ(cache.valid_entries(), 1);
}

TEST(CircuitCache, DuplicateDestinationThrows) {
  auto cache = make_cache(2);
  cache.allocate(7, 0, nullptr);
  EXPECT_THROW(cache.allocate(7, 1, nullptr), std::logic_error);
}

TEST(CircuitCache, NoVictimWhenAllBusy) {
  auto cache = make_cache(2);
  CacheEntry* a = cache.allocate(1, 0, nullptr);
  CacheEntry* b = cache.allocate(2, 0, nullptr);
  a->probing = true;             // mid-setup: unevictable
  b->ack_returned = true;
  b->in_use = true;              // carrying a message: unevictable
  std::optional<CacheEntry> evicted;
  EXPECT_EQ(cache.allocate(3, 1, &evicted), nullptr);
  EXPECT_FALSE(evicted.has_value());
}

TEST(CircuitCache, LruEvictsLeastRecentlyUsed) {
  auto cache = make_cache(2, sim::ReplacementPolicy::kLru);
  CacheEntry* a = cache.allocate(1, 0, nullptr);
  CacheEntry* b = cache.allocate(2, 1, nullptr);
  a->ack_returned = true;
  b->ack_returned = true;
  cache.touch(*a, 50);  // a used recently; b stale
  std::optional<CacheEntry> evicted;
  CacheEntry* c = cache.allocate(3, 60, &evicted);
  ASSERT_NE(c, nullptr);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->dest, 2);
  EXPECT_EQ(cache.find(2), nullptr);
  EXPECT_NE(cache.find(1), nullptr);
  EXPECT_EQ(cache.evictions, 1u);
}

TEST(CircuitCache, LfuEvictsLeastFrequentlyUsed) {
  auto cache = make_cache(2, sim::ReplacementPolicy::kLfu);
  CacheEntry* a = cache.allocate(1, 0, nullptr);
  CacheEntry* b = cache.allocate(2, 1, nullptr);
  a->ack_returned = true;
  b->ack_returned = true;
  cache.touch(*a, 10);
  cache.touch(*a, 20);
  cache.touch(*b, 30);  // b used once but more recently
  std::optional<CacheEntry> evicted;
  cache.allocate(3, 40, &evicted);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->dest, 2);  // fewer uses wins eviction despite recency
}

TEST(CircuitCache, FifoEvictsOldestEntry) {
  auto cache = make_cache(2, sim::ReplacementPolicy::kFifo);
  CacheEntry* a = cache.allocate(1, 0, nullptr);
  CacheEntry* b = cache.allocate(2, 5, nullptr);
  a->ack_returned = true;
  b->ack_returned = true;
  cache.touch(*a, 100);  // recency must not matter for FIFO
  std::optional<CacheEntry> evicted;
  cache.allocate(3, 200, &evicted);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->dest, 1);
}

TEST(CircuitCache, RandomEvictsSomeReplaceableEntry) {
  auto cache = make_cache(3, sim::ReplacementPolicy::kRandom);
  for (NodeId d : {1, 2, 3}) {
    CacheEntry* e = cache.allocate(d, 0, nullptr);
    e->ack_returned = true;
  }
  cache.find(2)->in_use = true;  // not replaceable
  std::optional<CacheEntry> evicted;
  CacheEntry* e = cache.allocate(4, 1, &evicted);
  ASSERT_NE(e, nullptr);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_NE(evicted->dest, 2);
  EXPECT_NE(cache.find(2), nullptr);
}

TEST(CircuitCache, ProbingEntriesAreNeverEvicted) {
  auto cache = make_cache(1);
  CacheEntry* a = cache.allocate(1, 0, nullptr);
  a->probing = true;
  EXPECT_EQ(cache.allocate(2, 1, nullptr), nullptr);
  a->probing = false;
  a->ack_returned = true;
  EXPECT_NE(cache.allocate(2, 2, nullptr), nullptr);
}

TEST(CircuitCache, InvalidateFreesSlot) {
  auto cache = make_cache(1);
  CacheEntry* a = cache.allocate(1, 0, nullptr);
  cache.invalidate(*a);
  EXPECT_EQ(cache.find(1), nullptr);
  EXPECT_EQ(cache.valid_entries(), 0);
  EXPECT_NE(cache.allocate(2, 1, nullptr), nullptr);
}

TEST(CircuitCache, InvalidateInUseThrows) {
  auto cache = make_cache(1);
  CacheEntry* a = cache.allocate(1, 0, nullptr);
  a->in_use = true;
  EXPECT_THROW(cache.invalidate(*a), std::logic_error);
}

TEST(CircuitCache, TouchUpdatesReplaceAccounting) {
  auto cache = make_cache(1);
  CacheEntry* a = cache.allocate(1, 0, nullptr);
  cache.touch(*a, 7);
  cache.touch(*a, 9);
  EXPECT_EQ(a->uses, 2u);
  EXPECT_EQ(a->last_use, 9u);
}

// -- edge cases -----------------------------------------------------------

TEST(CircuitCache, CapacityOneRecyclesTheSingleSlot) {
  // The degenerate cache: every new destination evicts the previous one,
  // and the evicted copy must carry the full replacement accounting so the
  // caller can tear the old circuit down.
  auto cache = make_cache(1);
  Cycle now = 0;
  NodeId previous = kInvalidNode;
  for (NodeId dest = 1; dest <= 5; ++dest) {
    std::optional<CacheEntry> evicted;
    CacheEntry* e = cache.allocate(dest, now, &evicted);
    ASSERT_NE(e, nullptr) << "dest " << dest;
    if (previous == kInvalidNode) {
      EXPECT_FALSE(evicted.has_value());
    } else {
      ASSERT_TRUE(evicted.has_value());
      EXPECT_EQ(evicted->dest, previous);
      EXPECT_EQ(evicted->uses, 1u);
    }
    e->ack_returned = true;
    cache.touch(*e, ++now);
    EXPECT_EQ(cache.valid_entries(), 1);
    previous = dest;
    ++now;
  }
  EXPECT_EQ(cache.evictions, 4u);
}

TEST(CircuitCache, SingleSwitchConfigurationKeepsSwitchIndexZero) {
  // k = 1: there is exactly one wave switch per physical channel, so the
  // Fig. 5 "Switch" field never needs to advance past zero and re-search
  // starts where the hit left off.
  auto cache = make_cache(2);
  CacheEntry* e = cache.allocate(9, 0, nullptr);
  EXPECT_EQ(e->initial_switch, 0);
  EXPECT_EQ(e->switch_index, 0);
  e->ack_returned = true;
  std::optional<CacheEntry> evicted;
  cache.allocate(10, 1, &evicted)->probing = true;
  EXPECT_FALSE(evicted.has_value());
  // A fresh allocation over the k=1 entry starts at switch 0 again.
  std::optional<CacheEntry> displaced;
  CacheEntry* f = cache.allocate(11, 2, &displaced);
  ASSERT_NE(f, nullptr);
  ASSERT_TRUE(displaced.has_value());
  EXPECT_EQ(displaced->dest, 9);
  EXPECT_EQ(f->switch_index, 0);
}

TEST(CircuitCache, MidEstablishmentEntrySurvivesEvictionPressure) {
  // An entry whose probe is still in flight is the oldest and least used,
  // i.e. the preferred victim under every policy -- yet it must never be
  // displaced, or the returning ack would reference a recycled slot.
  for (const auto policy :
       {sim::ReplacementPolicy::kLru, sim::ReplacementPolicy::kLfu,
        sim::ReplacementPolicy::kFifo, sim::ReplacementPolicy::kRandom}) {
    auto cache = make_cache(2, policy);
    CacheEntry* establishing = cache.allocate(1, 0, nullptr);
    establishing->probing = true;  // mid-establishment
    CacheEntry* done = cache.allocate(2, 5, nullptr);
    done->ack_returned = true;
    cache.touch(*done, 10);

    std::optional<CacheEntry> evicted;
    CacheEntry* e = cache.allocate(3, 20, &evicted);
    ASSERT_NE(e, nullptr);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->dest, 2) << "policy " << static_cast<int>(policy);
    ASSERT_NE(cache.find(1), nullptr);
    EXPECT_TRUE(cache.find(1)->probing);

    // Once the ack returns the entry becomes an ordinary citizen.
    CacheEntry* settled = cache.find(1);
    settled->probing = false;
    settled->ack_returned = true;
    std::optional<CacheEntry> second;
    ASSERT_NE(cache.allocate(4, 30, &second), nullptr);
    ASSERT_TRUE(second.has_value());
  }
}

TEST(CircuitCache, TieBreakIsLowestSlotAndDeterministicAcrossRuns) {
  // Indistinguishable candidates (same last_use / uses / created) must
  // resolve identically on every run: the scan keeps the first (lowest
  // index) candidate because later ones only win with a strictly better
  // key. Identical histories therefore evict identical victims.
  for (const auto policy :
       {sim::ReplacementPolicy::kLru, sim::ReplacementPolicy::kLfu,
        sim::ReplacementPolicy::kFifo}) {
    std::vector<NodeId> victims;
    for (int run = 0; run < 3; ++run) {
      auto cache = make_cache(3, policy);
      for (NodeId d : {1, 2, 3}) {
        CacheEntry* e = cache.allocate(d, 0, nullptr);  // same created
        e->ack_returned = true;
        cache.touch(*e, 10);  // same last_use, same uses
      }
      std::optional<CacheEntry> evicted;
      ASSERT_NE(cache.allocate(4, 20, &evicted), nullptr);
      ASSERT_TRUE(evicted.has_value());
      victims.push_back(evicted->dest);
    }
    EXPECT_EQ(victims, (std::vector<NodeId>{1, 1, 1}))
        << "policy " << static_cast<int>(policy);
  }
}

TEST(CircuitCache, RandomPolicyIsDeterministicGivenTheSeed) {
  // kRandom draws from the cache's own Rng: two caches built with the same
  // seed must produce the same victim sequence (the simulator's global
  // determinism contract), and a different seed is allowed to differ.
  auto evicted_sequence = [](std::uint64_t seed) {
    CircuitCache cache(4, sim::ReplacementPolicy::kRandom, sim::Rng{seed});
    for (NodeId d : {1, 2, 3, 4}) {
      cache.allocate(d, 0, nullptr)->ack_returned = true;
    }
    std::vector<NodeId> evictees;
    for (NodeId d = 5; d < 12; ++d) {
      std::optional<CacheEntry> evicted;
      CacheEntry* e = cache.allocate(d, d, &evicted);
      if (e == nullptr) break;
      e->ack_returned = true;
      if (evicted.has_value()) evictees.push_back(evicted->dest);
    }
    return evictees;
  };
  EXPECT_EQ(evicted_sequence(7), evicted_sequence(7));
  EXPECT_EQ(evicted_sequence(7).size(), 7u);
}

}  // namespace
}  // namespace wavesim::core
