// Circuit Cache (paper Fig. 5) and circuit table unit tests, including the
// replacement policies selectable through the "Replace" field.
#include "core/circuit_cache.hpp"

#include <gtest/gtest.h>

#include "core/circuit.hpp"

namespace wavesim::core {
namespace {

CircuitCache make_cache(std::int32_t entries,
                        sim::ReplacementPolicy policy = sim::ReplacementPolicy::kLru) {
  return CircuitCache(entries, policy, sim::Rng{42});
}

TEST(CircuitTable, CreateAndRetire) {
  CircuitTable table;
  const CircuitId a = table.create(0, 5, 1);
  const CircuitId b = table.create(2, 7, 0);
  EXPECT_NE(a, b);
  EXPECT_TRUE(table.contains(a));
  EXPECT_EQ(table.at(a).src, 0);
  EXPECT_EQ(table.at(a).dest, 5);
  EXPECT_EQ(table.at(a).switch_index, 1);
  EXPECT_EQ(table.at(a).state, CircuitState::kProbing);
  EXPECT_EQ(table.active(), 2u);
  table.retire(a);
  EXPECT_FALSE(table.contains(a));
  EXPECT_THROW(table.at(a), std::out_of_range);
  EXPECT_EQ(table.active(), 1u);
}

TEST(CircuitTable, HopsTracksPath) {
  CircuitTable table;
  const CircuitId a = table.create(0, 5, 0);
  EXPECT_EQ(table.at(a).hops(), 0);
  table.at(a).path = {0, 0, 2};
  EXPECT_EQ(table.at(a).hops(), 3);
}

TEST(CircuitCache, RejectsBadCapacity) {
  EXPECT_THROW(make_cache(0), std::invalid_argument);
}

TEST(CircuitCache, FindMissesOnEmpty) {
  auto cache = make_cache(4);
  EXPECT_EQ(cache.find(3), nullptr);
  EXPECT_EQ(cache.valid_entries(), 0);
}

TEST(CircuitCache, AllocateAndFind) {
  auto cache = make_cache(2);
  std::optional<CacheEntry> evicted;
  CacheEntry* e = cache.allocate(7, 100, &evicted);
  ASSERT_NE(e, nullptr);
  EXPECT_FALSE(evicted.has_value());
  EXPECT_TRUE(e->valid);
  EXPECT_EQ(e->dest, 7);
  EXPECT_EQ(e->created, 100u);
  EXPECT_EQ(cache.find(7), e);
  EXPECT_EQ(cache.valid_entries(), 1);
}

TEST(CircuitCache, DuplicateDestinationThrows) {
  auto cache = make_cache(2);
  cache.allocate(7, 0, nullptr);
  EXPECT_THROW(cache.allocate(7, 1, nullptr), std::logic_error);
}

TEST(CircuitCache, NoVictimWhenAllBusy) {
  auto cache = make_cache(2);
  CacheEntry* a = cache.allocate(1, 0, nullptr);
  CacheEntry* b = cache.allocate(2, 0, nullptr);
  a->probing = true;             // mid-setup: unevictable
  b->ack_returned = true;
  b->in_use = true;              // carrying a message: unevictable
  std::optional<CacheEntry> evicted;
  EXPECT_EQ(cache.allocate(3, 1, &evicted), nullptr);
  EXPECT_FALSE(evicted.has_value());
}

TEST(CircuitCache, LruEvictsLeastRecentlyUsed) {
  auto cache = make_cache(2, sim::ReplacementPolicy::kLru);
  CacheEntry* a = cache.allocate(1, 0, nullptr);
  CacheEntry* b = cache.allocate(2, 1, nullptr);
  a->ack_returned = true;
  b->ack_returned = true;
  cache.touch(*a, 50);  // a used recently; b stale
  std::optional<CacheEntry> evicted;
  CacheEntry* c = cache.allocate(3, 60, &evicted);
  ASSERT_NE(c, nullptr);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->dest, 2);
  EXPECT_EQ(cache.find(2), nullptr);
  EXPECT_NE(cache.find(1), nullptr);
  EXPECT_EQ(cache.evictions, 1u);
}

TEST(CircuitCache, LfuEvictsLeastFrequentlyUsed) {
  auto cache = make_cache(2, sim::ReplacementPolicy::kLfu);
  CacheEntry* a = cache.allocate(1, 0, nullptr);
  CacheEntry* b = cache.allocate(2, 1, nullptr);
  a->ack_returned = true;
  b->ack_returned = true;
  cache.touch(*a, 10);
  cache.touch(*a, 20);
  cache.touch(*b, 30);  // b used once but more recently
  std::optional<CacheEntry> evicted;
  cache.allocate(3, 40, &evicted);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->dest, 2);  // fewer uses wins eviction despite recency
}

TEST(CircuitCache, FifoEvictsOldestEntry) {
  auto cache = make_cache(2, sim::ReplacementPolicy::kFifo);
  CacheEntry* a = cache.allocate(1, 0, nullptr);
  CacheEntry* b = cache.allocate(2, 5, nullptr);
  a->ack_returned = true;
  b->ack_returned = true;
  cache.touch(*a, 100);  // recency must not matter for FIFO
  std::optional<CacheEntry> evicted;
  cache.allocate(3, 200, &evicted);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->dest, 1);
}

TEST(CircuitCache, RandomEvictsSomeReplaceableEntry) {
  auto cache = make_cache(3, sim::ReplacementPolicy::kRandom);
  for (NodeId d : {1, 2, 3}) {
    CacheEntry* e = cache.allocate(d, 0, nullptr);
    e->ack_returned = true;
  }
  cache.find(2)->in_use = true;  // not replaceable
  std::optional<CacheEntry> evicted;
  CacheEntry* e = cache.allocate(4, 1, &evicted);
  ASSERT_NE(e, nullptr);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_NE(evicted->dest, 2);
  EXPECT_NE(cache.find(2), nullptr);
}

TEST(CircuitCache, ProbingEntriesAreNeverEvicted) {
  auto cache = make_cache(1);
  CacheEntry* a = cache.allocate(1, 0, nullptr);
  a->probing = true;
  EXPECT_EQ(cache.allocate(2, 1, nullptr), nullptr);
  a->probing = false;
  a->ack_returned = true;
  EXPECT_NE(cache.allocate(2, 2, nullptr), nullptr);
}

TEST(CircuitCache, InvalidateFreesSlot) {
  auto cache = make_cache(1);
  CacheEntry* a = cache.allocate(1, 0, nullptr);
  cache.invalidate(*a);
  EXPECT_EQ(cache.find(1), nullptr);
  EXPECT_EQ(cache.valid_entries(), 0);
  EXPECT_NE(cache.allocate(2, 1, nullptr), nullptr);
}

TEST(CircuitCache, InvalidateInUseThrows) {
  auto cache = make_cache(1);
  CacheEntry* a = cache.allocate(1, 0, nullptr);
  a->in_use = true;
  EXPECT_THROW(cache.invalidate(*a), std::logic_error);
}

TEST(CircuitCache, TouchUpdatesReplaceAccounting) {
  auto cache = make_cache(1);
  CacheEntry* a = cache.allocate(1, 0, nullptr);
  cache.touch(*a, 7);
  cache.touch(*a, 9);
  EXPECT_EQ(a->uses, 2u);
  EXPECT_EQ(a->last_use, 9u);
}

}  // namespace
}  // namespace wavesim::core
