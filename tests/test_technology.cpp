// Technology timing model: the wave clock factor derivation (paper
// section 2's Spice result) and its injection into SimConfig.
#include "sim/technology.hpp"

#include <gtest/gtest.h>

#include "sim/config.hpp"

namespace wavesim::sim {
namespace {

TEST(Technology, DefaultReproducesThePaper4x) {
  TechnologyModel tech;
  EXPECT_TRUE(tech.valid());
  EXPECT_DOUBLE_EQ(tech.base_period_ns(), 8.0);
  EXPECT_DOUBLE_EQ(tech.wave_period_ns(), 2.0);
  EXPECT_DOUBLE_EQ(tech.wave_clock_factor(), 4.0);
}

TEST(Technology, MemoryBandwidthCapsTheWaveClock) {
  TechnologyModel tech;
  tech.memory_cycle_ns = 4.0;  // slow memory dominates the wave path
  EXPECT_DOUBLE_EQ(tech.wave_period_ns(), 4.0);
  EXPECT_DOUBLE_EQ(tech.wave_clock_factor(), 2.0);
}

TEST(Technology, SkewErodesTheGain) {
  TechnologyModel fast;
  TechnologyModel skewed;
  skewed.wire_skew_ns = 2.0;  // badly matched wires
  EXPECT_LT(skewed.wave_clock_factor(), fast.wave_clock_factor());
}

TEST(Technology, RemovingBufferAndRoutingIsTheWholePoint) {
  // If the wave path had to keep the routing + buffering stages, the
  // factor would collapse to ~1: the gain comes from removing them.
  TechnologyModel tech;
  const double hypothetical_wave =
      tech.base_period_ns() /
      (tech.base_period_ns() + tech.wire_skew_ns + tech.latch_setup_ns);
  EXPECT_LT(hypothetical_wave, 1.0);
  EXPECT_GT(tech.wave_clock_factor(), 3.0);
}

TEST(Technology, ApplyToConfig) {
  SimConfig cfg = SimConfig::default_torus();
  TechnologyModel tech;
  tech.switch_delay_ns = 1.0;
  tech.wire_skew_ns = 0.3;
  tech.latch_setup_ns = 0.2;  // path 1.5 = memory floor
  cfg.apply_technology(tech);
  // base 4 + 1 + 2.5 = 7.5 ns; wave = max(1.5, memory 1.5) = 1.5 ns.
  EXPECT_DOUBLE_EQ(cfg.router.wave_clock_factor, 5.0);
  EXPECT_NO_THROW(cfg.validate());
}

TEST(Technology, InvalidModelRejected) {
  SimConfig cfg = SimConfig::default_torus();
  TechnologyModel bad;
  bad.memory_cycle_ns = 0.0;
  EXPECT_FALSE(bad.valid());
  EXPECT_THROW(cfg.apply_technology(bad), std::invalid_argument);
}

}  // namespace
}  // namespace wavesim::sim
