// Integration tests of the network-level wormhole plane: end-to-end
// delivery, flit ordering, backpressure, contention, and conservation.
#include "wormhole/fabric.hpp"

#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <set>

#include "routing/routing.hpp"
#include "sim/rng.hpp"

namespace wavesim::wh {
namespace {

using topo::KAryNCube;

/// Minimal injection driver: queues messages per node, streams their flits
/// into free injection VCs, and records deliveries.
class Harness {
 public:
  Harness(std::vector<std::int32_t> radix, bool torus,
          sim::RoutingKind kind = sim::RoutingKind::kDimensionOrder,
          std::int32_t vcs = 2, std::int32_t depth = 4)
      : topo_(std::move(radix), torus),
        routing_(route::make_routing(kind, topo_, vcs)),
        fabric_(topo_, *routing_,
                FabricParams{RouterParams{vcs, depth}, /*link_latency=*/2}) {
    fabric_.set_delivery_handler([this](NodeId node, const Flit& flit) {
      auto& got = received_[flit.msg];
      EXPECT_EQ(flit.seq, static_cast<std::int32_t>(got.size()))
          << "out-of-order flit within message " << flit.msg;
      EXPECT_EQ(flit.dest, node) << "misdelivered flit";
      got.push_back(flit.seq);
      if (flit.tail) completed_.insert(flit.msg);
    });
    streams_.resize(topo_.num_nodes());
    pending_.resize(topo_.num_nodes());
  }

  MessageId send(NodeId src, NodeId dest, std::int32_t length) {
    const MessageId id = next_id_++;
    pending_[src].push_back(Msg{id, dest, length});
    sent_.insert(id);
    return id;
  }

  void step() {
    // Start pending messages on free injection VCs; feed active streams.
    for (NodeId n = 0; n < topo_.num_nodes(); ++n) {
      auto& streams = streams_[n];
      if (streams.empty()) streams.resize(fabric_.num_vcs());
      for (VcId v = 0; v < fabric_.num_vcs(); ++v) {
        auto& s = streams[v];
        if (s.remaining == 0 && !pending_[n].empty()) {
          const Msg m = pending_[n].front();
          pending_[n].pop_front();
          s = Stream{m.id, m.dest, m.length, m.length, cycle_};
        }
        while (s.remaining > 0 && fabric_.can_inject(n, v)) {
          const std::int32_t seq = s.length - s.remaining;
          fabric_.inject(n, v, make_flit(s.id, n, s.dest, seq, s.length,
                                         s.created));
          --s.remaining;
        }
      }
    }
    fabric_.step(cycle_);
    ++cycle_;
  }

  /// Steps until all sent messages completed; fails the test on timeout.
  void run_to_completion(Cycle max_cycles = 100000) {
    while (completed_.size() < sent_.size() && cycle_ < max_cycles) step();
    EXPECT_EQ(completed_.size(), sent_.size())
        << "timeout: " << sent_.size() - completed_.size()
        << " messages undelivered after " << cycle_ << " cycles";
  }

  const KAryNCube& topo() const { return topo_; }
  Fabric& fabric() { return fabric_; }
  Cycle cycle() const { return cycle_; }
  bool complete(MessageId id) const { return completed_.count(id) != 0; }
  const std::map<MessageId, std::vector<std::int32_t>>& received() const {
    return received_;
  }

 private:
  struct Msg {
    MessageId id;
    NodeId dest;
    std::int32_t length;
  };
  struct Stream {
    MessageId id = kInvalidMessage;
    NodeId dest = kInvalidNode;
    std::int32_t length = 0;
    std::int32_t remaining = 0;
    Cycle created = 0;
  };

  KAryNCube topo_;
  std::unique_ptr<route::RoutingAlgorithm> routing_;
  Fabric fabric_;
  std::vector<std::deque<Msg>> pending_;
  std::vector<std::vector<Stream>> streams_;
  std::map<MessageId, std::vector<std::int32_t>> received_;
  std::set<MessageId> completed_;
  std::set<MessageId> sent_;
  MessageId next_id_ = 1;
  Cycle cycle_ = 0;
};

TEST(Fabric, SingleMessageDelivered) {
  Harness h({4, 4}, false);
  const auto id = h.send(h.topo().node_of({0, 0}), h.topo().node_of({3, 3}), 8);
  h.run_to_completion();
  EXPECT_TRUE(h.complete(id));
  EXPECT_EQ(h.received().at(id).size(), 8u);
}

TEST(Fabric, SingleFlitMessage) {
  Harness h({4, 4}, true);
  const auto id = h.send(0, 5, 1);
  h.run_to_completion();
  EXPECT_TRUE(h.complete(id));
}

TEST(Fabric, MessageToSelfNeighborhood) {
  Harness h({4, 4}, true);
  // One-hop message.
  const auto id = h.send(h.topo().node_of({1, 1}), h.topo().node_of({2, 1}), 4);
  h.run_to_completion();
  EXPECT_TRUE(h.complete(id));
}

TEST(Fabric, LatencyScalesWithDistanceAndLength) {
  Harness near({8, 8}, true);
  const auto a = near.send(near.topo().node_of({0, 0}),
                           near.topo().node_of({1, 0}), 4);
  near.run_to_completion();
  const Cycle near_cycles = near.cycle();
  EXPECT_TRUE(near.complete(a));

  Harness far({8, 8}, true);
  const auto b = far.send(far.topo().node_of({0, 0}),
                          far.topo().node_of({4, 4}), 4);
  far.run_to_completion();
  EXPECT_TRUE(far.complete(b));
  EXPECT_GT(far.cycle(), near_cycles);
}

TEST(Fabric, TorusWrapRouteDelivers) {
  Harness h({8, 8}, true);
  // 7 -> 1 in x wraps through the dateline (distance 2 via wrap).
  const auto id = h.send(h.topo().node_of({7, 0}), h.topo().node_of({1, 0}), 16);
  h.run_to_completion();
  EXPECT_TRUE(h.complete(id));
}

TEST(Fabric, ManyToOneHotspotAllDelivered) {
  Harness h({4, 4}, true);
  const NodeId hot = h.topo().node_of({2, 2});
  for (NodeId n = 0; n < h.topo().num_nodes(); ++n) {
    if (n != hot) h.send(n, hot, 6);
  }
  h.run_to_completion();
}

TEST(Fabric, AllToAllPairsDelivered) {
  Harness h({3, 3}, true);
  for (NodeId s = 0; s < h.topo().num_nodes(); ++s) {
    for (NodeId d = 0; d < h.topo().num_nodes(); ++d) {
      if (s != d) h.send(s, d, 3);
    }
  }
  h.run_to_completion();
}

TEST(Fabric, LongMessagesInterleaveWithoutLoss) {
  Harness h({4, 4}, true);
  sim::Rng rng{99};
  for (int i = 0; i < 40; ++i) {
    const NodeId s = static_cast<NodeId>(rng.next_below(16));
    NodeId d = static_cast<NodeId>(rng.next_below(16));
    if (d == s) d = (d + 1) % 16;
    h.send(s, d, 32);
  }
  h.run_to_completion(300000);
}

TEST(Fabric, AdaptiveRoutingDeliversEverything) {
  Harness h({4, 4}, true, sim::RoutingKind::kDuatoAdaptive, /*vcs=*/3);
  sim::Rng rng{7};
  for (int i = 0; i < 60; ++i) {
    const NodeId s = static_cast<NodeId>(rng.next_below(16));
    NodeId d = static_cast<NodeId>(rng.next_below(16));
    if (d == s) d = (d + 1) % 16;
    h.send(s, d, 8);
  }
  h.run_to_completion(300000);
}

TEST(Fabric, FlitConservation) {
  Harness h({4, 4}, true);
  h.send(0, 10, 16);
  h.send(3, 12, 16);
  for (int i = 0; i < 20; ++i) h.step();
  Fabric& f = h.fabric();
  EXPECT_EQ(static_cast<std::int64_t>(f.flits_injected()),
            f.flits_in_flight() + static_cast<std::int64_t>(f.flits_delivered()));
  h.run_to_completion();
  EXPECT_EQ(f.flits_injected(), f.flits_delivered());
  EXPECT_EQ(f.flits_in_flight(), 0);
}

TEST(Fabric, DeterministicAcrossRuns) {
  auto run = [] {
    Harness h({4, 4}, true);
    sim::Rng rng{5};
    for (int i = 0; i < 30; ++i) {
      const NodeId s = static_cast<NodeId>(rng.next_below(16));
      NodeId d = static_cast<NodeId>(rng.next_below(16));
      if (d == s) d = (d + 1) % 16;
      h.send(s, d, 5);
    }
    h.run_to_completion();
    return std::make_pair(h.cycle(), h.fabric().link_flit_hops());
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a, b);
}

TEST(Fabric, BackpressurePropagatesToSource) {
  // Fill a destination-bound path with a long message and verify a second
  // message through the same column is slowed but still delivered.
  Harness h({8}, false, sim::RoutingKind::kDimensionOrder, /*vcs=*/1);
  const auto big = h.send(h.topo().node_of({0}), h.topo().node_of({7}), 64);
  const auto small = h.send(h.topo().node_of({1}), h.topo().node_of({7}), 4);
  h.run_to_completion();
  EXPECT_TRUE(h.complete(big));
  EXPECT_TRUE(h.complete(small));
}

TEST(Fabric, LinkUtilizationCounters) {
  Harness h({4, 4}, false);
  // 3 hops east from (0,0) to (3,0): the links along row 0 carry all 16
  // flits; unrelated links carry none.
  h.send(h.topo().node_of({0, 0}), h.topo().node_of({3, 0}), 16);
  h.run_to_completion();
  Fabric& f = h.fabric();
  const PortId east = KAryNCube::port_of(0, true);
  EXPECT_EQ(f.link_flits(h.topo().node_of({0, 0}), east), 16u);
  EXPECT_EQ(f.link_flits(h.topo().node_of({1, 0}), east), 16u);
  EXPECT_EQ(f.link_flits(h.topo().node_of({2, 0}), east), 16u);
  EXPECT_EQ(f.link_flits(h.topo().node_of({0, 1}), east), 0u);
  EXPECT_GT(f.max_link_utilization(h.cycle()), 0.0);
  EXPECT_LE(f.max_link_utilization(h.cycle()), 1.0);
  EXPECT_EQ(f.max_link_utilization(0), 0.0);
}

TEST(Fabric, RejectsBadLinkLatency) {
  KAryNCube t({4, 4}, false);
  auto dor = route::make_routing(sim::RoutingKind::kDimensionOrder, t, 2);
  EXPECT_THROW(
      Fabric(t, *dor, FabricParams{RouterParams{2, 4}, /*link_latency=*/0}),
      std::invalid_argument);
}

}  // namespace
}  // namespace wavesim::wh
