// Tests for the control-plane state checker itself: clean states pass at
// every cycle; seeded corruption is detected.
#include "verify/fsck.hpp"

#include <gtest/gtest.h>

#include "core/simulation.hpp"
#include "sim/rng.hpp"

namespace wavesim::verify {
namespace {

sim::SimConfig clrp_small() {
  sim::SimConfig cfg;
  cfg.topology.radix = {4, 4};
  cfg.topology.torus = true;
  cfg.protocol.protocol = sim::ProtocolKind::kClrp;
  cfg.protocol.circuit_cache_entries = 2;
  return cfg;
}

TEST(Fsck, WormholeOnlyNetworkIsTriviallyClean) {
  core::Simulation sim(sim::SimConfig::wormhole_baseline());
  sim.send(0, 9, 16);
  sim.run(100);
  EXPECT_TRUE(check_control_state(sim.network()).ok());
}

TEST(Fsck, CleanAtEveryCycleUnderTraffic) {
  core::Simulation sim(clrp_small());
  sim::Rng rng{3};
  for (int burst = 0; burst < 60; ++burst) {
    const NodeId s = static_cast<NodeId>(rng.next_below(16));
    NodeId d = static_cast<NodeId>(rng.next_below(16));
    if (d == s) d = (d + 1) % 16;
    sim.send(s, d, static_cast<std::int32_t>(4 + rng.next_below(28)));
    for (int c = 0; c < 20; ++c) {
      sim.step();
      const auto result = check_control_state(sim.network());
      ASSERT_TRUE(result.ok()) << "cycle " << sim.now() << ": "
                               << result.summary();
    }
  }
  ASSERT_TRUE(sim.run_until_delivered(500000));
  EXPECT_TRUE(check_control_state(sim.network()).ok());
}

TEST(Fsck, CleanWithFaultsAndEvictions) {
  sim::SimConfig cfg = clrp_small();
  cfg.faults.link_fault_rate = 0.15;
  core::Simulation sim(cfg);
  sim::Rng rng{5};
  for (int i = 0; i < 120; ++i) {
    const NodeId s = static_cast<NodeId>(rng.next_below(16));
    NodeId d = static_cast<NodeId>(rng.next_below(16));
    if (d == s) d = (d + 1) % 16;
    sim.send(s, d, 16);
    sim.run(15);
    const auto result = check_control_state(sim.network());
    ASSERT_TRUE(result.ok()) << result.summary();
  }
  ASSERT_TRUE(sim.run_until_delivered(500000));
}

TEST(FaultInjection, CircuitPlaneIslandFallsBackButDelivers) {
  // Targeted (not random) fault injection: every circuit channel touching
  // node 0 is faulty, so no circuit can start or end there -- yet all its
  // traffic must still flow via the wormhole plane, and other pairs keep
  // using circuits.
  sim::SimConfig cfg = clrp_small();
  core::Simulation sim(cfg);
  auto* plane = sim.network().control_plane();
  const auto& topo = sim.topology();
  for (std::int32_t s = 0; s < cfg.router.wave_switches; ++s) {
    for (PortId p = 0; p < topo.num_ports(); ++p) {
      plane->mark_faulty(0, s, p);  // channels out of node 0
      const NodeId nb = topo.neighbor(0, p);
      // Channels from each neighbor back toward node 0.
      for (PortId q = 0; q < topo.num_ports(); ++q) {
        if (topo.neighbor(nb, q) == 0) plane->mark_faulty(nb, s, q);
      }
    }
  }
  const MessageId out = sim.send(0, 5, 32);
  const MessageId in = sim.send(5, 0, 32);
  const MessageId bystander = sim.send(6, 9, 32);
  ASSERT_TRUE(sim.run_until_delivered(200000));
  const auto& log = sim.network().messages();
  EXPECT_EQ(log.at(out).mode, core::MessageMode::kWormholeFallback);
  EXPECT_EQ(log.at(in).mode, core::MessageMode::kWormholeFallback);
  EXPECT_EQ(log.at(bystander).mode, core::MessageMode::kCircuitAfterSetup);
  EXPECT_TRUE(check_control_state(sim.network()).ok());
}

TEST(FaultInjection, BisectionCutRoutesAroundOnOtherRows) {
  // Cut every +x/-x circuit channel crossing the x=1|x=2 boundary in rows
  // 0 and 1 of a 4x4 torus. Probes between the halves must detour through
  // rows 2/3 (misrouting) or wrap, and every message still arrives.
  sim::SimConfig cfg = clrp_small();
  cfg.protocol.max_misroutes = 2;
  core::Simulation sim(cfg);
  auto* plane = sim.network().control_plane();
  const auto& topo = sim.topology();
  for (std::int32_t s = 0; s < cfg.router.wave_switches; ++s) {
    for (std::int32_t y = 0; y < 2; ++y) {
      plane->mark_faulty(topo.node_of({1, y}), s,
                         topo::KAryNCube::port_of(0, true));
      plane->mark_faulty(topo.node_of({2, y}), s,
                         topo::KAryNCube::port_of(0, false));
    }
  }
  std::uint64_t sent = 0;
  for (std::int32_t y = 0; y < 4; ++y) {
    sim.send(topo.node_of({1, y}), topo.node_of({2, y}), 48);
    ++sent;
    sim.run(40);
  }
  ASSERT_TRUE(sim.run_until_delivered(500000));
  EXPECT_EQ(sim.stats().messages_delivered, sent);
  // At least the unaffected rows still established circuits.
  EXPECT_GE(sim.stats().probes_succeeded, 2u);
  EXPECT_TRUE(check_control_state(sim.network()).ok());
}

TEST(Fsck, DetectsCorruptedCircuitPath) {
  core::Simulation sim(clrp_small());
  sim.send(0, 5, 32);
  ASSERT_TRUE(sim.run_until_delivered(50000));
  auto& net = sim.network();
  // Corrupt: pretend the established circuit has an extra hop.
  const auto ids = net.circuits().active_ids();
  ASSERT_FALSE(ids.empty());
  const_cast<core::CircuitTable&>(net.circuits())
      .at(ids.front())
      .path.push_back(0);
  const auto result = check_control_state(net);
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.summary().find("I3"), std::string::npos);
}

TEST(Fsck, DetectsInUseOnNonEstablishedCircuit) {
  core::Simulation sim(clrp_small());
  sim.send(0, 5, 32);
  ASSERT_TRUE(sim.run_until_delivered(50000));
  auto& net = sim.network();
  const auto ids = net.circuits().active_ids();
  ASSERT_FALSE(ids.empty());
  auto& rec =
      const_cast<core::CircuitTable&>(net.circuits()).at(ids.front());
  rec.state = core::CircuitState::kProbing;
  rec.in_use = true;
  const auto result = check_control_state(net);
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.summary().find("I6"), std::string::npos);
}

}  // namespace
}  // namespace wavesim::verify
