// West-first turn-model routing: candidate structure, deadlock freedom by
// CDG acyclicity with a single VC, and end-to-end delivery.
#include "routing/westfirst.hpp"

#include <gtest/gtest.h>

#include "core/simulation.hpp"
#include "routing/cdg.hpp"
#include "sim/rng.hpp"

namespace wavesim::route {
namespace {

using topo::KAryNCube;

TEST(WestFirst, RejectsUnsupportedTopologies) {
  KAryNCube torus({4, 4}, true);
  EXPECT_THROW(WestFirstRouting(torus, 1), std::invalid_argument);
  KAryNCube cube({4, 4, 4}, false);
  EXPECT_THROW(WestFirstRouting(cube, 1), std::invalid_argument);
  KAryNCube mesh({4, 4}, false);
  EXPECT_NO_THROW(WestFirstRouting(mesh, 1));
}

TEST(WestFirst, GoesWestDeterministically) {
  KAryNCube mesh({8, 8}, false);
  WestFirstRouting wf(mesh, 2);
  // Destination is west and north: only west offered until x resolves.
  const auto cands = wf.route(mesh.node_of({5, 2}), kInvalidPort, kInvalidVc,
                              mesh.node_of({2, 6}));
  ASSERT_EQ(cands.size(), 2u);  // one port x two VCs
  for (const auto& c : cands) {
    EXPECT_EQ(c.port, KAryNCube::port_of(0, false));
    EXPECT_TRUE(c.escape);
  }
}

TEST(WestFirst, AdaptiveAmongEastNorthSouth) {
  KAryNCube mesh({8, 8}, false);
  WestFirstRouting wf(mesh, 1);
  const auto cands = wf.route(mesh.node_of({2, 2}), kInvalidPort, kInvalidVc,
                              mesh.node_of({5, 6}));
  // East and north are both minimal: both offered.
  ASSERT_EQ(cands.size(), 2u);
  std::set<PortId> ports{cands[0].port, cands[1].port};
  EXPECT_TRUE(ports.count(KAryNCube::port_of(0, true)));
  EXPECT_TRUE(ports.count(KAryNCube::port_of(1, true)));
}

TEST(WestFirst, NeverTurnsIntoWest) {
  // Property over all pairs: once the x offset is resolved or eastward,
  // west is never offered.
  KAryNCube mesh({6, 6}, false);
  WestFirstRouting wf(mesh, 1);
  for (NodeId s = 0; s < mesh.num_nodes(); ++s) {
    for (NodeId d = 0; d < mesh.num_nodes(); ++d) {
      if (s == d) continue;
      const auto off = mesh.min_offsets(s, d);
      for (const auto& c : wf.route(s, kInvalidPort, kInvalidVc, d)) {
        if (off[0] >= 0) {
          EXPECT_NE(c.port, KAryNCube::port_of(0, false));
        }
      }
    }
  }
}

TEST(WestFirst, CdgAcyclicWithOneVc) {
  KAryNCube mesh({5, 5}, false);
  WestFirstRouting wf(mesh, 1);
  const auto full = build_cdg(mesh, wf, 1, /*escape_only=*/false);
  EXPECT_GT(full.num_edges(), 0);
  EXPECT_TRUE(full.acyclic());
  const auto escape = build_cdg(mesh, wf, 1, /*escape_only=*/true);
  EXPECT_TRUE(escape.acyclic());
}

TEST(WestFirst, PathsAreMinimal) {
  KAryNCube mesh({6, 6}, false);
  WestFirstRouting wf(mesh, 1);
  sim::Rng rng{5};
  for (int trial = 0; trial < 400; ++trial) {
    const NodeId s = static_cast<NodeId>(rng.next_below(mesh.num_nodes()));
    NodeId d = static_cast<NodeId>(rng.next_below(mesh.num_nodes()));
    if (s == d) continue;
    NodeId cur = s;
    std::int32_t hops = 0;
    while (cur != d) {
      const auto cands = wf.route(cur, kInvalidPort, kInvalidVc, d);
      ASSERT_FALSE(cands.empty());
      cur = mesh.neighbor(cur, cands[rng.next_below(cands.size())].port);
      ASSERT_NE(cur, kInvalidNode);
      ASSERT_LE(++hops, mesh.distance(s, d));
    }
  }
}

TEST(WestFirst, EndToEndDeliveryOnMesh) {
  sim::SimConfig cfg;
  cfg.topology.radix = {6, 6};
  cfg.topology.torus = false;
  cfg.router.routing = sim::RoutingKind::kWestFirst;
  cfg.router.wormhole_vcs = 2;
  cfg.router.wave_switches = 0;
  cfg.protocol.protocol = sim::ProtocolKind::kWormholeOnly;
  core::Simulation sim(cfg);
  sim::Rng rng{17};
  int sent = 0;
  for (int i = 0; i < 120; ++i) {
    const NodeId s = static_cast<NodeId>(rng.next_below(36));
    NodeId d = static_cast<NodeId>(rng.next_below(36));
    if (d == s) d = (d + 1) % 36;
    sim.send(s, d, static_cast<std::int32_t>(4 + rng.next_below(28)));
    ++sent;
    sim.run(5);
  }
  ASSERT_TRUE(sim.run_until_delivered(500000));
  EXPECT_EQ(sim.stats().messages_delivered, static_cast<std::uint64_t>(sent));
}

TEST(WestFirst, ConfigValidation) {
  sim::SimConfig cfg = sim::SimConfig::default_torus();
  cfg.router.routing = sim::RoutingKind::kWestFirst;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);  // torus
  cfg.topology.torus = false;
  EXPECT_NO_THROW(cfg.validate());
  cfg.topology.radix = {4, 4, 4};
  EXPECT_THROW(cfg.validate(), std::invalid_argument);  // 3-D
  EXPECT_STREQ(sim::to_string(sim::RoutingKind::kWestFirst), "west-first");
}

}  // namespace
}  // namespace wavesim::route
