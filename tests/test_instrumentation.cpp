// Event instrumentation: per-message timelines respect causal order, the
// sink sees every milestone, trace capture replays faithfully, and the
// histogram API summarizes latencies.
#include <gtest/gtest.h>

#include <map>

#include "core/simulation.hpp"
#include "sim/rng.hpp"
#include "workload/trace.hpp"

namespace wavesim::core {
namespace {

sim::SimConfig clrp() {
  sim::SimConfig cfg = sim::SimConfig::default_torus();
  cfg.protocol.protocol = sim::ProtocolKind::kClrp;
  return cfg;
}

TEST(Instrumentation, EventKindNamesDistinct) {
  // Every EventKind has its own name and none falls through to the
  // unknown marker.
  std::set<std::string> names;
  for (std::size_t i = 0; i < kNumEventKinds; ++i) {
    const char* name = to_string(static_cast<EventKind>(i));
    EXPECT_STRNE(name, "?") << "EventKind " << i << " lacks a name";
    names.insert(name);
  }
  EXPECT_EQ(names.size(), kNumEventKinds);
}

TEST(Instrumentation, NoSinkMeansNoCost) {
  Instrumentation instr;
  EXPECT_FALSE(instr.enabled());
  instr.emit(0, EventKind::kSubmitted, 0);  // must be a harmless no-op
}

TEST(Instrumentation, CircuitMessageTimelineIsCausal) {
  Simulation sim(clrp());
  std::vector<Event> events;
  sim.set_event_sink([&](const Event& e) { events.push_back(e); });
  const MessageId id = sim.send(0, 27, 64);
  ASSERT_TRUE(sim.run_until_delivered(100000));

  auto at = [&](EventKind kind) -> const Event* {
    for (const auto& e : events) {
      if (e.kind == kind) return &e;
    }
    return nullptr;
  };
  const Event* submitted = at(EventKind::kSubmitted);
  const Event* probe = at(EventKind::kProbeLaunched);
  const Event* established = at(EventKind::kCircuitEstablished);
  const Event* started = at(EventKind::kTransferStarted);
  const Event* delivered = at(EventKind::kDelivered);
  const Event* completed = at(EventKind::kTransferCompleted);
  ASSERT_NE(submitted, nullptr);
  ASSERT_NE(probe, nullptr);
  ASSERT_NE(established, nullptr);
  ASSERT_NE(started, nullptr);
  ASSERT_NE(delivered, nullptr);
  ASSERT_NE(completed, nullptr);
  EXPECT_EQ(submitted->msg, id);
  EXPECT_EQ(started->msg, id);
  EXPECT_LE(submitted->at, probe->at);
  EXPECT_LT(probe->at, established->at);
  EXPECT_LE(established->at, started->at);
  EXPECT_LT(started->at, delivered->at);
  EXPECT_LE(delivered->at, completed->at);
  EXPECT_EQ(started->circuit, established->circuit);
}

TEST(Instrumentation, EvictionAndTeardownEventsFire) {
  sim::SimConfig cfg = clrp();
  cfg.protocol.circuit_cache_entries = 1;
  Simulation sim(cfg);
  std::map<EventKind, int> counts;
  sim.set_event_sink([&](const Event& e) { ++counts[e.kind]; });
  sim.send(0, 9, 32);
  ASSERT_TRUE(sim.run_until_delivered(100000));
  sim.send(0, 18, 32);  // evicts the circuit to 9
  ASSERT_TRUE(sim.run_until_delivered(100000));
  EXPECT_EQ(counts[EventKind::kEvicted], 1);
  EXPECT_EQ(counts[EventKind::kCircuitEstablished], 2);
  EXPECT_EQ(counts[EventKind::kDelivered], 2);
}

TEST(Instrumentation, WormholeMessagesAlsoReportDelivery) {
  Simulation sim(sim::SimConfig::wormhole_baseline());
  std::vector<Event> events;
  sim.set_event_sink([&](const Event& e) { events.push_back(e); });
  sim.send(0, 9, 16);
  ASSERT_TRUE(sim.run_until_delivered(100000));
  int delivered = 0;
  for (const auto& e : events) delivered += e.kind == EventKind::kDelivered;
  EXPECT_EQ(delivered, 1);
}

TEST(TraceCapture, ReplayPreservesWorkload) {
  // Record a CLRP run, replay its send sequence on a wormhole-only
  // network: same messages, same timestamps, everything delivered.
  Simulation original(clrp());
  sim::Rng rng{3};
  for (int i = 0; i < 40; ++i) {
    const NodeId s = static_cast<NodeId>(rng.next_below(64));
    NodeId d = static_cast<NodeId>(rng.next_below(64));
    if (d == s) d = (d + 1) % 64;
    original.send(s, d, static_cast<std::int32_t>(4 + rng.next_below(28)));
    original.run(7);
  }
  ASSERT_TRUE(original.run_until_delivered(500000));

  const load::Trace trace = load::capture(original.network().messages());
  EXPECT_EQ(trace.size(), 40u);
  Simulation replayed(sim::SimConfig::wormhole_baseline());
  ASSERT_TRUE(load::replay(trace, replayed, 500000));
  EXPECT_EQ(replayed.stats().messages_delivered, 40u);
  // Message identities and lengths carried over.
  for (std::size_t i = 0; i < 40; ++i) {
    const auto& a = original.network().messages().at(i);
    const auto& b = replayed.network().messages().at(i);
    EXPECT_EQ(a.src, b.src);
    EXPECT_EQ(a.dest, b.dest);
    EXPECT_EQ(a.length, b.length);
    EXPECT_EQ(a.created, b.created);
  }
}

TEST(LatencyHistogram, BinsDeliveredMessages) {
  Simulation sim(clrp());
  sim.send(0, 1, 8);    // short hop: small latency
  sim.send(0, 36, 256); // far + long: large latency
  ASSERT_TRUE(sim.run_until_delivered(100000));
  const auto hist = sim.latency_histogram(0.0, 1000.0, 20);
  EXPECT_EQ(hist.total(), 2u);
  EXPECT_EQ(hist.overflow(), 0u);
  // The two messages land in different bins.
  int nonempty = 0;
  for (std::size_t b = 0; b < hist.num_bins(); ++b) {
    nonempty += hist.bin_count(b) > 0 ? 1 : 0;
  }
  EXPECT_EQ(nonempty, 2);
  // Warmup filter excludes the early message.
  const auto late = sim.latency_histogram(0.0, 1000.0, 20, /*min_created=*/1);
  EXPECT_EQ(late.total(), 0u);  // both created at cycle 0
}

}  // namespace
}  // namespace wavesim::core
