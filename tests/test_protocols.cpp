// SetupSequencer: CLRP's three-phase structure (section 3.1) including the
// documented simplifications, and CARP's single sweep (section 3.2).
#include "core/protocols.hpp"

#include <gtest/gtest.h>

#include "core/circuit.hpp"
#include "core/message.hpp"

namespace wavesim::core {
namespace {

using Mode = SetupSequencer::Mode;

std::vector<SetupAttempt> drain(SetupSequencer& seq) {
  std::vector<SetupAttempt> attempts;
  attempts.push_back(seq.current());
  while (seq.advance()) attempts.push_back(seq.current());
  return attempts;
}

TEST(SetupSequencer, RejectsBadArguments) {
  EXPECT_THROW(SetupSequencer(Mode::kClrp, sim::ClrpVariant::kFull, 0, 0),
               std::invalid_argument);
  EXPECT_THROW(SetupSequencer(Mode::kClrp, sim::ClrpVariant::kFull, 2, 2),
               std::invalid_argument);
  EXPECT_THROW(SetupSequencer(Mode::kClrp, sim::ClrpVariant::kFull, 2, -1),
               std::invalid_argument);
}

TEST(SetupSequencer, ClrpFullTriesAllSwitchesThenForce) {
  SetupSequencer seq(Mode::kClrp, sim::ClrpVariant::kFull, 3, 1);
  const auto attempts = drain(seq);
  // Phase 1: switches 1,2,0 with Force=0; phase 2: same with Force=1.
  ASSERT_EQ(attempts.size(), 6u);
  EXPECT_EQ(attempts[0], (SetupAttempt{1, false}));
  EXPECT_EQ(attempts[1], (SetupAttempt{2, false}));
  EXPECT_EQ(attempts[2], (SetupAttempt{0, false}));
  EXPECT_EQ(attempts[3], (SetupAttempt{1, true}));
  EXPECT_EQ(attempts[4], (SetupAttempt{2, true}));
  EXPECT_EQ(attempts[5], (SetupAttempt{0, true}));
  EXPECT_TRUE(seq.exhausted());
  EXPECT_THROW(seq.current(), std::logic_error);
  EXPECT_FALSE(seq.advance());
}

TEST(SetupSequencer, ClrpForceFirstSkipsPhaseOne) {
  SetupSequencer seq(Mode::kClrp, sim::ClrpVariant::kForceFirst, 2, 0);
  EXPECT_EQ(seq.phase(), 2);
  const auto attempts = drain(seq);
  ASSERT_EQ(attempts.size(), 2u);
  EXPECT_EQ(attempts[0], (SetupAttempt{0, true}));
  EXPECT_EQ(attempts[1], (SetupAttempt{1, true}));
}

TEST(SetupSequencer, ClrpSingleSwitchTriesInitialOnly) {
  SetupSequencer seq(Mode::kClrp, sim::ClrpVariant::kSingleSwitch, 4, 2);
  const auto attempts = drain(seq);
  ASSERT_EQ(attempts.size(), 2u);
  EXPECT_EQ(attempts[0], (SetupAttempt{2, false}));
  EXPECT_EQ(attempts[1], (SetupAttempt{2, true}));
}

TEST(SetupSequencer, CarpNeverForces) {
  SetupSequencer seq(Mode::kCarp, sim::ClrpVariant::kFull, 3, 2);
  const auto attempts = drain(seq);
  ASSERT_EQ(attempts.size(), 3u);
  for (const auto& a : attempts) EXPECT_FALSE(a.force);
  EXPECT_EQ(attempts[0].switch_index, 2);
  EXPECT_EQ(attempts[1].switch_index, 0);
  EXPECT_EQ(attempts[2].switch_index, 1);
}

TEST(SetupSequencer, SingleSwitchNetworkClrp) {
  SetupSequencer seq(Mode::kClrp, sim::ClrpVariant::kFull, 1, 0);
  const auto attempts = drain(seq);
  ASSERT_EQ(attempts.size(), 2u);
  EXPECT_EQ(attempts[0], (SetupAttempt{0, false}));
  EXPECT_EQ(attempts[1], (SetupAttempt{0, true}));
}

TEST(SetupSequencer, AttemptCountAccumulates) {
  SetupSequencer seq(Mode::kCarp, sim::ClrpVariant::kFull, 2, 0);
  EXPECT_EQ(seq.attempts_made(), 0);
  seq.advance();
  EXPECT_EQ(seq.attempts_made(), 1);
  seq.advance();
  EXPECT_EQ(seq.attempts_made(), 2);
}

TEST(MessageModeNames, Distinct) {
  EXPECT_STREQ(to_string(MessageMode::kCircuitHit), "circuit-hit");
  EXPECT_STREQ(to_string(MessageMode::kCircuitAfterSetup),
               "circuit-after-setup");
  EXPECT_STREQ(to_string(MessageMode::kWormholeFallback), "wormhole-fallback");
  EXPECT_STREQ(to_string(MessageMode::kWormholePolicy), "wormhole-policy");
}

TEST(CircuitStateNames, Distinct) {
  EXPECT_STREQ(to_string(CircuitState::kProbing), "probing");
  EXPECT_STREQ(to_string(CircuitState::kEstablished), "established");
  EXPECT_STREQ(to_string(CircuitState::kTearingDown), "tearing-down");
  EXPECT_STREQ(to_string(CircuitState::kDead), "dead");
}

}  // namespace
}  // namespace wavesim::core
