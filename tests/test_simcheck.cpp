// Tests for the simcheck property harness itself: scenario generation is
// deterministic and always-valid, repro files round-trip exactly, the
// oracle stack is reproducible, and the shrinker minimizes while
// preserving the violation.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "check/oracle.hpp"
#include "check/scenario.hpp"
#include "check/shrink.hpp"
#include "check/simcheck.hpp"
#include "harness/sweep.hpp"
#include "sim/json.hpp"

namespace wavesim::check {
namespace {

TEST(HexU64, RoundTripsEdgeValues) {
  for (const std::uint64_t v :
       {0ull, 1ull, 0xdeadbeefull, ~0ull, 0x8000000000000000ull}) {
    std::uint64_t back = 1234;
    ASSERT_TRUE(parse_hex_u64(to_hex_u64(v), back)) << to_hex_u64(v);
    EXPECT_EQ(back, v);
  }
  std::uint64_t out = 0;
  EXPECT_FALSE(parse_hex_u64("", out));
  EXPECT_FALSE(parse_hex_u64("42", out));          // missing 0x
  EXPECT_FALSE(parse_hex_u64("0x", out));          // no digits
  EXPECT_FALSE(parse_hex_u64("0xg1", out));        // bad digit
  EXPECT_FALSE(parse_hex_u64("0x11223344556677889", out));  // > 16 digits
}

TEST(Scenario, GenerationIsDeterministic) {
  for (std::uint64_t seed : {1ull, 42ull, 0xabcdefull}) {
    EXPECT_EQ(Scenario::generate(seed), Scenario::generate(seed));
  }
  // The seed is the identity: different seeds explore different scenarios.
  EXPECT_FALSE(Scenario::generate(1) == Scenario::generate(2));
}

TEST(Scenario, GeneratedScenariosAlwaysValidateAndRepairIsIdempotent) {
  for (std::uint64_t seed = 0; seed < 300; ++seed) {
    const Scenario s =
        Scenario::generate(harness::derive_seed(7, seed, 0));
    EXPECT_NO_THROW(s.to_config().validate()) << s.label();
    Scenario again = s;
    again.repair();
    EXPECT_EQ(again, s) << "repair not idempotent for " << s.label();
  }
}

TEST(Scenario, RepairResolvesCrossFieldConstraints) {
  Scenario s;
  s.radix = {5, 5, 5};           // 125 nodes: over the size cap
  s.routing = sim::RoutingKind::kWestFirst;  // needs a 2-D mesh
  s.torus = true;
  s.wormhole_vcs = 0;
  s.pattern = "bit-reversal";    // needs power-of-two node count
  s.repair();
  EXPECT_NO_THROW(s.to_config().validate()) << s.label();
}

TEST(Scenario, JsonRoundTripIsExact) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const Scenario s =
        Scenario::generate(harness::derive_seed(11, seed, 0));
    // Through text, as a real repro file would travel.
    const Scenario back =
        Scenario::from_json(sim::JsonValue::parse(s.to_json().dump(2)));
    EXPECT_EQ(back, s) << s.label();
  }
}

TEST(Scenario, FromJsonRejectsCorruptDocuments) {
  sim::JsonValue good = Scenario::generate(3).to_json();
  EXPECT_NO_THROW(Scenario::from_json(good));

  sim::JsonValue missing = good;
  missing.set("protocol", nullptr);  // type mismatch
  EXPECT_THROW(Scenario::from_json(missing), std::runtime_error);

  sim::JsonValue bad_enum = good;
  bad_enum.set("routing", "shortest-path-first");
  EXPECT_THROW(Scenario::from_json(bad_enum), std::runtime_error);

  sim::JsonValue bad_seed = good;
  bad_seed.set("seed", "12345");  // not 0x-hex
  EXPECT_THROW(Scenario::from_json(bad_seed), std::runtime_error);

  EXPECT_THROW(Scenario::from_json(sim::JsonValue(1.0)), std::runtime_error);
}

TEST(Scenario, RepairCanonicalizesStormFields) {
  // Wormhole-only and pcs-only configurations cannot carry a dynamic
  // storm (no circuit planes to fail / no fallback): repair zeroes it.
  Scenario s = Scenario::generate(4);
  s.protocol = sim::ProtocolKind::kWormholeOnly;
  s.storm_fraction = 0.3;
  s.storm_at = 500;
  s.storm_repair = 100;
  s.repair();
  EXPECT_EQ(s.storm_fraction, 0.0);
  EXPECT_EQ(s.storm_at, 0u);
  EXPECT_EQ(s.storm_repair, 0u);

  Scenario p = Scenario::generate(4);
  p.protocol = sim::ProtocolKind::kClrp;
  p.pcs_only = true;
  p.storm_fraction = 0.3;
  p.repair();
  EXPECT_EQ(p.storm_fraction, 0.0);

  // An active storm lands inside the injection window.
  Scenario a = Scenario::generate(4);
  a.protocol = sim::ProtocolKind::kClrp;
  a.pcs_only = false;
  a.storm_fraction = 0.2;
  a.storm_at = 1'000'000;
  a.repair();
  EXPECT_GT(a.storm_fraction, 0.0);
  EXPECT_LE(a.storm_at, a.inject_cycles);
  EXPECT_GE(a.storm_at, 1u);
  EXPECT_NO_THROW(a.to_config().validate()) << a.label();
  EXPECT_GT(a.to_config().faults.storm.fraction, 0.0);
  EXPECT_TRUE(a.to_config().faults.dynamic());
}

TEST(Scenario, GenerationDrawsStormsAndEnsureStormForcesOne) {
  std::size_t with_storm = 0;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    const Scenario s = Scenario::generate(harness::derive_seed(13, seed, 0));
    if (s.storm_fraction > 0.0) ++with_storm;
    Scenario forced = s;
    forced.ensure_storm();
    EXPECT_GT(forced.storm_fraction, 0.0) << s.label();
    EXPECT_NO_THROW(forced.to_config().validate()) << forced.label();
    // ensure_storm is deterministic and stable under re-application.
    Scenario again = s;
    again.ensure_storm();
    EXPECT_EQ(again, forced);
    again.ensure_storm();
    EXPECT_EQ(again, forced);
  }
  // Roughly a third of generated scenarios carry a storm; the exact count
  // is pinned by the seeds, the band just guards the draw probability.
  EXPECT_GT(with_storm, 20u);
  EXPECT_LT(with_storm, 140u);
}

Scenario small_scenario() {
  Scenario s = Scenario::generate(5);
  s.radix = {4, 4};
  s.inject_cycles = 256;
  s.repair();
  return s;
}

TEST(Oracle, RunIsBitIdenticallyReproducible) {
  const Scenario s = small_scenario();
  const RunOutcome a = run_scenario(s);
  const RunOutcome b = run_scenario(s);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.final_cycle, b.final_cycle);
  EXPECT_EQ(a.violations, b.violations);
  EXPECT_TRUE(a.ok()) << a.summary();
}

TEST(Oracle, FlagsInvalidConfigInsteadOfThrowing) {
  Scenario s;              // deliberately NOT repaired:
  s.radix = {4, 4};
  s.torus = true;
  s.routing = sim::RoutingKind::kDimensionOrder;
  s.wormhole_vcs = 1;      // torus DOR needs >= 2 VCs
  const RunOutcome out = run_scenario(s);
  ASSERT_FALSE(out.ok());
  EXPECT_NE(out.violations.front().find("config invalid"), std::string::npos);
}

/// A scenario that always fails the oracle on a healthy build: the traffic
/// pattern name is unknown, so workload construction is rejected. Because
/// repair() leaves unknown names alone, the shrinker can minimize every
/// other knob while the violation persists.
Scenario always_failing_scenario() {
  Scenario s = Scenario::generate(9);
  s.pattern = "bogus-pattern";
  return s;
}

TEST(Shrink, MinimizesWhilePreservingTheViolation) {
  const Scenario original = always_failing_scenario();
  const RunOutcome outcome = run_scenario(original);
  ASSERT_FALSE(outcome.ok());

  const ShrinkResult result = shrink(original, outcome);
  EXPECT_FALSE(result.outcome.ok());
  EXPECT_GT(result.runs, 0u);
  EXPECT_GT(result.accepted, 0u);
  // Floor values reached by the transformation chain.
  EXPECT_EQ(result.scenario.inject_cycles, 128u);
  EXPECT_EQ(result.scenario.radix.size(), 1u);
  EXPECT_EQ(result.scenario.pattern, "bogus-pattern");
  // Shrinking is deterministic.
  const ShrinkResult again = shrink(original, outcome);
  EXPECT_EQ(again.scenario, result.scenario);
  EXPECT_EQ(again.runs, result.runs);
}

TEST(Simcheck, CleanRunOnHealthyBuild) {
  SimcheckOptions options;
  options.base_seed = 1;
  options.count = 25;
  const Report report = run_simcheck(options);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.scenarios_run, 25u);
}

TEST(Simcheck, ReportIsIndependentOfThreadCount) {
  for (const unsigned threads : {1u, 4u}) {
    SimcheckOptions options;
    options.base_seed = 77;
    options.count = 12;
    options.threads = threads;
    const Report report = run_simcheck(options);
    EXPECT_EQ(report.scenarios_run, 12u);
    EXPECT_TRUE(report.ok());
  }
}

TEST(Repro, JsonRoundTripsThroughTextExactly) {
  Failure failure;
  failure.index = 3;
  failure.original = always_failing_scenario();
  failure.original_outcome = run_scenario(failure.original);
  ShrinkResult shrunk = shrink(failure.original, failure.original_outcome);
  failure.shrunk = shrunk.scenario;
  failure.shrunk_outcome = shrunk.outcome;
  failure.shrink_runs = shrunk.runs;
  failure.shrink_accepted = shrunk.accepted;

  const std::string text = repro_to_json(failure).dump(2);
  const Failure back = repro_from_json(sim::JsonValue::parse(text));
  EXPECT_EQ(back.shrunk, failure.shrunk);
  EXPECT_EQ(back.original, failure.original);
  EXPECT_EQ(back.shrunk_outcome.fingerprint,
            failure.shrunk_outcome.fingerprint);
  EXPECT_EQ(back.shrunk_outcome.violations,
            failure.shrunk_outcome.violations);
  EXPECT_EQ(back.shrink_runs, failure.shrink_runs);
}

TEST(Repro, RejectsWrongSchemaAndMissingPieces) {
  EXPECT_THROW(repro_from_json(sim::JsonValue::parse("{}")),
               std::runtime_error);
  EXPECT_THROW(
      repro_from_json(sim::JsonValue::parse("{\"schema\": \"other.v9\"}")),
      std::runtime_error);
  sim::JsonValue no_scenario = sim::JsonValue::object();
  no_scenario.set("schema", "wavesim.repro.v1");
  EXPECT_THROW(repro_from_json(no_scenario), std::runtime_error);
}

TEST(Repro, WriteAndLoadFile) {
  Failure failure;
  failure.original = always_failing_scenario();
  failure.original_outcome = run_scenario(failure.original);
  failure.shrunk = failure.original;
  failure.shrunk_outcome = failure.original_outcome;

  const char* dir = std::getenv("TMPDIR");
  const std::string path =
      write_repro(failure, dir != nullptr ? dir : "/tmp");
  ASSERT_FALSE(path.empty());
  const Failure back = load_repro(path);
  EXPECT_EQ(back.shrunk, failure.shrunk);
  std::remove(path.c_str());

  EXPECT_THROW(load_repro("/nonexistent/repro.json"), std::runtime_error);
  EXPECT_EQ(write_repro(failure, "/nonexistent-dir"), "");
}

}  // namespace
}  // namespace wavesim::check
