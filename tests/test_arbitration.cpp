// Fairness and contention properties of the wormhole switch allocation.
#include <gtest/gtest.h>

#include "core/simulation.hpp"
#include "sim/rng.hpp"

namespace wavesim::wh {
namespace {

TEST(Arbitration, CompetingFlowsShareALinkFairly) {
  // Two steady flows from (0,0) and (0,1) both crossing column x=1..3 to
  // reach (3,0)/(3,1): same direction, different rows -- no shared link.
  // Instead share one link explicitly: sources (0,0) and (1,0)->... use
  // dest column so both use link (2,0)->(3,0): flows (0,0)->(3,0) and
  // (1,0)->(3,0) share links (1,0)->(2,0) and (2,0)->(3,0).
  sim::SimConfig cfg;
  cfg.topology.radix = {4, 4};
  cfg.topology.torus = false;
  cfg.protocol.protocol = sim::ProtocolKind::kWormholeOnly;
  cfg.router.wave_switches = 0;
  cfg.router.wormhole_vcs = 2;
  core::Simulation sim(cfg);
  const NodeId a = sim.topology().node_of({0, 0});
  const NodeId b = sim.topology().node_of({1, 0});
  const NodeId dest = sim.topology().node_of({3, 0});
  // Keep both sources saturated with back-to-back messages.
  for (int i = 0; i < 30; ++i) {
    sim.send(a, dest, 16);
    sim.send(b, dest, 16);
  }
  ASSERT_TRUE(sim.run_until_delivered(500000));
  // Per-source delivered byte counts must be equal (same offered volume)
  // and their completion times interleaved, not serialized: the last
  // message of each source should finish within ~25% of the other.
  Cycle last_a = 0;
  Cycle last_b = 0;
  for (const auto& rec : sim.network().messages().all()) {
    if (rec.src == a) last_a = std::max(last_a, rec.delivered);
    if (rec.src == b) last_b = std::max(last_b, rec.delivered);
  }
  const double hi = static_cast<double>(std::max(last_a, last_b));
  const double lo = static_cast<double>(std::min(last_a, last_b));
  EXPECT_LT(hi / lo, 1.25) << "link arbitration starved one flow";
}

TEST(Arbitration, EjectionPortContentionResolves) {
  // Every other node sends to one sink simultaneously; the sink's single
  // ejection port must drain them all without starvation.
  sim::SimConfig cfg;
  cfg.topology.radix = {4, 4};
  cfg.topology.torus = true;
  cfg.protocol.protocol = sim::ProtocolKind::kWormholeOnly;
  cfg.router.wave_switches = 0;
  core::Simulation sim(cfg);
  const NodeId sink = 5;
  std::uint64_t sent = 0;
  for (NodeId n = 0; n < 16; ++n) {
    if (n == sink) continue;
    sim.send(n, sink, 24);
    ++sent;
  }
  ASSERT_TRUE(sim.run_until_delivered(500000));
  EXPECT_EQ(sim.stats().messages_delivered, sent);
  // Lower bound: 15 x 24 flits through one ejection port takes >= 360
  // cycles; make sure the simulation respected the serial bottleneck.
  EXPECT_GE(sim.now(), 15u * 24u);
}

TEST(Arbitration, RoundRobinPreventsVcStarvationOnSharedLink) {
  // A long worm and a short message share +x links and the same dateline
  // class. With 2 VCs each class holds a single VC, so the short message
  // must legitimately wait behind the worm; with 4 VCs the class has two
  // channels and the short message interleaves past it.
  sim::SimConfig cfg;
  cfg.topology.radix = {8, 8};
  cfg.topology.torus = true;
  cfg.protocol.protocol = sim::ProtocolKind::kWormholeOnly;
  cfg.router.wave_switches = 0;
  cfg.router.wormhole_vcs = 4;
  core::Simulation sim(cfg);
  const MessageId big = sim.send(0, 4, 512);
  sim.run(30);  // the worm now occupies the +x path
  const MessageId small = sim.send(1, 4, 8);  // same links, other VC
  ASSERT_TRUE(sim.run_until_delivered(500000));
  const auto& log = sim.network().messages();
  EXPECT_LT(log.at(small).delivered, log.at(big).delivered)
      << "virtual channels failed to let the short message pass the worm";
}

}  // namespace
}  // namespace wavesim::wh
