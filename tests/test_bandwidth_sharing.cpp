// Control channels are virtual channels of the S0 physical links (paper
// section 2: each physical channel is split into k + w virtual channels).
// These tests pin down the bandwidth-sharing contract: control flits have
// priority, wormhole flits use what remains, and the circuit data plane is
// unaffected by either.
#include <gtest/gtest.h>

#include "core/simulation.hpp"
#include "sim/rng.hpp"

namespace wavesim::core {
namespace {

TEST(BandwidthSharing, ProbeTrafficStealsWormholeLinkSlots) {
  // Saturate one link with a wormhole stream, then hammer the control
  // plane with setups crossing the same link: the wormhole stream must
  // lose exactly the slots the probes and acks claim (it slows down but
  // still finishes).
  sim::SimConfig cfg = sim::SimConfig::default_torus();
  cfg.protocol.protocol = sim::ProtocolKind::kClrp;
  cfg.protocol.min_circuit_message_flits = 100000;  // sends go wormhole
  Simulation quiet(cfg);
  const MessageId alone = quiet.send(0, 2, 256);
  ASSERT_TRUE(quiet.run_until_delivered(100000));
  const double baseline = quiet.network().messages().at(alone).latency();

  Simulation busy(cfg);
  const MessageId contended = busy.send(0, 2, 256);
  // Setup churn across the same row: establish/teardown circuits 0 -> 2
  // repeatedly from node 1 (its control flits cross link (1,0)->(2,0),
  // which the wormhole stream also uses).
  for (int i = 0; i < 30; ++i) {
    busy.network().establish_circuit(1, 2);
    busy.run(40);
    busy.network().release_circuit(1, 2);
    busy.run(40);
  }
  ASSERT_TRUE(busy.run_until_delivered(200000));
  const double contended_latency =
      busy.network().messages().at(contended).latency();
  EXPECT_GE(contended_latency, baseline);
}

TEST(BandwidthSharing, CircuitDataPlaneIsImmuneToWormholeLoad) {
  // A circuit transfer uses the dedicated S1..Sk channels: its latency
  // must be identical with and without heavy wormhole background traffic
  // on the same links.
  sim::SimConfig cfg = sim::SimConfig::default_torus();
  cfg.protocol.protocol = sim::ProtocolKind::kClrp;
  auto measure = [&](bool background) {
    Simulation sim(cfg);
    sim.send(0, 4, 8);  // warm the circuit 0 -> 4
    EXPECT_TRUE(sim.run_until_delivered(100000));
    if (background) {
      // Background traffic crossing the same row (circuit or wormhole --
      // either way it must not perturb the established circuit's data
      // channels).
      for (int i = 0; i < 10; ++i) {
        sim.send(1, 5, 64);
        sim.send(2, 6, 64);
      }
    }
    const MessageId id = sim.send(0, 4, 128);
    EXPECT_TRUE(sim.run_until_delivered(300000));
    return sim.network().messages().at(id).latency();
  };
  const double clean = measure(false);
  const double noisy = measure(true);
  EXPECT_DOUBLE_EQ(clean, noisy);
}

TEST(BandwidthSharing, ControlPlaneFinishesUnderWormholeSaturation) {
  // Even with every S0 link saturated by wormhole worms, probes (which
  // have priority) must still establish circuits in bounded time.
  sim::SimConfig cfg = sim::SimConfig::default_torus();
  cfg.protocol.protocol = sim::ProtocolKind::kClrp;
  cfg.protocol.min_circuit_message_flits = 64;  // short => wormhole
  Simulation sim(cfg);
  sim::Rng rng{5};
  for (int i = 0; i < 150; ++i) {
    NodeId s = static_cast<NodeId>(rng.next_below(64));
    NodeId d = static_cast<NodeId>(rng.next_below(64));
    if (d == s) d = (d + 1) % 64;
    sim.send(s, d, 32);  // wormhole noise
  }
  const Cycle before = sim.now();
  const MessageId big = sim.send(0, 36, 128);  // circuit-eligible
  ASSERT_TRUE(sim.run_until_delivered(1'000'000));
  const auto& rec = sim.network().messages().at(big);
  EXPECT_EQ(rec.mode, MessageMode::kCircuitAfterSetup);
  // Setup + transfer despite total wormhole saturation: the probe needed
  // only its priority share of each link.
  EXPECT_LT(rec.delivered - before, 1200u);
}

}  // namespace
}  // namespace wavesim::core
