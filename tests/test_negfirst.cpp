// Negative-first turn-model routing on n-dimensional meshes.
#include "routing/negfirst.hpp"

#include <gtest/gtest.h>

#include "core/simulation.hpp"
#include "routing/cdg.hpp"
#include "sim/rng.hpp"

namespace wavesim::route {
namespace {

using topo::KAryNCube;

TEST(NegativeFirst, RejectsTorus) {
  KAryNCube torus({4, 4}, true);
  EXPECT_THROW(NegativeFirstRouting(torus, 1), std::invalid_argument);
  KAryNCube mesh({4, 4, 4}, false);
  EXPECT_NO_THROW(NegativeFirstRouting(mesh, 1));
}

TEST(NegativeFirst, NegativeLegsComeFirst) {
  KAryNCube mesh({6, 6}, false);
  NegativeFirstRouting nf(mesh, 1);
  // Dest is south-west: both negative directions offered, no positive.
  const auto both = nf.route(mesh.node_of({4, 4}), kInvalidPort, kInvalidVc,
                             mesh.node_of({1, 2}));
  ASSERT_EQ(both.size(), 2u);
  for (const auto& c : both) {
    EXPECT_FALSE(KAryNCube::is_positive(c.port));
  }
  // Mixed: dest is west and north -> only the negative (west) leg first.
  const auto mixed = nf.route(mesh.node_of({4, 2}), kInvalidPort, kInvalidVc,
                              mesh.node_of({1, 5}));
  ASSERT_EQ(mixed.size(), 1u);
  EXPECT_EQ(mixed.front().port, KAryNCube::port_of(0, false));
}

TEST(NegativeFirst, PositivePhaseIsAdaptive) {
  KAryNCube mesh({6, 6}, false);
  NegativeFirstRouting nf(mesh, 2);
  const auto cands = nf.route(mesh.node_of({1, 1}), kInvalidPort, kInvalidVc,
                              mesh.node_of({4, 5}));
  ASSERT_EQ(cands.size(), 4u);  // 2 ports x 2 VCs
  for (const auto& c : cands) {
    EXPECT_TRUE(KAryNCube::is_positive(c.port));
  }
}

TEST(NegativeFirst, CdgAcyclicOn2DAnd3DMesh) {
  for (auto radix : {std::vector<std::int32_t>{5, 5},
                     std::vector<std::int32_t>{3, 3, 3}}) {
    KAryNCube mesh(radix, false);
    NegativeFirstRouting nf(mesh, 1);
    const auto g = build_cdg(mesh, nf, 1, /*escape_only=*/false);
    EXPECT_GT(g.num_edges(), 0);
    EXPECT_TRUE(g.acyclic()) << "dims=" << radix.size();
  }
}

TEST(NegativeFirst, PathsAreMinimal) {
  KAryNCube mesh({4, 4, 4}, false);
  NegativeFirstRouting nf(mesh, 1);
  sim::Rng rng{9};
  for (int trial = 0; trial < 300; ++trial) {
    const NodeId s = static_cast<NodeId>(rng.next_below(mesh.num_nodes()));
    NodeId d = static_cast<NodeId>(rng.next_below(mesh.num_nodes()));
    if (s == d) continue;
    NodeId cur = s;
    std::int32_t hops = 0;
    while (cur != d) {
      const auto cands = nf.route(cur, kInvalidPort, kInvalidVc, d);
      ASSERT_FALSE(cands.empty());
      cur = mesh.neighbor(cur, cands[rng.next_below(cands.size())].port);
      ASSERT_NE(cur, kInvalidNode);
      ASSERT_LE(++hops, mesh.distance(s, d));
    }
  }
}

TEST(NegativeFirst, EndToEndOn3DMesh) {
  sim::SimConfig cfg;
  cfg.topology.radix = {3, 3, 3};
  cfg.topology.torus = false;
  cfg.router.routing = sim::RoutingKind::kNegativeFirst;
  cfg.router.wormhole_vcs = 2;
  cfg.router.wave_switches = 0;
  cfg.protocol.protocol = sim::ProtocolKind::kWormholeOnly;
  core::Simulation sim(cfg);
  sim::Rng rng{21};
  std::uint64_t sent = 0;
  for (int i = 0; i < 100; ++i) {
    const NodeId s = static_cast<NodeId>(rng.next_below(27));
    NodeId d = static_cast<NodeId>(rng.next_below(27));
    if (d == s) d = (d + 1) % 27;
    sim.send(s, d, static_cast<std::int32_t>(4 + rng.next_below(28)));
    ++sent;
    sim.run(6);
  }
  ASSERT_TRUE(sim.run_until_delivered(500000));
  EXPECT_EQ(sim.stats().messages_delivered, sent);
}

TEST(NegativeFirst, ConfigValidation) {
  sim::SimConfig cfg = sim::SimConfig::default_torus();
  cfg.router.routing = sim::RoutingKind::kNegativeFirst;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);  // torus
  cfg.topology.torus = false;
  EXPECT_NO_THROW(cfg.validate());
  cfg.topology.radix = {4, 4, 4};  // any dimensionality is fine on a mesh
  EXPECT_NO_THROW(cfg.validate());
  EXPECT_STREQ(sim::to_string(sim::RoutingKind::kNegativeFirst),
               "negative-first");
}

}  // namespace
}  // namespace wavesim::route
