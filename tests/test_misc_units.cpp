// Unit tests for small shared components: delay lines, the link gate,
// the message log, and aggregate stat fields.
#include <gtest/gtest.h>

#include "core/simulation.hpp"
#include "sim/delay_line.hpp"
#include "wormhole/link_gate.hpp"

namespace wavesim {
namespace {

TEST(DelayLine, DeliversAfterExactLatency) {
  sim::DelayLine<int> line(3);
  line.push(/*now=*/10, 42);
  EXPECT_FALSE(line.ready(10));
  EXPECT_FALSE(line.ready(12));
  EXPECT_TRUE(line.ready(13));
  EXPECT_TRUE(line.ready(20));  // stays ready until popped
  EXPECT_EQ(line.pop(), 42);
  EXPECT_TRUE(line.empty());
}

TEST(DelayLine, FifoAcrossPushCycles) {
  sim::DelayLine<int> line(2);
  line.push(0, 1);
  line.push(0, 2);
  line.push(1, 3);
  EXPECT_EQ(line.size(), 3u);
  ASSERT_TRUE(line.ready(2));
  EXPECT_EQ(line.pop(), 1);
  ASSERT_TRUE(line.ready(2));
  EXPECT_EQ(line.pop(), 2);
  EXPECT_FALSE(line.ready(2));  // item 3 due at cycle 3
  ASSERT_TRUE(line.ready(3));
  EXPECT_EQ(line.pop(), 3);
}

TEST(DelayLine, ZeroItemsNeverReady) {
  sim::DelayLine<int> line(1);
  EXPECT_FALSE(line.ready(1000));
  EXPECT_TRUE(line.empty());
}

TEST(LinkGate, OneClaimPerLinkPerCycle) {
  topo::KAryNCube mesh({4, 4}, false);
  wh::ExclusiveLinkGate gate(mesh);
  EXPECT_TRUE(gate.try_acquire(0, 0));
  EXPECT_FALSE(gate.try_acquire(0, 0));   // same link, same cycle
  EXPECT_TRUE(gate.try_acquire(0, 2));    // different port
  EXPECT_TRUE(gate.try_acquire(1, 0));    // different node
  EXPECT_TRUE(gate.in_use(0, 0));
  EXPECT_FALSE(gate.in_use(1, 2));
  gate.reset();
  EXPECT_TRUE(gate.try_acquire(0, 0));    // fresh cycle
}

TEST(MessageLog, CreateAssignsDenseIds) {
  core::MessageLog log;
  EXPECT_EQ(log.create(0, 1, 8, 100), 0);
  EXPECT_EQ(log.create(2, 3, 16, 101), 1);
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.at(1).src, 2);
  EXPECT_EQ(log.at(1).length, 16);
  EXPECT_EQ(log.at(1).created, 101u);
  EXPECT_FALSE(log.at(0).done);
}

TEST(MessageLog, DoubleDeliveryThrows) {
  core::MessageLog log;
  const MessageId id = log.create(0, 1, 8, 0);
  log.mark_delivered(id, 50);
  EXPECT_TRUE(log.at(id).done);
  EXPECT_EQ(log.at(id).latency(), 50.0);
  EXPECT_THROW(log.mark_delivered(id, 60), std::logic_error);
}

TEST(SimulationStats, PerModeLatenciesAreConsistent) {
  sim::SimConfig cfg = sim::SimConfig::default_torus();
  cfg.protocol.protocol = sim::ProtocolKind::kClrp;
  cfg.protocol.min_circuit_message_flits = 64;
  core::Simulation sim(cfg);
  sim.send(0, 36, 8);     // wormhole by policy
  sim.send(0, 36, 128);   // circuit after setup
  ASSERT_TRUE(sim.run_until_delivered(100000));
  sim.send(0, 36, 128);   // circuit hit
  ASSERT_TRUE(sim.run_until_delivered(100000));
  const auto s = sim.stats();
  EXPECT_EQ(s.wormhole_count, 1u);
  EXPECT_EQ(s.circuit_setup_count, 1u);
  EXPECT_EQ(s.circuit_hit_count, 1u);
  EXPECT_GT(s.wormhole_latency, 0.0);
  EXPECT_GT(s.circuit_setup_latency, s.circuit_hit_latency);
  // The overall mean lies between the per-mode extremes.
  EXPECT_GE(s.latency_mean,
            std::min({s.wormhole_latency, s.circuit_hit_latency,
                      s.circuit_setup_latency}));
  EXPECT_LE(s.latency_mean,
            std::max({s.wormhole_latency, s.circuit_hit_latency,
                      s.circuit_setup_latency}));
  EXPECT_DOUBLE_EQ(s.cache_hit_rate(), 0.5);  // 1 hit, 1 miss
}

TEST(Network, QuiescentTracksPendingWork) {
  sim::SimConfig cfg = sim::SimConfig::default_torus();
  cfg.protocol.protocol = sim::ProtocolKind::kClrp;
  core::Simulation sim(cfg);
  EXPECT_TRUE(sim.network().quiescent());
  sim.send(0, 9, 32);
  EXPECT_FALSE(sim.network().quiescent());
  ASSERT_TRUE(sim.run_until_delivered(100000));
  EXPECT_TRUE(sim.network().quiescent());
}

TEST(Network, FaultyChannelCountMatchesConfig) {
  sim::SimConfig cfg = sim::SimConfig::default_torus();
  cfg.protocol.protocol = sim::ProtocolKind::kClrp;
  cfg.faults.link_fault_rate = 0.25;
  core::Simulation sim(cfg);
  // 64 nodes x 4 ports x k=2 switches = 512 channels; ~25% faulty.
  EXPECT_NEAR(static_cast<double>(sim.network().faulty_channels()), 128.0,
              40.0);
  sim::SimConfig clean = sim::SimConfig::default_torus();
  core::Simulation no_faults(clean);
  EXPECT_EQ(no_faults.network().faulty_channels(), 0);
}

}  // namespace
}  // namespace wavesim
