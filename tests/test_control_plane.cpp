// Control-plane tests: probe setup, backtracking, Force semantics,
// ack/teardown/release-request walks, and the race rules from the proof of
// Theorem 1.
#include "core/control_plane.hpp"

#include <gtest/gtest.h>

#include "wormhole/link_gate.hpp"

namespace wavesim::core {
namespace {

using topo::KAryNCube;

class ControlPlaneTest : public ::testing::Test {
 protected:
  ControlPlaneTest()
      : topo_({4, 4}, true), gate_(topo_),
        plane_(topo_, circuits_, gate_, ControlPlaneParams{2, 2}) {}

  /// Run `cycles` control-plane cycles (gate reset each cycle).
  void run(int cycles) {
    for (int i = 0; i < cycles; ++i) {
      gate_.reset();
      plane_.step(now_++);
      for (const auto& r : plane_.take_probe_results()) results_.push_back(r);
      for (const auto& d : plane_.take_release_demands()) demands_.push_back(d);
      for (const auto& t : plane_.take_teardowns_done()) torn_.push_back(t);
    }
  }

  /// Establish a circuit src -> dest on switch `sw`; returns its id.
  CircuitId establish(NodeId src, NodeId dest, std::int32_t sw = 0) {
    const CircuitId c = circuits_.create(src, dest, sw);
    plane_.launch_probe(c, /*force=*/false);
    run(64);
    EXPECT_EQ(circuits_.at(c).state, CircuitState::kEstablished)
        << "setup of " << src << "->" << dest << " did not finish";
    return c;
  }

  bool got_success(CircuitId c) const {
    for (const auto& r : results_) {
      if (r.circuit == c && r.success) return true;
    }
    return false;
  }
  bool got_failure(CircuitId c) const {
    for (const auto& r : results_) {
      if (r.circuit == c && !r.success) return true;
    }
    return false;
  }

  KAryNCube topo_;
  wh::ExclusiveLinkGate gate_;
  CircuitTable circuits_;
  ControlPlane plane_;
  Cycle now_ = 0;
  std::vector<ProbeResult> results_;
  std::vector<ReleaseDemand> demands_;
  std::vector<TeardownDone> torn_;
};

TEST_F(ControlPlaneTest, EstablishesMinimalCircuitOnEmptyNetwork) {
  const NodeId src = topo_.node_of({0, 0});
  const NodeId dest = topo_.node_of({2, 1});
  const CircuitId c = establish(src, dest);
  EXPECT_TRUE(got_success(c));
  const auto& rec = circuits_.at(c);
  EXPECT_EQ(rec.hops(), topo_.distance(src, dest));
  // Every hop's registers are busy with ack returned.
  NodeId at = src;
  for (PortId p : rec.path) {
    EXPECT_EQ(plane_.registers(at, 0).status(p),
              pcs::ChannelStatus::kBusyCircuit);
    EXPECT_TRUE(plane_.registers(at, 0).ack_returned(p));
    at = topo_.neighbor(at, p);
  }
  EXPECT_EQ(at, dest);
  EXPECT_TRUE(plane_.idle());
}

TEST_F(ControlPlaneTest, SetupTakesRoundTripTime) {
  const NodeId src = topo_.node_of({0, 0});
  const NodeId dest = topo_.node_of({2, 0});
  const CircuitId c = circuits_.create(src, dest, 0);
  plane_.launch_probe(c, false);
  // Probe: 2 hops forward; ack: 2 hops back; plus decision cycles.
  run(3);
  EXPECT_EQ(circuits_.at(c).state, CircuitState::kProbing);
  run(8);
  EXPECT_EQ(circuits_.at(c).state, CircuitState::kEstablished);
}

TEST_F(ControlPlaneTest, DisjointCircuitsCoexist) {
  const CircuitId a = establish(topo_.node_of({0, 0}), topo_.node_of({1, 0}));
  const CircuitId b = establish(topo_.node_of({2, 2}), topo_.node_of({3, 2}));
  EXPECT_TRUE(got_success(a));
  EXPECT_TRUE(got_success(b));
  EXPECT_EQ(circuits_.active(), 2u);
}

TEST_F(ControlPlaneTest, SecondSwitchHostsOverlappingCircuit) {
  const NodeId src = topo_.node_of({0, 0});
  const NodeId dest = topo_.node_of({2, 0});
  establish(src, dest, /*sw=*/0);
  // Same physical route on switch 1 must also succeed (separate channels).
  const CircuitId c2 = establish(src, dest, /*sw=*/1);
  EXPECT_TRUE(got_success(c2));
}

TEST_F(ControlPlaneTest, ProbeMisroutesAroundBusyChannel) {
  const NodeId src = topo_.node_of({0, 0});
  const NodeId dest = topo_.node_of({2, 0});
  // Fill the whole straight-line row: circuit (0,0)->(2,0) over switch 0.
  establish(src, dest, 0);
  // A second circuit for the same pair on the same switch must route
  // around the occupied +x channels.
  const CircuitId c2 = circuits_.create(src, dest, 0);
  plane_.launch_probe(c2, false);
  run(64);
  EXPECT_TRUE(got_success(c2));
  // It cannot have taken the occupied straight-line first hop.
  EXPECT_NE(circuits_.at(c2).path.front(), KAryNCube::port_of(0, true));
  EXPECT_GE(circuits_.at(c2).hops(), topo_.distance(src, dest));
}

TEST_F(ControlPlaneTest, ProbeFailsWhenNoPathWithinBudget) {
  // Saturate every outgoing channel of the source on switch 0 with
  // established circuits so a new probe cannot even leave.
  const NodeId src = topo_.node_of({1, 1});
  for (PortId p = 0; p < topo_.num_ports(); ++p) {
    const NodeId n = topo_.neighbor(src, p);
    establish(src, n, 0);
  }
  const CircuitId c = circuits_.create(src, topo_.node_of({3, 3}), 0);
  plane_.launch_probe(c, /*force=*/false);
  run(16);
  EXPECT_TRUE(got_failure(c));
  EXPECT_TRUE(plane_.idle());
}

TEST_F(ControlPlaneTest, TeardownFreesEveryChannel) {
  const NodeId src = topo_.node_of({0, 0});
  const NodeId dest = topo_.node_of({2, 1});
  const CircuitId c = establish(src, dest);
  const auto path = circuits_.at(c).path;
  plane_.start_teardown(c);
  run(16);
  EXPECT_FALSE(circuits_.contains(c));
  ASSERT_EQ(torn_.size(), 1u);
  EXPECT_EQ(torn_[0].circuit, c);
  NodeId at = src;
  for (PortId p : path) {
    EXPECT_EQ(plane_.registers(at, 0).status(p), pcs::ChannelStatus::kFree);
    at = topo_.neighbor(at, p);
  }
}

TEST_F(ControlPlaneTest, TeardownRequiresIdleEstablishedCircuit) {
  const CircuitId c = establish(topo_.node_of({0, 0}), topo_.node_of({1, 0}));
  circuits_.at(c).in_use = true;
  EXPECT_THROW(plane_.start_teardown(c), std::logic_error);
  circuits_.at(c).in_use = false;
  plane_.start_teardown(c);
  EXPECT_THROW(plane_.start_teardown(c), std::logic_error);  // not established
}

TEST_F(ControlPlaneTest, ForceProbeDemandsReleaseFromCrossingCircuitSource) {
  // Circuit A: (0,0) -> (2,0) occupies (0,0)+x and (1,0)+x on switch 0.
  const NodeId a_src = topo_.node_of({0, 0});
  const CircuitId a = establish(a_src, topo_.node_of({2, 0}), 0);
  // A force probe from (1,0) toward (2,0) has exactly one minimal port,
  // the +x channel held by A (which crosses (1,0) but starts elsewhere):
  // it must wait and send a release request to A's source.
  const NodeId b_src = topo_.node_of({1, 0});
  const CircuitId f = circuits_.create(b_src, topo_.node_of({2, 0}), 0);
  plane_.launch_probe(f, /*force=*/true);
  run(8);
  ASSERT_FALSE(demands_.empty());
  EXPECT_EQ(demands_[0].circuit, a);
  EXPECT_EQ(demands_[0].src, a_src);
  // Honor the demand: tear A down; the probe must then complete.
  plane_.start_teardown(a);
  run(64);
  EXPECT_TRUE(got_success(f));
}

TEST_F(ControlPlaneTest, ForceProbeBacktracksOffPendingCircuits) {
  // Occupy all out-channels of src with *reservations* (probes that can
  // never finish because their destinations' channels are all reserved by
  // each other is hard to stage; instead park probes by exhausting the
  // gate). Simpler staging: reserve channels directly through probes that
  // are still searching far away is not possible deterministically, so we
  // verify via the decision function's unit tests plus this integration
  // property: a force probe whose every exit is probe-reserved fails
  // rather than waits forever.
  const NodeId src = topo_.node_of({1, 1});
  // Launch four probes from src that will sit in kProbing state for at
  // least a few cycles while they search; then immediately launch the
  // force probe. All of src's channels are reserved by the four probes'
  // first hops.
  for (PortId p = 0; p < topo_.num_ports(); ++p) {
    const NodeId far = topo_.node_of({3, 3});
    const CircuitId c = circuits_.create(src, far, 0);
    plane_.launch_probe(c, false);
    (void)p;
  }
  gate_.reset();
  plane_.step(now_++);  // all four probes take their first hop
  const CircuitId f = circuits_.create(src, topo_.node_of({3, 1}), 0);
  plane_.launch_probe(f, /*force=*/true);
  gate_.reset();
  plane_.step(now_++);
  // The force probe should have failed immediately (backtrack at source
  // with empty stack) or very soon; it must never emit a release demand.
  run(4);
  EXPECT_TRUE(got_failure(f));
  EXPECT_TRUE(demands_.empty());
}

TEST_F(ControlPlaneTest, TwoForceProbesBothRequestReleaseOfSameCircuit) {
  // Two force probes waiting on channels of the same established circuit
  // each send a release request; the source therefore sees duplicate
  // demands and (in the full stack) the NI honors the first and discards
  // the second. At plane level we assert both demands arrive and honoring
  // once lets at least the first waiter proceed.
  const NodeId a_src = topo_.node_of({0, 0});
  const CircuitId a = establish(a_src, topo_.node_of({2, 0}), 0);  // +x,+x
  // f1 waits on (0,0)+x at A's own source (direct demand); f2 waits on
  // (1,0)+x mid-circuit (travelling release request).
  const CircuitId f1 = circuits_.create(topo_.node_of({0, 0}),
                                        topo_.node_of({1, 0}), 0);
  const CircuitId f2 = circuits_.create(topo_.node_of({1, 0}),
                                        topo_.node_of({2, 0}), 0);
  plane_.launch_probe(f1, true);
  plane_.launch_probe(f2, true);
  run(16);
  int demands_for_a = 0;
  for (const auto& d : demands_) {
    if (d.circuit == a) {
      ++demands_for_a;
      EXPECT_EQ(d.src, a_src);
    }
  }
  EXPECT_EQ(demands_for_a, 2);
  // Honor the demand once (the duplicate is simply not acted upon).
  plane_.start_teardown(a);
  run(128);
  EXPECT_TRUE(got_success(f1));
  EXPECT_TRUE(got_success(f2));
  EXPECT_TRUE(plane_.idle());
}

TEST_F(ControlPlaneTest, ReleaseRequestRaceWithTeardownIsDiscarded) {
  const NodeId a_src = topo_.node_of({0, 0});
  // A: (0,0)->(2,1); MB-m prefers the longer offset first, so the path is
  // +x, +x, +y with channels (0,0)+x, (1,0)+x, (2,0)+y.
  const CircuitId a = establish(a_src, topo_.node_of({2, 1}), 0);
  ASSERT_EQ(circuits_.at(a).path.front(), KAryNCube::port_of(0, true));
  // Force probe from (2,0) toward (2,1) waits on A's channel at (2,0) and
  // spawns a release request that must walk two hops back to (0,0).
  const NodeId mid = topo_.node_of({2, 0});
  const CircuitId f = circuits_.create(mid, topo_.node_of({2, 1}), 0);
  plane_.launch_probe(f, true);
  gate_.reset();
  plane_.step(now_++);  // probe waits and spawns the release request
  // Tear A down immediately: the teardown releases (0,0)+x before the
  // travelling request can cross it, so the request finds the mapping gone
  // and is discarded mid-path.
  plane_.start_teardown(a);
  const auto discarded_before = plane_.stats().release_requests_discarded;
  run(64);
  EXPECT_GT(plane_.stats().release_requests_discarded, discarded_before);
  // No demand ever reaches the source, yet the probe completes because the
  // teardown freed the channel it was waiting for.
  EXPECT_TRUE(demands_.empty());
  EXPECT_TRUE(got_success(f));
  EXPECT_TRUE(plane_.idle());
}

TEST_F(ControlPlaneTest, FaultyChannelsAreRoutedAround) {
  const NodeId src = topo_.node_of({0, 0});
  const NodeId dest = topo_.node_of({2, 0});
  plane_.mark_faulty(src, 0, KAryNCube::port_of(0, true));
  const CircuitId c = circuits_.create(src, dest, 0);
  plane_.launch_probe(c, false);
  run(64);
  EXPECT_TRUE(got_success(c));
  // First hop cannot be the faulty +x channel.
  EXPECT_NE(circuits_.at(c).path.front(), KAryNCube::port_of(0, true));
}

TEST_F(ControlPlaneTest, ProbeStepsAreBoundedByHistory) {
  // Livelock freedom: even under heavy contention a probe's decision steps
  // stay within the finite search bound (every advance consumes one
  // unsearched (node, port) entry).
  for (int i = 0; i < 8; ++i) {
    const NodeId s = static_cast<NodeId>((i * 5) % 16);
    const NodeId d = static_cast<NodeId>((i * 7 + 3) % 16);
    if (s == d) continue;
    const CircuitId c = circuits_.create(s, d, 0);
    plane_.launch_probe(c, false);
  }
  run(512);
  EXPECT_TRUE(plane_.idle());
  // Bound: steps <= advances + backtracks + waits; generous static cap.
  EXPECT_LT(plane_.stats().max_probe_steps,
            static_cast<std::uint64_t>(topo_.num_nodes()) *
                topo_.num_ports() * 4);
}

TEST_F(ControlPlaneTest, DebugDumpDescribesLiveState) {
  const CircuitId a = establish(topo_.node_of({0, 0}), topo_.node_of({2, 0}));
  // Park a force probe waiting on A's first channel.
  const CircuitId f = circuits_.create(topo_.node_of({0, 0}),
                                       topo_.node_of({1, 0}), 0);
  plane_.launch_probe(f, true);
  run(4);
  const std::string dump = plane_.debug_dump();
  EXPECT_NE(dump.find("probe"), std::string::npos);
  EXPECT_NE(dump.find("FORCE"), std::string::npos);
  EXPECT_NE(dump.find("WAITING"), std::string::npos);
  EXPECT_NE(dump.find(std::to_string(a)), std::string::npos);
}

TEST_F(ControlPlaneTest, LaunchProbeValidatesState) {
  const CircuitId c = establish(topo_.node_of({0, 0}), topo_.node_of({1, 0}));
  EXPECT_THROW(plane_.launch_probe(c, false), std::logic_error);
}

}  // namespace
}  // namespace wavesim::core
