#include "routing/routing.hpp"

#include <gtest/gtest.h>

#include "routing/dor.hpp"
#include "routing/duato.hpp"
#include "sim/rng.hpp"

namespace wavesim::route {
namespace {

using topo::KAryNCube;

/// Walk a packet from src to dest always taking the first candidate;
/// returns number of hops (fails the test on a non-progressing walk).
std::int32_t walk_first_candidate(const KAryNCube& t,
                                  const RoutingAlgorithm& algo, NodeId src,
                                  NodeId dest) {
  NodeId cur = src;
  PortId in_port = kInvalidPort;
  VcId in_vc = kInvalidVc;
  std::int32_t hops = 0;
  while (cur != dest) {
    const auto candidates = algo.route(cur, in_port, in_vc, dest);
    EXPECT_FALSE(candidates.empty()) << "stuck at node " << cur;
    if (candidates.empty()) return -1;
    const auto& c = candidates.front();
    const NodeId next = t.neighbor(cur, c.port);
    EXPECT_NE(next, kInvalidNode);
    in_port = KAryNCube::opposite(c.port);
    in_vc = c.vc;
    cur = next;
    if (++hops > 4 * t.num_nodes()) {
      ADD_FAILURE() << "walk did not terminate";
      return -1;
    }
  }
  return hops;
}

TEST(Dor, RejectsTooFewVcs) {
  KAryNCube torus({4, 4}, true);
  EXPECT_THROW(DimensionOrderRouting(torus, 1), std::invalid_argument);
  KAryNCube mesh({4, 4}, false);
  EXPECT_NO_THROW(DimensionOrderRouting(mesh, 1));
}

TEST(Dor, PathsAreMinimalOnMesh) {
  KAryNCube mesh({5, 4}, false);
  DimensionOrderRouting dor(mesh, 2);
  for (NodeId s = 0; s < mesh.num_nodes(); ++s) {
    for (NodeId d = 0; d < mesh.num_nodes(); ++d) {
      if (s == d) continue;
      EXPECT_EQ(walk_first_candidate(mesh, dor, s, d), mesh.distance(s, d));
    }
  }
}

TEST(Dor, PathsAreMinimalOnTorus) {
  KAryNCube torus({5, 4}, true);
  DimensionOrderRouting dor(torus, 2);
  for (NodeId s = 0; s < torus.num_nodes(); ++s) {
    for (NodeId d = 0; d < torus.num_nodes(); ++d) {
      if (s == d) continue;
      EXPECT_EQ(walk_first_candidate(torus, dor, s, d), torus.distance(s, d));
    }
  }
}

TEST(Dor, RoutesLowestDimensionFirst) {
  KAryNCube mesh({4, 4}, false);
  DimensionOrderRouting dor(mesh, 1);
  const auto cands = dor.route(mesh.node_of({0, 0}), kInvalidPort, kInvalidVc,
                               mesh.node_of({2, 3}));
  ASSERT_FALSE(cands.empty());
  EXPECT_EQ(KAryNCube::dim_of(cands.front().port), 0);
  EXPECT_TRUE(KAryNCube::is_positive(cands.front().port));
}

TEST(Dor, AllCandidatesAreEscape) {
  KAryNCube torus({4, 4}, true);
  DimensionOrderRouting dor(torus, 4);
  for (NodeId s = 0; s < torus.num_nodes(); ++s) {
    for (NodeId d = 0; d < torus.num_nodes(); ++d) {
      if (s == d) continue;
      for (const auto& c : dor.route(s, kInvalidPort, kInvalidVc, d)) {
        EXPECT_TRUE(c.escape);
      }
    }
  }
}

TEST(Dor, MeshUsesAllVcs) {
  KAryNCube mesh({4, 4}, false);
  DimensionOrderRouting dor(mesh, 3);
  const auto cands = dor.route(0, kInvalidPort, kInvalidVc, 5);
  EXPECT_EQ(cands.size(), 3u);
}

TEST(Dor, TorusVcClassSwitchesAfterWrap) {
  KAryNCube torus({8, 8}, true);
  DimensionOrderRouting dor(torus, 2);
  // Route from x=6 to x=1: goes positive, wraps at x=7 -> x=0.
  const NodeId dest = torus.node_of({1, 0});
  // Pre-wrap (x=6 > 1): class 1.
  auto pre = dor.route(torus.node_of({6, 0}), kInvalidPort, kInvalidVc, dest);
  ASSERT_EQ(pre.size(), 1u);
  EXPECT_EQ(pre.front().vc, 1);
  // Post-wrap (x=0 < 1): class 0.
  auto post = dor.route(torus.node_of({0, 0}), kInvalidPort, kInvalidVc, dest);
  ASSERT_EQ(post.size(), 1u);
  EXPECT_EQ(post.front().vc, 0);
}

TEST(Dor, NonWrappingTorusRouteUsesClassZero) {
  KAryNCube torus({8, 8}, true);
  DimensionOrderRouting dor(torus, 2);
  const auto cands = dor.route(torus.node_of({2, 0}), kInvalidPort, kInvalidVc,
                               torus.node_of({5, 0}));
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_EQ(cands.front().vc, 0);
}

TEST(Dor, VcsOfClassPartitionOnTorus) {
  KAryNCube torus({4, 4}, true);
  DimensionOrderRouting dor(torus, 4);
  const auto c0 = dor.vcs_of_class(0);
  const auto c1 = dor.vcs_of_class(1);
  EXPECT_EQ(c0, (std::vector<VcId>{0, 1}));
  EXPECT_EQ(c1, (std::vector<VcId>{2, 3}));
}

TEST(Duato, RejectsTooFewVcs) {
  KAryNCube torus({4, 4}, true);
  EXPECT_THROW(DuatoAdaptiveRouting(torus, 2), std::invalid_argument);
  EXPECT_NO_THROW(DuatoAdaptiveRouting(torus, 3));
  KAryNCube mesh({4, 4}, false);
  EXPECT_THROW(DuatoAdaptiveRouting(mesh, 1), std::invalid_argument);
  EXPECT_NO_THROW(DuatoAdaptiveRouting(mesh, 2));
}

TEST(Duato, AlwaysOffersExactlyOneEscape) {
  KAryNCube torus({4, 4}, true);
  DuatoAdaptiveRouting duato(torus, 3);
  for (NodeId s = 0; s < torus.num_nodes(); ++s) {
    for (NodeId d = 0; d < torus.num_nodes(); ++d) {
      if (s == d) continue;
      const auto cands = duato.route(s, kInvalidPort, kInvalidVc, d);
      int escapes = 0;
      for (const auto& c : cands) escapes += c.escape ? 1 : 0;
      EXPECT_EQ(escapes, 1);
      EXPECT_TRUE(cands.back().escape) << "escape candidate must come last";
    }
  }
}

TEST(Duato, AdaptiveCandidatesCoverAllMinimalPorts) {
  KAryNCube torus({4, 4}, true);
  DuatoAdaptiveRouting duato(torus, 4);  // 2 escape + 2 adaptive
  const NodeId s = torus.node_of({0, 0});
  const NodeId d = torus.node_of({1, 2});
  const auto cands = duato.route(s, kInvalidPort, kInvalidVc, d);
  // 2 minimal ports x 2 adaptive VCs + 1 escape.
  EXPECT_EQ(cands.size(), 5u);
  std::set<PortId> adaptive_ports;
  for (const auto& c : cands) {
    if (!c.escape) {
      EXPECT_GE(c.vc, duato.escape_vcs());
      adaptive_ports.insert(c.port);
    }
  }
  EXPECT_EQ(adaptive_ports.size(), 2u);
}

TEST(Duato, EscapeVcMatchesDatelineClass) {
  KAryNCube torus({8, 8}, true);
  DuatoAdaptiveRouting duato(torus, 3);
  // Pre-wrap segment in dim 0 -> escape VC 1.
  const auto cands = duato.route(torus.node_of({6, 0}), kInvalidPort,
                                 kInvalidVc, torus.node_of({1, 0}));
  ASSERT_FALSE(cands.empty());
  const auto& escape = cands.back();
  EXPECT_TRUE(escape.escape);
  EXPECT_EQ(escape.vc, 1);
}

TEST(Duato, PathsAreMinimalUnderRandomChoice) {
  KAryNCube torus({4, 4}, true);
  DuatoAdaptiveRouting duato(torus, 3);
  sim::Rng rng{123};
  for (int trial = 0; trial < 500; ++trial) {
    const NodeId s = static_cast<NodeId>(rng.next_below(torus.num_nodes()));
    const NodeId d = static_cast<NodeId>(rng.next_below(torus.num_nodes()));
    if (s == d) continue;
    NodeId cur = s;
    std::int32_t hops = 0;
    while (cur != d) {
      const auto cands = duato.route(cur, kInvalidPort, kInvalidVc, d);
      ASSERT_FALSE(cands.empty());
      const auto& pick = cands[rng.next_below(cands.size())];
      cur = torus.neighbor(cur, pick.port);
      ASSERT_NE(cur, kInvalidNode);
      ++hops;
      ASSERT_LE(hops, torus.distance(s, d));  // minimality: every hop helps
    }
    EXPECT_EQ(hops, torus.distance(s, d));
  }
}

TEST(Factory, CreatesRequestedAlgorithms) {
  KAryNCube torus({4, 4}, true);
  auto dor = make_routing(sim::RoutingKind::kDimensionOrder, torus, 2);
  EXPECT_STREQ(dor->name(), "dor");
  EXPECT_TRUE(dor->minimal());
  auto duato = make_routing(sim::RoutingKind::kDuatoAdaptive, torus, 3);
  EXPECT_STREQ(duato->name(), "duato");
  EXPECT_TRUE(duato->minimal());
}

}  // namespace
}  // namespace wavesim::route
