// Unit tests for the dynamic-fault stack: the wavesim.faults.v1 schedule
// format and its expansion into a concrete timeline, and the RIP-style
// distance-vector reachability layer (triggered updates, split horizon
// with poisoned reverse, route timeouts and the deliver-before-expire
// race rule). See docs/FAULTS.md.
#include <gtest/gtest.h>

#include <algorithm>

#include "fault/distvec.hpp"
#include "fault/schedule.hpp"
#include "sim/json.hpp"
#include "sim/rng.hpp"
#include "topology/topology.hpp"

namespace wavesim::fault {
namespace {

using topo::KAryNCube;

// ---------------------------------------------------------------------------
// Distance-vector layer
// ---------------------------------------------------------------------------

sim::DistanceVectorConfig dv_config(Cycle advert_period = 64,
                                    std::int32_t timeout_periods = 3) {
  sim::DistanceVectorConfig cfg;
  cfg.advert_period = advert_period;
  cfg.timeout_periods = timeout_periods;
  return cfg;
}

void expect_converged(const DistanceVector& dv, const KAryNCube& topo,
                      const char* context) {
  for (NodeId s = 0; s < topo.num_nodes(); ++s) {
    for (NodeId d = 0; d < topo.num_nodes(); ++d) {
      EXPECT_EQ(dv.metric(s, d), std::min(topo.distance(s, d), dv.infinity()))
          << context << ": route " << s << " -> " << d;
    }
  }
}

TEST(DistVec, InitialTablesMatchShortestPaths) {
  const KAryNCube topo({4, 4}, true);
  const DistanceVector dv(topo, dv_config(), /*hop_cycles=*/1);
  EXPECT_EQ(dv.infinity(), 16);  // max(16, diameter + 2)
  expect_converged(dv, topo, "initial");
}

TEST(DistVec, LinkDownPoisonsBothEndpointsViaTriggeredUpdates) {
  // Line 0-1-2: failing link 1-2 cuts {2} off. Triggered updates alone
  // (first periodic advert is at cycle 64) must poison every route across
  // the cut at every node, well before a count-to-infinity walk could --
  // that is what split horizon with poisoned reverse buys.
  const KAryNCube topo({3}, false);
  DistanceVector dv(topo, dv_config(), /*hop_cycles=*/1);
  Cycle now = 1;
  dv.link_down(1, /*port=*/0, now);
  EXPECT_FALSE(dv.link_alive(1, 0));
  EXPECT_FALSE(dv.link_alive(2, 1));  // both directions agree
  for (; now < 16; ++now) dv.step(now, /*active=*/true);

  EXPECT_EQ(dv.metric(0, 2), dv.infinity());
  EXPECT_EQ(dv.metric(1, 2), dv.infinity());
  EXPECT_EQ(dv.metric(2, 0), dv.infinity());
  EXPECT_EQ(dv.metric(2, 1), dv.infinity());
  EXPECT_FALSE(dv.reachable(0, 2));
  EXPECT_EQ(dv.metric(0, 1), 1);  // the surviving link is untouched
  EXPECT_GT(dv.counters().triggered_updates, 0u);
  EXPECT_GE(dv.counters().routes_withdrawn, 4u);
  EXPECT_TRUE(dv.idle());
}

TEST(DistVec, LinkDownIsIdempotent) {
  const KAryNCube topo({3}, false);
  DistanceVector dv(topo, dv_config(), 1);
  dv.link_down(1, 0, 1);
  const std::uint64_t withdrawn = dv.counters().routes_withdrawn;
  dv.link_down(1, 0, 2);                       // canonical direction again
  dv.link_down(2, 1, 3);                       // same link, other endpoint
  EXPECT_EQ(dv.counters().routes_withdrawn, withdrawn);
}

TEST(DistVec, LinkUpReinstallsDirectRoutesAndReconverges) {
  const KAryNCube topo({4, 4}, true);
  DistanceVector dv(topo, dv_config(), 1);
  Cycle now = 1;
  dv.link_down(0, 0, now);
  for (; now < 40; ++now) dv.step(now, true);
  EXPECT_GT(dv.counters().routes_withdrawn, 0u);

  dv.link_up(0, 0, now);
  EXPECT_TRUE(dv.link_alive(0, 0));
  EXPECT_EQ(dv.metric(0, topo.neighbor(0, 0)), 1);  // direct route back
  // One full periodic round plus propagation re-converges everything.
  for (; now < 200; ++now) dv.step(now, true);
  expect_converged(dv, topo, "after repair");
  EXPECT_TRUE(dv.idle());
}

TEST(DistVec, RouteTimeoutWithdrawsUnrefreshedRoutes) {
  // advert_period 8 x timeout_periods 1 arms learned (metric >= 2) routes
  // with deadline now+8, but hop_cycles 20 delays every refresh until
  // cycle 20 -- so the deadline at cycle 8 fires first. On a 4-ring each
  // node has exactly one 2-hop destination: 4 timeouts. Direct routes
  // never expire. Once the slow adverts do land, the table re-converges.
  const KAryNCube topo({4}, true);
  DistanceVector dv(topo, dv_config(8, 1), /*hop_cycles=*/20);
  dv.refresh_deadlines(0);
  for (Cycle now = 0; now <= 8; ++now) dv.step(now, /*active=*/true);
  EXPECT_EQ(dv.counters().route_timeouts, 4u);
  EXPECT_EQ(dv.metric(0, 2), dv.infinity());
  EXPECT_EQ(dv.metric(0, 1), 1);  // direct routes survive

  for (Cycle now = 9; now < 80; ++now) dv.step(now, true);
  expect_converged(dv, topo, "after timeout recovery");
}

TEST(DistVec, RefreshDeliveredAtDeadlineCycleBeatsTimeout) {
  // Same geometry, but hop_cycles 8 lands the periodic refresh exactly on
  // the deadline cycle. Deliveries run before expiry (the documented race
  // rule), so the refresh saves the route and nothing times out.
  const KAryNCube topo({4}, true);
  DistanceVector dv(topo, dv_config(8, 1), /*hop_cycles=*/8);
  dv.refresh_deadlines(0);
  for (Cycle now = 0; now <= 16; ++now) dv.step(now, /*active=*/true);
  EXPECT_EQ(dv.counters().route_timeouts, 0u);
  expect_converged(dv, topo, "refresh race");
}

TEST(DistVec, AdvertsCrossingADyingLinkAreDropped) {
  const KAryNCube topo({3}, false);
  DistanceVector dv(topo, dv_config(8, 3), /*hop_cycles=*/4);
  // Periodic adverts go out at cycle 0 and are in flight for 4 cycles;
  // the link dies under them.
  dv.step(0, true);
  dv.link_down(0, 0, 1);
  for (Cycle now = 1; now < 12; ++now) dv.step(now, true);
  EXPECT_GT(dv.counters().adverts_dropped, 0u);
}

// ---------------------------------------------------------------------------
// Schedule format and expansion
// ---------------------------------------------------------------------------

TEST(Schedule, CanonicalLinksCoverEveryBidirectionalLinkOnce) {
  // 2-D 4x4 torus: 2 links per node. 1-D 4-mesh: 3 links total.
  EXPECT_EQ(canonical_links(KAryNCube({4, 4}, true)).size(), 32u);
  EXPECT_EQ(canonical_links(KAryNCube({4}, false)).size(), 3u);
  for (const sim::FaultEvent& link : canonical_links(KAryNCube({4, 4}, true))) {
    EXPECT_TRUE(KAryNCube::is_positive(link.port));
  }
}

TEST(Schedule, ExplicitEventsAreCanonicalized) {
  // The same link named from its negative endpoint (node 1, port 1) must
  // expand to the canonical positive direction (node 0, port 0).
  sim::FaultConfig faults;
  faults.events.push_back({5, sim::FaultEventKind::kLinkDown, 1, 1});
  const auto timeline =
      expand_schedule(faults, KAryNCube({4}, false), sim::Rng{1});
  ASSERT_EQ(timeline.size(), 1u);
  EXPECT_EQ(timeline[0].node, 0);
  EXPECT_EQ(timeline[0].port, 0);
  EXPECT_EQ(timeline[0].at, 5u);
  EXPECT_EQ(timeline[0].kind, sim::FaultEventKind::kLinkDown);
}

TEST(Schedule, NodeEventsExpandToEveryIncidentLink) {
  sim::FaultConfig faults;
  faults.events.push_back({7, sim::FaultEventKind::kNodeDown, 1, 0});
  const auto timeline =
      expand_schedule(faults, KAryNCube({4}, false), sim::Rng{1});
  ASSERT_EQ(timeline.size(), 2u);  // links 0-1 and 1-2
  EXPECT_EQ(timeline[0].node, 0);
  EXPECT_EQ(timeline[1].node, 1);
}

TEST(Schedule, StormFailsRequestedFractionAndSchedulesRepairs) {
  sim::FaultConfig faults;
  faults.storm.at = 100;
  faults.storm.fraction = 0.25;
  faults.storm.repair_after = 50;
  const KAryNCube topo({4, 4}, true);
  const auto timeline = expand_schedule(faults, topo, sim::Rng{42});
  // 25% of 32 links = 8 downs at cycle 100, 8 ups at cycle 150.
  ASSERT_EQ(timeline.size(), 16u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(timeline[i].at, 100u);
    EXPECT_EQ(timeline[i].kind, sim::FaultEventKind::kLinkDown);
  }
  for (std::size_t i = 8; i < 16; ++i) {
    EXPECT_EQ(timeline[i].at, 150u);
    EXPECT_EQ(timeline[i].kind, sim::FaultEventKind::kLinkUp);
  }
  EXPECT_TRUE(std::is_sorted(
      timeline.begin(), timeline.end(),
      [](const sim::FaultEvent& a, const sim::FaultEvent& b) {
        return a.at < b.at;
      }));
  // Same seed, same timeline: expansion is deterministic.
  const auto again = expand_schedule(faults, topo, sim::Rng{42});
  EXPECT_TRUE(timeline == again);
}

TEST(Schedule, PermanentStormHasNoRepairEvents) {
  sim::FaultConfig faults;
  faults.storm.at = 10;
  faults.storm.fraction = 0.5;
  faults.storm.repair_after = 0;
  const auto timeline =
      expand_schedule(faults, KAryNCube({4, 4}, true), sim::Rng{7});
  ASSERT_EQ(timeline.size(), 16u);
  for (const auto& e : timeline) {
    EXPECT_EQ(e.kind, sim::FaultEventKind::kLinkDown);
  }
}

TEST(Schedule, TinyStormFractionStillFailsOneLink) {
  sim::FaultConfig faults;
  faults.storm.at = 1;
  faults.storm.fraction = 0.001;
  const auto timeline =
      expand_schedule(faults, KAryNCube({4, 4}, true), sim::Rng{3});
  EXPECT_EQ(timeline.size(), 1u);
}

TEST(Schedule, JsonRoundTripsThroughFaultsV1) {
  sim::FaultConfig faults;
  faults.events.push_back({5, sim::FaultEventKind::kLinkDown, 1, 1});
  faults.events.push_back({9, sim::FaultEventKind::kNodeUp, 2, 0});
  faults.storm = {300, 0.25, 1000};
  faults.churn = {0.001, 100, 400, 250};
  faults.dv.advert_period = 128;
  faults.dv.timeout_periods = 2;
  faults.dv.hop_cycles = 3;
  const sim::FaultConfig back = faults_from_json(faults_to_json(faults));
  EXPECT_TRUE(back.events == faults.events);
  EXPECT_TRUE(back.storm == faults.storm);
  EXPECT_TRUE(back.churn == faults.churn);
  EXPECT_TRUE(back.dv == faults.dv);
}

TEST(Schedule, RejectsMalformedDocuments) {
  const auto parse = [](const char* text) {
    return faults_from_json(sim::JsonValue::parse(text));
  };
  // Wrong/missing schema.
  EXPECT_THROW(parse(R"({"storm":{"fraction":0.1}})"), std::runtime_error);
  EXPECT_THROW(parse(R"({"schema":"wavesim.run.v1","storm":{"fraction":0.1}})"),
               std::runtime_error);
  // Unknown keys must not be silently ignored.
  EXPECT_THROW(
      parse(R"({"schema":"wavesim.faults.v1","strom":{"fraction":0.1}})"),
      std::runtime_error);
  EXPECT_THROW(parse(R"({"schema":"wavesim.faults.v1",)"
                     R"("storm":{"fraction":0.1,"repair":5}})"),
               std::runtime_error);
  // A schedule with no fault source is a mistake, not a no-op.
  EXPECT_THROW(parse(R"({"schema":"wavesim.faults.v1"})"), std::runtime_error);
  // Bad event shapes.
  EXPECT_THROW(parse(R"({"schema":"wavesim.faults.v1",)"
                     R"("events":[{"at":1,"kind":"melt","node":0,"port":0}]})"),
               std::runtime_error);
  EXPECT_THROW(parse(R"({"schema":"wavesim.faults.v1",)"
                     R"("events":[{"kind":"link-down","node":0,"port":0}]})"),
               std::runtime_error);
  EXPECT_THROW(
      parse(R"({"schema":"wavesim.faults.v1",)"
            R"("events":[{"at":1,"kind":"node-down","node":0,"port":0}]})"),
      std::runtime_error);
}

}  // namespace
}  // namespace wavesim::fault
