// Parameterized analytic-model checks: the simulator's measured numbers
// must track closed-form expectations as single knobs sweep.
#include <gtest/gtest.h>

#include <cmath>

#include "core/simulation.hpp"
#include "sim/rng.hpp"
#include "verify/delivery.hpp"

namespace wavesim {
namespace {

// ---------------------------------------------------------------- window

class WindowSweep : public ::testing::TestWithParam<std::int32_t> {};

TEST_P(WindowSweep, CircuitThroughputMatchesWindowOverRtt) {
  // One long transfer on a fixed 8-hop circuit: effective bandwidth is
  // min(circuit bw, window / round-trip).
  const std::int32_t window = GetParam();
  sim::SimConfig cfg = sim::SimConfig::default_torus();
  cfg.protocol.protocol = sim::ProtocolKind::kClrp;
  cfg.router.circuit_window = window;
  core::Simulation sim(cfg);
  const NodeId src = sim.topology().node_of({0, 0});
  const NodeId dest = sim.topology().node_of({4, 4});  // 8 hops
  // Warm the circuit so the measured message is a pure hit.
  sim.send(src, dest, 8);
  ASSERT_TRUE(sim.run_until_delivered(100000));
  const std::int32_t length = 512;
  const MessageId id = sim.send(src, dest, length);
  ASSERT_TRUE(sim.run_until_delivered(200000));
  const double latency = sim.network().messages().at(id).latency();

  const double pipe = std::ceil(8.0 / 4.0) + 1;  // DataPlane::pipe_latency
  const double bw = std::min(4.0, window / (2.0 * pipe));
  const double expected = length / bw + pipe;
  EXPECT_NEAR(latency, expected, expected * 0.25 + 8.0)
      << "window " << window;
}

INSTANTIATE_TEST_SUITE_P(Windows, WindowSweep,
                         ::testing::Values(1, 2, 4, 8, 16, 32, 64));

// ----------------------------------------------------------- wave factor

class WaveFactorSweep : public ::testing::TestWithParam<double> {};

TEST_P(WaveFactorSweep, HitLatencyScalesInverselyWithFactor) {
  const double factor = GetParam();
  sim::SimConfig cfg = sim::SimConfig::default_torus();
  cfg.protocol.protocol = sim::ProtocolKind::kClrp;
  cfg.router.wave_clock_factor = factor;
  cfg.router.circuit_window = 256;  // never the limiter
  core::Simulation sim(cfg);
  const NodeId src = 0;
  const NodeId dest = 36;
  sim.send(src, dest, 8);
  ASSERT_TRUE(sim.run_until_delivered(100000));
  const std::int32_t length = 256;
  const MessageId id = sim.send(src, dest, length);
  ASSERT_TRUE(sim.run_until_delivered(200000));
  const double latency = sim.network().messages().at(id).latency();
  const double pipe = std::ceil(8.0 / factor) + 1;
  const double expected = length / factor + pipe;
  EXPECT_NEAR(latency, expected, expected * 0.1 + 6.0) << "factor " << factor;
}

INSTANTIATE_TEST_SUITE_P(Factors, WaveFactorSweep,
                         ::testing::Values(1.0, 2.0, 4.0, 8.0));

TEST(VirtualCircuits, BehaveLikeFactorOne) {
  sim::SimConfig virt = sim::SimConfig::default_torus();
  virt.protocol.protocol = sim::ProtocolKind::kClrp;
  virt.router.virtual_circuits = true;
  EXPECT_DOUBLE_EQ(virt.circuit_flits_per_cycle(), 1.0);
  sim::SimConfig phys = virt;
  phys.router.virtual_circuits = false;

  auto hit_latency = [](const sim::SimConfig& cfg) {
    core::Simulation sim(cfg);
    sim.send(0, 36, 8);
    EXPECT_TRUE(sim.run_until_delivered(100000));
    const MessageId id = sim.send(0, 36, 128);
    EXPECT_TRUE(sim.run_until_delivered(100000));
    return sim.network().messages().at(id).latency();
  };
  const double v = hit_latency(virt);
  const double p = hit_latency(phys);
  EXPECT_GT(v, 3.0 * p);  // ~4x serialization difference
}

// ------------------------------------------------ control-flit hop cost

class ControlHopSweep : public ::testing::TestWithParam<std::int32_t> {};

TEST_P(ControlHopSweep, SetupLatencyScalesWithControlHopCycles) {
  // An unloaded 8-hop setup costs ~2 * hops * control_hop_cycles (probe
  // out, ack back) before the transfer starts.
  const std::int32_t hop_cycles = GetParam();
  sim::SimConfig cfg = sim::SimConfig::default_torus();
  cfg.protocol.protocol = sim::ProtocolKind::kClrp;
  cfg.router.control_hop_cycles = hop_cycles;
  core::Simulation sim(cfg);
  const MessageId id = sim.send(0, 36, 8);  // 8 hops, tiny payload
  ASSERT_TRUE(sim.run_until_delivered(200000));
  const double latency = sim.network().messages().at(id).latency();
  const double setup = 2.0 * 8.0 * hop_cycles;
  EXPECT_NEAR(latency, setup + 6.0, setup * 0.3 + 8.0)
      << "hop cycles " << hop_cycles;
}

INSTANTIATE_TEST_SUITE_P(HopCosts, ControlHopSweep,
                         ::testing::Values(1, 2, 4, 8));

// ------------------------------------------------- wormhole buffer depth

struct DepthCase {
  std::int32_t depth;
  std::int32_t vcs;
};

class DepthSweep : public ::testing::TestWithParam<DepthCase> {};

TEST_P(DepthSweep, DeliveryAndConservationAcrossBufferGeometries) {
  sim::SimConfig cfg = sim::SimConfig::wormhole_baseline();
  cfg.router.vc_buffer_depth = GetParam().depth;
  cfg.router.wormhole_vcs = GetParam().vcs;
  core::Simulation sim(cfg);
  sim::Rng rng{42};
  std::uint64_t sent = 0;
  for (Cycle c = 0; c < 1500; ++c) {
    for (NodeId s = 0; s < 64; ++s) {
      if (!rng.chance(0.004)) continue;
      NodeId d = static_cast<NodeId>(rng.next_below(64));
      if (d == s) d = (d + 1) % 64;
      sim.send(s, d, static_cast<std::int32_t>(2 + rng.next_below(30)));
      ++sent;
    }
    sim.step();
  }
  ASSERT_TRUE(sim.run_until_delivered(1'000'000));
  EXPECT_EQ(sim.stats().messages_delivered, sent);
  const auto check = verify::check_delivery(sim.network());
  EXPECT_TRUE(check.ok()) << check.summary();
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, DepthSweep,
    ::testing::Values(DepthCase{1, 2}, DepthCase{2, 2}, DepthCase{8, 2},
                      DepthCase{4, 4}, DepthCase{1, 8}, DepthCase{16, 3}),
    [](const ::testing::TestParamInfo<DepthCase>& param_info) {
      return "depth" + std::to_string(param_info.param.depth) + "vcs" +
             std::to_string(param_info.param.vcs);
    });

// ----------------------------------------------------- deeper pipelines

class PipelineSweep : public ::testing::TestWithParam<std::int32_t> {};

TEST_P(PipelineSweep, WormholeLatencyGrowsWithPerHopCost) {
  sim::SimConfig cfg = sim::SimConfig::wormhole_baseline();
  cfg.router.wormhole_pipeline_latency = GetParam();
  core::Simulation sim(cfg);
  const MessageId id = sim.send(0, 4, 16);  // 4 hops
  ASSERT_TRUE(sim.run_until_delivered(100000));
  const double latency = sim.network().messages().at(id).latency();
  // Head pays ~(pipeline + 2 allocation cycles) per hop + serialization.
  const double expected = 4.0 * (GetParam() + 2) + 16.0 + GetParam();
  EXPECT_NEAR(latency, expected, expected * 0.35) << "pipeline " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Pipelines, PipelineSweep,
                         ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace wavesim
