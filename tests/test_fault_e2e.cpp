// End-to-end dynamic-fault tests: mid-run link failures against a live
// Simulation. Circuits crossing a dead link are invalidated (cache entry
// evicted, in-flight transfer resent via wormhole), unreachable
// destinations divert to the never-failing S0 wormhole plane, and after
// repair the distance-vector layer re-converges and circuits re-establish.
// The sharded parallel engine must stay bit-identical through all of it.
#include <gtest/gtest.h>

#include "core/simulation.hpp"
#include "engine/engine.hpp"
#include "sim/rng.hpp"

namespace wavesim::core {
namespace {

/// 1-D 4-mesh (line 0-1-2-3): every route is forced, so failing link 1-2
/// provably cuts the circuit planes between {0,1} and {2,3}.
sim::SimConfig line_config() {
  sim::SimConfig cfg = sim::SimConfig::default_torus();
  cfg.topology.radix = {4};
  cfg.topology.torus = false;
  cfg.protocol.protocol = sim::ProtocolKind::kClrp;
  return cfg;
}

sim::SimConfig torus_config() {
  sim::SimConfig cfg = sim::SimConfig::default_torus();
  cfg.topology.radix = {4, 4};
  cfg.protocol.protocol = sim::ProtocolKind::kClrp;
  return cfg;
}

TEST(FaultE2E, EstablishedCircuitCrossingDeadLinkIsInvalidated) {
  sim::SimConfig cfg = line_config();
  cfg.faults.events.push_back({1500, sim::FaultEventKind::kLinkDown, 1, 0});
  Simulation sim(cfg);

  const MessageId first = sim.send(0, 3, 64);
  sim.run(1000);
  EXPECT_TRUE(sim.message_done(first));
  EXPECT_EQ(sim.stats().circuit_setup_count, 1u);

  sim.run(1000);  // the failure at 1500 hits the idle cached circuit
  const auto stats = sim.stats();
  EXPECT_EQ(stats.links_failed, 1u);
  EXPECT_EQ(stats.circuits_killed, 1u);
  EXPECT_EQ(stats.circuits_invalidated, 1u);
  EXPECT_GT(stats.routes_withdrawn, 0u);
}

TEST(FaultE2E, CapacityOneCacheLosesItsOnlyEntryAndFallsBackWhileCut) {
  sim::SimConfig cfg = line_config();
  cfg.protocol.circuit_cache_entries = 1;
  cfg.faults.events.push_back({1500, sim::FaultEventKind::kLinkDown, 1, 0});
  Simulation sim(cfg);

  const MessageId first = sim.send(0, 3, 64);
  sim.run(2000);  // established, cached, then invalidated at 1500
  EXPECT_TRUE(sim.message_done(first));
  EXPECT_EQ(sim.stats().circuits_invalidated, 1u);

  // The only entry is gone and 3 is unreachable on the circuit planes:
  // the retry is a miss that diverts straight to the wormhole fallback.
  const MessageId second = sim.send(0, 3, 64);
  ASSERT_TRUE(sim.run_until_delivered(50'000));
  EXPECT_TRUE(sim.message_done(second));
  EXPECT_EQ(sim.network().messages().at(second).mode,
            MessageMode::kWormholeFallback);
  const auto stats = sim.stats();
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.cache_misses, 2u);
  EXPECT_GE(stats.unreachable_fallbacks, 1u);
  EXPECT_EQ(stats.messages_delivered, 2u);
}

TEST(FaultE2E, ReprobesAfterLinkRecovery) {
  // k = 1: one wave switch, one circuit plane. Fail the middle link, let
  // the DV layer converge to "unreachable", repair it, and verify a later
  // message re-probes and establishes a fresh circuit end-to-end.
  sim::SimConfig cfg = line_config();
  cfg.router.wave_switches = 1;
  cfg.faults.events.push_back({1500, sim::FaultEventKind::kLinkDown, 1, 0});
  cfg.faults.events.push_back({3000, sim::FaultEventKind::kLinkUp, 1, 0});
  Simulation sim(cfg);

  const MessageId before = sim.send(0, 3, 64);
  sim.run(2000);
  EXPECT_TRUE(sim.message_done(before));
  EXPECT_EQ(sim.stats().circuits_invalidated, 1u);

  const MessageId during = sim.send(0, 3, 64);  // cut: wormhole fallback
  sim.run(2000);  // crosses the repair at 3000; DV re-converges
  EXPECT_TRUE(sim.message_done(during));
  EXPECT_EQ(sim.network().messages().at(during).mode,
            MessageMode::kWormholeFallback);

  const MessageId after = sim.send(0, 3, 64);
  ASSERT_TRUE(sim.run_until_delivered(100'000));
  EXPECT_TRUE(sim.message_done(after));
  EXPECT_EQ(sim.network().messages().at(after).mode,
            MessageMode::kCircuitAfterSetup);
  const auto stats = sim.stats();
  EXPECT_EQ(stats.circuit_setup_count, 2u);
  EXPECT_GE(stats.probes_succeeded, 2u);
  EXPECT_EQ(stats.links_restored, 1u);
  EXPECT_EQ(stats.messages_delivered, 3u);
}

TEST(FaultE2E, FailureInAnyProbeOrTransferPhaseStillDelivers) {
  // Sweep the failure cycle across the whole setup/transfer window of a
  // single message. Whatever phase the link dies in -- probe in flight,
  // circuit established, transfer running -- the message must arrive, and
  // at least one phase of the sweep must kill a live circuit and at least
  // one must abort an in-flight transfer.
  std::uint64_t circuits_killed = 0;
  std::uint64_t transfers_aborted = 0;
  std::uint64_t probes_killed = 0;
  for (Cycle at = 1; at <= 60; at += 1) {
    sim::SimConfig cfg = line_config();
    cfg.faults.events.push_back(
        {at, sim::FaultEventKind::kLinkDown, 1, 0});
    Simulation sim(cfg);
    const MessageId id = sim.send(0, 3, 96);
    ASSERT_TRUE(sim.run_until_delivered(100'000)) << "failure at " << at;
    EXPECT_TRUE(sim.message_done(id)) << "failure at " << at;
    const auto stats = sim.stats();
    EXPECT_EQ(stats.messages_delivered, 1u) << "failure at " << at;
    circuits_killed += stats.circuits_killed;
    transfers_aborted += stats.transfers_aborted;
    probes_killed += stats.probes_killed;
  }
  EXPECT_GT(circuits_killed, 0u);
  EXPECT_GT(transfers_aborted, 0u);
  EXPECT_GT(probes_killed, 0u);
}

TEST(FaultE2E, StormDeliversEverythingAndReestablishesCircuits) {
  // The acceptance scenario in miniature: ~31% of links fail at cycle 300
  // and recover 1500 cycles later, under steady all-pairs traffic. Every
  // message is survivable (S0 never fails) so every message must arrive.
  sim::SimConfig cfg = torus_config();
  cfg.faults.storm.at = 300;
  cfg.faults.storm.fraction = 0.31;
  cfg.faults.storm.repair_after = 1500;
  Simulation sim(cfg);

  std::uint64_t offered = 0;
  for (int round = 0; round < 13; ++round) {
    for (NodeId n = 0; n < 16; ++n) {
      sim.send(n, (n + 5) % 16, 48);
      ++offered;
    }
    sim.run(50);
  }
  // Ride out the repair at cycle 1800 plus DV re-convergence, then send a
  // final round against the healed network: any pair whose circuit was
  // invalidated and never re-established must now re-probe and succeed.
  sim.run(2500);
  for (NodeId n = 0; n < 16; ++n) {
    sim.send(n, (n + 5) % 16, 48);
    ++offered;
  }
  ASSERT_TRUE(sim.run_until_delivered(300'000));

  const auto stats = sim.stats();
  EXPECT_EQ(stats.messages_delivered, offered);
  EXPECT_EQ(stats.links_failed, 10u);  // round(0.31 * 32)
  EXPECT_EQ(stats.links_restored, 10u);
  EXPECT_GT(stats.circuits_invalidated, 0u);
  EXPECT_GT(stats.routes_withdrawn, 0u);
  // After repair the network is whole again: fresh circuits established
  // beyond the pre-storm set.
  EXPECT_GT(stats.probes_succeeded, 16u);
}

TEST(FaultE2E, ParallelEngineIsBitIdenticalUnderStorm) {
  auto run_once = [](std::int32_t shards) {
    sim::SimConfig cfg = torus_config();
    cfg.faults.storm.at = 200;
    cfg.faults.storm.fraction = 0.25;
    cfg.faults.storm.repair_after = 900;
    Simulation sim(cfg);
    if (shards > 0) {
      engine::EngineConfig engine_config;
      engine_config.kind = engine::EngineKind::kPar;
      engine_config.shards = shards;
      sim.set_engine(
          engine::make_engine(engine_config, sim.topology().num_nodes()));
    }
    std::uint64_t fingerprint = 0x77617665u;
    sim.set_event_sink([&](const Event& ev) {
      fingerprint = sim::hash_mix(fingerprint ^ ev.at);
      fingerprint =
          sim::hash_mix(fingerprint ^ static_cast<std::uint64_t>(ev.kind));
      fingerprint =
          sim::hash_mix(fingerprint ^ static_cast<std::uint64_t>(ev.node));
      fingerprint =
          sim::hash_mix(fingerprint ^ static_cast<std::uint64_t>(ev.msg));
      fingerprint =
          sim::hash_mix(fingerprint ^ static_cast<std::uint64_t>(ev.circuit));
      fingerprint =
          sim::hash_mix(fingerprint ^ static_cast<std::uint64_t>(ev.port));
    });
    for (int round = 0; round < 10; ++round) {
      for (NodeId n = 0; n < 16; ++n) sim.send(n, (n + 7) % 16, 32);
      sim.run(40);
    }
    EXPECT_TRUE(sim.run_until_delivered(300'000));
    return std::pair<std::uint64_t, Cycle>{fingerprint, sim.now()};
  };

  const auto seq = run_once(0);
  EXPECT_EQ(run_once(2), seq);
  EXPECT_EQ(run_once(8), seq);
}

}  // namespace
}  // namespace wavesim::core
