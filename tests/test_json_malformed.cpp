// Malformed-input tests for the JSON parser: the repro/metrics loaders
// feed it files a human may have hand-edited, so every bad shape must be
// a clean std::runtime_error -- never a crash, a hang or a silent
// misparse.
#include <gtest/gtest.h>

#include <string>

#include "sim/json.hpp"

namespace wavesim::sim {
namespace {

void expect_rejects(const std::string& text) {
  EXPECT_THROW(JsonValue::parse(text), std::runtime_error)
      << "accepted: " << text;
}

TEST(JsonMalformed, TruncatedInputs) {
  expect_rejects("");
  expect_rejects("{");
  expect_rejects("{\"a\"");
  expect_rejects("{\"a\":");
  expect_rejects("{\"a\":1");
  expect_rejects("{\"a\":1,");
  expect_rejects("[");
  expect_rejects("[1,");
  expect_rejects("[1, 2");
  expect_rejects("\"unterminated");
  expect_rejects("\"ends in backslash\\");
  expect_rejects("tru");
  expect_rejects("nul");
  expect_rejects("-");
  expect_rejects("1.");
  expect_rejects("2e");
  expect_rejects("2e+");
}

TEST(JsonMalformed, BadEscapes) {
  expect_rejects("\"\\q\"");
  expect_rejects("\"\\x41\"");
  expect_rejects("\"\\u12\"");       // too short
  expect_rejects("\"\\u12zz\"");     // non-hex digits
  expect_rejects("\"\\u\"");
  // Good escapes still work, including \u BMP code points.
  const JsonValue v = JsonValue::parse("\"a\\n\\t\\\"\\\\\\u0041\\u00e9\"");
  EXPECT_EQ(v.as_string(), "a\n\t\"\\A\xc3\xa9");
}

TEST(JsonMalformed, DuplicateKeysRejected) {
  expect_rejects("{\"a\": 1, \"a\": 2}");
  expect_rejects("{\"a\": {\"b\": 1, \"b\": 2}}");
  // Same key in *different* objects is fine.
  const JsonValue v =
      JsonValue::parse("{\"a\": {\"x\": 1}, \"b\": {\"x\": 2}}");
  EXPECT_EQ(v.at("b").at("x").as_number(), 2.0);
}

TEST(JsonMalformed, DeepNestingCappedNotCrashing) {
  // Far past any sane document: must throw, not overflow the stack.
  const int deep = 200000;
  std::string bomb(static_cast<std::size_t>(deep), '[');
  expect_rejects(bomb);
  // A matched-but-too-deep document fails the same way.
  std::string matched;
  for (int i = 0; i < 500; ++i) matched += '[';
  for (int i = 0; i < 500; ++i) matched += ']';
  expect_rejects(matched);
  // Reasonable nesting (well under the cap) still parses.
  std::string fine;
  for (int i = 0; i < 100; ++i) fine += '[';
  fine += "7";
  for (int i = 0; i < 100; ++i) fine += ']';
  EXPECT_NO_THROW(JsonValue::parse(fine));
}

TEST(JsonMalformed, NumbersOutOfRange) {
  expect_rejects("1e999999");   // std::stod overflow must not escape
  expect_rejects("-1e999999");
  // Large-but-finite parses.
  EXPECT_NO_THROW(JsonValue::parse("1e308"));
}

TEST(JsonMalformed, TrailingAndStrayCharacters) {
  expect_rejects("{} x");
  expect_rejects("1 2");
  expect_rejects("[1] ]");
  expect_rejects(",");
  expect_rejects("{,}");
  expect_rejects("[1,,2]");
  expect_rejects("{\"a\" 1}");
  expect_rejects("{1: 2}");     // non-string key
  expect_rejects("[1; 2]");
  expect_rejects("Infinity");
  expect_rejects("NaN");
}

TEST(JsonMalformed, ErrorsNameTheOffset) {
  try {
    JsonValue::parse("[1, 2, !]");
    FAIL() << "should have thrown";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos);
  }
}

TEST(JsonMalformed, ReadJsonFileErrors) {
  EXPECT_THROW(read_json_file("/nonexistent/path/x.json"),
               std::runtime_error);
}

}  // namespace
}  // namespace wavesim::sim
