// Dynamic verification of the paper's Theorems 1-4: under sustained
// adversarial traffic, with tiny circuit caches (maximal Force-bit
// contention) and every protocol variant, the network never deadlocks
// (progress watchdog), never livelocks (bounded probe search), and
// delivers every message.
#include <gtest/gtest.h>

#include "core/control_plane.hpp"
#include "core/instrumentation.hpp"
#include "core/simulation.hpp"
#include "sim/rng.hpp"
#include "verify/delivery.hpp"
#include "verify/fsck.hpp"
#include "verify/watchdog.hpp"
#include "wormhole/link_gate.hpp"

namespace wavesim {
namespace {

using core::Simulation;

struct StressCase {
  const char* name;
  sim::ProtocolKind protocol;
  sim::ClrpVariant variant;
  sim::RoutingKind routing;
  const char* pattern;  // uniform | hotspot | transpose | neighbor
  std::uint64_t seed;
  double load;  // messages per node per cycle
  bool pcs_only = false;
};

std::string PrintCase(const ::testing::TestParamInfo<StressCase>& info) {
  return std::string(info.param.name) + "_seed" +
         std::to_string(info.param.seed);
}

class DeadlockLivelock : public ::testing::TestWithParam<StressCase> {};

NodeId pick_dest(const topo::KAryNCube& topo, const std::string& pattern,
                 NodeId src, sim::Rng& rng) {
  const std::int32_t n = topo.num_nodes();
  if (pattern == "hotspot") {
    // 30% of traffic to one node, rest uniform.
    if (rng.chance(0.3)) {
      const NodeId hot = n / 2;
      if (hot != src) return hot;
    }
  } else if (pattern == "transpose") {
    const auto c = topo.coord_of(src);
    topo::Coord t{c[1], c[0]};
    const NodeId d = topo.node_of(t);
    if (d != src) return d;
  } else if (pattern == "neighbor") {
    const PortId p = static_cast<PortId>(rng.next_below(topo.num_ports()));
    const NodeId d = topo.neighbor(src, p);
    if (d != kInvalidNode && d != src) return d;
  }
  NodeId d = static_cast<NodeId>(rng.next_below(n));
  while (d == src) d = static_cast<NodeId>(rng.next_below(n));
  return d;
}

TEST_P(DeadlockLivelock, DeliversEverythingWithoutStalling) {
  const StressCase& param = GetParam();
  sim::SimConfig cfg;
  cfg.topology.radix = {4, 4};
  cfg.topology.torus = true;
  cfg.protocol.protocol = param.protocol;
  cfg.protocol.clrp_variant = param.variant;
  cfg.router.routing = param.routing;
  cfg.router.wormhole_vcs =
      param.routing == sim::RoutingKind::kDuatoAdaptive ? 3 : 2;
  cfg.router.wave_switches =
      param.protocol == sim::ProtocolKind::kWormholeOnly ? 0 : 1;
  cfg.protocol.pcs_only = param.pcs_only;
  cfg.protocol.circuit_cache_entries = 2;  // force evictions + Force probes
  cfg.protocol.max_misroutes = 1;
  cfg.seed = param.seed;

  Simulation sim(cfg);
  verify::ProgressWatchdog watchdog(sim.network(), /*patience=*/20000);
  sim::Rng rng{param.seed * 7919 + 13};

  const Cycle inject_for = 4000;
  const std::int32_t n = sim.topology().num_nodes();
  std::uint64_t offered = 0;
  for (Cycle c = 0; c < inject_for; ++c) {
    for (NodeId src = 0; src < n; ++src) {
      if (!rng.chance(param.load)) continue;
      const NodeId dest = pick_dest(sim.topology(), param.pattern, src, rng);
      const std::int32_t len =
          static_cast<std::int32_t>(4 + rng.next_below(60));
      if (param.protocol == sim::ProtocolKind::kCarp && rng.chance(0.3)) {
        sim.establish_circuit(src, dest);
      }
      sim.send(src, dest, len);
      ++offered;
      if (param.protocol == sim::ProtocolKind::kCarp && rng.chance(0.1)) {
        sim.release_circuit(src, dest);
      }
    }
    sim.step();
    if ((c & 1023) == 0) {
      ASSERT_NE(watchdog.poll(), verify::Verdict::kStuck)
          << "deadlock suspected at cycle " << sim.now();
      const auto fsck = verify::check_control_state(sim.network());
      ASSERT_TRUE(fsck.ok()) << "at cycle " << sim.now() << ": "
                             << fsck.summary();
    }
  }

  // Drain with the watchdog armed.
  Cycle guard = 0;
  while (!sim.network().quiescent()) {
    sim.run(1000);
    ASSERT_NE(watchdog.poll(), verify::Verdict::kStuck)
        << "deadlock suspected while draining at cycle " << sim.now();
    ASSERT_LT(guard += 1000, 3'000'000u) << "drain did not converge";
  }

  // Completeness + in-order + conservation + register-state consistency
  // + no leaked reservations after the drain.
  const auto check = verify::check_delivery(sim.network());
  EXPECT_TRUE(check.ok()) << check.summary();
  const auto fsck = verify::check_control_state(sim.network());
  EXPECT_TRUE(fsck.ok()) << fsck.summary();
  const auto drained = verify::check_drained(sim.network());
  EXPECT_TRUE(drained.ok()) << drained.summary();
  EXPECT_EQ(sim.stats().messages_delivered, offered);

  // Livelock bound: a probe's decision steps are bounded by the finite
  // search space plus the finite waits on established circuits.
  if (const auto* cp = sim.network().control_plane(); cp != nullptr) {
    EXPECT_LT(cp->stats().max_probe_steps, 1'000'000u)
        << "a probe searched far beyond the finite bound";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Stress, DeadlockLivelock,
    ::testing::Values(
        StressCase{"clrp_uniform", sim::ProtocolKind::kClrp,
                   sim::ClrpVariant::kFull, sim::RoutingKind::kDimensionOrder,
                   "uniform", 1, 0.02},
        StressCase{"clrp_uniform", sim::ProtocolKind::kClrp,
                   sim::ClrpVariant::kFull, sim::RoutingKind::kDimensionOrder,
                   "uniform", 2, 0.02},
        StressCase{"clrp_hotspot", sim::ProtocolKind::kClrp,
                   sim::ClrpVariant::kFull, sim::RoutingKind::kDimensionOrder,
                   "hotspot", 3, 0.015},
        StressCase{"clrp_transpose", sim::ProtocolKind::kClrp,
                   sim::ClrpVariant::kFull, sim::RoutingKind::kDimensionOrder,
                   "transpose", 4, 0.02},
        StressCase{"clrp_neighbor", sim::ProtocolKind::kClrp,
                   sim::ClrpVariant::kFull, sim::RoutingKind::kDimensionOrder,
                   "neighbor", 5, 0.03},
        StressCase{"clrp_forcefirst", sim::ProtocolKind::kClrp,
                   sim::ClrpVariant::kForceFirst,
                   sim::RoutingKind::kDimensionOrder, "uniform", 6, 0.02},
        StressCase{"clrp_singleswitch", sim::ProtocolKind::kClrp,
                   sim::ClrpVariant::kSingleSwitch,
                   sim::RoutingKind::kDimensionOrder, "hotspot", 7, 0.015},
        StressCase{"clrp_adaptive", sim::ProtocolKind::kClrp,
                   sim::ClrpVariant::kFull, sim::RoutingKind::kDuatoAdaptive,
                   "uniform", 8, 0.02},
        StressCase{"carp_uniform", sim::ProtocolKind::kCarp,
                   sim::ClrpVariant::kFull, sim::RoutingKind::kDimensionOrder,
                   "uniform", 9, 0.02},
        StressCase{"carp_neighbor", sim::ProtocolKind::kCarp,
                   sim::ClrpVariant::kFull, sim::RoutingKind::kDimensionOrder,
                   "neighbor", 10, 0.03},
        StressCase{"wormhole_uniform", sim::ProtocolKind::kWormholeOnly,
                   sim::ClrpVariant::kFull, sim::RoutingKind::kDimensionOrder,
                   "uniform", 11, 0.04},
        StressCase{"wormhole_hotspot", sim::ProtocolKind::kWormholeOnly,
                   sim::ClrpVariant::kFull, sim::RoutingKind::kDimensionOrder,
                   "hotspot", 12, 0.02},
        StressCase{"wormhole_adaptive", sim::ProtocolKind::kWormholeOnly,
                   sim::ClrpVariant::kFull, sim::RoutingKind::kDuatoAdaptive,
                   "transpose", 13, 0.03},
        StressCase{"pcs_only_uniform", sim::ProtocolKind::kClrp,
                   sim::ClrpVariant::kFull, sim::RoutingKind::kDimensionOrder,
                   "uniform", 14, 0.01, /*pcs_only=*/true},
        StressCase{"pcs_only_hotspot", sim::ProtocolKind::kClrp,
                   sim::ClrpVariant::kFull, sim::RoutingKind::kDimensionOrder,
                   "hotspot", 15, 0.008, /*pcs_only=*/true}),
    PrintCase);

// Seed sweep: the same brutal CLRP configuration (k=1, 2-entry caches,
// hotspot traffic) across many seeds -- each seed explores a different
// interleaving of Force waits, release requests, teardowns and retries.
class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, ClrpHotspotNeverWedges) {
  sim::SimConfig cfg;
  cfg.topology.radix = {4, 4};
  cfg.topology.torus = true;
  cfg.protocol.protocol = sim::ProtocolKind::kClrp;
  cfg.router.wave_switches = 1;
  cfg.protocol.circuit_cache_entries = 2;
  cfg.protocol.max_misroutes = 1;
  cfg.seed = GetParam();
  Simulation sim(cfg);
  sim::Rng rng{GetParam() * 2654435761ULL + 1};
  std::uint64_t offered = 0;
  for (Cycle c = 0; c < 2500; ++c) {
    for (NodeId src = 0; src < 16; ++src) {
      if (!rng.chance(0.012)) continue;
      const NodeId dest = pick_dest(sim.topology(), "hotspot", src, rng);
      sim.send(src, dest, static_cast<std::int32_t>(4 + rng.next_below(44)));
      ++offered;
    }
    sim.step();
  }
  ASSERT_TRUE(sim.run_until_delivered(3'000'000)) << "seed " << GetParam();
  EXPECT_EQ(sim.stats().messages_delivered, offered);
  const auto check = verify::check_delivery(sim.network());
  EXPECT_TRUE(check.ok()) << check.summary();
  const auto fsck = verify::check_control_state(sim.network());
  EXPECT_TRUE(fsck.ok()) << fsck.summary();
}

INSTANTIATE_TEST_SUITE_P(ManySeeds, SeedSweep,
                         ::testing::Range<std::uint64_t>(100, 120));

// The Force-bit corner of Theorem 1: Force lets a probe wait only on a
// channel whose circuit is *established* (and demand its release). When
// every requested channel belongs to a circuit still being established
// (reservation placed, ack not yet returned), even a Force probe must
// backtrack -- waiting there could deadlock two pending setups against
// each other. This drives that exact interleaving and asserts (a) the
// probe backtracks (kBacktracked fires), and (b) nothing established is
// torn down.
TEST(ForceCorner, ForceProbeBacktracksOffPendingChannelsOnly) {
  const topo::KAryNCube topo({4, 4}, /*torus=*/true);
  wh::ExclusiveLinkGate gate(topo);
  core::CircuitTable circuits;
  core::Instrumentation instr;
  std::vector<core::Event> events;
  instr.set_sink([&](const core::Event& ev) { events.push_back(ev); });
  // One switch, m = 0: the probe has no misroute escape, so the pending
  // minimal channel is the only thing it could possibly wait on.
  core::ControlPlane plane(topo, circuits, gate,
                           core::ControlPlaneParams{1, 0}, &instr);

  Cycle now = 0;
  std::vector<core::ProbeResult> results;
  const auto run = [&](int cycles) {
    for (int i = 0; i < cycles; ++i) {
      gate.reset();
      plane.step(now++);
      for (const auto& r : plane.take_probe_results()) results.push_back(r);
      plane.take_release_demands();
      plane.take_teardowns_done();
    }
  };

  // An established bystander circuit off the probe's minimal path: it must
  // survive untouched.
  const NodeId n10 = topo.node_of({1, 0});
  const CircuitId bystander = circuits.create(n10, topo.node_of({1, 1}), 0);
  plane.launch_probe(bystander, /*force=*/false);
  run(64);
  ASSERT_EQ(circuits.at(bystander).state, core::CircuitState::kEstablished);

  // Pending setup A: (1,0) -> (3,0) reserves (1,0)+x immediately, and its
  // ack only returns to (1,0) several hops later -- a window in which the
  // channel is busy with a circuit still being established.
  const CircuitId pending = circuits.create(n10, topo.node_of({3, 0}), 0);
  plane.launch_probe(pending, /*force=*/false);
  run(1);  // A has reserved (1,0)+x and moved on; ack far away

  // Force probe B: (0,0) -> (2,0). Its only minimal port at (1,0) is the
  // channel A holds pending. With m = 0 there is nothing else to request.
  const CircuitId forced = circuits.create(topo.node_of({0, 0}),
                                           topo.node_of({2, 0}), 0);
  plane.launch_probe(forced, /*force=*/true);
  run(64);  // everything settles

  // B advanced one hop, hit the pending wall, backtracked, and failed at
  // the source (no misroute credit) instead of waiting.
  bool backtracked = false;
  for (const auto& ev : events) {
    if (ev.kind == core::EventKind::kBacktracked && ev.circuit == forced) {
      backtracked = true;
    }
  }
  EXPECT_TRUE(backtracked)
      << "Force probe should retreat off a pending channel, not wait";
  bool failed = false;
  for (const auto& r : results) {
    if (r.circuit == forced && !r.success) failed = true;
  }
  EXPECT_TRUE(failed) << "exhausted Force probe must report failure";

  // No Force teardown of anything: the bystander is still established and
  // the pending setup completed normally.
  EXPECT_EQ(plane.stats().teardowns_started, 0u);
  for (const auto& ev : events) {
    EXPECT_NE(ev.kind, core::EventKind::kForceTeardown);
    EXPECT_NE(ev.kind, core::EventKind::kTeardownStarted);
  }
  EXPECT_EQ(circuits.at(bystander).state, core::CircuitState::kEstablished);
  EXPECT_EQ(circuits.at(pending).state, core::CircuitState::kEstablished);
}

// Faults + Force probes together: the hardest corner of Theorem 1.
TEST(DeadlockLivelockFaults, ClrpSurvivesFaultyFabric) {
  for (const double rate : {0.05, 0.2, 0.5}) {
    sim::SimConfig cfg;
    cfg.topology.radix = {4, 4};
    cfg.topology.torus = true;
    cfg.protocol.protocol = sim::ProtocolKind::kClrp;
    cfg.protocol.circuit_cache_entries = 2;
    cfg.faults.link_fault_rate = rate;
    cfg.seed = 99;
    Simulation sim(cfg);
    sim::Rng rng{1234};
    std::uint64_t offered = 0;
    for (Cycle c = 0; c < 3000; ++c) {
      for (NodeId src = 0; src < 16; ++src) {
        if (!rng.chance(0.02)) continue;
        NodeId dest = static_cast<NodeId>(rng.next_below(16));
        if (dest == src) dest = (dest + 1) % 16;
        sim.send(src, dest, static_cast<std::int32_t>(4 + rng.next_below(28)));
        ++offered;
      }
      sim.step();
    }
    ASSERT_TRUE(sim.run_until_delivered(3'000'000))
        << "fault rate " << rate << " wedged the network";
    const auto check = verify::check_delivery(sim.network());
    EXPECT_TRUE(check.ok()) << check.summary();
    EXPECT_EQ(sim.stats().messages_delivered, offered);
  }
}

}  // namespace
}  // namespace wavesim
