// Tests for the parallel sweep harness (src/harness/): deterministic
// seeding, thread-count-independent merged statistics, the JSON writer's
// round-trip behaviour, OnlineStats::merge edge cases, and the thread
// pool itself. Distinct from test_sweeps.cpp, which covers the analytic
// parameter sweeps of the model.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include "harness/runner.hpp"
#include "harness/sweep.hpp"
#include "sim/json.hpp"
#include "sim/stats.hpp"

namespace wavesim {
namespace {

// ------------------------------------------------------------ derive_seed

TEST(DeriveSeed, StableAcrossCalls) {
  // The seed derivation is part of the export contract: results are only
  // reproducible across releases if these exact values never change.
  EXPECT_EQ(harness::derive_seed(1, 0, 0), harness::derive_seed(1, 0, 0));
  const std::uint64_t pinned = harness::derive_seed(1, 0, 0);
  EXPECT_NE(pinned, 0u);
}

TEST(DeriveSeed, DistinctPerTask) {
  std::set<std::uint64_t> seeds;
  for (std::size_t point = 0; point < 16; ++point) {
    for (std::int32_t replica = 0; replica < 16; ++replica) {
      seeds.insert(harness::derive_seed(42, point, replica));
    }
  }
  EXPECT_EQ(seeds.size(), 16u * 16u);
}

TEST(DeriveSeed, BaseSeedChangesEverything) {
  EXPECT_NE(harness::derive_seed(1, 3, 2), harness::derive_seed(2, 3, 2));
}

// ------------------------------------------------------------- ThreadPool

TEST(Runner, RunIndexedCoversAllIndices) {
  constexpr std::size_t kN = 97;
  std::vector<std::atomic<int>> hits(kN);
  harness::run_indexed(
      kN, [&](std::size_t i) { hits[i].fetch_add(1, std::memory_order_relaxed); },
      4);
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(Runner, ZeroTasksIsANoOp) {
  harness::run_indexed(0, [](std::size_t) { FAIL(); }, 4);
}

TEST(Runner, ExceptionsPropagate) {
  EXPECT_THROW(
      harness::run_indexed(
          8,
          [](std::size_t i) {
            if (i == 5) throw std::runtime_error("task 5 failed");
          },
          3),
      std::runtime_error);
}

TEST(Runner, ResolveThreadsNeverZero) {
  EXPECT_GE(harness::resolve_threads(0), 1u);
  EXPECT_EQ(harness::resolve_threads(3), 3u);
}

// ---------------------------------------------------- OnlineStats::merge

TEST(OnlineStatsMerge, EmptyPlusEmpty) {
  sim::OnlineStats a, b;
  a.merge(b);
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.mean(), 0.0);
}

TEST(OnlineStatsMerge, EmptyAbsorbsNonEmpty) {
  sim::OnlineStats a, b;
  b.add(2.0);
  b.add(4.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 3.0);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 4.0);
}

TEST(OnlineStatsMerge, NonEmptyAbsorbsEmpty) {
  sim::OnlineStats a, b;
  a.add(7.0);
  const double before_mean = a.mean();
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.mean(), before_mean);
}

TEST(OnlineStatsMerge, MergeMatchesSequentialAdds) {
  const std::vector<double> values{1.5, -2.0, 8.25, 0.0, 3.125, 9.75, -4.5};
  sim::OnlineStats sequential;
  for (double v : values) sequential.add(v);

  sim::OnlineStats left, right, merged;
  for (std::size_t i = 0; i < values.size(); ++i) {
    (i < 3 ? left : right).add(values[i]);
  }
  merged.merge(left);
  merged.merge(right);

  EXPECT_EQ(merged.count(), sequential.count());
  EXPECT_DOUBLE_EQ(merged.mean(), sequential.mean());
  EXPECT_NEAR(merged.stddev(), sequential.stddev(), 1e-12);
  EXPECT_DOUBLE_EQ(merged.min(), sequential.min());
  EXPECT_DOUBLE_EQ(merged.max(), sequential.max());
}

// -------------------------------------------------------------- run_sweep

std::vector<harness::SweepPoint> tiny_points() {
  std::vector<harness::SweepPoint> points;
  for (const double load : {0.05, 0.12}) {
    harness::SweepPoint p;
    p.label = "clrp@" + std::to_string(load);
    p.config = sim::SimConfig::default_torus();
    p.config.topology.radix = {4, 4};
    p.offered_load = load;
    p.warmup = 200;
    p.measure = 600;
    p.drain_cap = 60'000;
    points.push_back(std::move(p));
  }
  return points;
}

TEST(RunSweep, MergedStatsIndependentOfThreadCount) {
  harness::SweepOptions serial;
  serial.base_seed = 7;
  serial.replicas = 3;
  serial.threads = 1;
  harness::SweepOptions parallel = serial;
  parallel.threads = 4;

  const auto points = tiny_points();
  const auto a = harness::run_sweep(points, serial);
  const auto b = harness::run_sweep(points, parallel);

  // Byte-for-byte: the deterministic part of the export must not depend
  // on how many workers executed the tasks.
  EXPECT_EQ(harness::points_to_json(a).dump(),
            harness::points_to_json(b).dump());
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points[i].messages_delivered, b.points[i].messages_delivered);
    EXPECT_EQ(a.points[i].metrics.latency_mean.mean(),
              b.points[i].metrics.latency_mean.mean());
    EXPECT_EQ(a.points[i].metrics.throughput.stddev(),
              b.points[i].metrics.throughput.stddev());
  }
}

TEST(RunSweep, ReplicasActuallyDiffer) {
  // Distinct derived seeds must yield distinct measurements — otherwise
  // the replica stddev is meaninglessly zero.
  auto points = tiny_points();
  points.resize(1);
  harness::SweepOptions options;
  options.replicas = 4;
  options.threads = 1;
  const auto result = harness::run_sweep(points, options);
  ASSERT_EQ(result.points.size(), 1u);
  EXPECT_GT(result.points[0].metrics.latency_mean.stddev(), 0.0);
  EXPECT_EQ(result.points[0].replicas, 4);
  EXPECT_EQ(result.runs, 4u);
}

TEST(RunSweep, RejectsInvalidConfig) {
  auto points = tiny_points();
  points[0].config.topology.radix = {};  // invalid: no dimensions
  EXPECT_THROW(harness::run_sweep(points, {}), std::invalid_argument);
}

// ------------------------------------------------------------------ JSON

TEST(Json, SweepExportRoundTrips) {
  auto points = tiny_points();
  points.resize(1);
  harness::SweepOptions options;
  options.base_seed = 3;
  options.replicas = 2;
  options.threads = 2;
  const auto result = harness::run_sweep(points, options);

  const sim::JsonValue doc = harness::to_json(result);
  const std::string text = doc.dump(2);
  const sim::JsonValue parsed = sim::JsonValue::parse(text);

  EXPECT_EQ(parsed.at("schema").as_string(), "wavesim.sweep.v1");
  EXPECT_EQ(parsed.at("base_seed").as_int(), 3);
  EXPECT_EQ(parsed.at("replicas").as_int(), 2);
  const sim::JsonValue& pts = parsed.at("points");
  ASSERT_EQ(pts.size(), 1u);
  const sim::JsonValue& p0 = pts.at(0);
  EXPECT_EQ(p0.at("label").as_string(), result.points[0].label);
  EXPECT_EQ(static_cast<std::uint64_t>(p0.at("messages_delivered").as_int()),
            result.points[0].messages_delivered);
  // Metric doubles survive the dump->parse cycle exactly (printed with
  // enough digits to round-trip).
  EXPECT_DOUBLE_EQ(
      p0.at("metrics").at("latency_mean").at("mean").as_number(),
      result.points[0].metrics.latency_mean.mean());
}

TEST(Json, ParserHandlesEscapesAndNesting) {
  const sim::JsonValue v = sim::JsonValue::parse(
      R"({"a": [1, 2.5, true, false, null], "s": "line\nbreak A", )"
      R"("nested": {"deep": [{"x": -3}]}})");
  EXPECT_EQ(v.at("a").size(), 5u);
  EXPECT_EQ(v.at("a").at(0).as_int(), 1);
  EXPECT_DOUBLE_EQ(v.at("a").at(1).as_number(), 2.5);
  EXPECT_EQ(v.at("s").as_string(), "line\nbreak A");
  EXPECT_EQ(v.at("nested").at("deep").at(0).at("x").as_int(), -3);
}

TEST(Json, DumpIsStableAndReparsable) {
  sim::JsonValue doc = sim::JsonValue::object()
                           .set("z_first", 1)
                           .set("a_second", "two")
                           .set("list", sim::JsonValue::array());
  const std::string once = doc.dump();
  // Insertion order is preserved (stable diffs), and dump(parse(dump))
  // is a fixpoint.
  EXPECT_LT(once.find("z_first"), once.find("a_second"));
  EXPECT_EQ(sim::JsonValue::parse(once).dump(), once);
}

}  // namespace
}  // namespace wavesim
