#include "sim/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>

namespace wavesim::sim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a{42};
  Rng b{42};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1};
  Rng b{2};
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, ZeroSeedIsValid) {
  Rng r{0};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 100; ++i) seen.insert(r.next());
  EXPECT_GT(seen.size(), 90u);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng r{7};
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL}) {
    for (int i = 0; i < 2000; ++i) {
      EXPECT_LT(r.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng r{11};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(r.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextBelowRoughlyUniform) {
  Rng r{13};
  std::array<int, 8> counts{};
  const int trials = 80000;
  for (int i = 0; i < trials; ++i) ++counts[r.next_below(8)];
  for (int c : counts) {
    EXPECT_NEAR(c, trials / 8, trials / 8 / 5);  // within 20%
  }
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng r{17};
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = r.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng r{19};
  EXPECT_EQ(r.uniform_int(5, 5), 5);
  EXPECT_EQ(r.uniform_int(5, 4), 5);  // hi < lo clamps to lo
}

TEST(Rng, Uniform01InRangeAndCentered) {
  Rng r{23};
  double sum = 0.0;
  const int trials = 50000;
  for (int i = 0; i < trials; ++i) {
    const double u = r.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / trials, 0.5, 0.01);
}

TEST(Rng, ChanceExtremes) {
  Rng r{29};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
    EXPECT_FALSE(r.chance(-0.5));
    EXPECT_TRUE(r.chance(1.5));
  }
}

TEST(Rng, ChanceMatchesProbability) {
  Rng r{31};
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) hits += r.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.01);
}

TEST(Rng, GeometricMeanRoughlyMatches) {
  Rng r{37};
  const double p = 0.25;
  double sum = 0.0;
  const int trials = 50000;
  for (int i = 0; i < trials; ++i) {
    sum += static_cast<double>(r.geometric(p, 1000000));
  }
  // Mean of failures-before-success geometric = (1-p)/p = 3.
  EXPECT_NEAR(sum / trials, 3.0, 0.15);
}

TEST(Rng, GeometricHonorsCap) {
  Rng r{41};
  for (int i = 0; i < 1000; ++i) EXPECT_LE(r.geometric(0.001, 50), 50u);
  EXPECT_EQ(r.geometric(0.0, 7), 7u);
  EXPECT_EQ(r.geometric(1.0, 7), 0u);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent{43};
  Rng child = parent.fork();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (parent.next() == child.next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, ForkIsDeterministic) {
  Rng a{47};
  Rng b{47};
  Rng ca = a.fork();
  Rng cb = b.fork();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(ca.next(), cb.next());
}

TEST(SplitMix, KnownSequenceIsStable) {
  std::uint64_t s = 0;
  const auto v1 = splitmix64(s);
  const auto v2 = splitmix64(s);
  EXPECT_NE(v1, v2);
  std::uint64_t s2 = 0;
  EXPECT_EQ(splitmix64(s2), v1);
}

}  // namespace
}  // namespace wavesim::sim
