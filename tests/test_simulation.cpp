// End-to-end tests of the public Simulation facade: CLRP and CARP message
// flows, wormhole fallback, circuit reuse, eviction, and the headline
// latency relationships the paper claims.
#include "core/simulation.hpp"

#include <gtest/gtest.h>

namespace wavesim::core {
namespace {

sim::SimConfig clrp_torus() {
  sim::SimConfig cfg = sim::SimConfig::default_torus();
  cfg.protocol.protocol = sim::ProtocolKind::kClrp;
  return cfg;
}

TEST(Simulation, ValidatesConfig) {
  sim::SimConfig bad = clrp_torus();
  bad.router.wormhole_vcs = 0;
  EXPECT_THROW(Simulation{bad}, std::invalid_argument);
}

TEST(Simulation, SendValidation) {
  Simulation sim(clrp_torus());
  EXPECT_THROW(sim.send(0, 0, 8), std::invalid_argument);
  EXPECT_THROW(sim.send(0, 9999, 8), std::invalid_argument);
  EXPECT_THROW(sim.send(-1, 3, 8), std::invalid_argument);
  EXPECT_THROW(sim.send(0, 3, 0), std::invalid_argument);
}

TEST(Simulation, ClrpDeliversSingleMessageViaFreshCircuit) {
  Simulation sim(clrp_torus());
  const MessageId id = sim.send(0, 27, 128);
  ASSERT_TRUE(sim.run_until_delivered(50000));
  EXPECT_TRUE(sim.message_done(id));
  const auto& rec = sim.network().messages().at(id);
  EXPECT_EQ(rec.mode, MessageMode::kCircuitAfterSetup);
  const auto stats = sim.stats();
  EXPECT_EQ(stats.messages_delivered, 1u);
  EXPECT_EQ(stats.circuit_setup_count, 1u);
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_GE(stats.probes_launched, 1u);
  EXPECT_GE(stats.probes_succeeded, 1u);
}

TEST(Simulation, SecondMessageIsACircuitHitAndFaster) {
  Simulation sim(clrp_torus());
  const MessageId first = sim.send(0, 27, 64);
  ASSERT_TRUE(sim.run_until_delivered(50000));
  const MessageId second = sim.send(0, 27, 64);
  ASSERT_TRUE(sim.run_until_delivered(50000));
  const auto& log = sim.network().messages();
  EXPECT_EQ(log.at(first).mode, MessageMode::kCircuitAfterSetup);
  EXPECT_EQ(log.at(second).mode, MessageMode::kCircuitHit);
  EXPECT_LT(log.at(second).latency(), log.at(first).latency());
  EXPECT_EQ(sim.stats().cache_hits, 1u);
}

TEST(Simulation, WaveBeatsWormholeForLongMessages) {
  // The headline claim: for long messages, circuit transmission (even
  // including setup) beats wormhole switching; with reuse the gap exceeds
  // the wave clock factor.
  const NodeId src = 0;
  const NodeId dest = 36;  // (4,4) on the 8x8 torus: 8 hops
  const std::int32_t length = 128;

  Simulation wave(clrp_torus());
  wave.send(src, dest, length);
  ASSERT_TRUE(wave.run_until_delivered(50000));
  const double setup_latency =
      wave.network().messages().at(0).latency();
  wave.send(src, dest, length);
  ASSERT_TRUE(wave.run_until_delivered(50000));
  const double hit_latency = wave.network().messages().at(1).latency();

  Simulation wormhole(sim::SimConfig::wormhole_baseline());
  wormhole.send(src, dest, length);
  ASSERT_TRUE(wormhole.run_until_delivered(50000));
  const double wh_latency = wormhole.network().messages().at(0).latency();

  EXPECT_LT(setup_latency, wh_latency);
  EXPECT_LT(hit_latency, wh_latency / 3.0)
      << "reused circuits should beat wormhole by more than 3x on "
         "128-flit messages";
}

TEST(Simulation, ShortMessagePolicyUsesWormhole) {
  sim::SimConfig cfg = clrp_torus();
  cfg.protocol.min_circuit_message_flits = 16;
  Simulation sim(cfg);
  const MessageId small = sim.send(0, 9, 4);
  const MessageId large = sim.send(0, 9, 64);
  ASSERT_TRUE(sim.run_until_delivered(50000));
  EXPECT_EQ(sim.network().messages().at(small).mode,
            MessageMode::kWormholePolicy);
  EXPECT_EQ(sim.network().messages().at(large).mode,
            MessageMode::kCircuitAfterSetup);
}

TEST(Simulation, WormholeOnlyConfiguration) {
  Simulation sim(sim::SimConfig::wormhole_baseline());
  for (NodeId n = 1; n < 8; ++n) sim.send(0, n, 8);
  ASSERT_TRUE(sim.run_until_delivered(50000));
  const auto stats = sim.stats();
  EXPECT_EQ(stats.messages_delivered, 7u);
  EXPECT_EQ(stats.wormhole_count, 7u);
  EXPECT_EQ(stats.probes_launched, 0u);
  EXPECT_EQ(stats.cache_misses, 0u);
}

TEST(Simulation, CacheEvictionTearsDownVictim) {
  sim::SimConfig cfg = clrp_torus();
  cfg.protocol.circuit_cache_entries = 1;
  Simulation sim(cfg);
  sim.send(0, 5, 32);
  ASSERT_TRUE(sim.run_until_delivered(50000));
  sim.send(0, 10, 32);  // must evict the circuit to 5
  ASSERT_TRUE(sim.run_until_delivered(50000));
  const auto stats = sim.stats();
  EXPECT_EQ(stats.cache_evictions, 1u);
  EXPECT_EQ(stats.teardowns, 1u);
  EXPECT_EQ(stats.messages_delivered, 2u);
  // The circuit to 5 is gone: a third message to 5 misses again.
  sim.send(0, 5, 32);
  ASSERT_TRUE(sim.run_until_delivered(50000));
  EXPECT_EQ(sim.stats().cache_misses, 3u);
}

TEST(Simulation, HeavyFaultsFallBackToWormholeButDeliver) {
  sim::SimConfig cfg = clrp_torus();
  cfg.faults.link_fault_rate = 0.9;  // circuit plane nearly unusable
  Simulation sim(cfg);
  for (int i = 0; i < 10; ++i) sim.send(i, 63 - i, 32);
  ASSERT_TRUE(sim.run_until_delivered(200000));
  const auto stats = sim.stats();
  EXPECT_EQ(stats.messages_delivered, 10u);
  EXPECT_GT(stats.fallback_count + stats.circuit_setup_count, 0u);
}

TEST(Simulation, CarpEstablishSendRelease) {
  sim::SimConfig cfg = clrp_torus();
  cfg.protocol.protocol = sim::ProtocolKind::kCarp;
  Simulation sim(cfg);
  // Without establish, CARP sends via wormhole.
  const MessageId cold = sim.send(0, 18, 64);
  ASSERT_TRUE(sim.run_until_delivered(50000));
  EXPECT_EQ(sim.network().messages().at(cold).mode,
            MessageMode::kWormholePolicy);
  // Prefetch the circuit, then send: circuit is used.
  EXPECT_TRUE(sim.establish_circuit(0, 18));
  sim.run(200);
  const MessageId warm = sim.send(0, 18, 64);
  ASSERT_TRUE(sim.run_until_delivered(50000));
  EXPECT_EQ(sim.network().messages().at(warm).mode, MessageMode::kCircuitHit);
  // Release; a later message goes back to wormhole.
  sim.release_circuit(0, 18);
  sim.run(200);
  const MessageId after = sim.send(0, 18, 64);
  ASSERT_TRUE(sim.run_until_delivered(50000));
  EXPECT_EQ(sim.network().messages().at(after).mode,
            MessageMode::kWormholePolicy);
  EXPECT_EQ(sim.stats().teardowns, 1u);
}

TEST(Simulation, CarpEstablishBeforeSendHidesSetupLatency) {
  sim::SimConfig cfg = clrp_torus();
  cfg.protocol.protocol = sim::ProtocolKind::kCarp;
  Simulation sim(cfg);
  EXPECT_TRUE(sim.establish_circuit(0, 27));
  sim.run(300);  // setup completes in the background
  const MessageId id = sim.send(0, 27, 64);
  ASSERT_TRUE(sim.run_until_delivered(50000));
  const auto& rec = sim.network().messages().at(id);
  EXPECT_EQ(rec.mode, MessageMode::kCircuitHit);

  // Compare: CLRP pays the setup on the first message.
  Simulation clrp(clrp_torus());
  const MessageId cold = clrp.send(0, 27, 64);
  ASSERT_TRUE(clrp.run_until_delivered(50000));
  EXPECT_LT(rec.latency(), clrp.network().messages().at(cold).latency());
}

TEST(Simulation, CarpEstablishIsIdempotent) {
  sim::SimConfig cfg = clrp_torus();
  cfg.protocol.protocol = sim::ProtocolKind::kCarp;
  Simulation sim(cfg);
  EXPECT_TRUE(sim.establish_circuit(0, 5));
  EXPECT_TRUE(sim.establish_circuit(0, 5));  // no second setup
  sim.run(300);
  EXPECT_EQ(sim.stats().probes_launched, 1u);
}

TEST(Simulation, QueuedMessagesShareTheCircuitInOrder) {
  Simulation sim(clrp_torus());
  std::vector<MessageId> ids;
  for (int i = 0; i < 5; ++i) ids.push_back(sim.send(0, 27, 32));
  ASSERT_TRUE(sim.run_until_delivered(100000));
  const auto& log = sim.network().messages();
  // One setup, all five on the same circuit, delivered in send order.
  EXPECT_EQ(sim.stats().probes_launched, 1u);
  for (std::size_t i = 1; i < ids.size(); ++i) {
    EXPECT_GT(log.at(ids[i]).delivered, log.at(ids[i - 1]).delivered);
  }
}

TEST(Simulation, DeterministicAcrossRuns) {
  auto run_once = [] {
    Simulation sim(clrp_torus());
    sim::Rng rng{7};
    for (int i = 0; i < 50; ++i) {
      const NodeId s = static_cast<NodeId>(rng.next_below(64));
      NodeId d = static_cast<NodeId>(rng.next_below(64));
      if (d == s) d = (d + 1) % 64;
      sim.send(s, d, 16 + static_cast<std::int32_t>(rng.next_below(48)));
      sim.run(10);
    }
    EXPECT_TRUE(sim.run_until_delivered(500000));
    const auto st = sim.stats();
    return std::make_tuple(sim.now(), st.latency_mean, st.cache_hits,
                           st.probes_launched);
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Simulation, StatsWarmupFilterSkipsEarlyMessages) {
  Simulation sim(clrp_torus());
  sim.send(0, 9, 16);
  ASSERT_TRUE(sim.run_until_delivered(50000));
  const Cycle cut = sim.now();
  sim.send(1, 10, 16);
  sim.send(2, 11, 16);
  ASSERT_TRUE(sim.run_until_delivered(50000));
  EXPECT_EQ(sim.stats().messages_offered, 3u);
  EXPECT_EQ(sim.stats(cut).messages_offered, 2u);
}

TEST(Simulation, RunZeroCyclesIsANoop) {
  Simulation sim(clrp_torus());
  sim.send(0, 9, 16);
  const Cycle before = sim.now();
  sim.run(0);
  EXPECT_EQ(sim.now(), before);
  ASSERT_TRUE(sim.run_until_delivered(50000));
}

TEST(Simulation, DifferentSeedsDifferentDynamicsSameInvariants) {
  auto run_seed = [](std::uint64_t seed) {
    sim::SimConfig cfg = clrp_torus();
    cfg.seed = seed;
    Simulation sim(cfg);
    sim::Rng rng{seed};
    for (int i = 0; i < 40; ++i) {
      const NodeId s = static_cast<NodeId>(rng.next_below(64));
      NodeId d = static_cast<NodeId>(rng.next_below(64));
      if (d == s) d = (d + 1) % 64;
      sim.send(s, d, 24);
      sim.run(8);
    }
    EXPECT_TRUE(sim.run_until_delivered(500000));
    EXPECT_EQ(sim.stats().messages_delivered, 40u);
    return sim.stats().latency_mean;
  };
  // Both seeds satisfy every delivery guarantee but explore different
  // interleavings (different workloads entirely, since the seed also
  // drives the generator here).
  EXPECT_NE(run_seed(101), run_seed(202));
}

TEST(Simulation, MixedTrafficAllDelivered) {
  Simulation sim(clrp_torus());
  sim::Rng rng{99};
  int sent = 0;
  for (Cycle c = 0; c < 2000; ++c) {
    if (rng.chance(0.08)) {
      const NodeId s = static_cast<NodeId>(rng.next_below(64));
      NodeId d = static_cast<NodeId>(rng.next_below(64));
      if (d == s) d = (d + 1) % 64;
      sim.send(s, d, rng.chance(0.5) ? 8 : 96);
      ++sent;
    }
    sim.step();
  }
  ASSERT_TRUE(sim.run_until_delivered(500000));
  EXPECT_EQ(sim.stats().messages_delivered, static_cast<std::uint64_t>(sent));
  EXPECT_TRUE(sim.network().quiescent());
}

}  // namespace
}  // namespace wavesim::core
