// The sharded parallel engine: partitioning (contiguous, balanced,
// clamped), the cycle-synchronous pool (every slot runs, errors rethrow,
// reusable across epochs), config parsing/serialization, and — the
// subsystem's core promise — bit-identical results to the sequential
// stepper for any shard and thread count, including circuits established
// and torn down across partition cuts and the k=1 / capacity-1 cache
// corners.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include "check/scenario.hpp"
#include "core/instrumentation.hpp"
#include "core/simulation.hpp"
#include "engine/engine.hpp"
#include "engine/partition.hpp"
#include "engine/pool.hpp"
#include "harness/sweep.hpp"
#include "sim/json.hpp"
#include "sim/rng.hpp"
#include "verify/delivery.hpp"
#include "verify/watchdog.hpp"
#include "workload/generator.hpp"

namespace wavesim::engine {
namespace {

// ------------------------------------------------------------- partition

TEST(Partition, CoversAllNodesContiguouslyAndBalanced) {
  for (const std::int32_t nodes : {1, 5, 16, 64, 256}) {
    for (const std::int32_t shards : {1, 2, 3, 4, 7, 8}) {
      const std::vector<ShardRange> ranges = partition_nodes(nodes, shards);
      ASSERT_FALSE(ranges.empty());
      EXPECT_EQ(ranges.front().begin, 0);
      EXPECT_EQ(ranges.back().end, nodes);
      std::int32_t min_size = nodes;
      std::int32_t max_size = 0;
      for (std::size_t s = 0; s < ranges.size(); ++s) {
        EXPECT_GT(ranges[s].size(), 0) << "empty shard " << s;
        if (s > 0) {
          EXPECT_EQ(ranges[s].begin, ranges[s - 1].end);
        }
        min_size = std::min(min_size, ranges[s].size());
        max_size = std::max(max_size, ranges[s].size());
        for (NodeId n = ranges[s].begin; n < ranges[s].end; ++n) {
          EXPECT_EQ(shard_of(n, nodes, shards),
                    static_cast<std::int32_t>(s));
        }
      }
      EXPECT_LE(max_size - min_size, 1) << nodes << "/" << shards;
    }
  }
}

TEST(Partition, ClampsShardCount) {
  EXPECT_EQ(clamp_shards(0, 16), 1);
  EXPECT_EQ(clamp_shards(-3, 16), 1);
  EXPECT_EQ(clamp_shards(4, 16), 4);
  EXPECT_EQ(clamp_shards(100, 16), 16);  // never an empty shard
  EXPECT_EQ(partition_nodes(16, 100).size(), 16u);
  EXPECT_EQ(partition_nodes(16, 0).size(), 1u);
}

// ------------------------------------------------------------ cycle pool

TEST(CyclePool, EverySlotRunsOncePerEpoch) {
  CyclePool pool(4);
  ASSERT_EQ(pool.participants(), 4u);
  std::vector<std::atomic<int>> hits(4);
  for (int epoch = 0; epoch < 500; ++epoch) {
    pool.run([&](unsigned slot) { ++hits[slot]; });
  }
  for (const auto& h : hits) EXPECT_EQ(h.load(), 500);
}

TEST(CyclePool, SingleParticipantRunsInline) {
  CyclePool pool(1);
  EXPECT_EQ(pool.participants(), 1u);
  int calls = 0;
  pool.run([&](unsigned slot) {
    EXPECT_EQ(slot, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(CyclePool, WorkerExceptionRethrowsAtTheBarrier) {
  CyclePool pool(3);
  EXPECT_THROW(pool.run([](unsigned slot) {
                 if (slot == 1) throw std::runtime_error("shard failed");
               }),
               std::runtime_error);
  // The pool survives a throwing epoch and keeps working.
  std::atomic<int> ok{0};
  pool.run([&](unsigned) { ++ok; });
  EXPECT_EQ(ok.load(), 3);
}

// ---------------------------------------------------------------- config

TEST(EngineConfig, ParseKind) {
  EXPECT_EQ(parse_engine_kind("seq"), EngineKind::kSeq);
  EXPECT_EQ(parse_engine_kind("par"), EngineKind::kPar);
  EXPECT_FALSE(parse_engine_kind("parallel").has_value());
  EXPECT_FALSE(parse_engine_kind("").has_value());
}

TEST(EngineConfig, JsonStampRecordsKindAndShards) {
  EngineConfig seq;
  EXPECT_EQ(seq.to_json().dump(), "{\"kind\":\"seq\"}");
  EngineConfig par;
  par.kind = EngineKind::kPar;
  par.shards = 3;
  EXPECT_EQ(par.to_json(64).dump(), "{\"kind\":\"par\",\"shards\":3}");
  // More shards than nodes resolves to one shard per node.
  EXPECT_EQ(par.to_json(2).dump(), "{\"kind\":\"par\",\"shards\":2}");
}

TEST(EngineConfig, MakeEngineNeverReturnsNull) {
  EngineConfig cfg;
  ASSERT_NE(make_engine(cfg, 16), nullptr);
  EXPECT_STREQ(make_engine(cfg, 16)->name(), "seq");
  cfg.kind = EngineKind::kPar;
  cfg.shards = 4;
  ASSERT_NE(make_engine(cfg, 16), nullptr);
  EXPECT_STREQ(make_engine(cfg, 16)->name(), "par");
}

// ----------------------------------------------------------- determinism

const core::StepEngine* install_par(core::Simulation& sim, std::int32_t shards,
                                    unsigned threads = 0, Cycle lookahead = 1) {
  EngineConfig cfg;
  cfg.kind = EngineKind::kPar;
  cfg.shards = shards;
  cfg.threads = threads;
  cfg.lookahead = lookahead;
  auto engine = make_engine(cfg, sim.topology().num_nodes());
  const core::StepEngine* raw = engine.get();
  sim.set_engine(std::move(engine));
  return raw;
}

/// Order-sensitive digest of the full instrumentation event stream — the
/// strongest observable equality: same hash => same events in the same
/// order with the same payloads.
struct EventFingerprint {
  std::uint64_t value = 0x77617665u;
  void feed(const core::Event& ev) {
    value = sim::hash_mix(value ^ ev.at);
    value = sim::hash_mix(value ^ static_cast<std::uint64_t>(ev.kind));
    value = sim::hash_mix(value ^ static_cast<std::uint64_t>(ev.node));
    value = sim::hash_mix(value ^ static_cast<std::uint64_t>(ev.msg));
    value = sim::hash_mix(value ^ static_cast<std::uint64_t>(ev.circuit));
  }
};

/// Run one open-loop experiment and render everything wavesim.run.v1
/// carries (minus the engine stamp, which intentionally differs): stats,
/// drain/watchdog outcome, final cycle, plus the event fingerprint.
std::string run_digest(const sim::SimConfig& config, std::int32_t shards,
                       unsigned threads = 0, Cycle lookahead = 1) {
  core::Simulation sim(config);
  if (shards > 0) install_par(sim, shards, threads, lookahead);
  EventFingerprint fp;
  sim.set_event_sink([&](const core::Event& ev) { fp.feed(ev); });
  load::UniformTraffic pattern(sim.topology());
  load::FixedSize sizes(32);
  const auto r = load::run_open_loop(sim, pattern, sizes, /*offered_load=*/0.1,
                                     /*warmup=*/300, /*measure=*/1200,
                                     /*drain_cap=*/200'000, /*seed=*/17);
  const sim::JsonValue doc =
      sim::JsonValue::object()
          .set("schema", "wavesim.run.v1")
          .set("drained", r.drained)
          .set("watchdog_verdict", verify::to_string(r.watchdog_verdict))
          .set("stalled_for", r.max_stalled)
          .set("stats", harness::stats_to_json(r.stats));
  return doc.dump(2) + "@cycle " + std::to_string(sim.now()) + "@fp " +
         std::to_string(fp.value);
}

TEST(ParallelEngine, RunOutputIdenticalAcrossShardCounts) {
  sim::SimConfig config = sim::SimConfig::default_torus();
  config.protocol.protocol = sim::ProtocolKind::kClrp;
  const std::string sequential = run_digest(config, /*shards=*/0);
  for (const std::int32_t shards : {1, 2, 3, 8}) {
    EXPECT_EQ(sequential, run_digest(config, shards))
        << "shards=" << shards << " diverged from the sequential stepper";
  }
}

TEST(ParallelEngine, RunOutputIndependentOfThreadCount) {
  sim::SimConfig config = sim::SimConfig::default_torus();
  config.protocol.protocol = sim::ProtocolKind::kClrp;
  const std::string one = run_digest(config, /*shards=*/8, /*threads=*/1);
  EXPECT_EQ(one, run_digest(config, 8, 2));
  EXPECT_EQ(one, run_digest(config, 8, 8));
}

TEST(ParallelEngine, WormholeOnlyIdenticalAcrossShardCounts) {
  sim::SimConfig config = sim::SimConfig::wormhole_baseline();
  const std::string sequential = run_digest(config, 0);
  for (const std::int32_t shards : {2, 3, 8}) {
    EXPECT_EQ(sequential, run_digest(config, shards)) << "shards=" << shards;
  }
}

// ------------------------------------------------------------- lookahead

TEST(ParallelEngine, LookaheadIdenticalAcrossShardAndWindowSizes) {
  sim::SimConfig config = sim::SimConfig::default_torus();
  config.protocol.protocol = sim::ProtocolKind::kClrp;
  const std::string sequential = run_digest(config, /*shards=*/0);
  for (const std::int32_t shards : {1, 2, 8}) {
    for (const Cycle lookahead : {Cycle{2}, Cycle{8}}) {
      EXPECT_EQ(sequential,
                run_digest(config, shards, /*threads=*/0, lookahead))
          << "shards=" << shards << " lookahead=" << lookahead
          << " diverged from the sequential stepper";
    }
  }
}

/// Like run_digest but without the event sink: an installed sink counts
/// as instrumentation and disables the early-send fast path, which is
/// exactly the path a sparse-traffic lookahead window must exercise.
struct SparseOutcome {
  std::string digest;
  core::StepEngine::WindowStats windows;
};

SparseOutcome run_sparse(const sim::SimConfig& config, std::int32_t shards,
                         Cycle lookahead) {
  core::Simulation sim(config);
  const core::StepEngine* engine = nullptr;
  if (shards > 0) engine = install_par(sim, shards, 0, lookahead);
  load::UniformTraffic pattern(sim.topology());
  load::FixedSize sizes(16);
  const auto r = load::run_open_loop(sim, pattern, sizes,
                                     /*offered_load=*/0.005,
                                     /*warmup=*/200, /*measure=*/1000,
                                     /*drain_cap=*/100'000, /*seed=*/23);
  SparseOutcome out;
  out.digest = harness::stats_to_json(r.stats).dump(2) + "@cycle " +
               std::to_string(sim.now());
  if (engine != nullptr) out.windows = engine->window_stats();
  return out;
}

TEST(ParallelEngine, LookaheadSparseWormholeFormsWindowsAndStaysIdentical) {
  const sim::SimConfig config = sim::SimConfig::wormhole_baseline();
  const SparseOutcome sequential = run_sparse(config, /*shards=*/0, 1);
  for (const Cycle lookahead : {Cycle{1}, Cycle{8}, Cycle{32}}) {
    const SparseOutcome par = run_sparse(config, /*shards=*/4, lookahead);
    EXPECT_EQ(sequential.digest, par.digest) << "lookahead=" << lookahead;
    if (lookahead > 1) {
      // Sparse traffic leaves idle spans the static analysis must prove:
      // at least one barrier has to commit more than one cycle.
      EXPECT_GT(par.windows.windows, 0u) << "lookahead=" << lookahead;
      EXPECT_GT(par.windows.committed_cycles, par.windows.windows)
          << "lookahead=" << lookahead
          << ": every window committed exactly one cycle";
    }
  }
}

TEST(ParallelEngine, IdleNodeWakesOnScheduledSendAtTheHorizon) {
  // A quiet 4x4 torus with two far-future scheduled sends: the engine
  // amortizes the idle prefix into wide windows, then must wake and
  // inject exactly at the scheduled cycle (the window plan is bounded by
  // the first pending send). Node 1 goes idle again mid-run after its
  // message drains, and the second send re-wakes the fabric.
  sim::SimConfig config = sim::SimConfig::wormhole_baseline();
  config.topology.radix = {4, 4};
  auto scenario = [&](std::int32_t shards, Cycle lookahead) {
    core::Simulation sim(config);
    const core::StepEngine* engine = nullptr;
    if (shards > 0) engine = install_par(sim, shards, 0, lookahead);
    core::Network& net = sim.network();
    net.schedule_send(/*src=*/1, /*dest=*/13, /*length=*/32, /*at=*/40);
    net.schedule_send(/*src=*/2, /*dest=*/14, /*length=*/32, /*at=*/120);
    EXPECT_FALSE(net.quiescent()) << "pending scheduled sends must block";
    sim.run(300);
    SparseOutcome out;
    out.digest = harness::stats_to_json(sim.stats()).dump(2) + "@cycle " +
                 std::to_string(sim.now());
    if (engine != nullptr) out.windows = engine->window_stats();
    EXPECT_EQ(sim.stats().messages_delivered, 2u);
    EXPECT_TRUE(net.quiescent());
    return out;
  };
  const SparseOutcome sequential = scenario(0, 1);
  for (const Cycle lookahead : {Cycle{2}, Cycle{16}}) {
    const SparseOutcome par = scenario(4, lookahead);
    EXPECT_EQ(sequential.digest, par.digest) << "lookahead=" << lookahead;
    // The idle prefix before cycle 40 and the quiet gap before cycle 120
    // must actually be amortized, not stepped cycle-by-cycle.
    EXPECT_GT(par.windows.committed_cycles, par.windows.windows)
        << "lookahead=" << lookahead;
  }
}

TEST(ParallelEngine, LookaheadIdenticalOnSimcheckScenarios) {
  // Three simcheck-generated scenarios (diverse protocol/topology/fault
  // draws) each run under the sequential stepper and under the parallel
  // engine with L in {1, 2, 8}: the digest must never move.
  for (const std::uint64_t seed : {101u, 202u, 303u}) {
    const check::Scenario scenario = check::Scenario::generate(seed);
    const sim::SimConfig config = scenario.to_config();
    const std::string sequential = run_digest(config, /*shards=*/0);
    for (const Cycle lookahead : {Cycle{1}, Cycle{2}, Cycle{8}}) {
      EXPECT_EQ(sequential,
                run_digest(config, /*shards=*/4, /*threads=*/0, lookahead))
          << scenario.label() << " (simcheck seed " << seed
          << ") diverged at lookahead=" << lookahead;
    }
  }
}

TEST(ScheduleSend, ValidatesArgumentsAndBlocksQuiescence) {
  core::Simulation sim(sim::SimConfig::wormhole_baseline());
  core::Network& net = sim.network();
  EXPECT_THROW(net.schedule_send(0, 0, 16, 0), std::invalid_argument);
  EXPECT_THROW(net.schedule_send(0, 1, 0, 0), std::invalid_argument);
  EXPECT_THROW(net.schedule_send(-1, 1, 16, 0), std::invalid_argument);
  sim.run(5);
  EXPECT_THROW(net.schedule_send(0, 1, 16, 2), std::invalid_argument)
      << "scheduling into the past must throw";
  net.schedule_send(0, 1, 16, 10);
  EXPECT_THROW(net.schedule_send(0, 1, 16, 8), std::invalid_argument)
      << "schedule cycles must be non-decreasing";
  EXPECT_FALSE(net.quiescent());
  EXPECT_TRUE(sim.run_until_delivered(10'000));
  EXPECT_TRUE(net.quiescent());
  EXPECT_EQ(sim.stats().messages_delivered, 1u);
}

TEST(EngineConfig, LookaheadStampAndValidation) {
  EngineConfig par;
  par.kind = EngineKind::kPar;
  par.shards = 3;
  par.lookahead = 8;
  EXPECT_EQ(par.to_json(64).dump(),
            "{\"kind\":\"par\",\"shards\":3,\"lookahead\":8}");
  par.lookahead = 1;  // default window is not stamped
  EXPECT_EQ(par.to_json(64).dump(), "{\"kind\":\"par\",\"shards\":3}");
  EngineConfig bad_seq;
  bad_seq.lookahead = 4;
  EXPECT_THROW(make_engine(bad_seq, 16), std::invalid_argument);
  EngineConfig bad_window;
  bad_window.kind = EngineKind::kPar;
  bad_window.shards = 2;
  bad_window.lookahead = 0;
  EXPECT_THROW(make_engine(bad_window, 16), std::invalid_argument);
}

// ---------------------------------------------- partition-cut protocols

/// 4x4 torus under 4 shards: each shard owns one row, so every column
/// link is a cut edge. Traffic runs strictly along columns, which forces
/// every circuit establishment, transfer, and teardown to cross shard
/// boundaries.
sim::SimConfig cut_config(sim::ClrpVariant variant, std::int32_t k,
                          std::int32_t cache_entries) {
  sim::SimConfig config;
  config.topology.radix = {4, 4};
  config.topology.torus = true;
  config.protocol.protocol = sim::ProtocolKind::kClrp;
  config.protocol.clrp_variant = variant;
  config.router.wave_switches = k;
  config.protocol.circuit_cache_entries = cache_entries;
  config.seed = 41;
  return config;
}

struct CutOutcome {
  std::string digest;
  core::SimulationStats stats;
};

CutOutcome run_cross_cut(const sim::SimConfig& config, std::int32_t shards) {
  core::Simulation sim(config);
  if (shards > 0) install_par(sim, shards);
  EventFingerprint fp;
  sim.set_event_sink([&](const core::Event& ev) { fp.feed(ev); });
  const std::int32_t nodes = sim.topology().num_nodes();
  // Row-major 4x4: node = row * 4 + col. Sources and destinations sit in
  // different rows (= different shards); a tiny cache and repeated
  // re-sends force evictions, hence cross-cut teardowns too.
  sim::Rng rng(7);
  for (int round = 0; round < 24; ++round) {
    for (std::int32_t col = 0; col < 4; ++col) {
      const NodeId src = static_cast<NodeId>(
          (round % 4) * 4 + col);                 // row = round % 4
      const std::int32_t hop =
          1 + static_cast<std::int32_t>(rng.next_below(3));
      const NodeId dest = static_cast<NodeId>((src + 4 * hop) % nodes);
      sim.send(src, dest, 24);
    }
    if (!sim.run_until_delivered(200'000)) break;
  }
  CutOutcome out;
  out.stats = sim.stats();
  const auto check = verify::check_delivery(sim.network());
  out.digest = harness::stats_to_json(out.stats).dump(2) + "@cycle " +
               std::to_string(sim.now()) + "@fp " +
               std::to_string(fp.value) + "@" +
               (check.ok() ? "ok" : check.summary());
  return out;
}

TEST(ParallelEngine, ForceFirstCircuitsAcrossPartitionCuts) {
  // CLRP with Force set on the first probe (Force=1): establishment and
  // teardown both run while shards step concurrently, and every circuit
  // crosses at least one cut.
  const sim::SimConfig config =
      cut_config(sim::ClrpVariant::kForceFirst, /*k=*/2, /*cache=*/2);
  const CutOutcome sequential = run_cross_cut(config, 0);
  const CutOutcome par = run_cross_cut(config, 4);
  EXPECT_EQ(sequential.digest, par.digest);
  // The scenario must actually exercise the cross-cut circuit machinery.
  EXPECT_GT(par.stats.probes_launched, 0u);
  EXPECT_GT(par.stats.messages_delivered, 0u);
  EXPECT_GT(par.stats.teardowns, 0u);
}

TEST(ParallelEngine, CacheCapacityOneCornerUnderFourShards) {
  // k=1 and a single cache entry per node: every new destination evicts
  // the previous circuit mid-traffic, the paper's tightest cache corner.
  const sim::SimConfig config =
      cut_config(sim::ClrpVariant::kFull, /*k=*/1, /*cache=*/1);
  const CutOutcome sequential = run_cross_cut(config, 0);
  const CutOutcome par = run_cross_cut(config, 4);
  EXPECT_EQ(sequential.digest, par.digest);
  EXPECT_GT(par.stats.cache_evictions, 0u);
}

// ----------------------------------------------------------- sweep seam

TEST(Sweep, EngineChoiceDoesNotChangeMergedResults) {
  harness::SweepPoint point;
  point.label = "engine-equivalence";
  point.config = sim::SimConfig::default_torus();
  point.config.protocol.protocol = sim::ProtocolKind::kClrp;
  point.pattern = "uniform";
  point.message_flits = 32;
  point.offered_load = 0.08;
  point.warmup = 200;
  point.measure = 800;
  point.drain_cap = 100'000;

  harness::SweepOptions seq_options;
  seq_options.base_seed = 5;
  seq_options.replicas = 3;
  seq_options.threads = 1;
  harness::SweepOptions par_options = seq_options;
  par_options.engine.kind = EngineKind::kPar;
  par_options.engine.shards = 4;

  const harness::SweepResult seq = harness::run_sweep({point}, seq_options);
  const harness::SweepResult par = harness::run_sweep({point}, par_options);
  // The deterministic part of the export (per-point merged statistics)
  // must match byte-for-byte; only the engine stamp may differ.
  EXPECT_EQ(harness::points_to_json(seq).dump(2),
            harness::points_to_json(par).dump(2));
  EXPECT_EQ(harness::to_json(seq).at("engine").dump(),
            seq_options.engine.to_json().dump());
  EXPECT_EQ(harness::to_json(par).at("engine").dump(),
            par_options.engine.to_json().dump());
}

}  // namespace
}  // namespace wavesim::engine
