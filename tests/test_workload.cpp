// Workload substrate tests: pattern properties, size distributions, the
// open-loop generator's offered load, and trace replay.
#include <gtest/gtest.h>

#include <map>

#include "workload/generator.hpp"
#include "workload/size_dist.hpp"
#include "workload/trace.hpp"
#include "workload/traffic.hpp"

namespace wavesim::load {
namespace {

using topo::KAryNCube;

class TrafficTest : public ::testing::Test {
 protected:
  TrafficTest() : topo_({4, 4}, true), rng_(123) {}
  KAryNCube topo_;
  sim::Rng rng_;
};

TEST_F(TrafficTest, NoPatternEverPicksSelf) {
  for (const char* name : {"uniform", "hotspot", "transpose", "bit-reversal",
                           "bit-complement", "tornado", "neighbor",
                           "working-set"}) {
    auto pattern = make_traffic(name, topo_, rng_.fork());
    for (NodeId src = 0; src < topo_.num_nodes(); ++src) {
      for (int i = 0; i < 50; ++i) {
        const NodeId d = pattern->pick(src, rng_);
        ASSERT_NE(d, src) << name;
        ASSERT_GE(d, 0) << name;
        ASSERT_LT(d, topo_.num_nodes()) << name;
      }
    }
  }
}

TEST_F(TrafficTest, UniformCoversAllDestinations) {
  UniformTraffic uniform(topo_);
  std::map<NodeId, int> seen;
  for (int i = 0; i < 3000; ++i) ++seen[uniform.pick(0, rng_)];
  EXPECT_EQ(seen.size(), 15u);  // every node except the source
}

TEST_F(TrafficTest, HotspotConcentratesTraffic) {
  HotspotTraffic hotspot(topo_, 5, 0.5);
  int to_hot = 0;
  const int trials = 4000;
  for (int i = 0; i < trials; ++i) to_hot += hotspot.pick(0, rng_) == 5;
  EXPECT_NEAR(static_cast<double>(to_hot) / trials, 0.5 + 0.5 / 15, 0.05);
}

TEST_F(TrafficTest, TransposeSwapsCoordinates) {
  TransposeTraffic transpose(topo_);
  EXPECT_EQ(transpose.pick(topo_.node_of({1, 3}), rng_), topo_.node_of({3, 1}));
  EXPECT_EQ(transpose.pick(topo_.node_of({0, 2}), rng_), topo_.node_of({2, 0}));
  // Diagonal sources fall back to some other node.
  EXPECT_NE(transpose.pick(topo_.node_of({2, 2}), rng_), topo_.node_of({2, 2}));
}

TEST_F(TrafficTest, BitReversalIsDeterministicInvolution) {
  BitReversalTraffic rev(topo_);
  // 16 nodes -> 4 bits; 0b0001 -> 0b1000.
  EXPECT_EQ(rev.pick(1, rng_), 8);
  EXPECT_EQ(rev.pick(8, rng_), 1);
  EXPECT_EQ(rev.pick(2, rng_), 4);
}

TEST_F(TrafficTest, BitComplementIsFixedPairing) {
  BitComplementTraffic comp(topo_);
  EXPECT_EQ(comp.pick(0, rng_), 15);
  EXPECT_EQ(comp.pick(5, rng_), 10);
}

TEST_F(TrafficTest, NeighborStaysOneHopAway) {
  NeighborTraffic neighbor(topo_);
  for (int i = 0; i < 200; ++i) {
    const NodeId src = static_cast<NodeId>(rng_.next_below(16));
    EXPECT_EQ(topo_.distance(src, neighbor.pick(src, rng_)), 1);
  }
}

TEST_F(TrafficTest, WorkingSetReusesDestinations) {
  WorkingSetTraffic ws(topo_, /*set_size=*/2, /*p_in_set=*/1.0, rng_.fork());
  std::map<NodeId, int> seen;
  for (int i = 0; i < 500; ++i) ++seen[ws.pick(3, rng_)];
  EXPECT_EQ(seen.size(), 2u);  // perfect locality never leaves the set
}

TEST_F(TrafficTest, WorkingSetZeroLocalityIsDiverse) {
  WorkingSetTraffic ws(topo_, 2, 0.0, rng_.fork());
  std::map<NodeId, int> seen;
  for (int i = 0; i < 2000; ++i) ++seen[ws.pick(3, rng_)];
  EXPECT_GT(seen.size(), 10u);
}

TEST_F(TrafficTest, FactoryRejectsUnknown) {
  EXPECT_THROW(make_traffic("nope", topo_, rng_.fork()),
               std::invalid_argument);
}

TEST(SizeDist, FixedAlwaysSame) {
  sim::Rng rng{1};
  FixedSize fixed(32);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fixed.sample(rng), 32);
  EXPECT_DOUBLE_EQ(fixed.mean(), 32.0);
  EXPECT_THROW(FixedSize(0), std::invalid_argument);
}

TEST(SizeDist, UniformWithinRange) {
  sim::Rng rng{2};
  UniformSize dist(8, 16);
  for (int i = 0; i < 1000; ++i) {
    const auto s = dist.sample(rng);
    EXPECT_GE(s, 8);
    EXPECT_LE(s, 16);
  }
  EXPECT_DOUBLE_EQ(dist.mean(), 12.0);
  EXPECT_THROW(UniformSize(5, 4), std::invalid_argument);
}

TEST(SizeDist, BimodalMixesShortAndLong) {
  sim::Rng rng{3};
  BimodalSize dist(8, 128, 0.25);
  int longs = 0;
  const int trials = 8000;
  for (int i = 0; i < trials; ++i) {
    const auto s = dist.sample(rng);
    EXPECT_TRUE(s == 8 || s == 128);
    longs += s == 128;
  }
  EXPECT_NEAR(static_cast<double>(longs) / trials, 0.25, 0.02);
  EXPECT_DOUBLE_EQ(dist.mean(), 0.25 * 128 + 0.75 * 8);
}

TEST(Generator, OfferedLoadMatchesRequest) {
  sim::SimConfig cfg;
  cfg.topology.radix = {4, 4};
  cfg.protocol.protocol = sim::ProtocolKind::kWormholeOnly;
  cfg.router.wave_switches = 0;
  core::Simulation sim(cfg);
  UniformTraffic pattern(sim.topology());
  FixedSize sizes(8);
  OpenLoopGenerator gen(sim, pattern, sizes, /*load=*/0.16, sim::Rng{7});
  const Cycle cycles = 4000;
  for (Cycle c = 0; c < cycles; ++c) gen.tick();
  // Expected messages = load/len * nodes * cycles = 0.02 * 16 * 4000 = 1280.
  EXPECT_NEAR(static_cast<double>(gen.offered_messages()), 1280.0, 130.0);
}

TEST(Generator, RejectsOverload) {
  sim::SimConfig cfg;
  cfg.topology.radix = {4, 4};
  cfg.protocol.protocol = sim::ProtocolKind::kWormholeOnly;
  cfg.router.wave_switches = 0;
  core::Simulation sim(cfg);
  UniformTraffic pattern(sim.topology());
  FixedSize sizes(4);
  EXPECT_THROW(OpenLoopGenerator(sim, pattern, sizes, 8.0, sim::Rng{1}),
               std::invalid_argument);
}

TEST(Generator, RunOpenLoopMeasuresOnlyWindow) {
  sim::SimConfig cfg;
  cfg.topology.radix = {4, 4};
  cfg.protocol.protocol = sim::ProtocolKind::kClrp;
  core::Simulation sim(cfg);
  UniformTraffic pattern(sim.topology());
  FixedSize sizes(16);
  const auto result = run_open_loop(sim, pattern, sizes, /*load=*/0.1,
                                    /*warmup=*/500, /*measure=*/1500,
                                    /*drain_cap=*/200000, /*seed=*/11);
  EXPECT_TRUE(result.drained);
  EXPECT_GT(result.offered_messages, 0u);
  EXPECT_EQ(result.stats.messages_offered, result.offered_messages);
  EXPECT_EQ(result.stats.messages_delivered, result.offered_messages);
  EXPECT_GT(result.stats.latency_mean, 0.0);
}

TEST(Saturation, RejectsBadBracket) {
  sim::SimConfig cfg = sim::SimConfig::wormhole_baseline();
  EXPECT_THROW(find_saturation(cfg, "uniform", 16, 0.5, 0.1),
               std::invalid_argument);
  EXPECT_THROW(find_saturation(cfg, "uniform", 16, 0.0, 0.5),
               std::invalid_argument);
}

TEST(Saturation, WaveSustainsMoreThanWormhole) {
  // Small network so the search stays quick; the wave configuration must
  // report a strictly higher saturation load than the wormhole baseline
  // under the same long-message uniform traffic.
  sim::SimConfig wormhole;
  wormhole.topology.radix = {4, 4};
  wormhole.protocol.protocol = sim::ProtocolKind::kWormholeOnly;
  wormhole.router.wave_switches = 0;
  const auto wh = find_saturation(wormhole, "uniform", 64, 0.05, 0.9, 0.05,
                                  600, 2500);
  sim::SimConfig wave = wormhole;
  wave.protocol.protocol = sim::ProtocolKind::kClrp;
  wave.router.wave_switches = 2;
  const auto wv = find_saturation(wave, "uniform", 64, 0.05, 0.9, 0.05,
                                  600, 2500);
  EXPECT_GT(wh.points_probed, 0);
  EXPECT_GT(wv.load, wh.load);
  EXPECT_GT(wh.latency_at_load, 0.0);
}

TEST(Trace, EventsSortedAndHorizon) {
  Trace trace;
  trace.send(50, 0, 1, 8);
  trace.send(10, 1, 2, 8);
  trace.establish(0, 0, 1);
  EXPECT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace.events().front().op, TraceOp::kEstablish);
  EXPECT_EQ(trace.horizon(), 50u);
  const Trace plain = trace.without_circuit_ops();
  EXPECT_EQ(plain.size(), 2u);
  for (const auto& e : plain.events()) EXPECT_EQ(e.op, TraceOp::kSend);
}

TEST(Trace, RejectsEmptySend) {
  Trace trace;
  EXPECT_THROW(trace.send(0, 0, 1, 0), std::invalid_argument);
}

TEST(Trace, StencilShapeAndReplay) {
  KAryNCube topo({4, 4}, true);
  const Trace trace = make_stencil_trace(topo, /*iterations=*/2,
                                         /*halo_flits=*/8,
                                         /*cycles_per_iteration=*/100,
                                         /*carp_circuits=*/true);
  // 16 nodes x 4 neighbors: 64 establishes + 2x64 sends + 64 releases.
  EXPECT_EQ(trace.size(), 64u + 128u + 64u);

  sim::SimConfig cfg;
  cfg.topology.radix = {4, 4};
  cfg.protocol.protocol = sim::ProtocolKind::kCarp;
  cfg.protocol.circuit_cache_entries = 4;
  core::Simulation sim(cfg);
  ASSERT_TRUE(replay(trace, sim));
  const auto stats = sim.stats();
  EXPECT_EQ(stats.messages_delivered, 128u);
  EXPECT_GT(stats.circuit_hit_count, 0u);
}

TEST(Trace, MasterWorkerReplayUnderClrp) {
  KAryNCube topo({4, 4}, true);
  const Trace trace =
      make_master_worker_trace(topo, /*master=*/5, /*rounds=*/2,
                               /*request_flits=*/4, /*chunk_flits=*/32,
                               /*cycles_per_round=*/400,
                               /*carp_circuits=*/true);
  sim::SimConfig cfg;
  cfg.topology.radix = {4, 4};
  cfg.protocol.protocol = sim::ProtocolKind::kClrp;
  core::Simulation sim(cfg);
  // CLRP ignores nothing -- establish ops are valid there too, but the
  // canonical comparison strips them.
  ASSERT_TRUE(replay(trace.without_circuit_ops(), sim, 2'000'000));
  EXPECT_EQ(sim.stats().messages_delivered, 2u * 15u * 2u);
}

}  // namespace
}  // namespace wavesim::load
