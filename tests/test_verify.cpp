// Tests for the verification harness itself (watchdog + delivery checks).
#include <gtest/gtest.h>

#include "core/simulation.hpp"
#include "verify/delivery.hpp"
#include "verify/watchdog.hpp"

namespace wavesim::verify {
namespace {

sim::SimConfig small() {
  sim::SimConfig cfg;
  cfg.topology.radix = {4, 4};
  cfg.topology.torus = true;
  cfg.protocol.protocol = sim::ProtocolKind::kClrp;
  return cfg;
}

TEST(Watchdog, RejectsBadPatience) {
  core::Simulation sim(small());
  EXPECT_THROW(ProgressWatchdog(sim.network(), 0), std::invalid_argument);
}

TEST(Watchdog, IdleOnQuietNetwork) {
  core::Simulation sim(small());
  ProgressWatchdog dog(sim.network(), 10);
  sim.run(100);
  EXPECT_EQ(dog.poll(), Verdict::kIdle);
}

TEST(Watchdog, ProgressingWhileTrafficFlows) {
  core::Simulation sim(small());
  ProgressWatchdog dog(sim.network(), 1000);
  sim.send(0, 9, 64);
  sim.run(20);
  EXPECT_EQ(dog.poll(), Verdict::kProgressing);
}

TEST(Watchdog, ReportsIdleAfterCompletion) {
  core::Simulation sim(small());
  ProgressWatchdog dog(sim.network(), 50);
  sim.send(0, 9, 16);
  ASSERT_TRUE(sim.run_until_delivered(50000));
  (void)dog.poll();  // absorb the progress
  sim.run(100);
  EXPECT_EQ(dog.poll(), Verdict::kIdle);
}

TEST(Watchdog, NeverStuckOnHealthyRun) {
  core::Simulation sim(small());
  ProgressWatchdog dog(sim.network(), 500);
  sim::Rng rng{5};
  for (int i = 0; i < 200; ++i) {
    const NodeId s = static_cast<NodeId>(rng.next_below(16));
    NodeId d = static_cast<NodeId>(rng.next_below(16));
    if (d == s) d = (d + 1) % 16;
    sim.send(s, d, 8);
    sim.run(25);
    ASSERT_NE(dog.poll(), Verdict::kStuck);
  }
}

TEST(Delivery, CleanRunPassesAllChecks) {
  core::Simulation sim(small());
  sim::Rng rng{11};
  for (int i = 0; i < 100; ++i) {
    const NodeId s = static_cast<NodeId>(rng.next_below(16));
    NodeId d = static_cast<NodeId>(rng.next_below(16));
    if (d == s) d = (d + 1) % 16;
    sim.send(s, d, static_cast<std::int32_t>(4 + rng.next_below(28)));
    sim.run(5);
  }
  ASSERT_TRUE(sim.run_until_delivered(500000));
  const auto result = check_delivery(sim.network());
  EXPECT_TRUE(result.ok()) << result.summary();
  EXPECT_EQ(result.summary(), "all delivery invariants hold");
}

TEST(Delivery, UndeliveredMessageIsAViolation) {
  core::Simulation sim(small());
  sim.send(0, 9, 16);
  // Don't run the simulation: the message is still pending.
  const auto result = check_delivery(sim.network());
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.summary().find("never delivered"), std::string::npos);
}

TEST(Delivery, ConservationHoldsMidRun) {
  core::Simulation sim(small());
  sim.send(0, 9, 64);
  for (int i = 0; i < 30; ++i) {
    sim.step();
    const auto result = check_conservation(sim.network());
    ASSERT_TRUE(result.ok()) << result.summary();
  }
}

TEST(VerdictNames, Distinct) {
  EXPECT_STREQ(to_string(Verdict::kProgressing), "progressing");
  EXPECT_STREQ(to_string(Verdict::kIdle), "idle");
  EXPECT_STREQ(to_string(Verdict::kWaiting), "waiting");
  EXPECT_STREQ(to_string(Verdict::kStuck), "stuck");
}

}  // namespace
}  // namespace wavesim::verify
