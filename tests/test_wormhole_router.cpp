// Unit tests for the wormhole router building blocks (arbiter, input VC,
// single-router pipeline behaviors).
#include "wormhole/router.hpp"

#include <gtest/gtest.h>

#include "routing/dor.hpp"

namespace wavesim::wh {
namespace {

using topo::KAryNCube;

TEST(RoundRobinArbiter, RejectsBadSize) {
  EXPECT_THROW(RoundRobinArbiter(0), std::invalid_argument);
}

TEST(RoundRobinArbiter, GrantsSingleRequester) {
  RoundRobinArbiter arb(4);
  std::vector<std::uint8_t> req{0, 0, 1, 0};
  EXPECT_EQ(arb.grant(req), 2);
  EXPECT_EQ(arb.grant(req), 2);
}

TEST(RoundRobinArbiter, RotatesAmongRequesters) {
  RoundRobinArbiter arb(3);
  std::vector<std::uint8_t> req{1, 1, 1};
  EXPECT_EQ(arb.grant(req), 0);
  EXPECT_EQ(arb.grant(req), 1);
  EXPECT_EQ(arb.grant(req), 2);
  EXPECT_EQ(arb.grant(req), 0);
}

TEST(RoundRobinArbiter, NoRequestersReturnsMinusOne) {
  RoundRobinArbiter arb(2);
  std::vector<std::uint8_t> req{0, 0};
  EXPECT_EQ(arb.grant(req), -1);
}

TEST(RoundRobinArbiter, WidthMismatchThrows) {
  RoundRobinArbiter arb(2);
  std::vector<std::uint8_t> req{1};
  EXPECT_THROW(arb.grant(req), std::invalid_argument);
}

TEST(RoundRobinArbiter, SkippedRequesterServedNext) {
  RoundRobinArbiter arb(3);
  std::vector<std::uint8_t> both{1, 0, 1};
  EXPECT_EQ(arb.grant(both), 0);
  EXPECT_EQ(arb.grant(both), 2);
  EXPECT_EQ(arb.grant(both), 0);
}

TEST(InputVc, PushPopFifo) {
  InputVc vc(4);
  vc.push(make_flit(1, 0, 5, 0, 3, 0));
  vc.push(make_flit(1, 0, 5, 1, 3, 0));
  EXPECT_EQ(vc.occupancy(), 2);
  EXPECT_EQ(vc.front().seq, 0);
  EXPECT_EQ(vc.pop().seq, 0);
  EXPECT_EQ(vc.pop().seq, 1);
  EXPECT_TRUE(vc.empty());
}

TEST(InputVc, OverflowThrows) {
  InputVc vc(1);
  vc.push(make_flit(1, 0, 5, 0, 2, 0));
  EXPECT_TRUE(vc.full());
  EXPECT_THROW(vc.push(make_flit(1, 0, 5, 1, 2, 0)), std::logic_error);
}

TEST(InputVc, PopEmptyThrows) {
  InputVc vc(2);
  EXPECT_THROW(vc.pop(), std::logic_error);
  EXPECT_THROW(vc.front(), std::logic_error);
}

TEST(InputVc, StateMachineTransitions) {
  InputVc vc(2);
  EXPECT_EQ(vc.state(), VcState::kIdle);
  vc.start_routing({route::RouteCandidate{0, 0, true}});
  EXPECT_EQ(vc.state(), VcState::kRouting);
  EXPECT_EQ(vc.candidates().size(), 1u);
  vc.activate(0, 1);
  EXPECT_EQ(vc.state(), VcState::kActive);
  EXPECT_EQ(vc.out_port(), 0);
  EXPECT_EQ(vc.out_vc(), 1);
  vc.release();
  EXPECT_EQ(vc.state(), VcState::kIdle);
}

TEST(InputVc, IllegalTransitionsThrow) {
  InputVc vc(2);
  EXPECT_THROW(vc.activate(0, 0), std::logic_error);
  EXPECT_THROW(vc.release(), std::logic_error);
  vc.start_routing({});
  EXPECT_THROW(vc.start_routing({}), std::logic_error);
}

class SingleRouter : public ::testing::Test {
 protected:
  SingleRouter()
      : topo_({4, 4}, false), dor_(topo_, 2),
        router_(topo_, dor_, topo_.node_of({1, 1}),
                RouterParams{.num_vcs = 2, .vc_buffer_depth = 4}),
        gate_(topo_) {}

  void cycle() {
    gate_.reset();
    moves_ = router_.switch_allocate(gate_);
    router_.vc_allocate();
    router_.route_compute();
  }

  topo::KAryNCube topo_;
  route::DimensionOrderRouting dor_;
  Router router_;
  ExclusiveLinkGate gate_;
  std::vector<SwitchMove> moves_;
};

TEST_F(SingleRouter, HeadFlitTraversesAfterRcVaSa) {
  const NodeId dest = topo_.node_of({3, 1});
  router_.receive(router_.local_port(), 0, make_flit(7, 0, dest, 0, 1, 0));
  cycle();  // RC
  EXPECT_TRUE(moves_.empty());
  cycle();  // VA
  EXPECT_TRUE(moves_.empty());
  cycle();  // SA: flit crosses
  ASSERT_EQ(moves_.size(), 1u);
  EXPECT_EQ(moves_[0].out_port, KAryNCube::port_of(0, true));
  EXPECT_FALSE(moves_[0].eject);
  EXPECT_TRUE(moves_[0].flit.tail);
}

TEST_F(SingleRouter, LocalDestinationEjects) {
  router_.receive(0, 0, make_flit(9, 0, router_.node(), 0, 1, 0));
  cycle();
  cycle();
  cycle();
  ASSERT_EQ(moves_.size(), 1u);
  EXPECT_TRUE(moves_[0].eject);
}

TEST_F(SingleRouter, BodyFlitsFollowHeadWithoutReallocation) {
  const NodeId dest = topo_.node_of({3, 1});
  for (std::int32_t s = 0; s < 3; ++s) {
    router_.receive(router_.local_port(), 0, make_flit(7, 0, dest, s, 3, 0));
  }
  cycle();
  cycle();
  int sent = 0;
  for (int i = 0; i < 3; ++i) {
    cycle();
    sent += static_cast<int>(moves_.size());
  }
  EXPECT_EQ(sent, 3);
  EXPECT_EQ(router_.input_vc(router_.local_port(), 0).state(), VcState::kIdle);
}

TEST_F(SingleRouter, CreditsBlockTransmission) {
  const NodeId dest = topo_.node_of({3, 1});
  const PortId out = KAryNCube::port_of(0, true);
  // 6-flit message into a 4-credit output: only 4 flits may leave until
  // credits come back.
  std::int32_t pushed = 0;
  auto feed = [&] {
    while (pushed < 6 && router_.can_accept(router_.local_port(), 0)) {
      router_.receive(router_.local_port(), 0,
                      make_flit(7, 0, dest, pushed, 6, 0));
      ++pushed;
    }
  };
  feed();
  cycle();  // RC
  cycle();  // VA
  int sent = 0;
  for (int i = 0; i < 10; ++i) {
    feed();
    cycle();
    sent += static_cast<int>(moves_.size());
  }
  EXPECT_EQ(sent, 4);
  EXPECT_EQ(pushed, 6);
  EXPECT_EQ(router_.credits(out, 0), 0);
  router_.credit_return(out, 0);
  router_.credit_return(out, 0);
  for (int i = 0; i < 4; ++i) {
    cycle();
    sent += static_cast<int>(moves_.size());
  }
  EXPECT_EQ(sent, 6);
  EXPECT_EQ(router_.input_vc(router_.local_port(), 0).state(), VcState::kIdle);
}

TEST_F(SingleRouter, TwoMessagesShareLinkViaDistinctVcs) {
  const NodeId dest = topo_.node_of({3, 1});
  router_.receive(router_.local_port(), 0, make_flit(1, 0, dest, 0, 2, 0));
  router_.receive(router_.local_port(), 0, make_flit(1, 0, dest, 1, 2, 0));
  router_.receive(router_.local_port(), 1, make_flit(2, 0, dest, 0, 2, 0));
  router_.receive(router_.local_port(), 1, make_flit(2, 0, dest, 1, 2, 0));
  cycle();
  cycle();
  // Both messages routed to the same output port; one flit per cycle total
  // (single physical link), VCs interleave.
  int total = 0;
  for (int i = 0; i < 6 && total < 4; ++i) {
    cycle();
    EXPECT_LE(moves_.size(), 1u);
    total += static_cast<int>(moves_.size());
  }
  EXPECT_EQ(total, 4);
}

TEST_F(SingleRouter, GateDeniesLinkStallsFlit) {
  const NodeId dest = topo_.node_of({3, 1});
  router_.receive(router_.local_port(), 0, make_flit(7, 0, dest, 0, 1, 0));
  cycle();
  cycle();
  // Claim the link before the router's SA runs.
  gate_.reset();
  ASSERT_TRUE(gate_.try_acquire(router_.node(), KAryNCube::port_of(0, true)));
  moves_ = router_.switch_allocate(gate_);
  EXPECT_TRUE(moves_.empty());
  // Next cycle the link is free again.
  cycle();
  EXPECT_EQ(moves_.size(), 1u);
}

TEST_F(SingleRouter, CreditOverflowThrows) {
  EXPECT_THROW(router_.credit_return(0, 0), std::logic_error);
}

TEST_F(SingleRouter, BufferedFlitCount) {
  EXPECT_EQ(router_.buffered_flits(), 0);
  router_.receive(0, 0, make_flit(1, 0, 5, 0, 2, 0));
  router_.receive(0, 1, make_flit(2, 0, 5, 0, 2, 0));
  EXPECT_EQ(router_.buffered_flits(), 2);
}

}  // namespace
}  // namespace wavesim::wh
