// Software messaging-layer model and circuit end-point buffers (paper
// sections 1-2): send overhead delays wormhole messages, the first message
// on a circuit pays buffer allocation, oversize messages pay a
// re-allocation penalty -- unless CARP sized the buffers for the set.
#include <gtest/gtest.h>

#include "core/simulation.hpp"

namespace wavesim::core {
namespace {

sim::SimConfig base(sim::ProtocolKind protocol) {
  sim::SimConfig cfg = sim::SimConfig::default_torus();
  cfg.protocol.protocol = protocol;
  if (protocol == sim::ProtocolKind::kWormholeOnly) {
    cfg.router.wave_switches = 0;
  }
  return cfg;
}

double one_message_latency(const sim::SimConfig& cfg, std::int32_t length) {
  Simulation sim(cfg);
  sim.send(0, 27, length);
  EXPECT_TRUE(sim.run_until_delivered(100000));
  return sim.network().messages().at(0).latency();
}

TEST(SoftwareModel, ValidationRejectsNegatives) {
  sim::SimConfig cfg = base(sim::ProtocolKind::kClrp);
  cfg.software.wormhole_send_overhead = -1;
  EXPECT_THROW(Simulation{cfg}, std::invalid_argument);
  cfg = base(sim::ProtocolKind::kClrp);
  cfg.software.clrp_initial_buffer_flits = 0;
  EXPECT_THROW(Simulation{cfg}, std::invalid_argument);
}

TEST(SoftwareModel, WormholeOverheadAddsToLatency) {
  sim::SimConfig cfg = base(sim::ProtocolKind::kWormholeOnly);
  const double bare = one_message_latency(cfg, 32);
  cfg.software.wormhole_send_overhead = 200;
  const double loaded = one_message_latency(cfg, 32);
  EXPECT_NEAR(loaded, bare + 200.0, 2.0);
}

TEST(SoftwareModel, CircuitFirstVsReuseOverhead) {
  sim::SimConfig cfg = base(sim::ProtocolKind::kClrp);
  cfg.software.circuit_first_send_overhead = 150;
  cfg.software.circuit_reuse_send_overhead = 10;
  Simulation sim(cfg);
  sim.send(0, 27, 32);
  ASSERT_TRUE(sim.run_until_delivered(100000));
  sim.send(0, 27, 32);
  ASSERT_TRUE(sim.run_until_delivered(100000));
  const auto& log = sim.network().messages();
  // First message pays setup + 150 cycles of buffer allocation; the
  // second only 10 cycles of reuse overhead.
  EXPECT_GT(log.at(0).latency(), 150.0);
  EXPECT_LT(log.at(1).latency(), 80.0);
}

TEST(SoftwareModel, ClrpPaysReallocForOversizeMessages) {
  sim::SimConfig cfg = base(sim::ProtocolKind::kClrp);
  cfg.software.clrp_initial_buffer_flits = 64;
  cfg.software.buffer_realloc_penalty = 300;
  Simulation sim(cfg);
  sim.send(0, 27, 32);  // fits: no penalty
  ASSERT_TRUE(sim.run_until_delivered(100000));
  const double small = sim.network().messages().at(0).latency();
  sim.send(0, 27, 128);  // exceeds 64: re-allocation
  ASSERT_TRUE(sim.run_until_delivered(100000));
  const double big = sim.network().messages().at(1).latency();
  EXPECT_GT(big, small + 290.0);  // dominated by the 300-cycle penalty
  EXPECT_EQ(sim.stats().buffer_reallocs, 1u);
  // The buffer grew: an equal-size follow-up pays no penalty.
  sim.send(0, 27, 128);
  ASSERT_TRUE(sim.run_until_delivered(100000));
  EXPECT_EQ(sim.stats().buffer_reallocs, 1u);
  EXPECT_LT(sim.network().messages().at(2).latency(), big - 250.0);
}

TEST(SoftwareModel, CarpSizedBuffersAvoidRealloc) {
  sim::SimConfig cfg = base(sim::ProtocolKind::kCarp);
  cfg.software.clrp_initial_buffer_flits = 16;
  cfg.software.buffer_realloc_penalty = 300;
  Simulation sim(cfg);
  // The "compiler" declares the longest message of the set: 256 flits.
  ASSERT_TRUE(sim.establish_circuit(0, 27, /*max_message_flits=*/256));
  sim.run(300);
  sim.send(0, 27, 256);
  ASSERT_TRUE(sim.run_until_delivered(100000));
  EXPECT_EQ(sim.stats().buffer_reallocs, 0u);
}

TEST(SoftwareModel, CarpUnsizedFallsBackToSpeculative) {
  sim::SimConfig cfg = base(sim::ProtocolKind::kCarp);
  cfg.software.clrp_initial_buffer_flits = 16;
  cfg.software.buffer_realloc_penalty = 300;
  Simulation sim(cfg);
  ASSERT_TRUE(sim.establish_circuit(0, 27));  // no size hint
  sim.run(300);
  sim.send(0, 27, 256);
  ASSERT_TRUE(sim.run_until_delivered(100000));
  EXPECT_EQ(sim.stats().buffer_reallocs, 1u);
}

TEST(SoftwareModel, OverheadsDefaultToZero) {
  // The model must be inert unless configured: latency identical with a
  // default SoftwareConfig and an explicit all-zero one.
  sim::SimConfig cfg = base(sim::ProtocolKind::kClrp);
  const double a = one_message_latency(cfg, 64);
  cfg.software = sim::SoftwareConfig{};
  const double b = one_message_latency(cfg, 64);
  EXPECT_DOUBLE_EQ(a, b);
}

}  // namespace
}  // namespace wavesim::core
