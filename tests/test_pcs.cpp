// Unit tests for the PCS substrate: status registers (Fig. 3), history
// store, and the MB-m decision function.
#include <gtest/gtest.h>

#include "pcs/history.hpp"
#include "sim/rng.hpp"
#include "pcs/mbm.hpp"
#include "pcs/registers.hpp"

namespace wavesim::pcs {
namespace {

using topo::KAryNCube;

// ---------------------------------------------------------------- registers

TEST(SwitchRegisters, FreshChannelsAreFree) {
  SwitchRegisters regs(4);
  for (PortId p = 0; p < 4; ++p) {
    EXPECT_EQ(regs.status(p), ChannelStatus::kFree);
    EXPECT_FALSE(regs.ack_returned(p));
    EXPECT_EQ(regs.reverse_map(p), kInvalidPort);
  }
  EXPECT_EQ(regs.count(ChannelStatus::kFree), 4);
}

TEST(SwitchRegisters, ReserveCommitAckReleaseLifecycle) {
  SwitchRegisters regs(4);
  regs.reserve(2, /*probe=*/7, /*in_port=*/0);
  EXPECT_EQ(regs.status(2), ChannelStatus::kReservedByProbe);
  EXPECT_EQ(regs.reserving_probe(2), 7);
  EXPECT_EQ(regs.reverse_map(2), 0);
  EXPECT_EQ(regs.direct_map(0), 2);

  regs.commit(2, /*circuit=*/42);
  EXPECT_EQ(regs.status(2), ChannelStatus::kBusyCircuit);
  EXPECT_EQ(regs.owning_circuit(2), 42);
  EXPECT_FALSE(regs.ack_returned(2));
  EXPECT_EQ(regs.direct_map(0), 2);  // mapping survives commit

  regs.mark_ack_returned(2);
  EXPECT_TRUE(regs.ack_returned(2));

  regs.release_circuit(2);
  EXPECT_EQ(regs.status(2), ChannelStatus::kFree);
  EXPECT_EQ(regs.direct_map(0), kInvalidPort);
}

TEST(SwitchRegisters, BacktrackReleasesReservation) {
  SwitchRegisters regs(4);
  regs.reserve(1, 9, kLocalEndpoint);
  regs.release_reservation(1);
  EXPECT_EQ(regs.status(1), ChannelStatus::kFree);
  EXPECT_EQ(regs.direct_map(kLocalEndpoint), kInvalidPort);
}

TEST(SwitchRegisters, LocalEndpointMapping) {
  SwitchRegisters regs(4);
  regs.reserve(3, 1, kLocalEndpoint);  // circuit starts at this node
  EXPECT_EQ(regs.direct_map(kLocalEndpoint), 3);
  EXPECT_EQ(regs.reverse_map(3), kLocalEndpoint);
}

TEST(SwitchRegisters, IllegalTransitionsThrow) {
  SwitchRegisters regs(2);
  EXPECT_THROW(regs.release_reservation(0), std::logic_error);
  EXPECT_THROW(regs.commit(0, 1), std::logic_error);
  EXPECT_THROW(regs.mark_ack_returned(0), std::logic_error);
  EXPECT_THROW(regs.release_circuit(0), std::logic_error);
  regs.reserve(0, 1, 0);
  EXPECT_THROW(regs.reserve(0, 2, 1), std::logic_error);
  EXPECT_THROW(regs.mark_ack_returned(0), std::logic_error);
  regs.commit(0, 5);
  EXPECT_THROW(regs.release_reservation(0), std::logic_error);
}

TEST(SwitchRegisters, FaultyChannelsStayFaulty) {
  SwitchRegisters regs(2);
  regs.mark_faulty(1);
  EXPECT_EQ(regs.status(1), ChannelStatus::kFaulty);
  EXPECT_THROW(regs.reserve(1, 1, 0), std::logic_error);
  EXPECT_THROW(regs.mark_faulty(1), std::logic_error);
}

TEST(SwitchRegisters, TwoCircuitsCrossingOneNodeKeepDistinctMappings) {
  // Two circuits enter a node through different input ports and leave
  // through different output ports; both mapping directions must stay
  // separable (the teardown and ack walkers rely on this).
  SwitchRegisters regs(4);
  regs.reserve(/*out=*/0, /*probe=*/1, /*in=*/3);
  regs.reserve(/*out=*/2, /*probe=*/2, /*in=*/1);
  regs.commit(0, /*circuit=*/10);
  regs.commit(2, /*circuit=*/20);
  EXPECT_EQ(regs.direct_map(3), 0);
  EXPECT_EQ(regs.direct_map(1), 2);
  EXPECT_EQ(regs.reverse_map(0), 3);
  EXPECT_EQ(regs.reverse_map(2), 1);
  EXPECT_EQ(regs.owning_circuit(0), 10);
  EXPECT_EQ(regs.owning_circuit(2), 20);
  regs.release_circuit(0);
  EXPECT_EQ(regs.direct_map(3), kInvalidPort);
  EXPECT_EQ(regs.direct_map(1), 2);  // the other circuit is untouched
}

TEST(RegisterFile, IndexesByNodeAndSwitch) {
  KAryNCube torus({4, 4}, true);
  RegisterFile file(torus, 2);
  EXPECT_EQ(file.num_switches(), 2);
  file.at(3, 1).reserve(0, 1, kLocalEndpoint);
  EXPECT_EQ(file.at(3, 1).status(0), ChannelStatus::kReservedByProbe);
  EXPECT_EQ(file.at(3, 0).status(0), ChannelStatus::kFree);
  EXPECT_EQ(file.at(4, 1).status(0), ChannelStatus::kFree);
}

// ------------------------------------------------------------------ history

TEST(HistoryStore, MarkAndQuery) {
  HistoryStore h;
  EXPECT_FALSE(h.searched(1, 5, 2));
  h.mark(1, 5, 2);
  EXPECT_TRUE(h.searched(1, 5, 2));
  EXPECT_FALSE(h.searched(1, 5, 3));
  EXPECT_FALSE(h.searched(1, 6, 2));
  EXPECT_FALSE(h.searched(2, 5, 2));  // other probe unaffected
  EXPECT_EQ(h.mask(1, 5), 0b100u);
}

TEST(HistoryStore, EntriesCountAcrossNodes) {
  HistoryStore h;
  h.mark(1, 0, 0);
  h.mark(1, 0, 1);
  h.mark(1, 7, 3);
  EXPECT_EQ(h.entries(1), 3);
  h.mark(1, 0, 0);  // idempotent
  EXPECT_EQ(h.entries(1), 3);
}

TEST(HistoryStore, EraseDropsProbe) {
  HistoryStore h;
  h.mark(1, 0, 0);
  h.mark(2, 0, 0);
  h.erase(1);
  EXPECT_FALSE(h.searched(1, 0, 0));
  EXPECT_TRUE(h.searched(2, 0, 0));
  EXPECT_EQ(h.probes_tracked(), 1u);
}

TEST(HistoryStore, PortOutOfMaskRangeThrows) {
  HistoryStore h;
  EXPECT_THROW(h.mark(1, 0, 32), std::invalid_argument);
  EXPECT_THROW(h.mark(1, 0, -1), std::invalid_argument);
}

// -------------------------------------------------------------------- MB-m

class MbmTest : public ::testing::Test {
 protected:
  MbmTest() : torus_({8, 8}, true) {}

  std::vector<PortView> all(PortView v) const {
    return std::vector<PortView>(torus_.num_ports(), v);
  }

  KAryNCube torus_;
};

TEST_F(MbmTest, OrderedMinimalPortsPreferLongestOffset) {
  // From (0,0) to (1,3): dim 1 has the larger offset, so its port first.
  const auto ports = ordered_minimal_ports(torus_, torus_.node_of({0, 0}),
                                           torus_.node_of({1, 3}));
  ASSERT_EQ(ports.size(), 2u);
  EXPECT_EQ(ports[0], KAryNCube::port_of(1, true));
  EXPECT_EQ(ports[1], KAryNCube::port_of(0, true));
}

TEST_F(MbmTest, DeliversAtDestination) {
  const auto d = decide(torus_, 5, 5, all(PortView::kAvailable), 0, 0, 2, false);
  EXPECT_EQ(d.action, MbmAction::kDeliver);
}

TEST_F(MbmTest, AdvancesMinimalWhenFree) {
  const NodeId src = torus_.node_of({0, 0});
  const NodeId dst = torus_.node_of({3, 0});
  const auto d = decide(torus_, src, dst, all(PortView::kAvailable),
                        kInvalidPort, 0, 2, false);
  EXPECT_EQ(d.action, MbmAction::kAdvance);
  EXPECT_EQ(d.port, KAryNCube::port_of(0, true));
  EXPECT_FALSE(d.misroute);
}

TEST_F(MbmTest, MisroutesWhenMinimalBlocked) {
  const NodeId src = torus_.node_of({0, 0});
  const NodeId dst = torus_.node_of({3, 0});
  auto view = all(PortView::kAvailable);
  view[KAryNCube::port_of(0, true)] = PortView::kBusyPending;
  const auto d = decide(torus_, src, dst, view, kInvalidPort, 0, 2, false);
  EXPECT_EQ(d.action, MbmAction::kAdvance);
  EXPECT_TRUE(d.misroute);
  EXPECT_NE(d.port, KAryNCube::port_of(0, true));
}

TEST_F(MbmTest, BacktracksWhenBudgetExhausted) {
  const NodeId src = torus_.node_of({0, 0});
  const NodeId dst = torus_.node_of({3, 0});
  auto view = all(PortView::kAvailable);
  view[KAryNCube::port_of(0, true)] = PortView::kBusyPending;
  const auto d = decide(torus_, src, dst, view, kInvalidPort,
                        /*misroutes=*/2, /*max=*/2, false);
  EXPECT_EQ(d.action, MbmAction::kBacktrack);
}

TEST_F(MbmTest, NeverMisroutesBackWhereItCameFrom) {
  const NodeId node = torus_.node_of({2, 0});
  const NodeId dst = torus_.node_of({5, 0});
  // The probe arrived from (1,0): it entered through input port (0,-), and
  // the output link back toward (1,0) is that same port index.
  const PortId arrival = KAryNCube::port_of(0, false);
  auto view = all(PortView::kUnusable);
  view[arrival] = PortView::kAvailable;  // only way "forward" is backward
  const auto d = decide(torus_, node, dst, view, arrival, 0, 2, false);
  EXPECT_EQ(d.action, MbmAction::kBacktrack);
}

TEST_F(MbmTest, ForceWaitsOnEstablishedCircuit) {
  const NodeId src = torus_.node_of({0, 0});
  const NodeId dst = torus_.node_of({3, 0});
  auto view = all(PortView::kBusyPending);
  view[KAryNCube::port_of(0, true)] = PortView::kBusyEstablished;
  const auto d = decide(torus_, src, dst, view, kInvalidPort, 0, 2, true);
  EXPECT_EQ(d.action, MbmAction::kWaitForce);
  EXPECT_EQ(d.port, KAryNCube::port_of(0, true));
  EXPECT_FALSE(d.misroute);
}

TEST_F(MbmTest, ForceNeverWaitsOnPendingCircuits) {
  // Theorem 1: when every requested channel belongs to a circuit still
  // being established, the probe backtracks even with Force set.
  const NodeId src = torus_.node_of({0, 0});
  const NodeId dst = torus_.node_of({3, 3});
  const auto d = decide(torus_, src, dst, all(PortView::kBusyPending),
                        kInvalidPort, 0, 2, true);
  EXPECT_EQ(d.action, MbmAction::kBacktrack);
}

TEST_F(MbmTest, ForcePrefersFreeChannelOverTeardown) {
  const NodeId src = torus_.node_of({0, 0});
  const NodeId dst = torus_.node_of({3, 3});
  auto view = all(PortView::kBusyEstablished);
  view[KAryNCube::port_of(1, true)] = PortView::kAvailable;
  const auto d = decide(torus_, src, dst, view, kInvalidPort, 0, 2, true);
  EXPECT_EQ(d.action, MbmAction::kAdvance);
  EXPECT_EQ(d.port, KAryNCube::port_of(1, true));
}

TEST_F(MbmTest, ForceNonMinimalWaitConsumesMisroute) {
  const NodeId src = torus_.node_of({0, 0});
  const NodeId dst = torus_.node_of({3, 0});
  auto view = all(PortView::kBusyPending);
  view[KAryNCube::port_of(1, true)] = PortView::kBusyEstablished;  // non-minimal
  const auto d = decide(torus_, src, dst, view, kInvalidPort, 0, 2, true);
  EXPECT_EQ(d.action, MbmAction::kWaitForce);
  EXPECT_EQ(d.port, KAryNCube::port_of(1, true));
  EXPECT_TRUE(d.misroute);
}

TEST_F(MbmTest, ForceNonMinimalWaitRespectsBudget) {
  const NodeId src = torus_.node_of({0, 0});
  const NodeId dst = torus_.node_of({3, 0});
  auto view = all(PortView::kBusyPending);
  view[KAryNCube::port_of(1, true)] = PortView::kBusyEstablished;
  const auto d = decide(torus_, src, dst, view, kInvalidPort,
                        /*misroutes=*/2, /*max=*/2, true);
  EXPECT_EQ(d.action, MbmAction::kBacktrack);
}

TEST_F(MbmTest, UnusablePortsAreSkipped) {
  const NodeId src = torus_.node_of({0, 0});
  const NodeId dst = torus_.node_of({2, 2});
  auto view = all(PortView::kUnusable);
  view[KAryNCube::port_of(1, true)] = PortView::kAvailable;
  const auto d = decide(torus_, src, dst, view, kInvalidPort, 0, 2, false);
  EXPECT_EQ(d.action, MbmAction::kAdvance);
  EXPECT_EQ(d.port, KAryNCube::port_of(1, true));
}

TEST_F(MbmTest, ZeroMisrouteBudgetIsProfitableOnly) {
  const NodeId src = torus_.node_of({0, 0});
  const NodeId dst = torus_.node_of({3, 0});
  auto view = all(PortView::kAvailable);
  view[KAryNCube::port_of(0, true)] = PortView::kBusyPending;
  const auto d = decide(torus_, src, dst, view, kInvalidPort, 0, 0, false);
  EXPECT_EQ(d.action, MbmAction::kBacktrack);
}

TEST_F(MbmTest, ViewSizeMismatchThrows) {
  EXPECT_THROW(decide(torus_, 0, 1, {PortView::kAvailable}, kInvalidPort, 0,
                      2, false),
               std::invalid_argument);
}

TEST_F(MbmTest, PropertyFuzzOverRandomViews) {
  // Invariants of decide() over randomized channel views:
  //  P1 an advance/wait never targets an unusable port;
  //  P2 a non-force probe never waits;
  //  P3 a wait always targets an established-busy channel;
  //  P4 an advance always targets an available channel;
  //  P5 a non-misroute advance/wait is minimal;
  //  P6 with misroutes == max, every advance is minimal;
  //  P7 an advance never goes straight back through the arrival port.
  wavesim::sim::Rng rng{2024};
  const auto statuses = {PortView::kAvailable, PortView::kBusyEstablished,
                         PortView::kBusyPending, PortView::kUnusable};
  for (int trial = 0; trial < 5000; ++trial) {
    const NodeId node = static_cast<NodeId>(rng.next_below(64));
    NodeId dest = static_cast<NodeId>(rng.next_below(64));
    if (dest == node) dest = (dest + 1) % 64;
    std::vector<PortView> view;
    for (PortId p = 0; p < torus_.num_ports(); ++p) {
      view.push_back(*(statuses.begin() + rng.next_below(4)));
    }
    const PortId arrival =
        rng.chance(0.3) ? kInvalidPort
                        : static_cast<PortId>(rng.next_below(torus_.num_ports()));
    const auto m = static_cast<std::int32_t>(rng.next_below(4));
    const auto used = static_cast<std::int32_t>(rng.next_below(m + 1));
    const bool force = rng.chance(0.5);
    const auto d = decide(torus_, node, dest, view, arrival, used, m, force);
    const auto minimal = ordered_minimal_ports(torus_, node, dest);
    const bool is_minimal =
        d.port != kInvalidPort &&
        std::find(minimal.begin(), minimal.end(), d.port) != minimal.end();
    switch (d.action) {
      case MbmAction::kAdvance:
        ASSERT_EQ(view[d.port], PortView::kAvailable);  // P1, P4
        if (!d.misroute) {
          ASSERT_TRUE(is_minimal);  // P5
        }
        if (used >= m) {
          ASSERT_TRUE(is_minimal);  // P6
        }
        if (!is_minimal) {
          ASSERT_NE(d.port, arrival);  // P7
        }
        break;
      case MbmAction::kWaitForce:
        ASSERT_TRUE(force);                                   // P2
        ASSERT_EQ(view[d.port], PortView::kBusyEstablished);  // P1, P3
        if (!d.misroute) {
          ASSERT_TRUE(is_minimal);  // P5
        }
        break;
      case MbmAction::kBacktrack:
      case MbmAction::kDeliver:
        break;
    }
  }
}

TEST(ControlKindNames, AllDistinct) {
  EXPECT_STREQ(to_string(ControlKind::kProbe), "probe");
  EXPECT_STREQ(to_string(ControlKind::kAck), "ack");
  EXPECT_STREQ(to_string(ControlKind::kTeardown), "teardown");
  EXPECT_STREQ(to_string(ControlKind::kReleaseRequest), "release-request");
}

}  // namespace
}  // namespace wavesim::pcs
