# Run CMD (a ;-separated command list) and assert its exit code equals
# EXPECTED. Used to pin CLI contracts -- e.g. every bench driver must
# reject `--shards N` without `--engine par` with exit code 2, and
# wavecheck must exit 1 on a violated theorem premise -- without linking a
# test binary per driver.
#
#   cmake -DCMD=<exe|arg|arg...> -DEXPECTED=<code> [-DMATCH=<regex>]
#         -P check_exit.cmake
#
# CMD uses "|" as the argument separator: semicolons would need two layers
# of escaping to survive the add_test -> ctest -> cmake -P round trip.
# MATCH, when set, additionally requires the combined stdout+stderr to
# match the regex (e.g. a violation row id the run must have printed).
if(NOT DEFINED CMD OR NOT DEFINED EXPECTED)
  message(FATAL_ERROR "check_exit.cmake needs -DCMD=... and -DEXPECTED=...")
endif()
string(REPLACE "|" ";" CMD "${CMD}")
execute_process(COMMAND ${CMD}
  RESULT_VARIABLE result
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT result EQUAL "${EXPECTED}")
  message(FATAL_ERROR "command [${CMD}] exited ${result}, expected ${EXPECTED}\n"
    "stdout:\n${out}\nstderr:\n${err}")
endif()
if(DEFINED MATCH AND NOT "${out}${err}" MATCHES "${MATCH}")
  message(FATAL_ERROR "command [${CMD}] output does not match [${MATCH}]\n"
    "stdout:\n${out}\nstderr:\n${err}")
endif()
