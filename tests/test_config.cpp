#include "sim/config.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace wavesim::sim {
namespace {

TEST(SimConfig, PresetsAreValid) {
  EXPECT_NO_THROW(SimConfig::small_mesh().validate());
  EXPECT_NO_THROW(SimConfig::default_torus().validate());
  EXPECT_NO_THROW(SimConfig::wormhole_baseline().validate());
}

TEST(SimConfig, NumNodes) {
  SimConfig cfg;
  cfg.topology.radix = {4, 8};
  EXPECT_EQ(cfg.num_nodes(), 32);
  cfg.topology.radix = {2, 2, 2, 2};
  EXPECT_EQ(cfg.num_nodes(), 16);
}

TEST(SimConfig, RejectsEmptyTopology) {
  SimConfig cfg = SimConfig::default_torus();
  cfg.topology.radix = {};
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(SimConfig, RejectsRadixOne) {
  SimConfig cfg = SimConfig::default_torus();
  cfg.topology.radix = {8, 1};
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(SimConfig, TorusDorNeedsTwoVcs) {
  SimConfig cfg = SimConfig::default_torus();
  cfg.router.wormhole_vcs = 1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.topology.torus = false;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(SimConfig, DuatoNeedsEscapePlusAdaptive) {
  SimConfig cfg = SimConfig::default_torus();
  cfg.router.routing = RoutingKind::kDuatoAdaptive;
  cfg.router.wormhole_vcs = 2;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);  // torus needs 3
  cfg.router.wormhole_vcs = 3;
  EXPECT_NO_THROW(cfg.validate());
  cfg.topology.torus = false;
  cfg.router.wormhole_vcs = 2;
  EXPECT_NO_THROW(cfg.validate());
  cfg.router.wormhole_vcs = 1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(SimConfig, CircuitProtocolNeedsWaveSwitches) {
  SimConfig cfg = SimConfig::default_torus();
  cfg.router.wave_switches = 0;
  cfg.protocol.protocol = ProtocolKind::kClrp;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.protocol.protocol = ProtocolKind::kWormholeOnly;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(SimConfig, RejectsBadScalars) {
  auto check = [](auto&& mutate) {
    SimConfig cfg = SimConfig::default_torus();
    mutate(cfg);
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
  };
  check([](SimConfig& c) { c.router.vc_buffer_depth = 0; });
  check([](SimConfig& c) { c.router.wave_switches = -1; });
  check([](SimConfig& c) { c.router.wave_clock_factor = 0.0; });
  check([](SimConfig& c) { c.router.circuit_window = 0; });
  check([](SimConfig& c) { c.router.wormhole_pipeline_latency = 0; });
  check([](SimConfig& c) { c.protocol.max_misroutes = -1; });
  check([](SimConfig& c) { c.protocol.circuit_cache_entries = 0; });
  check([](SimConfig& c) { c.protocol.min_circuit_message_flits = -1; });
  check([](SimConfig& c) { c.faults.link_fault_rate = 1.0; });
  check([](SimConfig& c) { c.faults.link_fault_rate = -0.1; });
}

TEST(SimConfig, CircuitBandwidthDependsOnSplit) {
  SimConfig cfg = SimConfig::default_torus();
  cfg.router.wave_clock_factor = 4.0;
  cfg.router.wave_switches = 2;
  cfg.router.split_channels = false;
  EXPECT_DOUBLE_EQ(cfg.circuit_flits_per_cycle(), 4.0);
  cfg.router.split_channels = true;
  EXPECT_DOUBLE_EQ(cfg.circuit_flits_per_cycle(), 2.0);
}

TEST(SimConfig, EnumToString) {
  EXPECT_STREQ(to_string(RoutingKind::kDimensionOrder), "dor");
  EXPECT_STREQ(to_string(RoutingKind::kDuatoAdaptive), "duato");
  EXPECT_STREQ(to_string(ReplacementPolicy::kLru), "lru");
  EXPECT_STREQ(to_string(ReplacementPolicy::kLfu), "lfu");
  EXPECT_STREQ(to_string(ReplacementPolicy::kFifo), "fifo");
  EXPECT_STREQ(to_string(ReplacementPolicy::kRandom), "random");
  EXPECT_STREQ(to_string(ProtocolKind::kWormholeOnly), "wormhole");
  EXPECT_STREQ(to_string(ProtocolKind::kClrp), "clrp");
  EXPECT_STREQ(to_string(ProtocolKind::kCarp), "carp");
  EXPECT_STREQ(to_string(ClrpVariant::kFull), "full");
  EXPECT_STREQ(to_string(ClrpVariant::kForceFirst), "force-first");
  EXPECT_STREQ(to_string(ClrpVariant::kSingleSwitch), "single-switch");
}

}  // namespace
}  // namespace wavesim::sim
