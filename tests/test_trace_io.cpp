// Trace file round-trips and the post-drain leak check.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/simulation.hpp"
#include "sim/rng.hpp"
#include "verify/delivery.hpp"
#include "workload/trace.hpp"

namespace wavesim::load {
namespace {

class TraceIo : public ::testing::Test {
 protected:
  TraceIo() {
    path_ = (std::filesystem::temp_directory_path() /
             ("wavesim_trace_" +
              std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
              "_" + std::to_string(counter_++)))
                .string();
  }
  ~TraceIo() override { std::remove(path_.c_str()); }

  static int counter_;
  std::string path_;
};

int TraceIo::counter_ = 0;

TEST_F(TraceIo, RoundTripPreservesEveryEvent) {
  Trace trace;
  trace.establish(0, 3, 7);
  trace.send(5, 3, 7, 64);
  trace.send(5, 1, 2, 8);
  trace.release(90, 3, 7);
  save_trace(trace, path_);
  const Trace loaded = load_trace(path_);
  ASSERT_EQ(loaded.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const auto& a = trace.events()[i];
    const auto& b = loaded.events()[i];
    EXPECT_EQ(a.at, b.at);
    EXPECT_EQ(static_cast<int>(a.op), static_cast<int>(b.op));
    EXPECT_EQ(a.src, b.src);
    EXPECT_EQ(a.dest, b.dest);
    EXPECT_EQ(a.length, b.length);
  }
}

TEST_F(TraceIo, LoadRejectsMalformedInput) {
  {
    std::FILE* f = std::fopen(path_.c_str(), "w");
    std::fputs("# comment\n\n10 send 1 2 8\n11 frobnicate 1 2\n", f);
    std::fclose(f);
  }
  EXPECT_THROW(load_trace(path_), std::runtime_error);
  {
    std::FILE* f = std::fopen(path_.c_str(), "w");
    std::fputs("10 send 1 2\n", f);  // missing length
    std::fclose(f);
  }
  EXPECT_THROW(load_trace(path_), std::runtime_error);
  EXPECT_THROW(load_trace(path_ + ".does-not-exist"), std::runtime_error);
}

TEST_F(TraceIo, CommentsAndBlanksIgnored) {
  {
    std::FILE* f = std::fopen(path_.c_str(), "w");
    std::fputs("# header\n\n0 establish 1 2\n5 send 1 2 16\n", f);
    std::fclose(f);
  }
  const Trace trace = load_trace(path_);
  EXPECT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace.events()[1].length, 16);
}

TEST_F(TraceIo, CapturedRunSurvivesDiskRoundTrip) {
  sim::SimConfig cfg = sim::SimConfig::default_torus();
  cfg.protocol.protocol = sim::ProtocolKind::kClrp;
  core::Simulation original(cfg);
  sim::Rng rng{7};
  for (int i = 0; i < 25; ++i) {
    NodeId s = static_cast<NodeId>(rng.next_below(64));
    NodeId d = static_cast<NodeId>(rng.next_below(64));
    if (d == s) d = (d + 1) % 64;
    original.send(s, d, static_cast<std::int32_t>(4 + rng.next_below(28)));
    original.run(9);
  }
  ASSERT_TRUE(original.run_until_delivered(500000));
  save_trace(capture(original.network().messages()), path_);

  core::Simulation replayed(cfg);
  ASSERT_TRUE(replay(load_trace(path_), replayed, 500000));
  EXPECT_EQ(replayed.stats().messages_delivered, 25u);
}

TEST(DrainedCheck, CleanAfterFullDrain) {
  sim::SimConfig cfg = sim::SimConfig::default_torus();
  cfg.protocol.protocol = sim::ProtocolKind::kClrp;
  cfg.protocol.circuit_cache_entries = 2;
  core::Simulation sim(cfg);
  sim::Rng rng{13};
  for (int i = 0; i < 80; ++i) {
    NodeId s = static_cast<NodeId>(rng.next_below(64));
    NodeId d = static_cast<NodeId>(rng.next_below(64));
    if (d == s) d = (d + 1) % 64;
    sim.send(s, d, static_cast<std::int32_t>(4 + rng.next_below(60)));
    sim.run(5);
  }
  ASSERT_TRUE(sim.run_until_delivered(1'000'000));
  const auto result = verify::check_drained(sim.network());
  EXPECT_TRUE(result.ok()) << result.summary();
}

TEST(DrainedCheck, FlagsNonQuiescentNetwork) {
  sim::SimConfig cfg = sim::SimConfig::default_torus();
  cfg.protocol.protocol = sim::ProtocolKind::kClrp;
  core::Simulation sim(cfg);
  sim.send(0, 9, 64);
  const auto result = verify::check_drained(sim.network());
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.summary().find("not quiescent"), std::string::npos);
}

}  // namespace
}  // namespace wavesim::load
