// Observability layer: log2 histograms (boundaries, clamping, merge), the
// trace ring buffer (overflow drops oldest), trace JSON structure
// (schema, monotonic timestamps, round-trip through the JSON parser),
// event-order invariants per message, and the zero-perturbation guarantee
// (a run with observers attached is bit-identical to one without).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "core/simulation.hpp"
#include "engine/engine.hpp"
#include "harness/sweep.hpp"
#include "obs/metrics.hpp"
#include "obs/observer.hpp"
#include "obs/trace.hpp"
#include "sim/json.hpp"
#include "workload/generator.hpp"

namespace wavesim::obs {
namespace {

sim::SimConfig clrp() {
  sim::SimConfig cfg = sim::SimConfig::default_torus();
  cfg.protocol.protocol = sim::ProtocolKind::kClrp;
  return cfg;
}

// ------------------------------------------------------------- histogram

TEST(Log2Histogram, BucketBoundaries) {
  // Bucket 0 holds the value 0; bucket i >= 1 holds [2^(i-1), 2^i - 1].
  EXPECT_EQ(Log2Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Log2Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Log2Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Log2Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Log2Histogram::bucket_of(4), 3u);
  EXPECT_EQ(Log2Histogram::bucket_of(1023), 10u);
  EXPECT_EQ(Log2Histogram::bucket_of(1024), 11u);
  for (std::size_t i = 0; i < Log2Histogram::kBuckets; ++i) {
    EXPECT_EQ(Log2Histogram::bucket_of(Log2Histogram::bucket_lo(i)), i);
    if (i + 1 < Log2Histogram::kBuckets) {
      EXPECT_EQ(Log2Histogram::bucket_of(Log2Histogram::bucket_hi(i)), i);
      EXPECT_EQ(Log2Histogram::bucket_hi(i) + 1,
                Log2Histogram::bucket_lo(i + 1));
    }
  }
  // The largest representable value clamps into the last bucket.
  EXPECT_EQ(Log2Histogram::bucket_of(~std::uint64_t{0}),
            Log2Histogram::kBuckets - 1);
}

TEST(Log2Histogram, CountsSumAndStats) {
  Log2Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  for (std::uint64_t v : {0ull, 1ull, 1ull, 7ull, 100ull, ~0ull}) h.add(v);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), ~std::uint64_t{0});
  std::uint64_t bucket_total = 0;
  for (std::size_t i = 0; i < Log2Histogram::kBuckets; ++i) {
    bucket_total += h.bucket_count(i);
  }
  EXPECT_EQ(bucket_total, h.count());  // the CI schema check relies on this
  EXPECT_EQ(h.bucket_count(1), 2u);    // the two 1s
  EXPECT_EQ(h.bucket_count(Log2Histogram::kBuckets - 1), 1u);
}

TEST(Log2Histogram, MergeMatchesSequentialAdds) {
  Log2Histogram a, b, both;
  for (std::uint64_t v : {3ull, 9ull, 200ull}) { a.add(v); both.add(v); }
  for (std::uint64_t v : {0ull, 5ull}) { b.add(v); both.add(v); }
  a.merge(b);
  EXPECT_EQ(a.count(), both.count());
  EXPECT_EQ(a.sum(), both.sum());
  EXPECT_EQ(a.min(), both.min());
  EXPECT_EQ(a.max(), both.max());
  for (std::size_t i = 0; i < Log2Histogram::kBuckets; ++i) {
    EXPECT_EQ(a.bucket_count(i), both.bucket_count(i)) << "bucket " << i;
  }
  // Merging an empty histogram changes nothing.
  const std::uint64_t before = a.count();
  a.merge(Log2Histogram{});
  EXPECT_EQ(a.count(), before);
  EXPECT_EQ(a.min(), both.min());
}

TEST(Log2Histogram, JsonBucketsSumToCount) {
  Log2Histogram h;
  for (std::uint64_t v = 0; v < 300; ++v) h.add(v);
  const sim::JsonValue j = h.to_json();
  EXPECT_EQ(j.at("count").as_int(), 300);
  std::int64_t total = 0;
  for (const auto& b : j.at("buckets").elements()) {
    total += b.at("count").as_int();
    EXPECT_LE(b.at("lo").as_number(), b.at("hi").as_number());
  }
  EXPECT_EQ(total, 300);
}

// ------------------------------------------------------------ ring buffer

core::Event event_at(Cycle at) {
  return core::Event{at, core::EventKind::kSubmitted, 0,
                     static_cast<MessageId>(at), kInvalidCircuit};
}

TEST(TraceRecorder, RejectsZeroCapacity) {
  EXPECT_THROW(TraceRecorder(0), std::invalid_argument);
}

TEST(TraceRecorder, RingOverflowDropsOldest) {
  TraceRecorder rec(4);
  for (Cycle c = 0; c < 6; ++c) rec.on_event(event_at(c));
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.capacity(), 4u);
  EXPECT_EQ(rec.dropped(), 2u);
  const auto evs = rec.events();
  ASSERT_EQ(evs.size(), 4u);
  EXPECT_EQ(evs.front().at, 2u);  // 0 and 1 were displaced
  EXPECT_EQ(evs.back().at, 5u);
  for (std::size_t i = 1; i < evs.size(); ++i) {
    EXPECT_LT(evs[i - 1].at, evs[i].at);
  }
}

TEST(TraceRecorder, DropCountSurfacesInJson) {
  TraceRecorder rec(2);
  for (Cycle c = 0; c < 5; ++c) rec.on_event(event_at(c));
  const sim::JsonValue j = rec.to_json();
  EXPECT_EQ(j.at("otherData").at("events_dropped").as_int(), 3);
  EXPECT_EQ(j.at("otherData").at("events_recorded").as_int(), 2);
  EXPECT_EQ(j.at("otherData").at("capacity").as_int(), 2);
}

// --------------------------------------------------------------- metrics

TEST(MetricsRegistry, CountersAndOpenIntervals) {
  using core::EventKind;
  MetricsRegistry m;
  m.on_event({10, EventKind::kSubmitted, 0, 1});
  m.on_event({12, EventKind::kProbeLaunched, 0, kInvalidMessage, 5});
  m.on_event({15, EventKind::kProbeLaunched, 0, kInvalidMessage, 5});  // retry
  m.on_event({20, EventKind::kCircuitEstablished, 0, kInvalidMessage, 5});
  m.on_event({21, EventKind::kTransferStarted, 0, 1});
  m.on_event({30, EventKind::kDelivered, 36, 1});
  EXPECT_EQ(m.counter(EventKind::kSubmitted), 1u);
  EXPECT_EQ(m.counter(EventKind::kProbeLaunched), 2u);
  EXPECT_EQ(m.messages_in_flight(), 0u);
  // Setup latency is measured from the FIRST probe attempt.
  EXPECT_EQ(m.setup_latency().count(), 1u);
  EXPECT_EQ(m.setup_latency().sum(), 8u);
  EXPECT_EQ(m.network_latency().sum(), 9u);
  EXPECT_EQ(m.injection_to_delivery().sum(), 20u);
}

TEST(MetricsRegistry, JsonHasSchemaAndMergedCounters) {
  MetricsRegistry m;
  m.on_event({1, core::EventKind::kSubmitted, 0, 1});
  GaugeSample g;
  g.cycle = 4;
  g.switch_utilization = {0.5, 0.25};
  g.watchdog_verdict = "progressing";
  m.add_sample(g);
  const sim::JsonValue extra =
      sim::JsonValue::object().set("cache_hits", 17);
  const sim::JsonValue j = m.to_json(extra, 4);
  EXPECT_EQ(j.at("schema").as_string(), "wavesim.metrics.v1");
  EXPECT_EQ(j.at("counters").at("submitted").as_int(), 1);
  EXPECT_EQ(j.at("counters").at("cache_hits").as_int(), 17);
  EXPECT_EQ(j.at("samples").at("rows").size(), 1u);
  // One column per sample field: 4 scalars + 2 utils + verdict + stall.
  EXPECT_EQ(j.at("samples").at("columns").size(), 8u);
}

// ---------------------------------------------------- end-to-end observer

TEST(Observer, TraceJsonRoundTripsAndIsMonotonic) {
  core::Simulation sim(clrp());
  ObserverOptions opt;
  opt.trace = true;
  opt.metrics = true;
  opt.sample_every = 8;  // short runs still get >= 1 gauge sample
  Observer observer(sim, opt);
  sim.send(0, 27, 64);
  sim.send(3, 40, 64);
  ASSERT_TRUE(sim.run_until_delivered(100000));

  const std::string text = observer.trace_json().dump(2);
  const sim::JsonValue j = sim::JsonValue::parse(text);  // round-trip
  EXPECT_EQ(j.at("otherData").at("schema").as_string(), "wavesim.trace.v1");
  const auto& events = j.at("traceEvents").elements();
  ASSERT_FALSE(events.empty());
  std::int64_t last_ts = -1;
  std::size_t spans_begun = 0;
  for (const auto& e : events) {
    const std::string ph = e.at("ph").as_string();
    if (ph == "M") continue;  // metadata records carry no timestamp order
    EXPECT_GE(e.at("ts").as_int(), last_ts) << "timestamps must not regress";
    last_ts = e.at("ts").as_int();
    if (ph == "b") ++spans_begun;
  }
  EXPECT_GE(spans_begun, 2u);  // at least one span per message

  const sim::JsonValue metrics = sim::JsonValue::parse(
      observer.metrics_json().dump(2));
  EXPECT_EQ(metrics.at("schema").as_string(), "wavesim.metrics.v1");
  EXPECT_EQ(metrics.at("counters").at("delivered").as_int(), 2);
  EXPECT_GE(metrics.at("samples").at("rows").size(), 1u);
}

TEST(Observer, EventOrderInvariantsPerMessage) {
  core::Simulation sim(clrp());
  ObserverOptions opt;
  opt.trace = true;
  Observer observer(sim, opt);
  load::UniformTraffic pattern(sim.topology());
  load::FixedSize sizes(32);
  load::run_open_loop(sim, pattern, sizes, /*offered_load=*/0.05,
                      /*warmup=*/200, /*measure=*/600,
                      /*drain_cap=*/100000, /*seed=*/9);

  struct Times {
    Cycle submitted = kCycleMax;
    Cycle started = kCycleMax;
    Cycle delivered = kCycleMax;
  };
  std::map<MessageId, Times> by_msg;
  for (const core::Event& e : observer.trace()->events()) {
    if (e.msg == kInvalidMessage) continue;
    Times& t = by_msg[e.msg];
    switch (e.kind) {
      case core::EventKind::kSubmitted: t.submitted = e.at; break;
      case core::EventKind::kTransferStarted: t.started = e.at; break;
      case core::EventKind::kDelivered: t.delivered = e.at; break;
      default: break;
    }
  }
  ASSERT_FALSE(by_msg.empty());
  std::size_t checked = 0;
  for (const auto& [id, t] : by_msg) {
    if (t.delivered == kCycleMax) continue;  // still in flight at capture end
    ASSERT_NE(t.submitted, kCycleMax) << "msg " << id;
    EXPECT_LE(t.submitted, t.delivered) << "msg " << id;
    if (t.started != kCycleMax) {
      EXPECT_LE(t.submitted, t.started) << "msg " << id;
      EXPECT_LE(t.started, t.delivered) << "msg " << id;
    }
    ++checked;
  }
  EXPECT_GT(checked, 0u);
}

TEST(Observer, AttachedRunIsBitIdenticalToPlainRun) {
  auto run = [](bool observed) {
    core::Simulation sim(clrp());
    std::unique_ptr<Observer> observer;
    if (observed) {
      ObserverOptions opt;
      opt.trace = true;
      opt.metrics = true;
      opt.sample_every = 128;
      observer = std::make_unique<Observer>(sim, opt);
    }
    load::UniformTraffic pattern(sim.topology());
    load::FixedSize sizes(64);
    const auto r = load::run_open_loop(sim, pattern, sizes, 0.08,
                                       /*warmup=*/300, /*measure=*/1000,
                                       /*drain_cap=*/100000, /*seed=*/3);
    return harness::stats_to_json(r.stats).dump() + "@" +
           std::to_string(sim.now());
  };
  // Observability must be strictly read-only: identical stats, identical
  // final cycle, byte-for-byte identical export.
  EXPECT_EQ(run(false), run(true));
}

TEST(Observer, ParallelEngineExportIsBitIdenticalToSequential) {
  // The recorders are single-threaded by construction; under the parallel
  // engine they stay correct because parallel-phase events are staged in
  // per-shard buffers and flushed to the sink in shard order at commit.
  // That merge must be invisible: trace, metrics, and stats exports are
  // byte-for-byte the sequential ones, for any shard count.
  auto run = [](std::int32_t shards) {
    core::Simulation sim(clrp());
    if (shards > 0) {
      engine::EngineConfig cfg;
      cfg.kind = engine::EngineKind::kPar;
      cfg.shards = shards;
      sim.set_engine(engine::make_engine(cfg, sim.topology().num_nodes()));
    }
    ObserverOptions opt;
    opt.trace = true;
    opt.metrics = true;
    opt.sample_every = 128;
    Observer observer(sim, opt);
    load::UniformTraffic pattern(sim.topology());
    load::FixedSize sizes(64);
    const auto r = load::run_open_loop(sim, pattern, sizes, 0.08,
                                       /*warmup=*/300, /*measure=*/1000,
                                       /*drain_cap=*/100000, /*seed=*/3);
    observer.detach();
    return observer.trace_json().dump() + "@" +
           observer.metrics_json().dump() + "@" +
           harness::stats_to_json(r.stats).dump();
  };
  const std::string sequential = run(0);
  EXPECT_EQ(sequential, run(4));
  EXPECT_EQ(sequential, run(7));  // uneven shard sizes (64 nodes / 7)
}

TEST(Observer, DetachStopsRecording) {
  core::Simulation sim(clrp());
  ObserverOptions opt;
  opt.trace = true;
  Observer observer(sim, opt);
  sim.send(0, 27, 32);
  ASSERT_TRUE(sim.run_until_delivered(100000));
  observer.detach();
  const std::size_t frozen = observer.trace()->size();
  sim.send(0, 27, 32);
  ASSERT_TRUE(sim.run_until_delivered(100000));
  EXPECT_EQ(observer.trace()->size(), frozen);
  // Data recorded before the detach stays exportable.
  EXPECT_NO_THROW(observer.trace_json());
}

}  // namespace
}  // namespace wavesim::obs
