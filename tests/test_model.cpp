// Bounded model checker (src/model): explorer canonicalization and
// symmetry certification, budget honesty (bounded-out is never ok), the
// per-row checkers, the seeded force-waits-on-unacked mutation, and the
// model-vs-runtime agreement contract (check/bmc_replay).
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "check/bmc_replay.hpp"
#include "model/bmc.hpp"
#include "model/explorer.hpp"
#include "model/model.hpp"

namespace wavesim {
namespace {

using analysis::CheckStatus;

sim::SimConfig line_config(std::int32_t nodes) {
  sim::SimConfig config;
  config.topology.radix = {nodes};
  config.topology.torus = false;
  config.router.wave_switches = 1;
  config.protocol.protocol = sim::ProtocolKind::kClrp;
  config.protocol.clrp_variant = sim::ClrpVariant::kFull;
  config.protocol.max_misroutes = 0;
  config.protocol.circuit_cache_entries = 1;
  return config;
}

sim::SimConfig ring4_config() {
  sim::SimConfig config = line_config(4);
  config.topology.torus = true;
  config.protocol.clrp_variant = sim::ClrpVariant::kForceFirst;
  return config;
}

const analysis::CheckRow& row_of(const model::BmcReport& report,
                                 const std::string& id) {
  for (const auto& row : report.rows) {
    if (row.id == id) return row;
  }
  throw std::out_of_range("no row " + id);
}

TEST(Explorer, RingTranslationsCertifyAndMeshDoesNot) {
  const auto jobs = model::bmc_jobs(ring4_config());
  model::ProtocolModel ring(ring4_config(), jobs);
  model::Explorer ring_explorer(ring);
  // All 4 translations of the ring survive certification: the job set
  // {0->2, 1->3, 2->0, 3->1} is itself translation-invariant.
  EXPECT_EQ(ring_explorer.symmetry_group(), 4);

  const sim::SimConfig mesh = line_config(4);
  model::ProtocolModel line(mesh, model::bmc_jobs(mesh));
  model::Explorer line_explorer(line);
  EXPECT_EQ(line_explorer.symmetry_group(), 1);
}

TEST(Explorer, RotatedStatesShareOneCanonicalForm) {
  const sim::SimConfig config = ring4_config();
  model::ProtocolModel m(config, model::bmc_jobs(config));
  model::Explorer explorer(m);

  // job0 (0->2) advances one hop vs the rotated twin: job1 (1->3)
  // advancing its first hop. Distinct raw states, same canonical form.
  model::State a = m.initial_state();
  const auto advance = [&](model::State& s, std::size_t job, NodeId node) {
    model::JobState& j = s.jobs[job];
    j.phase = model::Phase::kProbing;
    j.node = node;
    s.jobs[job].history[static_cast<std::size_t>(node)] = 0;
    for (const auto& succ : m.successors(s)) {
      if (succ.step.job == job) {
        s = succ.state;
        return;
      }
    }
    FAIL() << "no successor for job " << job;
  };
  model::State b = a;
  advance(a, 0, 0);  // start job0
  advance(a, 0, 0);  // probe: reserve (n0, p0)
  advance(b, 1, 1);  // start job1
  advance(b, 1, 1);  // probe: reserve (n1, p0)
  EXPECT_NE(m.encode(a), m.encode(b));
  EXPECT_EQ(explorer.canonical(a), explorer.canonical(b));
}

TEST(Explorer, BudgetExhaustionIsBoundedOutNeverOk) {
  const sim::SimConfig config = ring4_config();
  model::BmcOptions tiny;
  tiny.max_states = 5;
  const model::BmcReport report = model::run_bmc(config, tiny);
  EXPECT_FALSE(report.complete);
  EXPECT_TRUE(report.violated_row.empty());
  for (const auto& row : report.rows) {
    EXPECT_EQ(row.status, CheckStatus::kBoundedOut) << row.id;
    EXPECT_NE(row.detail.find("NOT a proof"), std::string::npos) << row.id;
  }
  // Depth budget independently forces the same honest verdict.
  model::BmcOptions shallow;
  shallow.max_depth = 2;
  const model::BmcReport depth_report = model::run_bmc(config, shallow);
  EXPECT_FALSE(depth_report.complete);
  EXPECT_EQ(depth_report.count(CheckStatus::kOk), 0u);
}

TEST(Bmc, CleanLineVerifiesAllRowsExhaustively) {
  const model::BmcReport report =
      model::run_bmc(line_config(2), model::BmcOptions{});
  EXPECT_TRUE(report.complete);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.count(CheckStatus::kOk), 4u);
  EXPECT_TRUE(report.counterexample.empty());
  EXPECT_GT(report.states, 1);
}

TEST(Bmc, CarpSkipsTheForceRowAndClosesTheRest) {
  sim::SimConfig config = line_config(3);
  config.protocol.protocol = sim::ProtocolKind::kCarp;
  const model::BmcReport report =
      model::run_bmc(config, model::BmcOptions{});
  EXPECT_TRUE(report.complete);
  const auto& force = row_of(report, "bmc-force-waits-only-on-acked");
  EXPECT_EQ(force.status, CheckStatus::kSkipped);
  EXPECT_NE(force.detail.find("never sets Force"), std::string::npos);
  EXPECT_EQ(row_of(report, "bmc-no-deadlock").status, CheckStatus::kOk);
  EXPECT_EQ(row_of(report, "bmc-teardown-drains").status, CheckStatus::kOk);
}

TEST(Bmc, EnvelopeRejectsOutOfScopeConfigs) {
  std::string why;
  EXPECT_FALSE(model::bmc_supported(sim::SimConfig{}, &why));  // 8x8
  EXPECT_NE(why.find("2-4 nodes"), std::string::npos);

  sim::SimConfig config = line_config(3);
  config.protocol.circuit_cache_entries = 4;
  EXPECT_FALSE(model::bmc_supported(config, &why));

  config = line_config(3);
  config.protocol.protocol = sim::ProtocolKind::kWormholeOnly;
  EXPECT_FALSE(model::bmc_supported(config, &why));

  EXPECT_TRUE(model::bmc_supported(line_config(3)));
  EXPECT_THROW(model::run_bmc(sim::SimConfig{}, model::BmcOptions{}),
               std::invalid_argument);
}

TEST(Bmc, SeededMutationYieldsForceOnUnackedCounterexample) {
  sim::SimConfig config = ring4_config();
  config.protocol.mutate_force_unacked = true;
  const model::BmcReport report =
      model::run_bmc(config, model::BmcOptions{});
  EXPECT_EQ(report.violated_row, "bmc-force-waits-only-on-acked");
  const auto& row = row_of(report, "bmc-force-waits-only-on-acked");
  EXPECT_EQ(row.status, CheckStatus::kViolation);
  ASSERT_FALSE(report.counterexample.empty());
  // The decoded witness mirrors the schedule step for step and ends at
  // the offending force-wait decision.
  ASSERT_EQ(row.witness.hops.size(), report.counterexample.size());
  EXPECT_EQ(row.witness.graph, "bmc-trace");
  for (std::size_t i = 0; i < row.witness.hops.size(); ++i) {
    EXPECT_EQ(row.witness.hops[i].name, report.counterexample[i].text);
    EXPECT_EQ(row.witness.hops[i].vertex, static_cast<std::int32_t>(i));
  }
  EXPECT_EQ(report.counterexample.back().step.kind, model::StepKind::kProbe);
  EXPECT_NE(report.counterexample.back().text.find("PENDING"),
            std::string::npos);
}

TEST(BmcReplay, MutatedCounterexampleReproducesOnTheRuntime) {
  sim::SimConfig config = ring4_config();
  config.protocol.mutate_force_unacked = true;
  const model::BmcReport report =
      model::run_bmc(config, model::BmcOptions{});
  ASSERT_FALSE(report.violated_row.empty());
  const check::BmcReplayResult replay = check::replay_bmc(report);
  EXPECT_EQ(replay.mode, "counterexample");
  EXPECT_TRUE(replay.agreed) << replay.detail;
  // The concrete failure is the matching runtime oracle: fsck I7.
  EXPECT_NE(replay.detail.find("I7"), std::string::npos) << replay.detail;
}

TEST(BmcReplay, CleanVerdictsReplayCleanOnTheRuntime) {
  for (const auto& config :
       {line_config(2), line_config(3), ring4_config()}) {
    const model::BmcReport report =
        model::run_bmc(config, model::BmcOptions{});
    ASSERT_TRUE(report.violated_row.empty()) << report.id;
    const check::BmcReplayResult replay = check::replay_bmc(report);
    EXPECT_EQ(replay.mode, "clean");
    EXPECT_TRUE(replay.agreed) << report.id << ": " << replay.detail;
  }
}

TEST(BmcReplay, WholeSliceClosesCleanWithAgreement) {
  const auto configs = model::enumerate_bmc_configs();
  ASSERT_GE(configs.size(), 20u);
  std::set<std::string> ids;
  for (const auto& config : configs) {
    const model::BmcReport report =
        model::run_bmc(config, model::BmcOptions{});
    EXPECT_TRUE(ids.insert(report.id).second) << "duplicate " << report.id;
    EXPECT_TRUE(report.complete) << report.id;
    EXPECT_TRUE(report.ok()) << report.id << ": " << report.violated_row;
    EXPECT_GE(report.count(CheckStatus::kOk), 3u) << report.id;
    const check::BmcReplayResult replay = check::replay_bmc(report);
    EXPECT_TRUE(replay.agreed) << report.id << ": " << replay.detail;
  }
}

}  // namespace
}  // namespace wavesim
