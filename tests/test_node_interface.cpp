// Node-interface protocol edge cases: eviction under queued traffic,
// release demands with parked messages, CARP release-while-probing,
// policy thresholds, and initial-switch staggering.
#include <gtest/gtest.h>

#include "core/simulation.hpp"
#include "verify/fsck.hpp"

namespace wavesim::core {
namespace {

sim::SimConfig clrp(std::int32_t cache_entries = 8) {
  sim::SimConfig cfg = sim::SimConfig::default_torus();
  cfg.protocol.protocol = sim::ProtocolKind::kClrp;
  cfg.protocol.circuit_cache_entries = cache_entries;
  return cfg;
}

TEST(NodeInterface, MinCircuitThresholdBoundary) {
  sim::SimConfig cfg = clrp();
  cfg.protocol.min_circuit_message_flits = 32;
  Simulation sim(cfg);
  const MessageId below = sim.send(0, 9, 31);
  const MessageId at = sim.send(0, 10, 32);
  ASSERT_TRUE(sim.run_until_delivered(100000));
  EXPECT_EQ(sim.network().messages().at(below).mode,
            MessageMode::kWormholePolicy);
  EXPECT_EQ(sim.network().messages().at(at).mode,
            MessageMode::kCircuitAfterSetup);
}

TEST(NodeInterface, FallbackWhenEveryCacheEntryIsBusyProbing) {
  // Cache of 1: the first send occupies the only entry with a probing
  // setup; a second send to a different dest cannot allocate and falls
  // back to wormhole immediately.
  Simulation sim(clrp(1));
  const MessageId first = sim.send(0, 9, 64);
  const MessageId second = sim.send(0, 18, 64);
  ASSERT_TRUE(sim.run_until_delivered(100000));
  EXPECT_EQ(sim.network().messages().at(first).mode,
            MessageMode::kCircuitAfterSetup);
  EXPECT_EQ(sim.network().messages().at(second).mode,
            MessageMode::kWormholeFallback);
}

TEST(NodeInterface, EvictionWaitsOutInUseEntries) {
  // One entry, long transfer in progress; a new dest cannot evict until
  // the transfer finishes, so it falls back -- and after completion the
  // next send evicts cleanly.
  Simulation sim(clrp(1));
  sim.send(0, 9, 64);
  ASSERT_TRUE(sim.run_until_delivered(100000));
  sim.send(0, 9, 5000);           // occupies the circuit for a long time
  sim.run(30);                    // transfer is now in flight
  const MessageId other = sim.send(0, 18, 64);
  ASSERT_TRUE(sim.run_until_delivered(400000));
  EXPECT_EQ(sim.network().messages().at(other).mode,
            MessageMode::kWormholeFallback);
  const MessageId after = sim.send(0, 27, 64);
  ASSERT_TRUE(sim.run_until_delivered(400000));
  EXPECT_EQ(sim.network().messages().at(after).mode,
            MessageMode::kCircuitAfterSetup);
  EXPECT_EQ(sim.stats().cache_evictions, 1u);
}

TEST(NodeInterface, QueuedMessagesSurviveEviction) {
  // Messages queued behind an established circuit must be re-routed, not
  // lost, if their circuit is evicted between transfers. Staging: the
  // queue drains serially, so momentary idleness between transfers is the
  // eviction window; we can't force it deterministically from outside, so
  // we simply hammer one source with interleaved destinations and verify
  // completeness + invariants.
  Simulation sim(clrp(1));
  std::uint64_t sent = 0;
  for (int round = 0; round < 10; ++round) {
    for (NodeId dest : {9, 18, 27, 36}) {
      sim.send(0, dest, 48);
      ++sent;
    }
    sim.run(50);
  }
  ASSERT_TRUE(sim.run_until_delivered(1'000'000));
  EXPECT_EQ(sim.stats().messages_delivered, sent);
  EXPECT_TRUE(verify::check_control_state(sim.network()).ok());
}

TEST(NodeInterface, CarpReleaseWhileProbingDefersTeardown) {
  sim::SimConfig cfg = clrp();
  cfg.protocol.protocol = sim::ProtocolKind::kCarp;
  Simulation sim(cfg);
  ASSERT_TRUE(sim.establish_circuit(0, 27));
  sim.release_circuit(0, 27);  // released before the probe finishes
  ASSERT_TRUE(sim.run_until_delivered(100000));
  sim.run(500);  // allow setup + deferred teardown to complete
  EXPECT_EQ(sim.stats().teardowns, 1u);
  // The circuit is gone: a send goes via wormhole.
  const MessageId id = sim.send(0, 27, 32);
  ASSERT_TRUE(sim.run_until_delivered(100000));
  EXPECT_EQ(sim.network().messages().at(id).mode,
            MessageMode::kWormholePolicy);
}

TEST(NodeInterface, CarpReleaseUnknownDestIsNoop) {
  sim::SimConfig cfg = clrp();
  cfg.protocol.protocol = sim::ProtocolKind::kCarp;
  Simulation sim(cfg);
  sim.release_circuit(0, 13);  // nothing exists
  sim.run(100);
  EXPECT_EQ(sim.stats().teardowns, 0u);
}

TEST(NodeInterface, CarpEstablishToSelfFails) {
  sim::SimConfig cfg = clrp();
  cfg.protocol.protocol = sim::ProtocolKind::kCarp;
  Simulation sim(cfg);
  EXPECT_FALSE(sim.establish_circuit(5, 5));
}

TEST(NodeInterface, CarpEstablishFailsWhenCacheFull) {
  sim::SimConfig cfg = clrp(2);
  cfg.protocol.protocol = sim::ProtocolKind::kCarp;
  Simulation sim(cfg);
  ASSERT_TRUE(sim.establish_circuit(0, 1));
  ASSERT_TRUE(sim.establish_circuit(0, 2));
  // Both entries are probing (unevictable): the third must fail.
  EXPECT_FALSE(sim.establish_circuit(0, 3));
  sim.run(400);
  // Once established, entries are evictable and establish succeeds again.
  EXPECT_TRUE(sim.establish_circuit(0, 3));
  ASSERT_TRUE(sim.run_until_delivered(100000));
}

TEST(NodeInterface, InitialSwitchStaggersAcrossNeighbors) {
  // Paper section 3.1: node (x, y) first tries switch (x+y) mod k. Verify
  // via the circuit table: single sends from neighboring nodes use
  // different initial switches.
  sim::SimConfig cfg = clrp();
  cfg.router.wave_switches = 2;
  Simulation sim(cfg);
  const NodeId a = sim.topology().node_of({0, 0});  // coord sum 0 -> switch 0
  const NodeId b = sim.topology().node_of({1, 0});  // coord sum 1 -> switch 1
  sim.send(a, 27, 16);
  sim.send(b, 28, 16);
  ASSERT_TRUE(sim.run_until_delivered(100000));
  std::set<std::int32_t> switches;
  for (const CircuitId id : sim.network().circuits().active_ids()) {
    switches.insert(sim.network().circuits().at(id).switch_index);
  }
  EXPECT_EQ(switches.size(), 2u);
}

TEST(NodeInterface, ReleaseDemandRequeuesParkedMessages) {
  // Force a circuit release while messages are queued behind it: all
  // messages must still be delivered (they are resubmitted). Staged by
  // two sources contending for the same row on a k=1 network.
  sim::SimConfig cfg = clrp(4);
  cfg.router.wave_switches = 1;
  Simulation sim(cfg);
  // Source A builds a circuit along row 0 and queues several messages.
  for (int i = 0; i < 4; ++i) sim.send(0, 3, 200);
  sim.run(60);
  // Source B's setup (force phase) will demand A's channels.
  for (int i = 0; i < 3; ++i) sim.send(1, 2, 64);
  ASSERT_TRUE(sim.run_until_delivered(1'000'000));
  EXPECT_EQ(sim.stats().messages_delivered, 7u);
  EXPECT_TRUE(verify::check_control_state(sim.network()).ok());
}

TEST(NodeInterface, PacketAndRetryStatsStartAtZero) {
  Simulation sim(clrp());
  const auto& stats = sim.network().interface(0).stats();
  EXPECT_EQ(stats.packets_sent, 0u);
  EXPECT_EQ(stats.setup_retries, 0u);
  EXPECT_EQ(stats.buffer_reallocs, 0u);
}

}  // namespace
}  // namespace wavesim::core
