#!/usr/bin/env python3
"""Minimal wavesim.job.v1 client for wavesimd (docs/SERVICE.md).

One request per connection, line-delimited JSON over an AF_UNIX socket:

  wavesimd_client.py --socket S submit --kind run --spec '{"topo":"8x8"}'
  wavesimd_client.py --socket S status --id job-1
  wavesimd_client.py --socket S wait --id job-1 --timeout 120
  wavesimd_client.py --socket S result --id job-1
  wavesimd_client.py --socket S stats
  wavesimd_client.py --socket S shutdown

Prints the response JSON on stdout. Exit 0 when the daemon answered
ok:true, 1 when it answered ok:false, 2 on usage/transport errors.
CI's service-smoke job drives the daemon exclusively through this tool.
"""

import argparse
import json
import socket
import sys
import time


def request(sock_path, payload, timeout=30.0):
    """Send one request line; return the parsed response object."""
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
        sock.settimeout(timeout)
        sock.connect(sock_path)
        sock.sendall((json.dumps(payload) + "\n").encode())
        buf = b""
        while not buf.endswith(b"\n"):
            chunk = sock.recv(65536)
            if not chunk:
                break
            buf += chunk
    if not buf:
        raise ConnectionError("empty response from daemon")
    return json.loads(buf.decode())


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--socket", required=True, help="daemon AF_UNIX socket")
    parser.add_argument("op", choices=[
        "submit", "status", "result", "cancel", "stats", "shutdown", "wait"])
    parser.add_argument("--kind", choices=["run", "sweep", "simcheck"],
                        help="job kind (submit)")
    parser.add_argument("--spec", help="job spec as inline JSON (submit)")
    parser.add_argument("--spec-file", help="job spec from a file (submit)")
    parser.add_argument("--tenant", help="tenant name (submit)")
    parser.add_argument("--weight", type=float, help="WFQ weight (submit)")
    parser.add_argument("--id", help="job id (status/result/cancel/wait)")
    parser.add_argument("--timeout", type=float, default=120.0,
                        help="deadline in seconds for wait (default 120)")
    args = parser.parse_args()

    if args.op == "wait":
        # Poll status until the job reaches a terminal state.
        if not args.id:
            parser.error("wait requires --id")
        deadline = time.monotonic() + args.timeout
        while True:
            response = request(args.socket, {"op": "status", "id": args.id})
            if not response.get("ok"):
                break
            if response.get("state") in ("done", "failed", "cancelled"):
                break
            if time.monotonic() >= deadline:
                response = {"ok": False, "error": "wait timed out",
                            "last": response}
                break
            time.sleep(0.2)
    else:
        payload = {"op": args.op}
        if args.op == "submit":
            if not args.kind or not (args.spec or args.spec_file):
                parser.error("submit requires --kind and --spec/--spec-file")
            if args.spec_file:
                with open(args.spec_file, encoding="utf-8") as handle:
                    payload["spec"] = json.load(handle)
            else:
                payload["spec"] = json.loads(args.spec)
            payload["kind"] = args.kind
            if args.tenant:
                payload["tenant"] = args.tenant
            if args.weight is not None:
                payload["weight"] = args.weight
        elif args.op in ("status", "result", "cancel"):
            if not args.id:
                parser.error(f"{args.op} requires --id")
            payload["id"] = args.id
        response = request(args.socket, payload)

    json.dump(response, sys.stdout, indent=2)
    print()
    return 0 if response.get("ok") else 1


if __name__ == "__main__":
    try:
        sys.exit(main())
    except (OSError, ValueError, ConnectionError) as error:
        print(f"error: {error}", file=sys.stderr)
        sys.exit(2)
