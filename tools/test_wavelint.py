#!/usr/bin/env python3
"""Self-test for tools/wavelint.py's snap and det passes.

(The absorbed shard pass keeps its own self-test in
tools/test_shardlint.py, exercised through the compatibility shim.)

Two layers of mutation testing:

1. Fixture mutations: a miniature repository is written to a temp
   directory and mutated one contract at a time -- a serialization call
   dropped from snap() must flag the member; a [snap: skip] or
   [det: local] tag stripped of its justification must flag; a derived
   class losing its tag must flag; a declared-but-undefined snap() must
   fail loudly (exit 2); an unknown --pass must exit 2.

2. Real-tree mutations: the repository's own src/ is copied and every
   single [snap: skip] and [det: local] escape is removed one at a time
   -- each removal must turn the corresponding pass red (exit 1). This
   proves no escape in the tree is redundant dead weight: every tag is
   the only thing standing between a real hazard/skip and the lint.
   Likewise the canonical CI mutation (deleting a field from
   Network::snap()) must be caught with the member named.

Finally wavelint (all passes) must pass against the real repository.

Run directly (``python3 tools/test_wavelint.py``) or via ctest
(``wavelint_self_test``). Exit 0 = all checks pass.
"""

import re
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

TOOLS = Path(__file__).resolve().parent
REPO = TOOLS.parent
WAVELINT = TOOLS / "wavelint.py"

THING_HPP = """
namespace wavesim::core {
class Thing {
 public:
  void snap(snap::Archive& ar);
  std::vector<int> sorted_keys() const;
 private:
  const topo::Grid& topo_;
  int count_ = 0;
  int cursor_ = 0;
  int patience_;  // [snap: skip] config, fixed at construction
  std::unordered_map<int, int> table_;
};
class DerivedThing : public Thing {
 private:
  int bits_;  // [snap: skip] derived from topology at construction
};
}  // namespace wavesim::core
"""

THING_CPP = """
#include "core/thing.hpp"
namespace wavesim::core {
std::vector<int> Thing::sorted_keys() const {
  std::vector<int> out;
  // [det: local] collect-then-sort; bucket order never escapes.
  for (const auto& [k, v] : table_) out.push_back(k);
  std::sort(out.begin(), out.end());
  return out;
}
void Thing::snap(snap::Archive& ar) {
  ar.pod(count_);
  ar.pod(cursor_);
  std::vector<int> keys = sorted_keys();
  ar.vec_pod(keys);
}
}  // namespace wavesim::core
"""


def write_fixture(root, hpp=THING_HPP, cpp=THING_CPP):
    for rel, text in (("src/core/thing.hpp", hpp),
                      ("src/core/thing.cpp", cpp)):
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)


def run_lint(root, *passes):
    cmd = [sys.executable, str(WAVELINT), "--root", str(root)]
    for p in passes:
        cmd += ["--pass", p]
    return subprocess.run(cmd, capture_output=True, text=True)


def check(name, ok, detail):
    print(f"{'ok' if ok else 'FAIL'}: {name}")
    if not ok:
        print(detail)
    return ok


def fixture_checks(results):
    with tempfile.TemporaryDirectory(prefix="wavelint-fixture-") as tmp:
        root = Path(tmp)

        write_fixture(root)
        r = run_lint(root, "snap", "det")
        results.append(check("clean fixture passes", r.returncode == 0,
                             r.stdout + r.stderr))

        # Tentpole contract: a field dropped from snap() is flagged by
        # name. table_ stays covered through the sorted_keys() closure.
        write_fixture(root, cpp=THING_CPP.replace(
            "  ar.pod(cursor_);\n", ""))
        r = run_lint(root, "snap")
        results.append(check(
            "dropped snap() field is flagged by name",
            r.returncode == 1 and "Thing::cursor_" in r.stdout,
            r.stdout + r.stderr))
        results.append(check(
            "closure-covered unordered member is not flagged",
            "Thing::table_" not in r.stdout, r.stdout))

        # A [snap: skip] without a justification is itself a violation.
        write_fixture(root, hpp=THING_HPP.replace(
            "[snap: skip] config, fixed at construction", "[snap: skip]"))
        r = run_lint(root, "snap")
        results.append(check(
            "[snap: skip] without justification is flagged",
            r.returncode == 1 and "justification" in r.stdout
            and "patience_" in r.stdout,
            r.stdout + r.stderr))

        # A derived class inherits snap() that cannot see its members.
        write_fixture(root, hpp=THING_HPP.replace(
            "  int bits_;  // [snap: skip] derived from topology at "
            "construction", "  int bits_;"))
        r = run_lint(root, "snap")
        results.append(check(
            "derived-class member without tag is flagged",
            r.returncode == 1 and "DerivedThing::bits_" in r.stdout,
            r.stdout + r.stderr))

        # Declared snap() with no findable definition: fail loudly.
        write_fixture(root, cpp="// definition moved away\n")
        r = run_lint(root, "snap")
        results.append(check(
            "declared-but-undefined snap() exits 2",
            r.returncode == 2, r.stdout + r.stderr))

        # det: removing the escape tag flags the iteration by name.
        write_fixture(root, cpp=THING_CPP.replace(
            "  // [det: local] collect-then-sort; bucket order never "
            "escapes.\n", ""))
        r = run_lint(root, "det")
        results.append(check(
            "untagged unordered iteration is flagged by name",
            r.returncode == 1 and "table_" in r.stdout,
            r.stdout + r.stderr))

        # det: a [det: local] stripped of its justification is flagged.
        write_fixture(root, cpp=THING_CPP.replace(
            "[det: local] collect-then-sort; bucket order never escapes.",
            "[det: local]"))
        r = run_lint(root, "det")
        results.append(check(
            "[det: local] without justification is flagged",
            r.returncode == 1 and "justification" in r.stdout,
            r.stdout + r.stderr))

        # det: wall-clock and libc randomness are flagged untagged.
        write_fixture(root, cpp=THING_CPP.replace(
            "  ar.pod(count_);",
            "  ar.pod(count_);\n"
            "  auto t0 = std::chrono::steady_clock::now();\n"
            "  int r = std::rand();"))
        r = run_lint(root, "det")
        results.append(check(
            "wall clock and std::rand are flagged",
            r.returncode == 1 and "wall clock" in r.stdout
            and "randomness" in r.stdout,
            r.stdout + r.stderr))

    # Usage errors exit 2 (argparse) -- the 0/1/2 contract's third leg.
    r = subprocess.run([sys.executable, str(WAVELINT), "--pass", "bogus"],
                       capture_output=True, text=True)
    results.append(check("unknown --pass exits 2", r.returncode == 2,
                         r.stdout + r.stderr))


def real_tree_checks(results):
    tag_res = {"snap": re.compile(r"\[snap:\s*skip\]"),
               "det": re.compile(r"\[det:\s*local\]")}
    with tempfile.TemporaryDirectory(prefix="wavelint-mutate-") as tmp:
        root = Path(tmp)
        shutil.copytree(REPO / "src", root / "src")

        # The canonical CI mutation: drop a field from Network::snap().
        net = root / "src/core/network.cpp"
        original = net.read_text()
        mutated = original.replace("  ar.pod(delivered_msgs_);\n", "")
        if mutated == original:
            results.append(check(
                "Network::snap() serializes delivered_msgs_", False,
                "expected 'ar.pod(delivered_msgs_);' in network.cpp"))
        else:
            net.write_text(mutated)
            r = run_lint(root, "snap")
            results.append(check(
                "dropped Network::snap() field is caught by name",
                r.returncode == 1 and "delivered_msgs_" in r.stdout,
                r.stdout + r.stderr))
            net.write_text(original)

        # Every escape in the tree must be load-bearing: removing any
        # one [snap: skip] or [det: local] tag turns its pass red.
        for pass_name, tag_re in tag_res.items():
            sites = []
            for path in sorted((root / "src").rglob("*")):
                if path.suffix not in (".hpp", ".cpp"):
                    continue
                for i, line in enumerate(path.read_text().split("\n")):
                    if tag_re.search(line):
                        sites.append((path, i))
            if not sites:
                results.append(check(
                    f"real tree has [{pass_name}] escapes to test", False,
                    "tag scan found none -- grammar drifted?"))
                continue
            failed = []
            for path, i in sites:
                original = path.read_text()
                lines = original.split("\n")
                lines[i] = tag_re.sub("", lines[i])
                path.write_text("\n".join(lines))
                r = run_lint(root, pass_name)
                if r.returncode != 1:
                    failed.append("%s:%d: tag removal not flagged (rc=%d)"
                                  % (path.relative_to(root), i + 1,
                                     r.returncode))
                path.write_text(original)
            results.append(check(
                f"each of {len(sites)} [{pass_name}] escapes is "
                "load-bearing", not failed, "\n".join(failed)))


def main():
    results = []
    fixture_checks(results)
    real_tree_checks(results)

    r = run_lint(REPO)
    results.append(check("real repository is clean (all passes)",
                         r.returncode == 0, r.stdout + r.stderr))

    if all(results):
        print(f"test_wavelint: {len(results)} checks passed")
        return 0
    return 1


if __name__ == "__main__":
    sys.exit(main())
