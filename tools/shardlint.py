#!/usr/bin/env python3
"""shardlint -- compatibility shim over tools/wavelint.py.

The shard-safety lint (member [shard: seq|owned|ro] tags plus the
call-graph closure from the shard-phase roots, docs/ENGINE.md rule 1)
now lives in tools/wavelint.py as its `shard` pass, sharing parsing
infrastructure with the `snap` (snapshot completeness) and `det`
(determinism hazards) passes. This entry point remains so existing
invocations -- `python3 tools/shardlint.py [--root R]` -- keep working;
it simply delegates. Exit codes unchanged: 0 clean, 1 violations,
2 parse/usage error.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
import wavelint  # noqa: E402


def main(argv=None):
    args = sys.argv[1:] if argv is None else list(argv)
    return wavelint.main(["--pass", "shard", *args])


if __name__ == "__main__":
    sys.exit(main())
