#!/usr/bin/env python3
"""shardlint -- static checker for the engine's shard-safety conventions.

docs/ENGINE.md rule 1: code running in the shard phase ("write only to
your shard or your context") may mutate per-node-owned state and the
passed ShardIo/EventBuffer, but must never write state that belongs to
the sequential phases. This lint makes that contract machine-checked:

* Every `_`-suffixed data member of the classes with a shard phase
  (core::Network, wh::Fabric, core::NodeInterface) must carry a
  `[shard: seq|owned|ro]` tag in a comment on its declaration line or the
  comment line(s) directly above it. The same tagging duty applies to the
  flat arena/SoA containers those classes relocated hot state into
  (HEADER_TARGETS: sim::InboxRing, wh::ExclusiveLinkGate) — they are
  header-only, so only tag presence is checked; their call sites are
  covered through the class closure below:
    - seq:   mutated only in the sequential phases (step_begin /
             step_commit / construction); shard code may read it.
    - owned: per-node or owner-partitioned state a shard may mutate for
             the nodes it owns.
    - ro:    immutable after construction.
* The call graph is closed over from the shard-phase roots
  (Network::step_shard, Fabric::step_nodes, NodeInterface::pump_streams),
  following same-class calls and the known cross-class seams
  (fabric_.method(), interfaces_[..]->method()). When a callee has
  several overloads, the one taking a ShardIo is the shard-phase one.
  (Router state is per-node by construction and not tagged.)
* Inside every reachable body, a write to a `seq` or `ro` member --
  assignment, compound assignment, increment/decrement, or a call to a
  known mutating method (push_back, clear, resize, ...) -- is a
  violation.

The parser is deliberately regex-based and conservative: it understands
the project's own style (one declaration per line, members suffixed `_`,
out-of-line method definitions) and fails loudly (exit 2) on anything it
cannot parse rather than guessing. Writes smuggled through non-const
references or free functions are out of scope and belong to TSan, which
CI runs alongside this lint.

Exit codes: 0 clean, 1 violations found, 2 parse/usage error.
"""

import argparse
import re
import sys
from pathlib import Path

# (header, implementation, class name) triples under lint.
TARGETS = [
    ("src/core/network.hpp", "src/core/network.cpp", "Network"),
    ("src/wormhole/fabric.hpp", "src/wormhole/fabric.cpp", "Fabric"),
    ("src/core/node_interface.hpp", "src/core/node_interface.cpp",
     "NodeInterface"),
]

# Header-only arena/SoA containers holding state relocated out of the
# TARGETS classes. Members must carry [shard:] tags (so a field moved into
# a container cannot silently lose its classification); there is no
# closure to walk — their methods run in whatever phase the caller is in.
HEADER_TARGETS = [
    ("src/sim/inbox_ring.hpp", "InboxRing"),
    ("src/wormhole/link_gate.hpp", "ExclusiveLinkGate"),
]

# Shard-phase entry points: (class, method). The closure starts here.
ROOTS = [
    ("Network", "step_shard"),
    ("Fabric", "step_nodes"),
    ("NodeInterface", "pump_streams"),
]

# Member expression prefix -> class of the object it designates, for the
# cross-class calls that occur in shard-phase code.
CROSS_CLASS_CALLS = [
    (re.compile(r"\bfabric_\s*\.\s*(\w+)\s*\("), "Fabric"),
    (re.compile(r"\binterfaces_\s*\[[^]]*\]\s*->\s*(\w+)\s*\("),
     "NodeInterface"),
]

TAG_RE = re.compile(r"\[shard:\s*(seq|owned|ro)\]")
MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+)?[\w:<>,*&\s]+?[\s&*]([A-Za-z]\w*_)\s*"
    r"(?:=[^;()]*|\{[^;]*\})?;")
MUTATING_METHODS = (
    "push_back|emplace_back|pop_back|push_front|pop_front|push|pop|insert|"
    "erase|clear|resize|assign|emplace|reserve|swap|mark_delivered|"
    "set_\\w+|reset|emit|fork|advance|claim")


def strip_comments(text):
    """Remove //, /* */ comments and string literals, preserving newlines."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append("\n" * text.count("\n", i, j))
            i = j
        elif c in "\"'":
            quote, j = c, i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def class_body(text, class_name, path):
    """The text between the braces of `class class_name { ... };`."""
    m = re.search(r"\bclass\s+%s\b[^;{]*\{" % class_name, text)
    if not m:
        sys.exit("shardlint: cannot find class %s in %s" % (class_name, path))
    depth, i = 1, m.end()
    while i < len(text) and depth:
        depth += {"{": 1, "}": -1}.get(text[i], 0)
        i += 1
    return text[m.end():i - 1], text[:m.end()].count("\n")


def parse_members(header_path, class_name):
    """{member name: tag}; exits 2 when a member lacks its tag."""
    text = header_path.read_text()
    body, first_line = class_body(text, class_name, header_path)
    lines = body.split("\n")
    members, missing = {}, []
    depth = 0  # brace depth inside the class body: declarations sit at 0,
    for idx, line in enumerate(lines):  # inline method bodies above 0
        code = line.split("//")[0]
        at_declaration_depth = depth == 0
        depth += code.count("{") - code.count("}")
        m = MEMBER_RE.match(code)
        if not m or "(" in code or not at_declaration_depth:
            continue
        name = m.group(1)
        if not name.endswith("_"):
            continue  # nested-struct fields are not shard-tagged
        tag = TAG_RE.search(line)
        back = idx - 1
        while tag is None and back >= 0 and lines[back].lstrip().startswith(
                ("//", "///")):
            tag = TAG_RE.search(lines[back])
            back -= 1
        if tag is None:
            missing.append("%s:%d: %s::%s has no [shard: seq|owned|ro] tag" %
                           (header_path, first_line + idx + 2, class_name,
                            name))
        else:
            members[name] = tag.group(1)
    return members, missing


METHOD_DEF_RE = re.compile(
    r"^[\w:<>,*&\s~]*?\b(\w+)::(\w+)\s*\(([^;{]*)\)\s*(?:const)?\s*"
    r"(?:noexcept)?\s*\{", re.M)


def parse_methods(impl_path, class_name):
    """{method name: [(params, body, line)]} for out-of-line definitions."""
    text = strip_comments(impl_path.read_text())
    methods = {}
    for m in METHOD_DEF_RE.finditer(text):
        if m.group(1) != class_name:
            continue
        depth, i = 1, m.end()
        while i < len(text) and depth:
            depth += {"{": 1, "}": -1}.get(text[i], 0)
            i += 1
        methods.setdefault(m.group(2), []).append(
            (m.group(3), text[m.end():i - 1], text[:m.start()].count("\n") + 1))
    return methods


def shard_overloads(overloads):
    """Prefer the ShardIo-taking overload(s); all of them otherwise."""
    shard = [o for o in overloads if "ShardIo" in o[0] or "ShardContext" in o[0]]
    return shard or overloads


def reachable_bodies(all_methods):
    """Closure of (class, method) from ROOTS; yields (class, method, body)."""
    seen, queue, bodies = set(), list(ROOTS), []
    while queue:
        cls, name = queue.pop(0)
        if (cls, name) in seen or name not in all_methods.get(cls, {}):
            continue
        seen.add((cls, name))
        for params, body, line in shard_overloads(all_methods[cls][name]):
            bodies.append((cls, name, body, line))
            for callee in re.findall(r"(?<![\w.>:])(\w+)\s*\(", body):
                if callee in all_methods.get(cls, {}):
                    queue.append((cls, callee))
            for pattern, target_cls in CROSS_CLASS_CALLS:
                for callee in pattern.findall(body):
                    queue.append((target_cls, callee))
    return bodies


def write_violations(cls, method, body, start_line, members, impl_path):
    """Writes to seq/ro members inside one shard-reachable body."""
    found = []
    for name, tag in sorted(members.items()):
        if tag == "owned":
            continue
        patterns = [
            r"(?<![\w.])%s\s*(?:=(?!=)|\+=|-=|\*=|/=|%%=|\|=|&=|\^=|<<=|>>=)"
            % name,
            r"(?:\+\+|--)\s*%s\b" % name,
            r"(?<![\w.])%s\s*(?:\+\+|--)" % name,
            r"(?<![\w.])%s\s*(?:\.|->)\s*(?:%s)\s*\(" % (name,
                                                         MUTATING_METHODS),
        ]
        for pat in patterns:
            m = re.search(pat, body)
            if m:
                line = start_line + body.count("\n", 0, m.start())
                found.append(
                    "%s:%d: %s::%s writes [shard: %s] member %s during the "
                    "shard phase" % (impl_path, line, cls, method, tag, name))
                break
    return found


def main():
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    args = parser.parse_args()
    root = Path(args.root)

    errors, members_by_class, methods_by_class, impls = [], {}, {}, {}
    for header, impl, cls in TARGETS:
        hpath, ipath = root / header, root / impl
        if not hpath.is_file() or not ipath.is_file():
            sys.exit("shardlint: missing %s or %s" % (hpath, ipath))
        members, missing = parse_members(hpath, cls)
        if not members and not missing:
            sys.exit("shardlint: parsed no members for %s — parser broken?"
                     % cls)
        errors += missing
        members_by_class[cls] = members
        methods_by_class[cls] = parse_methods(ipath, cls)
        impls[cls] = impl
        if not methods_by_class[cls]:
            sys.exit("shardlint: parsed no methods for %s — parser broken?"
                     % cls)

    for header, cls in HEADER_TARGETS:
        hpath = root / header
        if not hpath.is_file():
            sys.exit("shardlint: missing %s" % hpath)
        members, missing = parse_members(hpath, cls)
        if not members and not missing:
            sys.exit("shardlint: parsed no members for %s — parser broken?"
                     % cls)
        errors += missing
        members_by_class[cls] = members

    for cls, name in ROOTS:
        if name not in methods_by_class[cls]:
            sys.exit("shardlint: shard root %s::%s not found" % (cls, name))

    bodies = reachable_bodies(methods_by_class)
    for cls, method, body, line in bodies:
        errors += write_violations(cls, method, body, line,
                                   members_by_class[cls], impls[cls])

    if errors:
        print("\n".join(sorted(errors)))
        print("shardlint: %d violation(s)" % len(errors))
        return 1
    tagged = sum(len(m) for m in members_by_class.values())
    print("shardlint: clean (%d tagged members, %d shard-reachable bodies)"
          % (tagged, len(bodies)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
