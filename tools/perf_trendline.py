#!/usr/bin/env python3
"""Perf trendline gate for the engine and snap benches (CI and local use).

Reads one or more wavesim.bench.v1 exports (``bench_engine --json``,
``bench_snap --json``), merges their kcycles/s points, and compares the
merged set against the committed baseline
``bench/baselines/engine.json``. Emits a markdown table (appended to
``$GITHUB_STEP_SUMMARY`` when set, printed otherwise) and applies a soft
gate per point:

* ratio <= FAIL_BELOW (0.5x baseline)  -> exit 1 (hard regression)
* ratio <= WARN_BELOW (0.8x baseline)  -> ::warning:: annotation, exit 0
* otherwise                            -> ok

The thresholds are deliberately loose: CI runners vary in core count and
clock, and the baseline records the host_threads it was measured on. The
gate exists to catch order-of-magnitude regressions (an accidental return
to per-cycle stepping, a lost fast path), not 10% noise.

Usage:
  tools/perf_trendline.py ENGINE.json [SNAP.json ...] \
      [--baseline bench/baselines/engine.json]
  tools/perf_trendline.py ENGINE.json SNAP.json --write-baseline
"""

from __future__ import annotations

import argparse
import json
import os
import sys

WARN_BELOW = 0.8
FAIL_BELOW = 0.5

BASELINE_SCHEMA = "wavesim.perfbase.v1"


def extract_points(doc: dict) -> dict[str, float]:
    """Flatten one bench export into {point-key: kcycles/s}.

    Keys are stable across runs so the baseline can be diffed by hand.
    ENGINE exports yield ``seq``, ``par-s<shards>``,
    ``wh-par-s<shards>-L<lookahead>``, ``fault-seq``/``fault-par-s<shards>``
    (failure-storm legs); SNAP exports yield ``snap-plain``/``snap-armed``
    (checkpoint-armed step loop) and ``snap-warm`` (warm-started span).
    """
    extra = doc["extra"]
    experiment = doc.get("experiment", "ENGINE")
    if experiment == "SNAP":
        return {
            "snap-plain": float(extra["plain_kcycles_per_s"]),
            "snap-armed": float(extra["armed_kcycles_per_s"]),
            "snap-warm": float(extra["warm_kcycles_per_s"]),
        }
    points: dict[str, float] = {"seq": float(extra["seq_kcycles_per_s"])}
    for p in extra["engine_points"]:
        points[f"par-s{p['shards']}"] = float(p["kcycles_per_s"])
    for p in extra.get("lookahead_points", []):
        key = f"wh-par-s{p['shards']}-L{p['lookahead']}"
        points[key] = float(p["kcycles_per_s"])
    for p in extra.get("fault_points", []):
        key = ("fault-seq" if p.get("shards", 0) == 0
               else f"fault-par-s{p['shards']}")
        points[key] = float(p["kcycles_per_s"])
    return points


def load_baseline(path: str) -> dict:
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != BASELINE_SCHEMA:
        raise SystemExit(f"{path}: expected schema {BASELINE_SCHEMA}, "
                         f"got {doc.get('schema')!r}")
    return doc


def write_baseline(path: str, doc: dict, points: dict[str, float]) -> None:
    os.makedirs(os.path.dirname(path), exist_ok=True)
    baseline = {
        "schema": BASELINE_SCHEMA,
        "generated_by": doc.get("generated_by", "unknown"),
        "host_threads": doc.get("host_threads", 0),
        "points": {k: round(v, 1) for k, v in sorted(points.items())},
    }
    with open(path, "w") as f:
        json.dump(baseline, f, indent=2)
        f.write("\n")
    print(f"baseline written: {path}")


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("current", nargs="+",
                    help="bench --json export(s); points are merged")
    ap.add_argument("--baseline", default="bench/baselines/engine.json")
    ap.add_argument("--write-baseline", action="store_true",
                    help="refresh the baseline from the current run and exit")
    args = ap.parse_args()

    doc = {}
    points: dict[str, float] = {}
    for path in args.current:
        with open(path) as f:
            doc = json.load(f)
        if doc.get("schema") != "wavesim.bench.v1":
            raise SystemExit(f"{path}: not a wavesim.bench.v1 export")
        if not doc.get("ok", False):
            raise SystemExit(f"{path}: bench run reported ok=false")
        for key, value in extract_points(doc).items():
            if key in points:
                raise SystemExit(f"{path}: duplicate point {key!r}")
            points[key] = value

    if args.write_baseline:
        write_baseline(args.baseline, doc, points)
        return 0

    base = load_baseline(args.baseline)
    base_points = base["points"]

    lines = [
        "## Engine perf trendline",
        "",
        f"current: {doc.get('generated_by', '?')} on "
        f"{doc.get('host_threads', '?')} host thread(s); baseline: "
        f"{base.get('generated_by', '?')} on "
        f"{base.get('host_threads', '?')} host thread(s)",
        "",
    ]
    overhead = doc["extra"].get("fault_overhead_ratio")
    if overhead is not None:
        lines.append(f"fault hook healthy-path overhead: {overhead:.3f}x "
                     "(<= 1.05x gate enforced by bench_engine itself)")
        lines.append("")
    lines += [
        "| point | kcycles/s | baseline | ratio | verdict |",
        "|---|---|---|---|---|",
    ]
    failures: list[str] = []
    warnings: list[str] = []
    for key in sorted(set(points) | set(base_points)):
        cur = points.get(key)
        ref = base_points.get(key)
        if cur is None:
            lines.append(f"| {key} | — | {ref:.1f} | — | missing point |")
            warnings.append(f"{key}: present in baseline but not in this run")
            continue
        if ref is None:
            lines.append(f"| {key} | {cur:.1f} | — | — | new point |")
            continue
        ratio = cur / ref if ref > 0 else float("inf")
        if ratio <= FAIL_BELOW:
            verdict = "FAIL"
            failures.append(f"{key}: {cur:.1f} kc/s is {ratio:.2f}x baseline "
                            f"{ref:.1f} (<= {FAIL_BELOW}x)")
        elif ratio <= WARN_BELOW:
            verdict = "warn"
            warnings.append(f"{key}: {cur:.1f} kc/s is {ratio:.2f}x baseline "
                            f"{ref:.1f} (<= {WARN_BELOW}x)")
        else:
            verdict = "ok"
        lines.append(f"| {key} | {cur:.1f} | {ref:.1f} | {ratio:.2f} "
                     f"| {verdict} |")

    summary = "\n".join(lines) + "\n"
    step_summary = os.environ.get("GITHUB_STEP_SUMMARY")
    if step_summary:
        with open(step_summary, "a") as f:
            f.write(summary)
    print(summary)

    for w in warnings:
        print(f"::warning::perf trendline: {w}")
    for fmsg in failures:
        print(f"::error::perf trendline: {fmsg}", file=sys.stderr)
    if failures:
        return 1
    print("perf trendline ok "
          f"({len(points)} points, warn<= {WARN_BELOW}x, fail<= {FAIL_BELOW}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
