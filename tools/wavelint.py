#!/usr/bin/env python3
"""wavelint -- multi-pass static analysis for wavesim's two load-bearing
invariants: bit-identical determinism and snapshot completeness.

The repo enforces both invariants dynamically (digest sweeps over engines
x shards x lookahead, `restore(snapshot(S))` equivalence in test_snap),
but a dynamic sweep can only catch a forgotten field whose effect falls
inside the tested window. wavelint closes that gap at lint time with
three passes sharing one parsing infrastructure (member tables,
annotation grammar, call-graph closure, fail-loudly-on-unparsable
exit 2):

* Pass `shard` -- the engine shard-safety conventions, absorbed from
  tools/shardlint.py (which remains as a thin compatibility shim).
  Every `_`-suffixed member of the classes with a shard phase carries a
  `[shard: seq|owned|ro]` tag; the call graph is closed over from the
  shard-phase roots and a write to a seq/ro member inside the closure is
  a violation. See docs/ENGINE.md rule 1.

* Pass `snap` -- snapshot completeness (docs/SERVICE.md: wavesim.snap.v1
  captures "every mutable bit" of simulation state). For every class
  that implements `snap(snap::Archive&)` -- discovered by scanning every
  header under src/ -- each `_`-suffixed data member must either be
  referenced inside that class's snap() closure (the snap() body plus
  same-class methods it calls, so serialization accessors like
  CircuitTable::active_ids count via reachability, not suppression) or
  carry a `[snap: skip]` tag with a justification. Reference members are
  exempt by construction: they are non-owned wiring, re-established when
  the Simulation is rebuilt from the config section, and the owning side
  of the reference is itself under lint. Classes that *derive* from a
  snap-bearing base without overriding snap() (the TrafficPattern
  hierarchy) get the same member check: the inherited snap() cannot
  serialize members it has never heard of.

* Pass `det` -- determinism hazards in code reachable from the result-,
  digest-, and snapshot-producing roots. Every subsystem under src/
  feeds a versioned result schema (wavesim.*.v1), the snapshot byte
  stream, or a digest, so the reachable set is over-approximated as all
  of src/ -- sound, and the right trade for a regex-level analysis (a
  missed hazard is a silent nondeterminism; a flagged-but-harmless one
  costs a one-line justification). Flagged hazards:
    - iteration (range-for / .begin()) over std::unordered_map or
      std::unordered_set variables -- bucket order is not part of the
      determinism contract and must never leak into result, digest, or
      snapshot bytes;
    - wall-clock reads (steady_clock/system_clock::now, std::time,
      gettimeofday, ...);
    - std::rand / srand / std::random_device (all randomness must flow
      through the seeded sim::Rng);
    - pointer-keyed std::map / std::set (iteration order = allocation
      order, which ASLR and allocator state make nondeterministic).
  The escape is a `[det: local]` tag with a justification on the
  hazardous line (or the comment directly above) for provably
  order-insensitive uses: collect-then-sort, membership-only sets,
  wall-clock that only feeds reported timing measurements.

Annotation grammar (shared by all passes; docs/LINTS.md spells it out):
a tag is `[pass: value]` inside a comment on the declaration/hazard line
or the `//` comment line(s) directly above it. The `snap: skip` and
`det: local` escapes additionally require a justification: prose on the
tag's comment line beyond the tag itself. An escape without a
justification is a violation -- tools/test_wavelint.py mutation-tests
both directions (dropped serialization must flag; stripped justification
must flag) against fixtures and against every escape in the real tree.

The parsers are deliberately regex-based and conservative: they
understand the project's own style (one declaration per line, members
suffixed `_`, out-of-line definitions in the sibling .cpp) and fail
loudly (exit 2) on anything they cannot parse rather than guessing.
Writes smuggled through non-const references, type aliases hiding an
unordered container, and pointer comparisons inside custom comparators
are out of scope and belong to TSan / the digest sweeps, which CI runs
alongside this lint.

Exit codes: 0 clean, 1 violations found, 2 parse/usage error.
"""

import argparse
import re
import sys
from pathlib import Path

# =============================================================================
# Shared parsing infrastructure
# =============================================================================


def die(msg):
    """Fail loudly on anything unparsable: exit 2, distinct from the
    exit-1 violations channel, so CI cannot mistake a broken parse for
    a clean tree."""
    print(msg, file=sys.stderr)
    sys.exit(2)


def strip_comments(text):
    """Remove //, /* */ comments and string literals, preserving newlines."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append("\n" * text.count("\n", i, j))
            i = j
        elif c == "'" and 0 < i and text[i - 1].isalnum() \
                and i + 1 < n and text[i + 1].isalnum():
            out.append(c)  # digit separator (20'000), not a char literal
            i += 1
        elif c in "\"'":
            quote, j = c, i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def match_braces(text, start):
    """Index one past the brace block opened just before `start`."""
    depth, i = 1, start
    while i < len(text) and depth:
        depth += {"{": 1, "}": -1}.get(text[i], 0)
        i += 1
    return i


CLASS_RE = re.compile(r"\b(class|struct)\s+(\w+)(\s*final)?([^;{(]*)\{")


def scan_classes(text):
    """Yield (name, bases, body, body_line) for every top-level-ish class
    or struct definition in `text` (raw, comments intact). Nested classes
    are yielded too; their members are attributed to the inner class only
    because parse_member_decls skips lines below brace depth 0."""
    for m in CLASS_RE.finditer(text):
        head_tail = m.group(4)
        if "enum" in text[max(0, m.start() - 8):m.start()]:
            continue  # enum class
        end = match_braces(text, m.end())
        bases = []
        if head_tail.strip().startswith(":"):
            bases = re.findall(r"(?:public|protected|private)?\s*([\w:]+)",
                               head_tail.strip()[1:])
            bases = [b.split("::")[-1] for b in bases if b not in
                     ("public", "protected", "private")]
        yield (m.group(2), bases, text[m.end():end - 1],
               text[:m.end()].count("\n"))


def class_body(text, class_name, path):
    """The text between the braces of `class class_name { ... };`."""
    m = re.search(r"\b(?:class|struct)\s+%s\b[^;{(]*\{" % class_name, text)
    if not m:
        die("wavelint: cannot find class %s in %s" % (class_name, path))
    end = match_braces(text, m.end())
    return text[m.end():end - 1], text[:m.end()].count("\n")


MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+)?[\w:<>,*&\s]+?[\s&*]([A-Za-z]\w*_)\s*"
    r"(?:=[^;()]*|\{[^;]*\})?;")


def parse_member_decls(body):
    """[(name, line_index, is_reference)] for `_`-suffixed data members
    declared at brace depth 0 of a class body (nested-struct fields and
    locals of inline methods sit deeper and are skipped)."""
    lines = body.split("\n")
    decls = []
    depth = 0
    for idx, line in enumerate(lines):
        code = line.split("//")[0]
        at_declaration_depth = depth == 0
        depth += code.count("{") - code.count("}")
        m = MEMBER_RE.match(code)
        if not m or "(" in code or not at_declaration_depth:
            continue
        if re.match(r"\s*(static|constexpr)\b", code):
            continue  # class-wide constants are not instance state
        name = m.group(1)
        is_reference = bool(re.search(r"&\s*%s\s*(?:=|;|\{)" % name, code))
        decls.append((name, idx, is_reference))
    return decls


def find_tag(lines, idx, tag_re):
    """Search declaration/hazard line `idx`, then the comment line(s)
    directly above, for `tag_re`. Returns (line_text, match) or
    (None, None)."""
    m = tag_re.search(lines[idx])
    if m:
        return lines[idx], m
    back = idx - 1
    while back >= 0 and lines[back].lstrip().startswith(("//", "///")):
        m = tag_re.search(lines[back])
        if m:
            return lines[back], m
        back -= 1
    return None, None


def tag_justification(tag_line, tag_match):
    """Prose on the tag's comment line beyond the tag itself (the escape
    grammar requires a reason, so a tag cannot silence the lint without
    explaining itself). Returns the stripped justification text."""
    comment = tag_line
    m = re.search(r"//+!?<?", comment)
    if m:
        comment = comment[m.end():]
    comment = comment.replace(tag_match.group(0), " ")
    comment = re.sub(r"[^\w]+", " ", comment).strip()
    return comment if re.search(r"\w{2,}", comment) else ""


METHOD_DEF_RE = re.compile(
    r"^[\w:<>,*&\s~]*?\b(\w+)::(\w+)\s*\(([^;{]*)\)\s*(?:const)?\s*"
    r"(?:noexcept)?\s*\{", re.M)


def parse_methods(impl_text, class_name):
    """{method name: [(params, body, line)]} for out-of-line definitions
    of `class_name` in already comment-stripped `impl_text`."""
    methods = {}
    for m in METHOD_DEF_RE.finditer(impl_text):
        if m.group(1) != class_name:
            continue
        end = match_braces(impl_text, m.end())
        methods.setdefault(m.group(2), []).append(
            (m.group(3), impl_text[m.end():end - 1],
             impl_text[:m.start()].count("\n") + 1))
    return methods


INLINE_METHOD_RE = re.compile(
    r"(?:^|\n)[ \t]*[\w:<>,*&~\s]*?\b(\w+)\s*\(([^;{}]*)\)\s*"
    r"(?:const)?\s*(?:noexcept)?\s*(?:override)?\s*(?:final)?\s*"
    r"(?:->\s*[\w:<>&*\s]+?)?(?:\s*:\s*[^{;]*)?\{")


def parse_inline_methods(body_stripped):
    """{method name: [(params, body)]} for methods defined inline in a
    comment-stripped class body."""
    methods = {}
    for m in INLINE_METHOD_RE.finditer(body_stripped):
        end = match_braces(body_stripped, m.end())
        methods.setdefault(m.group(1), []).append(
            (m.group(2), body_stripped[m.end():end - 1]))
    return methods


# =============================================================================
# Pass `shard` -- engine shard-safety conventions (docs/ENGINE.md rule 1)
# =============================================================================

# (header, implementation, class name) triples under lint.
SHARD_TARGETS = [
    ("src/core/network.hpp", "src/core/network.cpp", "Network"),
    ("src/wormhole/fabric.hpp", "src/wormhole/fabric.cpp", "Fabric"),
    ("src/core/node_interface.hpp", "src/core/node_interface.cpp",
     "NodeInterface"),
]

# Header-only arena/SoA containers holding state relocated out of the
# SHARD_TARGETS classes. Members must carry [shard:] tags (so a field
# moved into a container cannot silently lose its classification); there
# is no closure to walk -- their methods run in the caller's phase.
SHARD_HEADER_TARGETS = [
    ("src/sim/inbox_ring.hpp", "InboxRing"),
    ("src/wormhole/link_gate.hpp", "ExclusiveLinkGate"),
]

# Shard-phase entry points: (class, method). The closure starts here.
SHARD_ROOTS = [
    ("Network", "step_shard"),
    ("Fabric", "step_nodes"),
    ("NodeInterface", "pump_streams"),
]

# Member expression prefix -> class of the object it designates, for the
# cross-class calls that occur in shard-phase code.
CROSS_CLASS_CALLS = [
    (re.compile(r"\bfabric_\s*\.\s*(\w+)\s*\("), "Fabric"),
    (re.compile(r"\binterfaces_\s*\[[^]]*\]\s*->\s*(\w+)\s*\("),
     "NodeInterface"),
]

SHARD_TAG_RE = re.compile(r"\[shard:\s*(seq|owned|ro)\]")
MUTATING_METHODS = (
    "push_back|emplace_back|pop_back|push_front|pop_front|push|pop|insert|"
    "erase|clear|resize|assign|emplace|reserve|swap|mark_delivered|"
    "set_\\w+|reset|emit|fork|advance|claim")


def parse_tagged_members(header_path, cls):
    """{member name: shard tag}; collects violations for missing tags."""
    text = header_path.read_text()
    body, first_line = class_body(text, cls, header_path)
    lines = body.split("\n")
    members, missing = {}, []
    for name, idx, _ in parse_member_decls(body):
        tag_line, tag = find_tag(lines, idx, SHARD_TAG_RE)
        if tag is None:
            missing.append("%s:%d: %s::%s has no [shard: seq|owned|ro] tag" %
                           (header_path, first_line + idx + 2, cls, name))
        else:
            members[name] = tag.group(1)
    return members, missing


def shard_overloads(overloads):
    """Prefer the ShardIo-taking overload(s); all of them otherwise."""
    shard = [o for o in overloads
             if "ShardIo" in o[0] or "ShardContext" in o[0]]
    return shard or overloads


def shard_reachable_bodies(all_methods):
    """Closure of (class, method) from SHARD_ROOTS."""
    seen, queue, bodies = set(), list(SHARD_ROOTS), []
    while queue:
        cls, name = queue.pop(0)
        if (cls, name) in seen or name not in all_methods.get(cls, {}):
            continue
        seen.add((cls, name))
        for params, body, line in shard_overloads(all_methods[cls][name]):
            bodies.append((cls, name, body, line))
            for callee in re.findall(r"(?<![\w.>:])(\w+)\s*\(", body):
                if callee in all_methods.get(cls, {}):
                    queue.append((cls, callee))
            for pattern, target_cls in CROSS_CLASS_CALLS:
                for callee in pattern.findall(body):
                    queue.append((target_cls, callee))
    return bodies


def shard_write_violations(cls, method, body, start_line, members, impl_path):
    """Writes to seq/ro members inside one shard-reachable body."""
    found = []
    for name, tag in sorted(members.items()):
        if tag == "owned":
            continue
        patterns = [
            r"(?<![\w.])%s\s*(?:=(?!=)|\+=|-=|\*=|/=|%%=|\|=|&=|\^=|<<=|>>=)"
            % name,
            r"(?:\+\+|--)\s*%s\b" % name,
            r"(?<![\w.])%s\s*(?:\+\+|--)" % name,
            r"(?<![\w.])%s\s*(?:\.|->)\s*(?:%s)\s*\(" % (name,
                                                         MUTATING_METHODS),
        ]
        for pat in patterns:
            m = re.search(pat, body)
            if m:
                line = start_line + body.count("\n", 0, m.start())
                found.append(
                    "%s:%d: %s::%s writes [shard: %s] member %s during the "
                    "shard phase" % (impl_path, line, cls, method, tag, name))
                break
    return found


def run_shard_pass(root):
    errors, members_by_class, methods_by_class, impls = [], {}, {}, {}
    for header, impl, cls in SHARD_TARGETS:
        hpath, ipath = root / header, root / impl
        if not hpath.is_file() or not ipath.is_file():
            die("wavelint: missing %s or %s" % (hpath, ipath))
        members, missing = parse_tagged_members(hpath, cls)
        if not members and not missing:
            die("wavelint: parsed no members for %s -- parser broken?"
                     % cls)
        errors += missing
        members_by_class[cls] = members
        methods_by_class[cls] = parse_methods(
            strip_comments(ipath.read_text()), cls)
        impls[cls] = impl
        if not methods_by_class[cls]:
            die("wavelint: parsed no methods for %s -- parser broken?"
                     % cls)

    for header, cls in SHARD_HEADER_TARGETS:
        hpath = root / header
        if not hpath.is_file():
            die("wavelint: missing %s" % hpath)
        members, missing = parse_tagged_members(hpath, cls)
        if not members and not missing:
            die("wavelint: parsed no members for %s -- parser broken?"
                     % cls)
        errors += missing
        members_by_class[cls] = members

    for cls, name in SHARD_ROOTS:
        if name not in methods_by_class[cls]:
            die("wavelint: shard root %s::%s not found" % (cls, name))

    bodies = shard_reachable_bodies(methods_by_class)
    for cls, method, body, line in bodies:
        errors += shard_write_violations(cls, method, body, line,
                                         members_by_class[cls], impls[cls])
    tagged = sum(len(m) for m in members_by_class.values())
    return errors, ("%d tagged members, %d shard-reachable bodies"
                    % (tagged, len(bodies)))


# =============================================================================
# Pass `snap` -- snapshot completeness (wavesim.snap.v1, docs/SERVICE.md)
# =============================================================================

SNAP_TAG_RE = re.compile(r"\[snap:\s*skip\]")
SNAP_METHOD_RE = re.compile(r"\bsnap\s*\(\s*(?:wavesim::)?snap::Archive\s*&")
CALLEE_RE = re.compile(r"(?<![\w.>:])(\w+)\s*\(")


def src_headers(root):
    headers = sorted((root / "src").rglob("*.hpp"))
    if not headers:
        die("wavelint: no headers under %s/src -- wrong --root?"
                 % root)
    return headers


def snap_closure_text(cls, snap_bodies, inline_methods, impl_methods):
    """Concatenated bodies of snap() plus every same-class method
    transitively called from it (serialization accessors count as
    references via reachability, mirroring the shard pass's closure)."""
    texts, seen, queue = [], set(), list(snap_bodies)
    while queue:
        body = queue.pop(0)
        texts.append(body)
        for callee in CALLEE_RE.findall(body):
            if callee in seen or callee == "snap":
                continue
            seen.add(callee)
            for params, cbody in inline_methods.get(callee, []):
                queue.append(cbody)
            for params, cbody, line in impl_methods.get(callee, []):
                queue.append(cbody)
    return "\n".join(texts)


def check_snap_members(header, cls, body, first_line, closure, errors,
                       inherited_from=None):
    """Shared member walk: each non-reference `_` member must be
    referenced in `closure` (None for derived classes whose base snap()
    cannot reference them) or carry a justified [snap: skip] tag."""
    lines = body.split("\n")
    checked = 0
    for name, idx, is_reference in parse_member_decls(body):
        if is_reference:
            continue  # non-owned wiring, re-established by construction
        checked += 1
        if closure is not None and re.search(r"\b%s\b" % name, closure):
            continue
        tag_line, tag = find_tag(lines, idx, SNAP_TAG_RE)
        where = "%s:%d" % (header, first_line + idx + 2)
        if tag is None:
            if inherited_from:
                errors.append(
                    "%s: %s::%s is not serialized -- %s inherits snap() "
                    "from %s, which cannot reference it; override snap() "
                    "or tag the member [snap: skip] with a justification"
                    % (where, cls, name, cls, inherited_from))
            else:
                errors.append(
                    "%s: %s::%s is not referenced in %s::snap() and has "
                    "no [snap: skip] tag -- serialize it or justify the "
                    "skip" % (where, cls, name, cls))
        elif not tag_justification(tag_line, tag):
            errors.append(
                "%s: %s::%s has a [snap: skip] tag without a "
                "justification -- say why the member is not snapshot "
                "state" % (where, cls, name))
    return checked


def run_snap_pass(root):
    errors = []
    # First sweep: discover every snap-bearing class across all headers.
    all_classes = []  # (header, name, bases, body, first_line)
    for header in src_headers(root):
        text = header.read_text()
        for name, bases, body, first_line in scan_classes(text):
            all_classes.append((header, name, bases, body, first_line))
    snap_classes = {name for _, name, _, body, _ in all_classes
                    if SNAP_METHOD_RE.search(body)}
    if not snap_classes:
        die("wavelint: discovered no snap(snap::Archive&) classes -- "
                 "parser broken?")

    classes_checked = members_checked = 0
    for header, cls, bases, body, first_line in all_classes:
        if cls in ("Archive", "Snapshot"):
            continue  # the serialization substrate itself, not model state
        declares = SNAP_METHOD_RE.search(body) is not None
        inherited = next((b for b in bases if b in snap_classes), None)
        if not declares and inherited is None:
            continue
        body_stripped = strip_comments(body)
        inline_methods = parse_inline_methods(body_stripped)
        closure = None
        if declares:
            snap_bodies = [b for p, b in inline_methods.get("snap", [])
                           if "Archive" in p]
            impl_methods = {}
            impl = header.with_suffix(".cpp")
            if impl.is_file():
                impl_methods = parse_methods(
                    strip_comments(impl.read_text()), cls)
            snap_bodies += [b for p, b, _ in impl_methods.get("snap", [])]
            if not snap_bodies:
                die(
                    "wavelint: %s declares snap(snap::Archive&) but no "
                    "definition was found inline or in %s -- parser or "
                    "layout broken?" % (cls, impl))
            closure = snap_closure_text(cls, snap_bodies, inline_methods,
                                        impl_methods)
        classes_checked += 1
        members_checked += check_snap_members(
            header, cls, body, first_line, closure, errors,
            inherited_from=None if declares else inherited)
    return errors, ("%d snap classes, %d members checked"
                    % (classes_checked, members_checked))


# =============================================================================
# Pass `det` -- determinism hazards (docs/ENGINE.md determinism rules)
# =============================================================================

DET_TAG_RE = re.compile(r"\[det:\s*local\]")
UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set)\s*<.*>\s*&?\s*(\w+)\s*(?:[;={(]|$)")
# Wall-clock sources. sim code is full of `now()` cycle accessors, so
# only the std clock types and the libc entry points match.
WALLCLOCK_RE = re.compile(
    r"\b(?:steady_clock|system_clock|high_resolution_clock)\s*::\s*now\b"
    r"|\bstd::time\s*\(|(?<![\w.:])gettimeofday\s*\("
    r"|\bclock_gettime\s*\(|(?<![\w.:])(?:localtime|gmtime|strftime)\s*\(")
RAND_RE = re.compile(
    r"\bstd::s?rand\s*\(|(?<![\w.:])s?rand\s*\(|\brandom_device\b")
PTR_KEY_RE = re.compile(r"\bstd::(?:map|set)\s*<[^,>]*\*")


def det_files(root):
    files = sorted(p for p in (root / "src").rglob("*")
                   if p.suffix in (".hpp", ".cpp"))
    if not files:
        die("wavelint: no sources under %s/src -- wrong --root?" % root)
    return files


def unordered_names(text):
    """Names of unordered_map/set variables (members or locals) declared
    in `text`. Declarations are single-line in this codebase; a wrapped
    declaration would hide the name, so hazard sites also match plain
    `.begin()` calls on any discovered name from the paired header."""
    names = set()
    for line in strip_comments(text).split("\n"):
        m = UNORDERED_DECL_RE.search(line)
        if m:
            names.add(m.group(1))
    return names


def det_hazards(path, text, extra_unordered):
    """[(line_index, description)] for one file."""
    names = unordered_names(text) | extra_unordered
    hazards = []
    stripped = strip_comments(text).split("\n")
    iter_res = [
        (name,
         re.compile(r"for\s*\([^;]*:\s*(?:this->)?%s\b" % name),
         re.compile(r"\b%s\s*\.\s*c?r?begin\s*\(" % name))
        for name in sorted(names)
    ]
    for idx, code in enumerate(stripped):
        for name, range_re, begin_re in iter_res:
            if range_re.search(code) or begin_re.search(code):
                hazards.append(
                    (idx, "iterates unordered container '%s' (bucket order "
                     "must never reach results, digests, or snapshots)"
                     % name))
        if WALLCLOCK_RE.search(code):
            hazards.append((idx, "reads the wall clock (results must be a "
                            "pure function of config + seed)"))
        if RAND_RE.search(code):
            hazards.append((idx, "uses unseeded libc randomness (use the "
                            "seeded sim::Rng)"))
        if PTR_KEY_RE.search(code):
            hazards.append((idx, "declares a pointer-keyed ordered "
                            "container (iteration order = allocation "
                            "order)"))
    return hazards


def run_det_pass(root):
    errors = []
    files = det_files(root)
    header_unordered = {p: unordered_names(p.read_text())
                        for p in files if p.suffix == ".hpp"}
    hazards_found = escapes = 0
    for path in files:
        text = path.read_text()
        extra = set()
        if path.suffix == ".cpp":
            extra = header_unordered.get(path.with_suffix(".hpp"), set())
        lines = text.split("\n")
        for idx, what in det_hazards(path, text, extra):
            hazards_found += 1
            tag_line, tag = find_tag(lines, idx, DET_TAG_RE)
            where = "%s:%d" % (path.relative_to(root), idx + 1)
            if tag is None:
                errors.append(
                    "%s: %s -- prove it order-insensitive and tag "
                    "[det: local] with a justification, or fix it" %
                    (where, what))
            elif not tag_justification(tag_line, tag):
                errors.append(
                    "%s: [det: local] tag without a justification -- say "
                    "why the use is order-insensitive" % where)
            else:
                escapes += 1
    return errors, ("%d files scanned, %d hazards (%d justified escapes)"
                    % (len(files), hazards_found, escapes))


# =============================================================================
# Driver
# =============================================================================

PASSES = [
    ("shard", run_shard_pass),
    ("snap", run_snap_pass),
    ("det", run_det_pass),
]


def main(argv=None):
    parser = argparse.ArgumentParser(
        description=__doc__.split("\n")[0],
        epilog="exit codes: 0 clean, 1 violations, 2 parse/usage error")
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    parser.add_argument("--pass", dest="passes", action="append",
                        choices=[name for name, _ in PASSES] + ["all"],
                        help="pass to run (repeatable; default: all)")
    args = parser.parse_args(argv)
    root = Path(args.root)
    selected = args.passes or ["all"]
    if "all" in selected:
        selected = [name for name, _ in PASSES]

    any_errors = False
    for name, runner in PASSES:
        if name not in selected:
            continue
        errors, summary = runner(root)
        if errors:
            any_errors = True
            print("\n".join(sorted(errors)))
            print("wavelint[%s]: %d violation(s)" % (name, len(errors)))
        else:
            print("wavelint[%s]: clean (%s)" % (name, summary))
    return 1 if any_errors else 0


if __name__ == "__main__":
    sys.exit(main())
