#!/usr/bin/env python3
"""Self-test for tools/shardlint.py.

Builds a miniature repository fixture in a temp directory (the same file
layout shardlint expects) and checks the lint's three contracts:

1. A clean fixture passes (exit 0).
2. A field relocated from a linted class into an arena/SoA container
   without carrying its [shard:] tag along is flagged (exit 1, naming
   the member) — the regression this self-test exists for.
3. A shard-phase write to a [shard: seq] member is flagged (exit 1).
4. A serialization accessor (snap::Archive load path) that assigns
   [shard: seq] members is fine while it stays in the sequential
   phase — reachability, not a blanket suppression, is what keeps the
   lint quiet — and is flagged the moment shard-phase code calls it.

Finally the lint must pass against the real repository this file sits in.

Run directly (``python3 tools/test_shardlint.py``) or via ctest
(``shardlint_self_test``). Exit 0 = all checks pass.
"""

import subprocess
import sys
import tempfile
from pathlib import Path

TOOLS = Path(__file__).resolve().parent
REPO = TOOLS.parent
SHARDLINT = TOOLS / "shardlint.py"

NETWORK_HPP = """
namespace wavesim::core {
class Archive;
class Network {
 public:
  void step_shard(int begin, int end);
  void snap(Archive& ar);
 private:
  int counter_ = 0;       // [shard: seq]
  int per_node_ = 0;      // [shard: owned]
};
}  // namespace wavesim::core
"""

NETWORK_CPP_CLEAN = """
#include "core/network.hpp"
namespace wavesim::core {
void Network::step_shard(int begin, int end) {
  per_node_ += begin + end;
}
}  // namespace wavesim::core
"""

NETWORK_CPP_SEQ_WRITE = """
#include "core/network.hpp"
namespace wavesim::core {
void Network::step_shard(int begin, int end) {
  counter_ += begin + end;
}
}  // namespace wavesim::core
"""

# Serialization accessor: Network::snap() assigns the [shard: seq]
# member wholesale while restoring from an Archive. Legal — snapshots
# are taken and restored between steps, outside the shard phase — and
# the lint must reach that verdict from the call graph alone, without a
# suppression on the member or the method.
NETWORK_CPP_SNAP_ACCESSOR = """
#include "core/network.hpp"
namespace wavesim::core {
void Network::step_shard(int begin, int end) {
  per_node_ += begin + end;
}
void Network::snap(Archive& ar) {
  counter_ = 0;
  per_node_ = 0;
}
}  // namespace wavesim::core
"""

# The same accessor called from shard-phase code: now its seq write is
# inside the closure and must be flagged.
NETWORK_CPP_SNAP_IN_SHARD = """
#include "core/network.hpp"
namespace wavesim::core {
void Network::step_shard(int begin, int end) {
  per_node_ += begin + end;
  snap(scratch_archive());
}
void Network::snap(Archive& ar) {
  counter_ = 0;
  per_node_ = 0;
}
}  // namespace wavesim::core
"""

FABRIC_HPP = """
namespace wavesim::wh {
class Fabric {
 public:
  void step_nodes(int at);
 private:
  int arrivals_ = 0;  // [shard: owned]
};
}  // namespace wavesim::wh
"""

FABRIC_CPP = """
#include "wormhole/fabric.hpp"
namespace wavesim::wh {
void Fabric::step_nodes(int at) { arrivals_ += at; }
}  // namespace wavesim::wh
"""

NODE_IFACE_HPP = """
namespace wavesim::core {
class NodeInterface {
 public:
  void pump_streams(int at);
 private:
  int streams_ = 0;  // [shard: owned]
};
}  // namespace wavesim::core
"""

NODE_IFACE_CPP = """
#include "core/node_interface.hpp"
namespace wavesim::core {
void NodeInterface::pump_streams(int at) { streams_ += at; }
}  // namespace wavesim::core
"""

INBOX_RING_TAGGED = """
namespace wavesim::sim {
template <typename T>
class InboxRing {
 public:
  bool empty() const noexcept { return count_ == 0; }
 private:
  int head_ = 0;   // [shard: owned]
  int count_ = 0;  // [shard: owned]
};
}  // namespace wavesim::sim
"""

# The relocated-field regression: `count_` moved into the container
# without its tag.
INBOX_RING_UNTAGGED = """
namespace wavesim::sim {
template <typename T>
class InboxRing {
 public:
  bool empty() const noexcept { return count_ == 0; }
 private:
  int head_ = 0;   // [shard: owned]
  int count_ = 0;
};
}  // namespace wavesim::sim
"""

LINK_GATE_HPP = """
namespace wavesim::wh {
class ExclusiveLinkGate {
 private:
  int used_ = 0;  // [shard: owned]
};
}  // namespace wavesim::wh
"""


def write_fixture(root: Path, *, inbox_ring: str, network_cpp: str) -> None:
    files = {
        "src/core/network.hpp": NETWORK_HPP,
        "src/core/network.cpp": network_cpp,
        "src/wormhole/fabric.hpp": FABRIC_HPP,
        "src/wormhole/fabric.cpp": FABRIC_CPP,
        "src/core/node_interface.hpp": NODE_IFACE_HPP,
        "src/core/node_interface.cpp": NODE_IFACE_CPP,
        "src/sim/inbox_ring.hpp": inbox_ring,
        "src/wormhole/link_gate.hpp": LINK_GATE_HPP,
    }
    for rel, text in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)


def run_lint(root: Path) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(SHARDLINT), "--root", str(root)],
        capture_output=True, text=True)


def check(name: str, ok: bool, detail: str) -> bool:
    print(f"{'ok' if ok else 'FAIL'}: {name}")
    if not ok:
        print(detail)
    return ok


def main() -> int:
    results = []
    with tempfile.TemporaryDirectory(prefix="shardlint-fixture-") as tmp:
        root = Path(tmp)

        write_fixture(root, inbox_ring=INBOX_RING_TAGGED,
                      network_cpp=NETWORK_CPP_CLEAN)
        r = run_lint(root)
        results.append(check("clean fixture passes", r.returncode == 0,
                             r.stdout + r.stderr))

        write_fixture(root, inbox_ring=INBOX_RING_UNTAGGED,
                      network_cpp=NETWORK_CPP_CLEAN)
        r = run_lint(root)
        results.append(check(
            "relocated untagged container field is flagged",
            r.returncode == 1 and "InboxRing::count_" in r.stdout,
            r.stdout + r.stderr))
        results.append(check(
            "tagged sibling field is not flagged",
            "InboxRing::head_" not in r.stdout, r.stdout))

        write_fixture(root, inbox_ring=INBOX_RING_TAGGED,
                      network_cpp=NETWORK_CPP_SEQ_WRITE)
        r = run_lint(root)
        results.append(check(
            "shard-phase write to a seq member is flagged",
            r.returncode == 1 and "counter_" in r.stdout,
            r.stdout + r.stderr))

        write_fixture(root, inbox_ring=INBOX_RING_TAGGED,
                      network_cpp=NETWORK_CPP_SNAP_ACCESSOR)
        r = run_lint(root)
        results.append(check(
            "sequential-phase serialization accessor passes untouched",
            r.returncode == 0, r.stdout + r.stderr))

        write_fixture(root, inbox_ring=INBOX_RING_TAGGED,
                      network_cpp=NETWORK_CPP_SNAP_IN_SHARD)
        r = run_lint(root)
        results.append(check(
            "shard-reachable serialization accessor is flagged",
            r.returncode == 1 and "Network::snap" in r.stdout
            and "counter_" in r.stdout,
            r.stdout + r.stderr))

    r = run_lint(REPO)
    results.append(check("real repository is clean", r.returncode == 0,
                         r.stdout + r.stderr))

    if all(results):
        print(f"test_shardlint: {len(results)} checks passed")
        return 0
    return 1


if __name__ == "__main__":
    sys.exit(main())
