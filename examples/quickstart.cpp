// Quickstart: build a wave-switching network, send a few messages, and
// read the statistics.
//
//   $ ./quickstart
#include <cstdio>

#include "core/simulation.hpp"

int main() {
  using namespace wavesim;

  // 8x8 torus, 2 wave switches per router, CLRP managing the circuits.
  sim::SimConfig config = sim::SimConfig::default_torus();
  config.protocol.protocol = sim::ProtocolKind::kClrp;

  core::Simulation sim(config);

  // First message to a destination pays the circuit setup...
  const NodeId src = sim.topology().node_of({0, 0});
  const NodeId dest = sim.topology().node_of({4, 4});
  const MessageId cold = sim.send(src, dest, /*length_flits=*/128);
  sim.run_until_delivered();

  // ...subsequent messages reuse the cached circuit at wave speed.
  const MessageId warm = sim.send(src, dest, 128);
  sim.run_until_delivered();

  const auto& log = sim.network().messages();
  std::printf("cold message: %6.0f cycles (%s)\n", log.at(cold).latency(),
              core::to_string(log.at(cold).mode));
  std::printf("warm message: %6.0f cycles (%s)\n", log.at(warm).latency(),
              core::to_string(log.at(warm).mode));

  const auto stats = sim.stats();
  std::printf("\ncircuit cache: %llu hit(s), %llu miss(es)\n",
              static_cast<unsigned long long>(stats.cache_hits),
              static_cast<unsigned long long>(stats.cache_misses));
  std::printf("probes: %llu launched, %llu succeeded\n",
              static_cast<unsigned long long>(stats.probes_launched),
              static_cast<unsigned long long>(stats.probes_succeeded));
  std::printf("mean latency: %.1f cycles over %llu messages\n",
              stats.latency_mean,
              static_cast<unsigned long long>(stats.messages_delivered));
  return 0;
}
