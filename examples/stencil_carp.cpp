// Compiler-aided circuits (CARP) on a 5-point stencil: the "compiler"
// knows each node exchanges halos with the same 4 neighbors every
// iteration, so it pre-establishes circuits before the first round and
// releases them after the last -- exactly the usage the paper's section
// 3.2 describes. Compared against CLRP (circuits discovered on demand)
// and plain wormhole switching on the identical send sequence.
//
//   $ ./stencil_carp [iterations]
#include <cstdio>
#include <cstdlib>

#include "core/simulation.hpp"
#include "workload/trace.hpp"

namespace {

using namespace wavesim;

struct Row {
  const char* name;
  double mean_latency;
  double p99;
  Cycle makespan;
  std::uint64_t circuit_messages;
};

Row run_one(const char* name, sim::ProtocolKind protocol,
            const load::Trace& trace) {
  sim::SimConfig config = sim::SimConfig::default_torus();
  config.protocol.protocol = protocol;
  if (protocol == sim::ProtocolKind::kWormholeOnly) {
    config.router.wave_switches = 0;
  }
  config.protocol.circuit_cache_entries = 8;  // room for all 4 neighbors
  core::Simulation sim(config);
  if (!load::replay(trace, sim, 4'000'000)) {
    std::fprintf(stderr, "%s: drain cap hit\n", name);
  }
  const auto stats = sim.stats();
  return Row{name, stats.latency_mean, stats.latency_p99, sim.now(),
             stats.circuit_hit_count + stats.circuit_setup_count};
}

}  // namespace

int main(int argc, char** argv) {
  const std::int32_t iterations = argc > 1 ? std::atoi(argv[1]) : 6;
  topo::KAryNCube topo({8, 8}, true);
  const Cycle per_iter = 300;
  const std::int32_t halo = 64;

  const load::Trace carp_trace =
      load::make_stencil_trace(topo, iterations, halo, per_iter,
                               /*carp_circuits=*/true);
  const load::Trace plain_trace = carp_trace.without_circuit_ops();

  std::printf("5-point stencil, 8x8 torus, %d iterations, %d-flit halos\n\n",
              iterations, halo);
  std::printf("%-10s %12s %10s %10s %16s\n", "protocol", "mean-lat", "p99",
              "makespan", "circuit-msgs");
  for (const Row& row :
       {run_one("wormhole", sim::ProtocolKind::kWormholeOnly, plain_trace),
        run_one("clrp", sim::ProtocolKind::kClrp, plain_trace),
        run_one("carp", sim::ProtocolKind::kCarp, carp_trace)}) {
    std::printf("%-10s %12.1f %10.1f %10llu %16llu\n", row.name,
                row.mean_latency, row.p99,
                static_cast<unsigned long long>(row.makespan),
                static_cast<unsigned long long>(row.circuit_messages));
  }
  std::printf("\nCARP hides the setup latency by prefetching circuits before"
              " the first\nhalo exchange; CLRP pays it on the first "
              "iteration, wormhole on every hop.\n");
  return 0;
}
