// Command-line driver: run any configuration against any synthetic
// workload and print the statistics the benchmarks use.
//
//   $ ./wavesim_cli --topo 8x8 --protocol clrp --pattern working-set
//                   --load 0.15 --length 64 --cycles 10000
//   $ ./wavesim_cli --help
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>

#include "core/simulation.hpp"
#include "engine/engine.hpp"
#include "fault/schedule.hpp"
#include "harness/sweep.hpp"
#include "obs/observer.hpp"
#include "sim/build_info.hpp"
#include "sim/json.hpp"
#include "snap/runstate.hpp"
#include "verify/delivery.hpp"
#include "workload/generator.hpp"

namespace {

using namespace wavesim;

struct Options {
  std::string topo = "8x8";
  bool mesh = false;
  std::string protocol = "clrp";
  std::string routing = "dor";
  std::string pattern = "uniform";
  std::int32_t vcs = 2;
  std::int32_t k = 2;
  std::int32_t m = 2;
  std::int32_t cache = 8;
  std::string replacement = "lru";
  double load = 0.10;
  std::int32_t length = 64;
  Cycle warmup = 2000;
  Cycle cycles = 10000;
  std::uint64_t seed = 1;
  double faults = 0.0;
  std::string faults_file;  ///< wavesim.faults.v1 dynamic schedule
  bool pcs_only = false;
  bool virtual_circuits = false;
  std::int32_t max_packet = 0;
  bool histogram = false;
  std::string json_path;
  std::string trace_path;    ///< wavesim.trace.v1 (Perfetto-loadable)
  std::string metrics_path;  ///< wavesim.metrics.v1
  Cycle sample_every = 0;    ///< gauge sampling period; 0 = off
  std::int32_t replicas = 1;
  unsigned threads = 0;
  std::string engine = "seq";
  std::int32_t shards = 0;  ///< auto under --engine par unless shards_given
  bool shards_given = false;
  std::int64_t lookahead = 1;  ///< barrier lookahead for --engine par
  bool lookahead_given = false;
  Cycle checkpoint_every = 0;  ///< wavesim.snap.v1 checkpoint period
  bool checkpoint_every_given = false;
  std::string checkpoint_out;  ///< checkpoint file (+ .json metadata)
  std::string restore_path;    ///< resume from a wavesim.snap.v1 file
};

void usage() {
  std::printf(
      "wavesim_cli -- wave-switching network simulator\n\n"
      "  --topo RxC[xD..]    topology radices (default 8x8)\n"
      "  --mesh              mesh instead of torus\n"
      "  --protocol P        wormhole | clrp | carp (default clrp)\n"
      "  --routing R         dor | duato | west-first | negative-first\n"
      "                      (default dor)\n"
      "  --pattern P         uniform | hotspot | transpose | bit-reversal |\n"
      "                      bit-complement | tornado | neighbor | working-set\n"
      "  --vcs N             wormhole VCs (default 2)\n"
      "  --k N               wave switches (default 2; 0 with --protocol wormhole)\n"
      "  --m N               MB-m misroute budget (default 2)\n"
      "  --cache N           circuit-cache entries per node (default 8)\n"
      "  --replacement R     lru | lfu | fifo | random (default lru)\n"
      "  --load F            offered flits/node/cycle (default 0.10)\n"
      "  --length N          message length in flits (default 64)\n"
      "  --warmup N          warmup cycles (default 2000)\n"
      "  --cycles N          measured cycles (default 10000)\n"
      "  --seed N            RNG seed (default 1)\n"
      "  --faults F|PATH     static circuit-channel fault rate (number), or\n"
      "                      a wavesim.faults.v1 dynamic fault schedule file\n"
      "                      (mid-run link failures/recoveries; docs/FAULTS.md)\n"
      "  --pcs-only          no wormhole fallback (paper's k=1/w=0 router)\n"
      "  --virtual           virtual circuits (base clock; ablation)\n"
      "  --max-packet N      wormhole segmentation limit (default off)\n"
      "  --hist              print an ASCII latency histogram\n"
      "  --json PATH         write the statistics as JSON\n"
      "  --trace PATH        write a Chrome/Perfetto trace (wavesim.trace.v1)\n"
      "  --metrics PATH      write counters + histograms (wavesim.metrics.v1)\n"
      "  --sample-every N    sample gauge time series every N cycles\n"
      "                      (default 0 = off; adds samples to --metrics)\n"
      "  --replicas N        run N seeds and merge (wavesim.sweep.v1 export)\n"
      "  --threads N         worker threads for --replicas (0 = all cores)\n"
      "  --engine E          step engine: seq | par (default seq; par is\n"
      "                      bit-identical to seq, only wall time changes)\n"
      "  --shards N          shard count for --engine par (default: auto)\n"
      "  --lookahead L       barrier lookahead for --engine par (default 1;\n"
      "                      commits up to L cycles per synchronization,\n"
      "                      bit-identical to L=1)\n"
      "  --checkpoint-every C  write a wavesim.snap.v1 checkpoint every C\n"
      "                      cycles (requires --checkpoint-out)\n"
      "  --checkpoint-out PATH checkpoint file; PATH.json gets metadata.\n"
      "                      Written atomically, overwritten each period\n"
      "  --restore PATH      resume a checkpointed run; config/workload\n"
      "                      flags come from the snapshot. The finished\n"
      "                      run is bit-identical to an uninterrupted one\n"
      "                      under any --engine/--shards/--lookahead\n");
}

bool parse(int argc, char** argv, Options& opt) {
  auto need = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[i]);
      std::exit(2);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") return false;
    else if (arg == "--topo") opt.topo = need(i);
    else if (arg == "--mesh") opt.mesh = true;
    else if (arg == "--protocol") opt.protocol = need(i);
    else if (arg == "--routing") opt.routing = need(i);
    else if (arg == "--pattern") opt.pattern = need(i);
    else if (arg == "--vcs") opt.vcs = std::atoi(need(i));
    else if (arg == "--k") opt.k = std::atoi(need(i));
    else if (arg == "--m") opt.m = std::atoi(need(i));
    else if (arg == "--cache") opt.cache = std::atoi(need(i));
    else if (arg == "--replacement") opt.replacement = need(i);
    else if (arg == "--load") opt.load = std::atof(need(i));
    else if (arg == "--length") opt.length = std::atoi(need(i));
    else if (arg == "--warmup") opt.warmup = std::strtoull(need(i), nullptr, 10);
    else if (arg == "--cycles") opt.cycles = std::strtoull(need(i), nullptr, 10);
    else if (arg == "--seed") opt.seed = std::strtoull(need(i), nullptr, 10);
    else if (arg == "--faults") {
      // A plain number is the static fault rate; anything else is a
      // wavesim.faults.v1 schedule file.
      const char* value = need(i);
      char* end = nullptr;
      const double rate = std::strtod(value, &end);
      if (end != value && *end == '\0') opt.faults = rate;
      else opt.faults_file = value;
    }
    else if (arg == "--pcs-only") opt.pcs_only = true;
    else if (arg == "--virtual") opt.virtual_circuits = true;
    else if (arg == "--max-packet") opt.max_packet = std::atoi(need(i));
    else if (arg == "--hist") opt.histogram = true;
    else if (arg == "--json") opt.json_path = need(i);
    else if (arg == "--trace") opt.trace_path = need(i);
    else if (arg == "--metrics") opt.metrics_path = need(i);
    else if (arg == "--sample-every") opt.sample_every = std::strtoull(need(i), nullptr, 10);
    else if (arg == "--replicas") opt.replicas = std::atoi(need(i));
    else if (arg == "--threads") opt.threads = static_cast<unsigned>(std::atoi(need(i)));
    else if (arg == "--engine") opt.engine = need(i);
    else if (arg.rfind("--engine=", 0) == 0) opt.engine = arg.substr(9);
    else if (arg == "--shards") {
      opt.shards = std::atoi(need(i));
      opt.shards_given = true;
    }
    else if (arg == "--lookahead") {
      opt.lookahead = std::strtoll(need(i), nullptr, 10);
      opt.lookahead_given = true;
    }
    else if (arg == "--checkpoint-every") {
      opt.checkpoint_every = std::strtoull(need(i), nullptr, 10);
      opt.checkpoint_every_given = true;
    }
    else if (arg == "--checkpoint-out") opt.checkpoint_out = need(i);
    else if (arg == "--restore") opt.restore_path = need(i);
    else {
      std::fprintf(stderr, "unknown flag: %s (try --help)\n", arg.c_str());
      std::exit(2);
    }
  }
  return true;
}

/// Validate --engine/--shards and build the engine spec; exits 2 with a
/// clear message on a bad combination.
engine::EngineConfig build_engine_config(const Options& opt) {
  engine::EngineConfig cfg;
  const auto kind = engine::parse_engine_kind(opt.engine);
  if (!kind.has_value()) {
    std::fprintf(stderr, "error: --engine must be seq or par (got '%s')\n",
                 opt.engine.c_str());
    std::exit(2);
  }
  cfg.kind = *kind;
  if (opt.shards_given) {
    if (opt.shards < 1) {
      std::fprintf(stderr, "error: --shards must be >= 1 (got %d)\n",
                   opt.shards);
      std::exit(2);
    }
    if (!cfg.parallel()) {
      std::fprintf(stderr,
                   "error: --shards only applies to --engine par "
                   "(the sequential engine is unsharded)\n");
      std::exit(2);
    }
    cfg.shards = opt.shards;
  }
  if (opt.lookahead_given) {
    if (opt.lookahead < 1) {
      std::fprintf(stderr, "error: --lookahead must be >= 1 (got %lld)\n",
                   static_cast<long long>(opt.lookahead));
      std::exit(2);
    }
    if (!cfg.parallel()) {
      std::fprintf(stderr,
                   "error: --lookahead only applies to --engine par "
                   "(the sequential engine has no barriers to amortize)\n");
      std::exit(2);
    }
    cfg.lookahead = static_cast<Cycle>(opt.lookahead);
  }
  return cfg;
}

/// Validate the checkpoint/restore flag combinations; exits 2 on misuse.
/// Observability and multi-seed modes are rejected with checkpointing:
/// observer state is not part of the snapshot, so a restored run could
/// not reproduce their output byte-for-byte.
void check_checkpoint_flags(const Options& opt) {
  if (opt.checkpoint_every_given && opt.checkpoint_every == 0) {
    std::fprintf(stderr, "error: --checkpoint-every must be >= 1\n");
    std::exit(2);
  }
  if (opt.checkpoint_every > 0 && opt.checkpoint_out.empty()) {
    std::fprintf(stderr,
                 "error: --checkpoint-every requires --checkpoint-out\n");
    std::exit(2);
  }
  if (!opt.checkpoint_out.empty() && opt.checkpoint_every == 0) {
    std::fprintf(stderr,
                 "error: --checkpoint-out requires --checkpoint-every\n");
    std::exit(2);
  }
  const bool checkpointing =
      opt.checkpoint_every > 0 || !opt.restore_path.empty();
  if (!checkpointing) return;
  if (!opt.trace_path.empty() || !opt.metrics_path.empty() ||
      opt.sample_every > 0) {
    std::fprintf(stderr,
                 "error: --trace/--metrics/--sample-every are incompatible "
                 "with checkpointing (observer state is outside the "
                 "snapshot)\n");
    std::exit(2);
  }
  if (opt.replicas > 1) {
    std::fprintf(stderr,
                 "error: --replicas is incompatible with checkpointing "
                 "(checkpoint one run at a time)\n");
    std::exit(2);
  }
}

std::string format_radices(const std::vector<std::int32_t>& radix) {
  std::string out;
  for (std::size_t i = 0; i < radix.size(); ++i) {
    if (i > 0) out += 'x';
    out += std::to_string(radix[i]);
  }
  return out;
}

std::vector<std::int32_t> parse_radices(const std::string& spec) {
  std::vector<std::int32_t> radix;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t next = spec.find('x', pos);
    radix.push_back(std::atoi(spec.substr(pos, next - pos).c_str()));
    if (next == std::string::npos) break;
    pos = next + 1;
  }
  return radix;
}

sim::SimConfig build_config(const Options& opt) {
  sim::SimConfig cfg;
  cfg.topology.radix = parse_radices(opt.topo);
  cfg.topology.torus = !opt.mesh;
  cfg.router.wormhole_vcs = opt.vcs;
  cfg.router.wave_switches = opt.protocol == "wormhole" ? 0 : opt.k;
  cfg.protocol.max_misroutes = opt.m;
  cfg.protocol.circuit_cache_entries = opt.cache;
  cfg.protocol.pcs_only = opt.pcs_only;
  cfg.router.virtual_circuits = opt.virtual_circuits;
  cfg.protocol.max_packet_flits = opt.max_packet;
  cfg.faults.link_fault_rate = opt.faults;
  if (!opt.faults_file.empty()) {
    // Throws std::runtime_error on I/O, parse or schema errors; main's
    // catch maps that to exit code 2 like any flag misuse.
    const sim::FaultConfig sched = fault::load_faults_file(opt.faults_file);
    cfg.faults.events = sched.events;
    cfg.faults.storm = sched.storm;
    cfg.faults.churn = sched.churn;
    cfg.faults.dv = sched.dv;
  }
  cfg.seed = opt.seed;

  if (opt.protocol == "wormhole") cfg.protocol.protocol = sim::ProtocolKind::kWormholeOnly;
  else if (opt.protocol == "clrp") cfg.protocol.protocol = sim::ProtocolKind::kClrp;
  else if (opt.protocol == "carp") cfg.protocol.protocol = sim::ProtocolKind::kCarp;
  else throw std::invalid_argument("unknown --protocol " + opt.protocol);

  if (opt.routing == "dor") cfg.router.routing = sim::RoutingKind::kDimensionOrder;
  else if (opt.routing == "duato") cfg.router.routing = sim::RoutingKind::kDuatoAdaptive;
  else if (opt.routing == "west-first") cfg.router.routing = sim::RoutingKind::kWestFirst;
  else if (opt.routing == "negative-first") cfg.router.routing = sim::RoutingKind::kNegativeFirst;
  else throw std::invalid_argument("unknown --routing " + opt.routing);

  if (opt.replacement == "lru") cfg.protocol.replacement = sim::ReplacementPolicy::kLru;
  else if (opt.replacement == "lfu") cfg.protocol.replacement = sim::ReplacementPolicy::kLfu;
  else if (opt.replacement == "fifo") cfg.protocol.replacement = sim::ReplacementPolicy::kFifo;
  else if (opt.replacement == "random") cfg.protocol.replacement = sim::ReplacementPolicy::kRandom;
  else throw std::invalid_argument("unknown --replacement " + opt.replacement);
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse(argc, argv, opt)) {
    usage();
    return 0;
  }
  check_checkpoint_flags(opt);
  try {
    const engine::EngineConfig engine_cfg = build_engine_config(opt);
    sim::SimConfig cfg = build_config(opt);
    cfg.validate();

    if (opt.replicas > 1) {
      // Multi-seed mode: run the same point `replicas` times through the
      // sweep harness (deterministic seeding, parallel workers) and print
      // the merged statistics instead of one run's.
      if (!opt.trace_path.empty() || !opt.metrics_path.empty()) {
        std::fprintf(stderr,
                     "warning: --trace/--metrics apply to single runs only; "
                     "ignored with --replicas\n");
      }
      harness::SweepPoint point;
      point.label = opt.topo + "/" + opt.protocol + "@" + opt.pattern;
      point.config = cfg;
      point.pattern = opt.pattern;
      point.message_flits = opt.length;
      point.offered_load = opt.load;
      point.warmup = opt.warmup;
      point.measure = opt.cycles;
      point.drain_cap = 40 * (opt.warmup + opt.cycles) + 1'000'000;
      harness::SweepOptions options;
      options.base_seed = opt.seed;
      options.replicas = opt.replicas;
      options.threads = opt.threads;
      options.engine = engine_cfg;
      const harness::SweepResult result = harness::run_sweep({point}, options);
      const harness::PointSummary& p = result.points.front();
      std::printf("merged %d replicas of %s (base seed %llu, %u thread(s), "
                  "%.2fs)\n",
                  p.replicas, point.label.c_str(),
                  static_cast<unsigned long long>(opt.seed),
                  result.threads_used, result.wall_seconds);
      std::printf("messages   offered %llu, delivered %llu, saturated "
                  "replicas %d\n",
                  static_cast<unsigned long long>(p.messages_offered),
                  static_cast<unsigned long long>(p.messages_delivered),
                  p.saturated_replicas);
      std::printf("latency    mean %.2f +/- %.2f  p95 %.1f  p99 %.1f  "
                  "max %.0f\n",
                  p.metrics.latency_mean.mean(),
                  p.metrics.latency_mean.stddev(),
                  p.metrics.latency_p95.mean(), p.metrics.latency_p99.mean(),
                  p.metrics.latency_max.max());
      std::printf("throughput %.4f +/- %.4f flits/node/cycle\n",
                  p.metrics.throughput.mean(), p.metrics.throughput.stddev());
      if (!opt.json_path.empty() &&
          !sim::write_json_file(harness::to_json(result), opt.json_path)) {
        return 2;
      }
      return p.saturated_replicas == 0 ? 0 : 1;
    }

    // Single runs always go through a CheckpointableRun; driven to
    // completion it is bit-identical to the old run_open_loop path, and
    // it is the seam --checkpoint-every/--restore need.
    std::unique_ptr<snap::CheckpointableRun> run;
    if (!opt.restore_path.empty()) {
      // Throws std::runtime_error (missing file) or snap::ArchiveError
      // (corrupt snapshot); main's catch maps both to exit 2.
      const snap::Snapshot snapshot = snap::Snapshot::load(opt.restore_path);
      run = std::make_unique<snap::CheckpointableRun>(snapshot);
      // Reporting below reads the options; in restore mode the snapshot
      // is the source of truth for config and workload.
      const snap::RunSpec& spec = run->spec();
      cfg = spec.config;
      opt.topo = format_radices(cfg.topology.radix);
      opt.routing = sim::to_string(cfg.router.routing);
      opt.pattern = spec.pattern;
      opt.length = spec.message_flits;
      opt.load = spec.offered_load;
      opt.warmup = spec.warmup;
      opt.cycles = spec.measure;
      opt.seed = spec.seed;
    } else {
      snap::RunSpec spec;
      spec.config = cfg;
      spec.pattern = opt.pattern;
      spec.message_flits = opt.length;
      spec.offered_load = opt.load;
      spec.warmup = opt.warmup;
      spec.measure = opt.cycles;
      spec.drain_cap = 40 * (opt.warmup + opt.cycles) + 1'000'000;
      spec.seed = opt.seed;
      run = std::make_unique<snap::CheckpointableRun>(spec);
    }
    core::Simulation& sim = run->sim();
    if (engine_cfg.parallel()) {
      run->set_engine(
          engine::make_engine(engine_cfg, sim.topology().num_nodes()));
    }

    // Observability attaches before the first cycle so traces cover the
    // whole run; it is read-only, so stats stay bit-identical either way.
    // (Incompatible with checkpointing; check_checkpoint_flags rejected
    // that combination already.)
    std::unique_ptr<obs::Observer> observer;
    if (!opt.trace_path.empty() || !opt.metrics_path.empty() ||
        opt.sample_every > 0) {
      obs::ObserverOptions obs_opt;
      obs_opt.trace = !opt.trace_path.empty();
      obs_opt.metrics = !opt.metrics_path.empty();
      obs_opt.sample_every = opt.sample_every;
      observer = std::make_unique<obs::Observer>(sim, obs_opt);
    }

    const Cycle slice = opt.checkpoint_every > 0
                            ? opt.checkpoint_every
                            : std::numeric_limits<Cycle>::max();
    while (!run->done()) {
      run->advance(slice);
      if (opt.checkpoint_every > 0) {
        const snap::Snapshot snapshot = run->checkpoint();
        snapshot.save(opt.checkpoint_out);
        char digest[32];
        std::snprintf(digest, sizeof digest, "%016llx",
                      static_cast<unsigned long long>(snapshot.digest()));
        char warm[32];
        std::snprintf(warm, sizeof warm, "%016llx",
                      static_cast<unsigned long long>(
                          snap::warm_key(run->spec())));
        const sim::JsonValue meta =
            sim::JsonValue::object()
                .set("schema", "wavesim.ckpt.v1")
                .set("cycle", run->now())
                .set("digest", digest)
                .set("warm_key", warm)
                .set("done", run->done());
        if (!sim::write_json_file(meta, opt.checkpoint_out + ".json")) {
          return 2;
        }
      }
    }
    const load::ExperimentResult result = run->result();

    const auto& s = result.stats;
    std::printf("config: %s %s, %s routing, %s, w=%d k=%d m=%d cache=%d %s\n",
                opt.topo.c_str(), cfg.topology.torus ? "torus" : "mesh",
                opt.routing.c_str(), sim::to_string(cfg.protocol.protocol),
                cfg.router.wormhole_vcs, cfg.router.wave_switches,
                cfg.protocol.max_misroutes,
                cfg.protocol.circuit_cache_entries,
                sim::to_string(cfg.protocol.replacement));
    std::printf("workload: %s, %d-flit messages, load %.3f, %llu cycles "
                "measured (+%llu warmup)\n",
                opt.pattern.c_str(), opt.length, opt.load,
                static_cast<unsigned long long>(opt.cycles),
                static_cast<unsigned long long>(opt.warmup));
    std::printf("\nmessages   offered %llu, delivered %llu%s\n",
                static_cast<unsigned long long>(s.messages_offered),
                static_cast<unsigned long long>(s.messages_delivered),
                result.drained ? "" : "  [drain cap hit: saturated]");
    std::printf("latency    mean %.1f  p50 %.1f  p95 %.1f  p99 %.1f  max %.0f\n",
                s.latency_mean, s.latency_p50, s.latency_p95, s.latency_p99,
                s.latency_max);
    std::printf("throughput %.4f flits/node/cycle\n",
                s.throughput_flits_per_node_cycle);
    std::printf("modes      hit %llu  after-setup %llu  fallback %llu  "
                "wormhole %llu\n",
                static_cast<unsigned long long>(s.circuit_hit_count),
                static_cast<unsigned long long>(s.circuit_setup_count),
                static_cast<unsigned long long>(s.fallback_count),
                static_cast<unsigned long long>(s.wormhole_count));
    if (s.probes_launched > 0) {
      std::printf("circuits   cache hit-rate %.1f%%, evictions %llu, "
                  "teardowns %llu, reallocs %llu\n",
                  100.0 * s.cache_hit_rate(),
                  static_cast<unsigned long long>(s.cache_evictions),
                  static_cast<unsigned long long>(s.teardowns),
                  static_cast<unsigned long long>(s.buffer_reallocs));
      std::printf("probes     launched %llu, success %.1f%%, backtracks %llu, "
                  "misroutes %llu, release-requests %llu\n",
                  static_cast<unsigned long long>(s.probes_launched),
                  100.0 * s.setup_success_rate(),
                  static_cast<unsigned long long>(s.probe_backtracks),
                  static_cast<unsigned long long>(s.probe_misroutes),
                  static_cast<unsigned long long>(s.release_requests));
    }
    if (s.links_failed > 0 || s.links_restored > 0) {
      std::printf("faults     links failed %llu / restored %llu, circuits "
                  "killed %llu (cache-invalidated %llu), transfers aborted "
                  "%llu\n",
                  static_cast<unsigned long long>(s.links_failed),
                  static_cast<unsigned long long>(s.links_restored),
                  static_cast<unsigned long long>(s.circuits_killed),
                  static_cast<unsigned long long>(s.circuits_invalidated),
                  static_cast<unsigned long long>(s.transfers_aborted));
      std::printf("reachability withdrawn %llu, timeouts %llu, updates %llu "
                  "(triggered %llu), unreachable fallbacks %llu\n",
                  static_cast<unsigned long long>(s.routes_withdrawn),
                  static_cast<unsigned long long>(s.route_timeouts),
                  static_cast<unsigned long long>(s.dv_updates_sent),
                  static_cast<unsigned long long>(s.dv_triggered_updates),
                  static_cast<unsigned long long>(s.unreachable_fallbacks));
    }
    if (opt.histogram && s.messages_delivered > 0) {
      const double hi = s.latency_max * 1.01 + 1.0;
      std::printf("\nlatency histogram (cycles):\n%s",
                  sim.latency_histogram(0.0, hi, 16).render().c_str());
    }
    const auto check = verify::check_delivery(sim.network());
    std::printf("invariants %s\n", check.ok() ? "ok" : check.summary().c_str());
    if (!opt.json_path.empty()) {
      sim::JsonValue doc =
          sim::JsonValue::object()
              .set("schema", "wavesim.run.v1")
              .set("generated_by", sim::git_describe())
              .set("pattern", opt.pattern)
              .set("message_flits", opt.length)
              .set("offered_load", opt.load)
              .set("seed", opt.seed)
              .set("engine", engine_cfg.to_json(sim.topology().num_nodes()))
              .set("drained", result.drained)
              .set("invariants_ok", check.ok())
              .set("watchdog_verdict", verify::to_string(result.watchdog_verdict))
              .set("stalled_for", result.max_stalled)
              .set("stats", harness::stats_to_json(s));
      if (!sim::write_json_file(doc, opt.json_path)) return 2;
    }
    if (observer != nullptr) {
      observer->detach();
      if (!opt.trace_path.empty() &&
          !sim::write_json_file(observer->trace_json(), opt.trace_path)) {
        return 2;
      }
      if (!opt.metrics_path.empty() &&
          !sim::write_json_file(observer->metrics_json(), opt.metrics_path)) {
        return 2;
      }
    }
    return check.ok() && result.drained ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
