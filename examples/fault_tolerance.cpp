// Static-fault resilience of MB-m circuit setup (paper section 2: the
// misrouting backtracking protocol "is very resilient to static faults").
// Sweeps the circuit-channel fault rate and reports how often probes still
// find a path, how much longer those paths get, and that every message is
// delivered regardless (wormhole fallback carries the rest).
//
//   $ ./fault_tolerance
#include <cstdio>

#include "core/simulation.hpp"
#include "verify/delivery.hpp"
#include "workload/generator.hpp"

int main() {
  using namespace wavesim;

  std::printf("MB-m fault resilience, 8x8 torus, CLRP, m = 2\n\n");
  std::printf("%8s %14s %14s %12s %12s\n", "faults", "setup-success",
              "circuit-msgs", "fallbacks", "delivered");

  for (const double rate : {0.0, 0.02, 0.05, 0.10, 0.20, 0.40}) {
    sim::SimConfig config = sim::SimConfig::default_torus();
    config.protocol.protocol = sim::ProtocolKind::kClrp;
    config.faults.link_fault_rate = rate;
    config.seed = 31;

    core::Simulation sim(config);
    load::UniformTraffic pattern(sim.topology());
    load::FixedSize sizes(64);
    const auto result =
        load::run_open_loop(sim, pattern, sizes, /*load=*/0.08,
                            /*warmup=*/2000, /*measure=*/8000,
                            /*drain_cap=*/600000, /*seed=*/5);

    const auto check = verify::check_delivery(sim.network());
    const auto& s = result.stats;
    std::printf("%7.0f%% %13.1f%% %14llu %12llu %11s%s\n", rate * 100,
                100.0 * s.setup_success_rate(),
                static_cast<unsigned long long>(s.circuit_hit_count +
                                                s.circuit_setup_count),
                static_cast<unsigned long long>(s.fallback_count),
                check.ok() && result.drained ? "all" : "NO",
                check.ok() ? "" : "  <-- invariant violation!");
  }
  std::printf("\nProbes back off around faulty channels (success degrades "
              "gracefully);\ndelivery is guaranteed at any fault rate "
              "because the S0 wormhole plane\nremains available as the "
              "fallback (Theorems 1 and 3).\n");
  return 0;
}
