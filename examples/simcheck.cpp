// simcheck -- deterministic property-based exploration of the simulator.
//
//   $ ./simcheck --count 200 --seed 1            # explore 200 scenarios
//   $ ./simcheck --one 0xdeadbeef                # run one scenario by seed
//   $ ./simcheck --replay repro-seed-2a.json     # re-execute an artifact
//
// Exit codes: 0 = no violations, 1 = violations found (or a replay that
// still fails, which is the expected result for a valid repro), 2 = usage
// or I/O error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "check/simcheck.hpp"
#include "harness/sweep.hpp"
#include "sim/json.hpp"

namespace {

using namespace wavesim;

struct Options {
  std::uint64_t seed = 1;
  std::size_t count = 100;
  unsigned threads = 0;
  std::size_t max_failures = 1;
  bool shrink = true;
  bool faulty = false;
  std::string artifact_dir;
  std::string json_path;
  std::string replay_path;
  bool one = false;
  std::uint64_t one_seed = 0;
};

void usage() {
  std::printf(
      "simcheck -- seeded scenario fuzzer with invariant oracles\n\n"
      "  --seed N            base seed; scenario i uses a seed derived\n"
      "                      from (N, i) (default 1)\n"
      "  --count N           scenarios to explore (default 100)\n"
      "  --threads N         worker threads (default 0 = all cores)\n"
      "  --max-failures N    stop after N failing scenarios (default 1)\n"
      "  --no-shrink         keep failures as found, skip delta debugging\n"
      "  --faulty            force a failure storm onto every scenario\n"
      "                      (dynamic-fault + reachability oracles)\n"
      "  --artifact-dir DIR  write each failure as a wavesim.repro.v1 file\n"
      "  --json PATH         write the run report as JSON\n"
      "  --one SEED          run the single scenario of SEED (hex ok) and\n"
      "                      print its outcome\n"
      "  --replay FILE       re-execute a wavesim.repro.v1 artifact and\n"
      "                      verify it reproduces bit-identically\n");
}

std::uint64_t parse_u64(const char* text) {
  return std::strtoull(text, nullptr, 0);  // base 0: decimal or 0x-hex
}

bool parse(int argc, char** argv, Options& opt) {
  auto need = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[i]);
      std::exit(2);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      return false;
    } else if (arg == "--seed") {
      opt.seed = parse_u64(need(i));
    } else if (arg == "--count") {
      opt.count = static_cast<std::size_t>(parse_u64(need(i)));
    } else if (arg == "--threads") {
      opt.threads = static_cast<unsigned>(std::atoi(need(i)));
    } else if (arg == "--max-failures") {
      opt.max_failures = static_cast<std::size_t>(parse_u64(need(i)));
    } else if (arg == "--no-shrink") {
      opt.shrink = false;
    } else if (arg == "--faulty") {
      opt.faulty = true;
    } else if (arg == "--artifact-dir") {
      opt.artifact_dir = need(i);
    } else if (arg == "--json") {
      opt.json_path = need(i);
    } else if (arg == "--one") {
      opt.one = true;
      opt.one_seed = parse_u64(need(i));
    } else if (arg == "--replay") {
      opt.replay_path = need(i);
    } else {
      std::fprintf(stderr, "unknown flag: %s (try --help)\n", arg.c_str());
      std::exit(2);
    }
  }
  return true;
}

void print_failure(const check::Failure& failure) {
  std::printf("FAIL scenario #%zu seed %s\n", failure.index,
              check::to_hex_u64(failure.original.seed).c_str());
  std::printf("  original: %s\n", failure.original.label().c_str());
  std::printf("            %s\n", failure.original_outcome.summary().c_str());
  if (!(failure.shrunk == failure.original)) {
    std::printf("  shrunk (%zu runs, %zu accepted): %s\n", failure.shrink_runs,
                failure.shrink_accepted, failure.shrunk.label().c_str());
    std::printf("            %s\n", failure.shrunk_outcome.summary().c_str());
  }
}

int run_one(const Options& opt) {
  check::Scenario scenario = check::Scenario::generate(opt.one_seed);
  if (opt.faulty) scenario.ensure_storm();
  std::printf("scenario %s\n  %s\n",
              check::to_hex_u64(opt.one_seed).c_str(),
              scenario.label().c_str());
  const check::RunOutcome outcome = check::run_scenario(scenario);
  std::printf("  %s\n", outcome.summary().c_str());
  return outcome.ok() ? 0 : 1;
}

int run_replay(const Options& opt) {
  check::Failure stored;
  try {
    stored = check::load_repro(opt.replay_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  std::printf("replaying %s\n  %s\n", opt.replay_path.c_str(),
              stored.shrunk.label().c_str());
  // Twice, to hold the determinism contract: the same scenario must yield
  // the same event stream bit-for-bit within one build.
  const check::RunOutcome outcome = check::run_scenario(stored.shrunk);
  const check::RunOutcome again = check::run_scenario(stored.shrunk);
  std::printf("  %s\n", outcome.summary().c_str());
  if (outcome.fingerprint != again.fingerprint ||
      outcome.violations != again.violations) {
    std::fprintf(stderr, "error: replay is non-deterministic (%s vs %s)\n",
                 check::to_hex_u64(outcome.fingerprint).c_str(),
                 check::to_hex_u64(again.fingerprint).c_str());
    return 2;
  }
  // Stored-vs-replayed is informational: a mismatch is expected when the
  // code changed since the artifact was captured (e.g. the bug was fixed).
  std::printf("  matches stored outcome: %s (stored fp %s, replayed %s)\n",
              outcome.fingerprint == stored.shrunk_outcome.fingerprint
                  ? "yes"
                  : "no (code changed since capture?)",
              check::to_hex_u64(stored.shrunk_outcome.fingerprint).c_str(),
              check::to_hex_u64(outcome.fingerprint).c_str());
  return outcome.ok() ? 0 : 1;
}

int run_explore(const Options& opt) {
  check::SimcheckOptions options;
  options.base_seed = opt.seed;
  options.count = opt.count;
  options.threads = opt.threads;
  options.max_failures = opt.max_failures;
  options.shrink_failures = opt.shrink;
  options.faulty = opt.faulty;
  const check::Report report = check::run_simcheck(options);

  for (const check::Failure& failure : report.failures) {
    print_failure(failure);
    if (!opt.artifact_dir.empty()) {
      const std::string path = check::write_repro(failure, opt.artifact_dir);
      if (path.empty()) return 2;
      std::printf("  repro written: %s\n", path.c_str());
    }
  }
  std::printf("simcheck: %zu scenario(s), %zu saturated, %zu failure(s)\n",
              report.scenarios_run, report.saturated, report.failures.size());

  if (!opt.json_path.empty()) {
    sim::JsonValue failures = sim::JsonValue::array();
    for (const check::Failure& failure : report.failures) {
      failures.push_back(check::repro_to_json(failure));
    }
    const sim::JsonValue doc =
        sim::JsonValue::object()
            .set("schema", "wavesim.simcheck.v1")
            .set("base_seed", check::to_hex_u64(report.base_seed))
            .set("count_requested", opt.count)
            .set("scenarios_run", report.scenarios_run)
            .set("saturated", report.saturated)
            .set("failures", std::move(failures));
    if (!sim::write_json_file(doc, opt.json_path)) return 2;
  }
  return report.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse(argc, argv, opt)) {
    usage();
    return 0;
  }
  try {
    if (!opt.replay_path.empty()) return run_replay(opt);
    if (opt.one) return run_one(opt);
    return run_explore(opt);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
