// Message timeline: uses the event instrumentation to print the full
// lifecycle of every protocol milestone for a handful of messages --
// showing exactly where a cold (setup-paying) send spends its cycles
// compared to a warm circuit hit and a wormhole-only send.
//
//   $ ./message_timeline
#include <cstdio>
#include <vector>

#include "core/simulation.hpp"

namespace {

using namespace wavesim;

void run_and_print(const char* title, sim::ProtocolKind protocol,
                   int sends) {
  sim::SimConfig config = sim::SimConfig::default_torus();
  config.protocol.protocol = protocol;
  if (protocol == sim::ProtocolKind::kWormholeOnly) {
    config.router.wave_switches = 0;
  }
  core::Simulation sim(config);
  std::vector<core::Event> events;
  sim.set_event_sink([&](const core::Event& e) { events.push_back(e); });

  std::printf("\n--- %s ---\n", title);
  for (int i = 0; i < sends; ++i) {
    sim.send(0, 36, 96);  // (0,0) -> (4,4), 8 hops, 96 flits
    sim.run_until_delivered();
  }
  for (const auto& e : events) {
    std::printf("  cycle %5llu  %-20s", static_cast<unsigned long long>(e.at),
                core::to_string(e.kind));
    if (e.msg != kInvalidMessage) {
      std::printf("  msg %lld", static_cast<long long>(e.msg));
    }
    if (e.circuit != kInvalidCircuit) {
      std::printf("  circuit %lld", static_cast<long long>(e.circuit));
    }
    std::printf("  @node %d\n", e.node);
  }
}

}  // namespace

int main() {
  std::printf("Lifecycle of 96-flit messages (0,0) -> (4,4) on an 8x8 torus.\n"
              "CLRP: the first message pays probe + ack setup; the second "
              "rides the\ncached circuit immediately.\n");
  run_and_print("CLRP, two messages to the same destination",
                sim::ProtocolKind::kClrp, 2);
  run_and_print("wormhole only, one message",
                sim::ProtocolKind::kWormholeOnly, 1);
  return 0;
}
