// Message timeline: uses the event instrumentation to print the full
// lifecycle of every protocol milestone for a handful of messages --
// showing exactly where a cold (setup-paying) send spends its cycles
// compared to a warm circuit hit and a wormhole-only send.
//
//   $ ./message_timeline [--trace PATH]
//
// With --trace, the same events are also exported as a Chrome/Perfetto
// trace (wavesim.trace.v1) covering every run in the program.
#include <cstdio>
#include <cstring>
#include <vector>

#include "core/simulation.hpp"
#include "obs/trace.hpp"
#include "sim/json.hpp"

namespace {

using namespace wavesim;

void run_and_print(const char* title, sim::ProtocolKind protocol,
                   int sends, obs::TraceRecorder* recorder) {
  sim::SimConfig config = sim::SimConfig::default_torus();
  config.protocol.protocol = protocol;
  if (protocol == sim::ProtocolKind::kWormholeOnly) {
    config.router.wave_switches = 0;
  }
  core::Simulation sim(config);
  std::vector<core::Event> events;
  sim.set_event_sink([&](const core::Event& e) {
    events.push_back(e);
    if (recorder != nullptr) recorder->on_event(e);
  });

  std::printf("\n--- %s ---\n", title);
  for (int i = 0; i < sends; ++i) {
    sim.send(0, 36, 96);  // (0,0) -> (4,4), 8 hops, 96 flits
    sim.run_until_delivered();
  }
  for (const auto& e : events) {
    std::printf("  cycle %5llu  %-20s", static_cast<unsigned long long>(e.at),
                core::to_string(e.kind));
    if (e.msg != kInvalidMessage) {
      std::printf("  msg %lld", static_cast<long long>(e.msg));
    }
    if (e.circuit != kInvalidCircuit) {
      std::printf("  circuit %lld", static_cast<long long>(e.circuit));
    }
    std::printf("  @node %d\n", e.node);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const char* trace_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: message_timeline [--trace PATH]\n");
      return 2;
    }
  }
  obs::TraceRecorder recorder(1u << 12);
  obs::TraceRecorder* rec = trace_path != nullptr ? &recorder : nullptr;

  std::printf("Lifecycle of 96-flit messages (0,0) -> (4,4) on an 8x8 torus.\n"
              "CLRP: the first message pays probe + ack setup; the second "
              "rides the\ncached circuit immediately.\n");
  run_and_print("CLRP, two messages to the same destination",
                sim::ProtocolKind::kClrp, 2, rec);
  run_and_print("wormhole only, one message",
                sim::ProtocolKind::kWormholeOnly, 1, rec);
  if (trace_path != nullptr) {
    if (!sim::write_json_file(recorder.to_json(64), trace_path)) return 2;
    std::printf("\ntrace written to %s (load in ui.perfetto.dev)\n",
                trace_path);
  }
  return 0;
}
