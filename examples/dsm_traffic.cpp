// DSM-style traffic (the paper's motivating workload): a mix of short
// coherence messages and long cache-line/page transfers with strong
// temporal locality. Compares plain wormhole switching against wave
// switching with CLRP on the same offered load.
//
//   $ ./dsm_traffic [offered_load]
#include <cstdio>
#include <cstdlib>

#include "core/simulation.hpp"
#include "workload/generator.hpp"

namespace {

using namespace wavesim;

core::SimulationStats run_one(sim::ProtocolKind protocol, double load) {
  sim::SimConfig config = sim::SimConfig::default_torus();
  config.protocol.protocol = protocol;
  if (protocol == sim::ProtocolKind::kWormholeOnly) {
    config.router.wave_switches = 0;
  }
  config.seed = 2026;

  core::Simulation sim(config);
  // 70% short coherence control (8 flits), 30% long data (128 flits);
  // each node mostly talks to a working set of 4 peers (home nodes).
  load::WorkingSetTraffic pattern(sim.topology(), /*set_size=*/4,
                                  /*p_in_set=*/0.9, sim::Rng{7});
  load::BimodalSize sizes(8, 128, /*p_long=*/0.3);
  const auto result = load::run_open_loop(sim, pattern, sizes, load,
                                          /*warmup=*/3000, /*measure=*/12000,
                                          /*drain_cap=*/400000, /*seed=*/99);
  if (!result.drained) {
    std::fprintf(stderr, "  (saturated: drain cap hit)\n");
  }
  return result.stats;
}

}  // namespace

int main(int argc, char** argv) {
  const double load = argc > 1 ? std::atof(argv[1]) : 0.15;
  std::printf("DSM traffic on an 8x8 torus, offered load %.2f "
              "flits/node/cycle\n\n", load);
  std::printf("%-12s %10s %10s %10s %12s %10s\n", "protocol", "mean", "p50",
              "p99", "throughput", "hit-rate");

  for (const auto protocol :
       {sim::ProtocolKind::kWormholeOnly, sim::ProtocolKind::kClrp}) {
    const auto stats = run_one(protocol, load);
    std::printf("%-12s %10.1f %10.1f %10.1f %12.4f %9.1f%%\n",
                sim::to_string(protocol), stats.latency_mean,
                stats.latency_p50, stats.latency_p99,
                stats.throughput_flits_per_node_cycle,
                100.0 * stats.cache_hit_rate());
  }
  std::printf("\nWith temporal locality, CLRP turns most sends into circuit"
              " hits and\nlong transfers ride wave-pipelined channels.\n");
  return 0;
}
