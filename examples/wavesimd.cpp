// wavesimd -- job-queue daemon for long simulation campaigns.
//
//   $ ./wavesimd --socket /tmp/wavesim.sock --state-dir /tmp/wavesim-state
//   $ tools/wavesimd_client.py --socket /tmp/wavesim.sock submit
//         --kind run --spec '{"topo":"8x8","load":0.12}'
//
// Speaks wavesim.job.v1 (docs/SERVICE.md). Jobs survive kill -9: run
// state is checkpointed (wavesim.snap.v1) every --slice-cycles and the
// state directory is recovered on the next start.
#include <sys/stat.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "service/daemon.hpp"

namespace {

using namespace wavesim;

void usage() {
  std::printf(
      "wavesimd -- wave-switching simulation service\n\n"
      "  --socket PATH       AF_UNIX socket to serve (required)\n"
      "  --state-dir PATH    job/checkpoint/result directory (required;\n"
      "                      created if missing, recovered if not empty)\n"
      "  --workers N         worker threads (default 2)\n"
      "  --queue-cap N       queued-job admission bound (default 64;\n"
      "                      submits past it get retry_after_ms)\n"
      "  --slice-cycles N    run-job preemption quantum (default 25000)\n");
}

}  // namespace

int main(int argc, char** argv) {
  service::DaemonOptions opt;
  auto need = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[i]);
      std::exit(2);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (arg == "--socket") {
      opt.socket_path = need(i);
    } else if (arg == "--state-dir") {
      opt.state_dir = need(i);
    } else if (arg == "--workers") {
      opt.workers = std::atoi(need(i));
    } else if (arg == "--queue-cap") {
      opt.queue_cap = static_cast<std::size_t>(std::atoll(need(i)));
    } else if (arg == "--slice-cycles") {
      opt.slice_cycles = std::strtoull(need(i), nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag: %s (try --help)\n", arg.c_str());
      return 2;
    }
  }
  if (opt.socket_path.empty() || opt.state_dir.empty()) {
    std::fprintf(stderr, "error: --socket and --state-dir are required\n");
    return 2;
  }
  if (opt.workers < 1) {
    std::fprintf(stderr, "error: --workers must be >= 1\n");
    return 2;
  }
  if (opt.queue_cap < 1) {
    std::fprintf(stderr, "error: --queue-cap must be >= 1\n");
    return 2;
  }
  if (opt.slice_cycles < 1) {
    std::fprintf(stderr, "error: --slice-cycles must be >= 1\n");
    return 2;
  }
  if (::mkdir(opt.state_dir.c_str(), 0755) != 0 && errno != EEXIST) {
    std::fprintf(stderr, "error: cannot create state dir %s: %s\n",
                 opt.state_dir.c_str(), std::strerror(errno));
    return 2;
  }
  service::Daemon daemon(opt);
  return daemon.run();
}
