// wavecheck -- static protocol verifier for the wave-switching simulator.
//
// Checks the statically decidable premises of the paper's Theorems 1-4
// (deadlock and livelock freedom of CLRP/CARP over wormhole + PCS) against
// one configuration or the whole supported design space, without running a
// single simulation cycle. Violations come with ordered cycle witnesses.
//
// --bmc adds the bounded model checker (src/model): the premises the
// static pass must skip (Force waits only on acked circuits, no wait
// cycle at runtime, teardowns drain, absence of deadlock) are checked
// exhaustively over every schedule of a small job set on 2-4 node
// topologies, and each BMC verdict is cross-validated against the
// concrete simulator (a counterexample must reproduce under the runtime
// oracle stack; a clean proof must replay clean) — disagreement fails the
// run.
//
//   wavecheck --all-configs [--json report.json]
//   wavecheck [--radix 8x8] [--mesh|--torus] [--routing dor]
//             [--protocol clrp] [--variant full] [--switches 2] [--vcs 2]
//             [--misroutes 2] [--cache 8] [--json report.json] [-v]
//   wavecheck --bmc [--all-configs] [--bmc-states N] [--bmc-depth D] ...
//
// Exit code: 0 all checks passed, 1 at least one violation, 2 usage error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "analysis/analyze.hpp"
#include "check/bmc_replay.hpp"
#include "model/bmc.hpp"

namespace {

using wavesim::analysis::CheckStatus;
using wavesim::analysis::ConfigReport;

void usage(std::FILE* out) {
  std::fputs(
      "usage: wavecheck [options]\n"
      "\n"
      "Static verifier for Theorems 1-4: checks escape-CDG acyclicity, the\n"
      "extended wait-for graph (control + circuit + wormhole resources) and\n"
      "the static livelock bounds of the configured protocol. With --bmc,\n"
      "also model-checks the runtime-skipped premises exhaustively on small\n"
      "topologies and cross-validates every verdict against the simulator.\n"
      "\n"
      "  --all-configs        check the whole supported design space\n"
      "                       (with --bmc: the whole BMC slice)\n"
      "  --radix RxR[xR...]   topology radix per dimension (default 8x8)\n"
      "  --torus | --mesh     wraparound links or not (default torus)\n"
      "  --routing NAME       dor | duato | west-first | negative-first\n"
      "  --protocol NAME      wormhole | clrp | carp (default clrp)\n"
      "  --variant NAME       full | force-first | single-switch\n"
      "  --switches K         wave switches per router (default 2)\n"
      "  --vcs W              wormhole VCs per channel (default 2)\n"
      "  --misroutes M        MB-m misroute budget (default 2)\n"
      "  --cache N            circuit-cache entries per node (default 8)\n"
      "  --json PATH          write a wavesim.analysis.v1 report\n"
      "  --bmc                bounded model checking of the skipped rows\n"
      "                       (2-4 nodes, k <= 2, cache <= 2; the default\n"
      "                       8x8 config is outside the envelope)\n"
      "  --bmc-states N       visited-state budget (default 200000)\n"
      "  --bmc-depth D        schedule-depth budget (default 4096)\n"
      "  --bmc-mutate-force-unacked\n"
      "                       flip the seeded force-waits-on-unacked bug on\n"
      "                       (mutation smoke: BMC must find it)\n"
      "  -v, --verbose        print every check row, not just violations\n"
      "  -h, --help           this text\n",
      out);
}

[[noreturn]] void die(const std::string& why) {
  std::fprintf(stderr, "wavecheck: %s\n", why.c_str());
  std::exit(2);
}

bool parse_radix(const std::string& text, std::vector<std::int32_t>& out) {
  out.clear();
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t used = 0;
    int value = 0;
    try {
      value = std::stoi(text.substr(pos), &used);
    } catch (const std::exception&) {
      return false;
    }
    if (used == 0 || value < 2) return false;
    out.push_back(value);
    pos += used;
    if (pos < text.size()) {
      if (text[pos] != 'x') return false;
      ++pos;
    }
  }
  return !out.empty();
}

void print_rows(const std::vector<wavesim::analysis::CheckRow>& rows,
                bool verbose) {
  for (const auto& row : rows) {
    if (!verbose && row.status != CheckStatus::kViolation) continue;
    std::printf("  [%-11s] %-29s %s\n", to_string(row.status), row.id.c_str(),
                row.detail.c_str());
  }
}

void print_report(const ConfigReport& report, bool verbose) {
  const bool ok = report.ok();
  if (ok && !verbose) return;
  std::printf("%s: %s\n", report.id.c_str(), ok ? "ok" : "VIOLATION");
  print_rows(report.rows, verbose);
}

/// The replay-agreement contract as a row, so disagreement both prints and
/// counts like any other violation.
wavesim::analysis::CheckRow replay_row(
    const wavesim::check::BmcReplayResult& replay) {
  wavesim::analysis::CheckRow row;
  row.id = "bmc-replay-agreement";
  row.status = replay.agreed ? CheckStatus::kOk : CheckStatus::kViolation;
  row.detail = replay.detail;
  return row;
}

void print_bmc(const wavesim::model::BmcReport& report,
               const wavesim::analysis::CheckRow& agreement, bool verbose) {
  const bool ok = report.ok() && agreement.status != CheckStatus::kViolation;
  if (ok && !verbose) return;
  std::printf("%s [bmc]: %s (%lld states, %lld transitions, depth %d, "
              "symmetry %d)\n",
              report.id.c_str(), ok ? "ok" : "VIOLATION",
              static_cast<long long>(report.states),
              static_cast<long long>(report.transitions), report.depth,
              report.symmetry_group);
  print_rows(report.rows, verbose);
  print_rows({agreement}, verbose);
  if (!report.counterexample.empty() && (verbose || !ok)) {
    std::printf("  counterexample schedule (%zu steps):\n",
                report.counterexample.size());
    for (const auto& step : report.counterexample) {
      std::printf("    %s\n", step.text.c_str());
    }
  }
}

wavesim::sim::JsonValue witness_to_json(
    const wavesim::verify::CycleWitness& witness) {
  auto doc = wavesim::sim::JsonValue::object();
  doc.set("graph", witness.graph);
  auto hops = wavesim::sim::JsonValue::array();
  for (const auto& hop : witness.hops) {
    auto h = wavesim::sim::JsonValue::object();
    h.set("vertex", static_cast<std::int64_t>(hop.vertex));
    h.set("name", hop.name);
    h.set("node", static_cast<std::int64_t>(hop.node));
    h.set("port", static_cast<std::int64_t>(hop.port));
    h.set("index", static_cast<std::int64_t>(hop.index));
    hops.push_back(std::move(h));
  }
  doc.set("hops", std::move(hops));
  return doc;
}

wavesim::sim::JsonValue rows_to_json(
    const std::vector<wavesim::analysis::CheckRow>& rows) {
  auto arr = wavesim::sim::JsonValue::array();
  for (const auto& row : rows) {
    auto r = wavesim::sim::JsonValue::object();
    r.set("id", row.id);
    r.set("status", to_string(row.status));
    r.set("detail", row.detail);
    if (!row.witness.hops.empty()) {
      r.set("witness", witness_to_json(row.witness));
    }
    arr.push_back(std::move(r));
  }
  return arr;
}

}  // namespace

int main(int argc, char** argv) {
  bool all_configs = false;
  bool verbose = false;
  bool bmc = false;
  bool bmc_budget_set = false;
  bool bmc_mutate = false;
  std::string json_path;
  wavesim::sim::SimConfig config;
  wavesim::model::BmcOptions bmc_options;

  auto value_of = [&](int& i) -> std::string {
    if (i + 1 >= argc) die(std::string(argv[i]) + " needs a value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-h" || arg == "--help") {
      usage(stdout);
      return 0;
    } else if (arg == "--all-configs") {
      all_configs = true;
    } else if (arg == "-v" || arg == "--verbose") {
      verbose = true;
    } else if (arg == "--json") {
      json_path = value_of(i);
    } else if (arg == "--radix") {
      if (!parse_radix(value_of(i), config.topology.radix)) {
        die("bad --radix (want e.g. 8x8)");
      }
    } else if (arg == "--torus") {
      config.topology.torus = true;
    } else if (arg == "--mesh") {
      config.topology.torus = false;
    } else if (arg == "--routing") {
      if (!from_string(value_of(i), config.router.routing)) {
        die("unknown --routing");
      }
    } else if (arg == "--protocol") {
      if (!from_string(value_of(i), config.protocol.protocol)) {
        die("unknown --protocol");
      }
      if (config.protocol.protocol ==
          wavesim::sim::ProtocolKind::kWormholeOnly) {
        config.router.wave_switches = 0;
      }
    } else if (arg == "--variant") {
      if (!from_string(value_of(i), config.protocol.clrp_variant)) {
        die("unknown --variant");
      }
    } else if (arg == "--switches") {
      config.router.wave_switches = std::atoi(value_of(i).c_str());
    } else if (arg == "--vcs") {
      config.router.wormhole_vcs = std::atoi(value_of(i).c_str());
    } else if (arg == "--misroutes") {
      config.protocol.max_misroutes = std::atoi(value_of(i).c_str());
    } else if (arg == "--cache") {
      config.protocol.circuit_cache_entries = std::atoi(value_of(i).c_str());
    } else if (arg == "--bmc") {
      bmc = true;
    } else if (arg == "--bmc-states") {
      bmc_options.max_states = std::atoll(value_of(i).c_str());
      bmc_budget_set = true;
    } else if (arg == "--bmc-depth") {
      bmc_options.max_depth = std::atoi(value_of(i).c_str());
      bmc_budget_set = true;
    } else if (arg == "--bmc-mutate-force-unacked") {
      bmc_mutate = true;
    } else {
      usage(stderr);
      die("unknown option " + arg);
    }
  }

  if ((bmc_budget_set || bmc_mutate) && !bmc) {
    die("--bmc-states/--bmc-depth/--bmc-mutate-force-unacked need --bmc");
  }
  if (bmc && (bmc_options.max_states < 1 || bmc_options.max_depth < 1)) {
    die("--bmc-states and --bmc-depth must be >= 1");
  }
  config.protocol.mutate_force_unacked =
      config.protocol.mutate_force_unacked || bmc_mutate;

  std::vector<wavesim::sim::SimConfig> targets;
  try {
    if (all_configs) {
      targets = bmc ? wavesim::model::enumerate_bmc_configs()
                    : wavesim::analysis::enumerate_configs();
      if (bmc_mutate) {
        for (auto& c : targets) c.protocol.mutate_force_unacked = true;
      }
    } else {
      if (bmc) {
        std::string why;
        if (!wavesim::model::bmc_supported(config, &why)) {
          die("--bmc rejects this configuration: " + why);
        }
      }
      targets.push_back(config);
    }
  } catch (const std::exception& e) {
    die(e.what());
  }

  std::vector<ConfigReport> reports;
  std::vector<wavesim::model::BmcReport> bmc_reports;
  std::vector<wavesim::check::BmcReplayResult> replays;
  try {
    for (const auto& c : targets) {
      reports.push_back(wavesim::analysis::analyze_config(c));
      if (bmc) {
        bmc_reports.push_back(wavesim::model::run_bmc(c, bmc_options));
        replays.push_back(wavesim::check::replay_bmc(bmc_reports.back()));
      }
    }
  } catch (const std::exception& e) {
    die(e.what());
  }

  std::size_t ok_count = 0;
  std::size_t violations = 0;
  for (const auto& report : reports) {
    print_report(report, verbose);
    if (report.ok()) ++ok_count;
    violations += report.count(CheckStatus::kViolation);
  }
  std::printf("wavecheck: %zu/%zu config(s) ok, %zu violation(s)\n", ok_count,
              reports.size(), violations);

  if (bmc) {
    std::int64_t states = 0;
    std::size_t rows_ok = 0;
    std::size_t bounded_out = 0;
    for (std::size_t i = 0; i < bmc_reports.size(); ++i) {
      const auto& report = bmc_reports[i];
      const auto agreement = replay_row(replays[i]);
      print_bmc(report, agreement, verbose);
      states += report.states;
      rows_ok += report.count(CheckStatus::kOk);
      if (agreement.status == CheckStatus::kOk) ++rows_ok;
      bounded_out += report.count(CheckStatus::kBoundedOut);
      violations += report.count(CheckStatus::kViolation);
      if (agreement.status == CheckStatus::kViolation) ++violations;
    }
    std::printf("wavecheck --bmc: %zu config(s), %lld state(s) explored, "
                "%zu row(s) closed, %zu bounded-out, %zu violation(s)\n",
                bmc_reports.size(), static_cast<long long>(states), rows_ok,
                bounded_out, violations);
  }

  if (!json_path.empty()) {
    auto doc = wavesim::analysis::report_to_json(reports);
    if (bmc) {
      auto section = wavesim::sim::JsonValue::object();
      section.set("schema", "wavesim.bmc.v1");
      auto budgets = wavesim::sim::JsonValue::object();
      budgets.set("max_states",
                  static_cast<std::int64_t>(bmc_options.max_states));
      budgets.set("max_depth",
                  static_cast<std::int64_t>(bmc_options.max_depth));
      section.set("budgets", std::move(budgets));
      std::int64_t states = 0;
      std::size_t rows_violation = 0;
      std::size_t bounded_out = 0;
      bool replays_agreed = true;
      auto configs = wavesim::sim::JsonValue::array();
      for (std::size_t i = 0; i < bmc_reports.size(); ++i) {
        const auto& report = bmc_reports[i];
        auto entry = wavesim::sim::JsonValue::object();
        entry.set("id", report.id);
        auto jobs = wavesim::sim::JsonValue::array();
        for (const auto& job : report.jobs) {
          auto j = wavesim::sim::JsonValue::object();
          j.set("src", static_cast<std::int64_t>(job.src));
          j.set("dest", static_cast<std::int64_t>(job.dest));
          jobs.push_back(std::move(j));
        }
        entry.set("jobs", std::move(jobs));
        entry.set("mutated", report.config.protocol.mutate_force_unacked);
        entry.set("states", static_cast<std::int64_t>(report.states));
        entry.set("transitions",
                  static_cast<std::int64_t>(report.transitions));
        entry.set("depth", static_cast<std::int64_t>(report.depth));
        entry.set("complete", report.complete);
        entry.set("symmetry_group",
                  static_cast<std::int64_t>(report.symmetry_group));
        auto rows = rows_to_json(report.rows);
        rows.push_back(rows_to_json({replay_row(replays[i])}).at(0));
        entry.set("rows", std::move(rows));
        auto replay = wavesim::sim::JsonValue::object();
        replay.set("mode", replays[i].mode);
        replay.set("agreed", replays[i].agreed);
        replay.set("detail", replays[i].detail);
        entry.set("replay", std::move(replay));
        configs.push_back(std::move(entry));
        states += report.states;
        rows_violation += report.count(CheckStatus::kViolation);
        bounded_out += report.count(CheckStatus::kBoundedOut);
        replays_agreed = replays_agreed && replays[i].agreed;
      }
      section.set("configs", std::move(configs));
      auto totals = wavesim::sim::JsonValue::object();
      totals.set("configs",
                 static_cast<std::int64_t>(bmc_reports.size()));
      totals.set("states", states);
      totals.set("rows_violation",
                 static_cast<std::int64_t>(rows_violation));
      totals.set("rows_bounded_out",
                 static_cast<std::int64_t>(bounded_out));
      totals.set("replays_agreed", replays_agreed);
      section.set("totals", std::move(totals));
      doc.set("bmc", std::move(section));
    }
    if (!wavesim::sim::write_json_file(doc, json_path)) return 2;
    std::printf("wavecheck: wrote %s\n", json_path.c_str());
  }
  return violations == 0 ? 0 : 1;
}
