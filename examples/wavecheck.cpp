// wavecheck -- static protocol verifier for the wave-switching simulator.
//
// Checks the statically decidable premises of the paper's Theorems 1-4
// (deadlock and livelock freedom of CLRP/CARP over wormhole + PCS) against
// one configuration or the whole supported design space, without running a
// single simulation cycle. Violations come with ordered cycle witnesses.
//
//   wavecheck --all-configs [--json report.json]
//   wavecheck [--radix 8x8] [--mesh|--torus] [--routing dor]
//             [--protocol clrp] [--variant full] [--switches 2] [--vcs 2]
//             [--misroutes 2] [--cache 8] [--json report.json] [-v]
//
// Exit code: 0 all checks passed, 1 at least one violation, 2 usage error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "analysis/analyze.hpp"

namespace {

using wavesim::analysis::CheckStatus;
using wavesim::analysis::ConfigReport;

void usage(std::FILE* out) {
  std::fputs(
      "usage: wavecheck [options]\n"
      "\n"
      "Static verifier for Theorems 1-4: checks escape-CDG acyclicity, the\n"
      "extended wait-for graph (control + circuit + wormhole resources) and\n"
      "the static livelock bounds of the configured protocol.\n"
      "\n"
      "  --all-configs        check the whole supported design space\n"
      "  --radix RxR[xR...]   topology radix per dimension (default 8x8)\n"
      "  --torus | --mesh     wraparound links or not (default torus)\n"
      "  --routing NAME       dor | duato | west-first | negative-first\n"
      "  --protocol NAME      wormhole | clrp | carp (default clrp)\n"
      "  --variant NAME       full | force-first | single-switch\n"
      "  --switches K         wave switches per router (default 2)\n"
      "  --vcs W              wormhole VCs per channel (default 2)\n"
      "  --misroutes M        MB-m misroute budget (default 2)\n"
      "  --cache N            circuit-cache entries per node (default 8)\n"
      "  --json PATH          write a wavesim.analysis.v1 report\n"
      "  -v, --verbose        print every check row, not just violations\n"
      "  -h, --help           this text\n",
      out);
}

[[noreturn]] void die(const std::string& why) {
  std::fprintf(stderr, "wavecheck: %s\n", why.c_str());
  std::exit(2);
}

bool parse_radix(const std::string& text, std::vector<std::int32_t>& out) {
  out.clear();
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t used = 0;
    int value = 0;
    try {
      value = std::stoi(text.substr(pos), &used);
    } catch (const std::exception&) {
      return false;
    }
    if (used == 0 || value < 2) return false;
    out.push_back(value);
    pos += used;
    if (pos < text.size()) {
      if (text[pos] != 'x') return false;
      ++pos;
    }
  }
  return !out.empty();
}

void print_report(const ConfigReport& report, bool verbose) {
  const bool ok = report.ok();
  if (ok && !verbose) return;
  std::printf("%s: %s\n", report.id.c_str(), ok ? "ok" : "VIOLATION");
  for (const auto& row : report.rows) {
    if (!verbose && row.status != CheckStatus::kViolation) continue;
    std::printf("  [%-9s] %-26s %s\n", to_string(row.status), row.id.c_str(),
                row.detail.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool all_configs = false;
  bool verbose = false;
  std::string json_path;
  wavesim::sim::SimConfig config;

  auto value_of = [&](int& i) -> std::string {
    if (i + 1 >= argc) die(std::string(argv[i]) + " needs a value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-h" || arg == "--help") {
      usage(stdout);
      return 0;
    } else if (arg == "--all-configs") {
      all_configs = true;
    } else if (arg == "-v" || arg == "--verbose") {
      verbose = true;
    } else if (arg == "--json") {
      json_path = value_of(i);
    } else if (arg == "--radix") {
      if (!parse_radix(value_of(i), config.topology.radix)) {
        die("bad --radix (want e.g. 8x8)");
      }
    } else if (arg == "--torus") {
      config.topology.torus = true;
    } else if (arg == "--mesh") {
      config.topology.torus = false;
    } else if (arg == "--routing") {
      if (!from_string(value_of(i), config.router.routing)) {
        die("unknown --routing");
      }
    } else if (arg == "--protocol") {
      if (!from_string(value_of(i), config.protocol.protocol)) {
        die("unknown --protocol");
      }
      if (config.protocol.protocol ==
          wavesim::sim::ProtocolKind::kWormholeOnly) {
        config.router.wave_switches = 0;
      }
    } else if (arg == "--variant") {
      if (!from_string(value_of(i), config.protocol.clrp_variant)) {
        die("unknown --variant");
      }
    } else if (arg == "--switches") {
      config.router.wave_switches = std::atoi(value_of(i).c_str());
    } else if (arg == "--vcs") {
      config.router.wormhole_vcs = std::atoi(value_of(i).c_str());
    } else if (arg == "--misroutes") {
      config.protocol.max_misroutes = std::atoi(value_of(i).c_str());
    } else if (arg == "--cache") {
      config.protocol.circuit_cache_entries = std::atoi(value_of(i).c_str());
    } else {
      usage(stderr);
      die("unknown option " + arg);
    }
  }

  std::vector<ConfigReport> reports;
  try {
    if (all_configs) {
      for (const auto& c : wavesim::analysis::enumerate_configs()) {
        reports.push_back(wavesim::analysis::analyze_config(c));
      }
    } else {
      reports.push_back(wavesim::analysis::analyze_config(config));
    }
  } catch (const std::exception& e) {
    die(e.what());
  }

  std::size_t ok_count = 0;
  std::size_t violations = 0;
  for (const auto& report : reports) {
    print_report(report, verbose);
    if (report.ok()) ++ok_count;
    violations += report.count(CheckStatus::kViolation);
  }
  std::printf("wavecheck: %zu/%zu config(s) ok, %zu violation(s)\n", ok_count,
              reports.size(), violations);

  if (!json_path.empty()) {
    const auto doc = wavesim::analysis::report_to_json(reports);
    if (!wavesim::sim::write_json_file(doc, json_path)) return 2;
    std::printf("wavecheck: wrote %s\n", json_path.c_str());
  }
  return violations == 0 ? 0 : 1;
}
