// Parallel experiment-sweep harness.
//
// A sweep is a list of config points; each point runs `replicas`
// independent open-loop measurements. Every (point, replica) task gets a
// deterministic seed derived from (base_seed, point_index, replica) and
// owns its Simulation, so tasks are embarrassingly parallel. Replica
// results are merged serially in index order via sim::OnlineStats::merge —
// the merged statistics are therefore bit-identical regardless of how many
// worker threads executed the tasks.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/simulation.hpp"
#include "engine/engine.hpp"
#include "sim/json.hpp"
#include "sim/stats.hpp"

namespace wavesim::harness {

/// One configuration point of a sweep: a simulator config plus the
/// open-loop workload measured against it.
struct SweepPoint {
  std::string label;            ///< stable identifier in reports
  sim::SimConfig config;
  std::string pattern = "uniform";  ///< load::make_traffic name
  std::int32_t message_flits = 64;
  double offered_load = 0.10;   ///< flits per node per cycle
  Cycle warmup = 2000;
  Cycle measure = 8000;
  Cycle drain_cap = 300'000;
};

struct SweepOptions {
  std::uint64_t base_seed = 1;
  std::int32_t replicas = 1;
  unsigned threads = 0;  ///< worker count; 0 = all hardware threads
  /// Step engine installed on every replica's Simulation. The parallel
  /// engine never changes results (bit-identical to seq), only wall time;
  /// prefer engine parallelism for few large replicas and replica
  /// parallelism (threads above) for many small ones.
  engine::EngineConfig engine;
};

/// Seed of task (point_index, replica): a SplitMix64 hash of the three
/// inputs. Stable across platforms and releases of this harness.
std::uint64_t derive_seed(std::uint64_t base_seed, std::size_t point_index,
                          std::int32_t replica) noexcept;

/// A scalar metric aggregated across the replicas of one point.
struct MetricSummary {
  sim::OnlineStats latency_mean;
  sim::OnlineStats latency_p50;
  sim::OnlineStats latency_p95;
  sim::OnlineStats latency_p99;
  sim::OnlineStats latency_max;
  sim::OnlineStats throughput;
  sim::OnlineStats cache_hit_rate;
  sim::OnlineStats setup_success_rate;
};

/// Event counters summed across the replicas of one point. These mirror
/// the obs::MetricsRegistry counter names so sweep output and single-run
/// metrics output can be compared directly.
struct CounterSummary {
  std::uint64_t probes_launched = 0;
  std::uint64_t probe_backtracks = 0;
  std::uint64_t probe_misroutes = 0;
  std::uint64_t teardowns = 0;
  std::uint64_t fallback_count = 0;
  std::uint64_t wormhole_count = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  // Dynamic faults (zeros without a fault schedule).
  std::uint64_t links_failed = 0;
  std::uint64_t links_restored = 0;
  std::uint64_t circuits_killed = 0;
  std::uint64_t circuits_invalidated = 0;
  std::uint64_t unreachable_fallbacks = 0;
  std::uint64_t routes_withdrawn = 0;
  std::uint64_t route_timeouts = 0;
};

/// Merged outcome of all replicas of one sweep point.
struct PointSummary {
  std::string label;
  std::string pattern;
  std::int32_t message_flits = 0;
  double offered_load = 0.0;
  std::int32_t replicas = 0;
  std::int32_t saturated_replicas = 0;  ///< replicas that hit the drain cap
  std::int32_t stuck_replicas = 0;      ///< watchdog said kStuck at the end
  std::uint64_t messages_offered = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t flits_delivered = 0;
  CounterSummary counters;
  MetricSummary metrics;
};

struct SweepResult {
  std::vector<PointSummary> points;
  std::uint64_t base_seed = 0;
  std::int32_t replicas = 0;
  engine::EngineConfig engine;  ///< step engine the replicas ran under
  unsigned threads_used = 0;
  std::size_t runs = 0;          ///< points x replicas actually executed
  double wall_seconds = 0.0;
};

/// Run every (point x replica) task across `options.threads` workers and
/// merge. Throws std::invalid_argument on an invalid point config and
/// propagates simulation exceptions.
SweepResult run_sweep(const std::vector<SweepPoint>& points,
                      const SweepOptions& options);

/// The merged per-point statistics only — deterministic (bit-identical for
/// a fixed base seed, independent of thread count and wall time).
sim::JsonValue points_to_json(const SweepResult& result);

/// Full export: schema id, build/host metadata, wall time, and the points.
sim::JsonValue to_json(const SweepResult& result);

/// Single-run stats as JSON (shared schema fragment; also used by the
/// bench drivers and wavesim_cli).
sim::JsonValue stats_to_json(const core::SimulationStats& stats);

}  // namespace wavesim::harness
