#include "harness/sweep.hpp"

#include <chrono>
#include <thread>

#include "harness/runner.hpp"
#include "sim/build_info.hpp"
#include "sim/rng.hpp"
#include "workload/generator.hpp"
#include "workload/size_dist.hpp"
#include "workload/traffic.hpp"

namespace wavesim::harness {

std::uint64_t derive_seed(std::uint64_t base_seed, std::size_t point_index,
                          std::int32_t replica) noexcept {
  // Three chained SplitMix64 rounds, folding one input per round. The
  // mixing constants are SplitMix64's own; any fixed odd constants work.
  std::uint64_t state = base_seed ^ 0x6a09e667f3bcc909ULL;
  std::uint64_t h = sim::splitmix64(state);
  state = h ^ (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(point_index) + 1));
  h = sim::splitmix64(state);
  state = h ^ (0xbf58476d1ce4e5b9ULL * (static_cast<std::uint64_t>(replica) + 1));
  return sim::splitmix64(state);
}

namespace {

/// Raw outcome of one (point, replica) task, written into its own slot.
struct ReplicaOutcome {
  core::SimulationStats stats;
  bool drained = true;
  bool stuck = false;  ///< final watchdog verdict was kStuck
};

ReplicaOutcome run_one(const SweepPoint& point, std::uint64_t seed,
                       const engine::EngineConfig& engine_config) {
  sim::SimConfig config = point.config;
  config.seed = seed;
  core::Simulation sim(config);
  if (engine_config.parallel()) {
    sim.set_engine(
        engine::make_engine(engine_config, sim.topology().num_nodes()));
  }
  std::uint64_t stream = seed;
  const std::uint64_t pattern_seed = sim::splitmix64(stream);
  const std::uint64_t workload_seed = sim::splitmix64(stream);
  auto pattern =
      load::make_traffic(point.pattern, sim.topology(), sim::Rng{pattern_seed});
  load::FixedSize sizes(point.message_flits);
  const auto r =
      load::run_open_loop(sim, *pattern, sizes, point.offered_load,
                          point.warmup, point.measure, point.drain_cap,
                          workload_seed);
  return ReplicaOutcome{r.stats, r.drained,
                        r.watchdog_verdict == verify::Verdict::kStuck};
}

}  // namespace

SweepResult run_sweep(const std::vector<SweepPoint>& points,
                      const SweepOptions& options) {
  for (const auto& point : points) point.config.validate();
  const std::int32_t replicas = options.replicas > 0 ? options.replicas : 1;
  const std::size_t n = points.size() * static_cast<std::size_t>(replicas);

  // [det: local] wall-time measurement only; wall_seconds is reported
  // but excluded from the determinism contract and all digests.
  const auto start = std::chrono::steady_clock::now();
  std::vector<ReplicaOutcome> outcomes(n);
  const unsigned threads =
      n > 0 ? std::min<unsigned>(resolve_threads(options.threads),
                                 static_cast<unsigned>(n))
            : 1;
  run_indexed(
      n,
      [&](std::size_t i) {
        const std::size_t pi = i / static_cast<std::size_t>(replicas);
        const auto ri = static_cast<std::int32_t>(
            i % static_cast<std::size_t>(replicas));
        outcomes[i] = run_one(points[pi],
                              derive_seed(options.base_seed, pi, ri),
                              options.engine);
      },
      threads);

  // Merge serially in index order: the result is a pure function of the
  // outcome slots, so it does not depend on worker scheduling.
  SweepResult result;
  result.base_seed = options.base_seed;
  result.replicas = replicas;
  result.engine = options.engine;
  result.threads_used = threads;
  result.runs = n;
  result.points.reserve(points.size());
  for (std::size_t pi = 0; pi < points.size(); ++pi) {
    const SweepPoint& point = points[pi];
    PointSummary summary;
    summary.label = point.label;
    summary.pattern = point.pattern;
    summary.message_flits = point.message_flits;
    summary.offered_load = point.offered_load;
    summary.replicas = replicas;
    for (std::int32_t ri = 0; ri < replicas; ++ri) {
      const ReplicaOutcome& o =
          outcomes[pi * static_cast<std::size_t>(replicas) +
                   static_cast<std::size_t>(ri)];
      if (!o.drained) ++summary.saturated_replicas;
      if (o.stuck) ++summary.stuck_replicas;
      summary.messages_offered += o.stats.messages_offered;
      summary.messages_delivered += o.stats.messages_delivered;
      summary.flits_delivered += o.stats.flits_delivered;
      CounterSummary& c = summary.counters;
      c.probes_launched += o.stats.probes_launched;
      c.probe_backtracks += o.stats.probe_backtracks;
      c.probe_misroutes += o.stats.probe_misroutes;
      c.teardowns += o.stats.teardowns;
      c.fallback_count += o.stats.fallback_count;
      c.wormhole_count += o.stats.wormhole_count;
      c.cache_hits += o.stats.cache_hits;
      c.cache_misses += o.stats.cache_misses;
      c.cache_evictions += o.stats.cache_evictions;
      c.links_failed += o.stats.links_failed;
      c.links_restored += o.stats.links_restored;
      c.circuits_killed += o.stats.circuits_killed;
      c.circuits_invalidated += o.stats.circuits_invalidated;
      c.unreachable_fallbacks += o.stats.unreachable_fallbacks;
      c.routes_withdrawn += o.stats.routes_withdrawn;
      c.route_timeouts += o.stats.route_timeouts;
      MetricSummary& m = summary.metrics;
      m.latency_mean.add(o.stats.latency_mean);
      m.latency_p50.add(o.stats.latency_p50);
      m.latency_p95.add(o.stats.latency_p95);
      m.latency_p99.add(o.stats.latency_p99);
      m.latency_max.add(o.stats.latency_max);
      m.throughput.add(o.stats.throughput_flits_per_node_cycle);
      m.cache_hit_rate.add(o.stats.cache_hit_rate());
      m.setup_success_rate.add(o.stats.setup_success_rate());
    }
    result.points.push_back(std::move(summary));
  }
  result.wall_seconds =
      // [det: local] reported measurement, excluded from all digests.
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

namespace {

sim::JsonValue metric_json(const sim::OnlineStats& s) {
  return sim::JsonValue::object()
      .set("count", s.count())
      .set("mean", s.mean())
      .set("stddev", s.stddev())
      .set("min", s.min())
      .set("max", s.max());
}

}  // namespace

sim::JsonValue points_to_json(const SweepResult& result) {
  sim::JsonValue points = sim::JsonValue::array();
  for (const PointSummary& p : result.points) {
    sim::JsonValue metrics = sim::JsonValue::object();
    metrics.set("latency_mean", metric_json(p.metrics.latency_mean))
        .set("latency_p50", metric_json(p.metrics.latency_p50))
        .set("latency_p95", metric_json(p.metrics.latency_p95))
        .set("latency_p99", metric_json(p.metrics.latency_p99))
        .set("latency_max", metric_json(p.metrics.latency_max))
        .set("throughput_flits_per_node_cycle", metric_json(p.metrics.throughput))
        .set("cache_hit_rate", metric_json(p.metrics.cache_hit_rate))
        .set("setup_success_rate", metric_json(p.metrics.setup_success_rate));
    points.push_back(
        sim::JsonValue::object()
            .set("label", p.label)
            .set("pattern", p.pattern)
            .set("message_flits", p.message_flits)
            .set("offered_load", p.offered_load)
            .set("replicas", p.replicas)
            .set("saturated_replicas", p.saturated_replicas)
            .set("stuck_replicas", p.stuck_replicas)
            .set("messages_offered", p.messages_offered)
            .set("messages_delivered", p.messages_delivered)
            .set("flits_delivered", p.flits_delivered)
            .set("counters",
                 sim::JsonValue::object()
                     .set("probes_launched", p.counters.probes_launched)
                     .set("probe_backtracks", p.counters.probe_backtracks)
                     .set("probe_misroutes", p.counters.probe_misroutes)
                     .set("teardowns", p.counters.teardowns)
                     .set("fallback_count", p.counters.fallback_count)
                     .set("wormhole_count", p.counters.wormhole_count)
                     .set("cache_hits", p.counters.cache_hits)
                     .set("cache_misses", p.counters.cache_misses)
                     .set("cache_evictions", p.counters.cache_evictions)
                     .set("links_failed", p.counters.links_failed)
                     .set("links_restored", p.counters.links_restored)
                     .set("circuits_killed", p.counters.circuits_killed)
                     .set("circuits_invalidated",
                          p.counters.circuits_invalidated)
                     .set("unreachable_fallbacks",
                          p.counters.unreachable_fallbacks)
                     .set("routes_withdrawn", p.counters.routes_withdrawn)
                     .set("route_timeouts", p.counters.route_timeouts))
            .set("metrics", std::move(metrics)));
  }
  return points;
}

sim::JsonValue to_json(const SweepResult& result) {
  return sim::JsonValue::object()
      .set("schema", "wavesim.sweep.v1")
      .set("generated_by", sim::git_describe())
      .set("base_seed", result.base_seed)
      .set("replicas", result.replicas)
      .set("engine", result.engine.to_json())
      .set("threads", result.threads_used)
      .set("host_threads", std::thread::hardware_concurrency())
      .set("runs", result.runs)
      .set("wall_seconds", result.wall_seconds)
      .set("points", points_to_json(result));
}

sim::JsonValue stats_to_json(const core::SimulationStats& stats) {
  return sim::JsonValue::object()
      .set("messages_offered", stats.messages_offered)
      .set("messages_delivered", stats.messages_delivered)
      .set("flits_delivered", stats.flits_delivered)
      .set("latency_mean", stats.latency_mean)
      .set("latency_p50", stats.latency_p50)
      .set("latency_p95", stats.latency_p95)
      .set("latency_p99", stats.latency_p99)
      .set("latency_max", stats.latency_max)
      .set("throughput_flits_per_node_cycle",
           stats.throughput_flits_per_node_cycle)
      .set("circuit_hit_count", stats.circuit_hit_count)
      .set("circuit_setup_count", stats.circuit_setup_count)
      .set("fallback_count", stats.fallback_count)
      .set("wormhole_count", stats.wormhole_count)
      .set("circuit_hit_latency", stats.circuit_hit_latency)
      .set("circuit_setup_latency", stats.circuit_setup_latency)
      .set("fallback_latency", stats.fallback_latency)
      .set("wormhole_latency", stats.wormhole_latency)
      .set("cache_hits", stats.cache_hits)
      .set("cache_misses", stats.cache_misses)
      .set("cache_evictions", stats.cache_evictions)
      .set("probes_launched", stats.probes_launched)
      .set("probes_succeeded", stats.probes_succeeded)
      .set("probes_failed", stats.probes_failed)
      .set("probe_advances", stats.probe_advances)
      .set("probe_backtracks", stats.probe_backtracks)
      .set("probe_misroutes", stats.probe_misroutes)
      .set("release_requests", stats.release_requests)
      .set("teardowns", stats.teardowns)
      .set("buffer_reallocs", stats.buffer_reallocs)
      .set("faults", sim::JsonValue::object()
                         .set("links_failed", stats.links_failed)
                         .set("links_restored", stats.links_restored)
                         .set("circuits_killed", stats.circuits_killed)
                         .set("circuits_invalidated", stats.circuits_invalidated)
                         .set("probes_killed", stats.probes_killed)
                         .set("transfers_aborted", stats.transfers_aborted)
                         .set("unreachable_fallbacks",
                              stats.unreachable_fallbacks)
                         .set("routes_withdrawn", stats.routes_withdrawn)
                         .set("route_timeouts", stats.route_timeouts)
                         .set("dv_updates_sent", stats.dv_updates_sent)
                         .set("dv_triggered_updates", stats.dv_triggered_updates)
                         .set("dv_adverts_dropped", stats.dv_adverts_dropped));
}

}  // namespace wavesim::harness
