#include "harness/runner.hpp"

#include <algorithm>
#include <atomic>
#include <memory>

namespace wavesim::harness {

unsigned resolve_threads(unsigned requested) noexcept {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw != 0 ? hw : 1;
}

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned n = resolve_threads(threads);
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this](std::stop_token stop) { worker_loop(stop); });
  }
}

ThreadPool::~ThreadPool() {
  for (auto& w : workers_) w.request_stop();
  work_ready_.notify_all();
  // jthread destructors join.
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_ready_.notify_one();
}

void ThreadPool::worker_loop(std::stop_token stop) {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      work_ready_.wait(lock, [&] { return !queue_.empty() || stop.stop_requested(); });
      if (queue_.empty()) return;  // stop requested and nothing left to do
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    try {
      task();
    } catch (...) {
      std::lock_guard lock(mutex_);
      if (!error_) error_ = std::current_exception();
    }
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_.notify_all();
    }
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [&] { return queue_.empty() && in_flight_ == 0; });
  if (error_) {
    std::exception_ptr e = error_;
    error_ = nullptr;
    std::rethrow_exception(e);
  }
}

void ThreadPool::for_each_index(std::size_t n,
                                const std::function<void(std::size_t)>& fn) {
  for (std::size_t i = 0; i < n; ++i) {
    submit([&fn, i] { fn(i); });
  }
  wait_idle();
}

void ThreadPool::for_each_index_until(
    std::size_t n, const std::function<bool(std::size_t)>& fn) {
  auto stop_flag = std::make_shared<std::atomic<bool>>(false);
  for (std::size_t i = 0; i < n; ++i) {
    submit([&fn, stop_flag, i] {
      if (stop_flag->load(std::memory_order_relaxed)) return;
      if (!fn(i)) stop_flag->store(true, std::memory_order_relaxed);
    });
  }
  wait_idle();
}

void run_indexed(std::size_t n, const std::function<void(std::size_t)>& fn,
                 unsigned threads) {
  if (n == 0) return;
  const unsigned workers =
      std::min<unsigned>(resolve_threads(threads), static_cast<unsigned>(n));
  ThreadPool pool(workers);
  pool.for_each_index(n, fn);
}

}  // namespace wavesim::harness
