// Thread-pool runner for independent simulation tasks.
//
// The sweep harness fans one task per (config point x replica) across a
// pool of std::jthread workers pulling from a shared queue. Tasks are
// indexed; each task writes only its own output slot, so the set of
// results is independent of scheduling and thread count — determinism is
// re-established when the caller merges slots in index order.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace wavesim::harness {

/// Clamp a requested worker count: 0 means "all hardware threads", and the
/// result is always >= 1 even when hardware_concurrency() is unknown.
unsigned resolve_threads(unsigned requested) noexcept;

/// Fixed-size pool of std::jthread workers over a FIFO task queue.
/// submit() may be called from any thread; wait_idle() blocks until every
/// submitted task has finished. The first exception thrown by a task is
/// captured and rethrown from wait_idle().
class ThreadPool {
 public:
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const noexcept { return static_cast<unsigned>(workers_.size()); }

  void submit(std::function<void()> task);

  /// Block until the queue is empty and no task is running; rethrows the
  /// first captured task exception (subsequent tasks still ran).
  void wait_idle();

  /// Run fn(i) for every i in [0, n) on the pool and wait. Equivalent to
  /// n submit() calls + wait_idle().
  void for_each_index(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Like for_each_index, but fn returns false to request early exit:
  /// indices not yet started are skipped (already-running tasks finish).
  /// Which indices ran may depend on scheduling — callers needing
  /// determinism must tolerate extra completed indices past the first
  /// false (the scenario checker re-ranks results by index afterwards).
  void for_each_index_until(std::size_t n,
                            const std::function<bool(std::size_t)>& fn);

 private:
  void worker_loop(std::stop_token stop);

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;
  std::exception_ptr error_;
  std::vector<std::jthread> workers_;  // last member: joins before the rest die
};

/// One-shot convenience: run fn(i) for i in [0, n) on a transient pool of
/// `threads` workers (0 = hardware concurrency) and wait. Exceptions from
/// tasks propagate to the caller.
void run_indexed(std::size_t n, const std::function<void(std::size_t)>& fn,
                 unsigned threads = 0);

}  // namespace wavesim::harness
