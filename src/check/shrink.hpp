// Delta-debugging shrinker: given a violating scenario, greedily apply
// simplifying transformations (smaller topology, fewer knobs, less
// traffic) and keep any candidate that still violates, iterating to a
// fixpoint. The result is the smallest scenario this transformation set
// reaches that still reproduces *a* violation — ideal for triage, since a
// 2x2 run with four messages is readable where a 6x6x2 run is not.
#pragma once

#include <cstddef>

#include "check/oracle.hpp"
#include "check/scenario.hpp"

namespace wavesim::check {

struct ShrinkOptions {
  /// Hard cap on oracle runs spent shrinking one failure.
  std::size_t max_runs = 256;
  OracleOptions oracle;
};

struct ShrinkResult {
  Scenario scenario;      ///< smallest still-failing scenario reached
  RunOutcome outcome;     ///< its violations
  std::size_t runs = 0;   ///< oracle executions spent
  std::size_t accepted = 0;  ///< transformations that kept the failure
};

/// Precondition: run_scenario(scenario, options.oracle) reports at least
/// one violation (the caller just observed it). Deterministic.
ShrinkResult shrink(const Scenario& scenario, const RunOutcome& outcome,
                    const ShrinkOptions& options = {});

}  // namespace wavesim::check
