#include "check/oracle.hpp"

#include <exception>
#include <memory>
#include <sstream>
#include <unordered_map>

#include <algorithm>

#include "analysis/analyze.hpp"
#include "core/simulation.hpp"
#include "engine/engine.hpp"
#include "fault/plane.hpp"
#include "sim/rng.hpp"
#include "verify/delivery.hpp"
#include "verify/fsck.hpp"
#include "verify/watchdog.hpp"
#include "workload/size_dist.hpp"
#include "workload/traffic.hpp"

namespace wavesim::check {

namespace {

/// Event-stream livelock oracle (Theorem 3's observable shadow). MB-m
/// restores the misroute budget when it backtracks over a misrouted hop,
/// so the sound per-attempt invariants are:
///   misroutes  <= m + backtracks   (each backtrack refunds at most one)
///   backtracks <= directed channels (history forbids re-reserving a
///                                    channel within an attempt)
struct AttemptBudget {
  std::uint64_t misroutes = 0;
  std::uint64_t backtracks = 0;
};

/// Hop distances from `src` over the currently-alive links, by BFS. The
/// ground truth the distance-vector tables must agree with once settled.
std::vector<std::int32_t> bfs_over_alive(const topo::KAryNCube& topo,
                                         const fault::FaultPlane& fp,
                                         NodeId src) {
  std::vector<std::int32_t> dist(
      static_cast<std::size_t>(topo.num_nodes()), -1);
  std::vector<NodeId> frontier{src};
  dist[static_cast<std::size_t>(src)] = 0;
  while (!frontier.empty()) {
    std::vector<NodeId> next;
    for (const NodeId node : frontier) {
      for (PortId port = 0; port < topo.num_ports(); ++port) {
        if (!topo.has_neighbor(node, port)) continue;
        if (!fp.link_alive(node, port)) continue;
        const NodeId n = topo.neighbor(node, port);
        if (dist[static_cast<std::size_t>(n)] >= 0) continue;
        dist[static_cast<std::size_t>(n)] =
            dist[static_cast<std::size_t>(node)] + 1;
        next.push_back(n);
      }
    }
    frontier = std::move(next);
  }
  return dist;
}

std::unique_ptr<load::SizeDist> make_size_dist(const Scenario& s) {
  if (s.size_dist == "uniform" && s.max_flits > s.min_flits) {
    return std::make_unique<load::UniformSize>(s.min_flits, s.max_flits);
  }
  if (s.size_dist == "bimodal" && s.max_flits > s.min_flits) {
    return std::make_unique<load::BimodalSize>(s.min_flits, s.max_flits, 0.3);
  }
  return std::make_unique<load::FixedSize>(s.min_flits);
}

}  // namespace

std::string RunOutcome::summary() const {
  std::ostringstream os;
  if (ok()) {
    os << (saturated ? "saturated" : "ok") << " (" << delivered << "/"
       << offered << " delivered, cycle " << final_cycle << ", fp "
       << to_hex_u64(fingerprint) << ")";
    return os.str();
  }
  os << violations.size() << " violation(s):";
  for (const auto& v : violations) os << "\n  - " << v;
  return os.str();
}

RunOutcome run_scenario(const Scenario& scenario,
                        const OracleOptions& options) {
  RunOutcome out;
  sim::SimConfig config = scenario.to_config();
  try {
    config.validate();
  } catch (const std::exception& e) {
    out.violations.push_back(std::string("config invalid: ") + e.what());
    return out;
  }

  // Static analysis first: a violated premise of Theorems 1-4 (cyclic
  // escape CDG, cyclic extended wait-for graph, broken blocking rule)
  // means the deadlock-freedom precondition is gone, so simulating would
  // only tell us *whether* this run happens to trigger it. Fail fast and
  // deterministically with the analyzer's witness-bearing detail.
  const analysis::ConfigReport analysis_report =
      analysis::analyze_config(config);
  for (const auto& row : analysis_report.rows) {
    if (row.status != analysis::CheckStatus::kViolation) continue;
    out.violations.push_back("structural: " + row.id + ": " + row.detail);
  }
  if (!out.violations.empty()) return out;

  core::Simulation sim(config);
  if (scenario.engine_shards >= 1) {
    engine::EngineConfig engine_config;
    engine_config.kind = engine::EngineKind::kPar;
    engine_config.shards = scenario.engine_shards;
    sim.set_engine(
        engine::make_engine(engine_config, sim.topology().num_nodes()));
  }

  // Event sink: order-sensitive fingerprint + per-attempt misroute budgets.
  // The caps come from the same static bounds wavecheck reports (Theorems
  // 3/4), so the runtime oracle and the analyzer cannot drift apart.
  const std::uint64_t backtrack_cap =
      static_cast<std::uint64_t>(analysis_report.bounds.backtrack_cap);
  const std::uint64_t misroute_cap =
      static_cast<std::uint64_t>(analysis_report.bounds.misroute_budget);
  std::uint64_t fingerprint = 0x77617665u;  // "wave"
  std::unordered_map<CircuitId, AttemptBudget> budgets;
  sim.set_event_sink([&](const core::Event& ev) {
    fingerprint = sim::hash_mix(fingerprint ^ ev.at);
    fingerprint =
        sim::hash_mix(fingerprint ^ static_cast<std::uint64_t>(ev.kind));
    fingerprint =
        sim::hash_mix(fingerprint ^ static_cast<std::uint64_t>(ev.node));
    fingerprint =
        sim::hash_mix(fingerprint ^ static_cast<std::uint64_t>(ev.msg));
    fingerprint =
        sim::hash_mix(fingerprint ^ static_cast<std::uint64_t>(ev.circuit));
    fingerprint =
        sim::hash_mix(fingerprint ^ static_cast<std::uint64_t>(ev.port));
    if (ev.circuit == kInvalidCircuit) return;
    switch (ev.kind) {
      case core::EventKind::kProbeLaunched:
        budgets[ev.circuit] = AttemptBudget{};  // new attempt, fresh budget
        break;
      case core::EventKind::kMisrouted: {
        AttemptBudget& b = budgets[ev.circuit];
        ++b.misroutes;
        if (b.misroutes > misroute_cap + b.backtracks &&
            out.violations.size() < options.max_violations) {
          std::ostringstream os;
          os << "livelock: circuit " << ev.circuit << " took " << b.misroutes
             << " misroutes with " << b.backtracks
             << " backtracks in one attempt (budget m=" << misroute_cap
             << ") at cycle " << ev.at;
          out.violations.push_back(os.str());
        }
        break;
      }
      case core::EventKind::kBacktracked: {
        AttemptBudget& b = budgets[ev.circuit];
        ++b.backtracks;
        if (b.backtracks > backtrack_cap &&
            out.violations.size() < options.max_violations) {
          std::ostringstream os;
          os << "livelock: circuit " << ev.circuit << " backtracked "
             << b.backtracks << " times in one attempt (channel count "
             << backtrack_cap << ") at cycle " << ev.at;
          out.violations.push_back(os.str());
        }
        break;
      }
      default:
        break;
    }
  });

  // Workload streams fork deterministically from the scenario seed.
  sim::Rng root(scenario.seed);
  sim::Rng inject_rng = root.fork();
  sim::Rng pattern_rng = root.fork();
  sim::Rng carp_rng = root.fork();
  std::unique_ptr<load::TrafficPattern> pattern;
  try {
    pattern = load::make_traffic(scenario.pattern, sim.topology(), pattern_rng);
  } catch (const std::exception& e) {
    out.violations.push_back(std::string("workload invalid: ") + e.what());
    return out;
  }
  const std::unique_ptr<load::SizeDist> sizes = make_size_dist(scenario);
  const double p_message = scenario.load / sizes->mean();

  verify::ProgressWatchdog watchdog(sim.network(), options.watchdog_patience);
  const Cycle check_every =
      options.check_every > 0 ? options.check_every : 1024;
  bool stuck = false;
  auto periodic_checks = [&]() {
    if (watchdog.poll() == verify::Verdict::kStuck &&
        out.violations.size() < options.max_violations) {
      std::ostringstream os;
      os << "deadlock: no progress for " << watchdog.stalled_for()
         << " cycles with work pending at cycle " << sim.now();
      out.violations.push_back(os.str());
      stuck = true;
    }
    const verify::CheckResult fsck =
        verify::check_control_state(sim.network());
    for (const auto& v : fsck.violations) {
      if (out.violations.size() >= options.max_violations) break;
      std::ostringstream os;
      os << "fsck at cycle " << sim.now() << ": " << v;
      out.violations.push_back(os.str());
    }
  };
  auto abort_run = [&]() {
    return stuck || out.violations.size() >= options.max_violations;
  };

  const std::int32_t n = sim.topology().num_nodes();
  const bool carp = scenario.protocol == sim::ProtocolKind::kCarp;
  for (Cycle c = 0; c < scenario.inject_cycles && !abort_run(); ++c) {
    for (NodeId src = 0; src < n; ++src) {
      if (!inject_rng.chance(p_message)) continue;
      const NodeId dest = pattern->pick(src, inject_rng);
      const std::int32_t length = sizes->sample(inject_rng);
      if (carp && carp_rng.chance(0.3)) {
        sim.establish_circuit(src, dest, scenario.max_flits);
      }
      sim.send(src, dest, length);
      ++out.offered;
      if (carp && carp_rng.chance(0.1)) sim.release_circuit(src, dest);
    }
    sim.step();
    if (sim.now() % check_every == 0) periodic_checks();
  }

  // Drain. Hitting the cap while the watchdog still sees movement is
  // saturation (offered > capacity), not a protocol violation.
  const Cycle drain_deadline = sim.now() + scenario.drain_cap;
  while (!abort_run() && !sim.network().quiescent()) {
    if (sim.now() >= drain_deadline) {
      out.saturated = true;
      break;
    }
    sim.step();
    if (sim.now() % check_every == 0) periodic_checks();
  }

  out.final_cycle = sim.now();
  out.delivered = sim.network().messages_delivered();
  out.fingerprint = fingerprint;

  if (!abort_run() && !out.saturated) {
    const auto append = [&](const verify::CheckResult& result) {
      for (const auto& v : result.violations) {
        if (out.violations.size() >= options.max_violations) break;
        out.violations.push_back("post-run: " + v);
      }
    };
    append(verify::check_delivery(sim.network()));
    append(verify::check_drained(sim.network()));
    append(verify::check_control_state(sim.network()));

    // Reachability oracle: after a clean drain the fault plane is dormant
    // (quiescent() requires it), so every node's distance-vector table must
    // have converged to the BFS hop distances over the links that are
    // actually alive, capped at the RIP infinity. A stale route that
    // survived a link failure (or a withdrawal that never un-poisoned
    // after repair) shows up here as an exact metric mismatch.
    if (const fault::FaultPlane* fp = sim.network().fault_plane();
        fp != nullptr) {
      const auto& topo = sim.topology();
      const std::int32_t inf = fp->infinity();
      for (NodeId src = 0;
           src < n && out.violations.size() < options.max_violations; ++src) {
        const std::vector<std::int32_t> dist = bfs_over_alive(topo, *fp, src);
        for (NodeId dest = 0; dest < n; ++dest) {
          if (dest == src) continue;
          const std::int32_t d = dist[static_cast<std::size_t>(dest)];
          const std::int32_t expected = d < 0 ? inf : std::min(d, inf);
          const std::int32_t actual = fp->metric(src, dest);
          if (actual == expected) continue;
          if (out.violations.size() >= options.max_violations) break;
          std::ostringstream os;
          os << "reachability: node " << src << " route to " << dest
             << " has metric " << actual << " but BFS over alive links says "
             << (d < 0 ? "unreachable" : std::to_string(expected))
             << " (infinity " << inf << ") at cycle " << sim.now();
          out.violations.push_back(os.str());
        }
      }
    }
  }

  // Equivalence oracle: the parallel engine promises bit-identical results,
  // so a sequential re-run of the same scenario must match every observable
  // — including the order-sensitive event fingerprint. The twin has
  // engine_shards = 0, so the recursion terminates after one level.
  if (scenario.engine_shards >= 1 && options.check_engine_equivalence) {
    Scenario twin = scenario;
    twin.engine_shards = 0;
    const RunOutcome seq = run_scenario(twin, options);
    if (seq.fingerprint != out.fingerprint || seq.offered != out.offered ||
        seq.delivered != out.delivered ||
        seq.final_cycle != out.final_cycle ||
        seq.saturated != out.saturated ||
        seq.violations != out.violations) {
      std::ostringstream os;
      os << "engine equivalence: parallel run (shards="
         << scenario.engine_shards
         << ") diverged from the sequential stepper: par {fp "
         << to_hex_u64(out.fingerprint) << ", " << out.delivered << "/"
         << out.offered << " delivered, cycle " << out.final_cycle << ", "
         << out.violations.size() << " violation(s)} vs seq {fp "
         << to_hex_u64(seq.fingerprint) << ", " << seq.delivered << "/"
         << seq.offered << " delivered, cycle " << seq.final_cycle << ", "
         << seq.violations.size() << " violation(s)}";
      out.violations.push_back(os.str());
    }
  }
  return out;
}

}  // namespace wavesim::check
