// Model-vs-runtime cross-validation for BMC verdicts (wavecheck --bmc).
//
// The abstract model (src/model) and the concrete simulator share the MB-m
// decision procedure, but the model abstracts timing. This bridge closes
// the loop: the kStart steps of a BMC schedule become a concrete injection
// schedule, replayed through the real Simulation under the full per-cycle
// fsck (invariants I1-I7). The contract is agreement in both directions:
//   * a BMC counterexample must also break the concrete oracle stack for
//     at least one injection spacing (the abstract bug is real), and
//   * a clean exhaustive BMC run must replay with every message delivered,
//     no fsck violation, and a drained network (the model did not pass
//     because it abstracted the bug away).
// Disagreement either way is reported as a bmc-replay-agreement violation
// and fails the wavecheck run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/bmc.hpp"

namespace wavesim::check {

struct BmcReplayResult {
  /// "counterexample" or "clean".
  std::string mode;
  /// True when model and runtime agree (see contract above).
  bool agreed = false;
  /// One line per replayed spacing: what happened.
  std::vector<std::string> log;
  /// Summary suitable for a CheckRow detail.
  std::string detail;
};

/// Replay `report`'s verdict through the concrete simulator. Violated
/// reports replay the counterexample's launch schedule and expect the
/// oracle stack to object; clean complete reports replay the same job set
/// and expect a clean, drained run. Bounded-out reports (complete=false,
/// no violation) replay like clean ones — the runtime cannot contradict a
/// non-verdict, but a crash-free agreed run is still required.
BmcReplayResult replay_bmc(const model::BmcReport& report);

}  // namespace wavesim::check
