#include "check/scenario.hpp"

#include <algorithm>
#include <iterator>
#include <sstream>
#include <stdexcept>

#include "sim/rng.hpp"

namespace wavesim::check {

namespace {

constexpr std::int32_t kMaxDims = 3;
constexpr std::int32_t kMaxRadix = 6;
constexpr std::int32_t kMaxNodes = 64;
constexpr std::int32_t kMaxVcs = 4;
constexpr std::int32_t kMaxSwitches = 3;
constexpr std::int32_t kMaxMisroutes = 3;
constexpr std::int32_t kMaxCacheEntries = 8;
constexpr std::int32_t kMaxFlits = 96;
constexpr double kMinLoad = 0.002;
constexpr double kMaxLoad = 0.25;
constexpr std::uint64_t kMinInject = 128;
constexpr std::uint64_t kMaxInject = 2048;
constexpr std::uint64_t kMinDrainCap = 50'000;
constexpr std::uint64_t kMaxDrainCap = 1'000'000;
constexpr std::int32_t kMaxEngineShards = 8;
constexpr double kMaxStormFraction = 0.5;
constexpr std::uint64_t kMaxStormRepair = 20'000;

std::int32_t num_nodes_of(const std::vector<std::int32_t>& radix) {
  std::int32_t n = 1;
  for (const std::int32_t r : radix) n *= r;
  return n;
}

bool power_of_two(std::int32_t n) { return n > 0 && (n & (n - 1)) == 0; }

bool all_equal(const std::vector<std::int32_t>& radix) {
  return std::all_of(radix.begin(), radix.end(),
                     [&](std::int32_t r) { return r == radix.front(); });
}

template <typename T>
T clamped(T v, T lo, T hi) {
  return v < lo ? lo : (v > hi ? hi : v);
}

}  // namespace

sim::SimConfig Scenario::to_config() const {
  sim::SimConfig cfg;
  cfg.topology.radix = radix;
  cfg.topology.torus = torus;
  cfg.protocol.protocol = protocol;
  cfg.protocol.clrp_variant = variant;
  cfg.protocol.pcs_only = pcs_only;
  cfg.router.routing = routing;
  cfg.router.wormhole_vcs = wormhole_vcs;
  cfg.router.wave_switches = wave_switches;
  cfg.protocol.max_misroutes = max_misroutes;
  cfg.protocol.circuit_cache_entries = cache_entries;
  cfg.protocol.replacement = replacement;
  cfg.protocol.max_packet_flits = max_packet_flits;
  cfg.faults.link_fault_rate = link_fault_rate;
  if (storm_fraction > 0.0) {
    cfg.faults.storm.at = storm_at;
    cfg.faults.storm.fraction = storm_fraction;
    cfg.faults.storm.repair_after = storm_repair;
  }
  cfg.seed = seed;
  return cfg;
}

std::string Scenario::label() const {
  std::ostringstream os;
  for (std::size_t d = 0; d < radix.size(); ++d) {
    os << (d == 0 ? "" : "x") << radix[d];
  }
  os << (torus ? " torus " : " mesh ") << sim::to_string(protocol);
  if (protocol == sim::ProtocolKind::kClrp) {
    os << "/" << sim::to_string(variant);
    if (pcs_only) os << "/pcs-only";
  }
  os << " " << sim::to_string(routing) << " vcs=" << wormhole_vcs;
  if (protocol != sim::ProtocolKind::kWormholeOnly) {
    os << " k=" << wave_switches << " m=" << max_misroutes << " cache="
       << cache_entries << "/" << sim::to_string(replacement);
  }
  if (max_packet_flits > 0) os << " seg=" << max_packet_flits;
  if (link_fault_rate > 0.0) os << " faults=" << link_fault_rate;
  if (storm_fraction > 0.0) {
    os << " storm=" << storm_fraction << "@" << storm_at;
    if (storm_repair > 0) {
      os << "/r" << storm_repair;
    } else {
      os << "/perm";
    }
  }
  os << " " << pattern << "/" << size_dist << "[" << min_flits << ","
     << max_flits << "] load=" << load << " inject=" << inject_cycles;
  if (engine_shards >= 1) os << " engine=par:" << engine_shards;
  return os.str();
}

void Scenario::repair() {
  // Topology: 1..kMaxDims dimensions, radix 2..kMaxRadix each, at most
  // kMaxNodes nodes so one scenario stays cheap.
  if (radix.empty()) radix = {4, 4};
  if (static_cast<std::int32_t>(radix.size()) > kMaxDims) {
    radix.resize(kMaxDims);
  }
  for (auto& r : radix) r = clamped(r, 2, kMaxRadix);
  while (num_nodes_of(radix) > kMaxNodes) {
    auto largest = std::max_element(radix.begin(), radix.end());
    *largest = std::max(2, *largest / 2);
    if (*largest == 2 && num_nodes_of(radix) > kMaxNodes) radix.pop_back();
  }

  // Routing/topology consistency (see SimConfig::validate).
  if (routing == sim::RoutingKind::kWestFirst && radix.size() != 2) {
    routing = sim::RoutingKind::kNegativeFirst;
  }
  if (routing == sim::RoutingKind::kWestFirst ||
      routing == sim::RoutingKind::kNegativeFirst) {
    torus = false;
  }
  wormhole_vcs = clamped(wormhole_vcs, 1, kMaxVcs);
  if (torus && routing == sim::RoutingKind::kDimensionOrder) {
    wormhole_vcs = std::max(wormhole_vcs, 2);
  }
  if (routing == sim::RoutingKind::kDuatoAdaptive) {
    wormhole_vcs = std::max(wormhole_vcs, torus ? 3 : 2);
  }

  // Protocol knobs.
  if (protocol == sim::ProtocolKind::kWormholeOnly) {
    wave_switches = 0;
    pcs_only = false;
    link_fault_rate = 0.0;  // faults only hit circuit channels
  } else {
    wave_switches = clamped(wave_switches, 1, kMaxSwitches);
  }
  if (protocol != sim::ProtocolKind::kClrp) pcs_only = false;
  // With pcs_only nothing ever falls back to wormhole, so a fault that
  // disconnects a pair would spin on retries until the drain cap.
  if (pcs_only) link_fault_rate = 0.0;
  max_misroutes = clamped(max_misroutes, 0, kMaxMisroutes);
  cache_entries = clamped(cache_entries, 1, kMaxCacheEntries);
  if (max_packet_flits != 0) {
    max_packet_flits = clamped(max_packet_flits, 8, 64);
  }
  link_fault_rate = clamped(link_fault_rate, 0.0, 0.5);

  // Workload: pattern constraints come from workload/traffic.cpp.
  const std::int32_t nodes = num_nodes_of(radix);
  if (pattern == "transpose" && !all_equal(radix)) pattern = "uniform";
  if ((pattern == "bit-reversal" || pattern == "bit-complement") &&
      !power_of_two(nodes)) {
    pattern = "uniform";
  }
  if (size_dist != "uniform" && size_dist != "bimodal") size_dist = "fixed";
  min_flits = clamped(min_flits, 1, kMaxFlits);
  max_flits = clamped(max_flits, min_flits, kMaxFlits);
  if (size_dist == "fixed") max_flits = min_flits;
  load = clamped(load, kMinLoad, kMaxLoad);
  inject_cycles = clamped(inject_cycles, kMinInject, kMaxInject);
  drain_cap = clamped(drain_cap, kMinDrainCap, kMaxDrainCap);
  engine_shards = clamped(engine_shards, 0, kMaxEngineShards);

  // Dynamic fault storm: needs the wormhole fallback plus circuit planes
  // to fail, so wormhole-only and pcs_only configurations cannot carry one
  // (see SimConfig::validate). An active storm must land inside the
  // injection window (after it, traffic may drain before the storm ever
  // fires). Canonical inactive form is all-zero so shrinking towards zero
  // converges and repair stays idempotent.
  if (protocol == sim::ProtocolKind::kWormholeOnly || pcs_only) {
    storm_fraction = 0.0;
  }
  storm_fraction = clamped(storm_fraction, 0.0, kMaxStormFraction);
  if (storm_fraction > 0.0) {
    storm_at = clamped<std::uint64_t>(storm_at, 1, inject_cycles);
    storm_repair = clamped<std::uint64_t>(storm_repair, 0, kMaxStormRepair);
  } else {
    storm_at = 0;
    storm_repair = 0;
  }
}

Scenario Scenario::generate(std::uint64_t seed) {
  // Decouple the draw stream from the execution streams (which fork from
  // the same seed inside run_scenario) by salting the generator stream.
  sim::Rng rng(sim::hash_mix(seed ^ 0x5ca1ab1e0ddba11ULL));
  Scenario s;
  s.seed = seed;

  const std::int32_t dims =
      rng.chance(0.2) ? 1 : (rng.chance(0.75) ? 2 : 3);
  s.radix.clear();
  for (std::int32_t d = 0; d < dims; ++d) {
    s.radix.push_back(static_cast<std::int32_t>(rng.uniform_int(2, kMaxRadix)));
  }
  s.torus = rng.chance(0.7);

  const double protocol_draw = rng.uniform01();
  s.protocol = protocol_draw < 0.2   ? sim::ProtocolKind::kWormholeOnly
               : protocol_draw < 0.8 ? sim::ProtocolKind::kClrp
                                     : sim::ProtocolKind::kCarp;
  s.variant = static_cast<sim::ClrpVariant>(rng.uniform_int(0, 2));
  s.pcs_only = rng.chance(0.15);

  const double routing_draw = rng.uniform01();
  s.routing = routing_draw < 0.55   ? sim::RoutingKind::kDimensionOrder
              : routing_draw < 0.8  ? sim::RoutingKind::kDuatoAdaptive
              : routing_draw < 0.9  ? sim::RoutingKind::kWestFirst
                                    : sim::RoutingKind::kNegativeFirst;
  s.wormhole_vcs = static_cast<std::int32_t>(rng.uniform_int(1, kMaxVcs));
  s.wave_switches = static_cast<std::int32_t>(rng.uniform_int(1, kMaxSwitches));
  s.max_misroutes =
      static_cast<std::int32_t>(rng.uniform_int(0, kMaxMisroutes));
  s.cache_entries =
      static_cast<std::int32_t>(rng.uniform_int(1, kMaxCacheEntries));
  s.replacement = static_cast<sim::ReplacementPolicy>(rng.uniform_int(0, 3));
  s.max_packet_flits =
      rng.chance(0.3) ? static_cast<std::int32_t>(rng.uniform_int(8, 64)) : 0;
  s.link_fault_rate = rng.chance(0.3) ? 0.02 + 0.38 * rng.uniform01() : 0.0;

  static const char* const kPatterns[] = {
      "uniform", "hotspot",    "transpose",      "bit-reversal",
      "tornado", "neighbor",   "bit-complement", "working-set"};
  s.pattern = kPatterns[rng.next_below(std::size(kPatterns))];
  const double size_draw = rng.uniform01();
  s.size_dist =
      size_draw < 0.5 ? "fixed" : (size_draw < 0.8 ? "uniform" : "bimodal");
  s.min_flits = static_cast<std::int32_t>(rng.uniform_int(1, 32));
  s.max_flits =
      static_cast<std::int32_t>(rng.uniform_int(s.min_flits, kMaxFlits));
  s.load = kMinLoad + (kMaxLoad - kMinLoad) * rng.uniform01();
  s.inject_cycles = static_cast<std::uint64_t>(
      rng.uniform_int(static_cast<std::int64_t>(kMinInject),
                      static_cast<std::int64_t>(kMaxInject)));
  s.drain_cap = 120'000;
  // Half the scenarios run under the parallel engine (shard count drawn
  // too), turning every such property run into a seq/par equivalence test.
  s.engine_shards =
      rng.chance(0.5)
          ? static_cast<std::int32_t>(rng.uniform_int(1, kMaxEngineShards))
          : 0;
  // A third of the scenarios get a mid-run failure storm; of those, a third
  // never repair — permanent partitions are what the DV-vs-BFS reachability
  // oracle (and the stale-route mutation smoke) bite on hardest.
  if (rng.chance(1.0 / 3.0)) {
    s.storm_fraction = 0.10 + 0.30 * rng.uniform01();
    s.storm_at = static_cast<std::uint64_t>(
        rng.uniform_int(static_cast<std::int64_t>(kMinInject) / 2,
                        static_cast<std::int64_t>(kMaxInject)));
    s.storm_repair =
        rng.chance(1.0 / 3.0)
            ? 0
            : static_cast<std::uint64_t>(rng.uniform_int(500, 8'000));
  }

  s.repair();
  return s;
}

void Scenario::ensure_storm() {
  if (storm_fraction > 0.0) return;
  if (protocol == sim::ProtocolKind::kWormholeOnly) {
    protocol = sim::ProtocolKind::kClrp;
  }
  pcs_only = false;
  // Salt differs from generate()'s so the storm draws are independent of
  // the scenario draws even though both start from the same seed.
  sim::Rng rng(sim::hash_mix(seed ^ 0x57a2b1a57ed11c5ULL));
  storm_fraction = 0.10 + 0.30 * rng.uniform01();
  storm_at = static_cast<std::uint64_t>(
      rng.uniform_int(static_cast<std::int64_t>(kMinInject) / 2,
                      static_cast<std::int64_t>(kMaxInject)));
  storm_repair =
      rng.chance(1.0 / 3.0)
          ? 0
          : static_cast<std::uint64_t>(rng.uniform_int(500, 8'000));
  repair();
}

std::string to_hex_u64(std::uint64_t value) {
  std::ostringstream os;
  os << "0x" << std::hex << value;
  return os.str();
}

bool parse_hex_u64(const std::string& text, std::uint64_t& out) {
  if (text.size() < 3 || text.size() > 18 || text[0] != '0' ||
      (text[1] != 'x' && text[1] != 'X')) {
    return false;
  }
  std::uint64_t v = 0;
  for (std::size_t i = 2; i < text.size(); ++i) {
    const char c = text[i];
    std::uint64_t digit = 0;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint64_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      digit = static_cast<std::uint64_t>(c - 'A' + 10);
    } else {
      return false;
    }
    v = (v << 4) | digit;
  }
  out = v;
  return true;
}

sim::JsonValue Scenario::to_json() const {
  sim::JsonValue radix_json = sim::JsonValue::array();
  for (const std::int32_t r : radix) radix_json.push_back(r);
  // The seed is a full 64-bit value; JSON numbers are doubles here, so it
  // travels as a hex string to round-trip exactly.
  return sim::JsonValue::object()
      .set("seed", to_hex_u64(seed))
      .set("radix", std::move(radix_json))
      .set("torus", torus)
      .set("protocol", sim::to_string(protocol))
      .set("variant", sim::to_string(variant))
      .set("pcs_only", pcs_only)
      .set("routing", sim::to_string(routing))
      .set("wormhole_vcs", wormhole_vcs)
      .set("wave_switches", wave_switches)
      .set("max_misroutes", max_misroutes)
      .set("cache_entries", cache_entries)
      .set("replacement", sim::to_string(replacement))
      .set("max_packet_flits", max_packet_flits)
      .set("link_fault_rate", link_fault_rate)
      .set("storm_fraction", storm_fraction)
      .set("storm_at", storm_at)
      .set("storm_repair", storm_repair)
      .set("pattern", pattern)
      .set("size_dist", size_dist)
      .set("min_flits", min_flits)
      .set("max_flits", max_flits)
      .set("load", load)
      .set("inject_cycles", inject_cycles)
      .set("drain_cap", drain_cap)
      .set("engine_shards", engine_shards);
}

namespace {

[[noreturn]] void bad_field(const std::string& field, const char* why) {
  throw std::runtime_error("wavesim.repro.v1 scenario field '" + field +
                           "': " + why);
}

const sim::JsonValue& member(const sim::JsonValue& obj,
                             const std::string& field) {
  const sim::JsonValue* v = obj.find(field);
  if (v == nullptr) bad_field(field, "missing");
  return *v;
}

double get_number(const sim::JsonValue& obj, const std::string& field) {
  const sim::JsonValue& v = member(obj, field);
  if (!v.is_number()) bad_field(field, "not a number");
  return v.as_number();
}

std::int32_t get_int32(const sim::JsonValue& obj, const std::string& field) {
  return static_cast<std::int32_t>(get_number(obj, field));
}

std::uint64_t get_uint64(const sim::JsonValue& obj, const std::string& field) {
  const double v = get_number(obj, field);
  if (v < 0) bad_field(field, "negative");
  return static_cast<std::uint64_t>(v);
}

bool get_bool(const sim::JsonValue& obj, const std::string& field) {
  const sim::JsonValue& v = member(obj, field);
  if (!v.is_bool()) bad_field(field, "not a bool");
  return v.as_bool();
}

std::string get_string(const sim::JsonValue& obj, const std::string& field) {
  const sim::JsonValue& v = member(obj, field);
  if (!v.is_string()) bad_field(field, "not a string");
  return v.as_string();
}

template <typename Enum>
Enum get_enum(const sim::JsonValue& obj, const std::string& field) {
  const std::string name = get_string(obj, field);
  Enum out{};
  if (!sim::from_string(name, out)) bad_field(field, "unknown enum name");
  return out;
}

}  // namespace

Scenario Scenario::from_json(const sim::JsonValue& value) {
  if (!value.is_object()) {
    throw std::runtime_error("wavesim.repro.v1 scenario: not an object");
  }
  Scenario s;
  if (!parse_hex_u64(get_string(value, "seed"), s.seed)) {
    bad_field("seed", "not a 0x-prefixed hex string");
  }
  const sim::JsonValue& radix_json = member(value, "radix");
  if (!radix_json.is_array() || radix_json.size() == 0) {
    bad_field("radix", "not a non-empty array");
  }
  s.radix.clear();
  for (const auto& r : radix_json.elements()) {
    if (!r.is_number()) bad_field("radix", "non-numeric element");
    s.radix.push_back(static_cast<std::int32_t>(r.as_number()));
  }
  s.torus = get_bool(value, "torus");
  s.protocol = get_enum<sim::ProtocolKind>(value, "protocol");
  s.variant = get_enum<sim::ClrpVariant>(value, "variant");
  s.pcs_only = get_bool(value, "pcs_only");
  s.routing = get_enum<sim::RoutingKind>(value, "routing");
  s.wormhole_vcs = get_int32(value, "wormhole_vcs");
  s.wave_switches = get_int32(value, "wave_switches");
  s.max_misroutes = get_int32(value, "max_misroutes");
  s.cache_entries = get_int32(value, "cache_entries");
  s.replacement = get_enum<sim::ReplacementPolicy>(value, "replacement");
  s.max_packet_flits = get_int32(value, "max_packet_flits");
  s.link_fault_rate = get_number(value, "link_fault_rate");
  s.storm_fraction = get_number(value, "storm_fraction");
  s.storm_at = get_uint64(value, "storm_at");
  s.storm_repair = get_uint64(value, "storm_repair");
  s.pattern = get_string(value, "pattern");
  s.size_dist = get_string(value, "size_dist");
  s.min_flits = get_int32(value, "min_flits");
  s.max_flits = get_int32(value, "max_flits");
  s.load = get_number(value, "load");
  s.inject_cycles = get_uint64(value, "inject_cycles");
  s.drain_cap = get_uint64(value, "drain_cap");
  s.engine_shards = get_int32(value, "engine_shards");
  return s;
}

}  // namespace wavesim::check
