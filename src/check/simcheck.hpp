// simcheck driver: fan scenarios across a thread pool, collect failures,
// shrink them, and persist each as a `wavesim.repro.v1` JSON artifact that
// replays bit-identically (same seed => same event-stream fingerprint).
//
// Determinism contract: scenario i of a run is Scenario::generate(
// harness::derive_seed(base_seed, i, 0)) — independent of thread count,
// scheduling and wall clock. Early exit after max_failures may let a few
// extra scenarios past the first failure complete; the report is then
// re-ranked by index, so the *reported* failures are stable too.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "check/oracle.hpp"
#include "check/scenario.hpp"
#include "check/shrink.hpp"
#include "sim/json.hpp"

namespace wavesim::check {

struct SimcheckOptions {
  std::uint64_t base_seed = 1;
  std::size_t count = 100;
  unsigned threads = 0;           ///< 0 = all hardware threads
  std::size_t max_failures = 1;   ///< stop exploring after this many
  bool shrink_failures = true;
  /// Force a deterministic failure storm onto every scenario
  /// (Scenario::ensure_storm), so a whole run exercises the dynamic-fault
  /// machinery: link-down/-up handling, circuit invalidation, the
  /// distance-vector reachability oracle, seq/par equivalence under
  /// faults. The CI fault leg runs with this on.
  bool faulty = false;
  OracleOptions oracle;
  ShrinkOptions shrink;
};

/// One failing scenario, before and after shrinking. When shrinking is
/// disabled (or every transformation lost the failure) `shrunk` equals
/// `original`.
struct Failure {
  std::size_t index = 0;          ///< scenario index within the run
  Scenario original;
  RunOutcome original_outcome;
  Scenario shrunk;
  RunOutcome shrunk_outcome;
  std::size_t shrink_runs = 0;
  std::size_t shrink_accepted = 0;
};

struct Report {
  std::uint64_t base_seed = 0;
  std::size_t scenarios_run = 0;
  std::size_t saturated = 0;      ///< over-capacity runs (not failures)
  std::vector<Failure> failures;  ///< ascending index, <= max_failures
  bool ok() const noexcept { return failures.empty(); }
};

Report run_simcheck(const SimcheckOptions& options);

/// wavesim.repro.v1 document for one failure: the shrunk scenario (what
/// --replay executes), the original scenario, the violations observed and
/// the failing run's event fingerprint.
sim::JsonValue repro_to_json(const Failure& failure);

/// Parse a wavesim.repro.v1 document; throws std::runtime_error naming
/// what is malformed (bad schema id, missing field, type mismatch).
Failure repro_from_json(const sim::JsonValue& value);

/// Load + parse a repro file (throws std::runtime_error on I/O or format).
Failure load_repro(const std::string& path);

/// Serialize `failure` to `<dir>/repro-seed-<hex>.json`; returns the path,
/// or an empty string when the file cannot be written.
std::string write_repro(const Failure& failure, const std::string& dir);

}  // namespace wavesim::check
