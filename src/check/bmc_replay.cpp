#include "check/bmc_replay.hpp"

#include <sstream>
#include <utility>

#include "core/simulation.hpp"
#include "verify/delivery.hpp"
#include "verify/fsck.hpp"

namespace wavesim::check {

namespace {

constexpr Cycle kMaxReplayCycles = 20'000;
constexpr std::int32_t kReplayFlits = 16;

/// The launch order the schedule prescribes: kStart steps in trace order
/// for a counterexample, plain job order for a clean replay.
std::vector<std::int32_t> launch_order(const model::BmcReport& report) {
  std::vector<std::int32_t> order;
  for (const model::TraceStep& step : report.counterexample) {
    if (step.step.kind == model::StepKind::kStart) {
      order.push_back(step.step.job);
    }
  }
  // The schedule may violate before every job launched; append the rest so
  // the concrete run carries the same total load.
  std::vector<bool> seen(report.jobs.size(), false);
  for (std::int32_t j : order) seen[static_cast<std::size_t>(j)] = true;
  for (std::size_t j = 0; j < report.jobs.size(); ++j) {
    if (!seen[j]) order.push_back(static_cast<std::int32_t>(j));
  }
  return order;
}

struct SpacingOutcome {
  bool violated = false;   ///< fsck / drain / delivery objected
  std::string what;        ///< first objection (empty when clean)
};

/// One concrete run: inject the job set in `order`, `spacing` cycles
/// apart, stepping under a per-cycle control-plane fsck.
SpacingOutcome replay_once(const model::BmcReport& report,
                           const std::vector<std::int32_t>& order,
                           Cycle spacing) {
  SpacingOutcome outcome;
  core::Simulation sim(report.config);
  const bool carp =
      report.config.protocol.protocol == sim::ProtocolKind::kCarp;

  const auto fsck = [&]() {
    const verify::CheckResult res =
        verify::check_control_state(sim.network());
    if (!res.ok() && !outcome.violated) {
      outcome.violated = true;
      outcome.what = "fsck at cycle " + std::to_string(sim.now()) + ": " +
                     res.violations.front();
    }
    return outcome.violated;
  };

  std::vector<MessageId> ids;
  for (std::size_t i = 0; i < order.size(); ++i) {
    const model::Job& job =
        report.jobs[static_cast<std::size_t>(order[i])];
    if (carp) sim.establish_circuit(job.src, job.dest, kReplayFlits);
    ids.push_back(sim.send(job.src, job.dest, kReplayFlits));
    if (i + 1 < order.size()) {
      for (Cycle c = 0; c < spacing; ++c) {
        sim.step();
        if (fsck()) return outcome;
      }
    }
  }

  const auto all_done = [&]() {
    for (MessageId id : ids) {
      if (!sim.message_done(id)) return false;
    }
    return true;
  };

  Cycle waited = 0;
  while (!(all_done() && sim.network().quiescent())) {
    if (waited++ >= kMaxReplayCycles) {
      outcome.violated = true;
      if (all_done()) {
        outcome.what = "network failed to drain within " +
                       std::to_string(kMaxReplayCycles) + " cycles";
      } else {
        outcome.what = "messages undelivered after " +
                       std::to_string(kMaxReplayCycles) + " cycles";
      }
      return outcome;
    }
    sim.step();
    if (fsck()) return outcome;
  }

  const verify::CheckResult drained = verify::check_drained(sim.network());
  if (!drained.ok()) {
    outcome.violated = true;
    outcome.what = "drained-state check: " + drained.violations.front();
  }
  return outcome;
}

}  // namespace

BmcReplayResult replay_bmc(const model::BmcReport& report) {
  BmcReplayResult result;
  const bool violated = !report.violated_row.empty();
  result.mode = violated ? "counterexample" : "clean";
  const std::vector<std::int32_t> order = launch_order(report);

  // Timing is the one thing the model abstracts, so a counterexample gets
  // several injection spacings; any one reproducing the failure confirms
  // the schedule is realizable. A clean verdict must survive all of them.
  const std::vector<Cycle> spacings =
      violated ? std::vector<Cycle>{0, 2, 6, 12} : std::vector<Cycle>{0, 4};

  bool any_violated = false;
  bool all_clean = true;
  for (Cycle spacing : spacings) {
    const SpacingOutcome outcome = replay_once(report, order, spacing);
    std::ostringstream line;
    line << "spacing " << spacing << ": "
         << (outcome.violated ? outcome.what : "clean run, drained");
    result.log.push_back(line.str());
    if (outcome.violated) {
      any_violated = true;
      all_clean = false;
    }
  }

  std::ostringstream detail;
  if (violated) {
    result.agreed = any_violated;
    if (result.agreed) {
      detail << "concrete replay reproduces the " << report.violated_row
             << " counterexample";
    } else {
      detail << "DISAGREEMENT: concrete replay stayed clean for every "
             << "spacing despite the " << report.violated_row
             << " counterexample";
    }
  } else {
    result.agreed = all_clean;
    if (result.agreed) {
      detail << "concrete replay agrees: delivered, fsck-clean and drained "
             << "for every spacing";
    } else {
      detail << "DISAGREEMENT: concrete replay failed although the model "
             << "found no violation";
    }
  }
  detail << " [" << result.log.front();
  for (std::size_t i = 1; i < result.log.size(); ++i) {
    detail << "; " << result.log[i];
  }
  detail << ']';
  result.detail = detail.str();
  return result;
}

}  // namespace wavesim::check
