// One simcheck scenario: everything Theorems 1-4 quantify over, flattened
// into a plain struct so it can be (a) drawn from a single 64-bit seed,
// (b) mutated by the shrinker one field at a time, and (c) round-tripped
// through a wavesim.repro.v1 JSON file for bit-identical replay.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/config.hpp"
#include "sim/json.hpp"

namespace wavesim::check {

/// "0x"-prefixed lowercase hex. JsonValue numbers are doubles, which cannot
/// hold an arbitrary 64-bit seed or fingerprint exactly, so those fields
/// travel through repro files as hex strings.
std::string to_hex_u64(std::uint64_t value);

/// Inverse of to_hex_u64 (accepts upper/lower case); false on bad input.
bool parse_hex_u64(const std::string& text, std::uint64_t& out);

struct Scenario {
  /// Drives both generation (which values below were drawn) and execution
  /// (traffic arrivals, destinations, message lengths, CARP call sites).
  std::uint64_t seed = 1;

  // -- topology -----------------------------------------------------------
  std::vector<std::int32_t> radix{4, 4};
  bool torus = true;

  // -- protocol / router --------------------------------------------------
  sim::ProtocolKind protocol = sim::ProtocolKind::kClrp;
  sim::ClrpVariant variant = sim::ClrpVariant::kFull;
  bool pcs_only = false;
  sim::RoutingKind routing = sim::RoutingKind::kDimensionOrder;
  std::int32_t wormhole_vcs = 2;
  std::int32_t wave_switches = 1;   ///< k
  std::int32_t max_misroutes = 1;   ///< m of MB-m
  std::int32_t cache_entries = 2;
  sim::ReplacementPolicy replacement = sim::ReplacementPolicy::kLru;
  std::int32_t max_packet_flits = 0;  ///< wormhole segmentation (0 = off)
  double link_fault_rate = 0.0;

  // -- dynamic faults ------------------------------------------------------
  /// Failure storm: at cycle storm_at, storm_fraction of all bidirectional
  /// circuit links fail at once; each recovers storm_repair cycles later
  /// (0 = permanent). Inactive when storm_fraction == 0 (then the other
  /// two fields are canonically zero). Exercises link-down/-up handling,
  /// circuit invalidation and the distance-vector reachability layer.
  double storm_fraction = 0.0;
  std::uint64_t storm_at = 0;
  std::uint64_t storm_repair = 0;

  // -- workload -----------------------------------------------------------
  std::string pattern = "uniform";   ///< load::make_traffic name
  std::string size_dist = "fixed";   ///< fixed | uniform | bimodal
  std::int32_t min_flits = 16;
  std::int32_t max_flits = 16;       ///< == min_flits for "fixed"
  double load = 0.02;                ///< offered flits per node per cycle
  std::uint64_t inject_cycles = 1024;
  std::uint64_t drain_cap = 400'000;

  // -- execution engine -----------------------------------------------------
  /// 0 = sequential stepper, >= 1 = sharded parallel engine with that many
  /// shards. By the engine's bit-identity contract this must never change
  /// the outcome; it is drawn from the seed so roughly half of all property
  /// runs double as seq/par equivalence tests (see the oracle stack).
  std::int32_t engine_shards = 0;

  friend bool operator==(const Scenario&, const Scenario&) = default;

  /// SimConfig this scenario runs under (seeded with `seed`).
  sim::SimConfig to_config() const;

  /// Short one-line description for reports, e.g.
  /// "4x4 torus clrp/full dor k=1 m=1 cache=2/lru uniform load=0.02".
  std::string label() const;

  /// Make the scenario self-consistent: clamps every field into its legal
  /// range and resolves cross-field constraints (west-first needs a 2-D
  /// mesh, bit patterns need power-of-two node counts, ...) so that
  /// to_config().validate() always passes. Deterministic, idempotent.
  void repair();

  /// Draw a random scenario from `seed` alone (generate(s) == generate(s)
  /// forever — the seed is the scenario's identity). Already repaired.
  static Scenario generate(std::uint64_t seed);

  /// Force a dynamic failure storm onto the scenario, drawn
  /// deterministically from the seed. Wormhole-only and pcs-only
  /// configurations cannot carry one (repair() would zero it), so they
  /// are first switched to plain CLRP. No-op when a storm is already
  /// present. Backs simcheck --faulty: every scenario fault-bearing.
  void ensure_storm();

  /// wavesim.repro.v1 "scenario" object (field name -> value).
  sim::JsonValue to_json() const;

  /// Strict inverse of to_json: throws std::runtime_error naming the field
  /// on a missing member, a type mismatch or an unknown enum name, so a
  /// corrupt repro artifact is rejected instead of misinterpreted.
  static Scenario from_json(const sim::JsonValue& value);
};

}  // namespace wavesim::check
