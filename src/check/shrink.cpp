#include "check/shrink.hpp"

#include <algorithm>
#include <functional>
#include <vector>

namespace wavesim::check {

namespace {

/// One candidate simplification. Ordered roughly by how much each removes:
/// big structural cuts first so the expensive early runs shrink the search
/// space fastest, cosmetic knob resets last.
using Transform = std::function<void(Scenario&)>;

std::vector<Transform> transforms() {
  return {
      // -- traffic volume ---------------------------------------------------
      [](Scenario& s) {
        s.inject_cycles = std::max<std::uint64_t>(128, s.inject_cycles / 2);
      },
      [](Scenario& s) { s.load /= 2; },
      // -- topology ---------------------------------------------------------
      [](Scenario& s) {
        if (s.radix.size() > 1) s.radix.pop_back();
      },
      [](Scenario& s) {
        auto largest = std::max_element(s.radix.begin(), s.radix.end());
        *largest = std::max(2, *largest / 2);
      },
      [](Scenario& s) {
        auto largest = std::max_element(s.radix.begin(), s.radix.end());
        *largest = std::max(2, *largest - 1);
      },
      [](Scenario& s) { s.torus = false; },
      // -- engine -----------------------------------------------------------
      // Try the sequential stepper first (a failure that survives without
      // the engine is not a synchronization bug); otherwise walk the shard
      // count down to find the smallest parallel configuration that still
      // diverges. Both are strictly reducing toward engine_shards = 0.
      [](Scenario& s) { s.engine_shards = 0; },
      [](Scenario& s) {
        s.engine_shards = std::max(0, s.engine_shards / 2);
      },
      // -- workload shape ---------------------------------------------------
      [](Scenario& s) { s.pattern = "uniform"; },
      [](Scenario& s) {
        s.size_dist = "fixed";
        s.max_flits = s.min_flits;
      },
      [](Scenario& s) { s.min_flits = std::max(1, s.min_flits / 2); },
      [](Scenario& s) { s.link_fault_rate = 0.0; },
      [](Scenario& s) { s.max_packet_flits = 0; },
      // -- dynamic faults ---------------------------------------------------
      // Drop the storm entirely first; otherwise weaken it (fewer links,
      // no recovery wave). All strictly reducing toward the all-zero
      // canonical form repair() maintains.
      [](Scenario& s) { s.storm_fraction = 0.0; },
      [](Scenario& s) { s.storm_fraction /= 2; },
      [](Scenario& s) { s.storm_repair = 0; },
      // -- protocol ---------------------------------------------------------
      [](Scenario& s) { s.pcs_only = false; },
      [](Scenario& s) { s.variant = sim::ClrpVariant::kFull; },
      // Keep every transform idempotent-or-strictly-reducing so the greedy
      // fixpoint terminates (CLRP<->wormhole would oscillate otherwise).
      [](Scenario& s) {
        if (s.protocol == sim::ProtocolKind::kCarp) {
          s.protocol = sim::ProtocolKind::kClrp;
        }
      },
      [](Scenario& s) { s.protocol = sim::ProtocolKind::kWormholeOnly; },
      [](Scenario& s) { s.wave_switches = 1; },
      [](Scenario& s) {
        s.max_misroutes = std::max(0, s.max_misroutes - 1);
      },
      [](Scenario& s) { s.cache_entries = 1; },
      [](Scenario& s) { s.replacement = sim::ReplacementPolicy::kLru; },
      // -- router -----------------------------------------------------------
      [](Scenario& s) {
        s.wormhole_vcs = std::max(1, s.wormhole_vcs - 1);
      },
      [](Scenario& s) { s.routing = sim::RoutingKind::kDimensionOrder; },
  };
}

}  // namespace

ShrinkResult shrink(const Scenario& scenario, const RunOutcome& outcome,
                    const ShrinkOptions& options) {
  ShrinkResult result;
  result.scenario = scenario;
  result.outcome = outcome;

  const std::vector<Transform> candidates = transforms();
  bool improved = true;
  while (improved && result.runs < options.max_runs) {
    improved = false;
    for (const Transform& t : candidates) {
      if (result.runs >= options.max_runs) break;
      Scenario candidate = result.scenario;
      t(candidate);
      candidate.repair();
      if (candidate == result.scenario) continue;  // no-op here
      RunOutcome candidate_outcome =
          run_scenario(candidate, options.oracle);
      ++result.runs;
      if (candidate_outcome.ok()) continue;  // lost the failure; discard
      result.scenario = candidate;
      result.outcome = std::move(candidate_outcome);
      ++result.accepted;
      improved = true;
    }
  }
  return result;
}

}  // namespace wavesim::check
