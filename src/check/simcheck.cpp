#include "check/simcheck.hpp"

#include <atomic>
#include <optional>
#include <stdexcept>
#include <utility>

#include "harness/runner.hpp"
#include "harness/sweep.hpp"

namespace wavesim::check {

namespace {

constexpr const char* kSchema = "wavesim.repro.v1";

sim::JsonValue outcome_to_json(const RunOutcome& outcome) {
  sim::JsonValue violations = sim::JsonValue::array();
  for (const auto& v : outcome.violations) violations.push_back(v);
  return sim::JsonValue::object()
      .set("violations", std::move(violations))
      .set("saturated", outcome.saturated)
      .set("offered", outcome.offered)
      .set("delivered", outcome.delivered)
      .set("final_cycle", outcome.final_cycle)
      .set("fingerprint", to_hex_u64(outcome.fingerprint));
}

RunOutcome outcome_from_json(const sim::JsonValue& value) {
  RunOutcome out;
  const sim::JsonValue* violations = value.find("violations");
  if (violations == nullptr || !violations->is_array()) {
    throw std::runtime_error("wavesim.repro.v1: bad 'violations'");
  }
  for (const auto& v : violations->elements()) {
    out.violations.push_back(v.as_string());
  }
  const sim::JsonValue* fp = value.find("fingerprint");
  if (fp == nullptr || !fp->is_string() ||
      !parse_hex_u64(fp->as_string(), out.fingerprint)) {
    throw std::runtime_error("wavesim.repro.v1: bad 'fingerprint'");
  }
  if (const sim::JsonValue* v = value.find("saturated")) {
    out.saturated = v->as_bool();
  }
  if (const sim::JsonValue* v = value.find("offered")) {
    out.offered = static_cast<std::uint64_t>(v->as_number());
  }
  if (const sim::JsonValue* v = value.find("delivered")) {
    out.delivered = static_cast<std::uint64_t>(v->as_number());
  }
  if (const sim::JsonValue* v = value.find("final_cycle")) {
    out.final_cycle = static_cast<Cycle>(v->as_number());
  }
  return out;
}

}  // namespace

Report run_simcheck(const SimcheckOptions& options) {
  Report report;
  report.base_seed = options.base_seed;
  if (options.count == 0) return report;

  struct Slot {
    Scenario scenario;
    std::optional<RunOutcome> outcome;
  };
  std::vector<Slot> slots(options.count);
  std::atomic<std::size_t> failures_seen{0};

  harness::ThreadPool pool(options.threads);
  pool.for_each_index_until(options.count, [&](std::size_t i) {
    Slot& slot = slots[i];
    slot.scenario =
        Scenario::generate(harness::derive_seed(options.base_seed, i, 0));
    if (options.faulty) slot.scenario.ensure_storm();
    slot.outcome = run_scenario(slot.scenario, options.oracle);
    if (!slot.outcome->ok()) {
      return failures_seen.fetch_add(1) + 1 < options.max_failures;
    }
    return failures_seen.load() < options.max_failures;
  });

  // Early exit lets scheduling decide which tail indices ran; re-ranking by
  // index here makes the report deterministic anyway.
  for (std::size_t i = 0; i < slots.size(); ++i) {
    Slot& slot = slots[i];
    if (!slot.outcome.has_value()) continue;
    ++report.scenarios_run;
    if (slot.outcome->saturated) ++report.saturated;
    if (slot.outcome->ok() || report.failures.size() >= options.max_failures) {
      continue;
    }
    Failure failure;
    failure.index = i;
    failure.original = slot.scenario;
    failure.original_outcome = *slot.outcome;
    failure.shrunk = slot.scenario;
    failure.shrunk_outcome = std::move(*slot.outcome);
    report.failures.push_back(std::move(failure));
  }

  if (options.shrink_failures) {
    for (Failure& failure : report.failures) {
      ShrinkResult shrunk =
          shrink(failure.original, failure.original_outcome, options.shrink);
      failure.shrunk = std::move(shrunk.scenario);
      failure.shrunk_outcome = std::move(shrunk.outcome);
      failure.shrink_runs = shrunk.runs;
      failure.shrink_accepted = shrunk.accepted;
    }
  }
  return report;
}

sim::JsonValue repro_to_json(const Failure& failure) {
  return sim::JsonValue::object()
      .set("schema", kSchema)
      .set("scenario", failure.shrunk.to_json())
      .set("outcome", outcome_to_json(failure.shrunk_outcome))
      .set("original_scenario", failure.original.to_json())
      .set("original_outcome", outcome_to_json(failure.original_outcome))
      .set("shrink_runs", failure.shrink_runs)
      .set("shrink_accepted", failure.shrink_accepted);
}

Failure repro_from_json(const sim::JsonValue& value) {
  if (!value.is_object()) {
    throw std::runtime_error("wavesim.repro.v1: not an object");
  }
  const sim::JsonValue* schema = value.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != kSchema) {
    throw std::runtime_error("wavesim.repro.v1: missing or wrong 'schema'");
  }
  const sim::JsonValue* scenario = value.find("scenario");
  if (scenario == nullptr) {
    throw std::runtime_error("wavesim.repro.v1: missing 'scenario'");
  }
  Failure failure;
  failure.shrunk = Scenario::from_json(*scenario);
  const sim::JsonValue* outcome = value.find("outcome");
  if (outcome == nullptr) {
    throw std::runtime_error("wavesim.repro.v1: missing 'outcome'");
  }
  failure.shrunk_outcome = outcome_from_json(*outcome);
  // The original is informative only; fall back to the shrunk scenario on
  // older / hand-written files.
  if (const sim::JsonValue* original = value.find("original_scenario")) {
    failure.original = Scenario::from_json(*original);
  } else {
    failure.original = failure.shrunk;
  }
  if (const sim::JsonValue* original = value.find("original_outcome")) {
    failure.original_outcome = outcome_from_json(*original);
  } else {
    failure.original_outcome = failure.shrunk_outcome;
  }
  if (const sim::JsonValue* v = value.find("shrink_runs")) {
    failure.shrink_runs = static_cast<std::size_t>(v->as_number());
  }
  if (const sim::JsonValue* v = value.find("shrink_accepted")) {
    failure.shrink_accepted = static_cast<std::size_t>(v->as_number());
  }
  return failure;
}

Failure load_repro(const std::string& path) {
  return repro_from_json(sim::read_json_file(path));
}

std::string write_repro(const Failure& failure, const std::string& dir) {
  std::string path = dir;
  if (!path.empty() && path.back() != '/') path += '/';
  path += "repro-seed-" + to_hex_u64(failure.original.seed) + ".json";
  if (!sim::write_json_file(repro_to_json(failure), path)) return {};
  return path;
}

}  // namespace wavesim::check
