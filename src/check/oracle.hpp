// The invariant-oracle stack one scenario runs under.
//
// Layered the way the paper's guarantees are layered:
//   structural  — escape-channel CDG acyclicity (Dally & Seitz / Duato),
//                 checked before a single cycle is simulated;
//   dynamic     — progress watchdog (deadlock, Theorems 1/2), per-attempt
//                 misroute budget m from the event stream (livelock,
//                 Theorem 3), periodic control-plane fsck (I1-I6);
//   post-run    — delivery completeness/causality/ordering/conservation,
//                 drained-state leak check, probe-step bound;
//   equivalence — a scenario that ran under the sharded parallel engine
//                 (engine_shards >= 1) is re-run under the sequential
//                 stepper and every observable (event fingerprint, offered,
//                 delivered, final cycle, saturation, violations) must
//                 match, so synchronization bugs surface as violations.
//
// The run also folds every instrumentation event into an order-sensitive
// 64-bit fingerprint, which is what "bit-identical replay" is checked
// against: two runs of the same scenario must produce the same event
// sequence, not merely the same aggregate counters.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/scenario.hpp"
#include "sim/types.hpp"

namespace wavesim::check {

struct OracleOptions {
  /// Interval (cycles) between watchdog polls and control-plane fscks.
  Cycle check_every = 1024;
  /// No movement with pending work for this many cycles => stuck verdict.
  Cycle watchdog_patience = 20'000;
  /// Stop collecting after this many violations (the run aborts early).
  std::size_t max_violations = 8;
  /// Re-run engine_shards >= 1 scenarios under the sequential stepper and
  /// require identical outcomes (the engine's bit-identity contract).
  /// Costs one extra sequential run per parallel scenario. Stays on while
  /// shrinking so a minimized repro preserves an equivalence violation.
  bool check_engine_equivalence = true;
};

struct RunOutcome {
  std::vector<std::string> violations;
  /// Drain cap elapsed while the watchdog still saw progress: the offered
  /// load exceeded capacity. Not a violation — completeness checks are
  /// skipped, everything else still applies.
  bool saturated = false;
  std::uint64_t offered = 0;
  std::uint64_t delivered = 0;
  Cycle final_cycle = 0;
  /// Order-sensitive digest of the full instrumentation event stream.
  std::uint64_t fingerprint = 0;

  bool ok() const noexcept { return violations.empty(); }
  std::string summary() const;
};

/// Run `scenario` under the full oracle stack. Deterministic: equal
/// scenarios produce equal RunOutcomes (including the fingerprint).
/// A scenario whose config fails validate() yields a violation rather
/// than a throw, so hand-edited repro files degrade gracefully.
RunOutcome run_scenario(const Scenario& scenario,
                        const OracleOptions& options = {});

}  // namespace wavesim::check
