// wavesim.snap.v1: versioned container for deterministic full-state
// snapshots of a Simulation.
//
// Layout: magic string, then a table of named sections, each a
// length-prefixed byte blob produced by snap::Archive. The two sections
// every snapshot carries are "config" (the complete SimConfig, so a
// restore can rebuild the object graph) and "network" (every mutable
// bit of Network state). Higher layers append more sections to the same
// container — src/snap/runstate.hpp adds "runspec"/"pattern"/"driver"
// for checkpointable open-loop runs — without this file knowing about
// them.
//
// Guarantee (tests/test_snap.cpp): restore(snapshot(S)) followed by N
// cycles is bit-identical to stepping S directly for N cycles — same
// digests, same run.v1 JSON — across engines, shard counts and
// lookahead windows, because Network::snap captures the full quiesced
// state (see the seam contract in core/step_engine.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "snap/archive.hpp"

namespace wavesim::sim {
struct SimConfig;
}  // namespace wavesim::sim

namespace wavesim::core {
class Simulation;
}  // namespace wavesim::core

namespace wavesim::snap {

class Snapshot {
 public:
  static constexpr const char* kMagic = "wavesim.snap.v1";

  /// Add or replace a named section.
  void set(std::string name, std::vector<std::uint8_t> bytes);

  bool has(const std::string& name) const noexcept;

  /// Section payload; throws ArchiveError when the section is missing.
  const std::vector<std::uint8_t>& section(const std::string& name) const;

  /// Section names in insertion (= encoding) order.
  std::vector<std::string> names() const;

  /// Serialize to / parse from the on-disk byte format. decode() throws
  /// ArchiveError on a bad magic, truncation, or trailing bytes.
  std::vector<std::uint8_t> encode() const;
  static Snapshot decode(const std::vector<std::uint8_t>& bytes);

  /// Order-sensitive 64-bit digest over section names and payloads.
  /// Equal states produce equal digests (the byte stream is a pure
  /// function of simulation state); used by tests and the checkpoint
  /// metadata stamp.
  std::uint64_t digest() const noexcept;

  /// Write encode() to `path` atomically (tmp file + rename), so a
  /// crash mid-write never leaves a torn snapshot behind. Throws
  /// std::runtime_error on I/O failure.
  void save(const std::string& path) const;

  /// Read and decode `path`; throws std::runtime_error when the file
  /// cannot be read and ArchiveError when it is corrupt.
  static Snapshot load(const std::string& path);

 private:
  std::vector<std::pair<std::string, std::vector<std::uint8_t>>> sections_;
};

/// SimConfig round trip, field by field (the struct holds vectors and
/// padding, so it must never be memcpy'd).
void snap_config(Archive& ar, sim::SimConfig& config);

/// Capture the complete state of `sim` into sections "config" and
/// "network". Must be called between whole steps (the quiesce seam in
/// core/step_engine.hpp) — never from inside a step hook.
Snapshot snapshot_simulation(core::Simulation& sim);

/// Decode and validate() the embedded configuration.
sim::SimConfig restore_config(const Snapshot& snapshot);

/// Overwrite `sim` with the snapshot's network state. `sim` must have
/// been constructed from restore_config(snapshot)'s result; a config
/// mismatch throws ArchiveError instead of corrupting state.
void restore_simulation(const Snapshot& snapshot, core::Simulation& sim);

}  // namespace wavesim::snap
