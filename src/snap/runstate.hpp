// Checkpointable open-loop runs: a RunSpec names the whole experiment
// (configuration + workload + spans + seed), and CheckpointableRun owns
// every object a run needs — Simulation, traffic pattern, size
// distribution, OpenLoopDriver — so the complete run can be captured
// into one wavesim.snap.v1 container and resumed in a fresh process.
//
// The resumed run is bit-identical to an uninterrupted one: identical
// ExperimentResult, identical run.v1 JSON. The restoring process may
// install a different step engine (seq/par, any shard count or
// lookahead) before continuing — results do not change, only wall time
// (core/step_engine.hpp's quiesce seam).
//
// Warm starting: every run whose spec shares warm_key() — same config,
// pattern, load, message length, seed and warmup, any measure/drain —
// passes through the same state at the warmup/measure boundary. A
// checkpoint taken there seeds all such runs: restore, rebind() the
// measurement window, and only the measured span is simulated
// (bench/bench_snap.cpp measures the speedup).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/simulation.hpp"
#include "sim/config.hpp"
#include "snap/snapshot.hpp"
#include "workload/generator.hpp"

namespace wavesim::snap {

struct RunSpec {
  sim::SimConfig config;
  std::string pattern = "uniform";
  std::int32_t message_flits = 64;
  double offered_load = 0.10;
  Cycle warmup = 2000;
  Cycle measure = 10000;
  Cycle drain_cap = 300'000;
  std::uint64_t seed = 1;
};

/// RunSpec round trip (includes the embedded config).
void snap_runspec(Archive& ar, RunSpec& spec);

/// Hash over the warm-sharable prefix of a spec: config, pattern, load,
/// message length, seed, warmup — NOT measure or drain_cap. Two specs
/// with equal warm keys reach identical simulation state at the
/// warmup/measure boundary, so they can share a post-warmup checkpoint.
std::uint64_t warm_key(const RunSpec& spec);

class CheckpointableRun {
 public:
  /// Fresh run at cycle 0. Traffic pattern seeding matches wavesim_cli
  /// (sim::Rng{seed * 31 + 7}), so a checkpointed CLI run and a service
  /// job with the same spec are the same run.
  explicit CheckpointableRun(const RunSpec& spec);

  /// Resume from a checkpoint() snapshot, anywhere in any phase.
  explicit CheckpointableRun(const Snapshot& snapshot);

  /// Install a step engine (nullptr = sequential). May differ from the
  /// engine the checkpointing process used.
  void set_engine(std::unique_ptr<core::StepEngine> engine) {
    sim_->set_engine(std::move(engine));
  }

  /// Advance by at most `max_cycles`; returns cycles consumed. See
  /// load::OpenLoopDriver::advance.
  Cycle advance(Cycle max_cycles) { return driver_->advance(max_cycles); }

  bool done() const noexcept { return driver_->done(); }
  const load::ExperimentResult& result() const { return driver_->result(); }

  bool at_measure_boundary() const noexcept {
    return driver_->at_measure_boundary();
  }

  /// Retarget the measurement window (warm start); only legal
  /// at_measure_boundary(). Updates the spec so later checkpoints carry
  /// the rebound spans.
  void rebind(Cycle measure, Cycle drain_cap);

  /// Capture the complete run: sections "config", "network" (from
  /// snapshot_simulation) plus "runspec", "pattern" and "driver". Must
  /// be called between advance() slices, never mid-step.
  Snapshot checkpoint();

  const RunSpec& spec() const noexcept { return spec_; }
  core::Simulation& sim() noexcept { return *sim_; }
  Cycle now() const noexcept { return sim_->now(); }

 private:
  void build(const RunSpec& spec);

  RunSpec spec_;
  std::unique_ptr<core::Simulation> sim_;
  std::unique_ptr<load::TrafficPattern> pattern_;
  std::unique_ptr<load::SizeDist> sizes_;
  std::unique_ptr<load::OpenLoopDriver> driver_;
};

}  // namespace wavesim::snap
