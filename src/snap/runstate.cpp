#include "snap/runstate.hpp"

#include "sim/rng.hpp"

namespace wavesim::snap {

void snap_runspec(Archive& ar, RunSpec& spec) {
  snap_config(ar, spec.config);
  ar.str(spec.pattern);
  ar.pod(spec.message_flits);
  ar.pod(spec.offered_load);
  ar.pod(spec.warmup);
  ar.pod(spec.measure);
  ar.pod(spec.drain_cap);
  ar.pod(spec.seed);
}

std::uint64_t warm_key(const RunSpec& spec) {
  // Serialize the warm-sharable prefix (everything but measure and
  // drain_cap, which only affect post-boundary behavior) and fold the
  // bytes; Snapshot::digest gives an order-sensitive 64-bit fold.
  Archive ar = Archive::writer();
  RunSpec copy = spec;
  snap_config(ar, copy.config);
  ar.str(copy.pattern);
  ar.pod(copy.message_flits);
  ar.pod(copy.offered_load);
  ar.pod(copy.warmup);
  ar.pod(copy.seed);
  Snapshot snap;
  snap.set("warm", ar.take_bytes());
  return snap.digest();
}

CheckpointableRun::CheckpointableRun(const RunSpec& spec) {
  spec.config.validate();
  build(spec);
}

CheckpointableRun::CheckpointableRun(const Snapshot& snapshot) {
  Archive ar = Archive::reader(snapshot.section("runspec"));
  RunSpec spec;
  snap_runspec(ar, spec);
  if (!ar.exhausted()) {
    throw ArchiveError("snapshot: trailing bytes in runspec section");
  }
  spec.config.validate();
  build(spec);
  restore_simulation(snapshot, *sim_);
  {
    Archive pa = Archive::reader(snapshot.section("pattern"));
    pattern_->snap(pa);
    if (!pa.exhausted()) {
      throw ArchiveError("snapshot: trailing bytes in pattern section");
    }
  }
  {
    Archive da = Archive::reader(snapshot.section("driver"));
    driver_->snap(da);
    if (!da.exhausted()) {
      throw ArchiveError("snapshot: trailing bytes in driver section");
    }
  }
}

void CheckpointableRun::build(const RunSpec& spec) {
  spec_ = spec;
  sim_ = std::make_unique<core::Simulation>(spec_.config);
  pattern_ = load::make_traffic(spec_.pattern, sim_->topology(),
                                sim::Rng{spec_.seed * 31 + 7});
  sizes_ = std::make_unique<load::FixedSize>(spec_.message_flits);
  driver_ = std::make_unique<load::OpenLoopDriver>(
      *sim_, *pattern_, *sizes_, spec_.offered_load, spec_.warmup,
      spec_.measure, spec_.drain_cap, spec_.seed);
}

void CheckpointableRun::rebind(Cycle measure, Cycle drain_cap) {
  driver_->rebind(measure, drain_cap);
  spec_.measure = measure;
  spec_.drain_cap = drain_cap;
}

Snapshot CheckpointableRun::checkpoint() {
  Snapshot snap = snapshot_simulation(*sim_);
  {
    Archive ar = Archive::writer();
    snap_runspec(ar, spec_);
    snap.set("runspec", ar.take_bytes());
  }
  {
    Archive ar = Archive::writer();
    pattern_->snap(ar);
    snap.set("pattern", ar.take_bytes());
  }
  {
    Archive ar = Archive::writer();
    driver_->snap(ar);
    snap.set("driver", ar.take_bytes());
  }
  return snap;
}

}  // namespace wavesim::snap
