#include "snap/snapshot.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "core/simulation.hpp"
#include "sim/config.hpp"
#include "sim/rng.hpp"

namespace wavesim::snap {

namespace {

std::uint64_t mix_bytes(std::uint64_t h, const std::uint8_t* p,
                        std::size_t n) noexcept {
  while (n >= 8) {
    std::uint64_t w;
    std::memcpy(&w, p, 8);
    h = sim::hash_mix(h ^ w);
    p += 8;
    n -= 8;
  }
  if (n > 0) {
    std::uint64_t tail = 0;
    std::memcpy(&tail, p, n);
    h = sim::hash_mix(h ^ tail ^ (static_cast<std::uint64_t>(n) << 56));
  }
  return h;
}

}  // namespace

void Snapshot::set(std::string name, std::vector<std::uint8_t> bytes) {
  for (auto& [n, b] : sections_) {
    if (n == name) {
      b = std::move(bytes);
      return;
    }
  }
  sections_.emplace_back(std::move(name), std::move(bytes));
}

bool Snapshot::has(const std::string& name) const noexcept {
  for (const auto& [n, b] : sections_) {
    if (n == name) return true;
  }
  return false;
}

const std::vector<std::uint8_t>& Snapshot::section(
    const std::string& name) const {
  for (const auto& [n, b] : sections_) {
    if (n == name) return b;
  }
  throw ArchiveError("snapshot: missing section '" + name + "'");
}

std::vector<std::string> Snapshot::names() const {
  std::vector<std::string> out;
  out.reserve(sections_.size());
  for (const auto& [n, b] : sections_) out.push_back(n);
  return out;
}

std::vector<std::uint8_t> Snapshot::encode() const {
  Archive ar = Archive::writer();
  std::string magic = kMagic;
  ar.str(magic);
  std::uint64_t count = sections_.size();
  ar.pod(count);
  for (const auto& [name, bytes] : sections_) {
    std::string n = name;
    ar.str(n);
    ar.vec_pod(bytes);  // const write-mode overload
  }
  return ar.take_bytes();
}

Snapshot Snapshot::decode(const std::vector<std::uint8_t>& bytes) {
  Archive ar = Archive::reader(bytes);
  std::string magic;
  ar.str(magic);
  if (magic != kMagic) {
    throw ArchiveError("snapshot: bad magic (want '" + std::string(kMagic) +
                       "', got '" + magic + "')");
  }
  std::uint64_t count = 0;
  ar.pod(count);
  if (count > 1024) {
    throw ArchiveError("snapshot: section count out of range");
  }
  Snapshot snap;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::string name;
    ar.str(name);
    std::vector<std::uint8_t> payload;
    ar.vec_pod(payload);
    snap.set(std::move(name), std::move(payload));
  }
  if (!ar.exhausted()) {
    throw ArchiveError("snapshot: trailing bytes after section table");
  }
  return snap;
}

std::uint64_t Snapshot::digest() const noexcept {
  std::uint64_t h = 0x77617665736e6170ULL;  // "wavesnap"
  for (const auto& [name, bytes] : sections_) {
    h = mix_bytes(h, reinterpret_cast<const std::uint8_t*>(name.data()),
                  name.size());
    h = sim::hash_mix(h ^ bytes.size());
    h = mix_bytes(h, bytes.data(), bytes.size());
  }
  return h;
}

void Snapshot::save(const std::string& path) const {
  const std::vector<std::uint8_t> bytes = encode();
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("snapshot: cannot write '" + tmp + "'");
    }
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      throw std::runtime_error("snapshot: short write to '" + tmp + "'");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("snapshot: cannot rename '" + tmp + "' to '" +
                             path + "'");
  }
}

Snapshot Snapshot::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("snapshot: cannot open '" + path + "'");
  }
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  if (in.bad()) {
    throw std::runtime_error("snapshot: read error on '" + path + "'");
  }
  return decode(bytes);
}

void snap_config(Archive& ar, sim::SimConfig& config) {
  ar.vec_pod(config.topology.radix);
  ar.pod(config.topology.torus);

  ar.pod(config.router.wormhole_vcs);
  ar.pod(config.router.vc_buffer_depth);
  ar.pod(config.router.wave_switches);
  ar.pod(config.router.routing);
  ar.pod(config.router.wave_clock_factor);
  ar.pod(config.router.split_channels);
  ar.pod(config.router.circuit_window);
  ar.pod(config.router.virtual_circuits);
  ar.pod(config.router.wormhole_pipeline_latency);
  ar.pod(config.router.control_hop_cycles);

  ar.pod(config.protocol.protocol);
  ar.pod(config.protocol.clrp_variant);
  ar.pod(config.protocol.max_misroutes);
  ar.pod(config.protocol.circuit_cache_entries);
  ar.pod(config.protocol.replacement);
  ar.pod(config.protocol.min_circuit_message_flits);
  ar.pod(config.protocol.max_packet_flits);
  ar.pod(config.protocol.pcs_only);
  ar.pod(config.protocol.mutate_force_unacked);

  ar.pod(config.software.wormhole_send_overhead);
  ar.pod(config.software.circuit_first_send_overhead);
  ar.pod(config.software.circuit_reuse_send_overhead);
  ar.pod(config.software.clrp_initial_buffer_flits);
  ar.pod(config.software.buffer_realloc_penalty);

  ar.pod(config.faults.link_fault_rate);
  ar.vec(config.faults.events, [](Archive& a, sim::FaultEvent& ev) {
    a.pod(ev.at);
    a.pod(ev.kind);
    a.pod(ev.node);
    a.pod(ev.port);
  });
  ar.pod(config.faults.storm.at);
  ar.pod(config.faults.storm.fraction);
  ar.pod(config.faults.storm.repair_after);
  ar.pod(config.faults.churn.rate);
  ar.pod(config.faults.churn.from);
  ar.pod(config.faults.churn.until);
  ar.pod(config.faults.churn.mean_repair);
  ar.pod(config.faults.dv.advert_period);
  ar.pod(config.faults.dv.timeout_periods);
  ar.pod(config.faults.dv.hop_cycles);

  ar.pod(config.seed);
}

Snapshot snapshot_simulation(core::Simulation& sim) {
  Snapshot snap;
  {
    Archive ar = Archive::writer();
    sim::SimConfig config = sim.config();
    snap_config(ar, config);
    snap.set("config", ar.take_bytes());
  }
  {
    Archive ar = Archive::writer();
    sim.network().snap(ar);
    snap.set("network", ar.take_bytes());
  }
  return snap;
}

sim::SimConfig restore_config(const Snapshot& snapshot) {
  Archive ar = Archive::reader(snapshot.section("config"));
  sim::SimConfig config;
  snap_config(ar, config);
  if (!ar.exhausted()) {
    throw ArchiveError("snapshot: trailing bytes in config section");
  }
  config.validate();
  return config;
}

void restore_simulation(const Snapshot& snapshot, core::Simulation& sim) {
  // Guard against restoring into a simulation built from a different
  // configuration: the object graph (arena sizes, plane presence) is a
  // function of the config, so a mismatch would corrupt state instead
  // of failing loudly.
  Archive check = Archive::writer();
  sim::SimConfig config = sim.config();
  snap_config(check, config);
  if (check.bytes() != snapshot.section("config")) {
    throw ArchiveError(
        "snapshot: config mismatch (construct the Simulation from "
        "restore_config() first)");
  }
  Archive ar = Archive::reader(snapshot.section("network"));
  sim.network().snap(ar);
  if (!ar.exhausted()) {
    throw ArchiveError("snapshot: trailing bytes in network section");
  }
}

}  // namespace wavesim::snap
