// Byte-archive primitive for the wavesim.snap.v1 snapshot format.
//
// A single Archive runs in either write or read mode; every stateful
// class exposes one symmetric `void snap(snap::Archive&)` member that
// calls the same sequence of primitives in both directions, so the save
// and load paths cannot drift apart. The archive is header-only on
// purpose: core/wormhole/pcs classes implement snap() in their own
// translation units without wavesim_core ever linking a snap library.
//
// Determinism contract: the byte stream must be a pure function of the
// simulation state. Structs are serialized FIELD BY FIELD -- never
// memcpy'd wholesale -- because padding bytes are indeterminate and
// would make two snapshots of identical states compare unequal.
// pod<T>() is reserved for scalars (and scalar enums); vec_pod for
// vectors of scalars.
#pragma once

#include <cstdint>
#include <cstring>
#include <deque>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

namespace wavesim::snap {

/// Thrown when a read runs past the end of a section or a sanity bound
/// is violated; callers surface it as a corrupt-snapshot error.
class ArchiveError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Archive {
 public:
  static Archive writer() { return Archive(Mode::kWrite); }
  static Archive reader(std::vector<std::uint8_t> bytes) {
    Archive a(Mode::kRead);
    a.bytes_ = std::move(bytes);
    return a;
  }

  bool writing() const noexcept { return mode_ == Mode::kWrite; }
  bool reading() const noexcept { return mode_ == Mode::kRead; }

  /// Writer: bytes produced so far. Only meaningful in write mode.
  const std::vector<std::uint8_t>& bytes() const noexcept { return bytes_; }
  std::vector<std::uint8_t> take_bytes() { return std::move(bytes_); }

  /// Reader: true when every byte has been consumed.
  bool exhausted() const noexcept { return pos_ == bytes_.size(); }
  std::size_t remaining() const noexcept { return bytes_.size() - pos_; }

  /// Scalar (or scalar-enum) round trip. Fixed-width little-endian on
  /// every supported host; floating point goes through its bit pattern.
  template <typename T>
  void pod(T& v) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "snap::Archive::pod needs a trivially copyable type");
    static_assert(!std::is_pointer_v<T>,
                  "pointers are never serialized; re-resolve on load");
    if (writing()) {
      const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
      bytes_.insert(bytes_.end(), p, p + sizeof(T));
    } else {
      need(sizeof(T));
      std::memcpy(&v, bytes_.data() + pos_, sizeof(T));
      pos_ += sizeof(T);
    }
  }

  /// bool round trip via one byte (bool object representation is not
  /// guaranteed to be a single deterministic byte pattern).
  void pod(bool& v) {
    std::uint8_t b = v ? 1 : 0;
    pod(b);
    if (reading()) v = (b != 0);
  }

  /// Length-prefixed string.
  void str(std::string& s) {
    std::uint64_t n = s.size();
    pod(n);
    if (writing()) {
      bytes_.insert(bytes_.end(), s.begin(), s.end());
    } else {
      check_len(n);
      need(n);
      s.assign(reinterpret_cast<const char*>(bytes_.data() + pos_),
               static_cast<std::size_t>(n));
      pos_ += static_cast<std::size_t>(n);
    }
  }

  /// Vector of scalars (no padding possible in a scalar element).
  template <typename T>
  void vec_pod(std::vector<T>& v) {
    static_assert(std::is_arithmetic_v<T> || std::is_enum_v<T>,
                  "vec_pod is for scalar element types; use vec(v, fn) "
                  "for structs (field-by-field, no padding bytes)");
    std::uint64_t n = v.size();
    pod(n);
    if (reading()) {
      check_len(n);
      v.resize(static_cast<std::size_t>(n));
    }
    for (auto& e : v) pod(e);
  }

  /// Write-mode-only overload for const-held data (e.g. Snapshot
  /// sections being encoded). Byte-identical to the mutable overload in
  /// write mode; reading into a const vector is a logic error and
  /// throws, so call sites never need a const_cast.
  template <typename T>
  void vec_pod(const std::vector<T>& v) {
    static_assert(std::is_arithmetic_v<T> || std::is_enum_v<T>,
                  "vec_pod is for scalar element types; use vec(v, fn) "
                  "for structs (field-by-field, no padding bytes)");
    if (reading()) {
      throw ArchiveError("snap::Archive: cannot read into a const vector");
    }
    std::uint64_t n = v.size();
    pod(n);
    for (const T& e : v) {
      const auto* p = reinterpret_cast<const std::uint8_t*>(&e);
      bytes_.insert(bytes_.end(), p, p + sizeof(T));
    }
  }

  /// Vector of anything: size prefix + per-element functor
  /// `fn(Archive&, T&)`.
  template <typename T, typename Fn>
  void vec(std::vector<T>& v, Fn&& fn) {
    std::uint64_t n = v.size();
    pod(n);
    if (reading()) {
      check_len(n);
      v.assign(static_cast<std::size_t>(n), T{});
    }
    for (auto& e : v) fn(*this, e);
  }

  /// Deque of anything, same shape as vec().
  template <typename T, typename Fn>
  void deq(std::deque<T>& v, Fn&& fn) {
    std::uint64_t n = v.size();
    pod(n);
    if (reading()) {
      check_len(n);
      v.assign(static_cast<std::size_t>(n), T{});
    }
    for (auto& e : v) fn(*this, e);
  }

 private:
  enum class Mode { kWrite, kRead };
  explicit Archive(Mode mode) : mode_(mode) {}

  void need(std::size_t n) const {
    if (bytes_.size() - pos_ < n) {
      throw ArchiveError("snapshot archive truncated");
    }
  }
  // Element counts beyond any plausible simulation state mean a corrupt
  // or hostile snapshot; fail before resize() tries to allocate it.
  void check_len(std::uint64_t n) const {
    if (n > (1ull << 32)) {
      throw ArchiveError("snapshot archive length out of range");
    }
  }

  Mode mode_;
  std::vector<std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace wavesim::snap
