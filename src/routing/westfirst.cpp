#include "routing/westfirst.hpp"

#include <cassert>
#include <stdexcept>

namespace wavesim::route {

WestFirstRouting::WestFirstRouting(const topo::KAryNCube& topology,
                                   std::int32_t num_vcs)
    : topology_(topology), num_vcs_(num_vcs) {
  if (topology.torus() || topology.num_dims() != 2) {
    throw std::invalid_argument("WestFirstRouting: needs a 2-D mesh");
  }
  if (num_vcs < 1) throw std::invalid_argument("WestFirstRouting: no VCs");
}

std::vector<RouteCandidate> WestFirstRouting::route(NodeId node,
                                                    PortId /*in_port*/,
                                                    VcId /*in_vc*/,
                                                    NodeId dest) const {
  assert(node != dest);
  const auto offsets = topology_.min_offsets(node, dest);
  std::vector<RouteCandidate> candidates;
  if (offsets[0] < 0) {
    // West leg: deterministic, exhaust it before anything else (turns
    // into west are prohibited, so west hops can never come later).
    const PortId west = topo::KAryNCube::port_of(0, false);
    for (VcId v = 0; v < num_vcs_; ++v) {
      candidates.push_back(RouteCandidate{west, v, /*escape=*/true});
    }
    return candidates;
  }
  // Adaptive among the remaining minimal directions (east, north, south).
  for (PortId port : topology_.minimal_ports(node, dest)) {
    for (VcId v = 0; v < num_vcs_; ++v) {
      candidates.push_back(RouteCandidate{port, v, /*escape=*/true});
    }
  }
  return candidates;
}

}  // namespace wavesim::route
