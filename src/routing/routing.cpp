#include "routing/routing.hpp"

#include <stdexcept>

#include "routing/dor.hpp"
#include "routing/duato.hpp"
#include "routing/negfirst.hpp"
#include "routing/westfirst.hpp"

namespace wavesim::route {

std::unique_ptr<RoutingAlgorithm> make_routing(sim::RoutingKind kind,
                                               const topo::KAryNCube& topology,
                                               std::int32_t num_vcs) {
  switch (kind) {
    case sim::RoutingKind::kDimensionOrder:
      return std::make_unique<DimensionOrderRouting>(topology, num_vcs);
    case sim::RoutingKind::kDuatoAdaptive:
      return std::make_unique<DuatoAdaptiveRouting>(topology, num_vcs);
    case sim::RoutingKind::kWestFirst:
      return std::make_unique<WestFirstRouting>(topology, num_vcs);
    case sim::RoutingKind::kNegativeFirst:
      return std::make_unique<NegativeFirstRouting>(topology, num_vcs);
  }
  throw std::invalid_argument("make_routing: unknown RoutingKind");
}

}  // namespace wavesim::route
