#include "routing/cdg.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/graph.hpp"

namespace wavesim::route {

ChannelDependencyGraph::ChannelDependencyGraph(const topo::KAryNCube& topology,
                                               std::int32_t num_vcs)
    : topology_(topology), num_vcs_(num_vcs),
      adj_(static_cast<std::size_t>(topology.num_channels()) * num_vcs) {}

std::int32_t ChannelDependencyGraph::num_vertices() const noexcept {
  return static_cast<std::int32_t>(adj_.size());
}

std::int32_t ChannelDependencyGraph::vertex(NodeId node, PortId port,
                                            VcId vc) const noexcept {
  return topology_.channel_index(node, port) * num_vcs_ + vc;
}

void ChannelDependencyGraph::add_edge(std::int32_t from, std::int32_t to) {
  adj_.at(from).push_back(to);
  ++num_edges_;
}

bool ChannelDependencyGraph::has_edge(std::int32_t from,
                                      std::int32_t to) const {
  const auto& out = out_edges(from);
  return std::find(out.begin(), out.end(), to) != out.end();
}

const std::vector<std::int32_t>& ChannelDependencyGraph::out_edges(
    std::int32_t from) const {
  static const std::vector<std::int32_t> kEmpty;
  if (from < 0 || from >= num_vertices()) return kEmpty;
  return adj_[static_cast<std::size_t>(from)];
}

void ChannelDependencyGraph::decode(std::int32_t vertex_id, NodeId& node,
                                    PortId& port, VcId& vc) const noexcept {
  vc = vertex_id % num_vcs_;
  const std::int32_t channel = vertex_id / num_vcs_;
  node = channel / topology_.num_ports();
  port = channel % topology_.num_ports();
}

bool ChannelDependencyGraph::acyclic() const { return find_cycle().empty(); }

std::vector<std::int32_t> ChannelDependencyGraph::find_cycle() const {
  return sim::find_graph_cycle(adj_);
}

namespace {

/// Escape-candidate vertex ids requested from `node` onward to `dest`
/// through chains of adaptive channels (extended-dependency closure).
/// Minimal routing guarantees the per-destination node graph is a DAG, so
/// plain memoized recursion terminates.
class EscapeClosure {
 public:
  EscapeClosure(const topo::KAryNCube& topology,
                const RoutingAlgorithm& routing,
                const ChannelDependencyGraph& graph, NodeId dest)
      : topology_(topology), routing_(routing), graph_(graph), dest_(dest),
        memo_(topology.num_nodes()) {}

  const std::vector<std::int32_t>& requests_from(NodeId node) {
    auto& entry = memo_.at(node);
    if (entry.done) return entry.requests;
    entry.done = true;  // set first; DAG property makes re-entry impossible
    if (node == dest_) return entry.requests;
    for (const auto& cand :
         routing_.route(node, kInvalidPort, kInvalidVc, dest_)) {
      if (cand.escape) {
        entry.requests.push_back(graph_.vertex(node, cand.port, cand.vc));
      } else {
        const NodeId next = topology_.neighbor(node, cand.port);
        if (next == kInvalidNode || next == dest_) continue;
        const auto& deeper = requests_from(next);
        entry.requests.insert(entry.requests.end(), deeper.begin(),
                              deeper.end());
      }
    }
    std::sort(entry.requests.begin(), entry.requests.end());
    entry.requests.erase(
        std::unique(entry.requests.begin(), entry.requests.end()),
        entry.requests.end());
    return entry.requests;
  }

 private:
  struct Memo {
    bool done = false;
    std::vector<std::int32_t> requests;
  };
  const topo::KAryNCube& topology_;
  const RoutingAlgorithm& routing_;
  const ChannelDependencyGraph& graph_;
  NodeId dest_;
  std::vector<Memo> memo_;
};

}  // namespace

ChannelDependencyGraph build_cdg(const topo::KAryNCube& topology,
                                 const RoutingAlgorithm& routing,
                                 std::int32_t num_vcs, bool escape_only) {
  ChannelDependencyGraph graph(topology, num_vcs);
  // Both routing algorithms in this library are stateless in (in_port,
  // in_vc), and any node can be a source, so every candidate offered at a
  // node toward a destination is a holdable channel.
  std::vector<std::pair<std::int32_t, std::int32_t>> edges;
  for (NodeId dest = 0; dest < topology.num_nodes(); ++dest) {
    EscapeClosure closure(topology, routing, graph, dest);
    for (NodeId node = 0; node < topology.num_nodes(); ++node) {
      if (node == dest) continue;
      for (const auto& held :
           routing.route(node, kInvalidPort, kInvalidVc, dest)) {
        if (escape_only && !held.escape) continue;
        const NodeId next = topology.neighbor(node, held.port);
        if (next == kInvalidNode || next == dest) continue;
        const std::int32_t from = graph.vertex(node, held.port, held.vc);
        if (escape_only) {
          // Extended dependencies: direct escape requests at `next` plus
          // escape requests reachable through adaptive chains.
          for (std::int32_t to : closure.requests_from(next)) {
            edges.emplace_back(from, to);
          }
        } else {
          for (const auto& req :
               routing.route(next, topo::KAryNCube::opposite(held.port),
                             held.vc, dest)) {
            edges.emplace_back(from,
                               graph.vertex(next, req.port, req.vc));
          }
        }
      }
    }
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  for (const auto& [from, to] : edges) graph.add_edge(from, to);
  return graph;
}

}  // namespace wavesim::route
