#include "routing/duato.hpp"

#include <cassert>
#include <stdexcept>

namespace wavesim::route {

DuatoAdaptiveRouting::DuatoAdaptiveRouting(const topo::KAryNCube& topology,
                                           std::int32_t num_vcs)
    : topology_(topology), num_vcs_(num_vcs),
      escape_vcs_(topology.torus() ? 2 : 1) {
  if (num_vcs_ < min_vcs()) {
    throw std::invalid_argument("DuatoAdaptiveRouting: too few VCs");
  }
}

std::int32_t DuatoAdaptiveRouting::min_vcs() const noexcept {
  return escape_vcs_ + 1;
}

std::vector<RouteCandidate> DuatoAdaptiveRouting::route(NodeId node,
                                                        PortId /*in_port*/,
                                                        VcId /*in_vc*/,
                                                        NodeId dest) const {
  assert(node != dest);
  std::vector<RouteCandidate> candidates;
  // Adaptive channels first (preferred): every minimal port, every
  // adaptive VC.
  for (PortId port : topology_.minimal_ports(node, dest)) {
    for (VcId vc = escape_vcs_; vc < num_vcs_; ++vc) {
      candidates.push_back(RouteCandidate{port, vc, /*escape=*/false});
    }
  }
  // Escape channel last: the dimension-order hop on the escape VC of the
  // proper dateline class.
  const auto offsets = topology_.min_offsets(node, dest);
  const std::int32_t dim = detail::first_unresolved_dim(offsets);
  if (dim >= 0) {
    const bool positive = offsets[dim] > 0;
    const PortId port = topo::KAryNCube::port_of(dim, positive);
    const VcId vc = topology_.torus()
        ? detail::torus_vc_class(topology_, node, dest, dim, positive)
        : 0;
    candidates.push_back(RouteCandidate{port, vc, /*escape=*/true});
  }
  return candidates;
}

}  // namespace wavesim::route
