// West-first turn-model routing (Glass & Ni) for 2-D meshes.
//
// All west (negative-x) hops are taken first and deterministically; once
// the packet no longer needs to go west it routes adaptively among the
// remaining minimal directions (east / north / south). Prohibiting the
// *-to-west turns removes every cycle from the channel dependency graph,
// so the algorithm is deadlock-free with a single virtual channel and
// needs no escape subnetwork (every candidate is an escape candidate).
#pragma once

#include "routing/routing.hpp"

namespace wavesim::route {

class WestFirstRouting final : public RoutingAlgorithm {
 public:
  WestFirstRouting(const topo::KAryNCube& topology, std::int32_t num_vcs);

  std::vector<RouteCandidate> route(NodeId node, PortId in_port, VcId in_vc,
                                    NodeId dest) const override;
  std::int32_t min_vcs() const noexcept override { return 1; }
  bool minimal() const noexcept override { return true; }
  const char* name() const noexcept override { return "west-first"; }

 private:
  const topo::KAryNCube& topology_;
  std::int32_t num_vcs_;
};

}  // namespace wavesim::route
