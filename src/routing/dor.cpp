#include "routing/dor.hpp"

#include <cassert>
#include <stdexcept>

namespace wavesim::route {

namespace detail {

std::int32_t first_unresolved_dim(const std::vector<std::int32_t>& offsets) {
  for (std::size_t d = 0; d < offsets.size(); ++d) {
    if (offsets[d] != 0) return static_cast<std::int32_t>(d);
  }
  return -1;
}

std::int32_t torus_vc_class(const topo::KAryNCube& topology, NodeId node,
                            NodeId dest, std::int32_t dim, bool positive) {
  if (!topology.torus()) return 0;
#ifdef WAVESIM_MUTATE_ESCAPE
  // Mutation smoke build: pretend no segment ever crosses the dateline.
  // Every torus ring of radix >= 4 then has a cyclic escape CDG, which
  // simcheck's structural oracle must detect and shrink.
  (void)node;
  (void)dest;
  (void)dim;
  (void)positive;
  return 0;
#else
  const std::int32_t c = topology.coord_of(node)[dim];
  const std::int32_t t = topology.coord_of(dest)[dim];
  // Class 1 on the pre-wraparound segment, class 0 once the remaining
  // segment no longer crosses the dateline. c == t cannot occur while this
  // dimension is still being routed.
  if (positive) return c < t ? 0 : 1;
  return c > t ? 0 : 1;
#endif
}

}  // namespace detail

DimensionOrderRouting::DimensionOrderRouting(const topo::KAryNCube& topology,
                                             std::int32_t num_vcs)
    : topology_(topology), num_vcs_(num_vcs) {
  if (num_vcs_ < min_vcs()) {
    throw std::invalid_argument("DimensionOrderRouting: too few VCs");
  }
}

std::int32_t DimensionOrderRouting::min_vcs() const noexcept {
  return topology_.torus() ? 2 : 1;
}

std::vector<VcId> DimensionOrderRouting::vcs_of_class(std::int32_t cls) const {
  std::vector<VcId> vcs;
  if (!topology_.torus()) {
    for (VcId v = 0; v < num_vcs_; ++v) vcs.push_back(v);
    return vcs;
  }
  const VcId half = num_vcs_ / 2;
  const VcId lo = cls == 0 ? 0 : half;
  const VcId hi = cls == 0 ? half : num_vcs_;
  for (VcId v = lo; v < hi; ++v) vcs.push_back(v);
  return vcs;
}

std::vector<RouteCandidate> DimensionOrderRouting::route(NodeId node,
                                                         PortId /*in_port*/,
                                                         VcId /*in_vc*/,
                                                         NodeId dest) const {
  assert(node != dest);
  const auto offsets = topology_.min_offsets(node, dest);
  const std::int32_t dim = detail::first_unresolved_dim(offsets);
  if (dim < 0) return {};
  const bool positive = offsets[dim] > 0;
  const PortId port = topo::KAryNCube::port_of(dim, positive);
  const std::int32_t cls =
      detail::torus_vc_class(topology_, node, dest, dim, positive);
  std::vector<RouteCandidate> candidates;
  for (VcId vc : vcs_of_class(cls)) {
    candidates.push_back(RouteCandidate{port, vc, /*escape=*/true});
  }
  return candidates;
}

}  // namespace wavesim::route
