// Wormhole-plane routing algorithms.
//
// A routing algorithm is a stateless function: given the packet's current
// node, the (port, vc) it occupies there (injection = kInvalidPort) and its
// destination, it returns the set of (output port, output VC) candidates.
// Candidates are ordered by preference; deadlock-freedom requires that the
// subset marked `escape` forms an acyclic channel-dependency graph and is
// offered at every step (Duato's condition; for deterministic algorithms
// every candidate is an escape candidate).
#pragma once

#include <memory>
#include <vector>

#include "sim/config.hpp"
#include "sim/types.hpp"
#include "topology/topology.hpp"

namespace wavesim::route {

struct RouteCandidate {
  PortId port = kInvalidPort;
  VcId vc = kInvalidVc;
  bool escape = false;  ///< belongs to the deadlock-free escape subnetwork

  friend bool operator==(const RouteCandidate&, const RouteCandidate&) = default;
};

class RoutingAlgorithm {
 public:
  virtual ~RoutingAlgorithm() = default;

  /// Candidate outputs for a head flit at `node` on (in_port, in_vc),
  /// destined for `dest`. Precondition: node != dest (ejection is the
  /// router's job). in_port == kInvalidPort means the packet is injecting.
  virtual std::vector<RouteCandidate> route(NodeId node, PortId in_port,
                                            VcId in_vc, NodeId dest) const = 0;

  /// Minimum number of VCs per physical channel this algorithm requires.
  virtual std::int32_t min_vcs() const noexcept = 0;

  /// True if the algorithm only ever produces minimal hops (needed for the
  /// livelock argument of Theorems 3/4).
  virtual bool minimal() const noexcept = 0;

  virtual const char* name() const noexcept = 0;
};

/// Factory keyed by SimConfig's RoutingKind.
std::unique_ptr<RoutingAlgorithm> make_routing(sim::RoutingKind kind,
                                               const topo::KAryNCube& topology,
                                               std::int32_t num_vcs);

namespace detail {
/// First dimension with a nonzero minimal offset, or -1 if none.
std::int32_t first_unresolved_dim(const std::vector<std::int32_t>& offsets);

/// VC class (0 or 1) for torus DOR in dimension `dim`: class 0 when the
/// remaining segment in this dimension does not cross the wraparound,
/// class 1 when it will (or the packet is on the pre-wrap segment).
std::int32_t torus_vc_class(const topo::KAryNCube& topology, NodeId node,
                            NodeId dest, std::int32_t dim, bool positive);
}  // namespace detail

}  // namespace wavesim::route
