// Negative-first turn-model routing (Glass & Ni) for meshes of any
// dimensionality.
//
// The packet first takes every required negative-direction hop (adaptively
// among the negative dimensions), then every positive-direction hop
// (adaptively among the positive dimensions). Turns from a positive to a
// negative direction are prohibited, which removes all CDG cycles on a
// mesh: deadlock-free with a single virtual channel.
#pragma once

#include "routing/routing.hpp"

namespace wavesim::route {

class NegativeFirstRouting final : public RoutingAlgorithm {
 public:
  NegativeFirstRouting(const topo::KAryNCube& topology, std::int32_t num_vcs);

  std::vector<RouteCandidate> route(NodeId node, PortId in_port, VcId in_vc,
                                    NodeId dest) const override;
  std::int32_t min_vcs() const noexcept override { return 1; }
  bool minimal() const noexcept override { return true; }
  const char* name() const noexcept override { return "negative-first"; }

 private:
  const topo::KAryNCube& topology_;
  std::int32_t num_vcs_;
};

}  // namespace wavesim::route
