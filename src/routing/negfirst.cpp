#include "routing/negfirst.hpp"

#include <cassert>
#include <stdexcept>

namespace wavesim::route {

NegativeFirstRouting::NegativeFirstRouting(const topo::KAryNCube& topology,
                                           std::int32_t num_vcs)
    : topology_(topology), num_vcs_(num_vcs) {
  if (topology.torus()) {
    throw std::invalid_argument("NegativeFirstRouting: meshes only");
  }
  if (num_vcs < 1) throw std::invalid_argument("NegativeFirstRouting: no VCs");
}

std::vector<RouteCandidate> NegativeFirstRouting::route(NodeId node,
                                                        PortId /*in_port*/,
                                                        VcId /*in_vc*/,
                                                        NodeId dest) const {
  assert(node != dest);
  const auto offsets = topology_.min_offsets(node, dest);
  std::vector<RouteCandidate> candidates;
  // Negative phase: adaptive among every dimension still needing a
  // negative hop. Positive hops must wait (turns back to negative are
  // prohibited, so negative legs can never be deferred).
  for (std::size_t d = 0; d < offsets.size(); ++d) {
    if (offsets[d] >= 0) continue;
    const PortId port =
        topo::KAryNCube::port_of(static_cast<std::int32_t>(d), false);
    for (VcId v = 0; v < num_vcs_; ++v) {
      candidates.push_back(RouteCandidate{port, v, /*escape=*/true});
    }
  }
  if (!candidates.empty()) return candidates;
  // Positive phase: adaptive among the remaining dimensions.
  for (std::size_t d = 0; d < offsets.size(); ++d) {
    if (offsets[d] <= 0) continue;
    const PortId port =
        topo::KAryNCube::port_of(static_cast<std::int32_t>(d), true);
    for (VcId v = 0; v < num_vcs_; ++v) {
      candidates.push_back(RouteCandidate{port, v, /*escape=*/true});
    }
  }
  return candidates;
}

}  // namespace wavesim::route
