// Channel-dependency-graph construction and acyclicity checking.
//
// Vertices are virtual channels (node, out-port, vc); an edge c1 -> c2
// means some packet can hold c1 while requesting c2. Dally & Seitz: a
// deterministic routing algorithm is deadlock-free iff this graph is
// acyclic. Duato: an adaptive algorithm is deadlock-free if the CDG
// restricted to its escape channels is acyclic (and escape candidates are
// always offered). Both checks run structurally, before any simulation.
#pragma once

#include <cstdint>
#include <vector>

#include "routing/routing.hpp"
#include "topology/topology.hpp"

namespace wavesim::route {

class ChannelDependencyGraph {
 public:
  ChannelDependencyGraph(const topo::KAryNCube& topology, std::int32_t num_vcs);

  std::int32_t num_vertices() const noexcept;
  std::int32_t vertex(NodeId node, PortId port, VcId vc) const noexcept;

  void add_edge(std::int32_t from, std::int32_t to);
  std::int64_t num_edges() const noexcept { return num_edges_; }

  /// True iff `from -> to` was added (linear in out-degree of `from`).
  bool has_edge(std::int32_t from, std::int32_t to) const;

  /// Successors of `from` in insertion order (empty for out-of-range ids).
  const std::vector<std::int32_t>& out_edges(std::int32_t from) const;

  /// True iff the graph has no directed cycle (iterative DFS).
  bool acyclic() const;

  /// One directed cycle if any exists, else empty. The returned vertices
  /// are ordered so cycle[i] -> cycle[(i+1) % size] is an edge for every i
  /// — they come straight out of the DFS parent chain, never reconstructed
  /// after the fact, so a reported witness always names real edges.
  std::vector<std::int32_t> find_cycle() const;

  /// Inverse of vertex(): decode a vertex id into (node, port, vc).
  void decode(std::int32_t vertex_id, NodeId& node, PortId& port,
              VcId& vc) const noexcept;

 private:
  const topo::KAryNCube& topology_;
  std::int32_t num_vcs_;
  std::vector<std::vector<std::int32_t>> adj_;
  std::int64_t num_edges_ = 0;
};

/// Exact CDG of an adaptive routing relation: BFS over (held channel)
/// states per destination, adding an edge for every candidate the relation
/// offers from a reachable state. `escape_only` restricts both the held
/// and requested channels to escape candidates (Duato's escape subnet).
ChannelDependencyGraph build_cdg(const topo::KAryNCube& topology,
                                 const RoutingAlgorithm& routing,
                                 std::int32_t num_vcs, bool escape_only);

}  // namespace wavesim::route
