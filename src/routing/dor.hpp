// Deterministic dimension-order routing (e-cube).
//
// Mesh: any VC may be used; the CDG is acyclic because each dimension is an
// acyclic chain and dependencies only flow to higher dimensions.
// Torus: two VC classes per dimension break the wraparound cycle (Dally &
// Seitz dateline scheme); class is computed statelessly from the current
// and destination coordinates. VCs are partitioned: class 0 = lower half,
// class 1 = upper half (requires >= 2 VCs).
#pragma once

#include "routing/routing.hpp"

namespace wavesim::route {

class DimensionOrderRouting final : public RoutingAlgorithm {
 public:
  DimensionOrderRouting(const topo::KAryNCube& topology, std::int32_t num_vcs);

  std::vector<RouteCandidate> route(NodeId node, PortId in_port, VcId in_vc,
                                    NodeId dest) const override;
  std::int32_t min_vcs() const noexcept override;
  bool minimal() const noexcept override { return true; }
  const char* name() const noexcept override { return "dor"; }

  /// VCs belonging to dateline class `cls` (all VCs on a mesh).
  std::vector<VcId> vcs_of_class(std::int32_t cls) const;

 private:
  const topo::KAryNCube& topology_;
  std::int32_t num_vcs_;
};

}  // namespace wavesim::route
