// Duato's fully adaptive minimal routing (Duato 93/95).
//
// VCs are partitioned into an escape set implementing dimension-order
// routing (1 class on mesh, 2 dateline classes on torus) and an adaptive
// set usable on every minimal direction. Deadlock freedom follows from
// Duato's theorem: the escape subnetwork's extended CDG is acyclic and an
// escape candidate is offered at every routing step.
//
// VC layout per physical channel: VCs [0, escape_vcs) are escape channels,
// VCs [escape_vcs, num_vcs) are adaptive channels.
#pragma once

#include "routing/routing.hpp"

namespace wavesim::route {

class DuatoAdaptiveRouting final : public RoutingAlgorithm {
 public:
  DuatoAdaptiveRouting(const topo::KAryNCube& topology, std::int32_t num_vcs);

  std::vector<RouteCandidate> route(NodeId node, PortId in_port, VcId in_vc,
                                    NodeId dest) const override;
  std::int32_t min_vcs() const noexcept override;
  bool minimal() const noexcept override { return true; }
  const char* name() const noexcept override { return "duato"; }

  std::int32_t escape_vcs() const noexcept { return escape_vcs_; }
  bool is_escape_vc(VcId vc) const noexcept { return vc < escape_vcs_; }

 private:
  const topo::KAryNCube& topology_;
  std::int32_t num_vcs_;
  std::int32_t escape_vcs_;
};

}  // namespace wavesim::route
