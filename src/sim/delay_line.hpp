// Fixed-latency FIFO used to model link traversal and credit return.
#pragma once

#include <deque>
#include <utility>

#include "sim/types.hpp"

namespace wavesim::sim {

template <typename T>
class DelayLine {
 public:
  explicit DelayLine(Cycle latency = 1) : latency_(latency) {}

  Cycle latency() const noexcept { return latency_; }

  /// Schedule `value` to emerge `latency` cycles after `now`.
  void push(Cycle now, T value) {
    queue_.emplace_back(now + latency_, std::move(value));
  }

  /// True if the front item is due at or before `now`.
  bool ready(Cycle now) const noexcept {
    return !queue_.empty() && queue_.front().first <= now;
  }

  T pop() {
    T value = std::move(queue_.front().second);
    queue_.pop_front();
    return value;
  }

  bool empty() const noexcept { return queue_.empty(); }
  std::size_t size() const noexcept { return queue_.size(); }

 private:
  Cycle latency_;
  std::deque<std::pair<Cycle, T>> queue_;
};

}  // namespace wavesim::sim
