// Statistics collectors used by the simulator and the benchmark harness.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace wavesim::sim {

/// Streaming mean/variance/min/max (Welford). O(1) memory.
class OnlineStats {
 public:
  void add(double x) noexcept;
  void merge(const OnlineStats& other) noexcept;
  void reset() noexcept { *this = OnlineStats{}; }

  std::uint64_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double variance() const noexcept;  ///< population variance
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double sum() const noexcept { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact-percentile sampler: stores every value. Suitable for the message
/// counts this simulator produces (<= a few million doubles per run).
class Sample {
 public:
  void add(double x) { values_.push_back(x); sorted_ = false; }
  void reserve(std::size_t n) { values_.reserve(n); }
  void reset() { values_.clear(); sorted_ = false; }

  std::size_t count() const noexcept { return values_.size(); }
  double mean() const noexcept;
  /// Percentile in [0,100]; nearest-rank. Returns 0 when empty.
  double percentile(double p) const;
  double median() const { return percentile(50.0); }
  double min() const { return percentile(0.0); }
  double max() const { return percentile(100.0); }

 private:
  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
};

/// Fixed-width histogram with overflow bin, for latency distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  std::uint64_t total() const noexcept { return total_; }
  std::uint64_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t num_bins() const noexcept { return counts_.size(); }
  double bin_lo(std::size_t i) const noexcept;
  double bin_hi(std::size_t i) const noexcept;
  std::uint64_t underflow() const noexcept { return underflow_; }
  std::uint64_t overflow() const noexcept { return overflow_; }

  /// Human-readable ASCII rendering (one line per non-empty bin).
  std::string render(std::size_t max_width = 50) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace wavesim::sim
