#include "sim/build_info.hpp"

namespace wavesim::sim {

const char* git_describe() noexcept {
#ifdef WAVESIM_GIT_DESCRIBE
  return WAVESIM_GIT_DESCRIBE;
#else
  return "unknown";
#endif
}

}  // namespace wavesim::sim
