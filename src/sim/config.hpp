// Run configuration for the wave-switching simulator.
//
// One flat struct so benchmarks and tests can sweep any knob. validate()
// rejects inconsistent combinations with a descriptive message.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace wavesim::sim {

/// Wormhole-plane routing algorithm.
enum class RoutingKind {
  kDimensionOrder,   ///< deterministic DOR (dateline VCs on torus)
  kDuatoAdaptive,    ///< fully adaptive + DOR escape channels (Duato 93/95)
  kWestFirst,        ///< turn-model partially adaptive (2-D mesh only)
  kNegativeFirst,    ///< turn-model partially adaptive (any-D mesh)
};

/// Circuit-cache victim selection (paper Fig. 5 "Replace" field).
enum class ReplacementPolicy { kLru, kLfu, kFifo, kRandom };

/// Which wave-switching routing protocol manages circuits.
enum class ProtocolKind {
  kWormholeOnly,  ///< baseline: every message uses S0 wormhole switching
  kClrp,          ///< Cache-Like Routing Protocol (automatic circuits)
  kCarp,          ///< Compiler-Aided Routing Protocol (explicit circuits)
};

/// CLRP phase-structure simplifications discussed in paper section 3.1.
enum class ClrpVariant {
  kFull,          ///< phase1 all switches -> phase2 (Force) -> wormhole
  kForceFirst,    ///< skip phase 1: first probe already carries Force
  kSingleSwitch,  ///< phases try only InitialSwitch, no modulo-k retry
};

const char* to_string(RoutingKind kind) noexcept;
const char* to_string(ReplacementPolicy policy) noexcept;
const char* to_string(ProtocolKind kind) noexcept;
const char* to_string(ClrpVariant variant) noexcept;

/// false normally; true in a -DWAVESIM_MUTATE_FORCE_UNACKED=ON mutation
/// build (the compile definition lives on wavesim_sim only, so one
/// function owns the ifdef and every consumer sees the same default).
bool mutate_force_unacked_default() noexcept;

/// Inverses of to_string (exact match); return false on an unknown name,
/// leaving `out` untouched. Used by the scenario/replay loaders, which must
/// reject corrupt input instead of guessing.
bool from_string(const std::string& name, RoutingKind& out) noexcept;
bool from_string(const std::string& name, ReplacementPolicy& out) noexcept;
bool from_string(const std::string& name, ProtocolKind& out) noexcept;
bool from_string(const std::string& name, ClrpVariant& out) noexcept;

struct TopologyConfig {
  /// Radix per dimension, e.g. {8, 8} for an 8x8 grid. Size = #dimensions.
  std::vector<std::int32_t> radix{8, 8};
  /// Wraparound links (torus) or not (mesh).
  bool torus = true;
};

struct RouterConfig {
  /// Wormhole data virtual channels per S0 physical channel ("w").
  std::int32_t wormhole_vcs = 2;
  /// Flit buffer depth of each wormhole VC.
  std::int32_t vc_buffer_depth = 4;
  /// Number of wave-pipelined circuit switches per router ("k").
  std::int32_t wave_switches = 2;
  /// Wormhole routing algorithm on S0.
  RoutingKind routing = RoutingKind::kDimensionOrder;
  /// Wave-pipelined clock multiplier for circuit channels (paper: ~4x).
  double wave_clock_factor = 4.0;
  /// If true, the data link is split into k narrower channels so each
  /// circuit gets wave_clock_factor/k flits per cycle (single-chip design);
  /// if false each switch has a full-width channel (multi-chip design).
  bool split_channels = false;
  /// End-to-end window for circuit transfers, in flits.
  std::int32_t circuit_window = 32;
  /// Paper footnote 1: "A physical circuit is a circuit made of physical
  /// channels. A virtual circuit is a circuit made of virtual channels."
  /// With virtual_circuits, S1..Sk model reserved virtual-channel paths:
  /// circuits still remove per-hop routing and contention, but data moves
  /// at the base clock (1 flit/cycle) with wormhole per-hop latency --
  /// isolating the wave-pipelining contribution from the reuse
  /// contribution in ablations.
  bool virtual_circuits = false;
  /// Router pipeline latency (cycles a flit spends per hop beyond link
  /// traversal) for the wormhole plane.
  std::int32_t wormhole_pipeline_latency = 2;
  /// Cycles a control flit (probe, ack, teardown, release request) spends
  /// per hop on the control channels. Control flits cross the same links
  /// as wormhole flits but skip VC/switch allocation, so this is slightly
  /// cheaper than a wormhole header hop.
  std::int32_t control_hop_cycles = 2;
};

struct ProtocolConfig {
  ProtocolKind protocol = ProtocolKind::kClrp;
  ClrpVariant clrp_variant = ClrpVariant::kFull;
  /// Maximum misroutes for MB-m probe routing.
  std::int32_t max_misroutes = 2;
  /// Circuit-cache entries per node.
  std::int32_t circuit_cache_entries = 8;
  ReplacementPolicy replacement = ReplacementPolicy::kLru;
  /// Below this message length (flits), CLRP sends via wormhole without
  /// attempting a circuit (0 = always try a circuit).
  std::int32_t min_circuit_message_flits = 0;
  /// Wormhole messages longer than this are segmented into packets of at
  /// most this many flits (0 = no segmentation). Packets of one message
  /// may travel on different VCs; the destination reassembles by count.
  std::int32_t max_packet_flits = 0;
  /// "The simplest version of wave router is obtained by setting k=1 and
  /// w=0. In this case, all the messages use PCS" (paper section 2).
  /// With pcs_only, nothing falls back to wormhole switching: failed
  /// setups retry after a backoff and messages wait for their circuit.
  bool pcs_only = false;
  /// Seeded bug (docs/TESTING.md mutation table): Force probes also wait
  /// on channels still being established, violating the Theorem-1 premise.
  /// A runtime knob so tests can flip it per run; the default is false and
  /// becomes true only in a -DWAVESIM_MUTATE_FORCE_UNACKED=ON build.
  bool mutate_force_unacked = mutate_force_unacked_default();
};

/// Software messaging-layer model (paper section 1: buffer allocation,
/// copying and packetization dominate send cost in multicomputers;
/// section 2: allocating message buffers at both ends when the circuit is
/// established lets every message on the circuit reuse them).
/// All zero by default (pure hardware latency).
struct SoftwareConfig {
  /// Send-side software cost of a wormhole message, cycles.
  std::int32_t wormhole_send_overhead = 0;
  /// Software cost of the first message on a fresh circuit (allocates the
  /// end-point buffers).
  std::int32_t circuit_first_send_overhead = 0;
  /// Software cost of subsequent messages reusing the circuit's buffers.
  std::int32_t circuit_reuse_send_overhead = 0;
  /// Delivery-buffer flits CLRP allocates speculatively when a circuit is
  /// established ("a reasonably large buffer can be allocated").
  std::int32_t clrp_initial_buffer_flits = 64;
  /// Penalty, cycles, when a message exceeds the circuit's allocated
  /// buffer and it must be re-allocated ("buffers may have to be
  /// re-allocated for longer messages"). CARP avoids this by sizing the
  /// buffer to the longest message of the set.
  std::int32_t buffer_realloc_penalty = 0;
};

/// Dynamic fault event kinds (docs/FAULTS.md). Link events name the
/// bidirectional link leaving `node` through `port`; both directions and
/// all k circuit switches fail together. Node events fail every circuit
/// link incident to the node (its PCS switches go down); the node itself
/// keeps injecting/ejecting wormhole traffic.
enum class FaultEventKind { kLinkDown, kLinkUp, kNodeDown, kNodeUp };

const char* to_string(FaultEventKind kind) noexcept;
bool from_string(const std::string& name, FaultEventKind& out) noexcept;

/// One scheduled fault event, applied at the top of cycle `at` before any
/// traffic of that cycle moves.
struct FaultEvent {
  Cycle at = 0;
  FaultEventKind kind = FaultEventKind::kLinkDown;
  NodeId node = 0;
  PortId port = 0;  ///< ignored for node events
  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// Failure burst: at cycle `at`, `fraction` of all bidirectional links
/// fail at once (drawn deterministically from the run seed); each comes
/// back `repair_after` cycles later (0 = permanent). Active iff
/// fraction > 0.
struct FaultStorm {
  Cycle at = 0;
  double fraction = 0.0;
  Cycle repair_after = 0;
  friend bool operator==(const FaultStorm&, const FaultStorm&) = default;
};

/// Poisson link churn over [from, until): per-cycle failure probability
/// `rate` across the network, each failed link repaired after an
/// exponential delay with mean `mean_repair` (0 = permanent). Active iff
/// rate > 0.
struct FaultChurn {
  double rate = 0.0;
  Cycle from = 0;
  Cycle until = 0;
  Cycle mean_repair = 0;
  friend bool operator==(const FaultChurn&, const FaultChurn&) = default;
};

/// RIP-style distance-vector reachability layer parameters (triggered
/// updates, split horizon with poisoned reverse, route timeouts). Runs
/// over the S0 control plane, which never fails.
struct DistanceVectorConfig {
  /// Cycles between full periodic advertisements while the plane is
  /// active (faults recent or updates in flight).
  Cycle advert_period = 256;
  /// A route not refreshed for timeout_periods * advert_period cycles is
  /// withdrawn (metric = infinity).
  std::int32_t timeout_periods = 3;
  /// Per-hop latency of an advertisement; 0 = use control_hop_cycles.
  std::int32_t hop_cycles = 0;
  friend bool operator==(const DistanceVectorConfig&,
                         const DistanceVectorConfig&) = default;
};

struct FaultConfig {
  /// Fraction of unidirectional circuit data channels statically marked
  /// faulty (with the paired control channel). The S0 wormhole plane stays
  /// fault-free so the wormhole fallback always works — this matches the
  /// paper's fault story, which is about MB-m probe setup resilience.
  double link_fault_rate = 0.0;
  /// Explicit dynamic fault events, applied at cycle boundaries. Dynamic
  /// faults also only touch the circuit planes; S0 stays healthy.
  std::vector<FaultEvent> events;
  FaultStorm storm;
  FaultChurn churn;
  DistanceVectorConfig dv;

  /// True when any dynamic fault source is configured (the fault plane is
  /// only constructed — and only costs anything — in that case).
  bool dynamic() const noexcept {
    return !events.empty() || storm.fraction > 0.0 || churn.rate > 0.0;
  }
};

struct SimConfig {
  TopologyConfig topology;
  RouterConfig router;
  ProtocolConfig protocol;
  SoftwareConfig software;
  FaultConfig faults;
  std::uint64_t seed = 1;

  /// Throws std::invalid_argument on an inconsistent configuration.
  void validate() const;

  std::int32_t num_nodes() const noexcept;
  /// Wave clock multiplier actually in effect (1.0 for virtual circuits).
  double effective_wave_factor() const noexcept;
  /// Effective circuit bandwidth in flits per base cycle.
  double circuit_flits_per_cycle() const noexcept;

  /// Derive wave_clock_factor from a technology timing model instead of
  /// asserting it (see sim/technology.hpp).
  void apply_technology(const struct TechnologyModel& technology);

  /// Canonical small configs used across tests/benches.
  static SimConfig small_mesh();    ///< 4x4 mesh, defaults
  static SimConfig default_torus(); ///< 8x8 torus, defaults
  static SimConfig wormhole_baseline();  ///< 8x8 torus, k=0, wormhole only
};

}  // namespace wavesim::sim
