// Minimal dependency-free JSON document: build, serialize, parse.
//
// Used by the sweep harness and the bench drivers to export metrics with a
// stable schema. Objects preserve insertion order so that serialization is
// byte-stable across runs (a requirement for the determinism tests and for
// diffing committed baselines).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace wavesim::sim {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() noexcept = default;
  JsonValue(std::nullptr_t) noexcept {}
  JsonValue(bool b) noexcept : kind_(Kind::kBool), bool_(b) {}
  JsonValue(double v) noexcept : kind_(Kind::kNumber), number_(v) {}
  JsonValue(int v) noexcept : JsonValue(static_cast<double>(v)) {}
  JsonValue(unsigned v) noexcept : JsonValue(static_cast<double>(v)) {}
  JsonValue(std::int64_t v) noexcept : JsonValue(static_cast<double>(v)) {}
  JsonValue(std::uint64_t v) noexcept : JsonValue(static_cast<double>(v)) {}
  JsonValue(const char* s) : kind_(Kind::kString), string_(s) {}
  JsonValue(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}

  static JsonValue object() { JsonValue v; v.kind_ = Kind::kObject; return v; }
  static JsonValue array() { JsonValue v; v.kind_ = Kind::kArray; return v; }

  Kind kind() const noexcept { return kind_; }
  bool is_null() const noexcept { return kind_ == Kind::kNull; }
  bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  bool is_number() const noexcept { return kind_ == Kind::kNumber; }
  bool is_string() const noexcept { return kind_ == Kind::kString; }
  bool is_array() const noexcept { return kind_ == Kind::kArray; }
  bool is_object() const noexcept { return kind_ == Kind::kObject; }

  bool as_bool() const;
  double as_number() const;
  std::int64_t as_int() const;
  const std::string& as_string() const;

  /// Object: insert or overwrite `key` (insertion order kept). Returns
  /// *this so schema construction chains.
  JsonValue& set(const std::string& key, JsonValue value);
  /// Object: member lookup; nullptr when absent (or not an object).
  const JsonValue* find(const std::string& key) const noexcept;
  /// Object: member access; throws std::out_of_range when absent.
  const JsonValue& at(const std::string& key) const;

  /// Array: append.
  JsonValue& push_back(JsonValue value);
  /// Array: element access; throws std::out_of_range.
  const JsonValue& at(std::size_t index) const;

  /// Array / object element count (0 for scalars).
  std::size_t size() const noexcept;

  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }
  const std::vector<JsonValue>& elements() const { return elements_; }

  /// Serialize. indent = 0 -> compact single line; indent > 0 -> pretty
  /// with that many spaces per level. Output is deterministic.
  std::string dump(int indent = 0) const;

  /// Parse a complete JSON text; throws std::runtime_error with an offset
  /// on malformed input.
  static JsonValue parse(const std::string& text);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> elements_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Write `value.dump(2)` plus a trailing newline to `path`.
/// Returns false (and reports to stderr) when the file cannot be written.
bool write_json_file(const JsonValue& value, const std::string& path);

/// Read and parse `path`; throws std::runtime_error on I/O or parse errors.
JsonValue read_json_file(const std::string& path);

}  // namespace wavesim::sim
