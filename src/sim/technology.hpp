// Technology timing model for the wave-pipelined clock factor.
//
// Paper section 2 (summarizing the ICPP'96 companion study): a wormhole
// router's clock period covers routing decision + switch traversal + flit
// buffer access, while a pre-established circuit removes routing and
// buffering entirely -- its wave clock is limited only by switch delay,
// signal skew between the wires of the parallel data path, latch setup
// time, and node memory bandwidth. "Circuit simulations using Spice
// indicated that clock frequency could be up to four times higher than in
// a wormhole router using the same technology."
//
// This model turns those constraints into the `wave_clock_factor`
// simulation parameter instead of hard-coding 4x.
#pragma once

namespace wavesim::sim {

struct TechnologyModel {
  // Wormhole router pipeline components, nanoseconds (mid-90s CMOS
  // ballpark matching the paper's era).
  double routing_delay_ns = 4.0;   ///< routing decision logic
  double switch_delay_ns = 1.5;    ///< crossbar traversal
  double buffer_delay_ns = 2.5;    ///< flit buffer write/read

  // Wave-pipelined path constraints, nanoseconds.
  double wire_skew_ns = 0.3;       ///< skew across the parallel data path
  double latch_setup_ns = 0.2;     ///< synchronizer latch setup
  /// Shortest period the node memory system can source/sink phits at.
  double memory_cycle_ns = 1.5;

  /// Base (wormhole) clock period: every pipeline component must fit.
  double base_period_ns() const noexcept {
    return routing_delay_ns + switch_delay_ns + buffer_delay_ns;
  }

  /// Wave clock period: switch + skew + setup, but never faster than the
  /// memory system.
  double wave_period_ns() const noexcept {
    const double path = switch_delay_ns + wire_skew_ns + latch_setup_ns;
    return path > memory_cycle_ns ? path : memory_cycle_ns;
  }

  /// The resulting clock multiplier (paper: "up to four times higher").
  double wave_clock_factor() const noexcept {
    return base_period_ns() / wave_period_ns();
  }

  bool valid() const noexcept {
    return routing_delay_ns > 0 && switch_delay_ns > 0 &&
           buffer_delay_ns >= 0 && wire_skew_ns >= 0 && latch_setup_ns >= 0 &&
           memory_cycle_ns > 0;
  }
};

}  // namespace wavesim::sim
