#include "sim/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace wavesim::sim {

namespace {

LogLevel level_from_env() {
  const char* env = std::getenv("WAVESIM_LOG");
  if (env == nullptr) return LogLevel::kWarn;
  const std::string v{env};
  if (v == "error") return LogLevel::kError;
  if (v == "warn") return LogLevel::kWarn;
  if (v == "info") return LogLevel::kInfo;
  if (v == "debug") return LogLevel::kDebug;
  if (v == "trace") return LogLevel::kTrace;
  return LogLevel::kWarn;
}

std::atomic<int>& level_storage() {
  static std::atomic<int> level{static_cast<int>(level_from_env())};
  return level;
}

constexpr const char* prefix(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "[error] ";
    case LogLevel::kWarn: return "[warn ] ";
    case LogLevel::kInfo: return "[info ] ";
    case LogLevel::kDebug: return "[debug] ";
    case LogLevel::kTrace: return "[trace] ";
  }
  return "[?    ] ";
}

}  // namespace

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(level_storage().load(std::memory_order_relaxed));
}

void set_log_level(LogLevel level) noexcept {
  level_storage().store(static_cast<int>(level), std::memory_order_relaxed);
}

void log_line(LogLevel level, std::string_view msg) {
  std::fprintf(stderr, "%s%.*s\n", prefix(level),
               static_cast<int>(msg.size()), msg.data());
}

}  // namespace wavesim::sim
