#include "sim/json.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace wavesim::sim {

namespace {

[[noreturn]] void fail(const char* what) { throw std::runtime_error(what); }

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {  // JSON has no inf/nan; null is the convention
    out += "null";
    return;
  }
  // Integers (the common case: counts, seeds, cycles) print exactly;
  // everything else uses shortest-round-trip-ish %.17g.
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    out += buf;
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

}  // namespace

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) fail("JsonValue: not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  if (kind_ != Kind::kNumber) fail("JsonValue: not a number");
  return number_;
}

std::int64_t JsonValue::as_int() const {
  return static_cast<std::int64_t>(as_number());
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) fail("JsonValue: not a string");
  return string_;
}

JsonValue& JsonValue::set(const std::string& key, JsonValue value) {
  if (kind_ != Kind::kObject) fail("JsonValue: set() on non-object");
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(key, std::move(value));
  return *this;
}

const JsonValue* JsonValue::find(const std::string& key) const noexcept {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* v = find(key);
  if (v == nullptr) throw std::out_of_range("JsonValue: no member '" + key + "'");
  return *v;
}

JsonValue& JsonValue::push_back(JsonValue value) {
  if (kind_ != Kind::kArray) fail("JsonValue: push_back() on non-array");
  elements_.push_back(std::move(value));
  return *this;
}

const JsonValue& JsonValue::at(std::size_t index) const {
  if (kind_ != Kind::kArray) fail("JsonValue: at(index) on non-array");
  return elements_.at(index);
}

std::size_t JsonValue::size() const noexcept {
  if (kind_ == Kind::kArray) return elements_.size();
  if (kind_ == Kind::kObject) return members_.size();
  return 0;
}

void JsonValue::dump_to(std::string& out, int indent, int depth) const {
  const auto newline = [&](int level) {
    if (indent <= 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * level), ' ');
  };
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kNumber: append_number(out, number_); break;
    case Kind::kString: append_escaped(out, string_); break;
    case Kind::kArray: {
      if (elements_.empty()) { out += "[]"; break; }
      out += '[';
      for (std::size_t i = 0; i < elements_.size(); ++i) {
        if (i != 0) out += ',';
        newline(depth + 1);
        elements_[i].dump_to(out, indent, depth + 1);
      }
      newline(depth);
      out += ']';
      break;
    }
    case Kind::kObject: {
      if (members_.empty()) { out += "{}"; break; }
      out += '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i != 0) out += ',';
        newline(depth + 1);
        append_escaped(out, members_[i].first);
        out += indent > 0 ? ": " : ":";
        members_[i].second.dump_to(out, indent, depth + 1);
      }
      newline(depth);
      out += '}';
      break;
    }
  }
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

// ----------------------------------------------------------------- parser

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) error("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void error(const char* what) const {
    throw std::runtime_error("JSON parse error at offset " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') ++pos_;
      else break;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) error("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) error("unexpected character");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue parse_value() {
    // The parser recurses once per nesting level; cap the depth so a
    // hostile input ("[[[[..." ) fails cleanly instead of overflowing the
    // stack.
    if (depth_ >= kMaxDepth) error("nesting too deep");
    ++depth_;
    JsonValue v = parse_value_inner();
    --depth_;
    return v;
  }

  JsonValue parse_value_inner() {
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue(parse_string());
      case 't': if (consume_literal("true")) return JsonValue(true); error("bad literal");
      case 'f': if (consume_literal("false")) return JsonValue(false); error("bad literal");
      case 'n': if (consume_literal("null")) return JsonValue(nullptr); error("bad literal");
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue obj = JsonValue::object();
    if (peek() == '}') { ++pos_; return obj; }
    for (;;) {
      if (peek() != '"') error("expected string key");
      std::string key = parse_string();
      if (obj.find(key) != nullptr) error("duplicate object key");
      expect(':');
      obj.set(key, parse_value());
      const char c = peek();
      ++pos_;
      if (c == '}') return obj;
      if (c != ',') error("expected ',' or '}'");
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue arr = JsonValue::array();
    if (peek() == ']') { ++pos_; return arr; }
    for (;;) {
      arr.push_back(parse_value());
      const char c = peek();
      ++pos_;
      if (c == ']') return arr;
      if (c != ',') error("expected ',' or ']'");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) error("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) error("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else error("bad \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs unsupported;
          // the harness never emits them).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: error("bad escape");
      }
    }
    error("unterminated string");
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    auto digits = [&] {
      const std::size_t before = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
      return pos_ > before;
    };
    if (!digits()) error("bad number");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!digits()) error("bad number");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (!digits()) error("bad number");
    }
    try {
      return JsonValue(std::stod(text_.substr(start, pos_ - start)));
    } catch (const std::out_of_range&) {  // e.g. "1e999999"
      error("number out of range");
    }
  }

  static constexpr int kMaxDepth = 256;
  const std::string& text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

JsonValue JsonValue::parse(const std::string& text) {
  return Parser(text).parse_document();
}

JsonValue read_json_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw std::runtime_error("cannot read " + path);
  }
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  const bool truncated = std::ferror(f) != 0;
  std::fclose(f);
  if (truncated) throw std::runtime_error("read error on " + path);
  return JsonValue::parse(text);
}

bool write_json_file(const JsonValue& value, const std::string& path) {
  // Write-to-temp then rename, so readers polling `path` (the service's
  // result files, checkpoint metadata) never observe a torn document.
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", tmp.c_str());
    return false;
  }
  const std::string text = value.dump(2);
  bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size() &&
            std::fputc('\n', f) != EOF;
  ok = std::fclose(f) == 0 && ok;
  if (!ok) {
    std::fprintf(stderr, "error: short write to %s\n", tmp.c_str());
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::fprintf(stderr, "error: cannot rename %s to %s\n", tmp.c_str(),
                 path.c_str());
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace wavesim::sim
