#include "sim/config.hpp"

#include <stdexcept>

#include "sim/technology.hpp"

namespace wavesim::sim {

const char* to_string(RoutingKind kind) noexcept {
  switch (kind) {
    case RoutingKind::kDimensionOrder: return "dor";
    case RoutingKind::kDuatoAdaptive: return "duato";
    case RoutingKind::kWestFirst: return "west-first";
    case RoutingKind::kNegativeFirst: return "negative-first";
  }
  return "?";
}

const char* to_string(ReplacementPolicy policy) noexcept {
  switch (policy) {
    case ReplacementPolicy::kLru: return "lru";
    case ReplacementPolicy::kLfu: return "lfu";
    case ReplacementPolicy::kFifo: return "fifo";
    case ReplacementPolicy::kRandom: return "random";
  }
  return "?";
}

const char* to_string(ProtocolKind kind) noexcept {
  switch (kind) {
    case ProtocolKind::kWormholeOnly: return "wormhole";
    case ProtocolKind::kClrp: return "clrp";
    case ProtocolKind::kCarp: return "carp";
  }
  return "?";
}

const char* to_string(FaultEventKind kind) noexcept {
  switch (kind) {
    case FaultEventKind::kLinkDown: return "link-down";
    case FaultEventKind::kLinkUp: return "link-up";
    case FaultEventKind::kNodeDown: return "node-down";
    case FaultEventKind::kNodeUp: return "node-up";
  }
  return "?";
}

bool mutate_force_unacked_default() noexcept {
#ifdef WAVESIM_MUTATE_FORCE_UNACKED
  return true;
#else
  return false;
#endif
}

const char* to_string(ClrpVariant variant) noexcept {
  switch (variant) {
    case ClrpVariant::kFull: return "full";
    case ClrpVariant::kForceFirst: return "force-first";
    case ClrpVariant::kSingleSwitch: return "single-switch";
  }
  return "?";
}

namespace {

/// Match `name` against to_string over every enumerator in [first, last].
template <typename Enum>
bool match_enum(const std::string& name, Enum first, Enum last,
                Enum& out) noexcept {
  for (int v = static_cast<int>(first); v <= static_cast<int>(last); ++v) {
    const Enum candidate = static_cast<Enum>(v);
    if (name == to_string(candidate)) {
      out = candidate;
      return true;
    }
  }
  return false;
}

}  // namespace

bool from_string(const std::string& name, RoutingKind& out) noexcept {
  return match_enum(name, RoutingKind::kDimensionOrder,
                    RoutingKind::kNegativeFirst, out);
}

bool from_string(const std::string& name, ReplacementPolicy& out) noexcept {
  return match_enum(name, ReplacementPolicy::kLru, ReplacementPolicy::kRandom,
                    out);
}

bool from_string(const std::string& name, ProtocolKind& out) noexcept {
  return match_enum(name, ProtocolKind::kWormholeOnly, ProtocolKind::kCarp,
                    out);
}

bool from_string(const std::string& name, ClrpVariant& out) noexcept {
  return match_enum(name, ClrpVariant::kFull, ClrpVariant::kSingleSwitch, out);
}

bool from_string(const std::string& name, FaultEventKind& out) noexcept {
  return match_enum(name, FaultEventKind::kLinkDown, FaultEventKind::kNodeUp,
                    out);
}

void SimConfig::validate() const {
  auto fail = [](const std::string& why) {
    throw std::invalid_argument("SimConfig: " + why);
  };
  if (topology.radix.empty()) fail("topology needs >= 1 dimension");
  for (auto r : topology.radix) {
    if (r < 2) fail("every dimension radix must be >= 2");
  }
  if (router.wormhole_vcs < 1) fail("wormhole_vcs must be >= 1");
  if (topology.torus && router.routing == RoutingKind::kDimensionOrder &&
      router.wormhole_vcs < 2) {
    fail("torus DOR needs >= 2 wormhole VCs (dateline classes)");
  }
  if (router.routing == RoutingKind::kDuatoAdaptive &&
      router.wormhole_vcs < (topology.torus ? 3 : 2)) {
    fail("Duato adaptive needs >= 2 VCs on mesh / >= 3 on torus "
         "(escape channels + at least one adaptive channel)");
  }
  if (router.routing == RoutingKind::kWestFirst &&
      (topology.torus || topology.radix.size() != 2)) {
    fail("west-first routing needs a 2-D mesh");
  }
  if (router.routing == RoutingKind::kNegativeFirst && topology.torus) {
    fail("negative-first routing needs a mesh");
  }
  if (router.vc_buffer_depth < 1) fail("vc_buffer_depth must be >= 1");
  if (router.wave_switches < 0) fail("wave_switches must be >= 0");
  if (router.wave_clock_factor <= 0.0) fail("wave_clock_factor must be > 0");
  if (router.circuit_window < 1) fail("circuit_window must be >= 1");
  if (router.wormhole_pipeline_latency < 1) {
    fail("wormhole_pipeline_latency must be >= 1");
  }
  if (router.control_hop_cycles < 1) fail("control_hop_cycles must be >= 1");
  if (protocol.max_misroutes < 0) fail("max_misroutes must be >= 0");
  if (protocol.circuit_cache_entries < 1) {
    fail("circuit_cache_entries must be >= 1");
  }
  if (protocol.min_circuit_message_flits < 0) {
    fail("min_circuit_message_flits must be >= 0");
  }
  if (protocol.max_packet_flits < 0) fail("max_packet_flits must be >= 0");
  if (protocol.pcs_only) {
    if (protocol.protocol != ProtocolKind::kClrp) {
      fail("pcs_only requires the CLRP protocol");
    }
    if (protocol.min_circuit_message_flits != 0) {
      fail("pcs_only cannot bypass circuits for short messages");
    }
  }
  if (protocol.protocol != ProtocolKind::kWormholeOnly &&
      router.wave_switches < 1) {
    fail("circuit protocols (CLRP/CARP) need wave_switches >= 1");
  }
  if (faults.link_fault_rate < 0.0 || faults.link_fault_rate >= 1.0) {
    fail("link_fault_rate must be in [0, 1)");
  }
  if (faults.dynamic()) {
    if (router.wave_switches < 1) {
      fail("dynamic fault schedules target the circuit planes; they need "
           "wave_switches >= 1");
    }
    if (protocol.pcs_only) {
      fail("dynamic fault schedules need the wormhole fallback; pcs_only "
           "has none");
    }
    const std::int32_t nodes = num_nodes();
    const auto dims = static_cast<std::int32_t>(topology.radix.size());
    for (const FaultEvent& e : faults.events) {
      if (e.node < 0 || e.node >= nodes) {
        fail("fault event node " + std::to_string(e.node) +
             " out of range [0, " + std::to_string(nodes) + ")");
      }
      const bool link_event = e.kind == FaultEventKind::kLinkDown ||
                              e.kind == FaultEventKind::kLinkUp;
      if (link_event) {
        if (e.port < 0 || e.port >= 2 * dims) {
          fail("fault event port " + std::to_string(e.port) +
               " out of range [0, " + std::to_string(2 * dims) + ")");
        }
        if (!topology.torus) {
          // Mesh boundary: the named link must actually have a neighbor.
          const std::int32_t dim = e.port / 2;
          std::int32_t stride = 1;
          for (std::int32_t d = dims - 1; d > dim; --d) {
            stride *= topology.radix[static_cast<std::size_t>(d)];
          }
          const std::int32_t r = topology.radix[static_cast<std::size_t>(dim)];
          const std::int32_t c = (e.node / stride) % r;
          const bool positive = (e.port % 2) == 0;
          if ((positive && c == r - 1) || (!positive && c == 0)) {
            fail("fault event targets a mesh boundary port with no link "
                 "(node " + std::to_string(e.node) + ", port " +
                 std::to_string(e.port) + ")");
          }
        }
      }
      if (!link_event && nodes < 2) {
        fail("node fault events need >= 2 nodes");
      }
    }
    if (faults.storm.fraction < 0.0 || faults.storm.fraction >= 1.0) {
      fail("storm fraction must be in [0, 1)");
    }
    if (faults.churn.rate < 0.0 || faults.churn.rate > 1.0) {
      fail("churn rate must be in [0, 1]");
    }
    if (faults.churn.rate > 0.0 && faults.churn.until <= faults.churn.from) {
      fail("churn window must be non-empty (until > from)");
    }
    if (faults.dv.advert_period < 1) fail("dv advert_period must be >= 1");
    if (faults.dv.timeout_periods < 1) fail("dv timeout_periods must be >= 1");
    if (faults.dv.hop_cycles < 0) fail("dv hop_cycles must be >= 0");
  }
  if (software.wormhole_send_overhead < 0 ||
      software.circuit_first_send_overhead < 0 ||
      software.circuit_reuse_send_overhead < 0 ||
      software.buffer_realloc_penalty < 0) {
    fail("software overheads must be >= 0");
  }
  if (software.clrp_initial_buffer_flits < 1) {
    fail("clrp_initial_buffer_flits must be >= 1");
  }
}

double SimConfig::effective_wave_factor() const noexcept {
  return router.virtual_circuits ? 1.0 : router.wave_clock_factor;
}

std::int32_t SimConfig::num_nodes() const noexcept {
  std::int32_t n = 1;
  for (auto r : topology.radix) n *= r;
  return n;
}

double SimConfig::circuit_flits_per_cycle() const noexcept {
  const double split =
      router.split_channels ? static_cast<double>(router.wave_switches) : 1.0;
  return effective_wave_factor() / (split > 0.0 ? split : 1.0);
}

void SimConfig::apply_technology(const TechnologyModel& technology) {
  if (!technology.valid()) {
    throw std::invalid_argument("apply_technology: invalid timing model");
  }
  router.wave_clock_factor = technology.wave_clock_factor();
}

SimConfig SimConfig::small_mesh() {
  SimConfig cfg;
  cfg.topology.radix = {4, 4};
  cfg.topology.torus = false;
  return cfg;
}

SimConfig SimConfig::default_torus() {
  SimConfig cfg;
  cfg.topology.radix = {8, 8};
  cfg.topology.torus = true;
  return cfg;
}

SimConfig SimConfig::wormhole_baseline() {
  SimConfig cfg = default_torus();
  cfg.router.wave_switches = 0;
  cfg.protocol.protocol = ProtocolKind::kWormholeOnly;
  return cfg;
}

}  // namespace wavesim::sim
