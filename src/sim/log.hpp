// Minimal leveled logger. The simulator is hot-loop heavy, so log calls are
// guarded by an inline level check; formatting only happens when enabled.
#pragma once

#include <sstream>
#include <string_view>

namespace wavesim::sim {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3, kTrace = 4 };

/// Global threshold; messages above it are dropped. Defaults to kWarn and
/// can be raised via WAVESIM_LOG environment variable (error|warn|info|debug|trace).
LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;

/// Emit one line to stderr with a level prefix. Not thread-safe beyond the
/// atomicity of a single write; the simulator itself is single-threaded.
void log_line(LogLevel level, std::string_view msg);

namespace detail {
template <typename... Args>
void log_fmt(LogLevel level, Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  log_line(level, os.str());
}
}  // namespace detail

template <typename... Args>
void log_error(Args&&... args) {
  if (log_level() >= LogLevel::kError) detail::log_fmt(LogLevel::kError, args...);
}
template <typename... Args>
void log_warn(Args&&... args) {
  if (log_level() >= LogLevel::kWarn) detail::log_fmt(LogLevel::kWarn, args...);
}
template <typename... Args>
void log_info(Args&&... args) {
  if (log_level() >= LogLevel::kInfo) detail::log_fmt(LogLevel::kInfo, args...);
}
template <typename... Args>
void log_debug(Args&&... args) {
  if (log_level() >= LogLevel::kDebug) detail::log_fmt(LogLevel::kDebug, args...);
}
template <typename... Args>
void log_trace(Args&&... args) {
  if (log_level() >= LogLevel::kTrace) detail::log_fmt(LogLevel::kTrace, args...);
}

}  // namespace wavesim::sim
