// Fundamental identifier and time types shared by every subsystem.
//
// Strong-ish typedefs: plain integer aliases with named invalid sentinels.
// All ids are dense indices assigned by the owning container, so they are
// kept as integers for use as vector subscripts.
#pragma once

#include <cstdint>
#include <limits>

namespace wavesim {

/// Simulation time in base router clock cycles.
using Cycle = std::uint64_t;

/// Dense node index in [0, num_nodes).
using NodeId = std::int32_t;

/// Dense index of a unidirectional router port (see topology::PortMap).
using PortId = std::int32_t;

/// Virtual-channel index within a port.
using VcId = std::int32_t;

/// Unique message identifier (monotonic per simulation).
using MessageId = std::int64_t;

/// Unique circuit identifier (monotonic per simulation).
using CircuitId = std::int64_t;

/// Unique probe identifier (monotonic per simulation).
using ProbeId = std::int64_t;

inline constexpr NodeId kInvalidNode = -1;
inline constexpr PortId kInvalidPort = -1;
inline constexpr VcId kInvalidVc = -1;
inline constexpr MessageId kInvalidMessage = -1;
inline constexpr CircuitId kInvalidCircuit = -1;
inline constexpr ProbeId kInvalidProbe = -1;
inline constexpr Cycle kCycleMax = std::numeric_limits<Cycle>::max();

}  // namespace wavesim
