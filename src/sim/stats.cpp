#include "sim/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace wavesim::sim {

void OnlineStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double nt = na + nb;
  mean_ += delta * nb / nt;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineStats::variance() const noexcept {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

double Sample::mean() const noexcept {
  if (values_.empty()) return 0.0;
  const double s = std::accumulate(values_.begin(), values_.end(), 0.0);
  return s / static_cast<double>(values_.size());
}

double Sample::percentile(double p) const {
  if (values_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
  const double clamped = std::clamp(p, 0.0, 100.0);
  const auto rank = static_cast<std::size_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(values_.size())));
  const std::size_t idx = rank == 0 ? 0 : rank - 1;
  return values_[std::min(idx, values_.size() - 1)];
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  if (bins == 0 || !(hi > lo)) {
    throw std::invalid_argument("Histogram: need bins>0 and hi>lo");
  }
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    auto i = static_cast<std::size_t>((x - lo_) / width_);
    if (i >= counts_.size()) i = counts_.size() - 1;  // fp edge
    ++counts_[i];
  }
}

double Histogram::bin_lo(std::size_t i) const noexcept {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const noexcept {
  return lo_ + width_ * static_cast<double>(i + 1);
}

std::string Histogram::render(std::size_t max_width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const auto bar =
        static_cast<std::size_t>(counts_[i] * max_width / peak);
    out << "[" << bin_lo(i) << ", " << bin_hi(i) << ") "
        << std::string(std::max<std::size_t>(bar, 1), '#') << " "
        << counts_[i] << "\n";
  }
  if (underflow_ != 0) out << "underflow " << underflow_ << "\n";
  if (overflow_ != 0) out << "overflow " << overflow_ << "\n";
  return out.str();
}

}  // namespace wavesim::sim
