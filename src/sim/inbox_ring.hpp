// Growable circular FIFO of timed entries, ordered by due cycle.
//
// The fabric keeps one ring per node and per traffic class (credits,
// flits) instead of a global delay line: a node's arrivals are exactly
// the due-ordered prefix of its ring, so stepping a node never scans
// other nodes' traffic. Entries usually arrive already ordered (commits
// run in ascending cycle order); the lookahead window commit can append
// a bounded out-of-order tail, which push_ordered repairs with a short
// backward insertion walk.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <utility>
#include <vector>

#include "sim/types.hpp"
#include "snap/archive.hpp"

namespace wavesim::sim {

/// T must expose a public `Cycle due` field. Capacity grows in powers of
/// two and never shrinks (steady state performs no allocation).
template <typename T>
class InboxRing {
 public:
  bool empty() const noexcept { return count_ == 0; }
  std::size_t size() const noexcept { return count_; }

  const T& front() const {
    if (count_ == 0) throw std::logic_error("InboxRing::front on empty ring");
    return buf_[head_];
  }

  void pop_front() {
    if (count_ == 0) throw std::logic_error("InboxRing::pop on empty ring");
    head_ = (head_ + 1) & mask_;
    --count_;
  }

  /// Insert keeping `due` non-decreasing from front to back. Equal dues
  /// keep insertion order (stable), so the ascending-(cycle, shard)
  /// commit order is preserved for simultaneous arrivals.
  void push_ordered(const T& value) {
    if (count_ == buf_.size()) grow();
    std::size_t pos = (head_ + count_) & mask_;
    buf_[pos] = value;
    ++count_;
    while (pos != head_) {
      const std::size_t prev = (pos + mask_) & mask_;  // pos - 1, wrapped
      if (buf_[prev].due <= buf_[pos].due) break;
      std::swap(buf_[prev], buf_[pos]);
      pos = prev;
    }
  }

  /// Serialize the logical FIFO content (snapshot/restore). Only the
  /// due-ordered entries round-trip; the physical layout is normalized
  /// to head_ = 0 on restore, which can never affect behavior -- pops
  /// and pushes see the same logical sequence either way. `fn` is the
  /// per-entry field serializer, `fn(Archive&, T&)`.
  template <typename Fn>
  void snap(snap::Archive& ar, Fn&& fn) {
    std::uint64_t n = count_;
    ar.pod(n);
    if (ar.writing()) {
      for (std::size_t i = 0; i < count_; ++i) {
        fn(ar, buf_[(head_ + i) & mask_]);
      }
    } else {
      buf_.clear();
      head_ = 0;
      count_ = 0;
      std::size_t cap = 8;
      while (cap < n) cap *= 2;
      buf_.resize(cap);
      mask_ = cap - 1;
      for (std::uint64_t i = 0; i < n; ++i) {
        fn(ar, buf_[i]);
        ++count_;
      }
    }
  }

 private:
  void grow() {
    const std::size_t cap = buf_.empty() ? 8 : buf_.size() * 2;
    std::vector<T> next(cap);
    for (std::size_t i = 0; i < count_; ++i) {
      next[i] = buf_[(head_ + i) & mask_];
    }
    buf_ = std::move(next);
    head_ = 0;
    mask_ = cap - 1;
  }

  // A ring belongs to one node: its owning shard pops (and pushes, for
  // node-local traffic) during the shard phase; cross-shard pushes happen
  // only in the commit phase. [shard: owned]
  std::vector<T> buf_;
  std::size_t mask_ = 0;  ///< capacity - 1 (power of two) [shard: owned]
  std::size_t head_ = 0;   // [shard: owned]
  std::size_t count_ = 0;  // [shard: owned]
};

}  // namespace wavesim::sim
