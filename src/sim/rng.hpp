// Deterministic pseudo-random number generation.
//
// xoshiro256** seeded through SplitMix64. Every stochastic component of the
// simulator draws from an Rng it owns (or a child forked from the run seed),
// so a run is reproducible from a single 64-bit seed regardless of module
// evaluation order.
#pragma once

#include <cstdint>
#include <array>

#include "snap/archive.hpp"

namespace wavesim::sim {

/// SplitMix64 step; used for seeding and for cheap stateless hashing.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Stateless 64-bit mixer (one SplitMix64 step of a copy of `value`).
/// Used to derive independent child seeds and to fold values into
/// order-sensitive fingerprints: mix(h ^ x) chains have full avalanche, so
/// a single swapped event flips the final digest.
std::uint64_t hash_mix(std::uint64_t value) noexcept;

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Next raw 64-bit value.
  std::uint64_t next() noexcept;

  /// Uniform integer in [0, bound); bound must be > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniform01() noexcept;

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool chance(double p) noexcept;

  /// Geometric-ish: number of failures before first success, capped.
  std::uint64_t geometric(double p, std::uint64_t cap) noexcept;

  /// Fork an independent child stream (stable given call order).
  Rng fork() noexcept;

  /// Serialize the raw stream state (snapshot/restore).
  void snap(snap::Archive& ar) {
    for (auto& word : state_) ar.pod(word);
  }

 private:
  std::array<std::uint64_t, 4> state_;
};

}  // namespace wavesim::sim
