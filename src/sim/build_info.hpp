// Build provenance baked in at configure time, for metrics metadata.
#pragma once

namespace wavesim::sim {

/// `git describe --always --dirty` of the source tree at configure time,
/// or "unknown" when git was unavailable.
const char* git_describe() noexcept;

}  // namespace wavesim::sim
