// Generic directed-graph cycle search, shared by the channel-dependency
// graph (src/routing/cdg) and the extended protocol dependency graph
// (src/analysis). Iterative tri-color DFS over adjacency lists; returns
// one cycle as an ordered vertex list straight off the DFS parent chain,
// so cycle[i] -> cycle[(i+1) % size] is an edge of the input for every i
// — a caller can report it as a witness whose every consecutive pair is a
// real edge, never reconstructed after the fact.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace wavesim::sim {

/// One directed cycle of `adj` (vertices in edge order), else empty.
inline std::vector<std::int32_t> find_graph_cycle(
    std::span<const std::vector<std::int32_t>> adj) {
  enum class Color : std::uint8_t { kWhite, kGray, kBlack };
  const auto num_vertices = static_cast<std::int32_t>(adj.size());
  std::vector<Color> color(adj.size(), Color::kWhite);
  std::vector<std::int32_t> parent(adj.size(), -1);

  for (std::int32_t root = 0; root < num_vertices; ++root) {
    if (color[root] != Color::kWhite) continue;
    // Stack holds (vertex, next child index).
    std::vector<std::pair<std::int32_t, std::size_t>> stack;
    stack.emplace_back(root, 0);
    color[root] = Color::kGray;
    while (!stack.empty()) {
      auto& [v, next] = stack.back();
      if (next < adj[v].size()) {
        const std::int32_t child = adj[v][next++];
        if (color[child] == Color::kWhite) {
          color[child] = Color::kGray;
          parent[child] = v;
          stack.emplace_back(child, 0);
        } else if (color[child] == Color::kGray) {
          // Cycle: walk parents from v back to child.
          std::vector<std::int32_t> cycle{child};
          for (std::int32_t walk = v; walk != child; walk = parent[walk]) {
            cycle.push_back(walk);
          }
          std::reverse(cycle.begin(), cycle.end());
          return cycle;
        }
      } else {
        color[v] = Color::kBlack;
        stack.pop_back();
      }
    }
  }
  return {};
}

}  // namespace wavesim::sim
