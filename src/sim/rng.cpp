#include "sim/rng.hpp"

#include <cmath>

namespace wavesim::sim {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t hash_mix(std::uint64_t value) noexcept {
  return splitmix64(value);
}

Rng::Rng(std::uint64_t seed) noexcept {
  // Never allow the all-zero state xoshiro cannot leave.
  std::uint64_t sm = seed;
  for (auto& s : state_) s = splitmix64(sm);
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  if (bound <= 1) return 0;
  // Lemire multiply-shift with rejection to remove modulo bias.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  if (hi <= lo) return lo;
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::uniform01() noexcept {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

std::uint64_t Rng::geometric(double p, std::uint64_t cap) noexcept {
  if (p >= 1.0) return 0;
  if (p <= 0.0) return cap;
  const double u = uniform01();
  const double v = std::log1p(-u) / std::log1p(-p);
  const auto n = static_cast<std::uint64_t>(v);
  return n < cap ? n : cap;
}

Rng Rng::fork() noexcept {
  return Rng{next() ^ 0xa0761d6478bd642fULL};
}

}  // namespace wavesim::sim
