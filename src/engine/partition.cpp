#include "engine/partition.hpp"

#include <stdexcept>

namespace wavesim::engine {

std::int32_t clamp_shards(std::int32_t requested,
                          std::int32_t num_nodes) noexcept {
  if (requested < 1) return 1;
  if (requested > num_nodes) return num_nodes > 0 ? num_nodes : 1;
  return requested;
}

std::vector<ShardRange> partition_nodes(std::int32_t num_nodes,
                                        std::int32_t shards) {
  if (num_nodes < 1) {
    throw std::invalid_argument("partition_nodes: num_nodes < 1");
  }
  const std::int32_t s = clamp_shards(shards, num_nodes);
  const std::int32_t base = num_nodes / s;
  const std::int32_t extra = num_nodes % s;
  std::vector<ShardRange> ranges;
  ranges.reserve(static_cast<std::size_t>(s));
  NodeId begin = 0;
  for (std::int32_t i = 0; i < s; ++i) {
    const NodeId end = begin + base + (i < extra ? 1 : 0);
    ranges.push_back(ShardRange{begin, end});
    begin = end;
  }
  return ranges;
}

std::int32_t shard_of(NodeId node, std::int32_t num_nodes,
                      std::int32_t shards) noexcept {
  const std::int32_t s = clamp_shards(shards, num_nodes);
  const std::int32_t base = num_nodes / s;
  const std::int32_t extra = num_nodes % s;
  const NodeId fat_span = static_cast<NodeId>(extra) * (base + 1);
  if (node < fat_span) return static_cast<std::int32_t>(node / (base + 1));
  return extra + static_cast<std::int32_t>((node - fat_span) / base);
}

}  // namespace wavesim::engine
