#include "engine/pool.hpp"

namespace wavesim::engine {

unsigned resolve_engine_threads(unsigned requested) noexcept {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw != 0 ? hw : 1;
}

CyclePool::CyclePool(unsigned participants) {
  if (participants < 1) participants = 1;
  workers_.reserve(participants - 1);
  for (unsigned slot = 1; slot < participants; ++slot) {
    workers_.emplace_back([this, slot] { worker_loop(slot); });
  }
}

CyclePool::~CyclePool() {
  stop_.store(true, std::memory_order_relaxed);
  epoch_.fetch_add(1, std::memory_order_release);
  epoch_.notify_all();
  // jthread joins in workers_'s destructor.
}

void CyclePool::record_error() noexcept {
  const std::lock_guard<std::mutex> lock(error_mutex_);
  if (!error_) error_ = std::current_exception();
}

void CyclePool::worker_loop(unsigned slot) {
  std::uint64_t seen = 0;
  for (;;) {
    epoch_.wait(seen, std::memory_order_acquire);
    const std::uint64_t now = epoch_.load(std::memory_order_acquire);
    if (now == seen) continue;  // spurious wake
    seen = now;
    if (stop_.load(std::memory_order_relaxed)) return;
    try {
      (*job_)(slot);
    } catch (...) {
      record_error();
    }
    done_.fetch_add(1, std::memory_order_release);
    done_.notify_one();
  }
}

void CyclePool::run(const std::function<void(unsigned)>& job) {
  if (workers_.empty()) {
    job(0);  // single participant: no synchronization at all
    return;
  }
  job_ = &job;
  done_.store(0, std::memory_order_relaxed);
  epoch_.fetch_add(1, std::memory_order_release);
  epoch_.notify_all();
  try {
    job(0);
  } catch (...) {
    record_error();
  }
  const unsigned expected = static_cast<unsigned>(workers_.size());
  for (;;) {
    const unsigned d = done_.load(std::memory_order_acquire);
    if (d == expected) break;
    done_.wait(d, std::memory_order_acquire);
  }
  job_ = nullptr;
  if (error_) {
    std::exception_ptr err;
    {
      const std::lock_guard<std::mutex> lock(error_mutex_);
      err = error_;
      error_ = nullptr;
    }
    std::rethrow_exception(err);
  }
}

}  // namespace wavesim::engine
