// Cycle-synchronous worker pool for the sharded engine.
//
// The harness ThreadPool (mutex + condition_variable + std::function
// queue) is built for coarse tasks — whole replica runs. The engine
// dispatches a job every simulated cycle, where that overhead would
// dominate, so CyclePool keeps a fixed team of participants and uses an
// epoch counter with C++20 atomic wait/notify (futex on Linux): run()
// publishes the job, bumps the epoch, and every worker executes its
// participant slot once; the caller is participant 0 and then waits for
// the done-count. With a single participant run() is a plain inline call
// — a one-shard "parallel" run pays no synchronization at all.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace wavesim::engine {

class CyclePool {
 public:
  /// A team of `participants` >= 1, including the calling thread;
  /// participants - 1 worker threads are spawned.
  explicit CyclePool(unsigned participants);
  ~CyclePool();

  CyclePool(const CyclePool&) = delete;
  CyclePool& operator=(const CyclePool&) = delete;

  unsigned participants() const noexcept {
    return static_cast<unsigned>(workers_.size()) + 1;
  }

  /// Execute job(p) once for every participant p in [0, participants()),
  /// concurrently, and wait for all of them. The caller runs slot 0.
  /// The first exception thrown by any slot is rethrown here after the
  /// barrier (the remaining slots still complete their cycle).
  void run(const std::function<void(unsigned)>& job);

 private:
  void worker_loop(unsigned slot);
  void record_error() noexcept;

  const std::function<void(unsigned)>* job_ = nullptr;
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<unsigned> done_{0};
  std::atomic<bool> stop_{false};
  std::mutex error_mutex_;
  std::exception_ptr error_;
  std::vector<std::jthread> workers_;  // last member: joins first
};

/// Clamp a requested worker count: 0 means "all hardware threads"; the
/// result is always >= 1 even when hardware_concurrency() is unknown.
unsigned resolve_engine_threads(unsigned requested) noexcept;

}  // namespace wavesim::engine
