// The sharded parallel step engine (and its sequential twin).
//
// ParallelEngine partitions the node array into contiguous shards and
// runs Network::step_shard for all shards concurrently on a CyclePool,
// with one barrier per cycle. Conservative synchronization with lookahead
// = 1 link cycle: every cross-node interaction in the shard phase goes
// through a DelayLine of latency >= 1, so cycle-t work never reads
// another node's cycle-t writes and no rollback is ever needed. Shard
// outboxes are committed in ascending node order, which makes the result
// bit-identical to the sequential stepper for any shard and thread count
// (see docs/ENGINE.md for the full argument).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "core/step_engine.hpp"
#include "sim/json.hpp"
#include "sim/types.hpp"

namespace wavesim::engine {

enum class EngineKind : std::uint8_t {
  kSeq,  ///< default single-threaded stepper
  kPar,  ///< sharded conservative parallel engine
};

const char* to_string(EngineKind kind) noexcept;

struct EngineConfig {
  EngineKind kind = EngineKind::kSeq;
  /// Parallel engine only: number of shards. 0 = auto (one per hardware
  /// thread, capped at the node count). Output is independent of this.
  std::int32_t shards = 0;
  /// Parallel engine only: worker threads (including the caller). 0 =
  /// auto (min(shards, hardware threads)). Output is independent of this.
  unsigned threads = 0;
  /// Parallel engine only: barrier lookahead in cycles (>= 1). With L > 1
  /// the engine commits up to L cycles per synchronization whenever its
  /// static analysis proves no cross-shard interaction can land inside
  /// the window. Output is independent of this.
  Cycle lookahead = 1;

  bool parallel() const noexcept { return kind == EngineKind::kPar; }

  /// Shard count actually used for a network of `num_nodes` nodes.
  std::int32_t resolve_shards(std::int32_t num_nodes) const;

  /// The `engine` object stamped into wavesim.run.v1 / wavesim.bench.v1 /
  /// wavesim.sweep.v1: {"kind": "seq"} or {"kind": "par", "shards": N}
  /// (plus "lookahead" when > 1). Pass the network's node count to record
  /// the resolved shard count; without it the requested count is recorded
  /// (0 = auto). Thread count is deliberately omitted — it never affects
  /// output. Byte-identity comparisons across engines must strip this one
  /// object.
  sim::JsonValue to_json(std::int32_t num_nodes = -1) const;
};

/// Parse "seq" / "par" (as from --engine). Returns nullopt on anything
/// else.
std::optional<EngineKind> parse_engine_kind(const std::string& text);

/// Build the engine described by `config` for a network of `num_nodes`
/// nodes. Never returns nullptr; the kSeq config yields a SequentialEngine
/// so callers can treat both kinds uniformly.
std::unique_ptr<core::StepEngine> make_engine(const EngineConfig& config,
                                              std::int32_t num_nodes);

}  // namespace wavesim::engine
