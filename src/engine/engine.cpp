#include "engine/engine.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <vector>

#include "core/network.hpp"
#include "engine/partition.hpp"
#include "engine/pool.hpp"
#include "wormhole/fabric.hpp"

namespace wavesim::engine {

const char* to_string(EngineKind kind) noexcept {
  switch (kind) {
    case EngineKind::kSeq:
      return "seq";
    case EngineKind::kPar:
      return "par";
  }
  return "?";
}

std::optional<EngineKind> parse_engine_kind(const std::string& text) {
  if (text == "seq") return EngineKind::kSeq;
  if (text == "par") return EngineKind::kPar;
  return std::nullopt;
}

std::int32_t EngineConfig::resolve_shards(std::int32_t num_nodes) const {
  const std::int32_t requested =
      shards > 0 ? shards
                 : static_cast<std::int32_t>(resolve_engine_threads(0));
  return clamp_shards(requested, num_nodes);
}

sim::JsonValue EngineConfig::to_json(std::int32_t num_nodes) const {
  sim::JsonValue v = sim::JsonValue::object();
  v.set("kind", to_string(kind));
  if (parallel()) {
    v.set("shards", num_nodes > 0 ? resolve_shards(num_nodes) : shards);
    if (lookahead > 1) {
      v.set("lookahead", static_cast<std::int64_t>(lookahead));
    }
  }
  return v;
}

namespace {

class SequentialEngine final : public core::StepEngine {
 public:
  void step(core::Network& net) override { net.step(); }
  const char* name() const noexcept override { return "seq"; }
};

class ParallelEngine final : public core::StepEngine {
 public:
  ParallelEngine(std::int32_t num_nodes, std::int32_t shards, unsigned threads,
                 Cycle lookahead)
      : lookahead_(std::max<Cycle>(1, lookahead)),
        ranges_(partition_nodes(num_nodes, shards)),
        contexts_(ranges_.size() * static_cast<std::size_t>(lookahead_)),
        pool_(resolve_participants(ranges_.size(), threads)) {
    context_ptrs_.reserve(ranges_.size());
    for (std::size_t s = 0; s < ranges_.size(); ++s) {
      context_ptrs_.push_back(&grid(s, 0));
    }
  }

  void step(core::Network& net) override {
    net.step_begin();
    step_cycle(net);
  }

  void run(core::Network& net, Cycle cycles) override {
    if (lookahead_ <= 1) {
      for (Cycle i = 0; i < cycles; ++i) step(net);
      return;
    }
    ensure_cut_map(net);
    Cycle remaining = cycles;
    while (remaining > 0) {
      net.step_begin();
      const Cycle w = plan_window(net, remaining);
      if (w <= 1) {
        step_cycle(net);
        ++stats_.windows;
        ++stats_.committed_cycles;
        --remaining;
        continue;
      }
      // Pre-offer the window's sends (wormhole-only, no event sink: the
      // early offer only queues time-stamped packets behind the NI's
      // send-path gate, which nothing observes before their cycle).
      if (net.early_send_ok()) net.process_scheduled_sends(net.now() + w);
      run_window(net, w);
      ++stats_.windows;
      stats_.committed_cycles += w;
      remaining -= w;
    }
  }

  WindowStats window_stats() const override { return stats_; }
  const char* name() const noexcept override { return "par"; }

 private:
  static unsigned resolve_participants(std::size_t shards, unsigned threads) {
    const unsigned hw = resolve_engine_threads(threads);
    return std::max(1u, std::min(hw, static_cast<unsigned>(shards)));
  }

  core::ShardContext& grid(std::size_t shard, Cycle row) {
    return contexts_[shard * static_cast<std::size_t>(lookahead_) +
                     static_cast<std::size_t>(row)];
  }

  /// One cycle after step_begin(): dispatch only shards with work (a
  /// shard whose activity bytes are all zero steps to an empty context,
  /// so skipping it — and its context at commit — changes nothing).
  void step_cycle(core::Network& net) {
    const wh::Fabric& fab = net.fabric();
    active_.clear();
    for (std::size_t s = 0; s < ranges_.size(); ++s) {
      if (fab.any_work(ranges_[s].begin, ranges_[s].end)) active_.push_back(s);
    }
    active_ptrs_.clear();
    if (active_.size() <= 1) {
      if (!active_.empty()) {
        const std::size_t s = active_.front();
        net.step_shard(ranges_[s].begin, ranges_[s].end, grid(s, 0));
        active_ptrs_.push_back(&grid(s, 0));
      }
      net.step_commit(active_ptrs_);
      return;
    }
    const unsigned team = pool_.participants();
    pool_.run([this, &net, team](unsigned slot) {
      // Static slot -> shard assignment: participant p steps active
      // shards p, p + team, ... Shard results live in per-shard
      // contexts, so the assignment (and the team size) cannot affect
      // the outcome.
      for (std::size_t i = slot; i < active_.size(); i += team) {
        const std::size_t s = active_[i];
        net.step_shard(ranges_[s].begin, ranges_[s].end, grid(s, 0));
      }
    });
    for (std::size_t s : active_) active_ptrs_.push_back(&grid(s, 0));
    net.step_commit(active_ptrs_);  // ascending shard order
  }

  /// Nodes with a link into another shard. Only these can produce or
  /// first absorb cross-shard transport; everything else needs at least
  /// one extra link traversal.
  void ensure_cut_map(const core::Network& net) {
    if (!cut_.empty()) return;
    const topo::KAryNCube& topo = net.topology();
    cut_.assign(static_cast<std::size_t>(topo.num_nodes()), 0);
    for (const ShardRange& r : ranges_) {
      for (NodeId n = r.begin; n < r.end; ++n) {
        for (PortId p = 0; p < topo.num_ports(); ++p) {
          const NodeId nb = topo.neighbor(n, p);
          if (nb != kInvalidNode && (nb < r.begin || nb >= r.end)) {
            cut_[n] = 1;
            break;
          }
        }
      }
    }
  }

  /// Longest window provably free of cross-shard interaction, from the
  /// current activity bytes. All bounds are "earliest cycle a cross-shard
  /// ring entry could be due, minus now": a busy cut router can move a
  /// flit this cycle whose upstream credit is due next cycle (window 1);
  /// a quiet cut node woken by a flit due at d first traverses its
  /// switch at d + 2, so its earliest cross effect (that flit's credit)
  /// is due d + 3; NI injections return no credits, so a pending
  /// injection's earliest cross effect is a flit due at +2 + link
  /// latency; interior activity needs a link traversal (+latency) before
  /// a quiet cut node even wakes. Entries committed at the barrier are
  /// pushed before the destination processes the barrier cycle, so a
  /// bound that lands exactly on the window edge is still safe.
  Cycle plan_window(const core::Network& net, Cycle remaining) {
    if (!net.window_ready()) return 1;
    const wh::Fabric& fab = net.fabric();
    const Cycle t = net.now();
    const Cycle lat = fab.link_latency();
    Cycle w = std::min<Cycle>(lookahead_, remaining);
    // Fault events mutate the sequential planes in step_begin, so the next
    // one needs a barrier at its cycle (step_begin at t already applied
    // events due <= t, hence next_fault > t).
    const Cycle next_fault = net.next_fault_event();
    if (next_fault != std::numeric_limits<Cycle>::max()) {
      w = std::min(w, next_fault - t);
    }
    const Cycle first_send = net.next_scheduled_send();
    if (first_send != std::numeric_limits<Cycle>::max()) {
      // step_begin already offered sends due this cycle, so
      // first_send > t. Early-offered flits first traverse a switch at
      // their cycle + 2; without early offering the send itself needs a
      // barrier at its cycle.
      w = std::min(w, net.early_send_ok() ? first_send - t + 2 + lat
                                          : first_send - t);
    }
    if (w <= 1) return 1;
    bool interior_busy = false;
    const NodeId n_nodes = static_cast<NodeId>(cut_.size());
    for (NodeId n = 0; n < n_nodes; ++n) {
      const std::uint8_t busy = fab.node_busy(n);
      if (busy == 0) continue;
      if (cut_[n] == 0) {
        interior_busy = true;
        continue;
      }
      if ((busy & wh::kNodeBusyRouter) != 0) return 1;
      if ((busy & wh::kNodeBusyNi) != 0) w = std::min(w, lat + 2);
      if ((busy & wh::kNodeBusyInbox) != 0) {
        const Cycle d = fab.earliest_flit_due(n);
        // A queued credit alone cannot wake a quiet router, so only
        // flit arrivals bound the window.
        if (d != wh::kNoDueFlit) w = std::min(w, d - t + 3);
      }
      if (w <= 1) return 1;
    }
    if (interior_busy) w = std::min(w, lat + 3);
    return std::max<Cycle>(w, 1);
  }

  void run_window(core::Network& net, Cycle w) {
    const Cycle t = net.now();
    const unsigned team = pool_.participants();
    pool_.run([this, &net, t, w, team](unsigned slot) {
      for (std::size_t s = slot; s < ranges_.size(); s += team) {
        const ShardRange r = ranges_[s];
        for (Cycle j = 0; j < w; ++j) {
          // Local cycles beyond the first reset this shard's gate
          // channels and absorb its own previous cycle's transport
          // (cross-shard entries stay staged for the barrier).
          if (j > 0) net.window_advance_local(r.begin, r.end, grid(s, j - 1));
          net.step_window_shard(r.begin, r.end, grid(s, j), t + j);
        }
      }
    });
    window_ptrs_.clear();
    for (Cycle j = 0; j < w; ++j) {
      for (std::size_t s = 0; s < ranges_.size(); ++s) {
        window_ptrs_.push_back(&grid(s, j));
      }
    }
    net.step_commit_window(window_ptrs_, w);
  }

  Cycle lookahead_;
  std::vector<ShardRange> ranges_;
  /// (shard, local cycle) context grid, shard-major; plain per-cycle
  /// steps use column 0.
  std::vector<core::ShardContext> contexts_;
  std::vector<core::ShardContext*> context_ptrs_;
  std::vector<core::ShardContext*> window_ptrs_;
  std::vector<core::ShardContext*> active_ptrs_;
  std::vector<std::size_t> active_;
  std::vector<std::uint8_t> cut_;
  WindowStats stats_;
  CyclePool pool_;
};

}  // namespace

std::unique_ptr<core::StepEngine> make_engine(const EngineConfig& config,
                                              std::int32_t num_nodes) {
  if (config.lookahead < 1) {
    throw std::invalid_argument("make_engine: lookahead must be >= 1");
  }
  if (!config.parallel()) {
    if (config.lookahead > 1) {
      throw std::invalid_argument(
          "make_engine: lookahead requires the parallel engine");
    }
    return std::make_unique<SequentialEngine>();
  }
  return std::make_unique<ParallelEngine>(num_nodes,
                                          config.resolve_shards(num_nodes),
                                          config.threads, config.lookahead);
}

}  // namespace wavesim::engine
