#include "engine/engine.hpp"

#include <algorithm>
#include <vector>

#include "core/network.hpp"
#include "engine/partition.hpp"
#include "engine/pool.hpp"

namespace wavesim::engine {

const char* to_string(EngineKind kind) noexcept {
  switch (kind) {
    case EngineKind::kSeq:
      return "seq";
    case EngineKind::kPar:
      return "par";
  }
  return "?";
}

std::optional<EngineKind> parse_engine_kind(const std::string& text) {
  if (text == "seq") return EngineKind::kSeq;
  if (text == "par") return EngineKind::kPar;
  return std::nullopt;
}

std::int32_t EngineConfig::resolve_shards(std::int32_t num_nodes) const {
  const std::int32_t requested =
      shards > 0 ? shards
                 : static_cast<std::int32_t>(resolve_engine_threads(0));
  return clamp_shards(requested, num_nodes);
}

sim::JsonValue EngineConfig::to_json(std::int32_t num_nodes) const {
  sim::JsonValue v = sim::JsonValue::object();
  v.set("kind", to_string(kind));
  if (parallel()) {
    v.set("shards", num_nodes > 0 ? resolve_shards(num_nodes) : shards);
  }
  return v;
}

namespace {

class SequentialEngine final : public core::StepEngine {
 public:
  void step(core::Network& net) override { net.step(); }
  const char* name() const noexcept override { return "seq"; }
};

class ParallelEngine final : public core::StepEngine {
 public:
  ParallelEngine(std::int32_t num_nodes, std::int32_t shards,
                 unsigned threads)
      : ranges_(partition_nodes(num_nodes, shards)),
        contexts_(ranges_.size()),
        pool_(resolve_participants(ranges_.size(), threads)) {
    context_ptrs_.reserve(contexts_.size());
    for (core::ShardContext& ctx : contexts_) context_ptrs_.push_back(&ctx);
  }

  void step(core::Network& net) override {
    net.step_begin();
    const unsigned team = pool_.participants();
    pool_.run([this, &net, team](unsigned slot) {
      // Static slot -> shard assignment: participant p steps shards
      // p, p + team, ... Shard results live in per-shard contexts, so
      // the assignment (and the team size) cannot affect the outcome.
      for (std::size_t s = slot; s < ranges_.size(); s += team) {
        net.step_shard(ranges_[s].begin, ranges_[s].end, contexts_[s]);
      }
    });
    net.step_commit(context_ptrs_);  // ascending shard order
  }

  const char* name() const noexcept override { return "par"; }

 private:
  static unsigned resolve_participants(std::size_t shards, unsigned threads) {
    const unsigned hw = resolve_engine_threads(threads);
    return std::max(1u, std::min(hw, static_cast<unsigned>(shards)));
  }

  std::vector<ShardRange> ranges_;
  std::vector<core::ShardContext> contexts_;
  std::vector<core::ShardContext*> context_ptrs_;
  CyclePool pool_;
};

}  // namespace

std::unique_ptr<core::StepEngine> make_engine(const EngineConfig& config,
                                              std::int32_t num_nodes) {
  if (!config.parallel()) return std::make_unique<SequentialEngine>();
  return std::make_unique<ParallelEngine>(
      num_nodes, config.resolve_shards(num_nodes), config.threads);
}

}  // namespace wavesim::engine
