// Node partitioning for the sharded engine: contiguous, balanced,
// ascending node-id ranges. Contiguity is what makes the deterministic
// merge trivial — concatenating shard outboxes in shard order reproduces
// the push order of a sequential sweep over node ids — and on the
// row-major k-ary n-cube node numbering it also keeps most links
// shard-internal (a shard is a band of consecutive rows).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/types.hpp"

namespace wavesim::engine {

struct ShardRange {
  NodeId begin = 0;  ///< first node id (inclusive)
  NodeId end = 0;    ///< one past the last node id

  std::int32_t size() const noexcept { return end - begin; }
  bool operator==(const ShardRange&) const = default;
};

/// Clamp a requested shard count to [1, num_nodes] (0 and negative mean
/// "one shard"; more shards than nodes would leave empty shards).
std::int32_t clamp_shards(std::int32_t requested,
                          std::int32_t num_nodes) noexcept;

/// Split [0, num_nodes) into `shards` contiguous ranges whose sizes differ
/// by at most one (the first num_nodes % shards ranges get the extra
/// node). `shards` is clamped first; the result is never empty and covers
/// every node exactly once, in ascending order.
std::vector<ShardRange> partition_nodes(std::int32_t num_nodes,
                                        std::int32_t shards);

/// Which shard of partition_nodes(num_nodes, shards) owns `node`.
std::int32_t shard_of(NodeId node, std::int32_t num_nodes,
                      std::int32_t shards) noexcept;

}  // namespace wavesim::engine
