// Job records and slice execution for wavesimd.
//
// A job is persisted as a wavesim.jobfile.v1 document in the daemon's
// state directory and advanced in bounded slices. Run jobs lean on
// snap::CheckpointableRun: every slice restores the job's checkpoint,
// advances at most slice_cycles, and checkpoints again. Preemption and
// crash recovery are therefore the same mechanism -- whether the worker
// moved on to another tenant's job or the whole daemon was killed, the
// next slice starts from the same wavesim.snap.v1 file, and the finished
// result is bit-identical to an uninterrupted run (tests/test_snap.cpp
// proves the underlying round trip).
//
// Sweep jobs exploit warm starting: all points share the spec's warm
// prefix (snap::warm_key), so the warmup is simulated once, checkpointed
// at the warmup/measure boundary, and every point restores + rebinds
// from that boundary. Simcheck jobs wrap check::run_simcheck.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "sim/json.hpp"
#include "sim/types.hpp"

namespace wavesim::service {

enum class JobState : std::uint8_t {
  kQueued = 0,
  kRunning = 1,
  kDone = 2,
  kFailed = 3,
  kCancelled = 4,
};

const char* to_string(JobState state) noexcept;
JobState job_state_from_string(const std::string& text);

struct Job {
  std::string id;
  std::string tenant = "default";
  double weight = 1.0;
  std::string kind;     ///< run | sweep | simcheck
  sim::JsonValue spec;  ///< job-kind specific payload (see docs/SERVICE.md)
  JobState state = JobState::kQueued;
  Cycle cycle = 0;           ///< simulation progress (run jobs)
  std::uint64_t slices = 0;  ///< scheduling quanta consumed
  std::uint64_t completion_seq = 0;  ///< daemon-wide finish order, 1-based
  std::string error;
  bool cancel_requested = false;
};

/// wavesim.jobfile.v1 round trip (what the state directory stores).
sim::JsonValue job_to_json(const Job& job);
Job job_from_json(const sim::JsonValue& value);

struct SliceOutcome {
  bool done = false;
  bool failed = false;
  double cost = 0.0;  ///< simulation cycles consumed (WFQ charge)
  std::string error;
};

class JobRunner {
 public:
  JobRunner(std::string state_dir, Cycle slice_cycles)
      : state_dir_(std::move(state_dir)), slice_cycles_(slice_cycles) {}

  /// Execute one scheduling quantum of `job`, updating its progress
  /// fields. Run jobs advance at most slice_cycles then checkpoint;
  /// sweep jobs run point-to-point (checking `cancelled` between
  /// points); simcheck jobs run to completion. On done, the result
  /// document is written to result_path(job.id); the checkpoint file is
  /// removed. Never throws: failures come back in the outcome.
  SliceOutcome step(Job& job, const std::function<bool()>& cancelled);

  std::string checkpoint_path(const std::string& id) const;
  std::string result_path(const std::string& id) const;

 private:
  SliceOutcome step_run(Job& job);
  SliceOutcome step_sweep(Job& job, const std::function<bool()>& cancelled);
  SliceOutcome step_simcheck(Job& job);

  const std::string state_dir_;
  const Cycle slice_cycles_;
};

}  // namespace wavesim::service
