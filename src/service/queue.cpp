#include "service/queue.hpp"

#include <algorithm>

namespace wavesim::service {

const std::string* FairQueue::min_active_tenant() const {
  const std::string* best = nullptr;
  double best_vtime = 0.0;
  for (const auto& [name, tenant] : tenants_) {
    if (tenant.fifo.empty()) continue;
    if (best == nullptr || tenant.vtime < best_vtime) {
      best = &name;
      best_vtime = tenant.vtime;
    }
  }
  return best;
}

bool FairQueue::push(const std::string& job_id, const std::string& tenant,
                     double weight, std::int64_t& retry_after_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  if (queued_ >= capacity_) {
    // Rough heuristic: a slot frees up when the head job finishes a
    // slice; scale the hint with the backlog so retries spread out.
    retry_after_ms =
        std::max<std::int64_t>(100, static_cast<std::int64_t>(queued_) * 100);
    return false;
  }
  Tenant& t = tenants_[tenant];
  if (t.fifo.empty()) t.vtime = std::max(t.vtime, vclock_);
  t.weight = std::max(weight, 1e-6);
  t.fifo.push_back(job_id);
  ++queued_;
  cv_.notify_one();
  return true;
}

void FairQueue::requeue(const std::string& job_id, const std::string& tenant,
                        double weight) {
  std::lock_guard<std::mutex> lock(mu_);
  Tenant& t = tenants_[tenant];
  if (t.fifo.empty()) t.vtime = std::max(t.vtime, vclock_);
  t.weight = std::max(weight, 1e-6);
  t.fifo.push_back(job_id);
  ++queued_;
  cv_.notify_one();
}

bool FairQueue::pop(std::string& job_id, std::string& tenant) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return stopped_ || queued_ > 0; });
  if (stopped_) return false;
  const std::string* name = min_active_tenant();
  Tenant& t = tenants_[*name];
  tenant = *name;
  job_id = t.fifo.front();
  t.fifo.pop_front();
  --queued_;
  vclock_ = std::max(vclock_, t.vtime);
  return true;
}

void FairQueue::charge(const std::string& tenant, double cost) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return;
  it->second.vtime += cost / it->second.weight;
}

bool FairQueue::remove(const std::string& job_id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, tenant] : tenants_) {
    (void)name;
    const auto it =
        std::find(tenant.fifo.begin(), tenant.fifo.end(), job_id);
    if (it != tenant.fifo.end()) {
      tenant.fifo.erase(it);
      --queued_;
      return true;
    }
  }
  return false;
}

std::size_t FairQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_;
}

void FairQueue::stop() {
  std::lock_guard<std::mutex> lock(mu_);
  stopped_ = true;
  cv_.notify_all();
}

sim::JsonValue FairQueue::stats_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  sim::JsonValue tenants = sim::JsonValue::array();
  for (const auto& [name, tenant] : tenants_) {
    tenants.push_back(sim::JsonValue::object()
                          .set("tenant", name)
                          .set("queued", tenant.fifo.size())
                          .set("weight", tenant.weight)
                          .set("vtime", tenant.vtime));
  }
  return sim::JsonValue::object()
      .set("depth", queued_)
      .set("tenants", std::move(tenants));
}

}  // namespace wavesim::service
