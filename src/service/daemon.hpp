// wavesimd -- the long-running simulation service.
//
// One daemon owns a local AF_UNIX socket (wavesim.job.v1, one request
// per connection), a persistent state directory, a weighted-fair job
// queue and a pool of worker threads. Run jobs execute in bounded
// checkpoint slices (service/jobs.hpp), so a long job never monopolizes
// a worker: after each slice it re-enters the queue and WFQ picks the
// most underserved tenant. Because every slice boundary is a durable
// wavesim.snap.v1 checkpoint, `kill -9` of the daemon loses at most one
// slice of work: on restart the state directory is scanned, unfinished
// jobs re-enter the queue, and their eventual result files are
// byte-identical to an uninterrupted run (CI's service-smoke proves it).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/jobs.hpp"
#include "service/queue.hpp"
#include "sim/json.hpp"

namespace wavesim::service {

struct DaemonOptions {
  std::string socket_path;
  std::string state_dir;
  int workers = 2;
  std::size_t queue_cap = 64;       ///< admission bound (backpressure past it)
  Cycle slice_cycles = 25'000;      ///< run-job preemption quantum
  int request_timeout_ms = 5'000;   ///< per-connection read deadline
};

class Daemon {
 public:
  explicit Daemon(const DaemonOptions& opt);

  /// Recover persisted jobs, bind the socket and serve until a shutdown
  /// request. Returns 0 on clean shutdown, 2 on a startup failure
  /// (unusable socket path or state directory).
  int run();

 private:
  sim::JsonValue handle(const sim::JsonValue& request);
  sim::JsonValue handle_submit(const sim::JsonValue& request);
  sim::JsonValue handle_status(const sim::JsonValue& request);
  sim::JsonValue handle_result(const sim::JsonValue& request);
  sim::JsonValue handle_cancel(const sim::JsonValue& request);
  sim::JsonValue handle_stats();

  void worker_loop();
  void recover();
  void persist(const Job& job);  // callers hold mu_

  DaemonOptions opt_;
  FairQueue queue_;
  JobRunner runner_;
  mutable std::mutex mu_;
  std::map<std::string, Job> jobs_;
  std::uint64_t next_id_ = 1;
  std::uint64_t next_completion_ = 1;
  std::atomic<bool> stopping_{false};
  std::vector<std::thread> workers_;
  int listen_fd_ = -1;
};

}  // namespace wavesim::service
