#include "service/daemon.hpp"

#include <dirent.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "service/proto.hpp"

namespace wavesim::service {

namespace {

/// Numeric suffix of "job-N" ids (0 when malformed).
std::uint64_t job_number(const std::string& id) {
  if (id.rfind("job-", 0) != 0) return 0;
  return std::strtoull(id.c_str() + 4, nullptr, 10);
}

}  // namespace

Daemon::Daemon(const DaemonOptions& opt)
    : opt_(opt), queue_(opt.queue_cap),
      runner_(opt.state_dir, opt.slice_cycles) {}

void Daemon::persist(const Job& job) {
  if (!sim::write_json_file(job_to_json(job),
                            opt_.state_dir + "/" + job.id + ".json")) {
    std::fprintf(stderr, "wavesimd: cannot persist %s\n", job.id.c_str());
  }
}

void Daemon::recover() {
  DIR* dir = ::opendir(opt_.state_dir.c_str());
  if (dir == nullptr) return;
  std::vector<std::string> pending;
  while (struct dirent* entry = ::readdir(dir)) {
    const std::string name = entry->d_name;
    // Job records are job-N.json; results are result-job-N.json and
    // checkpoints job-N.ckpt, neither of which parses as a job file.
    if (name.rfind("job-", 0) != 0) continue;
    if (name.size() < 5 || name.substr(name.size() - 5) != ".json") continue;
    try {
      Job job = job_from_json(
          sim::read_json_file(opt_.state_dir + "/" + name));
      next_id_ = std::max(next_id_, job_number(job.id) + 1);
      next_completion_ = std::max(next_completion_, job.completion_seq + 1);
      if (job.state == JobState::kRunning) {
        // The previous daemon died mid-slice; the checkpoint from the
        // last completed slice (or a fresh start) reproduces the run.
        job.state = JobState::kQueued;
      }
      if (job.state == JobState::kQueued && job.cancel_requested) {
        job.state = JobState::kCancelled;
        job.completion_seq = next_completion_++;
      }
      if (job.state == JobState::kQueued) pending.push_back(job.id);
      persist(job);
      jobs_[job.id] = std::move(job);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "wavesimd: skipping %s: %s\n", name.c_str(),
                   e.what());
    }
  }
  ::closedir(dir);
  // Submission order: recovered jobs re-enter the queue oldest first,
  // via requeue() -- they were admitted once, the cap does not re-apply.
  std::sort(pending.begin(), pending.end(),
            [](const std::string& a, const std::string& b) {
              return job_number(a) < job_number(b);
            });
  for (const std::string& id : pending) {
    const Job& job = jobs_[id];
    queue_.requeue(id, job.tenant, job.weight);
  }
  if (!pending.empty()) {
    std::fprintf(stderr, "wavesimd: recovered %zu unfinished job(s)\n",
                 pending.size());
  }
}

sim::JsonValue Daemon::handle_submit(const sim::JsonValue& request) {
  const sim::JsonValue* kind_field = request.find("kind");
  const sim::JsonValue* spec = request.find("spec");
  if (kind_field == nullptr || spec == nullptr) {
    return error_response("submit needs 'kind' and 'spec'");
  }
  const std::string kind = kind_field->as_string();
  std::string tenant = "default";
  double weight = 1.0;
  if (const sim::JsonValue* t = request.find("tenant")) {
    tenant = t->as_string();
  }
  if (const sim::JsonValue* w = request.find("weight")) {
    weight = w->as_number();
  }
  if (!(weight > 0.0)) return error_response("weight must be > 0");

  // Validate up front so a bad spec is refused at submit, not queued to
  // fail later. runspec_from_json throws with the offending field named.
  if (kind == "run") {
    runspec_from_json(*spec);
  } else if (kind == "sweep") {
    const sim::JsonValue* base = spec->find("base");
    const sim::JsonValue* measures = spec->find("measures");
    if (base == nullptr || measures == nullptr || !measures->is_array() ||
        measures->size() == 0) {
      return error_response(
          "sweep spec needs 'base' (run spec) and 'measures' (array)");
    }
    runspec_from_json(*base);
  } else if (kind == "simcheck") {
    if (const sim::JsonValue* c = spec->find("count")) {
      if (c->as_int() < 1) return error_response("count must be >= 1");
    }
  } else {
    return error_response("kind must be run | sweep | simcheck");
  }

  std::lock_guard<std::mutex> lock(mu_);
  // Admission control counts every unfinished job -- queued AND mid-run.
  // A job in a slice is not "space in the queue": it comes straight
  // back, so admitting past the cap would grow the backlog unboundedly.
  std::size_t unfinished = 0;
  for (const auto& [jid, job] : jobs_) {
    (void)jid;
    if (job.state == JobState::kQueued || job.state == JobState::kRunning) {
      ++unfinished;
    }
  }
  if (unfinished >= opt_.queue_cap) {
    return busy_response(
        "queue full",
        std::max<std::int64_t>(100,
                               static_cast<std::int64_t>(unfinished) * 100));
  }
  const std::string id = "job-" + std::to_string(next_id_);
  std::int64_t retry_after_ms = 0;
  if (!queue_.push(id, tenant, weight, retry_after_ms)) {
    return busy_response("queue full", retry_after_ms);
  }
  ++next_id_;
  Job job;
  job.id = id;
  job.tenant = tenant;
  job.weight = weight;
  job.kind = kind;
  job.spec = *spec;
  jobs_[id] = job;
  persist(job);
  return ok_response().set("id", id).set("state", to_string(job.state));
}

sim::JsonValue Daemon::handle_status(const sim::JsonValue& request) {
  const std::string id = request.at("id").as_string();
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return error_response("no such job " + id);
  const Job& job = it->second;
  sim::JsonValue out = ok_response()
                           .set("id", job.id)
                           .set("kind", job.kind)
                           .set("state", to_string(job.state))
                           .set("cycle", job.cycle)
                           .set("slices", job.slices)
                           .set("completion_seq", job.completion_seq);
  if (!job.error.empty()) out.set("error_detail", job.error);
  return out;
}

sim::JsonValue Daemon::handle_result(const sim::JsonValue& request) {
  const std::string id = request.at("id").as_string();
  std::string path;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) return error_response("no such job " + id);
    const Job& job = it->second;
    if (job.state == JobState::kFailed) {
      return error_response("job failed: " + job.error);
    }
    if (job.state == JobState::kCancelled) {
      return error_response("job cancelled");
    }
    if (job.state != JobState::kDone) {
      return error_response("job not finished")
          .set("state", to_string(job.state));
    }
    path = runner_.result_path(id);
  }
  try {
    return ok_response().set("id", id).set("result",
                                           sim::read_json_file(path));
  } catch (const std::exception& e) {
    return error_response(e.what());
  }
}

sim::JsonValue Daemon::handle_cancel(const sim::JsonValue& request) {
  const std::string id = request.at("id").as_string();
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return error_response("no such job " + id);
  Job& job = it->second;
  if (job.state == JobState::kQueued || job.state == JobState::kRunning) {
    job.cancel_requested = true;
    if (job.state == JobState::kQueued && queue_.remove(id)) {
      job.state = JobState::kCancelled;
      job.completion_seq = next_completion_++;
      std::remove(runner_.checkpoint_path(id).c_str());
    }
    // A running job cancels cooperatively at its next slice boundary.
    persist(job);
  }
  return ok_response().set("id", id).set("state", to_string(job.state));
}

sim::JsonValue Daemon::handle_stats() {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t queued = 0, running = 0, done = 0, failed = 0, cancelled = 0;
  std::vector<const Job*> finished;
  for (const auto& [id, job] : jobs_) {
    (void)id;
    switch (job.state) {
      case JobState::kQueued: ++queued; break;
      case JobState::kRunning: ++running; break;
      case JobState::kDone: ++done; break;
      case JobState::kFailed: ++failed; break;
      case JobState::kCancelled: ++cancelled; break;
    }
    if (job.completion_seq > 0) finished.push_back(&job);
  }
  std::sort(finished.begin(), finished.end(),
            [](const Job* a, const Job* b) {
              return a->completion_seq < b->completion_seq;
            });
  sim::JsonValue completions = sim::JsonValue::array();
  for (const Job* job : finished) {
    completions.push_back(sim::JsonValue::object()
                              .set("id", job->id)
                              .set("tenant", job->tenant)
                              .set("state", to_string(job->state))
                              .set("completion_seq", job->completion_seq));
  }
  return ok_response()
      .set("jobs", sim::JsonValue::object()
                       .set("queued", queued)
                       .set("running", running)
                       .set("done", done)
                       .set("failed", failed)
                       .set("cancelled", cancelled))
      .set("queue", queue_.stats_json())
      .set("completions", std::move(completions));
}

sim::JsonValue Daemon::handle(const sim::JsonValue& request) {
  try {
    const std::string op = request.at("op").as_string();
    if (op == "submit") return handle_submit(request);
    if (op == "status") return handle_status(request);
    if (op == "result") return handle_result(request);
    if (op == "cancel") return handle_cancel(request);
    if (op == "stats") return handle_stats();
    if (op == "shutdown") {
      stopping_.store(true);
      queue_.stop();
      return ok_response().set("stopping", true);
    }
    return error_response("unknown op '" + op + "'");
  } catch (const std::exception& e) {
    return error_response(e.what());
  }
}

void Daemon::worker_loop() {
  std::string id, tenant;
  while (queue_.pop(id, tenant)) {
    Job working;
    {
      std::lock_guard<std::mutex> lock(mu_);
      const auto it = jobs_.find(id);
      if (it == jobs_.end()) continue;
      Job& job = it->second;
      if (job.cancel_requested) {
        job.state = JobState::kCancelled;
        job.completion_seq = next_completion_++;
        std::remove(runner_.checkpoint_path(id).c_str());
        persist(job);
        continue;
      }
      job.state = JobState::kRunning;
      persist(job);
      working = job;
    }
    const auto cancelled = [this, &id] {
      if (stopping_.load()) return true;
      std::lock_guard<std::mutex> lock(mu_);
      const auto it = jobs_.find(id);
      return it == jobs_.end() || it->second.cancel_requested;
    };
    const SliceOutcome outcome = runner_.step(working, cancelled);
    queue_.charge(tenant, outcome.cost);
    {
      std::lock_guard<std::mutex> lock(mu_);
      const auto it = jobs_.find(id);
      if (it == jobs_.end()) continue;
      Job& job = it->second;
      job.cycle = working.cycle;
      job.slices = working.slices;
      if (outcome.failed) {
        job.state = JobState::kFailed;
        job.error = outcome.error;
        job.completion_seq = next_completion_++;
      } else if (outcome.done) {
        job.state = JobState::kDone;
        job.completion_seq = next_completion_++;
      } else if (job.cancel_requested) {
        job.state = JobState::kCancelled;
        job.completion_seq = next_completion_++;
        std::remove(runner_.checkpoint_path(id).c_str());
      } else {
        // Preempted at the slice boundary: back of the tenant's line.
        // (After a shutdown request nobody pops it again; the persisted
        // queued state is what the next daemon recovers.)
        job.state = JobState::kQueued;
        queue_.requeue(id, tenant, job.weight);
      }
      persist(job);
    }
  }
}

int Daemon::run() {
  struct stat st;
  if (::stat(opt_.state_dir.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
    std::fprintf(stderr, "wavesimd: state dir %s is not a directory\n",
                 opt_.state_dir.c_str());
    return 2;
  }
  struct sockaddr_un addr;
  std::memset(&addr, 0, sizeof addr);
  addr.sun_family = AF_UNIX;
  if (opt_.socket_path.size() >= sizeof addr.sun_path) {
    std::fprintf(stderr, "wavesimd: socket path too long: %s\n",
                 opt_.socket_path.c_str());
    return 2;
  }
  std::memcpy(addr.sun_path, opt_.socket_path.c_str(),
              opt_.socket_path.size() + 1);

  recover();

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    std::perror("wavesimd: socket");
    return 2;
  }
  ::unlink(opt_.socket_path.c_str());  // stale socket from a dead daemon
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    std::perror("wavesimd: bind/listen");
    ::close(listen_fd_);
    return 2;
  }

  for (int i = 0; i < std::max(1, opt_.workers); ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  std::fprintf(stderr, "wavesimd: serving on %s (%d worker(s))\n",
               opt_.socket_path.c_str(), std::max(1, opt_.workers));

  while (!stopping_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;
    }
    std::string line;
    if (read_line(fd, line, opt_.request_timeout_ms)) {
      sim::JsonValue response;
      try {
        response = handle(sim::JsonValue::parse(line));
      } catch (const std::exception& e) {
        response = error_response(e.what());
      }
      write_line(fd, response.dump());
    }
    ::close(fd);
  }

  ::close(listen_fd_);
  ::unlink(opt_.socket_path.c_str());
  queue_.stop();
  for (std::thread& worker : workers_) worker.join();
  std::fprintf(stderr, "wavesimd: clean shutdown\n");
  return 0;
}

}  // namespace wavesim::service
