// wavesim.job.v1 -- the wire protocol wavesimd speaks.
//
// Transport: line-delimited JSON over a local AF_UNIX stream socket,
// one request and one response per connection. Every response carries
// "ok"; failures add "error" (and "retry_after_ms" when the request
// should be retried later, e.g. queue-full backpressure).
//
// Requests:
//   {"op":"submit","kind":"run","spec":{...},"tenant":"a","weight":2}
//   {"op":"status","id":"job-1"}     {"op":"result","id":"job-1"}
//   {"op":"cancel","id":"job-1"}     {"op":"stats"}   {"op":"shutdown"}
//
// Run specs use the same vocabulary as wavesim_cli's flags (topo, mesh,
// protocol, routing, pattern, load, length, warmup, measure, seed, ...),
// so a job is a CLI invocation by construction: the service and the CLI
// produce the same run for the same spec (docs/SERVICE.md).
#pragma once

#include <cstdint>
#include <string>

#include "sim/json.hpp"
#include "snap/runstate.hpp"

namespace wavesim::service {

/// Canonical JSON form of a run spec (fixed field order, every field
/// present). runspec_from_json(runspec_to_json(s)) reproduces s for all
/// fields the schema covers; result files echo this canonical form so
/// resumed jobs emit byte-identical results.
sim::JsonValue runspec_to_json(const snap::RunSpec& spec);

/// Parse a wavesim.job.v1 run spec. Strict: an unknown key, a bad enum
/// value or an invalid configuration throws std::runtime_error naming
/// the offending field (the daemon maps that to an error response).
snap::RunSpec runspec_from_json(const sim::JsonValue& value);

sim::JsonValue ok_response();
sim::JsonValue error_response(const std::string& message);
/// Backpressure: the request was well-formed but the daemon is full.
sim::JsonValue busy_response(const std::string& message,
                             std::int64_t retry_after_ms);

/// Read one '\n'-terminated line from `fd` (the newline is stripped).
/// False on EOF before any byte, timeout, or an over-long line.
bool read_line(int fd, std::string& line, int timeout_ms);

/// Write `line` plus a trailing newline; false on any short write.
bool write_line(int fd, const std::string& line);

}  // namespace wavesim::service
