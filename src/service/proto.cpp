#include "service/proto.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <set>
#include <stdexcept>

namespace wavesim::service {

namespace {

std::string format_radices(const std::vector<std::int32_t>& radix) {
  std::string out;
  for (std::size_t i = 0; i < radix.size(); ++i) {
    if (i > 0) out += 'x';
    out += std::to_string(radix[i]);
  }
  return out;
}

std::vector<std::int32_t> parse_radices(const std::string& spec) {
  std::vector<std::int32_t> radix;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t next = spec.find('x', pos);
    radix.push_back(std::atoi(spec.substr(pos, next - pos).c_str()));
    if (next == std::string::npos) break;
    pos = next + 1;
  }
  return radix;
}

[[noreturn]] void bad_field(const std::string& key, const char* what) {
  throw std::runtime_error("spec field '" + key + "': " + what);
}

const sim::JsonValue* get(const sim::JsonValue& obj, const std::string& key) {
  return obj.find(key);
}

std::int64_t get_int(const sim::JsonValue& obj, const std::string& key,
                     std::int64_t fallback) {
  const sim::JsonValue* v = get(obj, key);
  if (v == nullptr) return fallback;
  if (!v->is_number()) bad_field(key, "expected a number");
  return v->as_int();
}

double get_double(const sim::JsonValue& obj, const std::string& key,
                  double fallback) {
  const sim::JsonValue* v = get(obj, key);
  if (v == nullptr) return fallback;
  if (!v->is_number()) bad_field(key, "expected a number");
  return v->as_number();
}

bool get_bool(const sim::JsonValue& obj, const std::string& key,
              bool fallback) {
  const sim::JsonValue* v = get(obj, key);
  if (v == nullptr) return fallback;
  if (!v->is_bool()) bad_field(key, "expected a bool");
  return v->as_bool();
}

std::string get_string(const sim::JsonValue& obj, const std::string& key,
                       const std::string& fallback) {
  const sim::JsonValue* v = get(obj, key);
  if (v == nullptr) return fallback;
  if (!v->is_string()) bad_field(key, "expected a string");
  return v->as_string();
}

}  // namespace

sim::JsonValue runspec_to_json(const snap::RunSpec& spec) {
  const sim::SimConfig& cfg = spec.config;
  sim::JsonValue doc =
      sim::JsonValue::object()
          .set("topo", format_radices(cfg.topology.radix))
          .set("mesh", !cfg.topology.torus)
          .set("protocol", sim::to_string(cfg.protocol.protocol))
          .set("routing", sim::to_string(cfg.router.routing))
          .set("pattern", spec.pattern)
          .set("vcs", cfg.router.wormhole_vcs)
          .set("k", cfg.router.wave_switches)
          .set("m", cfg.protocol.max_misroutes)
          .set("cache", cfg.protocol.circuit_cache_entries)
          .set("replacement", sim::to_string(cfg.protocol.replacement))
          .set("pcs_only", cfg.protocol.pcs_only)
          .set("virtual", cfg.router.virtual_circuits)
          .set("max_packet", cfg.protocol.max_packet_flits)
          .set("fault_rate", cfg.faults.link_fault_rate)
          .set("load", spec.offered_load)
          .set("length", spec.message_flits)
          .set("warmup", spec.warmup)
          .set("measure", spec.measure)
          .set("drain_cap", spec.drain_cap)
          .set("seed", spec.seed);
  // The storm block is the dynamic-fault subset jobs can request; full
  // wavesim.faults.v1 schedules stay a CLI feature (--faults FILE).
  if (cfg.faults.storm.at > 0) {
    doc.set("storm_at", cfg.faults.storm.at)
        .set("storm_fraction", cfg.faults.storm.fraction)
        .set("storm_repair_after", cfg.faults.storm.repair_after);
  }
  return doc;
}

snap::RunSpec runspec_from_json(const sim::JsonValue& value) {
  if (!value.is_object()) throw std::runtime_error("spec must be an object");
  static const std::set<std::string> kKnown = {
      "topo", "mesh", "protocol", "routing", "pattern", "vcs", "k", "m",
      "cache", "replacement", "pcs_only", "virtual", "max_packet",
      "fault_rate", "load", "length", "warmup", "measure", "drain_cap",
      "seed", "storm_at", "storm_fraction", "storm_repair_after"};
  for (const auto& [key, member] : value.members()) {
    (void)member;
    if (kKnown.count(key) == 0) {
      throw std::runtime_error("unknown spec field '" + key + "'");
    }
  }

  snap::RunSpec spec;
  sim::SimConfig& cfg = spec.config;
  cfg.topology.radix = parse_radices(get_string(value, "topo", "8x8"));
  cfg.topology.torus = !get_bool(value, "mesh", false);

  const std::string protocol = get_string(value, "protocol", "clrp");
  if (protocol == "wormhole") {
    cfg.protocol.protocol = sim::ProtocolKind::kWormholeOnly;
  } else if (protocol == "clrp") {
    cfg.protocol.protocol = sim::ProtocolKind::kClrp;
  } else if (protocol == "carp") {
    cfg.protocol.protocol = sim::ProtocolKind::kCarp;
  } else {
    bad_field("protocol", "expected wormhole | clrp | carp");
  }

  const std::string routing = get_string(value, "routing", "dor");
  if (routing == "dor") {
    cfg.router.routing = sim::RoutingKind::kDimensionOrder;
  } else if (routing == "duato") {
    cfg.router.routing = sim::RoutingKind::kDuatoAdaptive;
  } else if (routing == "west-first") {
    cfg.router.routing = sim::RoutingKind::kWestFirst;
  } else if (routing == "negative-first") {
    cfg.router.routing = sim::RoutingKind::kNegativeFirst;
  } else {
    bad_field("routing", "expected dor | duato | west-first | negative-first");
  }

  const std::string replacement = get_string(value, "replacement", "lru");
  if (replacement == "lru") {
    cfg.protocol.replacement = sim::ReplacementPolicy::kLru;
  } else if (replacement == "lfu") {
    cfg.protocol.replacement = sim::ReplacementPolicy::kLfu;
  } else if (replacement == "fifo") {
    cfg.protocol.replacement = sim::ReplacementPolicy::kFifo;
  } else if (replacement == "random") {
    cfg.protocol.replacement = sim::ReplacementPolicy::kRandom;
  } else {
    bad_field("replacement", "expected lru | lfu | fifo | random");
  }

  cfg.router.wormhole_vcs =
      static_cast<std::int32_t>(get_int(value, "vcs", 2));
  const std::int32_t k = static_cast<std::int32_t>(get_int(value, "k", 2));
  cfg.router.wave_switches = protocol == "wormhole" ? 0 : k;
  cfg.protocol.max_misroutes =
      static_cast<std::int32_t>(get_int(value, "m", 2));
  cfg.protocol.circuit_cache_entries =
      static_cast<std::int32_t>(get_int(value, "cache", 8));
  cfg.protocol.pcs_only = get_bool(value, "pcs_only", false);
  cfg.router.virtual_circuits = get_bool(value, "virtual", false);
  cfg.protocol.max_packet_flits =
      static_cast<std::int32_t>(get_int(value, "max_packet", 0));
  cfg.faults.link_fault_rate = get_double(value, "fault_rate", 0.0);

  spec.pattern = get_string(value, "pattern", "uniform");
  spec.offered_load = get_double(value, "load", 0.10);
  spec.message_flits = static_cast<std::int32_t>(get_int(value, "length", 64));
  spec.warmup = static_cast<Cycle>(get_int(value, "warmup", 2000));
  spec.measure = static_cast<Cycle>(get_int(value, "measure", 10000));
  // Same default cap formula as wavesim_cli, so a job without an
  // explicit drain_cap is the run the CLI would execute.
  spec.drain_cap = static_cast<Cycle>(get_int(
      value, "drain_cap",
      static_cast<std::int64_t>(40 * (spec.warmup + spec.measure) +
                                1'000'000)));
  spec.seed = static_cast<std::uint64_t>(get_int(value, "seed", 1));

  const std::int64_t storm_at = get_int(value, "storm_at", 0);
  if (storm_at > 0) {
    cfg.faults.storm.at = static_cast<Cycle>(storm_at);
    cfg.faults.storm.fraction = get_double(value, "storm_fraction", 0.10);
    cfg.faults.storm.repair_after =
        static_cast<Cycle>(get_int(value, "storm_repair_after", 0));
  } else if (get(value, "storm_fraction") != nullptr ||
             get(value, "storm_repair_after") != nullptr) {
    bad_field("storm_fraction", "requires storm_at > 0");
  }

  cfg.validate();  // throws std::invalid_argument on a bad combination
  return spec;
}

sim::JsonValue ok_response() {
  return sim::JsonValue::object().set("ok", true);
}

sim::JsonValue error_response(const std::string& message) {
  return sim::JsonValue::object().set("ok", false).set("error", message);
}

sim::JsonValue busy_response(const std::string& message,
                             std::int64_t retry_after_ms) {
  return error_response(message).set("retry_after_ms", retry_after_ms);
}

bool read_line(int fd, std::string& line, int timeout_ms) {
  // Requests are one line; 1 MiB bounds a hostile or broken client.
  constexpr std::size_t kMaxLine = 1u << 20;
  line.clear();
  char ch = 0;
  while (true) {
    struct pollfd pfd = {fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready <= 0) return false;  // timeout or poll error
    const ssize_t n = ::recv(fd, &ch, 1, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;  // EOF mid-line or hard error
    }
    if (ch == '\n') return true;
    if (line.size() >= kMaxLine) return false;
    line.push_back(ch);
  }
}

bool write_line(int fd, const std::string& line) {
  std::string buffer = line;
  buffer.push_back('\n');
  std::size_t sent = 0;
  while (sent < buffer.size()) {
    // MSG_NOSIGNAL: a client that hung up yields an error return, not
    // SIGPIPE taking the daemon down.
    const ssize_t n = ::send(fd, buffer.data() + sent, buffer.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace wavesim::service
