#include "service/jobs.hpp"

#include <sys/stat.h>

#include <cstdio>
#include <limits>
#include <memory>
#include <stdexcept>

#include "check/scenario.hpp"
#include "check/simcheck.hpp"
#include "harness/sweep.hpp"
#include "service/proto.hpp"
#include "snap/runstate.hpp"
#include "snap/snapshot.hpp"
#include "verify/delivery.hpp"
#include "verify/watchdog.hpp"

namespace wavesim::service {

namespace {

bool file_exists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

/// Result document for a finished run -- the service analogue of the
/// CLI's wavesim.run.v1. Deliberately excludes the job id, tenant and
/// any timestamp: the same spec must yield a byte-identical result file
/// whether the job ran uninterrupted, was preempted between slices, or
/// was resumed by a restarted daemon (CI's service-smoke compares them).
sim::JsonValue run_result_json(snap::CheckpointableRun& run) {
  const load::ExperimentResult& r = run.result();
  const auto check = verify::check_delivery(run.sim().network());
  return sim::JsonValue::object()
      .set("schema", "wavesim.result.v1")
      .set("kind", "run")
      .set("spec", runspec_to_json(run.spec()))
      .set("drained", r.drained)
      .set("invariants_ok", check.ok())
      .set("watchdog_verdict", verify::to_string(r.watchdog_verdict))
      .set("stalled_for", r.max_stalled)
      .set("offered_messages", r.offered_messages)
      .set("cycles_total", r.cycles_total)
      .set("stats", harness::stats_to_json(r.stats));
}

void check_known_keys(const sim::JsonValue& spec,
                      std::initializer_list<const char*> known,
                      const char* kind) {
  for (const auto& [key, member] : spec.members()) {
    (void)member;
    bool ok = false;
    for (const char* k : known) ok = ok || key == k;
    if (!ok) {
      throw std::runtime_error(std::string("unknown ") + kind +
                               " spec field '" + key + "'");
    }
  }
}

}  // namespace

const char* to_string(JobState state) noexcept {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
  }
  return "?";
}

JobState job_state_from_string(const std::string& text) {
  if (text == "queued") return JobState::kQueued;
  if (text == "running") return JobState::kRunning;
  if (text == "done") return JobState::kDone;
  if (text == "failed") return JobState::kFailed;
  if (text == "cancelled") return JobState::kCancelled;
  throw std::runtime_error("bad job state '" + text + "'");
}

sim::JsonValue job_to_json(const Job& job) {
  return sim::JsonValue::object()
      .set("schema", "wavesim.jobfile.v1")
      .set("id", job.id)
      .set("tenant", job.tenant)
      .set("weight", job.weight)
      .set("kind", job.kind)
      .set("spec", job.spec)
      .set("state", to_string(job.state))
      .set("cycle", job.cycle)
      .set("slices", job.slices)
      .set("completion_seq", job.completion_seq)
      .set("error", job.error)
      .set("cancel_requested", job.cancel_requested);
}

Job job_from_json(const sim::JsonValue& value) {
  if (!value.is_object() ||
      value.at("schema").as_string() != "wavesim.jobfile.v1") {
    throw std::runtime_error("not a wavesim.jobfile.v1 document");
  }
  Job job;
  job.id = value.at("id").as_string();
  job.tenant = value.at("tenant").as_string();
  job.weight = value.at("weight").as_number();
  job.kind = value.at("kind").as_string();
  job.spec = value.at("spec");
  job.state = job_state_from_string(value.at("state").as_string());
  job.cycle = static_cast<Cycle>(value.at("cycle").as_int());
  job.slices = static_cast<std::uint64_t>(value.at("slices").as_int());
  job.completion_seq =
      static_cast<std::uint64_t>(value.at("completion_seq").as_int());
  job.error = value.at("error").as_string();
  job.cancel_requested = value.at("cancel_requested").as_bool();
  return job;
}

std::string JobRunner::checkpoint_path(const std::string& id) const {
  return state_dir_ + "/" + id + ".ckpt";
}

std::string JobRunner::result_path(const std::string& id) const {
  return state_dir_ + "/result-" + id + ".json";
}

SliceOutcome JobRunner::step(Job& job,
                             const std::function<bool()>& cancelled) {
  SliceOutcome out;
  try {
    ++job.slices;
    if (job.kind == "run") return step_run(job);
    if (job.kind == "sweep") return step_sweep(job, cancelled);
    if (job.kind == "simcheck") return step_simcheck(job);
    out.failed = true;
    out.error = "unknown job kind '" + job.kind + "'";
  } catch (const std::exception& e) {
    out.failed = true;
    out.error = e.what();
  }
  return out;
}

SliceOutcome JobRunner::step_run(Job& job) {
  SliceOutcome out;
  try {
    const std::string ckpt = checkpoint_path(job.id);
    std::unique_ptr<snap::CheckpointableRun> run;
    if (file_exists(ckpt)) {
      run = std::make_unique<snap::CheckpointableRun>(
          snap::Snapshot::load(ckpt));
    } else {
      // First slice -- or the checkpoint vanished, in which case the
      // run restarts from cycle 0 and still produces the identical
      // result file (determinism makes recovery idempotent).
      run = std::make_unique<snap::CheckpointableRun>(
          runspec_from_json(job.spec));
    }
    const Cycle before = run->now();
    run->advance(slice_cycles_);
    job.cycle = run->now();
    out.cost = static_cast<double>(run->now() - before);
    if (run->done()) {
      if (!sim::write_json_file(run_result_json(*run),
                                result_path(job.id))) {
        throw std::runtime_error("cannot write " + result_path(job.id));
      }
      std::remove(ckpt.c_str());
      out.done = true;
    } else {
      run->checkpoint().save(ckpt);
    }
  } catch (const std::exception& e) {
    out.failed = true;
    out.error = e.what();
  }
  return out;
}

SliceOutcome JobRunner::step_sweep(Job& job,
                                   const std::function<bool()>& cancelled) {
  SliceOutcome out;
  try {
    check_known_keys(job.spec, {"base", "measures"}, "sweep");
    const sim::JsonValue* base = job.spec.find("base");
    const sim::JsonValue* measures = job.spec.find("measures");
    if (base == nullptr || measures == nullptr || !measures->is_array() ||
        measures->size() == 0) {
      throw std::runtime_error(
          "sweep spec needs 'base' (run spec) and 'measures' (array)");
    }
    const snap::RunSpec spec = runspec_from_json(*base);

    // All points share the spec's warm prefix, so one warmup serves the
    // whole sweep: checkpoint at the warmup/measure boundary and start
    // every point from there (bench/bench_snap.cpp measures the win).
    snap::CheckpointableRun warm(spec);
    warm.advance(spec.warmup);
    if (!warm.at_measure_boundary()) {
      throw std::logic_error("sweep warmup did not reach the boundary");
    }
    out.cost += static_cast<double>(spec.warmup);
    const snap::Snapshot boundary = warm.checkpoint();

    sim::JsonValue points = sim::JsonValue::array();
    for (std::size_t i = 0; i < measures->size(); ++i) {
      if (cancelled()) return out;  // worker maps this to kCancelled
      const std::int64_t measure = measures->at(i).as_int();
      if (measure < 1) throw std::runtime_error("measures must be >= 1");
      snap::CheckpointableRun point(boundary);
      point.rebind(static_cast<Cycle>(measure),
                   40 * (spec.warmup + static_cast<Cycle>(measure)) +
                       1'000'000);
      while (!point.done()) {
        point.advance(std::numeric_limits<Cycle>::max());
      }
      out.cost += static_cast<double>(point.now() - spec.warmup);
      job.cycle += point.now() - spec.warmup;
      const load::ExperimentResult& r = point.result();
      points.push_back(
          sim::JsonValue::object()
              .set("measure", measure)
              .set("drained", r.drained)
              .set("offered_messages", r.offered_messages)
              .set("stats", harness::stats_to_json(r.stats)));
    }
    char warm_hex[32];
    std::snprintf(warm_hex, sizeof warm_hex, "%016llx",
                  static_cast<unsigned long long>(snap::warm_key(spec)));
    const sim::JsonValue doc =
        sim::JsonValue::object()
            .set("schema", "wavesim.result.v1")
            .set("kind", "sweep")
            .set("base", runspec_to_json(spec))
            .set("warm_key", warm_hex)
            .set("points", std::move(points));
    if (!sim::write_json_file(doc, result_path(job.id))) {
      throw std::runtime_error("cannot write " + result_path(job.id));
    }
    out.done = true;
  } catch (const std::exception& e) {
    out.failed = true;
    out.error = e.what();
  }
  return out;
}

SliceOutcome JobRunner::step_simcheck(Job& job) {
  SliceOutcome out;
  try {
    check_known_keys(job.spec,
                     {"count", "base_seed", "faulty", "max_failures"},
                     "simcheck");
    check::SimcheckOptions options;
    if (const sim::JsonValue* v = job.spec.find("count")) {
      options.count = static_cast<std::size_t>(v->as_int());
    } else {
      options.count = 20;
    }
    if (const sim::JsonValue* v = job.spec.find("base_seed")) {
      options.base_seed = static_cast<std::uint64_t>(v->as_int());
    }
    if (const sim::JsonValue* v = job.spec.find("faulty")) {
      options.faulty = v->as_bool();
    }
    if (const sim::JsonValue* v = job.spec.find("max_failures")) {
      options.max_failures = static_cast<std::size_t>(v->as_int());
    }
    if (options.count < 1) throw std::runtime_error("count must be >= 1");
    // One worker thread: parallelism belongs to the daemon's worker
    // pool, not inside a single job. No shrinking: service jobs report,
    // the CLI (simcheck --replay) investigates.
    options.threads = 1;
    options.shrink_failures = false;
    const check::Report report = check::run_simcheck(options);

    sim::JsonValue failures = sim::JsonValue::array();
    for (const check::Failure& f : report.failures) {
      failures.push_back(
          sim::JsonValue::object()
              .set("index", f.index)
              .set("seed", check::to_hex_u64(f.original.seed)));
    }
    const sim::JsonValue doc =
        sim::JsonValue::object()
            .set("schema", "wavesim.result.v1")
            .set("kind", "simcheck")
            .set("base_seed", options.base_seed)
            .set("count", options.count)
            .set("faulty", options.faulty)
            .set("scenarios_run", report.scenarios_run)
            .set("saturated", report.saturated)
            .set("ok", report.ok())
            .set("failures", std::move(failures));
    if (!sim::write_json_file(doc, result_path(job.id))) {
      throw std::runtime_error("cannot write " + result_path(job.id));
    }
    // Nominal WFQ charge: scenarios are short bounded runs; 20k cycles
    // apiece keeps simcheck jobs comparable to run slices.
    out.cost = static_cast<double>(report.scenarios_run) * 20'000.0;
    out.done = true;
  } catch (const std::exception& e) {
    out.failed = true;
    out.error = e.what();
  }
  return out;
}

}  // namespace wavesim::service
