// Weighted-fair job queue with bounded admission.
//
// Scheduling is virtual-time WFQ: every tenant carries a virtual time;
// pop() serves the active tenant with the smallest one (FIFO within a
// tenant) and the daemon charges the work actually done back via
// charge(cost / weight is applied here, not by the caller). A tenant
// with weight w therefore receives a w-proportional share of simulation
// cycles whenever it has work queued, and an idle tenant cannot bank
// credit: on re-activation its virtual time is clamped up to the global
// virtual clock.
//
// Admission is bounded: push() past the capacity is refused with a
// retry-after hint, which the daemon surfaces to the client as explicit
// backpressure ({"ok":false,"error":"queue full","retry_after_ms":N})
// instead of unbounded buffering. Requeues of already-admitted jobs
// (checkpoint-based preemption) bypass the cap so a running job can
// always yield its slot without being bounced.
#pragma once

#include <cstdint>
#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <string>

#include "sim/json.hpp"

namespace wavesim::service {

class FairQueue {
 public:
  explicit FairQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Admit a new job. False (with a retry hint in milliseconds) when the
  /// queue is at capacity.
  bool push(const std::string& job_id, const std::string& tenant,
            double weight, std::int64_t& retry_after_ms);

  /// Re-admit a preempted job at the back of its tenant's line; exempt
  /// from the capacity check (the job was already admitted once).
  void requeue(const std::string& job_id, const std::string& tenant,
               double weight);

  /// Block until a job is available or stop() was called. False means
  /// stopped; a stopped queue keeps its contents (the daemon persists
  /// job state, so the next start re-admits them).
  bool pop(std::string& job_id, std::string& tenant);

  /// Charge `cost` units of work (simulation cycles) against `tenant`:
  /// its virtual time advances by cost / weight.
  void charge(const std::string& tenant, double cost);

  /// Remove a queued job (cancellation). False when not queued.
  bool remove(const std::string& job_id);

  std::size_t size() const;
  void stop();

  /// {"depth":N,"tenants":[{"tenant":..,"queued":..,"vtime":..}, ...]}
  sim::JsonValue stats_json() const;

 private:
  struct Tenant {
    std::deque<std::string> fifo;
    double vtime = 0.0;
    double weight = 1.0;
  };

  // Smallest virtual time among tenants with queued work; callers hold mu_.
  const std::string* min_active_tenant() const;

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::string, Tenant> tenants_;  // ordered => deterministic ties
  std::size_t queued_ = 0;
  double vclock_ = 0.0;
  bool stopped_ = false;
};

}  // namespace wavesim::service
