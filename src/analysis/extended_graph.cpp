#include "analysis/extended_graph.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "routing/cdg.hpp"
#include "sim/graph.hpp"

namespace wavesim::analysis {

const char* to_string(Layer layer) noexcept {
  switch (layer) {
    case Layer::kWormhole: return "wormhole";
    case Layer::kControl: return "control";
    case Layer::kCircuit: return "circuit";
  }
  return "?";
}

WaitRules WaitRules::rules_for(const sim::SimConfig& config) {
  WaitRules rules;
  // Only CLRP has a Force phase (every variant reaches one); CARP probes
  // and pcs_only retries never wait on a busy channel, and the wormhole
  // baseline has no probes at all.
  if (config.protocol.protocol == sim::ProtocolKind::kClrp) {
    rules.force_waits_on_established = true;
  }
  return rules;
}

ExtendedGraph::ExtendedGraph(const topo::KAryNCube& topology,
                             std::int32_t num_vcs, std::int32_t num_switches)
    : topology_(topology), num_vcs_(num_vcs), num_switches_(num_switches) {
  if (num_vcs < 0 || num_switches < 0) {
    throw std::invalid_argument("ExtendedGraph: negative layer size");
  }
  const std::int32_t channels = topology.num_channels();
  control_base_ = channels * num_vcs_;
  circuit_base_ = control_base_ + channels * num_switches_;
  adj_.resize(static_cast<std::size_t>(circuit_base_) +
              static_cast<std::size_t>(channels) * num_switches_);
}

std::int32_t ExtendedGraph::num_vertices() const noexcept {
  return static_cast<std::int32_t>(adj_.size());
}

std::int32_t ExtendedGraph::vertex(Layer layer, NodeId node, PortId port,
                                   std::int32_t minor) const {
  const std::int32_t channel = topology_.channel_index(node, port);
  switch (layer) {
    case Layer::kWormhole:
      if (minor < 0 || minor >= num_vcs_) {
        throw std::out_of_range("ExtendedGraph: VC out of range");
      }
      return channel * num_vcs_ + minor;
    case Layer::kControl:
    case Layer::kCircuit:
      if (minor < 0 || minor >= num_switches_) {
        throw std::out_of_range("ExtendedGraph: switch out of range");
      }
      return (layer == Layer::kControl ? control_base_ : circuit_base_) +
             channel * num_switches_ + minor;
  }
  throw std::invalid_argument("ExtendedGraph: bad layer");
}

verify::WitnessHop ExtendedGraph::decode(std::int32_t vertex_id) const {
  if (vertex_id < 0 || vertex_id >= num_vertices()) {
    throw std::out_of_range("ExtendedGraph: vertex out of range");
  }
  Layer layer;
  std::int32_t channel;
  verify::WitnessHop hop;
  hop.vertex = vertex_id;
  if (vertex_id < control_base_) {
    layer = Layer::kWormhole;
    channel = vertex_id / num_vcs_;
    hop.index = vertex_id % num_vcs_;
  } else if (vertex_id < circuit_base_) {
    layer = Layer::kControl;
    channel = (vertex_id - control_base_) / num_switches_;
    hop.index = (vertex_id - control_base_) % num_switches_;
  } else {
    layer = Layer::kCircuit;
    channel = (vertex_id - circuit_base_) / num_switches_;
    hop.index = (vertex_id - circuit_base_) % num_switches_;
  }
  hop.node = channel / topology_.num_ports();
  hop.port = channel % topology_.num_ports();
  std::ostringstream name;
  switch (layer) {
    case Layer::kWormhole:
      name << "wh n" << hop.node << ":p" << hop.port << ":vc" << hop.index;
      break;
    case Layer::kControl:
      name << "ctl n" << hop.node << ":p" << hop.port << ":s" << hop.index;
      break;
    case Layer::kCircuit:
      name << "est n" << hop.node << ":p" << hop.port << ":s" << hop.index;
      break;
  }
  hop.name = name.str();
  return hop;
}

void ExtendedGraph::add_edge(std::int32_t from, std::int32_t to) {
  adj_.at(from).push_back(to);
  ++num_edges_;
}

bool ExtendedGraph::has_edge(std::int32_t from, std::int32_t to) const {
  const auto& out = out_edges(from);
  return std::find(out.begin(), out.end(), to) != out.end();
}

const std::vector<std::int32_t>& ExtendedGraph::out_edges(
    std::int32_t from) const {
  static const std::vector<std::int32_t> kEmpty;
  if (from < 0 || from >= num_vertices()) return kEmpty;
  return adj_[static_cast<std::size_t>(from)];
}

std::vector<std::int32_t> ExtendedGraph::find_cycle() const {
  return sim::find_graph_cycle(adj_);
}

verify::CycleWitness ExtendedGraph::witness(
    const std::vector<std::int32_t>& cycle) const {
  verify::CycleWitness witness;
  witness.graph = "extended";
  witness.hops.reserve(cycle.size());
  for (const std::int32_t vertex_id : cycle) {
    witness.hops.push_back(decode(vertex_id));
  }
  return witness;
}

ExtendedGraph build_extended_graph(const topo::KAryNCube& topology,
                                   const route::RoutingAlgorithm& routing,
                                   std::int32_t num_vcs,
                                   std::int32_t num_switches,
                                   const WaitRules& rules) {
  ExtendedGraph graph(topology, num_vcs, num_switches);

  // Wormhole layer: the escape CDG verbatim. Its vertex layout (channel *
  // num_vcs + vc) is identical to the extended graph's wormhole block, so
  // edges copy over without translation.
  if (num_vcs > 0) {
    const auto cdg = route::build_cdg(topology, routing, num_vcs,
                                      /*escape_only=*/true);
    for (std::int32_t v = 0; v < cdg.num_vertices(); ++v) {
      for (const std::int32_t to : cdg.out_edges(v)) graph.add_edge(v, to);
    }
  }

  // Control / circuit layers. A probe that holds the control channel of
  // switch s on link (node, port) sits at `next`; the channels it can
  // request there are over-approximated by every live out-port (MB-m
  // misrouting may pick any of them, and a superset of waits is sound for
  // an acyclicity proof). A probe stays on its switch, so edges never
  // cross switch indices.
  for (NodeId node = 0; node < topology.num_nodes(); ++node) {
    for (PortId port = 0; port < topology.num_ports(); ++port) {
      const NodeId next = topology.neighbor(node, port);
      if (next == kInvalidNode) continue;
      for (std::int32_t s = 0; s < num_switches; ++s) {
        const std::int32_t held_ctl =
            graph.vertex(Layer::kControl, node, port, s);
        const std::int32_t held_est =
            graph.vertex(Layer::kCircuit, node, port, s);
        for (PortId out = 0; out < topology.num_ports(); ++out) {
          if (!topology.has_neighbor(next, out)) continue;
          // Waiting on a circuit still in establishment is a wait on the
          // owning probe's control reservation, so both broken rules
          // produce the same control->control edge family.
          if (rules.probes_wait_on_control ||
              rules.force_waits_on_establishing) {
            graph.add_edge(held_ctl,
                           graph.vertex(Layer::kControl, next, out, s));
          }
          if (rules.force_waits_on_established) {
            graph.add_edge(held_ctl,
                           graph.vertex(Layer::kCircuit, next, out, s));
          }
          if (rules.releases_block) {
            graph.add_edge(held_est,
                           graph.vertex(Layer::kControl, next, out, s));
          }
        }
      }
    }
  }
  return graph;
}

}  // namespace wavesim::analysis
