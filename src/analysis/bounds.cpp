#include "analysis/bounds.hpp"

#include <sstream>

namespace wavesim::analysis {

std::string LivelockBounds::describe() const {
  std::ostringstream os;
  os << "misroutes<=" << misroute_budget << "+backtracks, backtracks<="
     << backtrack_cap << ", steps<=" << probe_step_cap << ", attempts";
  if (attempts_bounded) {
    os << "<=" << attempt_cap;
  } else {
    os << " unbounded (pcs_only retries)";
  }
  return os.str();
}

LivelockBounds livelock_bounds(const topo::KAryNCube& topology,
                               const sim::SimConfig& config) {
  LivelockBounds bounds;
  bounds.misroute_budget = config.protocol.max_misroutes;
  bounds.backtrack_cap = topology.num_channels();
  bounds.probe_step_cap = 2 * bounds.backtrack_cap;
  const std::int32_t k = config.router.wave_switches;
  switch (config.protocol.protocol) {
    case sim::ProtocolKind::kWormholeOnly:
      bounds.attempt_cap = 0;
      break;
    case sim::ProtocolKind::kClrp:
      switch (config.protocol.clrp_variant) {
        case sim::ClrpVariant::kFull: bounds.attempt_cap = 2 * k; break;
        case sim::ClrpVariant::kForceFirst: bounds.attempt_cap = k; break;
        case sim::ClrpVariant::kSingleSwitch: bounds.attempt_cap = 2; break;
      }
      break;
    case sim::ProtocolKind::kCarp:
      bounds.attempt_cap = k;
      break;
  }
  if (config.protocol.pcs_only) bounds.attempts_bounded = false;
  return bounds;
}

}  // namespace wavesim::analysis
