#include "analysis/analyze.hpp"

#include <sstream>
#include <utility>

#include "routing/routing.hpp"
#include "verify/structural.hpp"

namespace wavesim::analysis {

namespace {

CheckRow make_row(std::string id, CheckStatus status, std::string detail) {
  CheckRow row;
  row.id = std::move(id);
  row.status = status;
  row.detail = std::move(detail);
  return row;
}

}  // namespace

const char* to_string(CheckStatus status) noexcept {
  switch (status) {
    case CheckStatus::kOk: return "ok";
    case CheckStatus::kViolation: return "violation";
    case CheckStatus::kSkipped: return "skipped";
    case CheckStatus::kBoundedOut: return "bounded-out";
  }
  return "?";
}

bool ConfigReport::ok() const noexcept {
  return count(CheckStatus::kViolation) == 0;
}

std::size_t ConfigReport::count(CheckStatus status) const noexcept {
  std::size_t n = 0;
  for (const auto& row : rows) {
    if (row.status == status) ++n;
  }
  return n;
}

std::string config_label(const sim::SimConfig& config) {
  std::ostringstream os;
  for (std::size_t d = 0; d < config.topology.radix.size(); ++d) {
    os << (d > 0 ? "x" : "") << config.topology.radix[d];
  }
  os << '-' << (config.topology.torus ? "torus" : "mesh") << '/'
     << to_string(config.router.routing) << '/'
     << to_string(config.protocol.protocol);
  if (config.protocol.protocol == sim::ProtocolKind::kClrp) {
    os << '-' << to_string(config.protocol.clrp_variant);
    if (config.protocol.pcs_only) os << "-pcsonly";
  }
  os << "/k" << config.router.wave_switches << "/w"
     << config.router.wormhole_vcs << "/m" << config.protocol.max_misroutes
     << "/c" << config.protocol.circuit_cache_entries;
  return os.str();
}

ConfigReport analyze_config(const sim::SimConfig& config) {
  return analyze_config(config, WaitRules::rules_for(config));
}

ConfigReport analyze_config(const sim::SimConfig& config,
                            const WaitRules& rules) {
  config.validate();
  ConfigReport report;
  report.id = config_label(config);
  report.config = config;
  report.rules = rules;

  const topo::KAryNCube topology(config.topology.radix, config.topology.torus);
  const auto routing = route::make_routing(config.router.routing, topology,
                                           config.router.wormhole_vcs);
  report.bounds = livelock_bounds(topology, config);
  const bool has_probes =
      config.protocol.protocol != sim::ProtocolKind::kWormholeOnly;
  const bool has_force =
      config.protocol.protocol == sim::ProtocolKind::kClrp;

  // Theorem 2 premise (and Theorems 1/4 via the fallback): the escape
  // subnetwork's CDG is acyclic.
  {
    const verify::CheckResult escape = verify::check_escape_acyclic(config);
    CheckRow row;
    row.id = "escape-cdg-acyclic";
    if (escape.ok()) {
      row.status = CheckStatus::kOk;
      std::ostringstream os;
      os << "escape CDG of " << routing->name() << " is acyclic";
      row.detail = os.str();
    } else {
      row.status = CheckStatus::kViolation;
      row.detail = escape.violations.front();
      row.witness = escape.witnesses.front();
    }
    report.rows.push_back(std::move(row));
  }

  // Theorems 1/2: the wait-for graph over wormhole + control + circuit
  // resources permitted by the protocol's blocking rules is acyclic.
  {
    const ExtendedGraph graph = build_extended_graph(
        topology, *routing, config.router.wormhole_vcs,
        config.router.wave_switches, rules);
    const auto cycle = graph.find_cycle();
    CheckRow row;
    row.id = "wait-graph-acyclic";
    if (cycle.empty()) {
      std::ostringstream os;
      os << "extended wait-for graph (" << graph.num_vertices()
         << " vertices, " << graph.num_edges() << " edges) is acyclic";
      row.status = CheckStatus::kOk;
      row.detail = os.str();
    } else {
      row.status = CheckStatus::kViolation;
      row.witness = graph.witness(cycle);
      std::ostringstream os;
      os << "extended wait-for graph has a cycle of length " << cycle.size()
         << ": " << row.witness.describe(/*max_hops=*/12);
      row.detail = os.str();
    }
    report.rows.push_back(std::move(row));
  }

  // Theorem 1 premise: probes never wait on probe-reserved channels — MB-m
  // misroutes or backtracks. A rule-level fact of the protocol model; when
  // the rules say otherwise the wait-graph row above also goes cyclic.
  report.rows.push_back(
      !has_probes
          ? make_row("mbm-no-wait", CheckStatus::kSkipped,
                     "no probes in the wormhole baseline")
          : rules.probes_wait_on_control
              ? make_row("mbm-no-wait", CheckStatus::kViolation,
                         "rules allow probes to wait on control channels "
                         "reserved by other probes")
              : make_row("mbm-no-wait", CheckStatus::kOk,
                         "MB-m probes backtrack instead of waiting; timing "
                         "covered by simcheck MB-m event oracle and "
                         "exhaustively by bmc-no-wait-cycle on the BMC "
                         "slice"));

  // Theorem 1 premise: a Force=1 probe waits only on channels of circuits
  // that completed establishment.
  report.rows.push_back(
      !has_force
          ? make_row("force-waits-only-on-acked", CheckStatus::kSkipped,
                     has_probes ? "CARP never sets Force"
                                : "no probes in the wormhole baseline")
          : rules.force_waits_on_establishing
              ? make_row("force-waits-only-on-acked", CheckStatus::kViolation,
                         "rules allow Force to wait on circuits still being "
                         "established")
              : make_row("force-waits-only-on-acked", CheckStatus::kOk,
                         "Force waits only on established circuits; "
                         "acked-before-wait covered at runtime by fsck I7 "
                         "and exhaustively by bmc-force-waits-only-on-acked "
                         "on the BMC slice"));

  // Theorem 1 premise: release requests / teardowns are single control
  // flits that sink unconditionally.
  report.rows.push_back(
      !has_probes
          ? make_row("releases-wait-free", CheckStatus::kSkipped,
                     "no circuits in the wormhole baseline")
          : rules.releases_block
              ? make_row("releases-wait-free", CheckStatus::kViolation,
                         "rules allow release/teardown flits to block on "
                         "control channels")
              : make_row("releases-wait-free", CheckStatus::kOk,
                         "releases reserve nothing; drain behavior covered "
                         "by simcheck check_drained oracle and exhaustively "
                         "by bmc-teardown-drains on the BMC slice"));

  // Theorems 3/4 premise: the wormhole fallback routes minimally, so the
  // distance-to-destination argument bounds its progress.
  report.rows.push_back(
      routing->minimal()
          ? make_row("minimal-routing", CheckStatus::kOk,
                     std::string(routing->name()) +
                         " produces only minimal hops")
          : make_row("minimal-routing", CheckStatus::kViolation,
                     std::string(routing->name()) +
                         " is non-minimal; Theorem 3's distance argument "
                         "does not apply"));

  // Theorems 3/4: static misroute/backtrack/attempt bounds. pcs_only has
  // no attempt bound by design — honesty demands a skip, not an ok.
  report.rows.push_back(
      !has_probes
          ? make_row("livelock-bounds", CheckStatus::kSkipped,
                     "no probes in the wormhole baseline")
          : !report.bounds.attempts_bounded
              ? make_row("livelock-bounds", CheckStatus::kSkipped,
                         "pcs_only retries are unbounded; delivery relies on "
                         "retry fairness, covered by simcheck progress "
                         "watchdog and by bmc-no-deadlock on the BMC "
                         "slice: " + report.bounds.describe())
              : make_row("livelock-bounds", CheckStatus::kOk,
                         report.bounds.describe() +
                             "; enforced at runtime by the MB-m event "
                             "oracle"));

  return report;
}

std::vector<sim::SimConfig> enumerate_configs() {
  std::vector<sim::SimConfig> configs;
  const std::vector<std::vector<std::int32_t>> radices = {{4, 4}, {8, 8}};
  const bool toruses[] = {false, true};
  const sim::RoutingKind routings[] = {
      sim::RoutingKind::kDimensionOrder, sim::RoutingKind::kDuatoAdaptive,
      sim::RoutingKind::kWestFirst, sim::RoutingKind::kNegativeFirst};
  struct ProtocolChoice {
    sim::ProtocolKind protocol;
    sim::ClrpVariant variant;
  };
  const ProtocolChoice protocols[] = {
      {sim::ProtocolKind::kWormholeOnly, sim::ClrpVariant::kFull},
      {sim::ProtocolKind::kClrp, sim::ClrpVariant::kFull},
      {sim::ProtocolKind::kClrp, sim::ClrpVariant::kForceFirst},
      {sim::ProtocolKind::kClrp, sim::ClrpVariant::kSingleSwitch},
      {sim::ProtocolKind::kCarp, sim::ClrpVariant::kFull},
  };
  const std::int32_t switch_counts[] = {1, 2};
  const std::int32_t misroutes[] = {0, 2};
  const std::int32_t caches[] = {1, 8};

  for (const auto& radix : radices) {
    for (const bool torus : toruses) {
      for (const auto routing : routings) {
        for (const auto& proto : protocols) {
          const bool baseline =
              proto.protocol == sim::ProtocolKind::kWormholeOnly;
          for (const std::int32_t k : switch_counts) {
            for (const std::int32_t m : misroutes) {
              for (const std::int32_t cache : caches) {
                // The baseline has no probes, circuits or switches: k/m/
                // cache do not exist for it, so enumerate it exactly once
                // per (topology, routing) with k = 0.
                if (baseline && (k != 1 || m != 0 || cache != 1)) continue;
                sim::SimConfig config;
                config.topology.radix = radix;
                config.topology.torus = torus;
                config.router.routing = routing;
                // Satisfy every algorithm's VC floor (3 covers torus Duato).
                config.router.wormhole_vcs =
                    routing == sim::RoutingKind::kDuatoAdaptive ? 3 : 2;
                config.router.wave_switches = baseline ? 0 : k;
                config.protocol.protocol = proto.protocol;
                config.protocol.clrp_variant = proto.variant;
                config.protocol.max_misroutes = m;
                config.protocol.circuit_cache_entries = cache;
                try {
                  config.validate();
                } catch (const std::exception&) {
                  continue;  // e.g. west-first on a torus
                }
                configs.push_back(std::move(config));
              }
            }
          }
        }
      }
    }
  }
  return configs;
}

namespace {

sim::JsonValue witness_to_json(const verify::CycleWitness& witness) {
  sim::JsonValue doc = sim::JsonValue::object();
  doc.set("graph", witness.graph);
  sim::JsonValue hops = sim::JsonValue::array();
  for (const auto& hop : witness.hops) {
    sim::JsonValue h = sim::JsonValue::object();
    h.set("vertex", static_cast<std::int64_t>(hop.vertex));
    h.set("name", hop.name);
    h.set("node", static_cast<std::int64_t>(hop.node));
    h.set("port", static_cast<std::int64_t>(hop.port));
    h.set("index", static_cast<std::int64_t>(hop.index));
    hops.push_back(std::move(h));
  }
  doc.set("hops", std::move(hops));
  return doc;
}

}  // namespace

sim::JsonValue report_to_json(const std::vector<ConfigReport>& reports) {
  sim::JsonValue doc = sim::JsonValue::object();
  doc.set("schema", "wavesim.analysis.v1");
  std::size_t num_ok = 0;
  std::size_t num_violations = 0;
  sim::JsonValue configs = sim::JsonValue::array();
  for (const auto& report : reports) {
    if (report.ok()) ++num_ok;
    num_violations += report.count(CheckStatus::kViolation);
    sim::JsonValue entry = sim::JsonValue::object();
    entry.set("id", report.id);
    const auto& c = report.config;
    sim::JsonValue topo = sim::JsonValue::object();
    sim::JsonValue radix = sim::JsonValue::array();
    for (const auto r : c.topology.radix) {
      radix.push_back(static_cast<std::int64_t>(r));
    }
    topo.set("radix", std::move(radix));
    topo.set("torus", c.topology.torus);
    entry.set("topology", std::move(topo));
    entry.set("routing", to_string(c.router.routing));
    entry.set("protocol", to_string(c.protocol.protocol));
    if (c.protocol.protocol == sim::ProtocolKind::kClrp) {
      entry.set("clrp_variant", to_string(c.protocol.clrp_variant));
      entry.set("pcs_only", c.protocol.pcs_only);
    }
    entry.set("wave_switches",
              static_cast<std::int64_t>(c.router.wave_switches));
    entry.set("wormhole_vcs",
              static_cast<std::int64_t>(c.router.wormhole_vcs));
    entry.set("max_misroutes",
              static_cast<std::int64_t>(c.protocol.max_misroutes));
    entry.set("cache_entries",
              static_cast<std::int64_t>(c.protocol.circuit_cache_entries));

    sim::JsonValue rules = sim::JsonValue::object();
    rules.set("probes_wait_on_control", report.rules.probes_wait_on_control);
    rules.set("force_waits_on_established",
              report.rules.force_waits_on_established);
    rules.set("force_waits_on_establishing",
              report.rules.force_waits_on_establishing);
    rules.set("releases_block", report.rules.releases_block);
    entry.set("rules", std::move(rules));

    sim::JsonValue bounds = sim::JsonValue::object();
    bounds.set("misroute_budget",
               static_cast<std::int64_t>(report.bounds.misroute_budget));
    bounds.set("backtrack_cap", report.bounds.backtrack_cap);
    bounds.set("probe_step_cap", report.bounds.probe_step_cap);
    bounds.set("attempt_cap",
               static_cast<std::int64_t>(report.bounds.attempt_cap));
    bounds.set("attempts_bounded", report.bounds.attempts_bounded);
    entry.set("bounds", std::move(bounds));

    sim::JsonValue rows = sim::JsonValue::array();
    for (const auto& row : report.rows) {
      sim::JsonValue r = sim::JsonValue::object();
      r.set("id", row.id);
      r.set("status", to_string(row.status));
      r.set("detail", row.detail);
      if (!row.witness.hops.empty()) {
        r.set("witness", witness_to_json(row.witness));
      }
      rows.push_back(std::move(r));
    }
    entry.set("rows", std::move(rows));
    entry.set("ok", report.ok());
    configs.push_back(std::move(entry));
  }
  doc.set("num_configs", static_cast<std::int64_t>(reports.size()));
  doc.set("num_ok", static_cast<std::int64_t>(num_ok));
  doc.set("num_violations", static_cast<std::int64_t>(num_violations));
  doc.set("configs", std::move(configs));
  return doc;
}

}  // namespace wavesim::analysis
