// Static livelock bounds (Theorems 3 and 4).
//
// MB-m probe routing is livelock-free because every quantity a probe can
// spend is bounded before the run starts: the misroute budget is the
// configured m (refunded one-for-one by backtracks over misrouted hops),
// the History Store forbids re-reserving a channel within an attempt so
// backtracks are bounded by the number of directed channels, and each
// protocol makes a fixed number of setup attempts before falling back to
// wormhole delivery (whose own progress Theorem 2 guarantees). These are
// the same invariants the runtime MB-m oracle in src/check/oracle.cpp
// enforces per attempt on the event stream; livelock_bounds() is the
// single source both sides derive them from.
#pragma once

#include <cstdint>
#include <string>

#include "sim/config.hpp"
#include "topology/topology.hpp"

namespace wavesim::analysis {

struct LivelockBounds {
  /// Misroutes a probe may hold at once (the "m" of MB-m). The runtime
  /// invariant is misroutes <= misroute_budget + backtracks, since a
  /// backtrack over a misrouted hop refunds that misroute.
  std::int32_t misroute_budget = 0;
  /// Backtracks per attempt: the History Store records every channel the
  /// attempt reserved and forbids reserving it again, so an attempt cannot
  /// backtrack more often than there are directed channels.
  std::int64_t backtrack_cap = 0;
  /// Channel traversals per attempt: each reservation is taken at most
  /// once and released at most once, so steps <= 2 * backtrack_cap.
  std::int64_t probe_step_cap = 0;
  /// Setup attempts per message before the wormhole fallback (0 when the
  /// protocol launches no probes at all). Meaningful only when
  /// attempts_bounded.
  std::int32_t attempt_cap = 0;
  /// False only for pcs_only configurations, where failed setups retry
  /// after a backoff forever instead of falling back (paper section 2's
  /// k=1, w=0 "pure PCS" design point): delivery then relies on the
  /// fairness of retries, not on a static attempt bound.
  bool attempts_bounded = true;

  std::string describe() const;

  friend bool operator==(const LivelockBounds&, const LivelockBounds&) =
      default;
};

/// Bounds for `config` on `topology`. CLRP kFull probes every switch twice
/// (phase 1 Force=0, phase 2 Force=1: 2k), kForceFirst skips phase 1 (k),
/// kSingleSwitch tries only the initial switch in each phase (2); CARP
/// makes k Force=0 attempts and never forces.
LivelockBounds livelock_bounds(const topo::KAryNCube& topology,
                               const sim::SimConfig& config);

}  // namespace wavesim::analysis
