// The extended protocol dependency graph of Theorems 1-4.
//
// Wave switching adds two resource layers on top of the wormhole escape
// channels: the k single-flit control channels (one per wave switch per
// directed link) that MB-m probes reserve hop by hop, and the k circuit
// data channels that established circuits hold. Deadlock freedom (Theorems
// 1 and 2) is the statement that the *wait-for* graph over all three layers
// is acyclic; which edges that graph can contain is exactly the set of
// blocking rules the proofs enumerate:
//
//   * probes never wait on control channels reserved by other probes --
//     MB-m misroutes or backtracks instead (so no control->control edge);
//   * a Force=1 probe may wait, but only on channels whose circuit has
//     completed establishment (acked) -- a control->circuit edge;
//   * it must NOT wait on a circuit still being established (that would be
//     a wait on the owning probe's reservations: control->control edges
//     through the establishment chain);
//   * established circuits are released by single-flit release-request /
//     teardown control flits that share link bandwidth but never reserve
//     anything, so a circuit's release waits on nothing (no circuit->*
//     edge);
//   * the wormhole fallback rides an escape CDG that must itself be
//     acyclic (Dally & Seitz / Duato).
//
// ExtendedGraph materializes the wait-for graph a given rule set permits
// over a concrete (topology, routing, w, k) and searches it for cycles.
// Under the protocols' actual rules the control/circuit part is bipartite
// (control -> circuit only) and the checker proves it acyclic per config;
// flipping any rule -- as a regression in the protocol layer effectively
// would -- produces a cycle that is reported as an ordered witness.
#pragma once

#include <cstdint>
#include <vector>

#include "routing/routing.hpp"
#include "sim/config.hpp"
#include "topology/topology.hpp"
#include "verify/delivery.hpp"

namespace wavesim::analysis {

/// Resource layer of an extended-graph vertex.
enum class Layer : std::uint8_t {
  kWormhole,  ///< S0 escape virtual channel (node, port, vc)
  kControl,   ///< control channel of switch s on the link (node, port)
  kCircuit,   ///< circuit data channel of switch s on the link (node, port)
};

const char* to_string(Layer layer) noexcept;

/// The blocking rules the analyzed protocol can exhibit. Each true flag
/// adds a family of wait-for edges; the defaults encode "no waiting at
/// all" (pure backtracking, no Force). See rules_for() for the per-config
/// derivation and the class comment for the proof-side meaning.
struct WaitRules {
  /// Probes wait on control channels reserved by other probes instead of
  /// backtracking. Always false for MB-m; true models a (hypothetical)
  /// no-backtrack PCS and makes the control layer cyclic on any topology.
  bool probes_wait_on_control = false;
  /// Force=1 probes park on channels held by *established* circuits until
  /// a release request frees them (CLRP phase 2).
  bool force_waits_on_established = false;
  /// Force=1 probes also park on channels of circuits still being
  /// established. The proof of Theorem 1 explicitly forbids this ("the
  /// probe backtracks even with Force set"); true models the broken
  /// variant and closes the control->circuit->control loop.
  bool force_waits_on_establishing = false;
  /// Release-request / teardown flits can block on control channels along
  /// the circuit path instead of sinking unconditionally. Always false:
  /// control flits of an existing circuit share link bandwidth through the
  /// gate but never reserve; true models a blocking release protocol.
  bool releases_block = false;

  /// The rules the configured protocol actually runs under: Force applies
  /// to CLRP only (every variant has a Force phase), never to CARP or the
  /// wormhole baseline; everything else stays false by protocol design.
  static WaitRules rules_for(const sim::SimConfig& config);

  friend bool operator==(const WaitRules&, const WaitRules&) = default;
};

class ExtendedGraph {
 public:
  /// Vertex space for `topology` with `num_vcs` wormhole VCs and
  /// `num_switches` wave switches (either count may be 0 to omit a layer).
  ExtendedGraph(const topo::KAryNCube& topology, std::int32_t num_vcs,
                std::int32_t num_switches);

  std::int32_t num_vertices() const noexcept;
  std::int64_t num_edges() const noexcept { return num_edges_; }

  /// Vertex id of a resource. `minor` is the VC for kWormhole and the
  /// switch index for kControl / kCircuit.
  std::int32_t vertex(Layer layer, NodeId node, PortId port,
                      std::int32_t minor) const;

  /// Inverse of vertex(), with a printable name ("wh n5:p2:vc1",
  /// "ctl n3:p0:s1", "est n3:p0:s1").
  verify::WitnessHop decode(std::int32_t vertex_id) const;

  void add_edge(std::int32_t from, std::int32_t to);
  bool has_edge(std::int32_t from, std::int32_t to) const;
  const std::vector<std::int32_t>& out_edges(std::int32_t from) const;

  /// One directed cycle in vertex order (cycle[i] -> cycle[(i+1) % size]
  /// is an edge for every i), else empty.
  std::vector<std::int32_t> find_cycle() const;

  /// Decode a cycle from find_cycle() into an ordered witness.
  verify::CycleWitness witness(const std::vector<std::int32_t>& cycle) const;

 private:
  const topo::KAryNCube& topology_;
  std::int32_t num_vcs_;
  std::int32_t num_switches_;
  std::int32_t control_base_;  ///< first control vertex id
  std::int32_t circuit_base_;  ///< first circuit vertex id
  std::vector<std::vector<std::int32_t>> adj_;
  std::int64_t num_edges_ = 0;
};

/// Build the extended dependency graph of `config`'s protocol under
/// `rules`: the escape CDG of `routing` as the wormhole layer plus every
/// control/circuit wait-for edge the rules permit (over-approximating the
/// requestable next hops of a probe by all live out-ports, which is sound:
/// MB-m misrouting may request any of them).
ExtendedGraph build_extended_graph(const topo::KAryNCube& topology,
                                   const route::RoutingAlgorithm& routing,
                                   std::int32_t num_vcs,
                                   std::int32_t num_switches,
                                   const WaitRules& rules);

}  // namespace wavesim::analysis
