// Per-configuration static verification report.
//
// analyze_config() runs every statically checkable premise of Theorems 1-4
// against one SimConfig and records a row per premise: the escape-CDG
// acyclicity the wormhole fallback needs, the acyclicity of the extended
// wait-for graph the protocol's blocking rules generate, the rule-level
// premises themselves (probes backtrack rather than wait, Force waits only
// on acked circuits, releases are wait-free), minimality of the wormhole
// routing, and the static livelock bounds. Rows that cannot be decided
// statically are reported as skipped with the runtime oracle that covers
// them named in the detail — never silently ok. enumerate_configs() spans
// the supported design space and wavecheck turns the reports into the
// machine-readable wavesim.analysis.v1 JSON document.
#pragma once

#include <string>
#include <vector>

#include "analysis/bounds.hpp"
#include "analysis/extended_graph.hpp"
#include "sim/config.hpp"
#include "sim/json.hpp"
#include "verify/delivery.hpp"

namespace wavesim::analysis {

enum class CheckStatus : std::uint8_t {
  kOk,          ///< premise verified for this configuration
  kViolation,   ///< premise refuted; detail + witness say how
  kSkipped,     ///< not statically checkable here; detail names the runtime
                ///< oracle or BMC row that covers it
  kBoundedOut,  ///< bounded model checking ran out of budget before either
                ///< verifying or refuting; never counts as ok
};

const char* to_string(CheckStatus status) noexcept;

/// One premise of one theorem, checked against one configuration.
struct CheckRow {
  std::string id;      ///< stable machine id, e.g. "escape-cdg-acyclic"
  CheckStatus status = CheckStatus::kSkipped;
  std::string detail;  ///< human explanation / witness description
  /// Cycle witness for cycle-shaped violations (empty hops otherwise).
  verify::CycleWitness witness;
};

struct ConfigReport {
  std::string id;  ///< stable config label, e.g. "8x8-torus/dor/clrp-full/..."
  sim::SimConfig config;
  WaitRules rules;
  LivelockBounds bounds;
  std::vector<CheckRow> rows;

  bool ok() const noexcept;
  /// Number of rows with the given status.
  std::size_t count(CheckStatus status) const noexcept;
};

/// Stable config label used as ConfigReport::id and in CLI selection.
std::string config_label(const sim::SimConfig& config);

/// Analyze one configuration under its protocol's own blocking rules.
/// Throws std::invalid_argument when the config fails validate().
ConfigReport analyze_config(const sim::SimConfig& config);

/// As analyze_config, but with explicit (possibly broken) rules — the hook
/// the tests use to prove the checker is non-vacuous.
ConfigReport analyze_config(const sim::SimConfig& config,
                            const WaitRules& rules);

/// The supported design space: {4x4, 8x8} x {mesh, torus} x every routing
/// algorithm x every protocol/variant x k in {1, 2} x m in {0, 2} x cache
/// in {1, 8}, with invalid combinations (validate() failures) filtered out
/// and knobs a protocol ignores not multiplied (the wormhole baseline is
/// enumerated once per topology/routing).
std::vector<sim::SimConfig> enumerate_configs();

/// Serialize reports as a wavesim.analysis.v1 document.
sim::JsonValue report_to_json(const std::vector<ConfigReport>& reports);

}  // namespace wavesim::analysis
