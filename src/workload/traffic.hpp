// Destination-selection patterns for synthetic traffic.
//
// Classic spatial patterns (uniform, permutations, hotspot, tornado,
// nearest-neighbor) plus the temporal-locality pattern the paper's
// protocols are designed for: a per-source working set of favorite
// destinations that is revisited with configurable probability.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/rng.hpp"
#include "sim/types.hpp"
#include "topology/topology.hpp"

namespace wavesim::snap {
class Archive;
}  // namespace wavesim::snap

namespace wavesim::load {

class TrafficPattern {
 public:
  virtual ~TrafficPattern() = default;
  /// Destination for the next message from `src`; never returns src.
  virtual NodeId pick(NodeId src, sim::Rng& rng) = 0;
  virtual const char* name() const noexcept = 0;
  /// Serialize mutable pattern state (snapshot/restore). Most patterns
  /// are stateless; WorkingSetTraffic overrides this with its sets.
  virtual void snap(snap::Archive& ar) { (void)ar; }
};

/// Uniformly random destination.
class UniformTraffic final : public TrafficPattern {
 public:
  explicit UniformTraffic(const topo::KAryNCube& topology);
  NodeId pick(NodeId src, sim::Rng& rng) override;
  const char* name() const noexcept override { return "uniform"; }

 private:
  const topo::KAryNCube& topology_;
};

/// Fraction `hot_fraction` of messages go to one hot node, rest uniform.
class HotspotTraffic final : public TrafficPattern {
 public:
  HotspotTraffic(const topo::KAryNCube& topology, NodeId hot,
                 double hot_fraction);
  NodeId pick(NodeId src, sim::Rng& rng) override;
  const char* name() const noexcept override { return "hotspot"; }

 private:
  const topo::KAryNCube& topology_;
  NodeId hot_;           // [snap: skip] config, fixed at construction
  double hot_fraction_;  // [snap: skip] config, fixed at construction
};

/// Matrix transpose: coordinates rotate one dimension (2-D: (x,y)->(y,x)).
class TransposeTraffic final : public TrafficPattern {
 public:
  explicit TransposeTraffic(const topo::KAryNCube& topology);
  NodeId pick(NodeId src, sim::Rng& rng) override;
  const char* name() const noexcept override { return "transpose"; }

 private:
  const topo::KAryNCube& topology_;
};

/// Bit reversal of the node index (requires power-of-two node count).
class BitReversalTraffic final : public TrafficPattern {
 public:
  explicit BitReversalTraffic(const topo::KAryNCube& topology);
  NodeId pick(NodeId src, sim::Rng& rng) override;
  const char* name() const noexcept override { return "bit-reversal"; }

 private:
  const topo::KAryNCube& topology_;
  std::int32_t bits_;  // [snap: skip] derived from topology at construction
};

/// Bit complement of the node index (requires power-of-two node count).
class BitComplementTraffic final : public TrafficPattern {
 public:
  explicit BitComplementTraffic(const topo::KAryNCube& topology);
  NodeId pick(NodeId src, sim::Rng& rng) override;
  const char* name() const noexcept override { return "bit-complement"; }

 private:
  const topo::KAryNCube& topology_;
};

/// Tornado: half-way around each ring dimension (worst case for DOR tori).
class TornadoTraffic final : public TrafficPattern {
 public:
  explicit TornadoTraffic(const topo::KAryNCube& topology);
  NodeId pick(NodeId src, sim::Rng& rng) override;
  const char* name() const noexcept override { return "tornado"; }

 private:
  const topo::KAryNCube& topology_;
};

/// Uniformly random direct neighbor (maximal spatial locality).
class NeighborTraffic final : public TrafficPattern {
 public:
  explicit NeighborTraffic(const topo::KAryNCube& topology);
  NodeId pick(NodeId src, sim::Rng& rng) override;
  const char* name() const noexcept override { return "neighbor"; }

 private:
  const topo::KAryNCube& topology_;
};

/// Temporal communication locality: each source keeps a working set of
/// `set_size` destinations; with probability `p_in_set` the next message
/// goes to a (uniformly chosen) member of the set, otherwise to a fresh
/// uniform destination that replaces a random member. p_in_set = 0 degrades
/// to uniform; p_in_set = 1 pins each source to a fixed set.
class WorkingSetTraffic final : public TrafficPattern {
 public:
  /// `skew` biases which member of the working set is reused: 0 = uniform;
  /// larger values make member 0 hottest (geometric rank distribution).
  WorkingSetTraffic(const topo::KAryNCube& topology, std::int32_t set_size,
                    double p_in_set, sim::Rng seed_rng, double skew = 0.0);
  NodeId pick(NodeId src, sim::Rng& rng) override;
  const char* name() const noexcept override { return "working-set"; }
  const std::vector<NodeId>& working_set(NodeId src) const {
    return sets_.at(src);
  }
  void snap(snap::Archive& ar) override;

 private:
  const topo::KAryNCube& topology_;
  double p_in_set_;  // [snap: skip] config, fixed at construction
  double skew_;      // [snap: skip] config, fixed at construction
  std::vector<std::vector<NodeId>> sets_;
};

/// Factory over pattern names used by benches and examples:
/// uniform | hotspot | transpose | bit-reversal | bit-complement | tornado
/// | neighbor | working-set.
std::unique_ptr<TrafficPattern> make_traffic(const std::string& name,
                                             const topo::KAryNCube& topology,
                                             sim::Rng seed_rng);

}  // namespace wavesim::load
