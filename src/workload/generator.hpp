// Open-loop Bernoulli traffic generation and the warmup / measure / drain
// experiment harness used by every benchmark.
#pragma once

#include <memory>

#include "core/simulation.hpp"
#include "verify/watchdog.hpp"
#include "workload/size_dist.hpp"
#include "workload/traffic.hpp"

namespace wavesim::snap {
class Archive;
}  // namespace wavesim::snap

namespace wavesim::load {

/// Injects messages open-loop: every cycle, every node offers a message
/// with probability `offered_load / mean_length` so that the offered load
/// in flits per node per cycle matches the request.
class OpenLoopGenerator {
 public:
  OpenLoopGenerator(core::Simulation& sim, TrafficPattern& pattern,
                    SizeDist& sizes, double offered_flits_per_node_cycle,
                    sim::Rng rng);

  /// Offer this cycle's messages, then step the simulation once.
  void tick();

  /// Equivalent to `cycles` tick() calls (identical RNG draw order and
  /// message sequence), but offers the whole span up front via
  /// Network::schedule_send and advances the simulation with one run()
  /// call — the seam that lets a lookahead engine batch barriers.
  void run_batch(Cycle cycles);

  std::uint64_t offered_messages() const noexcept { return offered_; }
  double offered_load() const noexcept { return load_; }

  /// Serialize the generator's RNG stream and offered counter
  /// (snapshot/restore).
  void snap(snap::Archive& ar);

 private:
  core::Simulation& sim_;
  TrafficPattern& pattern_;
  SizeDist& sizes_;
  double load_;       // [snap: skip] config, fixed at construction
  double p_message_;  // [snap: skip] derived from config at construction
  sim::Rng rng_;
  std::uint64_t offered_ = 0;
};

/// One complete measurement: warm up, measure, then drain in-flight
/// traffic, reporting statistics over messages created during the
/// measurement window only.
struct ExperimentResult {
  core::SimulationStats stats;
  std::uint64_t offered_messages = 0;
  bool drained = true;  ///< false if the drain cap was hit (saturation)
  Cycle cycles_total = 0;
  /// Last progress-watchdog verdict (polled every 512 cycles throughout
  /// warmup, measurement, and drain).
  verify::Verdict watchdog_verdict = verify::Verdict::kIdle;
  Cycle max_stalled = 0;  ///< longest no-movement stretch observed
};

/// Resumable form of run_open_loop: the same warmup / measure / drain
/// state machine, but advanced in caller-chosen slices so the run can be
/// checkpointed between slices (src/snap) or preempted by a job scheduler
/// (src/service). Driving a fresh driver to completion — any slicing —
/// yields results bit-identical to run_open_loop: message sequence, RNG
/// draw order, and watchdog poll cycles are all slice-invariant.
class OpenLoopDriver {
 public:
  static constexpr Cycle kPollEvery = 512;  ///< watchdog poll period

  OpenLoopDriver(core::Simulation& sim, TrafficPattern& pattern,
                 SizeDist& sizes, double offered_load, Cycle warmup,
                 Cycle measure, Cycle drain_cap, std::uint64_t seed);

  /// Advance the run by at most `max_cycles` simulated cycles. Returns the
  /// cycles actually consumed (less than `max_cycles` only when the run
  /// completes). Phase transitions are eager: bookkeeping for a finished
  /// phase happens before returning, so a snapshot taken between slices is
  /// never ambiguous about which phase it is in.
  Cycle advance(Cycle max_cycles);

  bool done() const noexcept { return phase_ == Phase::kDone; }

  /// Valid once done(): the same result run_open_loop would return.
  const ExperimentResult& result() const;

  /// True exactly at the warmup/measure boundary (warmup finished, no
  /// measured cycle run yet) — the point sweeps warm-start from.
  bool at_measure_boundary() const noexcept {
    return phase_ == Phase::kMeasure && done_in_phase_ == 0;
  }

  /// Retarget the measurement window. Only legal at_measure_boundary():
  /// a warm-started sweep point restores a shared post-warmup snapshot
  /// and then measures for its own span.
  void rebind(Cycle measure, Cycle drain_cap);

  Cycle measurement_cut() const noexcept { return cut_; }

  /// Serialize driver progress (phase machine, counters, watchdog,
  /// generator RNG). The caller serializes the Simulation and the traffic
  /// pattern separately.
  void snap(snap::Archive& ar);

 private:
  enum class Phase : std::uint8_t {
    kWarmup = 0,
    kMeasure = 1,
    kDrain = 2,
    kDone = 3,
  };
  void poll();
  void next_phase();

  core::Simulation& sim_;
  verify::ProgressWatchdog watchdog_;
  OpenLoopGenerator gen_;
  Cycle warmup_;      // [snap: skip] config, fixed at construction
  Cycle measure_;     // [snap: skip] restored externally via rebind()
  Cycle drain_cap_;   // [snap: skip] restored externally via rebind()
  Phase phase_ = Phase::kWarmup;
  Cycle done_in_phase_ = 0;
  Cycle cut_ = 0;                ///< measurement window start
  std::uint64_t offered_before_ = 0;
  Cycle drain_deadline_ = 0;
  ExperimentResult result_;
};

ExperimentResult run_open_loop(core::Simulation& sim, TrafficPattern& pattern,
                               SizeDist& sizes, double offered_load,
                               Cycle warmup, Cycle measure, Cycle drain_cap,
                               std::uint64_t seed);

/// Binary-search the saturation throughput of a configuration: the
/// largest offered load (flits/node/cycle) the network sustains, where
/// "sustains" means the run drains within the cap, delivers every offered
/// message, and keeps mean latency within 5x the latency measured at the
/// low end of the bracket (the classic latency-blowup criterion). A fresh
/// Simulation is built from `config` for every probe point. Returns the
/// bracket midpoint once `hi - lo <= tolerance`.
struct SaturationSearch {
  double load = 0.0;            ///< estimated saturation load
  double latency_at_load = 0.0; ///< mean latency at the last stable point
  int points_probed = 0;
};
SaturationSearch find_saturation(const sim::SimConfig& config,
                                 const std::string& pattern_name,
                                 std::int32_t message_flits,
                                 double lo = 0.02, double hi = 1.0,
                                 double tolerance = 0.02,
                                 Cycle warmup = 1000, Cycle measure = 4000,
                                 std::uint64_t seed = 1);

}  // namespace wavesim::load
