// Open-loop Bernoulli traffic generation and the warmup / measure / drain
// experiment harness used by every benchmark.
#pragma once

#include <memory>

#include "core/simulation.hpp"
#include "verify/watchdog.hpp"
#include "workload/size_dist.hpp"
#include "workload/traffic.hpp"

namespace wavesim::load {

/// Injects messages open-loop: every cycle, every node offers a message
/// with probability `offered_load / mean_length` so that the offered load
/// in flits per node per cycle matches the request.
class OpenLoopGenerator {
 public:
  OpenLoopGenerator(core::Simulation& sim, TrafficPattern& pattern,
                    SizeDist& sizes, double offered_flits_per_node_cycle,
                    sim::Rng rng);

  /// Offer this cycle's messages, then step the simulation once.
  void tick();

  /// Equivalent to `cycles` tick() calls (identical RNG draw order and
  /// message sequence), but offers the whole span up front via
  /// Network::schedule_send and advances the simulation with one run()
  /// call — the seam that lets a lookahead engine batch barriers.
  void run_batch(Cycle cycles);

  std::uint64_t offered_messages() const noexcept { return offered_; }
  double offered_load() const noexcept { return load_; }

 private:
  core::Simulation& sim_;
  TrafficPattern& pattern_;
  SizeDist& sizes_;
  double load_;
  double p_message_;
  sim::Rng rng_;
  std::uint64_t offered_ = 0;
};

/// One complete measurement: warm up, measure, then drain in-flight
/// traffic, reporting statistics over messages created during the
/// measurement window only.
struct ExperimentResult {
  core::SimulationStats stats;
  std::uint64_t offered_messages = 0;
  bool drained = true;  ///< false if the drain cap was hit (saturation)
  Cycle cycles_total = 0;
  /// Last progress-watchdog verdict (polled every 512 cycles throughout
  /// warmup, measurement, and drain).
  verify::Verdict watchdog_verdict = verify::Verdict::kIdle;
  Cycle max_stalled = 0;  ///< longest no-movement stretch observed
};

ExperimentResult run_open_loop(core::Simulation& sim, TrafficPattern& pattern,
                               SizeDist& sizes, double offered_load,
                               Cycle warmup, Cycle measure, Cycle drain_cap,
                               std::uint64_t seed);

/// Binary-search the saturation throughput of a configuration: the
/// largest offered load (flits/node/cycle) the network sustains, where
/// "sustains" means the run drains within the cap, delivers every offered
/// message, and keeps mean latency within 5x the latency measured at the
/// low end of the bracket (the classic latency-blowup criterion). A fresh
/// Simulation is built from `config` for every probe point. Returns the
/// bracket midpoint once `hi - lo <= tolerance`.
struct SaturationSearch {
  double load = 0.0;            ///< estimated saturation load
  double latency_at_load = 0.0; ///< mean latency at the last stable point
  int points_probed = 0;
};
SaturationSearch find_saturation(const sim::SimConfig& config,
                                 const std::string& pattern_name,
                                 std::int32_t message_flits,
                                 double lo = 0.02, double hi = 1.0,
                                 double tolerance = 0.02,
                                 Cycle warmup = 1000, Cycle measure = 4000,
                                 std::uint64_t seed = 1);

}  // namespace wavesim::load
