#include "workload/size_dist.hpp"

#include <stdexcept>

namespace wavesim::load {

FixedSize::FixedSize(std::int32_t flits) : flits_(flits) {
  if (flits < 1) throw std::invalid_argument("FixedSize: flits < 1");
}

std::int32_t FixedSize::sample(sim::Rng& rng) {
  (void)rng;
  return flits_;
}

UniformSize::UniformSize(std::int32_t lo, std::int32_t hi) : lo_(lo), hi_(hi) {
  if (lo < 1 || hi < lo) throw std::invalid_argument("UniformSize: bad range");
}

std::int32_t UniformSize::sample(sim::Rng& rng) {
  return static_cast<std::int32_t>(rng.uniform_int(lo_, hi_));
}

BimodalSize::BimodalSize(std::int32_t short_flits, std::int32_t long_flits,
                         double p_long)
    : short_flits_(short_flits), long_flits_(long_flits), p_long_(p_long) {
  if (short_flits < 1 || long_flits < short_flits) {
    throw std::invalid_argument("BimodalSize: bad sizes");
  }
  if (p_long < 0.0 || p_long > 1.0) {
    throw std::invalid_argument("BimodalSize: p_long out of [0,1]");
  }
}

std::int32_t BimodalSize::sample(sim::Rng& rng) {
  return rng.chance(p_long_) ? long_flits_ : short_flits_;
}

double BimodalSize::mean() const noexcept {
  return p_long_ * long_flits_ + (1.0 - p_long_) * short_flits_;
}

}  // namespace wavesim::load
