#include "workload/generator.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "snap/archive.hpp"
#include "workload/traffic.hpp"

namespace wavesim::load {

OpenLoopGenerator::OpenLoopGenerator(core::Simulation& sim,
                                     TrafficPattern& pattern, SizeDist& sizes,
                                     double offered_flits_per_node_cycle,
                                     sim::Rng rng)
    : sim_(sim), pattern_(pattern), sizes_(sizes),
      load_(offered_flits_per_node_cycle),
      p_message_(offered_flits_per_node_cycle / sizes.mean()), rng_(rng) {
  if (load_ < 0.0) {
    throw std::invalid_argument("OpenLoopGenerator: negative load");
  }
  if (p_message_ > 1.0) {
    throw std::invalid_argument(
        "OpenLoopGenerator: load exceeds one message per node per cycle");
  }
}

void OpenLoopGenerator::tick() {
  const std::int32_t n = sim_.topology().num_nodes();
  for (NodeId src = 0; src < n; ++src) {
    if (!rng_.chance(p_message_)) continue;
    const NodeId dest = pattern_.pick(src, rng_);
    sim_.send(src, dest, sizes_.sample(rng_));
    ++offered_;
  }
  sim_.step();
}

void OpenLoopGenerator::run_batch(Cycle cycles) {
  const std::int32_t n = sim_.topology().num_nodes();
  core::Network& net = sim_.network();
  const Cycle base = sim_.now();
  // Cycle-major, node-minor: the exact draw order of tick() repeated
  // `cycles` times (the draws depend only on the generator's own RNG, so
  // pre-drawing cannot diverge from interleaved drawing).
  for (Cycle j = 0; j < cycles; ++j) {
    for (NodeId src = 0; src < n; ++src) {
      if (!rng_.chance(p_message_)) continue;
      const NodeId dest = pattern_.pick(src, rng_);
      net.schedule_send(src, dest, sizes_.sample(rng_), base + j);
      ++offered_;
    }
  }
  sim_.run(cycles);
}

void OpenLoopGenerator::snap(snap::Archive& ar) {
  rng_.snap(ar);
  ar.pod(offered_);
}

OpenLoopDriver::OpenLoopDriver(core::Simulation& sim, TrafficPattern& pattern,
                               SizeDist& sizes, double offered_load,
                               Cycle warmup, Cycle measure, Cycle drain_cap,
                               std::uint64_t seed)
    // The watchdog is read-only: polling it does not perturb the run, so
    // results stay bit-identical to a run without it.
    : sim_(sim), watchdog_(sim.network(), 20'000),
      gen_(sim, pattern, sizes, offered_load, sim::Rng{seed}),
      warmup_(warmup), measure_(measure), drain_cap_(drain_cap) {}

void OpenLoopDriver::poll() {
  result_.watchdog_verdict = watchdog_.poll();
  result_.max_stalled = std::max(result_.max_stalled, watchdog_.stalled_for());
}

void OpenLoopDriver::next_phase() {
  switch (phase_) {
    case Phase::kWarmup:
      cut_ = sim_.now();
      offered_before_ = gen_.offered_messages();
      phase_ = Phase::kMeasure;
      break;
    case Phase::kMeasure:
      result_.offered_messages = gen_.offered_messages() - offered_before_;
      drain_deadline_ = sim_.now() + drain_cap_;
      phase_ = Phase::kDrain;
      break;
    case Phase::kDrain:
      poll();
      result_.stats = sim_.stats(cut_);
      result_.cycles_total = sim_.now();
      phase_ = Phase::kDone;
      break;
    case Phase::kDone:
      break;
  }
  done_in_phase_ = 0;
}

Cycle OpenLoopDriver::advance(Cycle max_cycles) {
  Cycle used = 0;
  while (phase_ != Phase::kDone) {
    if (phase_ == Phase::kWarmup || phase_ == Phase::kMeasure) {
      const Cycle total = phase_ == Phase::kWarmup ? warmup_ : measure_;
      if (done_in_phase_ >= total) {
        next_phase();
        continue;
      }
      if (used >= max_cycles) break;
      // Batched driving: spans between watchdog polls go to the generator
      // in one run_batch each (identical message sequence to per-cycle
      // ticks, but a lookahead engine can batch barriers inside a span).
      // Polls land at phase-local multiples of kPollEvery no matter how
      // the caller slices advance() calls.
      const Cycle span =
          std::min({kPollEvery - done_in_phase_ % kPollEvery,
                    total - done_in_phase_, max_cycles - used});
      gen_.run_batch(span);
      done_in_phase_ += span;
      used += span;
      if (done_in_phase_ % kPollEvery == 0) poll();
    } else {  // Phase::kDrain
      // Drain: same stepping as Simulation::run_until_delivered, with
      // periodic watchdog polls folded in.
      if (sim_.network().quiescent()) {
        next_phase();
        continue;
      }
      if (sim_.now() >= drain_deadline_) {
        result_.drained = false;
        next_phase();
        continue;
      }
      if (used >= max_cycles) break;
      sim_.step();
      ++done_in_phase_;
      ++used;
      if (sim_.now() % kPollEvery == 0) poll();
    }
  }
  return used;
}

const ExperimentResult& OpenLoopDriver::result() const {
  if (phase_ != Phase::kDone) {
    throw std::logic_error("OpenLoopDriver: result() before done()");
  }
  return result_;
}

void OpenLoopDriver::rebind(Cycle measure, Cycle drain_cap) {
  if (!at_measure_boundary()) {
    throw std::logic_error(
        "OpenLoopDriver: rebind() away from the measure boundary");
  }
  measure_ = measure;
  drain_cap_ = drain_cap;
}

void OpenLoopDriver::snap(snap::Archive& ar) {
  watchdog_.snap(ar);
  gen_.snap(ar);
  ar.pod(phase_);
  ar.pod(done_in_phase_);
  ar.pod(cut_);
  ar.pod(offered_before_);
  ar.pod(drain_deadline_);
  ar.pod(result_.offered_messages);
  ar.pod(result_.drained);
  ar.pod(result_.watchdog_verdict);
  ar.pod(result_.max_stalled);
  // Aggregate stats are a pure function of the serialized message log,
  // so a snapshot of a finished run carries them by recomputation, not
  // by value. (Mid-run snapshots recompute them at the drain -> done
  // transition anyway.)
  if (ar.reading() && phase_ == Phase::kDone) {
    result_.stats = sim_.stats(cut_);
    result_.cycles_total = sim_.now();
  }
}

ExperimentResult run_open_loop(core::Simulation& sim, TrafficPattern& pattern,
                               SizeDist& sizes, double offered_load,
                               Cycle warmup, Cycle measure, Cycle drain_cap,
                               std::uint64_t seed) {
  OpenLoopDriver driver(sim, pattern, sizes, offered_load, warmup, measure,
                        drain_cap, seed);
  while (!driver.done()) {
    driver.advance(std::numeric_limits<Cycle>::max());
  }
  return driver.result();
}

SaturationSearch find_saturation(const sim::SimConfig& config,
                                 const std::string& pattern_name,
                                 std::int32_t message_flits, double lo,
                                 double hi, double tolerance, Cycle warmup,
                                 Cycle measure, std::uint64_t seed) {
  if (!(lo > 0.0) || !(hi > lo) || !(tolerance > 0.0)) {
    throw std::invalid_argument("find_saturation: bad bracket");
  }
  SaturationSearch out;
  double reference_latency = 0.0;
  auto probe = [&](double load) {
    core::Simulation sim(config);
    auto pattern = make_traffic(pattern_name, sim.topology(),
                                sim::Rng{seed * 131 + 7});
    FixedSize sizes(message_flits);
    const Cycle drain_cap = 20 * (warmup + measure);
    ++out.points_probed;
    return run_open_loop(sim, *pattern, sizes, load, warmup, measure,
                         drain_cap, seed);
  };
  auto stable_at = [&](double load) {
    const auto r = probe(load);
    if (!r.drained) return false;
    if (r.stats.messages_delivered < r.offered_messages) return false;
    // Latency-blowup criterion: past saturation, queueing delay explodes
    // relative to the uncongested reference.
    const bool keeps_up = r.stats.latency_mean <= 5.0 * reference_latency;
    if (keeps_up) out.latency_at_load = r.stats.latency_mean;
    return keeps_up;
  };
  // Reference point: the bracket's low end must itself be sustainable.
  const auto ref = probe(lo);
  if (!ref.drained || ref.stats.messages_delivered < ref.offered_messages) {
    out.load = lo;
    return out;
  }
  reference_latency = ref.stats.latency_mean;
  out.latency_at_load = reference_latency;
  if (stable_at(hi)) {
    out.load = hi;
    return out;
  }
  while (hi - lo > tolerance) {
    const double mid = 0.5 * (lo + hi);
    if (stable_at(mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  out.load = 0.5 * (lo + hi);
  return out;
}

}  // namespace wavesim::load
