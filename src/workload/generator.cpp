#include "workload/generator.hpp"

#include <algorithm>
#include <stdexcept>

#include "workload/traffic.hpp"

namespace wavesim::load {

OpenLoopGenerator::OpenLoopGenerator(core::Simulation& sim,
                                     TrafficPattern& pattern, SizeDist& sizes,
                                     double offered_flits_per_node_cycle,
                                     sim::Rng rng)
    : sim_(sim), pattern_(pattern), sizes_(sizes),
      load_(offered_flits_per_node_cycle),
      p_message_(offered_flits_per_node_cycle / sizes.mean()), rng_(rng) {
  if (load_ < 0.0) {
    throw std::invalid_argument("OpenLoopGenerator: negative load");
  }
  if (p_message_ > 1.0) {
    throw std::invalid_argument(
        "OpenLoopGenerator: load exceeds one message per node per cycle");
  }
}

void OpenLoopGenerator::tick() {
  const std::int32_t n = sim_.topology().num_nodes();
  for (NodeId src = 0; src < n; ++src) {
    if (!rng_.chance(p_message_)) continue;
    const NodeId dest = pattern_.pick(src, rng_);
    sim_.send(src, dest, sizes_.sample(rng_));
    ++offered_;
  }
  sim_.step();
}

void OpenLoopGenerator::run_batch(Cycle cycles) {
  const std::int32_t n = sim_.topology().num_nodes();
  core::Network& net = sim_.network();
  const Cycle base = sim_.now();
  // Cycle-major, node-minor: the exact draw order of tick() repeated
  // `cycles` times (the draws depend only on the generator's own RNG, so
  // pre-drawing cannot diverge from interleaved drawing).
  for (Cycle j = 0; j < cycles; ++j) {
    for (NodeId src = 0; src < n; ++src) {
      if (!rng_.chance(p_message_)) continue;
      const NodeId dest = pattern_.pick(src, rng_);
      net.schedule_send(src, dest, sizes_.sample(rng_), base + j);
      ++offered_;
    }
  }
  sim_.run(cycles);
}

ExperimentResult run_open_loop(core::Simulation& sim, TrafficPattern& pattern,
                               SizeDist& sizes, double offered_load,
                               Cycle warmup, Cycle measure, Cycle drain_cap,
                               std::uint64_t seed) {
  // The watchdog is read-only: polling it does not perturb the run, so
  // results stay bit-identical to a run without it.
  constexpr Cycle kPollEvery = 512;
  verify::ProgressWatchdog watchdog(sim.network(), 20'000);
  ExperimentResult result;
  auto poll = [&] {
    result.watchdog_verdict = watchdog.poll();
    result.max_stalled = std::max(result.max_stalled, watchdog.stalled_for());
  };

  OpenLoopGenerator gen(sim, pattern, sizes, offered_load, sim::Rng{seed});
  // Batched driving: spans between watchdog polls go to the generator in
  // one run_batch each (identical message sequence to per-cycle ticks,
  // but a lookahead engine can batch barriers inside a span).
  auto drive = [&](Cycle total) {
    Cycle done = 0;
    while (done < total) {
      const Cycle span =
          std::min<Cycle>(kPollEvery - done % kPollEvery, total - done);
      gen.run_batch(span);
      done += span;
      if (done % kPollEvery == 0) poll();
    }
  };
  drive(warmup);
  const Cycle cut = sim.now();
  const std::uint64_t offered_before = gen.offered_messages();
  drive(measure);

  result.offered_messages = gen.offered_messages() - offered_before;
  // Drain: same stepping as Simulation::run_until_delivered, with
  // periodic watchdog polls folded in.
  const Cycle deadline = sim.now() + drain_cap;
  result.drained = true;
  while (!sim.network().quiescent()) {
    if (sim.now() >= deadline) {
      result.drained = false;
      break;
    }
    sim.step();
    if (sim.now() % kPollEvery == 0) poll();
  }
  poll();
  result.stats = sim.stats(cut);
  result.cycles_total = sim.now();
  return result;
}

SaturationSearch find_saturation(const sim::SimConfig& config,
                                 const std::string& pattern_name,
                                 std::int32_t message_flits, double lo,
                                 double hi, double tolerance, Cycle warmup,
                                 Cycle measure, std::uint64_t seed) {
  if (!(lo > 0.0) || !(hi > lo) || !(tolerance > 0.0)) {
    throw std::invalid_argument("find_saturation: bad bracket");
  }
  SaturationSearch out;
  double reference_latency = 0.0;
  auto probe = [&](double load) {
    core::Simulation sim(config);
    auto pattern = make_traffic(pattern_name, sim.topology(),
                                sim::Rng{seed * 131 + 7});
    FixedSize sizes(message_flits);
    const Cycle drain_cap = 20 * (warmup + measure);
    ++out.points_probed;
    return run_open_loop(sim, *pattern, sizes, load, warmup, measure,
                         drain_cap, seed);
  };
  auto stable_at = [&](double load) {
    const auto r = probe(load);
    if (!r.drained) return false;
    if (r.stats.messages_delivered < r.offered_messages) return false;
    // Latency-blowup criterion: past saturation, queueing delay explodes
    // relative to the uncongested reference.
    const bool keeps_up = r.stats.latency_mean <= 5.0 * reference_latency;
    if (keeps_up) out.latency_at_load = r.stats.latency_mean;
    return keeps_up;
  };
  // Reference point: the bracket's low end must itself be sustainable.
  const auto ref = probe(lo);
  if (!ref.drained || ref.stats.messages_delivered < ref.offered_messages) {
    out.load = lo;
    return out;
  }
  reference_latency = ref.stats.latency_mean;
  out.latency_at_load = reference_latency;
  if (stable_at(hi)) {
    out.load = hi;
    return out;
  }
  while (hi - lo > tolerance) {
    const double mid = 0.5 * (lo + hi);
    if (stable_at(mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  out.load = 0.5 * (lo + hi);
  return out;
}

}  // namespace wavesim::load
