// Application traces: timed sequences of sends and (for CARP) explicit
// circuit establish/release instructions -- the role the paper assigns to
// "the programmer and/or the compiler".
#pragma once

#include <cstdint>
#include <vector>

#include "core/simulation.hpp"
#include "sim/types.hpp"
#include "topology/topology.hpp"

namespace wavesim::load {

enum class TraceOp : std::uint8_t { kSend, kEstablish, kRelease };

struct TraceEvent {
  Cycle at = 0;  ///< earliest cycle to issue (relative to replay start)
  TraceOp op = TraceOp::kSend;
  NodeId src = kInvalidNode;
  NodeId dest = kInvalidNode;
  std::int32_t length = 0;  ///< flits, kSend only
};

/// An ordered-by-time event list.
class Trace {
 public:
  void add(TraceEvent event);
  void send(Cycle at, NodeId src, NodeId dest, std::int32_t length) {
    add(TraceEvent{at, TraceOp::kSend, src, dest, length});
  }
  void establish(Cycle at, NodeId src, NodeId dest) {
    add(TraceEvent{at, TraceOp::kEstablish, src, dest, 0});
  }
  void release(Cycle at, NodeId src, NodeId dest) {
    add(TraceEvent{at, TraceOp::kRelease, src, dest, 0});
  }

  const std::vector<TraceEvent>& events() const noexcept { return events_; }
  std::size_t size() const noexcept { return events_.size(); }
  Cycle horizon() const noexcept;  ///< timestamp of the last event

  /// Drop establish/release events (to replay the same workload under
  /// CLRP or plain wormhole switching for comparison).
  Trace without_circuit_ops() const;

 private:
  std::vector<TraceEvent> events_;  // kept sorted by `at` (stable)
};

/// Issue the trace against a simulation, then drain. Returns false if the
/// drain cap was hit.
bool replay(const Trace& trace, core::Simulation& sim,
            Cycle drain_cap = 1'000'000);

/// Capture the send sequence of a finished run as a replayable trace
/// (timestamps are the original submission cycles). Circuit ops are not
/// captured -- replaying under a different protocol is the typical use.
Trace capture(const core::MessageLog& log);

/// Plain-text trace files, one event per line:
///   <cycle> send <src> <dest> <flits>
///   <cycle> establish <src> <dest>
///   <cycle> release <src> <dest>
/// Lines starting with '#' and blank lines are ignored on load.
void save_trace(const Trace& trace, const std::string& path);
Trace load_trace(const std::string& path);  ///< throws on malformed input

// -- synthetic applications ------------------------------------------------

/// 5-point stencil (2-D): `iterations` rounds; per round every node sends
/// one `halo_flits` message to each of its 4 neighbors. With CARP, circuits
/// are established before round 0 and released after the last round.
Trace make_stencil_trace(const topo::KAryNCube& topology,
                         std::int32_t iterations, std::int32_t halo_flits,
                         Cycle cycles_per_iteration, bool carp_circuits);

/// Master/worker: workers request (short message to master), master
/// responds with a `chunk_flits` message; `rounds` rounds. With CARP the
/// master pre-establishes circuits to every worker.
Trace make_master_worker_trace(const topo::KAryNCube& topology, NodeId master,
                               std::int32_t rounds, std::int32_t request_flits,
                               std::int32_t chunk_flits, Cycle cycles_per_round,
                               bool carp_circuits);

}  // namespace wavesim::load
