#include "workload/traffic.hpp"

#include <algorithm>
#include <stdexcept>

#include "snap/archive.hpp"

namespace wavesim::load {

namespace {

NodeId uniform_not_self(const topo::KAryNCube& topology, NodeId src,
                        sim::Rng& rng) {
  NodeId d = static_cast<NodeId>(rng.next_below(topology.num_nodes()));
  while (d == src) {
    d = static_cast<NodeId>(rng.next_below(topology.num_nodes()));
  }
  return d;
}

std::int32_t log2_exact(std::int32_t n) {
  std::int32_t bits = 0;
  while ((1 << bits) < n) ++bits;
  if ((1 << bits) != n) {
    throw std::invalid_argument("pattern requires power-of-two node count");
  }
  return bits;
}

}  // namespace

UniformTraffic::UniformTraffic(const topo::KAryNCube& topology)
    : topology_(topology) {}

NodeId UniformTraffic::pick(NodeId src, sim::Rng& rng) {
  return uniform_not_self(topology_, src, rng);
}

HotspotTraffic::HotspotTraffic(const topo::KAryNCube& topology, NodeId hot,
                               double hot_fraction)
    : topology_(topology), hot_(hot), hot_fraction_(hot_fraction) {
  if (hot < 0 || hot >= topology.num_nodes()) {
    throw std::invalid_argument("HotspotTraffic: hot node out of range");
  }
  if (hot_fraction < 0.0 || hot_fraction > 1.0) {
    throw std::invalid_argument("HotspotTraffic: fraction out of [0,1]");
  }
}

NodeId HotspotTraffic::pick(NodeId src, sim::Rng& rng) {
  if (src != hot_ && rng.chance(hot_fraction_)) return hot_;
  return uniform_not_self(topology_, src, rng);
}

TransposeTraffic::TransposeTraffic(const topo::KAryNCube& topology)
    : topology_(topology) {
  for (std::int32_t d = 1; d < topology.num_dims(); ++d) {
    if (topology.radix(d) != topology.radix(0)) {
      throw std::invalid_argument("TransposeTraffic: radices must match");
    }
  }
}

NodeId TransposeTraffic::pick(NodeId src, sim::Rng& rng) {
  const auto& c = topology_.coord_of(src);
  topo::Coord t(c.size());
  for (std::size_t d = 0; d < c.size(); ++d) {
    t[d] = c[(d + 1) % c.size()];
  }
  const NodeId dest = topology_.node_of(t);
  // Diagonal nodes map to themselves; fall back to uniform for them.
  return dest == src ? uniform_not_self(topology_, src, rng) : dest;
}

BitReversalTraffic::BitReversalTraffic(const topo::KAryNCube& topology)
    : topology_(topology), bits_(log2_exact(topology.num_nodes())) {}

NodeId BitReversalTraffic::pick(NodeId src, sim::Rng& rng) {
  NodeId dest = 0;
  for (std::int32_t b = 0; b < bits_; ++b) {
    if ((src >> b) & 1) dest |= 1 << (bits_ - 1 - b);
  }
  return dest == src ? uniform_not_self(topology_, src, rng) : dest;
}

BitComplementTraffic::BitComplementTraffic(const topo::KAryNCube& topology)
    : topology_(topology) {
  log2_exact(topology.num_nodes());
}

NodeId BitComplementTraffic::pick(NodeId src, sim::Rng& rng) {
  (void)rng;
  return src ^ (topology_.num_nodes() - 1);  // never equals src
}

TornadoTraffic::TornadoTraffic(const topo::KAryNCube& topology)
    : topology_(topology) {}

NodeId TornadoTraffic::pick(NodeId src, sim::Rng& rng) {
  topo::Coord c = topology_.coord_of(src);
  for (std::int32_t d = 0; d < topology_.num_dims(); ++d) {
    const std::int32_t r = topology_.radix(d);
    c[d] = (c[d] + (r / 2 - (r % 2 == 0 ? 1 : 0))) % r;  // ~half-way around
  }
  const NodeId dest = topology_.node_of(c);
  return dest == src ? uniform_not_self(topology_, src, rng) : dest;
}

NeighborTraffic::NeighborTraffic(const topo::KAryNCube& topology)
    : topology_(topology) {}

NodeId NeighborTraffic::pick(NodeId src, sim::Rng& rng) {
  for (int attempt = 0; attempt < 16; ++attempt) {
    const PortId p = static_cast<PortId>(rng.next_below(topology_.num_ports()));
    const NodeId d = topology_.neighbor(src, p);
    if (d != kInvalidNode && d != src) return d;
  }
  return uniform_not_self(topology_, src, rng);
}

WorkingSetTraffic::WorkingSetTraffic(const topo::KAryNCube& topology,
                                     std::int32_t set_size, double p_in_set,
                                     sim::Rng seed_rng, double skew)
    : topology_(topology), p_in_set_(p_in_set), skew_(skew) {
  if (set_size < 1) {
    throw std::invalid_argument("WorkingSetTraffic: set_size < 1");
  }
  if (p_in_set < 0.0 || p_in_set > 1.0) {
    throw std::invalid_argument("WorkingSetTraffic: p_in_set out of [0,1]");
  }
  if (skew < 0.0 || skew >= 1.0) {
    throw std::invalid_argument("WorkingSetTraffic: skew out of [0,1)");
  }
  sets_.resize(topology.num_nodes());
  for (NodeId src = 0; src < topology.num_nodes(); ++src) {
    auto& set = sets_[src];
    while (static_cast<std::int32_t>(set.size()) < set_size) {
      const NodeId d = uniform_not_self(topology, src, seed_rng);
      if (std::find(set.begin(), set.end(), d) == set.end()) {
        set.push_back(d);
      }
      if (static_cast<std::int32_t>(set.size()) >= topology.num_nodes() - 1) {
        break;
      }
    }
  }
}

NodeId WorkingSetTraffic::pick(NodeId src, sim::Rng& rng) {
  auto& set = sets_[src];
  if (rng.chance(p_in_set_)) {
    if (skew_ <= 0.0) return set[rng.next_below(set.size())];
    const auto rank = rng.geometric(skew_, set.size() - 1);
    return set[rank];
  }
  const NodeId fresh = uniform_not_self(topology_, src, rng);
  // Replace a cold member (the tail of the rank order) so hot members
  // survive under skewed reuse.
  const std::size_t victim =
      skew_ > 0.0 ? set.size() - 1 - rng.next_below((set.size() + 1) / 2)
                  : rng.next_below(set.size());
  set[victim] = fresh;
  return fresh;
}

std::unique_ptr<TrafficPattern> make_traffic(const std::string& name,
                                             const topo::KAryNCube& topology,
                                             sim::Rng seed_rng) {
  if (name == "uniform") return std::make_unique<UniformTraffic>(topology);
  if (name == "hotspot") {
    return std::make_unique<HotspotTraffic>(topology,
                                            topology.num_nodes() / 2, 0.2);
  }
  if (name == "transpose") return std::make_unique<TransposeTraffic>(topology);
  if (name == "bit-reversal") {
    return std::make_unique<BitReversalTraffic>(topology);
  }
  if (name == "bit-complement") {
    return std::make_unique<BitComplementTraffic>(topology);
  }
  if (name == "tornado") return std::make_unique<TornadoTraffic>(topology);
  if (name == "neighbor") return std::make_unique<NeighborTraffic>(topology);
  if (name == "working-set") {
    return std::make_unique<WorkingSetTraffic>(topology, 4, 0.8, seed_rng);
  }
  throw std::invalid_argument("make_traffic: unknown pattern '" + name + "'");
}

void WorkingSetTraffic::snap(snap::Archive& ar) {
  ar.vec(sets_, [](snap::Archive& a, std::vector<NodeId>& set) {
    a.vec_pod(set);
  });
}

}  // namespace wavesim::load
