#include "workload/trace.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace wavesim::load {

void Trace::add(TraceEvent event) {
  if (event.op == TraceOp::kSend && event.length < 1) {
    throw std::invalid_argument("Trace: send with length < 1");
  }
  events_.push_back(event);
  std::stable_sort(events_.begin(), events_.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.at < b.at;
                   });
}

Cycle Trace::horizon() const noexcept {
  return events_.empty() ? 0 : events_.back().at;
}

Trace Trace::without_circuit_ops() const {
  Trace out;
  for (const auto& e : events_) {
    if (e.op == TraceOp::kSend) out.add(e);
  }
  return out;
}

bool replay(const Trace& trace, core::Simulation& sim, Cycle drain_cap) {
  const Cycle start = sim.now();
  std::size_t next = 0;
  while (next < trace.events().size()) {
    const Cycle rel = sim.now() - start;
    while (next < trace.events().size() &&
           trace.events()[next].at <= rel) {
      const TraceEvent& e = trace.events()[next++];
      switch (e.op) {
        case TraceOp::kSend:
          sim.send(e.src, e.dest, e.length);
          break;
        case TraceOp::kEstablish:
          sim.establish_circuit(e.src, e.dest);
          break;
        case TraceOp::kRelease:
          sim.release_circuit(e.src, e.dest);
          break;
      }
    }
    sim.step();
  }
  return sim.run_until_delivered(drain_cap);
}

Trace capture(const core::MessageLog& log) {
  Trace out;
  for (const auto& rec : log.all()) {
    out.send(rec.created, rec.src, rec.dest, rec.length);
  }
  return out;
}

void save_trace(const Trace& trace, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_trace: cannot open " + path);
  out << "# wavesim trace: <cycle> <op> <src> <dest> [flits]\n";
  for (const auto& e : trace.events()) {
    out << e.at << ' ';
    switch (e.op) {
      case TraceOp::kSend:
        out << "send " << e.src << ' ' << e.dest << ' ' << e.length;
        break;
      case TraceOp::kEstablish:
        out << "establish " << e.src << ' ' << e.dest;
        break;
      case TraceOp::kRelease:
        out << "release " << e.src << ' ' << e.dest;
        break;
    }
    out << '\n';
  }
  if (!out) throw std::runtime_error("save_trace: write failed for " + path);
}

Trace load_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_trace: cannot open " + path);
  Trace trace;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line.front() == '#') continue;
    std::istringstream fields(line);
    Cycle at = 0;
    std::string op;
    NodeId src = kInvalidNode;
    NodeId dest = kInvalidNode;
    if (!(fields >> at >> op >> src >> dest)) {
      throw std::runtime_error("load_trace: malformed line " +
                               std::to_string(line_no) + " in " + path);
    }
    if (op == "send") {
      std::int32_t flits = 0;
      if (!(fields >> flits)) {
        throw std::runtime_error("load_trace: send without length at line " +
                                 std::to_string(line_no));
      }
      trace.send(at, src, dest, flits);
    } else if (op == "establish") {
      trace.establish(at, src, dest);
    } else if (op == "release") {
      trace.release(at, src, dest);
    } else {
      throw std::runtime_error("load_trace: unknown op '" + op +
                               "' at line " + std::to_string(line_no));
    }
  }
  return trace;
}

Trace make_stencil_trace(const topo::KAryNCube& topology,
                         std::int32_t iterations, std::int32_t halo_flits,
                         Cycle cycles_per_iteration, bool carp_circuits) {
  if (topology.num_dims() != 2) {
    throw std::invalid_argument("stencil trace requires a 2-D topology");
  }
  Trace trace;
  const std::int32_t n = topology.num_nodes();
  if (carp_circuits) {
    for (NodeId src = 0; src < n; ++src) {
      for (PortId p = 0; p < topology.num_ports(); ++p) {
        const NodeId d = topology.neighbor(src, p);
        if (d != kInvalidNode && d != src) trace.establish(0, src, d);
      }
    }
  }
  // Leave the prefetch window before the first round.
  const Cycle first_round = carp_circuits ? cycles_per_iteration : 0;
  for (std::int32_t it = 0; it < iterations; ++it) {
    const Cycle at = first_round + it * cycles_per_iteration;
    for (NodeId src = 0; src < n; ++src) {
      for (PortId p = 0; p < topology.num_ports(); ++p) {
        const NodeId d = topology.neighbor(src, p);
        if (d != kInvalidNode && d != src) trace.send(at, src, d, halo_flits);
      }
    }
  }
  if (carp_circuits) {
    const Cycle end = first_round + iterations * cycles_per_iteration;
    for (NodeId src = 0; src < n; ++src) {
      for (PortId p = 0; p < topology.num_ports(); ++p) {
        const NodeId d = topology.neighbor(src, p);
        if (d != kInvalidNode && d != src) trace.release(end, src, d);
      }
    }
  }
  return trace;
}

Trace make_master_worker_trace(const topo::KAryNCube& topology, NodeId master,
                               std::int32_t rounds, std::int32_t request_flits,
                               std::int32_t chunk_flits,
                               Cycle cycles_per_round, bool carp_circuits) {
  Trace trace;
  const std::int32_t n = topology.num_nodes();
  if (master < 0 || master >= n) {
    throw std::invalid_argument("master out of range");
  }
  if (carp_circuits) {
    for (NodeId w = 0; w < n; ++w) {
      if (w != master) trace.establish(0, master, w);
    }
  }
  const Cycle first = carp_circuits ? cycles_per_round : 0;
  for (std::int32_t r = 0; r < rounds; ++r) {
    const Cycle at = first + r * cycles_per_round;
    for (NodeId w = 0; w < n; ++w) {
      if (w == master) continue;
      trace.send(at, w, master, request_flits);
      trace.send(at + cycles_per_round / 2, master, w, chunk_flits);
    }
  }
  if (carp_circuits) {
    const Cycle end = first + rounds * cycles_per_round;
    for (NodeId w = 0; w < n; ++w) {
      if (w != master) trace.release(end, master, w);
    }
  }
  return trace;
}

}  // namespace wavesim::load
