// Message-length distributions (flits).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "sim/rng.hpp"

namespace wavesim::load {

class SizeDist {
 public:
  virtual ~SizeDist() = default;
  virtual std::int32_t sample(sim::Rng& rng) = 0;
  /// Expected value (used to convert flit-rate to message-rate).
  virtual double mean() const noexcept = 0;
  virtual const char* name() const noexcept = 0;
};

class FixedSize final : public SizeDist {
 public:
  explicit FixedSize(std::int32_t flits);
  std::int32_t sample(sim::Rng& rng) override;
  double mean() const noexcept override { return flits_; }
  const char* name() const noexcept override { return "fixed"; }

 private:
  std::int32_t flits_;
};

/// Uniform integer in [lo, hi].
class UniformSize final : public SizeDist {
 public:
  UniformSize(std::int32_t lo, std::int32_t hi);
  std::int32_t sample(sim::Rng& rng) override;
  double mean() const noexcept override { return 0.5 * (lo_ + hi_); }
  const char* name() const noexcept override { return "uniform"; }

 private:
  std::int32_t lo_;
  std::int32_t hi_;
};

/// Short control messages with probability 1-p_long, long data messages
/// otherwise -- the DSM mix the paper's introduction motivates.
class BimodalSize final : public SizeDist {
 public:
  BimodalSize(std::int32_t short_flits, std::int32_t long_flits,
              double p_long);
  std::int32_t sample(sim::Rng& rng) override;
  double mean() const noexcept override;
  const char* name() const noexcept override { return "bimodal"; }

 private:
  std::int32_t short_flits_;
  std::int32_t long_flits_;
  double p_long_;
};

}  // namespace wavesim::load
