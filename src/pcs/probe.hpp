// Probe and control-flit formats for pipelined circuit switching
// (paper Fig. 4 plus the teardown / ack / release-request control flits
// described in sections 2 and 3).
#pragma once

#include "sim/types.hpp"

namespace wavesim::pcs {

/// Routing probe (paper Fig. 4). The paper encodes per-dimension offsets;
/// we carry (src, dest) and recompute offsets at each node, which is
/// informationally identical on a k-ary n-cube.
struct Probe {
  ProbeId id = kInvalidProbe;
  CircuitId circuit = kInvalidCircuit;  ///< circuit being established
  NodeId src = kInvalidNode;
  NodeId dest = kInvalidNode;
  /// Header bit of Fig. 4 is implied by ControlFlit::kind == kProbe.
  bool backtrack = false;     ///< progressing or backtracking
  std::int32_t misroutes = 0; ///< misrouting operations on the current path
  bool force = false;         ///< CLRP phase-2: tear down established circuits
  std::int32_t switch_index = 0;  ///< which wave switch S_{i+1} is searched
};

enum class ControlKind : std::uint8_t {
  kProbe,           ///< path search (forward or backtracking)
  kAck,             ///< path-setup acknowledgment, travels dest -> src
  kTeardown,        ///< circuit release, travels src -> dest
  kReleaseRequest,  ///< ask a circuit's source to release it, travels
                    ///< toward the source over the reverse control path
};

const char* to_string(ControlKind kind) noexcept;

/// One flit on a control channel. Control channels are single-flit VCs of
/// the S0 physical channels, so at most one ControlFlit occupies a given
/// control channel at a time.
struct ControlFlit {
  ControlKind kind = ControlKind::kProbe;
  Probe probe;                           ///< valid when kind == kProbe
  CircuitId circuit = kInvalidCircuit;   ///< subject circuit (ack/teardown/release)
  std::int32_t switch_index = 0;         ///< wave switch the circuit lives on
};

}  // namespace wavesim::pcs
