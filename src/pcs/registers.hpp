// Status registers of the PCS routing control unit (paper Fig. 3).
//
// For every wave switch S_i and every node, the unit tracks per output
// channel: free/reserved/busy/faulty status (a control channel and its
// paired data channel are reserved together, so a single status covers the
// pair), the direct and reverse mappings between input and output channels
// of the circuits/probes crossing the node, and the Ack-Returned bit.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/types.hpp"
#include "topology/topology.hpp"

namespace wavesim::snap {
class Archive;
}  // namespace wavesim::snap

namespace wavesim::pcs {

/// Pseudo-port used in mappings for circuits that start (input side) or
/// terminate (output side) at this node.
inline constexpr PortId kLocalEndpoint = -2;

enum class ChannelStatus : std::uint8_t {
  kFree,
  kReservedByProbe,  ///< a probe holds the pair while searching
  kBusyCircuit,      ///< an established (or establishing-won) circuit owns it
  kFaulty,           ///< static fault; never selectable
};

const char* to_string(ChannelStatus status) noexcept;

/// Registers of one (node, wave switch) pair.
class SwitchRegisters {
 public:
  explicit SwitchRegisters(std::int32_t num_ports);

  std::int32_t num_ports() const noexcept {
    return static_cast<std::int32_t>(out_.size());
  }

  // Hot-path queries (probe stepping reads these per port per cycle);
  // inline, with the vector's own bounds check.
  ChannelStatus status(PortId out_port) const { return out_.at(out_port).status; }
  ProbeId reserving_probe(PortId out_port) const { return out_.at(out_port).probe; }
  CircuitId owning_circuit(PortId out_port) const {
    return out_.at(out_port).circuit;
  }
  bool ack_returned(PortId out_port) const {
    return out_.at(out_port).ack_returned;
  }

  /// Reserve the (control, data) channel pair for a searching probe.
  void reserve(PortId out_port, ProbeId probe, PortId in_port);
  /// Probe backtracked: release the reservation.
  void release_reservation(PortId out_port);
  /// Probe succeeded: the pair now belongs to `circuit` (still awaiting ack).
  void commit(PortId out_port, CircuitId circuit);
  /// Ack passed through on its way back to the source.
  void mark_ack_returned(PortId out_port);
  /// Teardown: the pair is free again.
  void release_circuit(PortId out_port);
  void mark_faulty(PortId out_port);
  /// Link recovery (dynamic faults): the channel pair is selectable again.
  void clear_faulty(PortId out_port);

  /// Mapping queries (paper: Direct / Reverse Channel Mappings). Input and
  /// output are ports of this node; kLocalEndpoint marks circuit ends.
  PortId direct_map(PortId in_port) const;   ///< in  -> out
  PortId reverse_map(PortId out_port) const; ///< out -> in

  /// Count of channels in each status (diagnostics / tests).
  std::int32_t count(ChannelStatus status) const;

  /// Serialize every output channel's registers (snapshot/restore).
  void snap(snap::Archive& ar);

 private:
  struct OutChannel {
    ChannelStatus status = ChannelStatus::kFree;
    ProbeId probe = kInvalidProbe;
    CircuitId circuit = kInvalidCircuit;
    bool ack_returned = false;
    PortId in_port = kInvalidPort;  ///< reverse mapping
  };

  const OutChannel& at(PortId out_port) const;
  OutChannel& at(PortId out_port);

  std::vector<OutChannel> out_;
};

/// All PCS registers of the network: [node][switch_index].
class RegisterFile {
 public:
  RegisterFile(const topo::KAryNCube& topology, std::int32_t num_switches);

  std::int32_t num_switches() const noexcept { return num_switches_; }
  SwitchRegisters& at(NodeId node, std::int32_t switch_index) {
    return regs_.at(static_cast<std::size_t>(node) * num_switches_ +
                    switch_index);
  }
  const SwitchRegisters& at(NodeId node, std::int32_t switch_index) const {
    return regs_.at(static_cast<std::size_t>(node) * num_switches_ +
                    switch_index);
  }

  /// Serialize all (node, switch) register banks (snapshot/restore).
  void snap(snap::Archive& ar);

 private:
  std::int32_t num_switches_;  // [snap: skip] derived from config at construction
  std::vector<SwitchRegisters> regs_;  // node-major
};

}  // namespace wavesim::pcs
