#include "pcs/history.hpp"

#include <algorithm>
#include <stdexcept>

#include "snap/archive.hpp"

namespace wavesim::pcs {

void HistoryStore::mark(ProbeId probe, NodeId node, PortId out_port) {
  if (out_port < 0 || out_port >= 32) {
    throw std::invalid_argument("HistoryStore: port out of mask range");
  }
  std::vector<std::uint32_t>& row = store_[probe];
  if (static_cast<std::size_t>(node) >= row.size()) {
    row.resize(static_cast<std::size_t>(node) + 1, 0);
  }
  row[node] |= 1u << out_port;
}

bool HistoryStore::searched(ProbeId probe, NodeId node, PortId out_port) const {
  return (mask(probe, node) >> out_port) & 1u;
}

std::uint32_t HistoryStore::mask(ProbeId probe, NodeId node) const {
  const auto probe_it = store_.find(probe);
  if (probe_it == store_.end()) return 0;
  const std::vector<std::uint32_t>& row = probe_it->second;
  if (static_cast<std::size_t>(node) >= row.size()) return 0;
  return row[node];
}

std::int64_t HistoryStore::entries(ProbeId probe) const {
  const auto probe_it = store_.find(probe);
  if (probe_it == store_.end()) return 0;
  std::int64_t total = 0;
  for (std::uint32_t mask : probe_it->second) {
    total += __builtin_popcount(mask);
  }
  return total;
}

void HistoryStore::erase(ProbeId probe) { store_.erase(probe); }

void HistoryStore::snap(snap::Archive& ar) {
  if (ar.writing()) {
    std::vector<ProbeId> probes;
    probes.reserve(store_.size());
    // [det: local] collect-then-sort; snapshot bytes see sorted ids.
    for (const auto& [probe, rows] : store_) probes.push_back(probe);
    std::sort(probes.begin(), probes.end());
    std::uint64_t n = probes.size();
    ar.pod(n);
    for (ProbeId probe : probes) {
      ar.pod(probe);
      ar.vec_pod(store_.at(probe));
    }
  } else {
    store_.clear();
    std::uint64_t n = 0;
    ar.pod(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      ProbeId probe = kInvalidProbe;
      ar.pod(probe);
      ar.vec_pod(store_[probe]);
    }
  }
}

}  // namespace wavesim::pcs
