// MB-m: misrouting backtracking probe routing with at most m misroutes
// (Gaughan & Yalamanchili, used by the paper for circuit setup).
//
// decide() is a pure function over the probe's local view of one node:
// given per-port availability, the history mask and the misroute budget it
// returns what the probe does this step. The control plane executes the
// decision (reserving channels, parking Force probes, moving flits).
#pragma once

#include <cstdint>
#include <vector>

#include "pcs/probe.hpp"
#include "topology/topology.hpp"

namespace wavesim::pcs {

/// Availability of the (control, data) channel pair behind one output port
/// as seen by a probe.
enum class PortView : std::uint8_t {
  kAvailable,        ///< free pair, selectable
  kBusyEstablished,  ///< owned by a circuit whose ack has returned
  kBusyPending,      ///< owned by a probe or a circuit still awaiting ack
  kUnusable,         ///< faulty, searched (history), or off the mesh edge
};

enum class MbmAction : std::uint8_t {
  kAdvance,    ///< reserve `port` and move forward
  kDeliver,    ///< probe is at the destination: return the ack
  kWaitForce,  ///< Force probe waits for `port`'s established circuit
  kBacktrack,  ///< give up at this node, return over the reverse mapping
};

struct MbmDecision {
  MbmAction action = MbmAction::kBacktrack;
  PortId port = kInvalidPort;
  bool misroute = false;  ///< the advance consumes one misroute credit

  friend bool operator==(const MbmDecision&, const MbmDecision&) = default;
};

/// One probe-routing step at `node`.
///
/// Preference order (minimal ports sorted by largest remaining offset):
///   1. minimal available port                         -> advance
///   2. [force] minimal port busy w/ established circuit -> wait (tear down)
///   3. available misroute port, if misroutes < m      -> advance (misroute)
///   4. otherwise                                      -> backtrack
/// Matching the paper: a Force probe never waits on a channel that belongs
/// to a circuit still being established -- it backtracks instead, which is
/// the linchpin of the Theorem-1 deadlock-freedom argument.
///
/// `view[p]` must already fold in history, faults and mesh edges
/// (kUnusable). `arrival_port` is the input port the probe occupies at
/// `node` (kInvalidPort at the source); its opposite direction is excluded
/// from misroute candidates.
///
/// `mutate_force_unacked` is the WAVESIM_MUTATE_FORCE_UNACKED seeded bug
/// (docs/TESTING.md): a Force probe also waits on kBusyPending channels,
/// exactly the behavior Theorem 1 forbids. Runtime-plumbed (not an #ifdef
/// here) so the bounded model checker and the concrete control plane share
/// one switch and the model-vs-runtime agreement contract can be tested in
/// a normal build.
MbmDecision decide(const topo::KAryNCube& topology, NodeId node, NodeId dest,
                   const std::vector<PortView>& view, PortId arrival_port,
                   std::int32_t misroutes, std::int32_t max_misroutes,
                   bool force, bool mutate_force_unacked = false);

/// Minimal ports toward dest ordered by descending remaining offset
/// magnitude (ties by port index). Exposed for tests.
std::vector<PortId> ordered_minimal_ports(const topo::KAryNCube& topology,
                                          NodeId node, NodeId dest);

}  // namespace wavesim::pcs
