// History Store (paper Fig. 3): distributed per-node registers recording,
// for each in-flight probe, which output links it has already searched, so
// a backtracking probe never re-searches the same path. Livelock freedom
// (Theorems 3/4) follows because every advance consumes one (node, port)
// entry and the network is finite.
//
// The simulator centralizes the registers in one container keyed by probe,
// which is behaviorally identical and makes cleanup on probe completion
// trivial. Each probe's registers are a dense per-node bitmask row (grown
// on demand to the highest node the probe has visited), so the per-step
// queries on the probe's hot path are a single hash lookup plus an
// indexed load instead of two chained hashtable probes.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/types.hpp"

namespace wavesim::snap {
class Archive;
}  // namespace wavesim::snap

namespace wavesim::pcs {

class HistoryStore {
 public:
  /// Mark `out_port` at `node` as searched by `probe`.
  void mark(ProbeId probe, NodeId node, PortId out_port);

  bool searched(ProbeId probe, NodeId node, PortId out_port) const;

  /// Bitmask of searched ports of `probe` at `node` (bit p = port p).
  std::uint32_t mask(ProbeId probe, NodeId node) const;

  /// Number of (node, port) entries recorded for `probe`.
  std::int64_t entries(ProbeId probe) const;

  /// Drop all state of a finished probe.
  void erase(ProbeId probe);

  std::size_t probes_tracked() const noexcept { return store_.size(); }

  /// Serialize rows in ascending-probe order (snapshot/restore; the
  /// unordered_map's bucket order must never leak into snapshot bytes).
  void snap(snap::Archive& ar);

 private:
  // probe -> per-node searched-port bitmasks (index = node id).
  std::unordered_map<ProbeId, std::vector<std::uint32_t>> store_;
};

}  // namespace wavesim::pcs
